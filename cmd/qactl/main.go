// Command qactl is the operator client for a live Q/A cluster: ask
// questions and inspect node status.
//
//	qactl -node 127.0.0.1:7101 -ask "Where is the Taj Mahal?"
//	qactl -node 127.0.0.1:7101 -status
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"distqa/internal/live"
)

func main() {
	node := flag.String("node", "127.0.0.1:7101", "any cluster node address")
	ask := flag.String("ask", "", "question to ask")
	status := flag.Bool("status", false, "print node status")
	timeout := flag.Duration("timeout", 60*time.Second, "request timeout")
	flag.Parse()

	switch {
	case *ask != "":
		resp, err := live.Ask(*node, *ask, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qactl: %v\n", err)
			os.Exit(1)
		}
		where := resp.ServedBy
		if resp.Forwarded {
			where += " (migrated by the question dispatcher)"
		}
		fmt.Printf("served by %s, AP workers: %d, %.1f ms\n", where, resp.APPeers, resp.ElapsedMS)
		if len(resp.Answers) == 0 {
			fmt.Println("no answers")
			return
		}
		for i, a := range resp.Answers {
			fmt.Printf("%d. %s (%s, score %.2f)\n   ... %s ...\n", i+1, a.Text, a.Type, a.Score, a.Snippet)
		}
	case *status:
		st, err := live.QueryStatus(*node, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qactl: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("node %s: collection %s (%d paragraphs), %d running / %d queued, up %v\n",
			st.Addr, st.Collection, st.Paragraphs, st.Questions, st.Queued, st.Uptime.Round(time.Second))
		for _, p := range st.Peers {
			fmt.Printf("  peer %s: %d running / %d queued / %d AP sub-tasks (heard %v ago)\n",
				p.Addr, p.Questions, p.Queued, p.APTasks, time.Since(p.Sent).Round(time.Millisecond))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
