// Command qactl is the operator client for a live Q/A cluster: ask
// questions, inspect node status, scrape metrics, and dump the slow-question
// flight recorder.
//
//	qactl -node 127.0.0.1:7101 -ask "Where is the Taj Mahal?"
//	qactl -node 127.0.0.1:7101 -ask "..." -spans   # print the span tree
//	qactl -node 127.0.0.1:7101 -status             # includes SLO rows and the shard table
//	qactl -node 127.0.0.1:7101 -metrics            # Prometheus text
//	qactl -node 127.0.0.1:7101 -metrics -cluster   # merged fleet-wide exposition
//	qactl -node 127.0.0.1:7101 -slow -top 3        # worst retained questions, full span trees
//	qactl -node 127.0.0.1:7101 -estimate "..."     # Equation-9 cost prediction (no execution)
//	qactl -gate http://127.0.0.1:8080              # qagate admission/SLO status row
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"distqa/internal/gate"
	"distqa/internal/live"
	"distqa/internal/obs"
)

func main() {
	node := flag.String("node", "127.0.0.1:7101", "any cluster node address")
	ask := flag.String("ask", "", "question to ask")
	spans := flag.Bool("spans", false, "with -ask: print the question's cross-node span tree")
	status := flag.Bool("status", false, "print node status")
	metrics := flag.Bool("metrics", false, "print node metrics (Prometheus text exposition)")
	cluster := flag.Bool("cluster", false, "with -metrics: pull every cluster member's registry and print the merged exposition")
	slow := flag.Bool("slow", false, "dump the node's slow-question flight recorder (worst retained questions)")
	top := flag.Int("top", 5, "with -slow: how many records to dump")
	estimate := flag.String("estimate", "", "question to cost-predict (Equation 9) without executing; sharded nodes gather exact global df over the wire")
	gateURL := flag.String("gate", "", "qagate base URL (http://host:port): print the gateway's admission and SLO status")
	timeout := flag.Duration("timeout", 60*time.Second, "request timeout")
	flag.Parse()

	switch {
	case *gateURL != "":
		st, err := gate.FetchStatus(*gateURL, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qactl: %v\n", err)
			os.Exit(1)
		}
		printGateStatus(st)
	case *ask != "":
		resp, err := live.Ask(*node, *ask, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qactl: %v\n", err)
			os.Exit(1)
		}
		where := resp.ServedBy
		if resp.Forwarded {
			where += " (migrated by the question dispatcher)"
		}
		if resp.CacheHit {
			where += " (answer cache hit)"
		}
		if resp.Coalesced {
			where += " (coalesced with an identical in-flight question)"
		}
		fmt.Printf("served by %s, AP workers: %d, %.1f ms\n", where, resp.APPeers, resp.ElapsedMS)
		if len(resp.Answers) == 0 {
			fmt.Println("no answers")
		}
		for i, a := range resp.Answers {
			fmt.Printf("%d. %s (%s, score %.2f)\n   ... %s ...\n", i+1, a.Text, a.Type, a.Score, a.Snippet)
		}
		if *spans {
			fmt.Println("\nspan tree:")
			obs.FormatSpanTree(os.Stdout, resp.Spans)
		}
	case *status:
		st, err := live.QueryStatus(*node, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qactl: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("node %s: collection %s (%d paragraphs), %d running / %d queued, up %v\n",
			st.Addr, st.Collection, st.Paragraphs, st.Questions, st.Queued, st.Uptime.Round(time.Second))
		fmt.Printf("  index: %.1f KiB postings in memory\n", float64(st.IndexBytes)/1024)
		m := st.Metrics
		fmt.Printf("  served %d questions (%d forwarded away, %d migrated here)\n",
			m.QuestionsServed, m.ForwardsOut, m.ForwardsIn)
		fmt.Printf("  sub-tasks: PR %d sent / %d received, AP %d sent / %d received\n",
			m.PRSubtasksSent, m.PRSubtasksReceived, m.APSubtasksSent, m.APSubtasksReceived)
		fmt.Printf("  heartbeats: %d sent / %d received, %d remote-call failures\n",
			m.HeartbeatsSent, m.HeartbeatsReceived, m.RequestFailures)
		fmt.Printf("  fault tolerance: %d retries, %d breaker trips, %d re-admissions\n",
			m.Retries, m.BreakerTrips, m.Readmissions)
		fmt.Printf("  conn pool: %d hits / %d misses, %d evictions, %d redials, %d open\n",
			m.PoolHits, m.PoolMisses, m.PoolEvictions, m.PoolRedials, m.PoolOpenConns)
		fmt.Printf("  mux: %d calls over %d conns (%d dials, %d redials, %d gob fallbacks), %d in flight\n",
			m.MuxCalls, m.MuxOpenConns, m.MuxDials, m.MuxRedials, m.MuxFallbacks, m.MuxInFlight)
		fmt.Printf("  answer cache: %s hit rate (%d hits / %d misses), %d coalesced\n",
			rate(m.AnswerCacheHits, m.AnswerCacheMisses), m.AnswerCacheHits, m.AnswerCacheMisses, m.AnswerCacheCoalesced)
		fmt.Printf("  PR cache: %s hit rate (%d hits / %d misses)\n",
			rate(m.PRCacheHits, m.PRCacheMisses), m.PRCacheHits, m.PRCacheMisses)
		fmt.Printf("  runtime: %d goroutines, %.1f MiB heap, GC pause p99 %.3f ms, %d flight records\n",
			m.Goroutines, float64(m.HeapAllocBytes)/(1<<20), m.GCPauseP99Ms, m.FlightRecords)
		for _, row := range st.SLO {
			printSLORow(row)
		}
		for _, mp := range st.Mux {
			if mp.GobOnly {
				fmt.Printf("  mux peer %s: gob fallback (binary codec not negotiated)\n", mp.Addr)
				continue
			}
			fmt.Printf("  mux peer %s: %d in flight, %d calls\n", mp.Addr, mp.InFlight, mp.Calls)
		}
		for _, p := range st.Peers {
			fmt.Printf("  peer %s: %d running / %d queued / %d AP sub-tasks (heard %v ago)\n",
				p.Addr, p.Questions, p.Queued, p.APTasks, time.Since(p.Sent).Round(time.Millisecond))
		}
		for _, ph := range st.PeerHealth {
			fmt.Printf("  health %s: %s (last beat %v ago), breaker %s, %d blamed failures, %d re-admissions\n",
				ph.Addr, ph.State, ph.SinceBeat.Round(time.Millisecond), ph.Breaker, ph.Failures, ph.Readmissions)
		}
		if sh := st.Shard; sh != nil {
			state := "complete"
			if !sh.Complete {
				state = "INCOMPLETE (some shard has no live replica)"
			}
			fmt.Printf("  shard map: K=%d R=%d epoch=%d, %s; this node holds shards %v (%d sub-collections)\n",
				sh.K, sh.R, sh.Epoch, state, sh.Holdings, len(sh.HoldingSubs))
			for _, row := range sh.Shards {
				replicas := "-- none --"
				if len(row.Replicas) > 0 {
					replicas = fmt.Sprint(row.Replicas)
				}
				fmt.Printf("    shard %d: subs %v, replicas %s\n", row.Shard, row.Subs, replicas)
				if row.SummaryVersion > 0 || row.RouteSkipped > 0 || row.RouteScattered > 0 || row.RouteFallbacks > 0 {
					freshness := "STALE"
					if row.SummaryFresh {
						freshness = "fresh"
					}
					fmt.Printf("      summary v%d (%s, %d terms, from %s); routed: %d skipped / %d scattered / %d fallbacks\n",
						row.SummaryVersion, freshness, row.SummaryTerms, row.SummaryFrom,
						row.RouteSkipped, row.RouteScattered, row.RouteFallbacks)
				}
			}
			fmt.Printf("  shard traffic: %d scatter PR sent / %d received, %d df gathers served, %d failovers\n",
				st.Metrics.ShardPRSent, st.Metrics.ShardPRReceived, st.Metrics.ShardDFReceived, st.Metrics.ShardFailovers)
			if m := st.Metrics; m.RoutePlansSelective+m.RoutePlansFallback > 0 {
				fmt.Printf("  selective routing: %d selective plans / %d fallbacks (%d missing, %d stale), %d shard fan-outs skipped, %d short-circuits\n",
					m.RoutePlansSelective, m.RoutePlansFallback, m.RouteFallbacksMissing, m.RouteFallbacksStale,
					m.RouteSkips, m.RouteShortCircuits)
				fmt.Printf("  summary gossip: %d pulls sent / %d served / %d failed\n",
					m.SummaryPullsSent, m.SummaryPullsServed, m.SummaryPullFailures)
			}
		}
	case *slow:
		recs, err := live.QuerySlow(*node, *top, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qactl: %v\n", err)
			os.Exit(1)
		}
		if len(recs) == 0 {
			fmt.Println("flight recorder empty")
			return
		}
		for i, r := range recs {
			if i > 0 {
				fmt.Println()
			}
			header := fmt.Sprintf("#%d  qid=%d  %.1fms  %q  on %s", i+1, r.QID,
				float64(r.Duration.Microseconds())/1000, r.Question, r.Node)
			if r.Err != "" {
				header += "  ERR: " + r.Err
			}
			fmt.Println(header)
			if len(r.Annotations) > 0 {
				fmt.Printf("  annotations: %v\n", r.Annotations)
			}
			obs.FormatSpanTree(indentWriter{}, r.Spans)
		}
	case *estimate != "":
		est, err := live.QueryEstimate(*node, *estimate, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qactl: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("predicted documents:  %.2f\n", est.Documents)
		fmt.Printf("predicted paragraphs: %.2f\n", est.Paragraphs)
		fmt.Printf("predicted CPU:        %.6f s (paper-model units)\n", est.CPUSeconds)
		fmt.Printf("predicted disk:       %.0f bytes\n", est.DiskBytes)
	case *metrics && *cluster:
		snaps, err := live.QueryClusterMetrics(*node, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qactl: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("# cluster exposition merged from %d node(s)\n", len(snaps))
		merged := obs.MergeSnapshots(snaps)
		if err := merged.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "qactl: %v\n", err)
			os.Exit(1)
		}
	case *metrics:
		text, err := live.QueryMetrics(*node, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qactl: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(text)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// printGateStatus renders a qagate Statusz: identity line, admission state,
// lifetime outcome counters, and the gateway's edge SLO rows.
func printGateStatus(st *gate.Statusz) {
	state := "serving"
	if st.Draining {
		state = "DRAINING"
	}
	fmt.Printf("gateway %s: %s, up %v, fronting %s\n",
		st.Addr, state, (time.Duration(st.UptimeSeconds * float64(time.Second))).Round(time.Second),
		strings.Join(st.Nodes, ", "))
	fmt.Printf("  admission: %d/%d in flight, queue %d/%d (peak %d), %d client keys\n",
		st.InFlight, st.MaxInflight, st.QueueDepth, st.QueueBound, st.QueuePeak, st.ClientKeys)
	fmt.Printf("  outcomes: %d admitted (%d queued first), shed %d queue / %d rate, %d timeouts, %d backend errors, %d bad requests\n",
		st.Admitted, st.Queued, st.ShedQueue, st.ShedRate, st.Timeouts, st.BackendErrs, st.BadRequests)
	for _, row := range st.SLO {
		printSLORow(row)
	}
}

// printSLORow renders one objective's state, burn rate and tail exemplar.
func printSLORow(row obs.SLOStatus) {
	state := "OK"
	if !row.OK {
		state = "VIOLATED"
	}
	line := fmt.Sprintf("  slo %-8s p%.0f <= %.2fs over %v: observed %.3fs, burn %.2fx, %d obs (%d errors) [%s]",
		row.Op, row.Quantile*100, row.Target, row.Window, row.Observed, row.BurnRate, row.Total, row.Errors, state)
	if row.ExemplarQID != 0 {
		line += fmt.Sprintf("  exemplar qid=%d (%.3fs)", row.ExemplarQID, row.ExemplarSeconds)
	}
	fmt.Println(line)
}

// indentWriter prefixes every span-tree line with two spaces so the tree
// nests under the flight-record header.
type indentWriter struct{}

func (indentWriter) Write(p []byte) (int, error) {
	os.Stdout.WriteString("  ")
	return os.Stdout.Write(p)
}

// rate renders a hits/(hits+misses) percentage, or "-" before any traffic.
func rate(hits, misses int64) string {
	total := hits + misses
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", float64(hits)/float64(total)*100)
}
