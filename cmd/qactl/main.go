// Command qactl is the operator client for a live Q/A cluster: ask
// questions, inspect node status, and scrape node metrics.
//
//	qactl -node 127.0.0.1:7101 -ask "Where is the Taj Mahal?"
//	qactl -node 127.0.0.1:7101 -ask "..." -spans   # print the span tree
//	qactl -node 127.0.0.1:7101 -status             # includes the shard table on sharded nodes
//	qactl -node 127.0.0.1:7101 -metrics            # Prometheus text
//	qactl -node 127.0.0.1:7101 -estimate "..."     # Equation-9 cost prediction (no execution)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"distqa/internal/live"
	"distqa/internal/obs"
)

func main() {
	node := flag.String("node", "127.0.0.1:7101", "any cluster node address")
	ask := flag.String("ask", "", "question to ask")
	spans := flag.Bool("spans", false, "with -ask: print the question's cross-node span tree")
	status := flag.Bool("status", false, "print node status")
	metrics := flag.Bool("metrics", false, "print node metrics (Prometheus text exposition)")
	estimate := flag.String("estimate", "", "question to cost-predict (Equation 9) without executing; sharded nodes gather exact global df over the wire")
	timeout := flag.Duration("timeout", 60*time.Second, "request timeout")
	flag.Parse()

	switch {
	case *ask != "":
		resp, err := live.Ask(*node, *ask, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qactl: %v\n", err)
			os.Exit(1)
		}
		where := resp.ServedBy
		if resp.Forwarded {
			where += " (migrated by the question dispatcher)"
		}
		if resp.CacheHit {
			where += " (answer cache hit)"
		}
		if resp.Coalesced {
			where += " (coalesced with an identical in-flight question)"
		}
		fmt.Printf("served by %s, AP workers: %d, %.1f ms\n", where, resp.APPeers, resp.ElapsedMS)
		if len(resp.Answers) == 0 {
			fmt.Println("no answers")
		}
		for i, a := range resp.Answers {
			fmt.Printf("%d. %s (%s, score %.2f)\n   ... %s ...\n", i+1, a.Text, a.Type, a.Score, a.Snippet)
		}
		if *spans {
			fmt.Println("\nspan tree:")
			printSpanTree(resp.Spans)
		}
	case *status:
		st, err := live.QueryStatus(*node, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qactl: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("node %s: collection %s (%d paragraphs), %d running / %d queued, up %v\n",
			st.Addr, st.Collection, st.Paragraphs, st.Questions, st.Queued, st.Uptime.Round(time.Second))
		m := st.Metrics
		fmt.Printf("  served %d questions (%d forwarded away, %d migrated here)\n",
			m.QuestionsServed, m.ForwardsOut, m.ForwardsIn)
		fmt.Printf("  sub-tasks: PR %d sent / %d received, AP %d sent / %d received\n",
			m.PRSubtasksSent, m.PRSubtasksReceived, m.APSubtasksSent, m.APSubtasksReceived)
		fmt.Printf("  heartbeats: %d sent / %d received, %d remote-call failures\n",
			m.HeartbeatsSent, m.HeartbeatsReceived, m.RequestFailures)
		fmt.Printf("  fault tolerance: %d retries, %d breaker trips, %d re-admissions\n",
			m.Retries, m.BreakerTrips, m.Readmissions)
		fmt.Printf("  conn pool: %d hits / %d misses, %d evictions, %d redials, %d open\n",
			m.PoolHits, m.PoolMisses, m.PoolEvictions, m.PoolRedials, m.PoolOpenConns)
		fmt.Printf("  mux: %d calls over %d conns (%d dials, %d redials, %d gob fallbacks), %d in flight\n",
			m.MuxCalls, m.MuxOpenConns, m.MuxDials, m.MuxRedials, m.MuxFallbacks, m.MuxInFlight)
		fmt.Printf("  answer cache: %s hit rate (%d hits / %d misses), %d coalesced\n",
			rate(m.AnswerCacheHits, m.AnswerCacheMisses), m.AnswerCacheHits, m.AnswerCacheMisses, m.AnswerCacheCoalesced)
		fmt.Printf("  PR cache: %s hit rate (%d hits / %d misses)\n",
			rate(m.PRCacheHits, m.PRCacheMisses), m.PRCacheHits, m.PRCacheMisses)
		for _, mp := range st.Mux {
			if mp.GobOnly {
				fmt.Printf("  mux peer %s: gob fallback (binary codec not negotiated)\n", mp.Addr)
				continue
			}
			fmt.Printf("  mux peer %s: %d in flight, %d calls\n", mp.Addr, mp.InFlight, mp.Calls)
		}
		for _, p := range st.Peers {
			fmt.Printf("  peer %s: %d running / %d queued / %d AP sub-tasks (heard %v ago)\n",
				p.Addr, p.Questions, p.Queued, p.APTasks, time.Since(p.Sent).Round(time.Millisecond))
		}
		for _, ph := range st.PeerHealth {
			fmt.Printf("  health %s: %s (last beat %v ago), breaker %s, %d blamed failures, %d re-admissions\n",
				ph.Addr, ph.State, ph.SinceBeat.Round(time.Millisecond), ph.Breaker, ph.Failures, ph.Readmissions)
		}
		if sh := st.Shard; sh != nil {
			state := "complete"
			if !sh.Complete {
				state = "INCOMPLETE (some shard has no live replica)"
			}
			fmt.Printf("  shard map: K=%d R=%d epoch=%d, %s; this node holds shards %v (%d sub-collections)\n",
				sh.K, sh.R, sh.Epoch, state, sh.Holdings, len(sh.HoldingSubs))
			for _, row := range sh.Shards {
				replicas := "-- none --"
				if len(row.Replicas) > 0 {
					replicas = fmt.Sprint(row.Replicas)
				}
				fmt.Printf("    shard %d: subs %v, replicas %s\n", row.Shard, row.Subs, replicas)
			}
			fmt.Printf("  shard traffic: %d scatter PR sent / %d received, %d df gathers served, %d failovers\n",
				st.Metrics.ShardPRSent, st.Metrics.ShardPRReceived, st.Metrics.ShardDFReceived, st.Metrics.ShardFailovers)
		}
	case *estimate != "":
		est, err := live.QueryEstimate(*node, *estimate, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qactl: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("predicted documents:  %.2f\n", est.Documents)
		fmt.Printf("predicted paragraphs: %.2f\n", est.Paragraphs)
		fmt.Printf("predicted CPU:        %.6f s (paper-model units)\n", est.CPUSeconds)
		fmt.Printf("predicted disk:       %.0f bytes\n", est.DiskBytes)
	case *metrics:
		text, err := live.QueryMetrics(*node, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qactl: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(text)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// rate renders a hits/(hits+misses) percentage, or "-" before any traffic.
func rate(hits, misses int64) string {
	total := hits + misses
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", float64(hits)/float64(total)*100)
}

// printSpanTree renders the question's spans as an indented tree, remote
// nodes and stage durations inline:
//
//	ask q=...  [127.0.0.1:7102]  52.1ms
//	  stage:QP  [127.0.0.1:7102]  0.3ms
//	  partition:AP  [127.0.0.1:7102]  31.0ms
//	    ap-subtask  [127.0.0.1:7103]  28.9ms
func printSpanTree(spans []obs.Span) {
	children := make(map[int64][]obs.Span)
	byID := make(map[int64]bool, len(spans))
	for _, s := range spans {
		byID[s.ID] = true
	}
	var roots []obs.Span
	for _, s := range spans {
		if s.Parent != 0 && byID[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	sortSpans(roots)
	var walk func(s obs.Span, depth int)
	walk = func(s obs.Span, depth int) {
		for i := 0; i < depth; i++ {
			fmt.Print("  ")
		}
		fmt.Printf("%s  [%s]  %.1fms\n", s.Name, s.Node, float64(s.Duration().Microseconds())/1000)
		kids := children[s.ID]
		sortSpans(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

func sortSpans(ss []obs.Span) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].Start.Before(ss[j].Start) })
}
