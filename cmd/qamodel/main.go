// Command qamodel evaluates the paper's analytical performance model
// (Section 5): the inter-question speedup of Equation 23 (Figure 8), the
// intra-question speedup of Equation 36 (Figure 9), and the practical
// processor limits of Equation 34 (Table 4). It needs no corpus or
// simulation, so it runs instantly.
//
// Usage:
//
//	qamodel                   # Table 4 and all figures
//	qamodel -exp fig8         # one of: table4, fig8, fig9a, fig9b
//	qamodel -n 128 -net 1e9 -disk 1e8   # evaluate one point
package main

import (
	"flag"
	"fmt"
	"os"

	"distqa/internal/experiments"
	"distqa/internal/model"
)

func main() {
	exp := flag.String("exp", "all", "table4, fig8, fig9a, fig9b or all")
	n := flag.Int("n", 0, "evaluate the model at this processor count (0 = tables)")
	net := flag.Float64("net", 100e6, "network bandwidth in bits/second")
	disk := flag.Float64("disk", 200e6, "disk bandwidth in bits/second")
	flag.Parse()

	if *n > 0 {
		inter := model.TREC9InterParams()
		intra := model.TREC9IntraParams()
		fmt.Printf("processors: %d, network %.0f Mbps, disk %.0f Mbps\n", *n, *net/1e6, *disk/1e6)
		fmt.Printf("system speedup (Eq. 23):   %.2f (efficiency %.3f)\n",
			inter.SystemSpeedup(*n, *net), inter.SystemEfficiency(*n, *net))
		fmt.Printf("question speedup (Eq. 36): %.2f\n", intra.QuestionSpeedup(*n, *net, *disk))
		fmt.Printf("practical limit (Eq. 34):  N_max = %d (speedup %.2f)\n",
			intra.NMax(*net, *disk), intra.SpeedupAtNMax(*net, *disk))
		return
	}

	env := experiments.Paper()
	ids := []string{"table4", "fig8", "fig9a", "fig9b"}
	if *exp != "all" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		tables, err := experiments.Run(env, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qamodel: %v\n", err)
			os.Exit(2)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
	}
}
