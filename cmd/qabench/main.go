// Command qabench regenerates the paper's evaluation tables and figures on
// the simulated cluster.
//
// Usage:
//
//	qabench                 # run every experiment at paper scale
//	qabench -exp table5     # one experiment (see -list)
//	qabench -scale small    # fast, down-scaled environment
//	qabench -list           # list experiment ids
//	qabench -stage-metrics  # also print wall-clock p50/p90/p99 per Q/A stage
//	qabench -perf           # run the hot-path benchmark suite → BENCH_pr10.json
//	qabench -perf -perf-check                    # also enforce the serving-path floors, p99 SLOs, gateway load and index compression gates (CI)
//	qabench -perf -perf-baseline before.json     # fail on >20% same-machine regression (ns/op + ratios)
//	qabench -perf -perf-baseline BENCH_pr10.json -perf-ratios-only  # CI: gate comparison ratios vs the committed report
//	qabench -chaos          # run a seeded fault schedule against a live loopback cluster
//	qabench -load           # open-loop load vs a self-started cluster+gateway: calibrate capacity, run sub- and over-threshold regimes
//	qabench -load -load-target http://host:8080 -load-rate 200 -load-duration 10s -load-arrivals burst  # fixed-rate vs an external gateway
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"distqa/internal/chaos"
	"distqa/internal/corpus"
	"distqa/internal/experiments"
	"distqa/internal/gate"
	"distqa/internal/index"
	"distqa/internal/live"
	"distqa/internal/obs"
	"distqa/internal/perf"
	"distqa/internal/qa"
	"distqa/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run, or 'all'")
	scale := flag.String("scale", "paper", "environment scale: paper or small")
	list := flag.Bool("list", false, "list experiment ids and exit")
	stageMetrics := flag.Bool("stage-metrics", false, "record wall-clock per-stage latency histograms and print p50/p90/p99")
	perfMode := flag.Bool("perf", false, "run the hot-path benchmark suite instead of the experiments")
	perfOut := flag.String("perf-out", "BENCH_pr10.json", "perf mode: output file for the JSON report")
	perfBudget := flag.Duration("perf-budget", time.Second, "perf mode: measuring time per benchmark")
	perfScale := flag.String("perf-scale", "tiny", "perf mode: corpus scale (tiny or trec8)")
	perfBaseline := flag.String("perf-baseline", "", "perf mode: baseline JSON report to diff against; exit non-zero on >tolerance regression (comparison ratios always; ns/op when the environment matches)")
	perfTolerance := flag.Float64("perf-tolerance", 0.20, "perf mode: allowed fractional regression vs -perf-baseline (0.20 = 20%)")
	perfCheck := flag.Bool("perf-check", false, "perf mode: enforce the machine-independent serving-path floors and p99 latency SLOs (CI gate)")
	perfCPUProfile := flag.String("perf-cpuprofile", "", "perf mode: write a CPU profile captured around the whole suite run to this file (inspect with go tool pprof)")
	perfRatiosOnly := flag.Bool("perf-ratios-only", false, "perf mode: with -perf-baseline, gate only the comparison ratios and skip the ns/op diff (use against committed baselines, where wall-clock numbers are from another time/machine)")
	chaosMode := flag.Bool("chaos", false, "run a seeded fault schedule against a live loopback cluster instead of the experiments")
	chaosSeed := flag.Int64("seed", 1, "chaos mode: schedule seed (same seed => byte-identical event log)")
	chaosNodes := flag.Int("nodes", 4, "chaos mode: cluster size")
	chaosQuestions := flag.Int("chaos-questions", 12, "chaos mode: questions to ask across the schedule")
	chaosScenario := flag.String("chaos-scenario", chaos.ScenarioMixed, "chaos mode: scenario (crash, blackout, partition, shardloss, staleroute, mixed)")
	loadMode := flag.Bool("load", false, "run the open-loop load harness against an HTTP gateway instead of the experiments")
	loadTarget := flag.String("load-target", "", "load mode: base URL of an already-running qagate (default: a self-contained in-process cluster + gateway)")
	loadRate := flag.Float64("load-rate", 0, "load mode: offered arrival rate in requests/second (0 = auto-calibrate and run a sub- and an over-threshold pair)")
	loadDuration := flag.Duration("load-duration", 5*time.Second, "load mode: schedule length per run")
	loadArrivals := flag.String("load-arrivals", "poisson", "load mode: arrival process (poisson or burst)")
	loadTimeoutMS := flag.Int64("load-timeout-ms", 10000, "load mode: per-request edge deadline sent as timeout_ms")
	loadInflight := flag.Int("load-inflight", 8, "load mode: self-contained gateway's MaxInflight (queue bound is 2x)")
	loadAlpha := flag.Float64("load-alpha", 1.5, "load mode: heavy-tail exponent for question sampling (0 = uniform)")
	loadOut := flag.String("load-out", "", "load mode: also write the run reports as JSON to this file")
	flag.Parse()

	if *chaosMode {
		os.Exit(runChaos(*chaosSeed, *chaosNodes, *chaosQuestions, *chaosScenario))
	}

	if *loadMode {
		os.Exit(runLoad(*loadTarget, *loadRate, *loadDuration, *loadArrivals, *loadTimeoutMS, *loadInflight, *loadAlpha, *chaosSeed, *loadOut))
	}

	if *perfMode {
		os.Exit(runPerf(*perfOut, *perfBudget, *perfScale, *perfBaseline, *perfTolerance, *perfCheck, *perfRatiosOnly, *perfCPUProfile))
	}

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}

	var env *experiments.Env
	switch *scale {
	case "paper":
		env = experiments.Paper()
	case "small":
		env = experiments.Small()
	default:
		fmt.Fprintf(os.Stderr, "qabench: unknown scale %q (want paper or small)\n", *scale)
		os.Exit(2)
	}

	var stageReg *obs.Registry
	if *stageMetrics {
		// A private registry keeps the bench histograms clear of the live
		// cluster's; the observer hooks every stage of the shared engines.
		stageReg = obs.NewRegistry()
		observer := stageReg.StageObserver("qa_stage_seconds")
		env.Engine().Observer = observer
		env.Engine8().Observer = observer
	}

	start := time.Now()
	var tables []experiments.Table
	if *exp == "all" {
		tables = experiments.All(env)
	} else {
		var err error
		tables, err = experiments.Run(env, *exp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qabench: %v\n", err)
			os.Exit(2)
		}
	}
	for _, t := range tables {
		fmt.Println(t.String())
	}
	if stageReg != nil {
		printStageMetrics(stageReg)
	}
	fmt.Printf("completed in %v\n", time.Since(start).Round(time.Millisecond))
}

// runChaos executes one seeded chaos schedule against a live loopback
// cluster (internal/chaos) and exits non-zero if any question missed the
// planted answer or any fault-tolerance expectation was violated.
func runChaos(seed int64, nodes, questions int, scenario string) int {
	switch scenario {
	case chaos.ScenarioCrash, chaos.ScenarioBlackout, chaos.ScenarioPartition, chaos.ScenarioMixed, chaos.ScenarioShardLoss, chaos.ScenarioStaleRoute:
	default:
		fmt.Fprintf(os.Stderr, "qabench: unknown -chaos-scenario %q (want crash, blackout, partition, shardloss, staleroute or mixed)\n", scenario)
		return 2
	}
	res, err := chaos.Run(chaos.Config{
		Seed:      seed,
		Nodes:     nodes,
		Questions: questions,
		Scenario:  scenario,
		Out:       os.Stdout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qabench: chaos: %v\n", err)
		return 1
	}
	if !res.OK() {
		for _, f := range res.Failures {
			fmt.Fprintf(os.Stderr, "qabench: chaos: FAIL: %s\n", f)
		}
		return 1
	}
	fmt.Println("chaos: OK")
	return 0
}

// runLoad drives the open-loop load harness (internal/gate.RunLoad) against
// an HTTP gateway. With -load-target it aims at an already-running qagate;
// without, it stands up a self-contained loopback deployment — a two-node
// full-replica cluster behind an in-process gateway — so `qabench -load`
// measures a complete edge-to-cluster stack with zero setup (the CI smoke).
// Questions are sampled heavy-tailed from the complexity profile (alpha > 0
// tilts demand toward the expensive tail). rate = 0 auto-calibrates and runs
// a sub-threshold and an over-threshold pair, the acceptance shape: the
// first must shed ~nothing, the second must shed and keep its queue bounded.
func runLoad(target string, rate float64, duration time.Duration, arrivals string, timeoutMS int64, maxInflight int, alpha float64, seed int64, out string) int {
	collCfg := corpus.Tiny()
	if rate <= 0 && target == "" {
		// Auto mode brackets the capacity threshold, which must sit at rates
		// this process can generate: paper-scale questions carry multi-ms
		// service demand, putting capacity in the hundreds of qps instead of
		// the tiny corpus's unreachable thousands.
		collCfg = corpus.TREC8Like()
	}
	coll := corpus.Generate(collCfg)
	questions := make([]string, 0, len(coll.Facts))
	if alpha > 0 {
		engine := qa.NewEngine(coll, index.BuildAll(coll))
		set := workload.FromCollection(coll).Profile(engine)
		for _, q := range set.HeavyTailedPick(seed, 4*len(set.Questions), alpha) {
			questions = append(questions, q.Text)
		}
	} else {
		for _, f := range coll.Facts {
			questions = append(questions, f.Question)
		}
	}

	base := target
	if base == "" {
		fmt.Println("starting self-contained two-node cluster + gateway...")
		engine := qa.NewEngine(coll, index.BuildAll(coll))
		addrs := make([]string, 0, 2)
		for i := 0; i < 2; i++ {
			node, err := live.StartNode(live.NodeConfig{
				Addr:           "127.0.0.1:0",
				Engine:         engine,
				HeartbeatEvery: 250 * time.Millisecond,
				RequestTimeout: 10 * time.Second,
				Cache:          live.CacheConfig{Disabled: true},
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "qabench: load: start node: %v\n", err)
				return 1
			}
			defer node.Close()
			addrs = append(addrs, node.Addr())
		}
		gw, err := gate.New(gate.Config{Addr: "127.0.0.1:0", Nodes: addrs, MaxInflight: maxInflight})
		if err != nil {
			fmt.Fprintf(os.Stderr, "qabench: load: %v\n", err)
			return 1
		}
		if err := gw.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "qabench: load: %v\n", err)
			return 1
		}
		defer gw.Close()
		base = gw.URL()
	}

	run := func(name string, r float64, arr string, d time.Duration) (gate.LoadResult, bool) {
		res, err := gate.RunLoad(gate.LoadConfig{
			BaseURL: base, Questions: questions, Rate: r, Duration: d,
			Arrivals: arr, Seed: seed, TimeoutMS: timeoutMS,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "qabench: load: %v\n", err)
			return res, false
		}
		res.Name = name
		fmt.Printf("%s:\n%s", name, res.Text())
		return res, true
	}

	var results []gate.LoadResult
	if rate > 0 {
		res, ok := run("load", rate, arrivals, duration)
		if !ok {
			return 1
		}
		results = append(results, res)
	} else {
		// Auto mode: a short low-rate run calibrates the service time, then a
		// quarter-capacity and a 4x-capacity schedule bracket the threshold.
		// Each schedule's request count is capped so a fast machine still
		// finishes in seconds, and the over rate is capped at what one client
		// process can generate honestly.
		calStart := time.Now()
		cal, err := gate.RunLoad(gate.LoadConfig{
			BaseURL: base, Questions: questions, Rate: 4,
			Duration: 2 * time.Second,
			Arrivals: "poisson", Seed: seed, TimeoutMS: timeoutMS,
		})
		if err != nil || cal.OK == 0 {
			fmt.Fprintf(os.Stderr, "qabench: load: calibration failed (%v, %d ok)\n", err, cal.OK)
			return 1
		}
		service := cal.P50Ms / 1000
		capacity := float64(maxInflight) / service
		fmt.Printf("calibration (%.1fs): service ~%.2fms, capacity ~%.0f qps\n",
			time.Since(calStart).Seconds(), cal.P50Ms, capacity)
		durFor := func(r float64) time.Duration {
			d := duration
			if byCount := time.Duration(3000 / r * float64(time.Second)); byCount < d {
				d = byCount
			}
			if d < 500*time.Millisecond {
				d = 500 * time.Millisecond
			}
			return d
		}
		subRate := 0.25 * capacity
		overRate := 4 * capacity
		if overRate > 1500 {
			overRate = 1500
		}
		if overRate <= capacity {
			fmt.Printf("note: capped over rate %.0f qps does not exceed capacity ~%.0f — shedding may not engage\n", overRate, capacity)
		}
		sub, ok := run("sub-threshold", subRate, arrivals, durFor(subRate))
		if !ok {
			return 1
		}
		over, ok := run("over-threshold", overRate, "burst", durFor(overRate))
		if !ok {
			return 1
		}
		results = append(results, sub, over)
	}

	if out != "" {
		data, _ := json.MarshalIndent(results, "", "  ")
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "qabench: load: write %s: %v\n", out, err)
			return 1
		}
		fmt.Printf("wrote %s\n", out)
	}
	for _, res := range results {
		if res.OK == 0 || res.AchievedQPS <= 0 {
			fmt.Fprintf(os.Stderr, "qabench: load: run %q achieved no throughput\n", res.Name)
			return 1
		}
	}
	return 0
}

// runPerf executes the hot-path benchmark suite (internal/perf), writes the
// machine-readable report to out, prints a human summary, and optionally
// gates on a baseline diff (-perf-baseline/-perf-tolerance; comparison
// ratios always, ns/op only for same-env non-ratios-only runs) and the
// machine-independent serving-path floors (-perf-check).
func runPerf(out string, budget time.Duration, scale, baselinePath string, tolerance float64, check, ratiosOnly bool, cpuProfile string) int {
	cfg := perf.SuiteConfig{Budget: budget, Log: os.Stderr}
	switch scale {
	case "tiny":
		cfg.Corpus = corpus.Tiny()
	case "trec8":
		cfg.Corpus = corpus.TREC8Like()
	default:
		fmt.Fprintf(os.Stderr, "qabench: unknown -perf-scale %q (want tiny or trec8)\n", scale)
		return 2
	}
	if cpuProfile != "" {
		pf, err := os.Create(cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qabench: perf: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			pf.Close()
			fmt.Fprintf(os.Stderr, "qabench: perf: start cpu profile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
			fmt.Printf("wrote CPU profile %s\n", cpuProfile)
		}()
	}
	report, err := perf.RunSuite(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qabench: perf: %v\n", err)
		return 1
	}
	report.WriteText(os.Stdout)
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qabench: perf: %v\n", err)
		return 1
	}
	defer f.Close()
	if err := report.WriteJSON(f); err != nil {
		fmt.Fprintf(os.Stderr, "qabench: perf: write %s: %v\n", out, err)
		return 1
	}
	fmt.Printf("wrote %s\n", out)

	failed := false
	if baselinePath != "" {
		baseline, err := perf.ReadReport(baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qabench: perf: %v\n", err)
			return 1
		}
		var violations []string
		// The committed comparison ratios (speedup, alloc ratio) are measured
		// within one run, so they gate on any machine; raw ns/op only means
		// something when the environments match.
		violations = append(violations, perf.CheckComparisonRegression(baseline, report, tolerance)...)
		switch {
		case ratiosOnly:
			// Committed baselines carry wall-clock numbers from another
			// time (and usually another machine); only the within-run
			// ratios are comparable.
		case !perf.SameEnv(baseline, report):
			fmt.Printf("baseline %s is from a different environment; skipping ns/op diff, checking comparison ratios only\n", baselinePath)
		default:
			violations = append(violations, perf.CheckRegression(baseline, report, tolerance)...)
		}
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "qabench: perf: REGRESSION: %s\n", v)
			}
			failed = true
		} else {
			fmt.Printf("baseline check vs %s: OK (tolerance %.0f%%)\n", baselinePath, tolerance*100)
		}
	}
	if check {
		if violations := perf.CheckFloors(report); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "qabench: perf: FLOOR: %s\n", v)
			}
			failed = true
		} else {
			fmt.Println("serving-path floors: OK")
		}
		if violations := perf.CheckSLOs(report, perf.DefaultSLOs()); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "qabench: perf: SLO: %s\n", v)
			}
			failed = true
		} else {
			fmt.Println("p99 latency SLOs: OK")
		}
		if violations := perf.CheckLoad(report); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "qabench: perf: LOAD: %s\n", v)
			}
			failed = true
		} else {
			fmt.Println("gateway load gates: OK")
		}
		if violations := perf.CheckSizes(report); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "qabench: perf: SIZE: %s\n", v)
			}
			failed = true
		} else {
			fmt.Println("index compression floors: OK")
		}
	}
	if failed {
		return 1
	}
	return 0
}

// printStageMetrics renders the wall-clock latency quantiles of each pipeline
// stage recorded during the run (real execution time of the module code, not
// the simulator's virtual cost model).
func printStageMetrics(reg *obs.Registry) {
	fmt.Println("wall-clock stage latency (real module execution, not virtual cost):")
	fmt.Printf("  %-6s %10s %12s %12s %12s\n", "stage", "calls", "p50 ms", "p90 ms", "p99 ms")
	for _, stage := range []string{obs.StageQP, obs.StagePR, obs.StagePS, obs.StagePO, obs.StageAP, obs.StageMerge} {
		h := reg.Histogram("qa_stage_seconds", obs.Labels{"stage": stage}, obs.LatencyBuckets())
		if h.Count() == 0 {
			continue
		}
		s := h.Snapshot()
		fmt.Printf("  %-6s %10d %12.3f %12.3f %12.3f\n",
			stage, h.Count(), s.P50()*1000, s.P90()*1000, s.P99()*1000)
	}
	fmt.Println()
}
