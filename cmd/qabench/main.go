// Command qabench regenerates the paper's evaluation tables and figures on
// the simulated cluster.
//
// Usage:
//
//	qabench                 # run every experiment at paper scale
//	qabench -exp table5     # one experiment (see -list)
//	qabench -scale small    # fast, down-scaled environment
//	qabench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"distqa/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run, or 'all'")
	scale := flag.String("scale", "paper", "environment scale: paper or small")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}

	var env *experiments.Env
	switch *scale {
	case "paper":
		env = experiments.Paper()
	case "small":
		env = experiments.Small()
	default:
		fmt.Fprintf(os.Stderr, "qabench: unknown scale %q (want paper or small)\n", *scale)
		os.Exit(2)
	}

	start := time.Now()
	var tables []experiments.Table
	if *exp == "all" {
		tables = experiments.All(env)
	} else {
		var err error
		tables, err = experiments.Run(env, *exp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qabench: %v\n", err)
			os.Exit(2)
		}
	}
	for _, t := range tables {
		fmt.Println(t.String())
	}
	fmt.Printf("completed in %v\n", time.Since(start).Round(time.Millisecond))
}
