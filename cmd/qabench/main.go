// Command qabench regenerates the paper's evaluation tables and figures on
// the simulated cluster.
//
// Usage:
//
//	qabench                 # run every experiment at paper scale
//	qabench -exp table5     # one experiment (see -list)
//	qabench -scale small    # fast, down-scaled environment
//	qabench -list           # list experiment ids
//	qabench -stage-metrics  # also print wall-clock p50/p90/p99 per Q/A stage
//	qabench -perf           # run the hot-path benchmark suite → BENCH_pr2.json
//	qabench -chaos          # run a seeded fault schedule against a live loopback cluster
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"distqa/internal/chaos"
	"distqa/internal/corpus"
	"distqa/internal/experiments"
	"distqa/internal/obs"
	"distqa/internal/perf"
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run, or 'all'")
	scale := flag.String("scale", "paper", "environment scale: paper or small")
	list := flag.Bool("list", false, "list experiment ids and exit")
	stageMetrics := flag.Bool("stage-metrics", false, "record wall-clock per-stage latency histograms and print p50/p90/p99")
	perfMode := flag.Bool("perf", false, "run the hot-path benchmark suite instead of the experiments")
	perfOut := flag.String("perf-out", "BENCH_pr2.json", "perf mode: output file for the JSON report")
	perfBudget := flag.Duration("perf-budget", time.Second, "perf mode: measuring time per benchmark")
	perfScale := flag.String("perf-scale", "tiny", "perf mode: corpus scale (tiny or trec8)")
	chaosMode := flag.Bool("chaos", false, "run a seeded fault schedule against a live loopback cluster instead of the experiments")
	chaosSeed := flag.Int64("seed", 1, "chaos mode: schedule seed (same seed => byte-identical event log)")
	chaosNodes := flag.Int("nodes", 4, "chaos mode: cluster size")
	chaosQuestions := flag.Int("chaos-questions", 12, "chaos mode: questions to ask across the schedule")
	chaosScenario := flag.String("chaos-scenario", chaos.ScenarioMixed, "chaos mode: scenario (crash, blackout, partition, mixed)")
	flag.Parse()

	if *chaosMode {
		os.Exit(runChaos(*chaosSeed, *chaosNodes, *chaosQuestions, *chaosScenario))
	}

	if *perfMode {
		os.Exit(runPerf(*perfOut, *perfBudget, *perfScale))
	}

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}

	var env *experiments.Env
	switch *scale {
	case "paper":
		env = experiments.Paper()
	case "small":
		env = experiments.Small()
	default:
		fmt.Fprintf(os.Stderr, "qabench: unknown scale %q (want paper or small)\n", *scale)
		os.Exit(2)
	}

	var stageReg *obs.Registry
	if *stageMetrics {
		// A private registry keeps the bench histograms clear of the live
		// cluster's; the observer hooks every stage of the shared engines.
		stageReg = obs.NewRegistry()
		observer := stageReg.StageObserver("qa_stage_seconds")
		env.Engine().Observer = observer
		env.Engine8().Observer = observer
	}

	start := time.Now()
	var tables []experiments.Table
	if *exp == "all" {
		tables = experiments.All(env)
	} else {
		var err error
		tables, err = experiments.Run(env, *exp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qabench: %v\n", err)
			os.Exit(2)
		}
	}
	for _, t := range tables {
		fmt.Println(t.String())
	}
	if stageReg != nil {
		printStageMetrics(stageReg)
	}
	fmt.Printf("completed in %v\n", time.Since(start).Round(time.Millisecond))
}

// runChaos executes one seeded chaos schedule against a live loopback
// cluster (internal/chaos) and exits non-zero if any question missed the
// planted answer or any fault-tolerance expectation was violated.
func runChaos(seed int64, nodes, questions int, scenario string) int {
	switch scenario {
	case chaos.ScenarioCrash, chaos.ScenarioBlackout, chaos.ScenarioPartition, chaos.ScenarioMixed:
	default:
		fmt.Fprintf(os.Stderr, "qabench: unknown -chaos-scenario %q (want crash, blackout, partition or mixed)\n", scenario)
		return 2
	}
	res, err := chaos.Run(chaos.Config{
		Seed:      seed,
		Nodes:     nodes,
		Questions: questions,
		Scenario:  scenario,
		Out:       os.Stdout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qabench: chaos: %v\n", err)
		return 1
	}
	if !res.OK() {
		for _, f := range res.Failures {
			fmt.Fprintf(os.Stderr, "qabench: chaos: FAIL: %s\n", f)
		}
		return 1
	}
	fmt.Println("chaos: OK")
	return 0
}

// runPerf executes the hot-path benchmark suite (internal/perf) and writes
// the machine-readable report to out, printing a human summary to stdout.
func runPerf(out string, budget time.Duration, scale string) int {
	cfg := perf.SuiteConfig{Budget: budget, Log: os.Stderr}
	switch scale {
	case "tiny":
		cfg.Corpus = corpus.Tiny()
	case "trec8":
		cfg.Corpus = corpus.TREC8Like()
	default:
		fmt.Fprintf(os.Stderr, "qabench: unknown -perf-scale %q (want tiny or trec8)\n", scale)
		return 2
	}
	report, err := perf.RunSuite(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qabench: perf: %v\n", err)
		return 1
	}
	report.WriteText(os.Stdout)
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qabench: perf: %v\n", err)
		return 1
	}
	defer f.Close()
	if err := report.WriteJSON(f); err != nil {
		fmt.Fprintf(os.Stderr, "qabench: perf: write %s: %v\n", out, err)
		return 1
	}
	fmt.Printf("wrote %s\n", out)
	return 0
}

// printStageMetrics renders the wall-clock latency quantiles of each pipeline
// stage recorded during the run (real execution time of the module code, not
// the simulator's virtual cost model).
func printStageMetrics(reg *obs.Registry) {
	fmt.Println("wall-clock stage latency (real module execution, not virtual cost):")
	fmt.Printf("  %-6s %10s %12s %12s %12s\n", "stage", "calls", "p50 ms", "p90 ms", "p99 ms")
	for _, stage := range []string{obs.StageQP, obs.StagePR, obs.StagePS, obs.StagePO, obs.StageAP, obs.StageMerge} {
		h := reg.Histogram("qa_stage_seconds", obs.Labels{"stage": stage}, obs.LatencyBuckets())
		if h.Count() == 0 {
			continue
		}
		s := h.Snapshot()
		fmt.Printf("  %-6s %10d %12.3f %12.3f %12.3f\n",
			stage, h.Count(), s.P50()*1000, s.P90()*1000, s.P99()*1000)
	}
	fmt.Println()
}
