// Command qanode runs one live distributed-Q/A node: it generates its
// replica of the synthetic collection, indexes it, listens for questions
// and sub-tasks over TCP, and heartbeats its load to its peers.
//
// Start a three-node cluster on one machine:
//
//	qanode -addr 127.0.0.1:7101 -peers 127.0.0.1:7102,127.0.0.1:7103 &
//	qanode -addr 127.0.0.1:7102 -peers 127.0.0.1:7101,127.0.0.1:7103 &
//	qanode -addr 127.0.0.1:7103 -peers 127.0.0.1:7101,127.0.0.1:7102 &
//
// then query it with qactl.
//
// With -shards K (and optionally -replicas R) each node indexes only the
// sub-collections of the shards chained declustering places on it; questions
// scatter-gather across one live replica per shard. Every node must be
// started with the same -shards/-replicas and the same address set (shard
// placement is derived from the sorted addresses):
//
//	qanode -addr 127.0.0.1:7101 -peers 127.0.0.1:7102,127.0.0.1:7103 -shards 2 -replicas 2 &
//	qanode -addr 127.0.0.1:7102 -peers 127.0.0.1:7101,127.0.0.1:7103 -shards 2 -replicas 2 &
//	qanode -addr 127.0.0.1:7103 -peers 127.0.0.1:7101,127.0.0.1:7102 -shards 2 -replicas 2 &
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"

	"distqa/internal/corpus"
	"distqa/internal/index"
	"distqa/internal/live"
	"distqa/internal/obs"
	"distqa/internal/qa"
	"distqa/internal/shard"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7101", "TCP listen address")
	peers := flag.String("peers", "", "comma-separated peer addresses")
	collection := flag.String("collection", "tiny", "collection config: tiny, trec8like or trec9like")
	maxConcurrent := flag.Int("max-concurrent", 4, "admission limit (simultaneous questions)")
	cacheDir := flag.String("cache-dir", "", "directory for index snapshots (skip re-indexing on restart)")
	metricsAddr := flag.String("metrics-addr", "", "HTTP listen address serving /metrics (Prometheus text) and /spans (Chrome trace-event JSON); empty disables")
	shards := flag.Int("shards", 0, "shard the collection index into K shards (0 = full replica on every node); every node must use the same value")
	replicas := flag.Int("replicas", 1, "replicas per shard under chained declustering (used with -shards)")
	noRouting := flag.Bool("no-selective-routing", false, "pin scatter-gather to full fan-out: no term summaries are built, gossiped or consulted (used with -shards)")
	summaryBytes := flag.Int("summary-filter-bytes", 0, "cap each gossiped shard summary's vocabulary filter to this many bytes (0 = default)")
	summaryTerms := flag.Int("summary-top-terms", 0, "cap each gossiped shard summary's document-frequency sketch to this many terms (0 = default)")
	compressedIndex := flag.Bool("compressed-index", true, "use the block-compressed postings core; snapshots load via mmap so indexes larger than RAM page in lazily (false selects the plain sorted-slice core)")
	flag.Parse()

	var cfg corpus.Config
	switch *collection {
	case "tiny":
		cfg = corpus.Tiny()
	case "trec8like":
		cfg = corpus.TREC8Like()
	case "trec9like":
		cfg = corpus.TREC9Like()
	default:
		fmt.Fprintf(os.Stderr, "qanode: unknown collection %q\n", *collection)
		os.Exit(2)
	}

	nodeCfg := live.NodeConfig{
		Addr:          *addr,
		Corpus:        cfg,
		MaxConcurrent: *maxConcurrent,
	}
	if *peers != "" {
		nodeCfg.Peers = strings.Split(*peers, ",")
	}

	// Sharding: every node derives the same placement from the same flags —
	// the node's index in the sorted address set picks its shards under
	// chained declustering, so no coordinator hands out assignments.
	var holdSubs []int // nil = full replica
	if *shards > 0 {
		cluster := append([]string{*addr}, nodeCfg.Peers...)
		sort.Strings(cluster)
		uniq := cluster[:1]
		for _, a := range cluster[1:] {
			if a != uniq[len(uniq)-1] {
				uniq = append(uniq, a)
			}
		}
		cluster = uniq
		nodeIndex := sort.SearchStrings(cluster, *addr)
		coll := corpus.Generate(cfg)
		k, r, err := shard.Normalize(*shards, *replicas, len(cluster), len(coll.Subs))
		if err != nil {
			fmt.Fprintf(os.Stderr, "qanode: -shards %d -replicas %d: %v\n", *shards, *replicas, err)
			os.Exit(2)
		}
		nodeCfg.Shard = live.ShardConfig{
			K: k, R: r, NodeIndex: nodeIndex, ClusterSize: len(cluster),
			Routing: live.RoutingConfig{
				Disabled:     *noRouting,
				SummaryBytes: *summaryBytes,
				TopTerms:     *summaryTerms,
			},
		}
		holdSubs = shard.HoldingSubs(nodeIndex, len(cluster), k, r, len(coll.Subs))
		fmt.Printf("qanode: sharded node %d/%d: K=%d R=%d, indexing %d/%d sub-collections\n",
			nodeIndex, len(cluster), k, r, len(holdSubs), len(coll.Subs))
	}

	fmt.Printf("qanode: building %s collection replica...\n", *collection)
	ixOpts := index.IndexOptions{Compressed: *compressedIndex}
	if *cacheDir != "" {
		engine, err := engineWithCache(cfg, *cacheDir, holdSubs, nodeCfg.Shard, ixOpts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qanode: %v\n", err)
			os.Exit(1)
		}
		nodeCfg.Engine = engine
	} else if !*compressedIndex {
		// No snapshot cache, non-default core: build the engine here so the
		// node does not fall back to the default (compressed) build.
		coll := corpus.Generate(cfg)
		var set *index.Set
		if holdSubs != nil {
			set = index.BuildSubsetWith(coll, holdSubs, ixOpts)
		} else {
			set = index.BuildAllWith(coll, ixOpts)
		}
		nodeCfg.Engine = qa.NewEngine(coll, set)
	}
	node, err := live.StartNode(nodeCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qanode: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("qanode: serving on %s (%d peers configured)\n", node.Addr(), len(nodeCfg.Peers))

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			node.WriteMetricsText(w) //nolint:errcheck
		})
		mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			obs.WriteChromeJSON(w, obs.ChromeFromSpans(node.Spans().Snapshot())) //nolint:errcheck
		})
		// Profiling hooks ride the same listener. The custom ServeMux skips
		// net/http/pprof's DefaultServeMux registration, so wire the handlers
		// explicitly (the /debug/pprof/ index routes named profiles itself).
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "qanode: metrics listener: %v\n", err)
			}
		}()
		fmt.Printf("qanode: metrics on http://%s/metrics, span trace on http://%s/spans, profiles on http://%s/debug/pprof/\n",
			*metricsAddr, *metricsAddr, *metricsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("qanode: shutting down")
	node.Close()
}

// engineWithCache builds the engine, loading the index snapshot from
// cacheDir when one matches the collection and writing one otherwise. A
// sharded node (holdSubs non-nil) snapshots only its shard-scoped subset,
// under a name keyed by the placement so a topology change rebuilds.
// Compressed-core snapshots load via mmap, so posting blocks page in on
// demand and stay evictable — an index bigger than RAM remains serviceable.
// Pre-DQIX (gob) snapshots fail to load and are rebuilt in place.
func engineWithCache(cfg corpus.Config, cacheDir string, holdSubs []int, sc live.ShardConfig, opts index.IndexOptions) (*qa.Engine, error) {
	coll := corpus.Generate(cfg)
	name := fmt.Sprintf("%s-%d.idx", cfg.Name, cfg.Seed)
	if holdSubs != nil {
		name = fmt.Sprintf("%s-%d-k%dr%dn%dof%d.idx", cfg.Name, cfg.Seed, sc.K, sc.R, sc.NodeIndex, sc.ClusterSize)
	}
	path := filepath.Join(cacheDir, name)
	if _, err := os.Stat(path); err == nil {
		set, err := index.LoadMappedWith(path, coll, opts)
		if err == nil {
			how := "mmap"
			if !opts.Compressed {
				how = "decoded to plain core"
			}
			fmt.Printf("qanode: loaded index snapshot %s (%s)\n", path, how)
			return qa.NewEngine(coll, set), nil
		}
		fmt.Printf("qanode: stale snapshot %s (%v); rebuilding\n", path, err)
	}
	var set *index.Set
	if holdSubs != nil {
		set = index.BuildSubsetWith(coll, holdSubs, opts)
	} else {
		set = index.BuildAllWith(coll, opts)
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := set.Save(f); err != nil {
		return nil, err
	}
	fmt.Printf("qanode: wrote index snapshot %s\n", path)
	return qa.NewEngine(coll, set), nil
}
