// Command qanode runs one live distributed-Q/A node: it generates its
// replica of the synthetic collection, indexes it, listens for questions
// and sub-tasks over TCP, and heartbeats its load to its peers.
//
// Start a three-node cluster on one machine:
//
//	qanode -addr 127.0.0.1:7101 -peers 127.0.0.1:7102,127.0.0.1:7103 &
//	qanode -addr 127.0.0.1:7102 -peers 127.0.0.1:7101,127.0.0.1:7103 &
//	qanode -addr 127.0.0.1:7103 -peers 127.0.0.1:7101,127.0.0.1:7102 &
//
// then query it with qactl.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"distqa/internal/corpus"
	"distqa/internal/index"
	"distqa/internal/live"
	"distqa/internal/obs"
	"distqa/internal/qa"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7101", "TCP listen address")
	peers := flag.String("peers", "", "comma-separated peer addresses")
	collection := flag.String("collection", "tiny", "collection config: tiny, trec8like or trec9like")
	maxConcurrent := flag.Int("max-concurrent", 4, "admission limit (simultaneous questions)")
	cacheDir := flag.String("cache-dir", "", "directory for index snapshots (skip re-indexing on restart)")
	metricsAddr := flag.String("metrics-addr", "", "HTTP listen address serving /metrics (Prometheus text) and /spans (Chrome trace-event JSON); empty disables")
	flag.Parse()

	var cfg corpus.Config
	switch *collection {
	case "tiny":
		cfg = corpus.Tiny()
	case "trec8like":
		cfg = corpus.TREC8Like()
	case "trec9like":
		cfg = corpus.TREC9Like()
	default:
		fmt.Fprintf(os.Stderr, "qanode: unknown collection %q\n", *collection)
		os.Exit(2)
	}

	nodeCfg := live.NodeConfig{
		Addr:          *addr,
		Corpus:        cfg,
		MaxConcurrent: *maxConcurrent,
	}
	if *peers != "" {
		nodeCfg.Peers = strings.Split(*peers, ",")
	}

	fmt.Printf("qanode: building %s collection replica...\n", *collection)
	if *cacheDir != "" {
		engine, err := engineWithCache(cfg, *cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qanode: %v\n", err)
			os.Exit(1)
		}
		nodeCfg.Engine = engine
	}
	node, err := live.StartNode(nodeCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qanode: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("qanode: serving on %s (%d peers configured)\n", node.Addr(), len(nodeCfg.Peers))

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			node.WriteMetricsText(w) //nolint:errcheck
		})
		mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			obs.WriteChromeJSON(w, obs.ChromeFromSpans(node.Spans().Snapshot())) //nolint:errcheck
		})
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "qanode: metrics listener: %v\n", err)
			}
		}()
		fmt.Printf("qanode: metrics on http://%s/metrics, span trace on http://%s/spans\n", *metricsAddr, *metricsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("qanode: shutting down")
	node.Close()
}

// engineWithCache builds the engine, loading the index snapshot from
// cacheDir when one matches the collection and writing one otherwise.
func engineWithCache(cfg corpus.Config, cacheDir string) (*qa.Engine, error) {
	coll := corpus.Generate(cfg)
	path := filepath.Join(cacheDir, fmt.Sprintf("%s-%d.idx", cfg.Name, cfg.Seed))
	if f, err := os.Open(path); err == nil {
		set, err := index.Load(f, coll)
		f.Close()
		if err == nil {
			fmt.Printf("qanode: loaded index snapshot %s\n", path)
			return qa.NewEngine(coll, set), nil
		}
		fmt.Printf("qanode: stale snapshot %s (%v); rebuilding\n", path, err)
	}
	set := index.BuildAll(coll)
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := set.Save(f); err != nil {
		return nil, err
	}
	fmt.Printf("qanode: wrote index snapshot %s\n", path)
	return qa.NewEngine(coll, set), nil
}
