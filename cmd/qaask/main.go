// Command qaask answers ad-hoc questions with the sequential pipeline —
// the quickest way to poke at the Q/A substrate itself.
//
//	qaask -collection tiny -list 5          # show plantable questions
//	qaask -collection tiny -q "Where is the Lake Zanuth?"
package main

import (
	"flag"
	"fmt"
	"os"

	"distqa/internal/corpus"
	"distqa/internal/index"
	"distqa/internal/qa"
)

func main() {
	collection := flag.String("collection", "tiny", "collection config: tiny, trec8like or trec9like")
	question := flag.String("q", "", "question to answer")
	list := flag.Int("list", 0, "list this many planted questions (with ground truth) and exit")
	flag.Parse()

	var cfg corpus.Config
	switch *collection {
	case "tiny":
		cfg = corpus.Tiny()
	case "trec8like":
		cfg = corpus.TREC8Like()
	case "trec9like":
		cfg = corpus.TREC9Like()
	default:
		fmt.Fprintf(os.Stderr, "qaask: unknown collection %q\n", *collection)
		os.Exit(2)
	}
	coll := corpus.Generate(cfg)
	engine := qa.NewEngine(coll, index.BuildAll(coll))

	if *list > 0 {
		n := *list
		if n > len(coll.Facts) {
			n = len(coll.Facts)
		}
		for _, f := range coll.Facts[:n] {
			fmt.Printf("%-70s → %s\n", f.Question, f.Answer)
		}
		return
	}
	if *question == "" {
		flag.Usage()
		os.Exit(2)
	}

	res := engine.AnswerSequential(*question)
	nom := res.Costs.Nominal(1.0, 25e6)
	fmt.Printf("retrieved %d paragraphs, %d accepted; 2001-hardware time %.1f s (QP %.1f / PR %.1f / PS %.1f / AP %.1f)\n\n",
		res.Retrieved, res.Accepted, nom.Total, nom.QP, nom.PR, nom.PS, nom.AP)
	if len(res.Answers) == 0 {
		fmt.Println("no answers found")
		return
	}
	for i, a := range res.Answers {
		fmt.Printf("%d. %s (%s, score %.2f)\n   ... %s ...\n", i+1, a.Text, a.Type, a.Score, a.Snippet)
	}
}
