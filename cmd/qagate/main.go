// Command qagate runs the cluster's public HTTP/JSON front door: it fronts
// a live Q/A cluster (qanode daemons) over the internal mux transport and
// exposes POST /v1/ask, POST /v1/ask/batch, GET /v1/healthz, GET /v1/statusz
// and GET /metrics, with per-client token-bucket rate limiting, a global
// concurrency cap with queue-depth load shedding, edge-deadline propagation
// into the cluster, and graceful drain on SIGTERM.
//
// Front a three-node cluster:
//
//	qagate -addr 127.0.0.1:8080 -nodes 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103
//	curl -s localhost:8080/v1/ask -d '{"question":"what is ...?","timeout_ms":2000}'
//
// On SIGTERM the gateway stops admitting (healthz flips to 503 while the
// listener still accepts, so load balancers observe not-ready first), lets
// in-flight asks finish, then closes the listener.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"distqa/internal/gate"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
	nodes := flag.String("nodes", "", "comma-separated cluster node addresses (required)")
	maxInflight := flag.Int("max-inflight", 32, "global cap on concurrently executing asks")
	maxQueue := flag.Int("max-queue", 0, "admission queue bound; beyond it requests are shed with 429 (0 = 2x max-inflight)")
	rate := flag.Float64("rate", 0, "per-client token-bucket refill rate, requests/second (0 = unlimited)")
	burst := flag.Float64("burst", 0, "per-client token-bucket capacity (0 = 2x rate)")
	defTimeout := flag.Duration("default-timeout", 10*time.Second, "edge deadline when a request has no timeout_ms")
	maxTimeout := flag.Duration("max-timeout", 30*time.Second, "cap on client-supplied edge deadlines")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "SIGTERM drain bound: in-flight asks get this long to finish")
	flag.Parse()

	if *nodes == "" {
		fmt.Fprintln(os.Stderr, "qagate: -nodes is required")
		os.Exit(2)
	}
	g, err := gate.New(gate.Config{
		Addr:           *addr,
		Nodes:          strings.Split(*nodes, ","),
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		RatePerClient:  *rate,
		Burst:          *burst,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qagate: %v\n", err)
		os.Exit(1)
	}
	if err := g.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "qagate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("qagate: serving on http://%s (nodes: %s)\n", g.Addr(), *nodes)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("qagate: draining (in-flight asks finishing)")
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := g.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "qagate: drain: %v\n", err)
		g.Close()
		os.Exit(1)
	}
	fmt.Println("qagate: drained")
}
