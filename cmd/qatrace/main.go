// Command qatrace reproduces the paper's Figure 7: per-node scheduling
// traces of one complex question on a homogeneous 4-processor system, with
// RECV partitioning for paragraph retrieval/scoring and a selectable
// strategy for answer processing.
//
// Usage:
//
//	qatrace             # all three AP strategies (Figure 7 a, b, c)
//	qatrace -ap ISEND   # one strategy
//	qatrace -scale small
package main

import (
	"flag"
	"fmt"
	"os"

	"distqa/internal/experiments"
)

func main() {
	ap := flag.String("ap", "all", "AP partitioning strategy: SEND, ISEND, RECV or all")
	scale := flag.String("scale", "paper", "environment scale: paper or small")
	flag.Parse()

	var env *experiments.Env
	switch *scale {
	case "paper":
		env = experiments.Paper()
	case "small":
		env = experiments.Small()
	default:
		fmt.Fprintf(os.Stderr, "qatrace: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	names := []string{"SEND", "ISEND", "RECV"}
	if *ap != "all" {
		names = []string{*ap}
	}
	for _, name := range names {
		fmt.Printf("=== Figure 7: RECV for PR/PS, %s for AP ===\n", name)
		log, res, err := experiments.Figure7Trace(env, name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qatrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(log.String())
		fmt.Printf("--- question %d: %d paragraphs accepted, AP time %.2f s, response %.2f s\n\n",
			res.ID, res.Accepted, res.Times.AP, res.Latency())
	}
}
