// Command qatrace reproduces the paper's Figure 7: per-node scheduling
// traces of one complex question on a homogeneous 4-processor system, with
// RECV partitioning for paragraph retrieval/scoring and a selectable
// strategy for answer processing.
//
// Usage:
//
//	qatrace             # all three AP strategies (Figure 7 a, b, c)
//	qatrace -ap ISEND   # one strategy
//	qatrace -scale small
//	qatrace -format chrome > fig7.json   # open in chrome://tracing / Perfetto
package main

import (
	"flag"
	"fmt"
	"os"

	"distqa/internal/experiments"
	"distqa/internal/obs"
)

func main() {
	ap := flag.String("ap", "all", "AP partitioning strategy: SEND, ISEND, RECV or all")
	scale := flag.String("scale", "paper", "environment scale: paper or small")
	format := flag.String("format", "text", "output format: text (Figure 7 lines) or chrome (trace-event JSON)")
	flag.Parse()

	var env *experiments.Env
	switch *scale {
	case "paper":
		env = experiments.Paper()
	case "small":
		env = experiments.Small()
	default:
		fmt.Fprintf(os.Stderr, "qatrace: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *format != "text" && *format != "chrome" {
		fmt.Fprintf(os.Stderr, "qatrace: unknown format %q\n", *format)
		os.Exit(2)
	}

	names := []string{"SEND", "ISEND", "RECV"}
	if *ap != "all" {
		names = []string{*ap}
	}
	// In chrome format each strategy becomes one trace "process" so all
	// requested runs land in a single JSON document with per-strategy rows.
	var chrome []obs.ChromeEvent
	for pid, name := range names {
		if *format == "text" {
			fmt.Printf("=== Figure 7: RECV for PR/PS, %s for AP ===\n", name)
		}
		log, res, err := experiments.Figure7Trace(env, name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qatrace: %v\n", err)
			os.Exit(1)
		}
		if *format == "chrome" {
			chrome = append(chrome, obs.ChromeEvent{
				Name: "process_name", Ph: "M", PID: pid,
				Args: map[string]any{"name": fmt.Sprintf("AP=%s", name)},
			})
			for _, ev := range log.ChromeEvents() {
				ev.PID = pid
				chrome = append(chrome, ev)
			}
			continue
		}
		fmt.Print(log.String())
		fmt.Printf("--- question %d: %d paragraphs accepted, AP time %.2f s, response %.2f s\n\n",
			res.ID, res.Accepted, res.Times.AP, res.Latency())
	}
	if *format == "chrome" {
		if err := obs.WriteChromeJSON(os.Stdout, chrome); err != nil {
			fmt.Fprintf(os.Stderr, "qatrace: %v\n", err)
			os.Exit(1)
		}
	}
}
