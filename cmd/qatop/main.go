// Command qatop is a live terminal dashboard for a Q/A cluster: it polls one
// node for fleet-wide registry snapshots (kindMetricsPull fan-out) plus its
// status, and renders cluster QPS, per-stage latency quantiles, cache hit
// rates, SLO burn rates, per-node health and the shard table, refreshing in
// place.
//
//	qatop -node 127.0.0.1:7101
//	qatop -node 127.0.0.1:7101 -interval 2s
//	qatop -node 127.0.0.1:7101 -once          # one frame, no screen clearing
//	qatop -node 127.0.0.1:7101 -gate http://127.0.0.1:8080   # add the qagate admission row
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"distqa/internal/gate"
	"distqa/internal/live"
	"distqa/internal/obs"
)

func main() {
	node := flag.String("node", "127.0.0.1:7101", "any cluster node address")
	interval := flag.Duration("interval", time.Second, "refresh period")
	count := flag.Int("count", 0, "frames to render before exiting (0 = until interrupted)")
	once := flag.Bool("once", false, "render one frame and exit (implies -plain)")
	plain := flag.Bool("plain", false, "no ANSI screen clearing (append frames; for logs/pipes)")
	gateURL := flag.String("gate", "", "qagate base URL (http://host:port): include a gateway admission row each frame")
	timeout := flag.Duration("timeout", 5*time.Second, "per-poll request timeout")
	flag.Parse()
	if *once {
		*count = 1
		*plain = true
	}

	var prevQuestions int64 = -1
	var prevAt time.Time
	for frame := 0; *count == 0 || frame < *count; frame++ {
		if frame > 0 {
			time.Sleep(*interval)
		}
		snaps, err := live.QueryClusterMetrics(*node, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qatop: %v\n", err)
			os.Exit(1)
		}
		st, err := live.QueryStatus(*node, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qatop: %v\n", err)
			os.Exit(1)
		}
		if !*plain {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		merged := obs.MergeSnapshots(snaps)
		now := time.Now()
		questions, _ := merged.Value("live_questions_total", nil)
		qps := math.NaN()
		if prevQuestions >= 0 && now.After(prevAt) {
			qps = float64(questions-prevQuestions) / now.Sub(prevAt).Seconds()
		}
		prevQuestions, prevAt = questions, now
		renderFrame(os.Stdout, snaps, merged, st, qps)
		if *gateURL != "" {
			renderGateRow(os.Stdout, *gateURL, *timeout)
		}
	}
}

// renderGateRow appends the qagate admission row to a frame. A poll failure
// renders inline rather than killing the dashboard: the gateway restarting
// (drain, deploy) is exactly when an operator is watching.
func renderGateRow(w *os.File, base string, timeout time.Duration) {
	st, err := gate.FetchStatus(base, timeout)
	if err != nil {
		fmt.Fprintf(w, "\ngate %s: unreachable (%v)\n", base, err)
		return
	}
	state := "serving"
	if st.Draining {
		state = "DRAINING"
	}
	fmt.Fprintf(w, "\ngate %s: %s, %d/%d in flight, queue %d/%d (peak %d), shed %d queue / %d rate, %d timeouts, %d clients\n",
		st.Addr, state, st.InFlight, st.MaxInflight, st.QueueDepth, st.QueueBound, st.QueuePeak,
		st.ShedQueue, st.ShedRate, st.Timeouts, st.ClientKeys)
	for _, row := range st.SLO {
		okState := "ok"
		if !row.OK {
			okState = "VIOLATED"
		}
		fmt.Fprintf(w, "  gate slo %-8s p%.0f<=%.2fs/%v: obs %.3fs burn %.2fx (%d obs, %d err) %s\n",
			row.Op, row.Quantile*100, row.Target, row.Window,
			row.Observed, row.BurnRate, row.Total, row.Errors, okState)
	}
}

// renderFrame writes one dashboard frame: cluster totals, latency quantiles,
// SLO rows, per-node rows and the shard table.
func renderFrame(w *os.File, snaps []obs.RegistrySnapshot, merged obs.RegistrySnapshot, st *live.Status, qps float64) {
	questions, _ := merged.Value("live_questions_total", nil)
	fmt.Fprintf(w, "qatop — %d node(s), %d questions served", len(snaps), questions)
	if !math.IsNaN(qps) {
		fmt.Fprintf(w, ", %.1f q/s", qps)
	}
	fmt.Fprintf(w, "  (%s)\n\n", time.Now().Format("15:04:05"))

	// End-to-end and per-stage latency quantiles from the merged histograms.
	fmt.Fprintf(w, "%-14s %10s %10s %10s %10s\n", "latency", "p50", "p90", "p99", "count")
	printHistRow(w, "ask", merged, "live_ask_seconds", nil)
	for _, stage := range []string{obs.StageQP, obs.StagePR, obs.StagePS, obs.StagePO, obs.StageAP, obs.StageMerge} {
		printHistRow(w, "stage:"+stage, merged, "qa_stage_seconds", obs.Labels{"stage": stage})
	}
	fmt.Fprintln(w)

	// Cache hit rates, cluster-wide.
	ansHits, _ := merged.Value("live_qcache_answer_hits", nil)
	ansMisses, _ := merged.Value("live_qcache_answer_misses", nil)
	coalesced, _ := merged.Value("live_qcache_answer_coalesced", nil)
	prHits, _ := merged.Value("live_qcache_pr_hits", nil)
	prMisses, _ := merged.Value("live_qcache_pr_misses", nil)
	fmt.Fprintf(w, "caches: answer %s (%d/%d, %d coalesced), PR %s (%d/%d)\n",
		rate(ansHits, ansMisses), ansHits, ansHits+ansMisses, coalesced,
		rate(prHits, prMisses), prHits, prHits+prMisses)

	// Selective-routing effectiveness, cluster-wide (sharded clusters with
	// summary routing only): what fraction of per-shard routing verdicts
	// skipped the fan-out, and how often whole plans fell back to scatter.
	skips, _ := merged.Value("live_route_decisions_total", obs.Labels{"action": "skip"})
	scatters, _ := merged.Value("live_route_decisions_total", obs.Labels{"action": "scatter"})
	planSel, _ := merged.Value("live_route_plans_total", obs.Labels{"outcome": "selective"})
	planFb, _ := merged.Value("live_route_plans_total", obs.Labels{"outcome": "fallback"})
	if skips+scatters+planSel+planFb > 0 {
		shortCircuits, _ := merged.Value("live_route_shortcircuits_total", nil)
		fmt.Fprintf(w, "routing: %s shard fan-outs skipped (%d/%d), plans %d selective / %d fallback, %d short-circuits\n",
			rate(skips, scatters), skips, skips+scatters, planSel, planFb, shortCircuits)
	}

	// SLO rows from the polled node's engine.
	for _, row := range st.SLO {
		state := "ok"
		if !row.OK {
			state = "VIOLATED"
		}
		exemplar := ""
		if row.ExemplarQID != 0 {
			exemplar = fmt.Sprintf("  exemplar qid=%d", row.ExemplarQID)
		}
		fmt.Fprintf(w, "slo %-8s p%.0f<=%.2fs/%v: obs %.3fs burn %.2fx (%d obs, %d err) %s%s\n",
			row.Op, row.Quantile*100, row.Target, row.Window,
			row.Observed, row.BurnRate, row.Total, row.Errors, state, exemplar)
	}
	fmt.Fprintln(w)

	// Per-node rows: questions, goroutines, heap, breaker/peer state counts.
	ordered := append([]obs.RegistrySnapshot(nil), snaps...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Node < ordered[j].Node })
	fmt.Fprintf(w, "%-22s %10s %8s %10s %9s %9s\n", "node", "questions", "gorout", "heap", "peers-ok", "brk-open")
	for _, s := range ordered {
		q, _ := s.Value("live_questions_total", nil)
		g, _ := s.Value("go_goroutines", nil)
		h, _ := s.Value("go_heap_alloc_bytes", nil)
		peersOK, brkOpen := peerStateCounts(s)
		fmt.Fprintf(w, "%-22s %10d %8d %9.1fM %9d %9d\n",
			s.Node, q, g, float64(h)/(1<<20), peersOK, brkOpen)
	}

	// Shard table (sharded clusters only).
	if sh := st.Shard; sh != nil {
		state := "complete"
		if !sh.Complete {
			state = "INCOMPLETE"
		}
		fmt.Fprintf(w, "\nshards: K=%d R=%d epoch=%d %s\n", sh.K, sh.R, sh.Epoch, state)
		for _, row := range sh.Shards {
			replicas := "-- none --"
			if len(row.Replicas) > 0 {
				replicas = strings.Join(row.Replicas, " ")
			}
			fmt.Fprintf(w, "  shard %d: %s\n", row.Shard, replicas)
		}
	}
}

// printHistRow renders one latency row from a merged histogram, skipping
// metrics with no observations.
func printHistRow(w *os.File, label string, snap obs.RegistrySnapshot, name string, labels obs.Labels) {
	hs, ok := snap.Hist(name, labels)
	if !ok || hs.Count == 0 {
		return
	}
	fmt.Fprintf(w, "%-14s %9.1fms %9.1fms %9.1fms %10d\n",
		label, hs.Quantile(0.5)*1000, hs.Quantile(0.9)*1000, hs.Quantile(0.99)*1000, hs.Count)
}

// peerStateCounts counts peers this node sees as alive and breakers it holds
// open, from the per-peer state gauges.
func peerStateCounts(s obs.RegistrySnapshot) (alive, open int64) {
	for _, m := range s.Metrics {
		switch m.Name {
		case "live_peer_state":
			if m.Value == 0 { // detector state 0 = alive
				alive++
			}
		case "live_breaker_state":
			if m.Value != 0 { // breaker state non-zero = open/half-open
				open++
			}
		}
	}
	return alive, open
}

// rate renders a hits/total percentage, or "-" before any traffic.
func rate(hits, misses int64) string {
	total := hits + misses
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", float64(hits)/float64(total)*100)
}
