package fault

import (
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if d := in.Decide("a", "b", OpHeartbeat); d.Faulty() {
		t.Fatalf("nil injector injected %+v", d)
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("nil injector stats %+v", s)
	}
	if r := in.Rules(); r != nil {
		t.Fatalf("nil injector rules %v", r)
	}
}

func TestRuleMatching(t *testing.T) {
	in := New(1)
	in.Add(Rule{From: "a", To: "b", Op: OpHeartbeat, Drop: true})
	if d := in.Decide("a", "b", OpHeartbeat); !d.Drop {
		t.Fatal("exact match did not fire")
	}
	for _, tc := range [][3]string{
		{"x", "b", OpHeartbeat}, // wrong source
		{"a", "x", OpHeartbeat}, // wrong destination
		{"a", "b", OpAP},        // wrong op
	} {
		if d := in.Decide(tc[0], tc[1], tc[2]); d.Faulty() {
			t.Fatalf("rule fired for %v: %+v", tc, d)
		}
	}
	// Wildcards.
	in.Clear()
	in.Add(Rule{To: "b", Delay: time.Millisecond})
	if d := in.Decide("anyone", "b", OpAP); d.Delay != time.Millisecond {
		t.Fatalf("wildcard rule did not fire: %+v", d)
	}
}

func TestMaxHitsExpires(t *testing.T) {
	in := New(1)
	in.Add(Rule{Op: OpHeartbeat, Drop: true, MaxHits: 2})
	fired := 0
	for i := 0; i < 5; i++ {
		if in.Decide("a", "b", OpHeartbeat).Drop {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("MaxHits=2 rule fired %d times", fired)
	}
	if got := in.Rules(); len(got) != 0 {
		t.Fatalf("expired rule still listed: %v", got)
	}
}

func TestRemove(t *testing.T) {
	in := New(1)
	id := in.Add(Rule{Drop: true})
	in.Remove(id)
	if d := in.Decide("a", "b", OpAP); d.Drop {
		t.Fatal("removed rule still fires")
	}
	in.Remove(id) // removing twice is a no-op
}

func TestProbabilisticDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		in := New(seed)
		in.Add(Rule{Op: OpTransfer, Prob: 0.5, Drop: true})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Decide("a", "b", OpTransfer).Drop
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 200-decision sequences")
	}
	drops := 0
	for _, v := range a {
		if v {
			drops++
		}
	}
	if drops < 50 || drops > 150 {
		t.Fatalf("p=0.5 rule fired %d/200 times", drops)
	}
}

func TestScriptedRulesConsumeNoRandomness(t *testing.T) {
	// Two injectors with different seeds but only always-fire rules must
	// agree decision-for-decision.
	mk := func(seed int64) *Injector {
		in := New(seed)
		in.Add(Rule{To: "b", Op: OpAP, Sever: true})
		in.Add(Rule{Op: OpHeartbeat, Duplicate: true})
		return in
	}
	a, b := mk(1), mk(999)
	calls := [][3]string{{"x", "b", OpAP}, {"x", "y", OpHeartbeat}, {"x", "y", OpAP}}
	for _, c := range calls {
		if da, db := a.Decide(c[0], c[1], c[2]), b.Decide(c[0], c[1], c[2]); da != db {
			t.Fatalf("scripted rules diverged on %v: %+v vs %+v", c, da, db)
		}
	}
}

func TestStatsAndFirstMatchWins(t *testing.T) {
	in := New(7)
	in.Add(Rule{Op: OpAP, Drop: true})
	in.Add(Rule{Op: OpAP, Delay: time.Second}) // shadowed by the drop rule
	d := in.Decide("a", "b", OpAP)
	if !d.Drop || d.Delay != 0 {
		t.Fatalf("first-match-wins violated: %+v", d)
	}
	in.Decide("a", "b", OpStatus) // no match
	s := in.Stats()
	if s.Decisions != 2 || s.Dropped != 1 || s.Delayed != 0 {
		t.Fatalf("stats %+v", s)
	}
}
