// Package fault is the repo's fault-injection seam: a deterministic,
// seeded Injector that decides — per (source, destination, operation)
// message — whether to drop it, delay it, duplicate its delivery, or sever
// the underlying connection.
//
// The same Injector type drives both halves of the codebase:
//
//   - internal/live wires it into the per-peer connection pool, so real
//     TCP/gob traffic between loopback nodes can be dropped, delayed,
//     duplicated or severed per peer and per request kind (heartbeat,
//     forward, pr, ap, ...);
//   - internal/simnet wires it into Transfer/Broadcast, so the virtual-time
//     simulator sees the same fault vocabulary as asymmetric partitions,
//     message loss and delivery duplication — fully deterministic under the
//     simulator's virtual clock.
//
// Determinism: all pseudo-randomness (probabilistic rules) comes from one
// mutex-guarded rand.Rand seeded at construction. Given the same seed and
// the same sequence of Decide calls, an Injector produces the same sequence
// of decisions. Rules that always fire (Prob 0 or 1) never consume
// randomness, so purely scripted schedules are deterministic regardless of
// call interleaving.
//
// The paper's partitioners (Figures 5-6) specify failure recovery — "a
// failed remote sub-task is retried locally" — and this package exists to
// prove that recovery actually works: the chaos harness (internal/chaos,
// `qabench -chaos`) builds its seeded fault schedules on top of it.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Operation names shared by the live cluster and the simulator. A rule with
// Op == "" matches any operation.
const (
	OpHeartbeat = "heartbeat" // live load-report exchange
	OpForward   = "forward"   // live question-dispatcher migration
	OpAsk       = "ask"       // live client question (same wire kind as forward)
	OpPR        = "pr"        // live paragraph-retrieval sub-task
	OpShardPR   = "shardpr"   // live shard-scoped paragraph-retrieval sub-task
	OpShardDF   = "sharddf"   // live shard document-frequency gather
	OpAP        = "ap"        // live answer-processing sub-task
	OpStatus    = "status"    // live operator status query
	OpTransfer  = "transfer"  // simnet point-to-point transfer
	OpBroadcast = "broadcast" // simnet load-monitor broadcast
)

// Decision is the injector's verdict for one message.
type Decision struct {
	// Drop fails the message: the live pool returns a transport error
	// without touching the socket; simnet reports the transfer as failed.
	Drop bool
	// Delay stalls the message before it is sent. The live pool sleeps in
	// wall-clock time; simnet sleeps in virtual time.
	Delay time.Duration
	// Duplicate delivers the message twice. Live requests are re-sent (every
	// protocol op is idempotent); simnet broadcasts are delivered to each
	// listener twice.
	Duplicate bool
	// Sever additionally tears down the underlying transport: the live pool
	// closes every pooled connection to the destination before failing the
	// call, modelling a TCP reset rather than silent loss.
	Sever bool
}

// Faulty reports whether the decision perturbs the message at all.
func (d Decision) Faulty() bool {
	return d.Drop || d.Sever || d.Duplicate || d.Delay > 0
}

// Rule matches messages and describes the fault to inject. Zero-valued
// match fields are wildcards.
type Rule struct {
	// From / To match the message's source / destination identity (live:
	// node addresses; simnet: node names like "N2"). Empty matches any.
	From, To string
	// Op matches the operation (Op* constants). Empty matches any.
	Op string
	// Prob is the per-message firing probability. Values <= 0 or >= 1 mean
	// "always" and consume no randomness.
	Prob float64
	// MaxHits disables the rule after it has fired that many times
	// (0 = unlimited) — "drop the next 3 heartbeats" style schedules.
	MaxHits int

	// The fault applied when the rule fires.
	Drop      bool
	Delay     time.Duration
	Duplicate bool
	Sever     bool
}

func (r Rule) matches(from, to, op string) bool {
	if r.From != "" && r.From != from {
		return false
	}
	if r.To != "" && r.To != to {
		return false
	}
	if r.Op != "" && r.Op != op {
		return false
	}
	return true
}

// activeRule is a registered rule with identity and hit accounting.
type activeRule struct {
	Rule
	id   int
	hits int
}

// Stats counts injected faults by kind.
type Stats struct {
	Decisions  int64 // Decide calls observed
	Dropped    int64
	Delayed    int64
	Duplicated int64
	Severed    int64
}

// Injector decides faults for messages. The zero value and the nil pointer
// are both valid "inject nothing" injectors, so call sites need no
// conditionals. Safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*activeRule
	next  int
	stats Stats
}

// New returns an Injector whose probabilistic rules draw from a rand.Rand
// seeded with seed.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Add registers a rule and returns its id (for Remove). Rules are evaluated
// in insertion order; the first match wins.
func (in *Injector) Add(r Rule) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.next++
	in.rules = append(in.rules, &activeRule{Rule: r, id: in.next})
	return in.next
}

// Remove deletes the rule with the given id. Removing an unknown id is a
// no-op (the rule may have expired via MaxHits).
func (in *Injector) Remove(id int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, r := range in.rules {
		if r.id == id {
			in.rules = append(in.rules[:i], in.rules[i+1:]...)
			return
		}
	}
}

// Clear removes every rule.
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
}

// Decide returns the fault decision for one message from -> to carrying op.
// A nil Injector (or one with no matching rule) returns the zero Decision.
func (in *Injector) Decide(from, to, op string) Decision {
	if in == nil {
		return Decision{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Decisions++
	for i := 0; i < len(in.rules); i++ {
		r := in.rules[i]
		if !r.matches(from, to, op) {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 {
			if in.rng == nil {
				in.rng = rand.New(rand.NewSource(0))
			}
			if in.rng.Float64() >= r.Prob {
				continue
			}
		}
		r.hits++
		if r.MaxHits > 0 && r.hits >= r.MaxHits {
			in.rules = append(in.rules[:i], in.rules[i+1:]...)
		}
		d := Decision{Drop: r.Drop, Delay: r.Delay, Duplicate: r.Duplicate, Sever: r.Sever}
		if d.Drop || d.Sever {
			in.stats.Dropped++
		}
		if d.Sever {
			in.stats.Severed++
		}
		if d.Delay > 0 {
			in.stats.Delayed++
		}
		if d.Duplicate {
			in.stats.Duplicated++
		}
		return d
	}
	return Decision{}
}

// Stats snapshots the fault counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Rules returns a human-readable description of the active rules, sorted by
// id — used by the chaos harness's event log.
func (in *Injector) Rules() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	rules := make([]*activeRule, len(in.rules))
	copy(rules, in.rules)
	sort.Slice(rules, func(i, j int) bool { return rules[i].id < rules[j].id })
	out := make([]string, 0, len(rules))
	for _, r := range rules {
		out = append(out, r.describe())
	}
	return out
}

func (r *activeRule) describe() string {
	var kinds []string
	if r.Drop {
		kinds = append(kinds, "drop")
	}
	if r.Sever {
		kinds = append(kinds, "sever")
	}
	if r.Duplicate {
		kinds = append(kinds, "dup")
	}
	if r.Delay > 0 {
		kinds = append(kinds, fmt.Sprintf("delay=%s", r.Delay))
	}
	if len(kinds) == 0 {
		kinds = append(kinds, "noop")
	}
	from, to, op := r.From, r.To, r.Op
	if from == "" {
		from = "*"
	}
	if to == "" {
		to = "*"
	}
	if op == "" {
		op = "*"
	}
	return fmt.Sprintf("#%d %s %s->%s op=%s", r.id, strings.Join(kinds, "+"), from, to, op)
}
