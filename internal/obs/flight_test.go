package obs

import (
	"sync"
	"testing"
	"time"
)

func rec(qid int64, d time.Duration) QuestionRecord {
	return QuestionRecord{QID: qid, Question: "q", Duration: d}
}

// TestFlightRecorderKeepsWorst checks the keep-the-worst policy: once full,
// only records slower than the current fastest retained one get in.
func TestFlightRecorderKeepsWorst(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := int64(1); i <= 3; i++ {
		if !f.Consider(rec(i, time.Duration(i)*time.Millisecond)) {
			t.Fatalf("record %d rejected with spare capacity", i)
		}
	}
	// Faster than everything retained: rejected.
	if f.Consider(rec(99, 500*time.Microsecond)) {
		t.Error("fast record accepted into a full recorder")
	}
	// Slower than the fastest retained (1ms): evicts it.
	if !f.Consider(rec(4, 10*time.Millisecond)) {
		t.Error("slow record rejected")
	}
	worst := f.Worst(0)
	if len(worst) != 3 {
		t.Fatalf("retained %d records, want 3", len(worst))
	}
	if worst[0].QID != 4 || worst[0].Duration != 10*time.Millisecond {
		t.Errorf("worst[0] = %+v, want QID 4", worst[0])
	}
	if _, ok := f.ByQID(1); ok {
		t.Error("evicted record still resolvable")
	}
	if _, ok := f.ByQID(4); !ok {
		t.Error("retained record not resolvable by QID")
	}
}

// TestFlightRecorderWorstOrdering checks slowest-first ordering with a QID
// tie-break so repeated dumps diff clean.
func TestFlightRecorderWorstOrdering(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Consider(rec(5, 2*time.Millisecond))
	f.Consider(rec(3, 9*time.Millisecond))
	f.Consider(rec(7, 2*time.Millisecond))
	f.Consider(rec(1, 4*time.Millisecond))

	got := f.Worst(3)
	want := []int64{3, 1, 5} // 9ms, 4ms, then the 2ms tie by QID
	if len(got) != 3 {
		t.Fatalf("Worst(3) returned %d records", len(got))
	}
	for i, qid := range want {
		if got[i].QID != qid {
			t.Errorf("Worst[%d].QID = %d, want %d", i, got[i].QID, qid)
		}
	}
}

// TestFlightRecorderNil checks nil-safety.
func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	if f.Consider(rec(1, time.Second)) {
		t.Error("nil recorder retained a record")
	}
	if f.Worst(5) != nil || f.Len() != 0 {
		t.Error("nil recorder reports records")
	}
	if _, ok := f.ByQID(1); ok {
		t.Error("nil recorder resolved a QID")
	}
}

// TestFlightRecorderConcurrent hammers Consider/Worst/ByQID concurrently —
// the race-detector target for the CI obs step.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				f.Consider(rec(int64(g*1000+i), time.Duration(i)*time.Microsecond))
				if i%37 == 0 {
					f.Worst(4)
					f.ByQID(int64(g*1000 + i))
				}
			}
		}(g)
	}
	wg.Wait()
	if n := f.Len(); n != 16 {
		t.Errorf("retained %d records, want capacity 16", n)
	}
	// The slowest offered duration must have survived.
	if got := f.Worst(1); len(got) != 1 || got[0].Duration != 399*time.Microsecond {
		t.Errorf("worst retained = %+v, want 399µs", got)
	}
}
