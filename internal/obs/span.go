package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Pipeline stage names used in spans and stage-labelled metrics, matching
// the paper's module abbreviations (Table 2).
const (
	StageQP    = "QP"    // question processing
	StagePR    = "PR"    // paragraph retrieval
	StagePS    = "PS"    // paragraph scoring
	StagePO    = "PO"    // paragraph ordering
	StageAP    = "AP"    // answer processing
	StageMerge = "MERGE" // answer merging + sorting
)

// SpanContext is the part of a span that travels across the wire: the
// originating question's ID and the parent span's ID. Remote sub-task
// handlers open their spans as children of this context, so a question's
// span tree crosses node boundaries.
type SpanContext struct {
	// QID identifies the originating question (trace ID). Zero means "no
	// question assigned yet"; the serving node mints one.
	QID int64
	// Span is the parent span's ID (zero for a root span).
	Span int64
}

// Span is one completed unit of work attributed to a question.
type Span struct {
	QID    int64     // question/trace ID shared by the whole tree
	ID     int64     // unique span ID
	Parent int64     // parent span ID, 0 for the root
	Name   string    // e.g. "ask", "stage:AP", "pr-subtask"
	Stage  string    // pipeline stage (StageQP...) or "" for non-stage spans
	Node   string    // address/name of the node the work ran on
	Start  time.Time // wall-clock start
	End    time.Time // wall-clock end
}

// Duration is the span's wall-clock duration.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Context returns the context under which children of this span run.
func (s Span) Context() SpanContext { return SpanContext{QID: s.QID, Span: s.ID} }

// idGen generates span and question IDs. It is seeded with the process start
// nanotime so IDs minted by different processes (different cluster nodes) do
// not collide when their spans are merged into one tree.
var idGen atomic.Int64

func init() { idGen.Store(time.Now().UnixNano()) }

// NewID mints a process-unique (and with overwhelming probability
// cluster-unique) ID for spans and questions.
func NewID() int64 { return idGen.Add(1) }

// Recorder collects completed spans in a bounded ring. A nil *Recorder is
// valid and records nothing, so span plumbing needs no conditionals.
type Recorder struct {
	node string
	max  int

	// OnEnd, when non-nil, is invoked for every completed span — the hook
	// live nodes use to feed per-stage latency histograms. Set it before the
	// recorder is shared between goroutines.
	OnEnd func(Span)

	mu    sync.Mutex
	spans []Span
	next  int  // ring write position
	full  bool // ring has wrapped
	// byQID indexes ring positions by question ID so ByQID — called on the
	// response path of every live ask — is O(spans-of-this-question) instead
	// of copying and sorting the whole ring (the 8192-entry default made
	// cache-hit responses slower than cold pipeline runs before this index).
	byQID map[int64][]int
}

// DefaultRecorderCap bounds how many completed spans a recorder retains.
const DefaultRecorderCap = 8192

// NewRecorder creates a recorder stamping spans with the given node name,
// retaining at most max spans (DefaultRecorderCap when max <= 0).
func NewRecorder(node string, max int) *Recorder {
	if max <= 0 {
		max = DefaultRecorderCap
	}
	return &Recorder{
		node:  node,
		max:   max,
		spans: make([]Span, 0, min(max, 256)),
		byQID: make(map[int64][]int),
	}
}

// ActiveSpan is an in-flight span; call End to record it.
type ActiveSpan struct {
	rec  *Recorder
	span Span
}

// StartSpan opens a span under ctx. If ctx.QID is zero a fresh question ID
// is minted, making this span the root of a new trace. Safe on a nil
// recorder (the span is still built and returned, but End records nothing).
func (r *Recorder) StartSpan(name, stage string, ctx SpanContext) *ActiveSpan {
	qid := ctx.QID
	if qid == 0 {
		qid = NewID()
	}
	node := ""
	if r != nil {
		node = r.node
	}
	return &ActiveSpan{rec: r, span: Span{
		QID:    qid,
		ID:     NewID(),
		Parent: ctx.Span,
		Name:   name,
		Stage:  stage,
		Node:   node,
		Start:  time.Now(),
	}}
}

// Context returns the span's context for propagation to children (local or
// across the wire).
func (a *ActiveSpan) Context() SpanContext { return a.span.Context() }

// End completes the span, records it, and returns the completed record.
func (a *ActiveSpan) End() Span {
	a.span.End = time.Now()
	a.rec.Record(a.span)
	return a.span
}

// Record appends a completed span (used both by End and to adopt remote
// children returned in sub-task responses). No-op on a nil recorder.
func (r *Recorder) Record(s Span) {
	if r == nil {
		return
	}
	if s.Node == "" {
		s.Node = r.node
	}
	r.mu.Lock()
	var pos int
	if r.full {
		r.dropIndexLocked(r.spans[r.next].QID, r.next)
		r.spans[r.next] = s
		pos = r.next
		r.next = (r.next + 1) % r.max
	} else {
		pos = len(r.spans)
		r.spans = append(r.spans, s)
		if len(r.spans) == r.max {
			r.full = true
			r.next = 0
		}
	}
	r.byQID[s.QID] = append(r.byQID[s.QID], pos)
	onEnd := r.OnEnd
	r.mu.Unlock()
	if onEnd != nil {
		onEnd(s)
	}
}

// Snapshot returns the retained spans ordered by start time.
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Span(nil), r.spans...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// dropIndexLocked removes one ring position from a question's index bucket
// (called when the ring overwrites that position). Caller holds r.mu.
func (r *Recorder) dropIndexLocked(qid int64, pos int) {
	bucket := r.byQID[qid]
	for i, p := range bucket {
		if p == pos {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(r.byQID, qid)
	} else {
		r.byQID[qid] = bucket
	}
}

// ByQID returns the retained spans of one question, ordered by start time.
// It reads through the QID index, touching only that question's spans — this
// runs on the response path of every live ask, where scanning the whole ring
// would dwarf a cache-hit's actual work.
func (r *Recorder) ByQID(qid int64) []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	idx := r.byQID[qid]
	out := make([]Span, 0, len(idx))
	for _, pos := range idx {
		out = append(out, r.spans[pos])
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Len reports how many spans are retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
