package obs

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("questions_total", nil)
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Same name+labels returns the same counter.
	if r.Counter("questions_total", nil) != c {
		t.Fatal("counter identity lost")
	}
	// Different labels → different counter.
	if r.Counter("questions_total", Labels{"node": "a"}) == c {
		t.Fatal("labelled counter must be distinct")
	}

	g := r.Gauge("queue_depth", nil)
	g.Set(7)
	g.Dec()
	g.Add(-2)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramObserveAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", nil, []float64{0.1, 0.2, 0.4, 0.8})
	for i := 0; i < 100; i++ {
		h.Observe(0.15) // all in (0.1, 0.2]
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Sum-15) > 1e-9 {
		t.Fatalf("sum = %v", s.Sum)
	}
	// All mass in one bucket: quantiles interpolate within (0.1, 0.2].
	for _, q := range []float64{0.5, 0.9, 0.99} {
		v := s.Quantile(q)
		if v <= 0.1 || v > 0.2 {
			t.Fatalf("q%.2f = %v, want in (0.1, 0.2]", q, v)
		}
	}
	if s.P99() < s.P90() || s.P90() < s.P50() {
		t.Fatal("quantiles must be monotone")
	}
	// Overflow lands in +Inf and clamps to the top bound.
	h.Observe(10)
	if got := h.Snapshot().Quantile(0.9999); got != 0.8 {
		t.Fatalf("overflow quantile = %v, want clamp to 0.8", got)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	var s HistSnapshot
	if s.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c", nil).Inc()
				r.Histogram("h", Labels{"stage": "AP"}, nil).Observe(0.01)
				r.Gauge("g", nil).Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", nil).Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", Labels{"stage": "AP"}, nil).Count(); got != 8000 {
		t.Fatalf("concurrent histogram count = %d, want 8000", got)
	}
}

// expositionLine matches `name{labels} value` or `name value` with a
// numeric value — the shape every line of the text format must have.
var expositionLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf)$`)

// TestWriteTextGolden pins the exposition format: every non-comment line
// parses as (name, labels, numeric value), families are ordered, and
// histogram series carry cumulative bucket counts.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("live_questions_total", nil).Add(3)
	r.Gauge("live_queue_depth", nil).Set(2)
	h := r.Histogram("qa_stage_seconds", Labels{"stage": "QP"}, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	wantLines := map[string]float64{
		"live_questions_total":                          3,
		"live_queue_depth":                              2,
		`qa_stage_seconds_bucket{le="0.1",stage="QP"}`:  1,
		`qa_stage_seconds_bucket{le="1",stage="QP"}`:    2,
		`qa_stage_seconds_bucket{le="+Inf",stage="QP"}`: 3,
		`qa_stage_seconds_count{stage="QP"}`:            3,
	}
	got := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("unexpected comment line %q", line)
			}
			continue
		}
		m := expositionLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %q does not parse as name{labels} value", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("line %q: bad value: %v", line, err)
		}
		got[m[1]+m[2]] = v
	}
	for k, want := range wantLines {
		if got[k] != want {
			t.Fatalf("series %s = %v, want %v\nfull text:\n%s", k, got[k], want, text)
		}
	}
	// Sum line present and ≈ 5.55.
	if math.Abs(got[`qa_stage_seconds_sum{stage="QP"}`]-5.55) > 1e-9 {
		t.Fatalf("sum series = %v", got[`qa_stage_seconds_sum{stage="QP"}`])
	}
	// TYPE headers present once per family.
	for _, family := range []string{"live_questions_total counter", "live_queue_depth gauge", "qa_stage_seconds histogram"} {
		if strings.Count(text, "# TYPE "+family) != 1 {
			t.Fatalf("missing or duplicated TYPE header for %s:\n%s", family, text)
		}
	}
}

func TestStageObserverFeedsHistograms(t *testing.T) {
	r := NewRegistry()
	o := r.StageObserver("qa_stage_seconds")
	o.ObserveStage("QP", 0.001)
	o.ObserveStage("AP", 0.2)
	o.ObserveStage("AP", 0.3)
	if got := r.Histogram("qa_stage_seconds", Labels{"stage": "AP"}, nil).Count(); got != 2 {
		t.Fatalf("AP observations = %d, want 2", got)
	}
	if got := r.Histogram("qa_stage_seconds", Labels{"stage": "QP"}, nil).Count(); got != 1 {
		t.Fatalf("QP observations = %d, want 1", got)
	}
}
