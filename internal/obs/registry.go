// Package obs is the repo's dependency-free observability layer: a metrics
// registry (atomic counters, gauges and fixed-bucket latency histograms with
// percentile snapshots), per-question per-stage spans whose context is
// propagated across nodes, and exporters (Prometheus-style text exposition,
// Chrome trace-event JSON).
//
// The paper's entire contribution is measured behaviour — per-module times
// (Table 2), load traces (Figure 7), speedup curves (Figures 8-9). Package
// obs gives the live cluster (internal/live) and the simulator's scheduling
// machinery (internal/sched) the same kind of visibility at runtime:
// per-stage latencies, forward/partition/timeout counters, and question span
// trees that cross node boundaries.
//
// Everything here is safe for concurrent use and cheap enough for hot paths:
// a counter increment is one atomic add, a histogram observation is two
// atomic adds plus a CAS loop on the sum.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels are metric labels. Callers pass plain maps; the registry
// canonicalizes them (sorted by key) for identity and exposition.
type Labels map[string]string

// canonical renders labels as `{k1="v1",k2="v2"}` with sorted keys, or ""
// when empty — used both as a map key and in the text exposition.
func (ls Labels) canonical() string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, ls[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (n must be non-negative for Prometheus
// semantics; this is not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer gauge (queue depths, active requests, peer counts).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Bucket bounds are upper bounds in
// ascending order; an implicit +Inf bucket catches the overflow. All methods
// are safe for concurrent use.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// newHistogram builds a histogram with the given ascending upper bounds.
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Bounds []float64 // upper bounds (exclusive of the implicit +Inf)
	Counts []int64   // per-bucket counts, len(Bounds)+1
	Count  int64
	Sum    float64
}

// Snapshot copies the histogram's state. The per-bucket reads are not one
// atomic transaction, so a snapshot taken during heavy concurrent writes can
// be off by in-flight observations — fine for monitoring.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket containing the target rank. Returns 0 for an empty
// histogram. Observations in the +Inf bucket clamp to the largest bound.
func (s HistSnapshot) Quantile(q float64) float64 {
	total := int64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank {
			if i >= len(s.Bounds) { // +Inf bucket
				if len(s.Bounds) == 0 {
					return 0
				}
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			if c == 0 {
				return hi
			}
			// Linear interpolation within the bucket.
			frac := (rank - float64(cum-c)) / float64(c)
			return lo + (hi-lo)*frac
		}
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// P50, P90 and P99 are quantile shorthands.
func (s HistSnapshot) P50() float64 { return s.Quantile(0.50) }
func (s HistSnapshot) P90() float64 { return s.Quantile(0.90) }
func (s HistSnapshot) P99() float64 { return s.Quantile(0.99) }

// LatencyBuckets returns the default latency bucket bounds in seconds,
// spanning 0.5 ms to 60 s — wide enough for a QP stage (sub-millisecond) and
// a cold TREC-9-like AP stage (tens of seconds).
func LatencyBuckets() []float64 {
	return []float64{
		0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
	}
}

// metric identity inside the registry: family name + canonical labels.
type metricKey struct {
	name   string
	labels string
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metricEntry struct {
	key    metricKey
	kind   metricKind
	labels Labels
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metrics. Lookup methods create on first use and are
// idempotent; call sites on hot paths should cache the returned pointer.
type Registry struct {
	mu      sync.RWMutex
	metrics map[metricKey]*metricEntry
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[metricKey]*metricEntry)}
}

// defaultRegistry is the process-global registry used by code without a
// natural owner for one (package sched's simulator-side instrumentation).
var defaultRegistry = NewRegistry()

// Default returns the process-global registry.
func Default() *Registry { return defaultRegistry }

func (r *Registry) lookup(name string, labels Labels, kind metricKind) *metricEntry {
	key := metricKey{name: name, labels: labels.canonical()}
	r.mu.RLock()
	e, ok := r.metrics[key]
	r.mu.RUnlock()
	if ok {
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok = r.metrics[key]; ok {
		return e
	}
	e = &metricEntry{key: key, kind: kind, labels: labels}
	r.metrics[key] = e
	return e
}

// Counter returns the counter for name+labels, creating it on first use.
// labels may be nil.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	e := r.lookup(name, labels, kindCounter)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.c == nil {
		e.c = &Counter{}
	}
	return e.c
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	e := r.lookup(name, labels, kindGauge)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.g == nil {
		e.g = &Gauge{}
	}
	return e.g
}

// Histogram returns the histogram for name+labels with the given bucket
// bounds, creating it on first use (bounds are fixed at creation; later
// callers get the existing histogram regardless of the bounds they pass).
func (r *Registry) Histogram(name string, labels Labels, bounds []float64) *Histogram {
	e := r.lookup(name, labels, kindHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.h == nil {
		if len(bounds) == 0 {
			bounds = LatencyBuckets()
		}
		e.h = newHistogram(bounds)
	}
	return e.h
}

// stageObserver adapts a registry histogram family to the structural
// StageObserver interface used by qa.Engine: each stage gets its own
// histogram `metric{stage="..."}`.
type stageObserver struct {
	reg    *Registry
	metric string

	mu    sync.Mutex
	cache map[string]*Histogram
}

// ObserveStage records one stage duration in seconds.
func (o *stageObserver) ObserveStage(stage string, seconds float64) {
	o.mu.Lock()
	h, ok := o.cache[stage]
	if !ok {
		h = o.reg.Histogram(o.metric, Labels{"stage": stage}, LatencyBuckets())
		o.cache[stage] = h
	}
	o.mu.Unlock()
	h.Observe(seconds)
}

// StageObserver returns an adapter that records per-stage durations into
// latency histograms `metric{stage="..."}` of this registry. It satisfies
// qa.StageObserver structurally, keeping package qa free of obs imports.
func (r *Registry) StageObserver(metric string) *stageObserver {
	return &stageObserver{reg: r, metric: metric, cache: make(map[string]*Histogram)}
}

// WriteText renders the registry in the Prometheus text exposition format,
// deterministically ordered by family name then label set:
//
//	# TYPE live_questions_total counter
//	live_questions_total 12
//	# TYPE qa_stage_seconds histogram
//	qa_stage_seconds_bucket{stage="QP",le="0.001"} 4
//	qa_stage_seconds_sum{stage="QP"} 0.0123
//	qa_stage_seconds_count{stage="QP"} 5
func (r *Registry) WriteText(w io.Writer) error {
	// Rendering goes through the snapshot path so a pulled fleet snapshot
	// and a local scrape are byte-identical.
	return r.Snapshot().WriteText(w)
}

// formatBound renders a bucket bound the way Prometheus does.
func formatBound(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}
