package obs

import (
	"strings"
	"testing"
	"time"
)

// TestSnapshotWriteTextMatchesRegistry pins the core aggregation contract:
// a frozen snapshot renders byte-identically to a live registry scrape.
func TestSnapshotWriteTextMatchesRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("live_questions_total", nil).Add(7)
	r.Gauge("live_queue_depth", Labels{"node": "a"}).Set(3)
	h := r.Histogram("qa_stage_seconds", Labels{"stage": "PR"}, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(3)

	var direct strings.Builder
	if err := r.WriteText(&direct); err != nil {
		t.Fatal(err)
	}
	var viaSnap strings.Builder
	if err := r.Snapshot().WriteText(&viaSnap); err != nil {
		t.Fatal(err)
	}
	if direct.String() != viaSnap.String() {
		t.Fatalf("snapshot exposition differs from registry exposition:\n--- registry:\n%s--- snapshot:\n%s",
			direct.String(), viaSnap.String())
	}
}

// TestExpositionLabelEscaping checks Prometheus label escaping: quotes,
// backslashes and newlines in label values must be escaped in both the
// plain series and the histogram `le` series.
func TestExpositionLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", Labels{"q": `he said "hi"`, "p": `back\slash`, "n": "two\nlines"}).Add(1)
	h := r.Histogram("weird_seconds", Labels{"q": `quo"te`}, []float64{1})
	h.Observe(0.5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`q="he said \"hi\""`,
		`p="back\\slash"`,
		`n="two\nlines"`,
		`weird_seconds_bucket{le="1",q="quo\"te"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// No raw newline may survive inside a label value: every line must
	// still parse as one series.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if line == "" {
			t.Errorf("empty exposition line (unescaped newline?):\n%s", text)
		}
	}
}

// TestMergeSnapshotsCountersAndGauges checks that scalar series sum across
// nodes while series with distinct labels stay distinct.
func TestMergeSnapshotsCountersAndGauges(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	ra.Counter("live_questions_total", nil).Add(5)
	rb.Counter("live_questions_total", nil).Add(9)
	ra.Gauge("go_goroutines", nil).Set(12)
	rb.Gauge("go_goroutines", nil).Set(30)
	ra.Counter("per_node_total", Labels{"node": "a"}).Add(1)
	rb.Counter("per_node_total", Labels{"node": "b"}).Add(2)

	m := MergeSnapshots([]RegistrySnapshot{ra.Snapshot(), rb.Snapshot()})
	if v, ok := m.Value("live_questions_total", nil); !ok || v != 14 {
		t.Errorf("merged counter = %d, %v; want 14, true", v, ok)
	}
	if v, ok := m.Value("go_goroutines", nil); !ok || v != 42 {
		t.Errorf("merged gauge = %d, %v; want 42, true", v, ok)
	}
	if v, _ := m.Value("per_node_total", Labels{"node": "a"}); v != 1 {
		t.Errorf("labelled series a = %d, want 1", v)
	}
	if v, _ := m.Value("per_node_total", Labels{"node": "b"}); v != 2 {
		t.Errorf("labelled series b = %d, want 2", v)
	}
}

// TestMergeSnapshotsHistogram checks the histogram merge invariants the
// satellite task pins: count and sum are preserved exactly, per-bucket
// counts add, and the cumulative bucket series stays monotone.
func TestMergeSnapshotsHistogram(t *testing.T) {
	bounds := []float64{0.1, 1, 10}
	ra, rb := NewRegistry(), NewRegistry()
	ha := ra.Histogram("ask_seconds", nil, bounds)
	hb := rb.Histogram("ask_seconds", nil, bounds)
	for _, v := range []float64{0.05, 0.5, 0.5, 5} {
		ha.Observe(v)
	}
	for _, v := range []float64{0.07, 2, 50} {
		hb.Observe(v)
	}

	m := MergeSnapshots([]RegistrySnapshot{ra.Snapshot(), rb.Snapshot()})
	hs, ok := m.Hist("ask_seconds", nil)
	if !ok {
		t.Fatal("merged histogram missing")
	}
	if hs.Count != 7 {
		t.Errorf("merged count = %d, want 7", hs.Count)
	}
	if want := 0.05 + 0.5 + 0.5 + 5 + 0.07 + 2 + 50; abs(hs.Sum-want) > 1e-9 {
		t.Errorf("merged sum = %v, want %v", hs.Sum, want)
	}
	wantCounts := []int64{2, 2, 2, 1} // (0,.1]=2 (.1,1]=2 (1,10]=2 +Inf=1
	total := int64(0)
	for i, c := range hs.Counts {
		if c != wantCounts[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, wantCounts[i])
		}
		total += c
	}
	if total != hs.Count {
		t.Errorf("bucket total %d != count %d", total, hs.Count)
	}
	// Cumulative monotonicity as rendered.
	cum, prev := int64(0), int64(-1)
	for _, c := range hs.Counts {
		cum += c
		if cum < prev {
			t.Fatalf("cumulative bucket series not monotone: %v", hs.Counts)
		}
		prev = cum
	}
}

// TestMergeSnapshotsMismatchedBounds checks the coarsening path: a series
// whose bounds differ still contributes count and sum, landing its whole
// count in +Inf so sum-of-buckets == Count holds in the merged view.
func TestMergeSnapshotsMismatchedBounds(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	ra.Histogram("x_seconds", nil, []float64{1}).Observe(0.5)
	rb.Histogram("x_seconds", nil, []float64{2}).Observe(0.5)

	m := MergeSnapshots([]RegistrySnapshot{ra.Snapshot(), rb.Snapshot()})
	hs, ok := m.Hist("x_seconds", nil)
	if !ok {
		t.Fatal("merged histogram missing")
	}
	if hs.Count != 2 || abs(hs.Sum-1.0) > 1e-9 {
		t.Errorf("count/sum = %d/%v, want 2/1.0", hs.Count, hs.Sum)
	}
	total := int64(0)
	for _, c := range hs.Counts {
		total += c
	}
	if total != hs.Count {
		t.Errorf("bucket total %d != count %d after coarsening", total, hs.Count)
	}
}

// TestMergeSnapshotsDeterministicOrder checks that the merged metric order
// (and hence exposition text) is independent of input snapshot order.
func TestMergeSnapshotsDeterministicOrder(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	ra.Counter("b_total", nil).Add(1)
	ra.Counter("a_total", Labels{"x": "2"}).Add(1)
	rb.Counter("a_total", Labels{"x": "1"}).Add(1)
	rb.Counter("c_total", nil).Add(1)
	sa, sb := ra.Snapshot(), rb.Snapshot()

	var fwd, rev strings.Builder
	if err := MergeSnapshots([]RegistrySnapshot{sa, sb}).WriteText(&fwd); err != nil {
		t.Fatal(err)
	}
	if err := MergeSnapshots([]RegistrySnapshot{sb, sa}).WriteText(&rev); err != nil {
		t.Fatal(err)
	}
	if fwd.String() != rev.String() {
		t.Fatalf("merge order affects exposition:\n--- fwd:\n%s--- rev:\n%s", fwd.String(), rev.String())
	}
	if !strings.HasPrefix(fwd.String(), "# TYPE a_total counter\n") {
		t.Errorf("merged exposition not name-sorted:\n%s", fwd.String())
	}
}

// TestMergeSnapshotsTakenAt checks the merged capture time is the latest
// input capture time.
func TestMergeSnapshotsTakenAt(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	snaps := []RegistrySnapshot{{TakenAt: t0}, {TakenAt: t0.Add(time.Minute)}, {TakenAt: t0.Add(30 * time.Second)}}
	if got := MergeSnapshots(snaps).TakenAt; !got.Equal(t0.Add(time.Minute)) {
		t.Errorf("merged TakenAt = %v, want %v", got, t0.Add(time.Minute))
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
