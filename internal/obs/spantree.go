package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// SortSpans orders spans by start time, breaking ties by span ID, so
// repeated dumps of the same question diff clean even when sibling spans
// started within the clock's resolution.
func SortSpans(ss []Span) {
	sort.Slice(ss, func(i, j int) bool {
		if !ss[i].Start.Equal(ss[j].Start) {
			return ss[i].Start.Before(ss[j].Start)
		}
		return ss[i].ID < ss[j].ID
	})
}

// FormatSpanTree renders spans as an indented tree with the executing node
// and duration inline, siblings in deterministic (start time, span ID)
// order:
//
//	ask  [127.0.0.1:7102]  52.1ms
//	  stage:QP  [127.0.0.1:7102]  0.3ms
//	  partition:AP  [127.0.0.1:7102]  31.0ms
//	    ap-subtask  [127.0.0.1:7103]  28.9ms
//
// Spans whose parent is absent from the slice render as roots, so partial
// trees (a ring that wrapped mid-question) still print.
func FormatSpanTree(w io.Writer, spans []Span) {
	children := make(map[int64][]Span)
	byID := make(map[int64]bool, len(spans))
	for _, s := range spans {
		byID[s.ID] = true
	}
	var roots []Span
	for _, s := range spans {
		if s.Parent != 0 && byID[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	SortSpans(roots)
	var walk func(s Span, depth int)
	walk = func(s Span, depth int) {
		fmt.Fprintf(w, "%s%s  [%s]  %.1fms\n",
			strings.Repeat("  ", depth), s.Name, s.Node,
			float64(s.Duration().Microseconds())/1000)
		kids := children[s.ID]
		SortSpans(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}
