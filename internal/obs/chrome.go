package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// ChromeEvent is one event in the Chrome trace-event JSON format, loadable
// in chrome://tracing and Perfetto. Timestamps and durations are in
// microseconds.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"` // "X" complete, "i" instant, "M" metadata
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope ("t" thread)
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace container.
type chromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeJSON writes events as a Chrome trace-event JSON object.
func WriteChromeJSON(w io.Writer, events []ChromeEvent) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ChromeFromSpans converts completed spans to complete ("X") trace events.
// Each distinct node becomes one thread (tid), named via metadata events, so
// a cross-node question renders as one tree spread over per-node rows.
// Timestamps are relative to the earliest span start.
func ChromeFromSpans(spans []Span) []ChromeEvent {
	if len(spans) == 0 {
		return nil
	}
	epoch := spans[0].Start
	for _, s := range spans[1:] {
		if s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	// Stable node -> tid mapping.
	nodes := make(map[string]int)
	var names []string
	for _, s := range spans {
		if _, ok := nodes[s.Node]; !ok {
			nodes[s.Node] = 0
			names = append(names, s.Node)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		nodes[n] = i
	}
	out := make([]ChromeEvent, 0, len(spans)+len(names))
	for _, n := range names {
		out = append(out, ChromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: nodes[n],
			Args: map[string]any{"name": n},
		})
	}
	for _, s := range spans {
		dur := float64(s.End.Sub(s.Start).Microseconds())
		if dur < 0 {
			dur = 0
		}
		out = append(out, ChromeEvent{
			Name: s.Name,
			Cat:  "qa",
			Ph:   "X",
			TS:   float64(s.Start.Sub(epoch).Microseconds()),
			Dur:  dur,
			PID:  0,
			TID:  nodes[s.Node],
			Args: map[string]any{
				"qid":    s.QID,
				"span":   s.ID,
				"parent": s.Parent,
				"stage":  s.Stage,
				"node":   s.Node,
			},
		})
	}
	return out
}

// VirtualEvent is a node-attributed instant at a virtual time in seconds —
// the shape of internal/trace's simulator events, mirrored here so the leaf
// obs package does not import trace.
type VirtualEvent struct {
	Seconds  float64
	Node     string
	Question int
	Text     string
}

// ChromeFromVirtual converts virtual-time instants (e.g. the simulator's
// Figure-7 trace log) to instant ("i") trace events; virtual seconds map to
// trace microseconds via 1 s = 1e6 us. Each node becomes one named thread.
func ChromeFromVirtual(events []VirtualEvent) []ChromeEvent {
	if len(events) == 0 {
		return nil
	}
	nodes := make(map[string]int)
	var names []string
	for _, e := range events {
		if _, ok := nodes[e.Node]; !ok {
			nodes[e.Node] = 0
			names = append(names, e.Node)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		nodes[n] = i
	}
	out := make([]ChromeEvent, 0, len(events)+len(names))
	for _, n := range names {
		out = append(out, ChromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: nodes[n],
			Args: map[string]any{"name": n},
		})
	}
	for _, e := range events {
		args := map[string]any{"node": e.Node}
		if e.Question >= 0 {
			args["question"] = e.Question
		}
		out = append(out, ChromeEvent{
			Name: e.Text,
			Cat:  "sim",
			Ph:   "i",
			S:    "t",
			TS:   e.Seconds * 1e6,
			PID:  0,
			TID:  nodes[e.Node],
			Args: args,
		})
	}
	return out
}
