package obs

import (
	"runtime"
	"sort"
	"time"
)

// RuntimeStats is a point-in-time sample of Go runtime health — the
// profiling-adjacent gauges an operator checks before reaching for pprof.
type RuntimeStats struct {
	// Goroutines is the live goroutine count.
	Goroutines int
	// HeapAllocBytes is the in-use heap (runtime.MemStats.HeapAlloc).
	HeapAllocBytes uint64
	// GCPauseP99 is the 99th-percentile stop-the-world pause over the
	// runtime's recent-pause ring (up to the last 256 GCs).
	GCPauseP99 time.Duration
	// NumGC counts completed GC cycles.
	NumGC uint32
}

// SampleRuntime reads the runtime gauges. ReadMemStats briefly stops the
// world, so this belongs on scrape/status paths, not per-request ones.
func SampleRuntime() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := RuntimeStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		NumGC:          ms.NumGC,
	}
	n := int(ms.NumGC)
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	if n > 0 {
		pauses := make([]uint64, n)
		copy(pauses, ms.PauseNs[:n])
		sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
		idx := (n*99 + 99) / 100
		if idx > n {
			idx = n
		}
		st.GCPauseP99 = time.Duration(pauses[idx-1])
	}
	return st
}

// SetRuntimeGauges publishes a runtime sample into the registry as the
// go_goroutines, go_heap_alloc_bytes, go_gc_pause_p99_ns and go_gc_cycles
// gauges, refreshed at scrape time by the live node.
func (r *Registry) SetRuntimeGauges(s RuntimeStats) {
	r.Gauge("go_goroutines", nil).Set(int64(s.Goroutines))
	r.Gauge("go_heap_alloc_bytes", nil).Set(int64(s.HeapAllocBytes))
	r.Gauge("go_gc_pause_p99_ns", nil).Set(int64(s.GCPauseP99))
	r.Gauge("go_gc_cycles", nil).Set(int64(s.NumGC))
}
