package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSpanTreeLocal(t *testing.T) {
	rec := NewRecorder("n1", 0)
	root := rec.StartSpan("ask", "", SpanContext{})
	if root.Context().QID == 0 {
		t.Fatal("root must mint a QID")
	}
	child := rec.StartSpan("stage:QP", StageQP, root.Context())
	if child.Context().QID != root.Context().QID {
		t.Fatal("child must inherit QID")
	}
	cs := child.End()
	rs := root.End()
	if cs.Parent != rs.ID {
		t.Fatalf("child parent = %d, want %d", cs.Parent, rs.ID)
	}
	spans := rec.ByQID(rs.QID)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	for _, s := range spans {
		if s.Node != "n1" {
			t.Fatalf("span node = %q", s.Node)
		}
		if s.End.Before(s.Start) {
			t.Fatal("span ends before it starts")
		}
	}
}

func TestSpanContextPropagatesAcrossRecorders(t *testing.T) {
	// Two recorders model two nodes; the context travels "over the wire".
	a := NewRecorder("nodeA", 0)
	b := NewRecorder("nodeB", 0)
	root := a.StartSpan("ask", "", SpanContext{})
	wire := root.Context() // what live.Request carries
	remote := b.StartSpan("ap-subtask", StageAP, wire)
	rs := remote.End()
	root.End()
	if rs.QID != root.Context().QID {
		t.Fatal("remote span lost the originating QID")
	}
	if rs.Parent != wire.Span {
		t.Fatal("remote span lost the parent link")
	}
	if rs.Node != "nodeB" {
		t.Fatalf("remote span node = %q", rs.Node)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	sp := r.StartSpan("x", "", SpanContext{})
	sp.End()
	r.Record(Span{})
	if r.Len() != 0 || r.Snapshot() != nil || r.ByQID(1) != nil {
		t.Fatal("nil recorder must record nothing")
	}
}

func TestRecorderRingBounds(t *testing.T) {
	rec := NewRecorder("n", 4)
	for i := 0; i < 10; i++ {
		rec.Record(Span{QID: int64(i + 1), ID: NewID(), Start: time.Now()})
	}
	if rec.Len() != 4 {
		t.Fatalf("ring len = %d, want 4", rec.Len())
	}
	// The survivors are the 4 most recent.
	seen := make(map[int64]bool)
	for _, s := range rec.Snapshot() {
		seen[s.QID] = true
	}
	for qid := int64(7); qid <= 10; qid++ {
		if !seen[qid] {
			t.Fatalf("recent span %d evicted; kept %v", qid, seen)
		}
	}
}

// TestByQIDIndexSurvivesRingWrap drives the recorder far past its capacity
// and checks the QID index stays exactly consistent with the ring: evicted
// questions return nothing, retained questions return precisely their
// resident spans in start order.
func TestByQIDIndexSurvivesRingWrap(t *testing.T) {
	rec := NewRecorder("n", 6)
	base := time.Now()
	// 10 questions × 3 spans; with a 6-slot ring only the last 2 questions
	// survive in full.
	for q := int64(1); q <= 10; q++ {
		for j := 0; j < 3; j++ {
			rec.Record(Span{
				QID:   q,
				ID:    NewID(),
				Name:  "s",
				Start: base.Add(time.Duration(q*10+int64(j)) * time.Millisecond),
			})
		}
	}
	for q := int64(1); q <= 8; q++ {
		if got := rec.ByQID(q); len(got) != 0 {
			t.Fatalf("evicted question %d still indexed: %d spans", q, len(got))
		}
	}
	for q := int64(9); q <= 10; q++ {
		got := rec.ByQID(q)
		if len(got) != 3 {
			t.Fatalf("question %d: %d spans, want 3", q, len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i].Start.Before(got[i-1].Start) {
				t.Fatalf("question %d spans out of start order", q)
			}
			if got[i].QID != q {
				t.Fatalf("question %d got a span of question %d", q, got[i].QID)
			}
		}
	}
}

func TestRecorderOnEndHookAndConcurrency(t *testing.T) {
	rec := NewRecorder("n", 0)
	var mu sync.Mutex
	byStage := make(map[string]int)
	rec.OnEnd = func(s Span) {
		mu.Lock()
		byStage[s.Stage]++
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				rec.StartSpan("stage:AP", StageAP, SpanContext{QID: 1}).End()
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if byStage[StageAP] != 800 {
		t.Fatalf("OnEnd saw %d AP spans, want 800", byStage[StageAP])
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if seen[id] {
			t.Fatal("duplicate ID")
		}
		seen[id] = true
	}
}
