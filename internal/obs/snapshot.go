package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Metric kinds carried in a RegistrySnapshot. The values are wire-stable:
// the live cluster's kindMetricsPull op encodes them as single bytes.
const (
	MetricCounter   uint8 = 0
	MetricGauge     uint8 = 1
	MetricHistogram uint8 = 2
)

// LabelPair is one label as an ordered pair. Snapshots carry labels as
// sorted slices instead of maps so their encodings (and merged exposition
// output) are deterministic.
type LabelPair struct {
	Key   string
	Value string
}

// SnapshotMetric is one metric series frozen at snapshot time.
type SnapshotMetric struct {
	// Name is the metric family name.
	Name string
	// Kind is MetricCounter, MetricGauge or MetricHistogram.
	Kind uint8
	// Labels are the series labels, sorted by key.
	Labels []LabelPair
	// Value holds the counter or gauge value (unused for histograms).
	Value int64
	// Hist holds the histogram state (nil for counters and gauges).
	Hist *HistSnapshot
}

// RegistrySnapshot is a point-in-time copy of a whole registry — the unit
// the fleet-aggregation wire op ships between nodes. Metrics are ordered by
// (Name, label string), the same order WriteText renders.
type RegistrySnapshot struct {
	// Node names the node the snapshot came from ("" for a local snapshot
	// or a merged view).
	Node string
	// TakenAt is when the snapshot was captured.
	TakenAt time.Time
	// Metrics are the frozen series.
	Metrics []SnapshotMetric
}

// labelString renders sorted pairs as `{k1="v1",k2="v2"}` ("" when empty),
// matching Labels.canonical so snapshot exposition is byte-identical to a
// live registry scrape. %q escapes backslashes, quotes and newlines the way
// the Prometheus text format requires.
func labelString(pairs []LabelPair) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.Key, p.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// labelStringWith renders pairs with one extra label inserted at its sorted
// position — used to merge `le` into a histogram's label set.
func labelStringWith(pairs []LabelPair, key, value string) string {
	i := sort.Search(len(pairs), func(i int) bool { return pairs[i].Key >= key })
	merged := make([]LabelPair, 0, len(pairs)+1)
	merged = append(merged, pairs[:i]...)
	merged = append(merged, LabelPair{Key: key, Value: value})
	merged = append(merged, pairs[i:]...)
	return labelString(merged)
}

// pairsOf converts a label map into a sorted pair slice.
func pairsOf(ls Labels) []LabelPair {
	if len(ls) == 0 {
		return nil
	}
	pairs := make([]LabelPair, 0, len(ls))
	for k, v := range ls {
		pairs = append(pairs, LabelPair{Key: k, Value: v})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
	return pairs
}

// Snapshot freezes every metric in the registry, ordered by family name
// then canonical label string. WriteText renders through this, so a pulled
// snapshot and a local scrape produce identical exposition text.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.RLock()
	entries := make([]*metricEntry, 0, len(r.metrics))
	for _, e := range r.metrics {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].key.name != entries[j].key.name {
			return entries[i].key.name < entries[j].key.name
		}
		return entries[i].key.labels < entries[j].key.labels
	})
	snap := RegistrySnapshot{TakenAt: time.Now(), Metrics: make([]SnapshotMetric, 0, len(entries))}
	for _, e := range entries {
		m := SnapshotMetric{Name: e.key.name, Labels: pairsOf(e.labels)}
		switch e.kind {
		case kindCounter:
			if e.c == nil {
				continue
			}
			m.Kind = MetricCounter
			m.Value = e.c.Value()
		case kindGauge:
			if e.g == nil {
				continue
			}
			m.Kind = MetricGauge
			m.Value = e.g.Value()
		case kindHistogram:
			if e.h == nil {
				continue
			}
			m.Kind = MetricHistogram
			h := e.h.Snapshot()
			m.Hist = &h
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	return snap
}

// kindString maps a snapshot metric kind to its exposition TYPE name.
func kindString(k uint8) string {
	switch k {
	case MetricCounter:
		return "counter"
	case MetricGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// WriteText renders the snapshot in the Prometheus text exposition format,
// identical to Registry.WriteText over the live registry.
func (s RegistrySnapshot) WriteText(w io.Writer) error {
	var b strings.Builder
	lastFamily := ""
	for _, m := range s.Metrics {
		if m.Name != lastFamily {
			lastFamily = m.Name
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.Name, kindString(m.Kind))
		}
		labels := labelString(m.Labels)
		switch m.Kind {
		case MetricCounter, MetricGauge:
			fmt.Fprintf(&b, "%s%s %d\n", m.Name, labels, m.Value)
		case MetricHistogram:
			if m.Hist == nil {
				continue
			}
			cum := int64(0)
			for i, bound := range m.Hist.Bounds {
				cum += m.Hist.Counts[i]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", m.Name, labelStringWith(m.Labels, "le", formatBound(bound)), cum)
			}
			cum += m.Hist.Counts[len(m.Hist.Counts)-1]
			fmt.Fprintf(&b, "%s_bucket%s %d\n", m.Name, labelStringWith(m.Labels, "le", "+Inf"), cum)
			fmt.Fprintf(&b, "%s_sum%s %g\n", m.Name, labels, m.Hist.Sum)
			fmt.Fprintf(&b, "%s_count%s %d\n", m.Name, labels, m.Hist.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Value looks up a counter or gauge series by name and labels.
func (s RegistrySnapshot) Value(name string, labels Labels) (int64, bool) {
	want := labelString(pairsOf(labels))
	for _, m := range s.Metrics {
		if m.Name == name && m.Kind != MetricHistogram && labelString(m.Labels) == want {
			return m.Value, true
		}
	}
	return 0, false
}

// Hist looks up a histogram series by name and labels.
func (s RegistrySnapshot) Hist(name string, labels Labels) (*HistSnapshot, bool) {
	want := labelString(pairsOf(labels))
	for _, m := range s.Metrics {
		if m.Name == name && m.Kind == MetricHistogram && labelString(m.Labels) == want {
			return m.Hist, true
		}
	}
	return nil, false
}

// MergeSnapshots folds per-node snapshots into one cluster-wide view:
// counters and gauges sum; histograms with identical bucket bounds merge
// per-bucket (preserving count and sum exactly); a histogram whose bounds
// differ from the first-seen series contributes its Count and Sum with the
// whole count landing in the +Inf bucket, keeping the sum-of-buckets ==
// Count invariant (and hence cumulative-bucket monotonicity) intact.
// The merged snapshot's TakenAt is the latest input capture time and its
// metrics are ordered like a registry scrape.
func MergeSnapshots(snaps []RegistrySnapshot) RegistrySnapshot {
	type seriesKey struct {
		name   string
		labels string
	}
	merged := make(map[seriesKey]*SnapshotMetric)
	var order []seriesKey
	out := RegistrySnapshot{}
	for _, s := range snaps {
		if s.TakenAt.After(out.TakenAt) {
			out.TakenAt = s.TakenAt
		}
		for _, m := range s.Metrics {
			key := seriesKey{name: m.Name, labels: labelString(m.Labels)}
			dst, ok := merged[key]
			if !ok {
				cp := m
				cp.Labels = append([]LabelPair(nil), m.Labels...)
				if m.Hist != nil {
					h := *m.Hist
					h.Bounds = append([]float64(nil), m.Hist.Bounds...)
					h.Counts = append([]int64(nil), m.Hist.Counts...)
					cp.Hist = &h
				}
				merged[key] = &cp
				order = append(order, key)
				continue
			}
			switch m.Kind {
			case MetricCounter, MetricGauge:
				dst.Value += m.Value
			case MetricHistogram:
				if m.Hist == nil || dst.Hist == nil {
					continue
				}
				dst.Hist.Count += m.Hist.Count
				dst.Hist.Sum += m.Hist.Sum
				if boundsEqual(dst.Hist.Bounds, m.Hist.Bounds) {
					for i := range m.Hist.Counts {
						dst.Hist.Counts[i] += m.Hist.Counts[i]
					}
				} else {
					// Incompatible bounds: coarsen into the overflow bucket.
					dst.Hist.Counts[len(dst.Hist.Counts)-1] += m.Hist.Count
				}
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].name != order[j].name {
			return order[i].name < order[j].name
		}
		return order[i].labels < order[j].labels
	})
	out.Metrics = make([]SnapshotMetric, 0, len(order))
	for _, key := range order {
		out.Metrics = append(out.Metrics, *merged[key])
	}
	return out
}

func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
