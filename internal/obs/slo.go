// SLO engine: rolling-window latency and error objectives per operation,
// with burn-rate computation and per-bucket exemplars.
//
// The paper argues from tail behaviour — per-module latency decomposition
// and the load spikes of Figure 7 — so the cluster needs an answer to "is
// the p99 objective met over the last minute/hour, and which question blew
// it". The engine keeps a ring of fixed-interval slots per op; a window
// snapshot sums the slots the window covers, giving true rolling-window
// histograms without per-observation timestamps. Exemplars attach the most
// recent question ID to each latency bucket, so a tail bucket resolves to a
// concrete QID the flight recorder can expand into a full span tree.
package obs

import (
	"sort"
	"sync"
	"time"
)

// Objective is one service-level objective over an op's rolling window.
type Objective struct {
	// Op names the operation ("ask", "ShardPR", "forward").
	Op string
	// Quantile is the latency quantile the objective bounds (e.g. 0.99).
	Quantile float64
	// Target is the latency bound in seconds at that quantile.
	Target float64
	// Window is the rolling evaluation window (1m, 5m, 1h).
	Window time.Duration
	// MaxErrorRate is the allowed error fraction over the window
	// (0 disables the error objective).
	MaxErrorRate float64
}

// DefaultObjectives returns the stock cluster objectives for the three
// serving-path ops. Targets are generous for a single-machine test cluster;
// operators tune them per deployment.
func DefaultObjectives() []Objective {
	return []Objective{
		{Op: "ask", Quantile: 0.99, Target: 2.5, Window: 5 * time.Minute, MaxErrorRate: 0.01},
		{Op: "ShardPR", Quantile: 0.99, Target: 1.0, Window: 5 * time.Minute, MaxErrorRate: 0.01},
		{Op: "forward", Quantile: 0.99, Target: 1.0, Window: 5 * time.Minute, MaxErrorRate: 0.05},
	}
}

// Exemplar links a latency bucket back to a concrete question.
type Exemplar struct {
	// QID is the question whose observation landed in the bucket.
	QID int64
	// Seconds is that observation's latency.
	Seconds float64
	// At is when the observation was recorded.
	At time.Time
}

// SLOStatus is one objective's evaluated state, shipped in the status
// payload and rendered by qactl -status and qatop.
type SLOStatus struct {
	Op       string
	Window   time.Duration
	Quantile float64
	// Target and Observed are seconds at the objective quantile.
	Target   float64
	Observed float64
	// Total and Errors count observations in the window.
	Total  int64
	Errors int64
	// BurnRate is how fast the error budget is being consumed: the worse of
	// the latency burn (fraction of observations over Target divided by the
	// allowed 1-Quantile fraction) and the error burn (error rate divided by
	// MaxErrorRate). 1.0 means burning exactly the budget; >1 is violating.
	BurnRate float64
	// OK reports whether the objective currently holds.
	OK bool
	// ExemplarQID identifies a question in the bucket containing the
	// observed quantile (0 if none recorded), with its latency in
	// ExemplarSeconds.
	ExemplarQID     int64
	ExemplarSeconds float64
}

// sloSlot is one fixed-interval time slot of an op's ring.
type sloSlot struct {
	index  int64 // absolute slot index (unix nanos / interval); -1 = empty
	counts []int64
	count  int64
	sum    float64
	errs   int64
}

// opWindow is one op's slot ring plus per-bucket exemplars.
type opWindow struct {
	slots     []sloSlot
	exemplars []Exemplar // len(bounds)+1, most recent observation per bucket
}

// SLOConfig tunes an SLOEngine. The zero value selects 15 s slots, 1 h of
// retention, LatencyBuckets bounds, DefaultObjectives and the real clock.
type SLOConfig struct {
	Interval   time.Duration
	Slots      int
	Bounds     []float64
	Objectives []Objective
	// Clock overrides time.Now — injected by tests to step windows
	// deterministically.
	Clock func() time.Time
}

// SLOEngine records per-op latency/error observations into rolling windows
// and evaluates objectives against them. A nil *SLOEngine is valid and
// records nothing, so plumbing needs no conditionals. All methods are safe
// for concurrent use.
type SLOEngine struct {
	interval   time.Duration
	bounds     []float64
	objectives []Objective
	now        func() time.Time

	mu  sync.Mutex
	ops map[string]*opWindow
	n   int // slots per ring
}

// NewSLOEngine builds an engine from cfg (zero fields take defaults).
func NewSLOEngine(cfg SLOConfig) *SLOEngine {
	if cfg.Interval <= 0 {
		cfg.Interval = 15 * time.Second
	}
	if cfg.Slots <= 0 {
		cfg.Slots = int(time.Hour / cfg.Interval)
		if cfg.Slots < 8 {
			cfg.Slots = 8
		}
	}
	if len(cfg.Bounds) == 0 {
		cfg.Bounds = LatencyBuckets()
	}
	if cfg.Objectives == nil {
		cfg.Objectives = DefaultObjectives()
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	bs := append([]float64(nil), cfg.Bounds...)
	sort.Float64s(bs)
	return &SLOEngine{
		interval:   cfg.Interval,
		bounds:     bs,
		objectives: append([]Objective(nil), cfg.Objectives...),
		now:        cfg.Clock,
		ops:        make(map[string]*opWindow),
		n:          cfg.Slots,
	}
}

// Objectives returns the configured objectives.
func (e *SLOEngine) Objectives() []Objective {
	if e == nil {
		return nil
	}
	return append([]Objective(nil), e.objectives...)
}

// slotFor returns the ring slot covering now, resetting it if the ring has
// lapped past its previous tenancy. Caller holds e.mu.
func (e *SLOEngine) slotFor(w *opWindow, now time.Time) *sloSlot {
	idx := now.UnixNano() / int64(e.interval)
	s := &w.slots[int(idx%int64(e.n)+int64(e.n))%e.n]
	if s.index != idx {
		s.index = idx
		for i := range s.counts {
			s.counts[i] = 0
		}
		s.count, s.sum, s.errs = 0, 0, 0
	}
	return s
}

func (e *SLOEngine) window(op string) *opWindow {
	w, ok := e.ops[op]
	if !ok {
		w = &opWindow{
			slots:     make([]sloSlot, e.n),
			exemplars: make([]Exemplar, len(e.bounds)+1),
		}
		for i := range w.slots {
			w.slots[i].index = -1
			w.slots[i].counts = make([]int64, len(e.bounds)+1)
		}
		e.ops[op] = w
	}
	return w
}

// Observe records one completed operation: its latency in seconds, the
// question it served (0 if none — no exemplar is recorded then), and
// whether it failed.
func (e *SLOEngine) Observe(op string, seconds float64, qid int64, failed bool) {
	if e == nil {
		return
	}
	now := e.now()
	bucket := sort.SearchFloat64s(e.bounds, seconds)
	e.mu.Lock()
	w := e.window(op)
	s := e.slotFor(w, now)
	s.counts[bucket]++
	s.count++
	s.sum += seconds
	if failed {
		s.errs++
	}
	if qid != 0 {
		w.exemplars[bucket] = Exemplar{QID: qid, Seconds: seconds, At: now}
	}
	e.mu.Unlock()
}

// WindowSnapshot sums the slots the rolling window covers into a histogram
// snapshot plus error/total counts and a copy of the per-bucket exemplars.
func (e *SLOEngine) WindowSnapshot(op string, window time.Duration) (HistSnapshot, int64, []Exemplar) {
	if e == nil {
		return HistSnapshot{}, 0, nil
	}
	if window < e.interval {
		window = e.interval
	}
	now := e.now()
	last := now.UnixNano() / int64(e.interval)
	first := last - int64(window/e.interval) + 1
	e.mu.Lock()
	defer e.mu.Unlock()
	w, ok := e.ops[op]
	if !ok {
		return HistSnapshot{Bounds: e.bounds, Counts: make([]int64, len(e.bounds)+1)}, 0, nil
	}
	hs := HistSnapshot{Bounds: e.bounds, Counts: make([]int64, len(e.bounds)+1)}
	errs := int64(0)
	for i := range w.slots {
		s := &w.slots[i]
		if s.index < first || s.index > last {
			continue
		}
		for j, c := range s.counts {
			hs.Counts[j] += c
		}
		hs.Count += s.count
		hs.Sum += s.sum
		errs += s.errs
	}
	return hs, errs, append([]Exemplar(nil), w.exemplars...)
}

// Status evaluates every configured objective against its window.
func (e *SLOEngine) Status() []SLOStatus {
	if e == nil {
		return nil
	}
	out := make([]SLOStatus, 0, len(e.objectives))
	for _, o := range e.objectives {
		out = append(out, e.evaluate(o))
	}
	return out
}

// evaluate computes one objective's SLOStatus.
func (e *SLOEngine) evaluate(o Objective) SLOStatus {
	hs, errs, exemplars := e.WindowSnapshot(o.Op, o.Window)
	st := SLOStatus{
		Op: o.Op, Window: o.Window, Quantile: o.Quantile, Target: o.Target,
		Total: hs.Count, Errors: errs, OK: true,
	}
	if hs.Count == 0 {
		return st
	}
	st.Observed = hs.Quantile(o.Quantile)

	// Latency burn: the fraction of observations slower than the target,
	// relative to the 1-Quantile fraction the objective allows. Bucketed
	// data gives the conservative reading — every bucket whose upper bound
	// exceeds the target counts as over.
	over := int64(0)
	for i, c := range hs.Counts {
		if i >= len(hs.Bounds) || hs.Bounds[i] > o.Target {
			over += c
		}
	}
	budget := 1 - o.Quantile
	if budget > 0 {
		st.BurnRate = (float64(over) / float64(hs.Count)) / budget
	}
	// Error burn: error rate relative to the allowed rate.
	if o.MaxErrorRate > 0 {
		if eb := (float64(errs) / float64(hs.Count)) / o.MaxErrorRate; eb > st.BurnRate {
			st.BurnRate = eb
		}
	}
	st.OK = st.Observed <= o.Target && st.BurnRate <= 1

	// Exemplar: the deepest occupied bucket at or above the one containing
	// the observed quantile — the objective's tail — so the status resolves
	// to the concrete question that blew (or came closest to blowing) it.
	qb := sort.SearchFloat64s(hs.Bounds, st.Observed)
	pick := exemplars[qb]
	for i := len(exemplars) - 1; i > qb; i-- {
		if hs.Counts[i] > 0 && exemplars[i].QID != 0 {
			pick = exemplars[i]
			break
		}
	}
	st.ExemplarQID, st.ExemplarSeconds = pick.QID, pick.Seconds
	return st
}
