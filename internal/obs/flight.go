// Flight recorder: an always-on, bounded keep-the-worst ring of complete
// per-question records. Where the span ring (Recorder) retains the most
// *recent* spans, the flight recorder retains the *slowest* questions —
// each with its full cross-node span tree and serving annotations
// (cache hit, coalesce, forward, shard fan-out, retries) — so an SLO
// exemplar's QID can be expanded into the whole story of the question that
// blew the tail, long after the span ring has wrapped past it.
//
// The recorder consumes no randomness and reads no clocks (callers stamp
// Start/Duration), keeping it off the seeded RNG path the chaos harness
// relies on for deterministic replays.
package obs

import (
	"sort"
	"sync"
	"time"
)

// QuestionRecord is one complete serving record of a question.
type QuestionRecord struct {
	// QID is the question/trace ID shared with the span tree and exemplars.
	QID int64
	// Question is the question text.
	Question string
	// Node is the node that served the question (built the final answer).
	Node string
	// Err is the serving error, "" on success.
	Err string
	// Start and Duration time the end-to-end serving of the question.
	Start    time.Time
	Duration time.Duration
	// Spans is the question's complete span tree (may cross nodes).
	Spans []Span
	// Annotations carry serving-path facts joined onto the record:
	// "cache-hit", "coalesced", "forwarded", "shards=K", "recoveries=N"...
	Annotations []string
}

// DefaultFlightCap bounds how many records a flight recorder retains.
const DefaultFlightCap = 64

// FlightRecorder keeps the worst (slowest) question records seen so far,
// bounded by a fixed capacity. A nil *FlightRecorder is valid and records
// nothing. All methods are safe for concurrent use.
type FlightRecorder struct {
	mu   sync.Mutex
	cap  int
	recs []QuestionRecord
}

// NewFlightRecorder builds a recorder retaining at most capacity records
// (DefaultFlightCap when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCap
	}
	return &FlightRecorder{cap: capacity, recs: make([]QuestionRecord, 0, capacity)}
}

// ShouldConsider reports whether a record with the given duration could be
// retained right now — the cheap pre-check that lets a serving path skip
// building the full record (span copy, annotation formatting) for fast
// questions once the ring is full of slower ones. Racy by design: Consider
// re-checks under the same lock, so a stale true costs one wasted build and
// a stale false only drops a record that was borderline anyway.
func (f *FlightRecorder) ShouldConsider(d time.Duration) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.recs) < f.cap {
		return true
	}
	min := f.recs[0].Duration
	for i := 1; i < len(f.recs); i++ {
		if f.recs[i].Duration < min {
			min = f.recs[i].Duration
		}
	}
	return d > min
}

// Consider offers a record; it is retained if the recorder has spare
// capacity or the record is slower than the current fastest retained one
// (which it then evicts). Returns whether the record was retained.
func (f *FlightRecorder) Consider(rec QuestionRecord) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.recs) < f.cap {
		f.recs = append(f.recs, rec)
		return true
	}
	minIdx := 0
	for i := 1; i < len(f.recs); i++ {
		if f.recs[i].Duration < f.recs[minIdx].Duration {
			minIdx = i
		}
	}
	if rec.Duration <= f.recs[minIdx].Duration {
		return false
	}
	f.recs[minIdx] = rec
	return true
}

// Worst returns up to k retained records, slowest first (all of them when
// k <= 0). Ties order by QID so repeated dumps diff clean.
func (f *FlightRecorder) Worst(k int) []QuestionRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := append([]QuestionRecord(nil), f.recs...)
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Duration != out[j].Duration {
			return out[i].Duration > out[j].Duration
		}
		return out[i].QID < out[j].QID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// ByQID returns the retained record for a question, if any — the lookup
// path from an SLO exemplar to its full story.
func (f *FlightRecorder) ByQID(qid int64) (QuestionRecord, bool) {
	if f == nil {
		return QuestionRecord{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.recs {
		if r.QID == qid {
			return r, true
		}
	}
	return QuestionRecord{}, false
}

// Len reports how many records are retained.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.recs)
}
