package obs

import (
	"sync"
	"testing"
	"time"
)

// testClock is a hand-stepped clock for deterministic window tests.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testEngine(clk *testClock, objectives []Objective) *SLOEngine {
	return NewSLOEngine(SLOConfig{
		Interval:   time.Second,
		Slots:      3600,
		Objectives: objectives,
		Clock:      clk.Now,
	})
}

// TestSLOWindowRolls checks that observations age out of a rolling window
// as the clock advances, while a longer window still sees them.
func TestSLOWindowRolls(t *testing.T) {
	clk := newTestClock()
	e := testEngine(clk, DefaultObjectives())
	e.Observe("ask", 0.010, 101, false)
	clk.Advance(30 * time.Second)
	e.Observe("ask", 0.020, 102, false)

	hs, _, _ := e.WindowSnapshot("ask", time.Minute)
	if hs.Count != 2 {
		t.Errorf("1m window sees %d observations, want 2", hs.Count)
	}
	clk.Advance(45 * time.Second) // first observation is now 75s old
	hs, _, _ = e.WindowSnapshot("ask", time.Minute)
	if hs.Count != 1 {
		t.Errorf("1m window sees %d observations after roll, want 1", hs.Count)
	}
	hs, _, _ = e.WindowSnapshot("ask", 5*time.Minute)
	if hs.Count != 2 {
		t.Errorf("5m window sees %d observations, want 2", hs.Count)
	}
	// Far future: everything aged out (and the ring has lapped).
	clk.Advance(2 * time.Hour)
	hs, _, _ = e.WindowSnapshot("ask", 5*time.Minute)
	if hs.Count != 0 {
		t.Errorf("window sees %d observations 2h later, want 0", hs.Count)
	}
}

// TestSLOStatusMeetsObjective checks the healthy case: fast observations,
// OK=true, burn rate 0.
func TestSLOStatusMeetsObjective(t *testing.T) {
	clk := newTestClock()
	e := testEngine(clk, []Objective{{Op: "ask", Quantile: 0.99, Target: 1.0, Window: time.Minute, MaxErrorRate: 0.1}})
	for i := 0; i < 100; i++ {
		e.Observe("ask", 0.010, int64(1000+i), false)
	}
	sts := e.Status()
	if len(sts) != 1 {
		t.Fatalf("status rows = %d, want 1", len(sts))
	}
	st := sts[0]
	if !st.OK || st.BurnRate != 0 || st.Total != 100 || st.Errors != 0 {
		t.Errorf("healthy status = %+v, want OK with zero burn", st)
	}
	if st.Observed > 0.025 {
		t.Errorf("observed p99 = %v, want ~0.01", st.Observed)
	}
}

// TestSLOLatencyBurnAndViolation checks that tail latency over target
// drives the burn rate past 1 and flips OK.
func TestSLOLatencyBurnAndViolation(t *testing.T) {
	clk := newTestClock()
	e := testEngine(clk, []Objective{{Op: "ask", Quantile: 0.9, Target: 0.1, Window: time.Minute}})
	// 50 fast, 50 slow: 50% of observations over a target that allows 10%.
	for i := 0; i < 50; i++ {
		e.Observe("ask", 0.010, 0, false)
	}
	for i := 0; i < 50; i++ {
		e.Observe("ask", 2.0, int64(2000+i), false)
	}
	st := e.Status()[0]
	if st.OK {
		t.Errorf("status OK despite p90 %.3fs over 0.1s target", st.Observed)
	}
	if st.BurnRate < 4.9 || st.BurnRate > 5.1 { // 0.5 over / 0.1 budget = 5x
		t.Errorf("burn rate = %.2f, want ~5", st.BurnRate)
	}
	if st.Observed <= 0.1 {
		t.Errorf("observed p90 = %v, want > target", st.Observed)
	}
}

// TestSLOErrorBurn checks the error-rate objective: errors alone (with fast
// latency) must trip the burn rate.
func TestSLOErrorBurn(t *testing.T) {
	clk := newTestClock()
	e := testEngine(clk, []Objective{{Op: "forward", Quantile: 0.99, Target: 10, Window: time.Minute, MaxErrorRate: 0.01}})
	for i := 0; i < 95; i++ {
		e.Observe("forward", 0.001, 0, false)
	}
	for i := 0; i < 5; i++ {
		e.Observe("forward", 0.001, 0, true)
	}
	st := e.Status()[0]
	if st.Errors != 5 || st.Total != 100 {
		t.Fatalf("errors/total = %d/%d, want 5/100", st.Errors, st.Total)
	}
	if st.OK {
		t.Error("status OK despite 5% errors against a 1% objective")
	}
	if st.BurnRate < 4.9 || st.BurnRate > 5.1 {
		t.Errorf("error burn rate = %.2f, want ~5", st.BurnRate)
	}
}

// TestSLOExemplarResolvesTailQID checks the exemplar contract: the bucket
// containing the observed quantile carries the QID of a question that
// landed there.
func TestSLOExemplarResolvesTailQID(t *testing.T) {
	clk := newTestClock()
	e := testEngine(clk, []Objective{{Op: "ask", Quantile: 0.99, Target: 0.5, Window: time.Minute}})
	for i := 0; i < 99; i++ {
		e.Observe("ask", 0.010, int64(100+i), false)
	}
	const slowQID = 777
	e.Observe("ask", 3.0, slowQID, false)

	st := e.Status()[0]
	if st.ExemplarQID != slowQID {
		t.Errorf("exemplar QID = %d, want %d (the slow question)", st.ExemplarQID, slowQID)
	}
	if st.ExemplarSeconds != 3.0 {
		t.Errorf("exemplar seconds = %v, want 3.0", st.ExemplarSeconds)
	}
}

// TestSLOEngineNil checks nil-safety: a nil engine records and evaluates
// nothing without panicking.
func TestSLOEngineNil(t *testing.T) {
	var e *SLOEngine
	e.Observe("ask", 1, 1, false)
	if st := e.Status(); st != nil {
		t.Errorf("nil engine status = %v, want nil", st)
	}
	if obj := e.Objectives(); obj != nil {
		t.Errorf("nil engine objectives = %v, want nil", obj)
	}
}

// TestSLOEngineConcurrent hammers Observe/Status/WindowSnapshot from many
// goroutines — the race-detector target for the CI obs step.
func TestSLOEngineConcurrent(t *testing.T) {
	// A one-minute interval keeps the whole run inside one ring slot, so
	// no observation can be lapped away while goroutines hammer the engine.
	e := NewSLOEngine(SLOConfig{Interval: time.Minute, Slots: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ops := []string{"ask", "ShardPR", "forward"}
			for i := 0; i < 500; i++ {
				e.Observe(ops[i%len(ops)], float64(i)*1e-4, int64(g*1000+i), i%17 == 0)
				if i%50 == 0 {
					e.Status()
					e.WindowSnapshot("ask", 10*time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	total := int64(0)
	for _, op := range []string{"ask", "ShardPR", "forward"} {
		hs, _, _ := e.WindowSnapshot(op, time.Hour)
		total += hs.Count
	}
	if total != 8*500 {
		t.Errorf("total observations = %d, want %d", total, 8*500)
	}
}
