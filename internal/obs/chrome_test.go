package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestChromeFromSpansValidJSON pins the Chrome trace-event export: the
// output is valid JSON, every complete event has consistent ts/dur (dur ≥ 0,
// ts ≥ 0 relative to the earliest span), and node → thread metadata exists.
func TestChromeFromSpansValidJSON(t *testing.T) {
	t0 := time.Now()
	spans := []Span{
		{QID: 1, ID: 10, Name: "ask", Node: "a", Start: t0, End: t0.Add(50 * time.Millisecond)},
		{QID: 1, ID: 11, Parent: 10, Name: "stage:PR", Stage: StagePR, Node: "a",
			Start: t0.Add(time.Millisecond), End: t0.Add(20 * time.Millisecond)},
		{QID: 1, ID: 12, Parent: 10, Name: "ap-subtask", Stage: StageAP, Node: "b",
			Start: t0.Add(25 * time.Millisecond), End: t0.Add(45 * time.Millisecond)},
	}
	events := ChromeFromSpans(spans)
	var buf bytes.Buffer
	if err := WriteChromeJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	var complete, meta int
	tids := make(map[int]bool)
	for _, e := range parsed.TraceEvents {
		switch e.Ph {
		case "X":
			complete++
			if e.TS < 0 {
				t.Fatalf("event %q ts = %v < 0", e.Name, e.TS)
			}
			if e.Dur < 0 {
				t.Fatalf("event %q dur = %v < 0", e.Name, e.Dur)
			}
			tids[e.TID] = true
			if e.Args["qid"] == nil {
				t.Fatalf("event %q missing qid arg", e.Name)
			}
		case "M":
			meta++
		}
	}
	if complete != 3 {
		t.Fatalf("complete events = %d, want 3", complete)
	}
	if meta != 2 { // two nodes → two thread_name records
		t.Fatalf("metadata events = %d, want 2", meta)
	}
	if len(tids) != 2 {
		t.Fatalf("threads = %d, want 2 (one per node)", len(tids))
	}
	// The root span starts at the epoch.
	for _, e := range parsed.TraceEvents {
		if e.Name == "ask" && e.TS != 0 {
			t.Fatalf("root ts = %v, want 0", e.TS)
		}
		if e.Name == "ap-subtask" && e.TS != 25000 {
			t.Fatalf("ap-subtask ts = %v, want 25000 us", e.TS)
		}
	}
}

// TestChromeFromVirtualMonotone checks virtual-time events convert with
// monotonically consistent timestamps (1 virtual second = 1e6 us).
func TestChromeFromVirtualMonotone(t *testing.T) {
	events := []VirtualEvent{
		{Seconds: 0.5, Node: "N1", Question: 226, Text: "started QP"},
		{Seconds: 1.25, Node: "N2", Question: 226, Text: "started PR"},
		{Seconds: 3.75, Node: "N1", Question: -1, Text: "load broadcast"},
	}
	ces := ChromeFromVirtual(events)
	var buf bytes.Buffer
	if err := WriteChromeJSON(&buf, ces); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("invalid JSON")
	}
	prev := -1.0
	for _, e := range ces {
		if e.Ph != "i" {
			continue
		}
		if e.TS < prev {
			t.Fatalf("timestamps regressed: %v after %v", e.TS, prev)
		}
		prev = e.TS
	}
	// 1.25 virtual seconds → 1.25e6 us.
	found := false
	for _, e := range ces {
		if e.Name == "started PR" && e.TS == 1.25e6 {
			found = true
		}
	}
	if !found {
		t.Fatal("virtual seconds not scaled to microseconds")
	}
	// The question-less system event must not carry a question arg.
	for _, e := range ces {
		if e.Name == "load broadcast" {
			if _, ok := e.Args["question"]; ok {
				t.Fatal("question -1 must not be exported")
			}
		}
	}
}

func TestChromeEmptyInputs(t *testing.T) {
	if ChromeFromSpans(nil) != nil {
		t.Fatal("empty spans must yield no events")
	}
	if ChromeFromVirtual(nil) != nil {
		t.Fatal("empty virtual events must yield no events")
	}
	var buf bytes.Buffer
	if err := WriteChromeJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("empty trace must still be valid JSON")
	}
}
