package obs

import (
	"strings"
	"testing"
	"time"
)

// TestFormatSpanTreeDeterministic checks sibling ordering: identical start
// times fall back to span-ID order, so shuffled input renders identically.
func TestFormatSpanTreeDeterministic(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	spans := []Span{
		{QID: 1, ID: 10, Name: "ask", Node: "a", Start: t0, End: t0.Add(50 * time.Millisecond)},
		// Two siblings with the same start time — only the ID tie-break
		// keeps their order stable.
		{QID: 1, ID: 12, Parent: 10, Name: "stage:PR", Node: "a", Start: t0.Add(time.Millisecond), End: t0.Add(10 * time.Millisecond)},
		{QID: 1, ID: 11, Parent: 10, Name: "stage:QP", Node: "a", Start: t0.Add(time.Millisecond), End: t0.Add(2 * time.Millisecond)},
		{QID: 1, ID: 13, Parent: 12, Name: "pr-subtask", Node: "b", Start: t0.Add(2 * time.Millisecond), End: t0.Add(9 * time.Millisecond)},
	}
	render := func(ss []Span) string {
		var b strings.Builder
		FormatSpanTree(&b, ss)
		return b.String()
	}
	want := "ask  [a]  50.0ms\n" +
		"  stage:QP  [a]  1.0ms\n" +
		"  stage:PR  [a]  9.0ms\n" +
		"    pr-subtask  [b]  7.0ms\n"
	if got := render(spans); got != want {
		t.Errorf("tree =\n%s\nwant:\n%s", got, want)
	}
	// Every permutation-ish shuffle renders the same bytes.
	shuffled := []Span{spans[3], spans[1], spans[0], spans[2]}
	if render(shuffled) != want {
		t.Errorf("shuffled input changed the rendering:\n%s", render(shuffled))
	}
}

// TestFormatSpanTreeOrphanRoots checks that spans whose parent is missing
// from the slice render as roots instead of vanishing.
func TestFormatSpanTreeOrphanRoots(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	spans := []Span{
		{QID: 1, ID: 20, Parent: 999, Name: "orphan", Node: "c", Start: t0, End: t0.Add(time.Millisecond)},
	}
	var b strings.Builder
	FormatSpanTree(&b, spans)
	if !strings.HasPrefix(b.String(), "orphan") {
		t.Errorf("orphan span not rendered as root:\n%s", b.String())
	}
}

// TestSortSpansTieBreak pins the satellite contract directly: equal start
// times order by span ID.
func TestSortSpansTieBreak(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	ss := []Span{{ID: 3, Start: t0}, {ID: 1, Start: t0}, {ID: 2, Start: t0.Add(-time.Second)}}
	SortSpans(ss)
	if ss[0].ID != 2 || ss[1].ID != 1 || ss[2].ID != 3 {
		t.Errorf("sorted IDs = %d,%d,%d, want 2,1,3", ss[0].ID, ss[1].ID, ss[2].ID)
	}
}
