// Posting-block primitives: the delta+varint encoding underneath the
// compressed index core (internal/index). They live here, next to the other
// varint machinery, so the index layer reuses one audited encoder/decoder
// pair instead of growing its own — and so the decode seam is fuzzable in
// isolation (FuzzDecodePostingBlock in internal/index feeds this directly).
//
// A posting list is split into blocks of at most PostingBlockSize documents.
// Within a block, the first local doc id is encoded as a plain uvarint and
// every later id as the uvarint gap to its predecessor (ids are strictly
// increasing, so every gap is ≥ 1). The block carries no internal header:
// the caller's skip table records, per block, the byte offset, the document
// count and the last (maximum) doc id, which is exactly what a skip-seeking
// intersection needs to decide whether a block can contain a candidate
// without decompressing it.
package wire

import "encoding/binary"

// PostingBlockSize is the maximum number of documents per posting block.
// 128 keeps the per-block skip entry amortized below a tenth of a byte per
// document while bounding the work wasted when an intersection decodes a
// block for a single candidate.
const PostingBlockSize = 128

// MaxPostingDoc bounds a decoded local doc id. Local ids are int32 document
// offsets within one sub-collection; anything above this is a corrupt block,
// not a plausible document.
const MaxPostingDoc = 1<<31 - 1

// AppendPostingBlock appends the delta+varint encoding of docs (sorted,
// strictly increasing, non-negative, at most PostingBlockSize long) to dst
// and returns the extended slice. The caller guarantees the preconditions;
// they hold by construction when blocks are cut from a sorted postings list.
func AppendPostingBlock(dst []byte, docs []int32) []byte {
	if len(docs) == 0 {
		return dst
	}
	dst = binary.AppendUvarint(dst, uint64(docs[0]))
	for i := 1; i < len(docs); i++ {
		dst = binary.AppendUvarint(dst, uint64(docs[i]-docs[i-1]))
	}
	return dst
}

// DecodePostingBlock decodes one posting block of exactly count documents
// from block, appending the ids to dst. It validates everything a hostile
// payload could break: every varint must be well-formed, ids must stay
// strictly increasing and within MaxPostingDoc, the count must match, and
// the block must be consumed exactly — trailing bytes are corruption, not
// padding. On error the returned slice is dst unchanged; the function never
// panics and never reads outside block.
func DecodePostingBlock(dst []int32, block []byte, count int) ([]int32, error) {
	if count <= 0 || count > PostingBlockSize {
		return dst, ErrCorrupt
	}
	if cap(dst)-len(dst) < count {
		// Grow once up front: the count is known, so the cold path costs a
		// single allocation instead of a geometric append ladder (the alloc
		// pin in internal/index budgets exactly this).
		grown := make([]int32, len(dst), len(dst)+count)
		copy(grown, dst)
		dst = grown
	}
	mark := len(dst)
	off := 0
	prev := int64(-1)
	for i := 0; i < count; i++ {
		v, n := binary.Uvarint(block[off:])
		if n <= 0 {
			return dst[:mark], ErrTruncated
		}
		if n > 1 && block[off+n-1] == 0 {
			// Non-minimal varint (a trailing zero continuation byte adds no
			// value bits). Rejecting it keeps the encoding canonical: every
			// accepted block re-encodes to the identical bytes, which is the
			// bit-for-bit property the fuzz harness pins.
			return dst[:mark], ErrCorrupt
		}
		off += n
		if v > MaxPostingDoc {
			// Neither a doc id nor a gap can exceed the doc-id ceiling;
			// rejecting here also keeps the sum below free of overflow.
			return dst[:mark], ErrCorrupt
		}
		var doc int64
		if i == 0 {
			doc = int64(v)
		} else {
			if v == 0 {
				// A zero gap would mean a duplicated doc id.
				return dst[:mark], ErrCorrupt
			}
			doc = prev + int64(v)
		}
		if doc > MaxPostingDoc {
			return dst[:mark], ErrCorrupt
		}
		dst = append(dst, int32(doc))
		prev = doc
	}
	if off != len(block) {
		return dst[:mark], ErrCorrupt
	}
	return dst, nil
}
