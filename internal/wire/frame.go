package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Codec versions negotiated per connection. VersionGob is the implicit
// version of a connection whose first bytes are not the hello magic — a
// legacy peer speaking gob streams.
const (
	VersionGob byte = 0 // gob encoder/decoder streams (legacy, fallback)
	VersionBin byte = 1 // length-prefixed binary frames (this package)
)

// magic is the 4-byte hello prefix a binary-codec client sends immediately
// after connecting. It is chosen to be implausible as the start of a gob
// stream ('D' would announce a 68-byte gob message whose body then fails
// type-descriptor parsing), so a server that does not understand the hello
// fails fast instead of hanging.
var magic = [4]byte{'D', 'Q', 'W', 0x01}

// ackByte prefixes the server's hello reply.
const ackByte = 0xA5

// MagicLen is the number of bytes a server must peek to classify a
// connection (see IsMagic).
const MagicLen = 4

// IsMagic reports whether the first MagicLen bytes of a connection are the
// binary-codec hello. Servers peek this many bytes off every accepted
// connection: a match selects the framed binary codec, anything else is
// replayed into a gob decoder (the legacy path).
func IsMagic(b []byte) bool {
	return len(b) >= MagicLen && b[0] == magic[0] && b[1] == magic[1] && b[2] == magic[2] && b[3] == magic[3]
}

// WriteHello sends the client half of the codec negotiation: the magic
// followed by the highest version the client speaks.
func WriteHello(w io.Writer, version byte) error {
	hello := [5]byte{magic[0], magic[1], magic[2], magic[3], version}
	_, err := w.Write(hello[:])
	return err
}

// ReadHelloVersion reads the client's requested version (the byte after the
// magic, which the caller has already consumed via its peek).
func ReadHelloVersion(r io.Reader) (byte, error) {
	var v [1]byte
	if _, err := io.ReadFull(r, v[:]); err != nil {
		return 0, err
	}
	return v[0], nil
}

// WriteAck sends the server half of the negotiation: an ack byte plus the
// agreed version (the minimum of what both sides speak).
func WriteAck(w io.Writer, version byte) error {
	ack := [2]byte{ackByte, version}
	_, err := w.Write(ack[:])
	return err
}

// ReadAck reads and validates the server's hello reply, returning the
// negotiated version. A garbled ack (an old server that echoed something
// else before closing) is an error — the caller falls back to gob.
func ReadAck(r io.Reader) (byte, error) {
	var ack [2]byte
	if _, err := io.ReadFull(r, ack[:]); err != nil {
		return 0, err
	}
	if ack[0] != ackByte {
		return 0, errors.New("wire: bad hello ack")
	}
	return ack[1], nil
}

// Negotiate picks the version both sides speak.
func Negotiate(ours, theirs byte) byte {
	if theirs < ours {
		return theirs
	}
	return ours
}

// ReadFrame reads one length-prefixed frame, reusing buf when it is large
// enough. It returns the payload as a slice of the (possibly grown) buffer;
// callers that keep the returned slice's full capacity across calls
// amortize the buffer to zero steady-state allocations:
//
//	payload, err := wire.ReadFrame(conn, rbuf)
//	rbuf = payload[:cap(payload)]
//
// A header announcing more than MaxFrameBytes fails immediately with
// ErrFrameTooLarge — the decode-side half of the 16 MB frame guard.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("%w (%d bytes)", ErrFrameTooLarge, n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
