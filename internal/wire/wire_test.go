package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"net"
	"testing"
	"time"
)

// TestBufferReaderRoundTrip drives every primitive through an encode/decode
// cycle and checks exact recovery.
func TestBufferReaderRoundTrip(t *testing.T) {
	b := GetBuffer()
	defer PutBuffer(b)

	when := time.Unix(1_700_000_000, 123456789)
	b.Byte(0x7F)
	b.Bool(true)
	b.Bool(false)
	b.Uint64(0)
	b.Uint64(300)
	b.Uint64(math.MaxUint64)
	b.Int64(-1)
	b.Int64(math.MinInt64)
	b.Int64(math.MaxInt64)
	b.Int(-42)
	b.Float64(3.14159)
	b.Float64(math.Inf(-1))
	b.String("")
	b.String("hello, wire")
	b.Bytes([]byte{1, 2, 3})
	b.Time(time.Time{})
	b.Time(when)

	r := NewReader(b.B)
	if got := r.Byte(); got != 0x7F {
		t.Errorf("Byte = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool mismatch")
	}
	for _, want := range []uint64{0, 300, math.MaxUint64} {
		if got := r.Uint64(); got != want {
			t.Errorf("Uint64 = %d, want %d", got, want)
		}
	}
	for _, want := range []int64{-1, math.MinInt64, math.MaxInt64} {
		if got := r.Int64(); got != want {
			t.Errorf("Int64 = %d, want %d", got, want)
		}
	}
	if got := r.Int(); got != -42 {
		t.Errorf("Int = %d", got)
	}
	if got := r.Float64(); got != 3.14159 {
		t.Errorf("Float64 = %v", got)
	}
	if got := r.Float64(); !math.IsInf(got, -1) {
		t.Errorf("Float64 = %v, want -Inf", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "hello, wire" {
		t.Errorf("String = %q", got)
	}
	if got := r.BytesView(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("BytesView = %v", got)
	}
	if got := r.Time(); !got.IsZero() {
		t.Errorf("zero Time = %v", got)
	}
	if got := r.Time(); !got.Equal(when) {
		t.Errorf("Time = %v, want %v", got, when)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("decode error: %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}
}

// TestReaderStickyErrors checks that truncated and corrupt payloads produce
// sticky errors and zero values, never panics.
func TestReaderStickyErrors(t *testing.T) {
	r := NewReader(nil)
	if r.Byte() != 0 || r.Uint64() != 0 || r.String() != "" {
		t.Error("empty reader returned non-zero values")
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", r.Err())
	}

	// A length prefix larger than the remaining payload is corruption, not
	// an allocation request.
	b := GetBuffer()
	b.Uint64(1 << 40)
	r = NewReader(b.B)
	if s := r.String(); s != "" {
		t.Errorf("String on corrupt length = %q", s)
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", r.Err())
	}
	PutBuffer(b)

	// ListLen applies the per-element minimum: 1000 claimed elements of at
	// least 10 bytes cannot fit in a 3-byte remainder.
	b = GetBuffer()
	b.Uint64(1000)
	b.Byte(0)
	r = NewReader(b.B)
	if n := r.ListLen(10); n != 0 {
		t.Errorf("ListLen = %d, want 0", n)
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", r.Err())
	}
	PutBuffer(b)
}

// TestFrameRoundTrip sends frames through a real socket pair, exercising
// header patching, buffer reuse and the oversize guard.
func TestFrameRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	go func() {
		b := GetBuffer()
		defer PutBuffer(b)
		for _, payload := range []string{"first", "", "third frame"} {
			b.BeginFrame()
			b.String(payload)
			if err := b.EndFrame(); err != nil {
				t.Errorf("EndFrame: %v", err)
				return
			}
			if _, err := client.Write(b.B); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	}()

	var buf []byte
	for _, want := range []string{"first", "", "third frame"} {
		payload, err := ReadFrame(server, buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		buf = payload[:cap(payload)]
		r := NewReader(payload)
		if got := r.String(); got != want {
			t.Errorf("payload = %q, want %q", got, want)
		}
	}
}

// TestFrameGuard checks both halves of the 16 MB budget: a header
// announcing more than MaxFrameBytes fails the read immediately, and an
// encode outgrowing the budget fails EndFrame.
func TestFrameGuard(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameBytes+1)
	_, err := ReadFrame(bytes.NewReader(hdr[:]), nil)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized header: err = %v, want ErrFrameTooLarge", err)
	}

	b := &Buffer{}
	b.BeginFrame()
	b.B = append(b.B, make([]byte, MaxFrameBytes+1)...)
	if err := b.EndFrame(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized encode: err = %v, want ErrFrameTooLarge", err)
	}
}

// TestHelloNegotiation runs the codec hello over a pipe: magic detection,
// version exchange and the min-version agreement.
func TestHelloNegotiation(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	errc := make(chan error, 1)
	go func() {
		errc <- WriteHello(client, VersionBin)
	}()
	peek := make([]byte, MagicLen)
	if _, err := server.Read(peek); err != nil {
		t.Fatal(err)
	}
	if !IsMagic(peek) {
		t.Fatalf("hello magic not recognized: % x", peek)
	}
	v, err := ReadHelloVersion(server)
	if err != nil {
		t.Fatal(err)
	}
	if v != VersionBin {
		t.Fatalf("client version = %d", v)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	agreed := Negotiate(VersionBin, v)
	go func() {
		errc <- WriteAck(server, agreed)
	}()
	got, err := ReadAck(client)
	if err != nil {
		t.Fatal(err)
	}
	if got != VersionBin {
		t.Fatalf("negotiated %d, want %d", got, VersionBin)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	// A gob stream's first bytes must never look like the hello.
	if IsMagic([]byte{0x44, 0xff, 0x81, 0x03}) {
		t.Error("gob-ish bytes classified as hello magic")
	}
	// Version negotiation picks the minimum.
	if Negotiate(VersionBin, VersionGob) != VersionGob {
		t.Error("negotiation did not pick the lower version")
	}
}

// TestBadAck checks the client rejects a garbled hello reply.
func TestBadAck(t *testing.T) {
	if _, err := ReadAck(bytes.NewReader([]byte{0x00, 0x01})); err == nil {
		t.Fatal("garbled ack accepted")
	}
}

// TestBufferPoolDropsOversized checks the pool never pins huge buffers.
func TestBufferPoolDropsOversized(t *testing.T) {
	b := GetBuffer()
	b.B = make([]byte, 0, maxPooledBuf+1)
	PutBuffer(b) // must not panic; must drop
	nb := GetBuffer()
	defer PutBuffer(nb)
	if cap(nb.B) > maxPooledBuf {
		t.Fatalf("oversized buffer (%d cap) returned to pool", cap(nb.B))
	}
}
