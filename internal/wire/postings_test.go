package wire

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// sortedDocs turns arbitrary int32s into a valid posting block payload:
// sorted, strictly increasing, non-negative, capped at PostingBlockSize.
func sortedDocs(xs []int32) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, x := range xs {
		if x < 0 {
			x = -x
		}
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
		if len(out) == PostingBlockSize {
			break
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestPostingBlockRoundTripProperty(t *testing.T) {
	f := func(xs []int32) bool {
		docs := sortedDocs(xs)
		if len(docs) == 0 {
			return len(AppendPostingBlock(nil, docs)) == 0
		}
		enc := AppendPostingBlock(nil, docs)
		dec, err := DecodePostingBlock(nil, enc, len(docs))
		if err != nil {
			return false
		}
		if len(dec) != len(docs) {
			return false
		}
		for i := range docs {
			if dec[i] != docs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPostingBlockAppendsToDst(t *testing.T) {
	docs := []int32{3, 7, 9, 1000, 70000}
	enc := AppendPostingBlock(nil, docs)
	prefix := []int32{-1, -2}
	dec, err := DecodePostingBlock(prefix, enc, len(docs))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(prefix)+len(docs) || dec[0] != -1 || dec[2] != 3 {
		t.Fatalf("decode did not append to dst: %v", dec)
	}
}

func TestPostingBlockRejectsCorruption(t *testing.T) {
	docs := make([]int32, PostingBlockSize)
	for i := range docs {
		docs[i] = int32(i * 3)
	}
	enc := AppendPostingBlock(nil, docs)

	// Every truncation must fail cleanly: either a short varint or a count
	// mismatch, never a panic or a wrong success.
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodePostingBlock(nil, enc[:cut], len(docs)); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage is corruption, not padding.
	if _, err := DecodePostingBlock(nil, append(append([]byte(nil), enc...), 0x5), len(docs)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Wrong counts.
	for _, count := range []int{0, -1, len(docs) - 1, len(docs) + 1, PostingBlockSize + 1} {
		if _, err := DecodePostingBlock(nil, enc, count); err == nil {
			t.Fatalf("count %d accepted", count)
		}
	}
	// A zero gap (duplicate doc id) after the first element.
	dup := AppendPostingBlock(nil, []int32{5})
	dup = append(dup, 0) // gap 0
	if _, err := DecodePostingBlock(nil, dup, 2); err == nil {
		t.Fatal("zero gap accepted")
	}
	// A gap pushing the running doc id past MaxPostingDoc.
	over := AppendPostingBlock(nil, []int32{MaxPostingDoc})
	over = AppendPostingBlock(over, []int32{1}) // gap 1 → MaxPostingDoc+1
	if _, err := DecodePostingBlock(nil, over, 2); err == nil {
		t.Fatal("doc id overflow accepted")
	}
	// A single varint beyond the ceiling.
	big := make([]byte, 0, 10)
	for i := 0; i < 9; i++ {
		big = append(big, 0xff)
	}
	big = append(big, 0x01)
	if _, err := DecodePostingBlock(nil, big, 1); err == nil {
		t.Fatal("oversized varint accepted")
	}
	// On error the destination must come back unchanged.
	prefix := []int32{42}
	out, err := DecodePostingBlock(prefix, enc[:3], len(docs))
	if err == nil {
		t.Fatal("expected error")
	}
	if len(out) != 1 || out[0] != 42 {
		t.Fatalf("dst mutated on error: %v", out)
	}
}

func TestPostingBlockRandomBytesNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 64)
	for i := 0; i < 5000; i++ {
		n := rng.Intn(len(buf))
		rng.Read(buf[:n])
		count := rng.Intn(PostingBlockSize+4) - 1
		DecodePostingBlock(nil, buf[:n], count) // must not panic; error is fine
	}
}
