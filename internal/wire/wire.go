// Package wire is the hand-rolled binary codec underneath the live
// cluster's multiplexed transport. It replaces gob's per-message reflection
// on the hot wire operations (heartbeats, forwards, PR/AP sub-tasks and
// their responses) with length-prefixed frames of varint/fixed fields
// written into pooled scratch buffers — near-zero allocations per message
// against gob's dozens.
//
// The package deliberately knows nothing about the live protocol's message
// types: it provides the primitives (Buffer, Reader), the frame format and
// the connection hello used for codec version negotiation. Package live
// layers its Request/Response encodings on top (codec.go) and keeps gob as
// the negotiated fallback — an old gob peer and a new wire peer interop on
// the same port, and gob remains the fuzz seam for exotic payloads.
//
// Frame format (after the hello exchange):
//
//	+----------------+---------------------+
//	| length (4B BE) | payload (length B)  |
//	+----------------+---------------------+
//
// A frame's payload is bounded by MaxFrameBytes (the same 16 MB guard the
// gob paths enforce); an oversized header is an immediate error, never an
// unbounded read.
package wire

import (
	"encoding/binary"
	"errors"
	"math"
	"sync"
	"time"
)

// MaxFrameBytes bounds one frame's payload, mirroring the gob paths' frame
// guard (live.MaxFrameBytes). Both codecs enforce the same 16 MB budget.
const MaxFrameBytes = 16 << 20

// Errors shared by the framing and decoding layers.
var (
	// ErrFrameTooLarge reports a frame header announcing a payload beyond
	// MaxFrameBytes (or an EndFrame over-budget encode).
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameBytes")
	// ErrTruncated reports a read past the end of a payload: the frame was
	// shorter than its encoding claims.
	ErrTruncated = errors.New("wire: truncated payload")
	// ErrCorrupt reports a structurally invalid encoding (bad varint, a
	// length field larger than the remaining payload, ...).
	ErrCorrupt = errors.New("wire: corrupt payload")
)

// ---------------------------------------------------------------------------
// Buffer: the append-side primitive.

// Buffer is an append-only encode buffer. Get one from GetBuffer and return
// it with PutBuffer so steady-state encoding performs no allocations.
type Buffer struct {
	// B is the encoded bytes so far. Exposed so callers can write the
	// finished frame with a single conn.Write.
	B []byte
}

// Reset empties the buffer, keeping its capacity.
func (b *Buffer) Reset() { b.B = b.B[:0] }

// Len reports the encoded size so far.
func (b *Buffer) Len() int { return len(b.B) }

// Byte appends one raw byte.
func (b *Buffer) Byte(v byte) { b.B = append(b.B, v) }

// Bool appends a bool as one byte.
func (b *Buffer) Bool(v bool) {
	if v {
		b.B = append(b.B, 1)
	} else {
		b.B = append(b.B, 0)
	}
}

// Uint64 appends an unsigned varint.
func (b *Buffer) Uint64(v uint64) { b.B = binary.AppendUvarint(b.B, v) }

// Int64 appends a zig-zag signed varint.
func (b *Buffer) Int64(v int64) { b.B = binary.AppendVarint(b.B, v) }

// Int appends an int as a signed varint.
func (b *Buffer) Int(v int) { b.Int64(int64(v)) }

// Float64 appends an IEEE-754 double as 8 little-endian bytes.
func (b *Buffer) Float64(v float64) {
	b.B = binary.LittleEndian.AppendUint64(b.B, math.Float64bits(v))
}

// String appends a length-prefixed string.
func (b *Buffer) String(s string) {
	b.Uint64(uint64(len(s)))
	b.B = append(b.B, s...)
}

// Bytes appends a length-prefixed byte slice.
func (b *Buffer) Bytes(p []byte) {
	b.Uint64(uint64(len(p)))
	b.B = append(b.B, p...)
}

// Time appends a time as a presence flag plus UnixNano. The zero time
// round-trips exactly (gob's encoding also preserves it); sub-nanosecond
// monotonic clock readings and time zones do not travel, matching what the
// protocol needs (heartbeat staleness math uses wall-clock deltas only).
func (b *Buffer) Time(t time.Time) {
	if t.IsZero() {
		b.Bool(false)
		return
	}
	b.Bool(true)
	b.Int64(t.UnixNano())
}

// BeginFrame resets the buffer and reserves the 4-byte length header; pair
// with EndFrame once the payload is encoded.
func (b *Buffer) BeginFrame() {
	b.Reset()
	b.B = append(b.B, 0, 0, 0, 0)
}

// EndFrame patches the reserved header with the payload length. It errors
// (and leaves the buffer unusable for sending) if the payload outgrew the
// frame budget — the encode-side half of the 16 MB guard.
func (b *Buffer) EndFrame() error {
	payload := len(b.B) - 4
	if payload < 0 {
		return ErrCorrupt
	}
	if payload > MaxFrameBytes {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(b.B[:4], uint32(payload))
	return nil
}

// bufPool recycles encode buffers. Oversized buffers (a rare huge frame)
// are dropped rather than pinned in the pool.
var bufPool = sync.Pool{New: func() any { return &Buffer{B: make([]byte, 0, 512)} }}

// maxPooledBuf bounds the capacity a returned buffer may retain.
const maxPooledBuf = 1 << 20

// GetBuffer returns an empty pooled buffer.
func GetBuffer() *Buffer {
	b := bufPool.Get().(*Buffer)
	b.Reset()
	return b
}

// PutBuffer returns a buffer to the pool.
func PutBuffer(b *Buffer) {
	if b == nil || cap(b.B) > maxPooledBuf {
		return
	}
	bufPool.Put(b)
}

// ---------------------------------------------------------------------------
// Reader: the decode-side primitive.

// Reader decodes a payload produced by Buffer. Errors are sticky: after the
// first failure every further read returns zero values and Err() reports
// the cause, so decode sequences need a single error check at the end.
// A Reader is a value type — declare it on the stack (NewReader) to keep
// the decode path allocation-free.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over payload.
func NewReader(payload []byte) Reader { return Reader{b: payload} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports the unread byte count.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail(ErrTruncated)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// Bool reads a bool.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Uint64 reads an unsigned varint.
func (r *Reader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail(ErrCorrupt)
		return 0
	}
	r.off += n
	return v
}

// Int64 reads a zig-zag signed varint.
func (r *Reader) Int64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail(ErrCorrupt)
		return 0
	}
	r.off += n
	return v
}

// Int reads a signed varint as an int.
func (r *Reader) Int() int { return int(r.Int64()) }

// Float64 reads an IEEE-754 double.
func (r *Reader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail(ErrTruncated)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

// length reads a length prefix, validating it against the remaining
// payload so a corrupt frame can never induce a huge allocation.
func (r *Reader) length() int {
	n := r.Uint64()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.Remaining()) {
		r.fail(ErrCorrupt)
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.length()
	if r.err != nil || n == 0 {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// BytesView reads a length-prefixed byte slice as a view into the payload
// (no copy). The view is only valid until the payload buffer is reused.
func (r *Reader) BytesView() []byte {
	n := r.length()
	if r.err != nil {
		return nil
	}
	p := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return p
}

// Time reads a time written by Buffer.Time.
func (r *Reader) Time() time.Time {
	if !r.Bool() || r.err != nil {
		return time.Time{}
	}
	return time.Unix(0, r.Int64())
}

// ListLen reads a list length prefix and validates it against a per-element
// minimum size, so a corrupt header cannot force a giant slice allocation:
// a list of n elements each at least minElemBytes long cannot be encoded in
// fewer than n*minElemBytes remaining bytes.
func (r *Reader) ListLen(minElemBytes int) int {
	n := r.Uint64()
	if r.err != nil {
		return 0
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if n > uint64(r.Remaining()/minElemBytes) {
		r.fail(ErrCorrupt)
		return 0
	}
	return int(n)
}
