package workload

import (
	"testing"

	"distqa/internal/corpus"
	"distqa/internal/index"
	"distqa/internal/qa"
)

var (
	testColl   = corpus.Generate(corpus.Tiny())
	testEngine = qa.NewEngine(testColl, index.BuildAll(testColl))
)

func TestFromCollection(t *testing.T) {
	s := FromCollection(testColl)
	if s.Len() != len(testColl.Facts) {
		t.Fatalf("len = %d, want %d", s.Len(), len(testColl.Facts))
	}
	for i, q := range s.Questions {
		f := testColl.Facts[i]
		if q.Text != f.Question || q.Expected != f.Answer || q.Type != f.AnswerType {
			t.Fatalf("question %d mismatch: %+v vs %+v", i, q, f)
		}
	}
}

func TestProfileAndComplex(t *testing.T) {
	s := FromCollection(testColl).Profile(testEngine)
	anyAccepted := false
	for _, q := range s.Questions {
		if q.Accepted > 0 {
			anyAccepted = true
		}
	}
	if !anyAccepted {
		t.Fatal("profiling produced no accepted counts")
	}
	med := s.Questions[len(s.Questions)/2].Accepted
	c := s.Complex(med)
	if c.Len() == 0 || c.Len() == s.Len() {
		t.Fatalf("complex filter degenerate: %d of %d", c.Len(), s.Len())
	}
	for _, q := range c.Questions {
		if q.Accepted < med {
			t.Fatalf("complex question below threshold: %+v", q)
		}
	}
}

func TestTopComplex(t *testing.T) {
	s := FromCollection(testColl).Profile(testEngine)
	top := s.TopComplex(5)
	if top.Len() != 5 {
		t.Fatalf("top = %d", top.Len())
	}
	for i := 1; i < top.Len(); i++ {
		if top.Questions[i].Accepted > top.Questions[i-1].Accepted {
			t.Fatal("TopComplex not sorted")
		}
	}
	// Asking for more than available caps at the set size.
	if s.TopComplex(10000).Len() != s.Len() {
		t.Fatal("TopComplex overflow not capped")
	}
}

func TestPickDeterministicAndCycling(t *testing.T) {
	s := FromCollection(testColl)
	a := s.Pick(1, 50)
	b := s.Pick(1, 50)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("Pick not deterministic")
		}
	}
	c := s.Pick(2, 50)
	same := true
	for i := range a {
		if a[i].ID != c[i].ID {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical picks")
	}
	if len(s.Pick(1, 3*s.Len())) != 3*s.Len() {
		t.Fatal("Pick should cycle beyond set size")
	}
}

func TestPaperArrivals(t *testing.T) {
	a := PaperArrivals(7, 32, 2.0)
	if len(a) != 32 || a[0] != 2.0 {
		t.Fatalf("arrivals = %v", a[:3])
	}
	for i := 1; i < len(a); i++ {
		gap := a[i] - a[i-1]
		if gap < 0 || gap >= 2 {
			t.Fatalf("gap %d = %v, want in [0,2)", i, gap)
		}
	}
	b := PaperArrivals(7, 32, 2.0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("arrivals not deterministic")
		}
	}
}

func TestOneAtATime(t *testing.T) {
	a := OneAtATime(5, 2, 300)
	if len(a) != 5 || a[0] != 2 || a[4] != 2+4*300 {
		t.Fatalf("arrivals = %v", a)
	}
}
