package workload

import (
	"math"
	"math/rand"
	"sort"
)

// Open-loop arrival processes (PR-8). The paper's Section 6.1 protocol is a
// closed startup sequence: 8·N questions, then silence. A production front
// door sees the opposite — requests arrive on their own clock, independent of
// completions — so the load harness behind `qabench -load` generates
// open-loop schedules: Poisson (memoryless, the M in M/G/k) and bursty
// (an on/off modulated Poisson, the shape *Dispatching Odyssey* measures in
// real cluster traces), paired with heavy-tailed service demand drawn from
// the question-complexity profile.

// PoissonArrivals returns n arrival times (seconds) starting at start with
// exponentially distributed inter-arrival gaps of mean 1/rate — a Poisson
// process of the given rate (arrivals per second). Deterministic for a seed.
func PoissonArrivals(seed int64, rate float64, n int, start float64) []float64 {
	if rate <= 0 || n <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	at := start
	for i := range out {
		out[i] = at
		at += rng.ExpFloat64() / rate
	}
	return out
}

// BurstArrivals returns n arrival times from a two-phase modulated Poisson
// process with the same long-run average rate as PoissonArrivals(rate): time
// alternates between an "on" phase lasting onFrac·period at burst·rate and an
// "off" phase covering the rest of each period at a compensating low rate
// (floored at a trickle so the off phase is quiet, not silent). burst ≤ 1 or
// onFrac outside (0,1) degrades to plain Poisson. The result is the bursty,
// autocorrelated shape real front-door traffic has: the mean matches, the
// variance does not.
func BurstArrivals(seed int64, rate, burst, onFrac, period float64, n int, start float64) []float64 {
	if rate <= 0 || n <= 0 {
		return nil
	}
	if burst <= 1 || onFrac <= 0 || onFrac >= 1 || period <= 0 {
		return PoissonArrivals(seed, rate, n, start)
	}
	onRate := rate * burst
	// Solve onFrac·onRate + (1-onFrac)·offRate = rate for the off phase.
	offRate := (rate - onFrac*onRate) / (1 - onFrac)
	if min := rate / 100; offRate < min {
		offRate = min
	}
	// Lewis–Shedler thinning: candidates at the peak (on) rate, each accepted
	// with probability r(t)/onRate for the phase it lands in. Drawing gaps at
	// the current phase's rate instead would let one long off-phase gap leap
	// whole on-phases — the process would degenerate to the trickle rate.
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, 0, n)
	at := start
	for len(out) < n {
		at += rng.ExpFloat64() / onRate
		r := offRate
		if phase := math.Mod(at-start, period); phase < onFrac*period {
			r = onRate
		}
		if rng.Float64()*onRate <= r {
			out = append(out, at)
		}
	}
	return out
}

// Burstiness is the index of dispersion of the inter-arrival gaps
// (variance/mean²·… — concretely the squared coefficient of variation). A
// Poisson process has CV² ≈ 1; an on/off burst process has CV² > 1. Used by
// tests and the load report to label a schedule's shape.
func Burstiness(arrivals []float64) float64 {
	if len(arrivals) < 3 {
		return 0
	}
	gaps := make([]float64, len(arrivals)-1)
	var sum float64
	for i := 1; i < len(arrivals); i++ {
		gaps[i-1] = arrivals[i] - arrivals[i-1]
		sum += gaps[i-1]
	}
	mean := sum / float64(len(gaps))
	if mean <= 0 {
		return 0
	}
	var varSum float64
	for _, g := range gaps {
		d := g - mean
		varSum += d * d
	}
	return varSum / float64(len(gaps)) / (mean * mean)
}

// HeavyTailedPick returns n questions sampled (with replacement) with
// probability proportional to (1+Accepted)^alpha — service demand tilted
// toward the complex tail of the profile. alpha = 0 is uniform; alpha ≈ 2
// makes the handful of 20+-paragraph questions dominate the work while most
// arrivals stay cheap, the heavy-tailed demand distribution open-loop load
// tests need (a closed picker re-weights toward cheap questions because they
// finish faster; an open-loop one must encode the tail in the sample itself).
// Call Profile first; deterministic for a seed.
func (s Set) HeavyTailedPick(seed int64, n int, alpha float64) []Question {
	if len(s.Questions) == 0 || n <= 0 {
		return nil
	}
	// Cumulative weight table, then n binary searches.
	cum := make([]float64, len(s.Questions))
	total := 0.0
	for i, q := range s.Questions {
		total += math.Pow(1+float64(q.Accepted), alpha)
		cum[i] = total
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Question, n)
	for i := range out {
		u := rng.Float64() * total
		j := sort.SearchFloat64s(cum, u)
		if j >= len(cum) {
			j = len(cum) - 1
		}
		out[i] = s.Questions[j]
	}
	return out
}
