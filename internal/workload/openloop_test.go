package workload

import (
	"math"
	"testing"
)

func TestPoissonArrivalsMeanGap(t *testing.T) {
	const rate, n = 50.0, 5000
	at := PoissonArrivals(7, rate, n, 0)
	if len(at) != n {
		t.Fatalf("got %d arrivals, want %d", len(at), n)
	}
	for i := 1; i < n; i++ {
		if at[i] < at[i-1] {
			t.Fatalf("arrivals not monotone at %d: %v < %v", i, at[i], at[i-1])
		}
	}
	// Mean inter-arrival gap ≈ 1/rate within 10% over 5000 samples.
	meanGap := (at[n-1] - at[0]) / float64(n-1)
	if want := 1 / rate; math.Abs(meanGap-want)/want > 0.10 {
		t.Fatalf("mean gap %v, want ≈ %v", meanGap, want)
	}
	// Deterministic for a seed; different for another.
	again := PoissonArrivals(7, rate, n, 0)
	for i := range at {
		if at[i] != again[i] {
			t.Fatalf("seeded schedule not deterministic at %d", i)
		}
	}
	other := PoissonArrivals(8, rate, n, 0)
	if at[1] == other[1] && at[2] == other[2] && at[3] == other[3] {
		t.Fatal("different seeds produced the same schedule")
	}
	if PoissonArrivals(1, 0, 10, 0) != nil || PoissonArrivals(1, 10, 0, 0) != nil {
		t.Fatal("degenerate inputs must return nil")
	}
}

func TestBurstArrivalsShape(t *testing.T) {
	const rate, n = 50.0, 5000
	poisson := PoissonArrivals(3, rate, n, 0)
	burst := BurstArrivals(3, rate, 4, 0.25, 1.0, n, 0)

	// Same long-run average rate (within 15%)...
	pMean := (poisson[n-1] - poisson[0]) / float64(n-1)
	bMean := (burst[n-1] - burst[0]) / float64(n-1)
	if math.Abs(bMean-pMean)/pMean > 0.15 {
		t.Fatalf("burst mean gap %v far from poisson %v: rates should match", bMean, pMean)
	}
	// ...but visibly more dispersion: CV² ≈ 1 for Poisson, > 1.5 for bursts.
	pB, bB := Burstiness(poisson), Burstiness(burst)
	if pB < 0.8 || pB > 1.3 {
		t.Fatalf("poisson burstiness %v, want ≈ 1", pB)
	}
	if bB < 1.5 {
		t.Fatalf("burst burstiness %v, want > 1.5 (more dispersed than poisson)", bB)
	}

	// Degenerate burst parameters degrade to plain Poisson.
	for _, got := range [][]float64{
		BurstArrivals(3, rate, 1, 0.25, 1.0, n, 0), // burst ≤ 1
		BurstArrivals(3, rate, 4, 0, 1.0, n, 0),    // onFrac ≤ 0
		BurstArrivals(3, rate, 4, 1.0, 1.0, n, 0),  // onFrac ≥ 1
		BurstArrivals(3, rate, 4, 0.25, 0, n, 0),   // period ≤ 0
	} {
		for i := range got {
			if got[i] != poisson[i] {
				t.Fatal("degenerate burst parameters must degrade to PoissonArrivals")
			}
		}
	}
}

func TestBurstinessDegenerate(t *testing.T) {
	if Burstiness(nil) != 0 || Burstiness([]float64{1, 2}) != 0 {
		t.Fatal("short schedules have burstiness 0")
	}
	// A perfectly regular schedule has zero dispersion.
	if got := Burstiness([]float64{0, 1, 2, 3, 4}); got != 0 {
		t.Fatalf("regular schedule burstiness %v, want 0", got)
	}
}

func TestHeavyTailedPick(t *testing.T) {
	s := Set{Questions: []Question{
		{ID: 0, Text: "cheap a", Accepted: 0},
		{ID: 1, Text: "cheap b", Accepted: 1},
		{ID: 2, Text: "complex", Accepted: 40},
	}}
	picks := s.HeavyTailedPick(11, 4000, 2)
	if len(picks) != 4000 {
		t.Fatalf("got %d picks, want 4000", len(picks))
	}
	counts := map[int]int{}
	for _, q := range picks {
		counts[q.ID]++
	}
	// Weight (1+40)² dwarfs (1+0)² and (1+1)²: the complex question must
	// dominate the sample.
	if counts[2] < counts[0]+counts[1] {
		t.Fatalf("alpha=2 pick not tilted to the tail: %v", counts)
	}
	// alpha=0 is uniform-ish: every question shows up, none dominates 60%.
	uni := map[int]int{}
	for _, q := range s.HeavyTailedPick(11, 4000, 0) {
		uni[q.ID]++
	}
	for id := 0; id < 3; id++ {
		if uni[id] == 0 {
			t.Fatalf("alpha=0 never picked question %d: %v", id, uni)
		}
		if uni[id] > 2400 {
			t.Fatalf("alpha=0 pick is skewed: %v", uni)
		}
	}
	// Deterministic for a seed.
	again := s.HeavyTailedPick(11, 100, 2)
	first := s.HeavyTailedPick(11, 100, 2)
	for i := range again {
		if again[i].ID != first[i].ID {
			t.Fatal("seeded pick not deterministic")
		}
	}
	if (Set{}).HeavyTailedPick(1, 10, 2) != nil {
		t.Fatal("empty set must pick nil")
	}
}
