// Package workload builds question sets and arrival processes for the
// experiments: the TREC-like factual questions generated with the synthetic
// corpus, the paper's high-load arrival process (Section 6.1: 8·N questions
// starting at intervals uniform in [0, 2] seconds), and the complex-question
// filter of Section 6.2 (questions with at least 20 paragraphs per AP module
// on the full cluster).
package workload

import (
	"math/rand"

	"distqa/internal/corpus"
	"distqa/internal/nlp"
	"distqa/internal/qa"
)

// Question is one askable question with its ground truth.
type Question struct {
	ID       int
	Text     string
	Expected string
	Type     nlp.EntityType
	FactID   int
	// Accepted is the sequential pipeline's accepted-paragraph count, a
	// complexity measure (filled by Profile).
	Accepted int
}

// Set is an ordered collection of questions.
type Set struct {
	Questions []Question
}

// FromCollection derives the question set from a corpus's planted facts.
func FromCollection(c *corpus.Collection) Set {
	var s Set
	for _, f := range c.Facts {
		s.Questions = append(s.Questions, Question{
			ID:       f.ID,
			Text:     f.Question,
			Expected: f.Answer,
			Type:     f.AnswerType,
			FactID:   f.ID,
		})
	}
	return s
}

// Profile fills each question's Accepted count by running the sequential
// pipeline once per question. The engine is read-only so this is safe to do
// outside any simulation.
func (s Set) Profile(e *qa.Engine) Set {
	out := Set{Questions: append([]Question(nil), s.Questions...)}
	for i := range out.Questions {
		res := e.AnswerSequential(out.Questions[i].Text)
		out.Questions[i].Accepted = res.Accepted
	}
	return out
}

// Complex returns the questions with at least minAccepted accepted
// paragraphs — the paper's Section 6.2 selection ("questions which have at
// least 20 paragraphs allocated to each AP module" on an N-node system is
// minAccepted = 20·N). Call Profile first.
func (s Set) Complex(minAccepted int) Set {
	var out Set
	for _, q := range s.Questions {
		if q.Accepted >= minAccepted {
			out.Questions = append(out.Questions, q)
		}
	}
	return out
}

// TopComplex returns the n most complex questions (by accepted paragraphs,
// ties by id). Call Profile first.
func (s Set) TopComplex(n int) Set {
	qs := append([]Question(nil), s.Questions...)
	for i := 1; i < len(qs); i++ {
		for j := i; j > 0; j-- {
			a, b := qs[j], qs[j-1]
			if a.Accepted > b.Accepted || (a.Accepted == b.Accepted && a.ID < b.ID) {
				qs[j], qs[j-1] = qs[j-1], qs[j]
			} else {
				break
			}
		}
	}
	if n > len(qs) {
		n = len(qs)
	}
	return Set{Questions: qs[:n]}
}

// Len returns the question count.
func (s Set) Len() int { return len(s.Questions) }

// Pick returns n questions cycling through the set in a seeded shuffle,
// reproducing "questions selected randomly from the TREC-8 and TREC-9
// question set … the same questions and the same startup sequence for all
// tests" (Section 6.1).
func (s Set) Pick(seed int64, n int) []Question {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(s.Questions))
	out := make([]Question, n)
	for i := 0; i < n; i++ {
		out[i] = s.Questions[idx[i%len(idx)]]
	}
	return out
}

// PaperArrivals returns n arrival times starting at start, with successive
// inter-arrival gaps uniform in [0, 2) seconds — the paper's high-load
// startup sequence.
func PaperArrivals(seed int64, n int, start float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	at := start
	for i := range out {
		out[i] = at
		at += rng.Float64() * 2
	}
	return out
}

// OneAtATime returns n arrival times spaced far enough apart (gap seconds)
// that each question completes before the next arrives — the Section 6.2
// low-load measurement protocol.
func OneAtATime(n int, start, gap float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*gap
	}
	return out
}
