package live

import (
	"strings"
	"testing"
	"time"
)

// queryMetrics fetches the node's cumulative metrics snapshot via the public
// status RPC — routing tests assert on counter deltas across asks.
func queryMetrics(t *testing.T, addr string) StatusMetrics {
	t.Helper()
	st, err := QueryStatus(addr, 2*time.Second)
	if err != nil {
		t.Fatalf("status %s: %v", addr, err)
	}
	return st.Metrics
}

// waitForSummaries blocks until node's shard-status table shows a summary for
// every shard (local or pulled via gossip).
func waitForSummaries(t *testing.T, node *Node) {
	t.Helper()
	waitFor(t, "summaries gossiped to "+node.Addr(), 5*time.Second, func() bool {
		st, err := QueryStatus(node.Addr(), 2*time.Second)
		if err != nil || st.Shard == nil {
			return false
		}
		for _, row := range st.Shard.Shards {
			if row.SummaryVersion == 0 {
				return false
			}
		}
		return true
	})
}

// waitForFreshSummaries blocks until every summary in node's shard-status
// table is usable at the current epoch (the first routed ask after start-up or
// an epoch bump revalidates the store).
func waitForFreshSummaries(t *testing.T, node *Node) {
	t.Helper()
	waitFor(t, "fresh summaries on "+node.Addr(), 5*time.Second, func() bool {
		st, err := QueryStatus(node.Addr(), 2*time.Second)
		if err != nil || st.Shard == nil {
			return false
		}
		for _, row := range st.Shard.Shards {
			if row.SummaryVersion == 0 || !row.SummaryFresh {
				return false
			}
		}
		return true
	})
}

// TestSelectiveRoutingLiveEquivalence: with summaries gossiped and fresh, the
// selectively-routed sharded cluster must return answers byte-identical to a
// twin cluster pinned to full scatter (skipping a provably-empty shard must
// not change a single answer), and a question whose keywords occur nowhere
// must short-circuit the scatter entirely (every shard provably empty).
func TestSelectiveRoutingLiveEquivalence(t *testing.T) {
	mut := func(routingOff bool) func(i int, cfg *NodeConfig) {
		return func(i int, cfg *NodeConfig) {
			cfg.Cache.Disabled = true // every ask exercises the routed scatter path
			cfg.Shard.Routing.Disabled = routingOff
		}
	}
	routed := startShardedCluster(t, 3, 4, 2, mut(false))
	scatter := startShardedCluster(t, 3, 4, 2, mut(true))
	for _, nd := range append(append([]*Node(nil), routed...), scatter...) {
		waitForPeers(t, nd, 2)
		waitForCompleteShardMap(t, nd)
	}
	waitForSummaries(t, routed[0])

	// The first routed ask may pay the one deterministic fallback scatter
	// (summaries pulled before the map composed carry an older epoch stamp);
	// its successful gather revalidates the store.
	if _, err := Ask(routed[0].Addr(), liveColl.Facts[0].Question, 10*time.Second); err != nil {
		t.Fatalf("warm-up ask: %v", err)
	}
	waitForFreshSummaries(t, routed[0])

	before := queryMetrics(t, routed[0].Addr())
	for _, f := range liveColl.Facts {
		got, err := Ask(routed[0].Addr(), f.Question, 10*time.Second)
		if err != nil {
			t.Fatalf("routed ask %q: %v", f.Question, err)
		}
		want, err := Ask(scatter[0].Addr(), f.Question, 10*time.Second)
		if err != nil {
			t.Fatalf("scatter ask %q: %v", f.Question, err)
		}
		if len(got.Answers) != len(want.Answers) {
			t.Fatalf("routed ask %q returned %d answers, full scatter %d",
				f.Question, len(got.Answers), len(want.Answers))
		}
		for i := range want.Answers {
			if got.Answers[i].Text != want.Answers[i].Text {
				t.Fatalf("routed answer %d for %q is %q, full scatter %q",
					i, f.Question, got.Answers[i].Text, want.Answers[i].Text)
			}
		}
		// The sharded path must still agree with the sequential pipeline on
		// the top answer (the established cross-check in this suite).
		seq := liveEngine.AnswerSequential(f.Question)
		if len(seq.Answers) > 0 && len(got.Answers) > 0 &&
			!strings.EqualFold(seq.Answers[0].Text, got.Answers[0].Text) {
			t.Fatalf("routed top answer %q differs from sequential %q",
				got.Answers[0].Text, seq.Answers[0].Text)
		}
	}
	after := queryMetrics(t, routed[0].Addr())
	if got := after.RoutePlansSelective - before.RoutePlansSelective; got < int64(len(liveColl.Facts)) {
		t.Fatalf("only %d of %d asks planned selectively (fresh summaries should cover all)",
			got, len(liveColl.Facts))
	}

	// Out-of-vocabulary question: the blooms prove every shard empty, so the
	// plan must skip all K shards and never leave the coordinator.
	oov := "Tell me about zzqvxjkwp?"
	resp, err := Ask(routed[0].Addr(), oov, 10*time.Second)
	if err != nil {
		t.Fatalf("oov ask: %v", err)
	}
	full, err := Ask(scatter[0].Addr(), oov, 10*time.Second)
	if err != nil {
		t.Fatalf("oov scatter ask: %v", err)
	}
	if len(resp.Answers) != len(full.Answers) {
		t.Fatalf("oov routed answers %d, full scatter %d", len(resp.Answers), len(full.Answers))
	}
	final := queryMetrics(t, routed[0].Addr())
	if final.RouteShortCircuits <= after.RouteShortCircuits {
		t.Fatal("oov ask did not short-circuit the scatter")
	}
	if got := final.RouteSkips - after.RouteSkips; got < 4 {
		t.Fatalf("oov ask skipped %d shards, want all 4", got)
	}
	if final.SummaryPullsSent == 0 {
		t.Fatal("no summary pulls recorded — gossip never ran")
	}
}

// TestSelectiveRoutingDisabledMatchesRouted: a cluster pinned to full scatter
// (RoutingConfig.Disabled) must never build, pull or consult summaries, and
// must still agree with the oracle — the kill switch really kills the plane.
func TestSelectiveRoutingDisabledMatchesRouted(t *testing.T) {
	nodes := startShardedCluster(t, 3, 2, 2, func(i int, cfg *NodeConfig) {
		cfg.Cache.Disabled = true
		cfg.Shard.Routing.Disabled = true
	})
	for _, nd := range nodes {
		waitForPeers(t, nd, 2)
		waitForCompleteShardMap(t, nd)
	}
	for _, f := range liveColl.Facts[:4] {
		resp, err := Ask(nodes[0].Addr(), f.Question, 10*time.Second)
		if err != nil {
			t.Fatalf("scatter ask: %v", err)
		}
		seq := liveEngine.AnswerSequential(f.Question)
		if len(seq.Answers) > 0 {
			if len(resp.Answers) == 0 {
				t.Fatalf("no answers for %q", f.Question)
			}
			if !strings.EqualFold(seq.Answers[0].Text, resp.Answers[0].Text) {
				t.Fatalf("scatter answer %q differs from oracle %q", resp.Answers[0].Text, seq.Answers[0].Text)
			}
		}
	}
	m := queryMetrics(t, nodes[0].Addr())
	if m.RouteSkips != 0 || m.RoutePlansSelective != 0 || m.SummaryPullsSent != 0 {
		t.Fatalf("disabled routing still routed: skips=%d selective=%d pulls=%d",
			m.RouteSkips, m.RoutePlansSelective, m.SummaryPullsSent)
	}
	st, err := QueryStatus(nodes[0].Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	for _, row := range st.Shard.Shards {
		if row.SummaryVersion != 0 {
			t.Fatalf("disabled routing advertised a summary for shard %d", row.Shard)
		}
	}
}

// TestSelectiveRoutingEpochBumpFallsBack: killing a replica bumps the
// shard-map epoch, which makes every gossiped summary stale at once. The next
// routed ask must detect the mismatch, fall back to a full scatter (counted as
// a stale fallback) while still answering correctly, and that scatter's gather
// revalidates the store so routing turns selective again.
func TestSelectiveRoutingEpochBumpFallsBack(t *testing.T) {
	nodes := startShardedCluster(t, 3, 2, 2, func(i int, cfg *NodeConfig) {
		cfg.Cache.Disabled = true
		cfg.Detector = DetectorConfig{SuspectAfter: 2, DeadAfter: 3}
	})
	for _, nd := range nodes {
		waitForPeers(t, nd, 2)
		waitForCompleteShardMap(t, nd)
	}
	waitForSummaries(t, nodes[0])
	if _, err := Ask(nodes[0].Addr(), liveColl.Facts[0].Question, 10*time.Second); err != nil {
		t.Fatalf("warm-up ask: %v", err)
	}
	waitForFreshSummaries(t, nodes[0])

	// Kill the only node whose shards node 0 does not hold locally is not
	// guaranteed at K=2/R=2/n=3, but any death recomposes the map: epoch bump.
	before := nodes[0].shardMap().Epoch
	preBump := queryMetrics(t, nodes[0].Addr())
	nodes[2].Close()
	waitFor(t, "epoch bump after replica death", 5*time.Second, func() bool {
		return nodes[0].shardMap().Epoch > before
	})

	f := liveColl.Facts[1]
	resp, err := Ask(nodes[0].Addr(), f.Question, 15*time.Second)
	if err != nil {
		t.Fatalf("ask after epoch bump: %v", err)
	}
	seq := liveEngine.AnswerSequential(f.Question)
	if len(seq.Answers) > 0 {
		if len(resp.Answers) == 0 {
			t.Fatalf("no answers after epoch bump for %q", f.Question)
		}
		if !strings.EqualFold(seq.Answers[0].Text, resp.Answers[0].Text) {
			t.Fatalf("post-bump answer %q differs from oracle %q", resp.Answers[0].Text, seq.Answers[0].Text)
		}
	}
	postBump := queryMetrics(t, nodes[0].Addr())
	if postBump.RouteFallbacksStale <= preBump.RouteFallbacksStale {
		t.Fatal("epoch bump did not produce a stale-summary fallback")
	}

	// Revalidation (plus re-pulls from the surviving replica when the dead
	// node was the summary's source) restores selective routing.
	waitForFreshSummaries(t, nodes[0])
	if _, err := Ask(nodes[0].Addr(), f.Question, 15*time.Second); err != nil {
		t.Fatalf("post-revalidation ask: %v", err)
	}
	final := queryMetrics(t, nodes[0].Addr())
	if final.RoutePlansSelective <= postBump.RoutePlansSelective {
		t.Fatal("routing did not turn selective again after revalidation")
	}
}
