package live

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// expositionLine matches one Prometheus text-format sample line:
// name{labels} value.
var expositionLine = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|\+Inf|NaN)$`)

// TestMetricsExposition asks one question and checks that the node's metrics
// endpoint serves well-formed Prometheus text covering the instrumented
// subsystems (the issue's acceptance bar: at least 10 distinct metrics).
func TestMetricsExposition(t *testing.T) {
	nodes := startCluster(t, 2)
	waitForPeers(t, nodes[0], 1)
	f := liveColl.Facts[1]
	if _, err := Ask(nodes[0].Addr(), f.Question, 10*time.Second); err != nil {
		t.Fatalf("ask: %v", err)
	}

	text, err := QueryMetrics(nodes[0].Addr(), 5*time.Second)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}

	families := make(map[string]bool)
	values := make(map[string]float64) // full series (name+labels) -> value
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				families[fields[2]] = true
			}
			continue
		}
		m := expositionLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed exposition line: %q", line)
		}
		v, err := strconv.ParseFloat(strings.Replace(m[3], "+Inf", "Inf", 1), 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		values[m[1]+m[2]] = v
	}

	if len(families) < 10 {
		t.Fatalf("only %d metric families exposed, want >= 10:\n%s", len(families), text)
	}
	for _, want := range []string{
		"live_questions_total", "live_forwards_total", "live_subtasks_total",
		"live_heartbeats_total", "live_request_failures_total",
		"live_questions_active", "live_admission_queue_depth",
		"live_peers", "live_uptime_seconds",
		"live_ask_seconds", "qa_stage_seconds",
	} {
		if !families[want] {
			t.Errorf("family %q missing from exposition", want)
		}
	}
	if v := values["live_questions_total"]; v < 1 {
		t.Errorf("live_questions_total = %v, want >= 1", v)
	}
	if v := values[`live_ask_seconds_count`]; v < 1 {
		t.Errorf("live_ask_seconds_count = %v, want >= 1", v)
	}
	if v := values[`qa_stage_seconds_count{stage="QP"}`]; v < 1 {
		t.Errorf(`qa_stage_seconds_count{stage="QP"} = %v, want >= 1`, v)
	}
	// Histogram bucket series must be cumulative and end at +Inf == count.
	if inf, cnt := values[`live_ask_seconds_bucket{le="+Inf"}`], values["live_ask_seconds_count"]; inf != cnt {
		t.Errorf("+Inf bucket %v != count %v", inf, cnt)
	}
}

// TestCrossNodeSpanTree is the issue's acceptance scenario: a question asked
// on a saturated node is forwarded to an idle peer, which partitions PR work
// to a third node — and the resulting span tree, returned with the answer,
// is a single tree under one question ID with spans from several nodes.
func TestCrossNodeSpanTree(t *testing.T) {
	mk := func() *Node {
		n, err := StartNode(NodeConfig{
			Addr: "127.0.0.1:0", Engine: liveEngine,
			HeartbeatEvery: 30 * time.Millisecond,
			RequestTimeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Close)
		return n
	}
	a, b, c := mk(), mk(), mk()
	for _, x := range []*Node{a, b, c} {
		for _, y := range []*Node{a, b, c} {
			if x != y {
				x.AddPeer(y.Addr())
			}
		}
	}

	// Saturate node a so the question dispatcher must migrate (its load is
	// >= 2 questions above the idle peers').
	a.mu.Lock()
	a.questions = 3
	a.mu.Unlock()

	// Wait until the saturation has been heartbeat to b and c, and a has
	// fresh reports of both idle peers.
	sawBusy := func(n *Node) bool {
		for _, p := range n.freshPeers() {
			if p.Addr == a.Addr() && p.Questions >= 3 {
				return true
			}
		}
		return false
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if sawBusy(b) && sawBusy(c) && len(a.freshPeers()) >= 2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !sawBusy(b) || !sawBusy(c) {
		t.Fatal("peers never observed the saturated node's load")
	}

	// Use the most complex fact so PR (and possibly AP) partitioning engages.
	best := liveColl.Facts[0]
	bestAcc := 0
	for _, f := range liveColl.Facts {
		if r := liveEngine.AnswerSequential(f.Question); r.Accepted > bestAcc {
			bestAcc, best = r.Accepted, f
		}
	}

	resp, err := Ask(a.Addr(), best.Question, 10*time.Second)
	if err != nil {
		t.Fatalf("ask: %v", err)
	}
	if !resp.Forwarded {
		t.Fatal("question was not forwarded off the saturated node")
	}
	if len(resp.Spans) == 0 {
		t.Fatal("no spans returned")
	}

	// One question ID across every span.
	qid := resp.Spans[0].QID
	ids := make(map[int64]bool, len(resp.Spans))
	nodesSeen := make(map[string]bool)
	names := make(map[string]int)
	for _, s := range resp.Spans {
		if s.QID != qid {
			t.Fatalf("span %s carries QID %d, want %d", s.Name, s.QID, qid)
		}
		ids[s.ID] = true
		nodesSeen[s.Node] = true
		names[s.Name]++
	}
	if len(nodesSeen) < 3 {
		t.Errorf("spans cover %d nodes, want 3 (forward origin, server, PR worker): %v", len(nodesSeen), nodesSeen)
	}
	// Single tree: exactly one root, every other parent resolvable.
	roots := 0
	for _, s := range resp.Spans {
		if s.Parent == 0 {
			roots++
			if s.Name != "ask" || s.Node != a.Addr() {
				t.Errorf("root span is %q on %s, want \"ask\" on %s", s.Name, s.Node, a.Addr())
			}
		} else if !ids[s.Parent] {
			t.Errorf("span %q (node %s) has dangling parent %d", s.Name, s.Node, s.Parent)
		}
	}
	if roots != 1 {
		t.Errorf("%d root spans, want exactly 1", roots)
	}
	for _, want := range []string{"ask", "forward", "stage:QP", "partition:PR", "pr-subtask", "stage:PO", "partition:AP", "stage:MERGE"} {
		if names[want] == 0 {
			t.Errorf("span %q missing from tree (have %v)", want, names)
		}
	}
	// The remote pr-subtask must have run on the third node, not on the
	// node that served the ask.
	var servedBy string
	for _, s := range resp.Spans {
		if s.Name == "ask" && s.Parent != 0 {
			servedBy = s.Node
		}
	}
	if servedBy != resp.ServedBy {
		t.Errorf("forwarded ask span on %s, response says served by %s", servedBy, resp.ServedBy)
	}
	for _, s := range resp.Spans {
		if s.Name == "pr-subtask" && (s.Node == servedBy || s.Node == a.Addr()) {
			t.Errorf("pr-subtask ran on %s, expected the idle third node", s.Node)
		}
	}
}

// TestStatusMetricsGobRoundTrip checks that the extended Status payload
// (including the metrics snapshot) survives the wire encoding unchanged.
func TestStatusMetricsGobRoundTrip(t *testing.T) {
	in := Status{
		Addr:       "10.0.0.1:7101",
		Collection: "tiny",
		Paragraphs: 1234,
		Questions:  2,
		Queued:     1,
		Uptime:     90 * time.Second,
		Metrics: StatusMetrics{
			UptimeSeconds:      90.5,
			QuestionsServed:    17,
			ForwardsOut:        3,
			ForwardsIn:         2,
			PRSubtasksSent:     8,
			PRSubtasksReceived: 6,
			APSubtasksSent:     9,
			APSubtasksReceived: 7,
			HeartbeatsSent:     100,
			HeartbeatsReceived: 99,
			RequestFailures:    1,
		},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(Response{Status: &in}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out Response
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Status == nil {
		t.Fatal("status lost in round trip")
	}
	if !reflect.DeepEqual(in, *out.Status) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, *out.Status)
	}
}

// TestLiveStatusCarriesMetrics exercises the server side: after one ask the
// status response must report it in the metrics snapshot.
func TestLiveStatusCarriesMetrics(t *testing.T) {
	nodes := startCluster(t, 2)
	waitForPeers(t, nodes[0], 1)
	f := liveColl.Facts[2]
	if _, err := Ask(nodes[0].Addr(), f.Question, 10*time.Second); err != nil {
		t.Fatalf("ask: %v", err)
	}
	st, err := QueryStatus(nodes[0].Addr(), 5*time.Second)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Metrics.QuestionsServed < 1 {
		t.Errorf("QuestionsServed = %d, want >= 1", st.Metrics.QuestionsServed)
	}
	if st.Metrics.HeartbeatsSent < 1 || st.Metrics.HeartbeatsReceived < 1 {
		t.Errorf("heartbeat counters not moving: %+v", st.Metrics)
	}
	if st.Metrics.UptimeSeconds < 0 {
		t.Errorf("negative uptime %f", st.Metrics.UptimeSeconds)
	}
}
