package live

import (
	"strings"
	"sync"
	"testing"
	"time"

	"distqa/internal/corpus"
	"distqa/internal/index"
	"distqa/internal/qa"
)

var (
	liveColl   = corpus.Generate(corpus.Tiny())
	liveEngine = qa.NewEngine(liveColl, index.BuildAll(liveColl))
)

// startCluster spins up n nodes on loopback sharing one engine replica and
// wires them as peers.
func startCluster(t *testing.T, n int) []*Node {
	t.Helper()
	var nodes []*Node
	for i := 0; i < n; i++ {
		node, err := StartNode(NodeConfig{
			Addr:           "127.0.0.1:0",
			Engine:         liveEngine,
			HeartbeatEvery: 50 * time.Millisecond,
			RequestTimeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		nodes = append(nodes, node)
		t.Cleanup(node.Close)
	}
	// Full mesh.
	for i, a := range nodes {
		for j, b := range nodes {
			if i != j {
				a.AddPeer(b.Addr())
			}
		}
	}
	return nodes
}

func waitForPeers(t *testing.T, node *Node, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(node.freshPeers()) >= want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("node %s saw %d peers, want %d", node.Addr(), len(node.freshPeers()), want)
}

func TestSingleNodeAnswersQuestion(t *testing.T) {
	nodes := startCluster(t, 1)
	f := liveColl.Facts[1]
	resp, err := Ask(nodes[0].Addr(), f.Question, 10*time.Second)
	if err != nil {
		t.Fatalf("ask: %v", err)
	}
	if len(resp.Answers) == 0 {
		t.Fatal("no answers")
	}
	// The live node must agree with the sequential pipeline.
	seq := liveEngine.AnswerSequential(f.Question)
	if !strings.EqualFold(seq.Answers[0].Text, resp.Answers[0].Text) {
		t.Fatalf("live answer %q differs from sequential %q", resp.Answers[0].Text, seq.Answers[0].Text)
	}
	if resp.ServedBy != nodes[0].Addr() {
		t.Fatalf("served by %s, want %s", resp.ServedBy, nodes[0].Addr())
	}
}

func TestClusterPartitionsAP(t *testing.T) {
	nodes := startCluster(t, 3)
	waitForPeers(t, nodes[0], 2)
	// Use the most complex fact so distribution engages.
	best := liveColl.Facts[0]
	bestAcc := 0
	for _, f := range liveColl.Facts {
		if r := liveEngine.AnswerSequential(f.Question); r.Accepted > bestAcc {
			bestAcc, best = r.Accepted, f
		}
	}
	resp, err := Ask(nodes[0].Addr(), best.Question, 10*time.Second)
	if err != nil {
		t.Fatalf("ask: %v", err)
	}
	if resp.APPeers < 2 {
		t.Fatalf("AP used %d workers, want ≥ 2 on an idle 3-node cluster", resp.APPeers)
	}
	seq := liveEngine.AnswerSequential(best.Question)
	if len(seq.Answers) > 0 && !strings.EqualFold(seq.Answers[0].Text, resp.Answers[0].Text) {
		t.Fatalf("partitioned answer %q differs from sequential %q", resp.Answers[0].Text, seq.Answers[0].Text)
	}
}

func TestStatusAndHeartbeats(t *testing.T) {
	nodes := startCluster(t, 2)
	waitForPeers(t, nodes[0], 1)
	st, err := QueryStatus(nodes[0].Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Paragraphs != len(liveColl.Paragraphs()) {
		t.Fatalf("paragraphs = %d, want %d", st.Paragraphs, len(liveColl.Paragraphs()))
	}
	if len(st.Peers) < 1 {
		t.Fatal("no peers in status")
	}
	if st.Uptime <= 0 {
		t.Fatal("bad uptime")
	}
}

func TestPRSubtaskRPC(t *testing.T) {
	nodes := startCluster(t, 1)
	f := liveColl.Facts[2]
	analysis, _ := liveEngine.QuestionProcessing(f.Question)
	resp, err := roundTrip(nodes[0].Addr(), &Request{
		Kind:     kindPRSubtask,
		Keywords: analysis.Keywords,
		Subs:     []int{0, 1},
	}, 5*time.Second)
	if err != nil {
		t.Fatalf("pr subtask: %v", err)
	}
	// Cross-check against a local run of the same sub-collections.
	want := 0
	for _, sub := range []int{0, 1} {
		rs, _ := liveEngine.RetrieveSub(analysis, sub)
		want += len(rs)
	}
	if len(resp.ParaRefs) != want {
		t.Fatalf("got %d paragraph refs, want %d", len(resp.ParaRefs), want)
	}
}

func TestAPSubtaskRejectsBadRefs(t *testing.T) {
	nodes := startCluster(t, 1)
	_, err := roundTrip(nodes[0].Addr(), &Request{
		Kind:     kindAPSubtask,
		Keywords: []string{"x"},
		ParaRefs: []ParaRef{{ID: 1 << 30}},
	}, 5*time.Second)
	if err == nil {
		t.Fatal("out-of-range paragraph ref should error")
	}
}

func TestFailedPeerRecovery(t *testing.T) {
	nodes := startCluster(t, 3)
	waitForPeers(t, nodes[0], 2)
	// Kill one peer; questions must still be answered (remote AP sub-tasks
	// fail over to local processing).
	nodes[2].Close()
	f := liveColl.Facts[3]
	resp, err := Ask(nodes[0].Addr(), f.Question, 10*time.Second)
	if err != nil {
		t.Fatalf("ask after peer failure: %v", err)
	}
	if len(resp.Answers) == 0 {
		t.Fatal("no answers after peer failure")
	}
	seq := liveEngine.AnswerSequential(f.Question)
	if len(seq.Answers) > 0 && !strings.EqualFold(seq.Answers[0].Text, resp.Answers[0].Text) {
		t.Fatalf("answer changed after failure: %q vs %q", resp.Answers[0].Text, seq.Answers[0].Text)
	}
}

func TestConcurrentQuestions(t *testing.T) {
	nodes := startCluster(t, 2)
	waitForPeers(t, nodes[0], 1)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := liveColl.Facts[i%len(liveColl.Facts)]
			resp, err := Ask(nodes[i%2].Addr(), f.Question, 20*time.Second)
			if err == nil && len(resp.Answers) == 0 {
				err = errEmpty
			}
			errs[i] = err
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("question %d: %v", i, err)
		}
	}
}

var errEmpty = errStr("no answers")

type errStr string

func (e errStr) Error() string { return string(e) }

func TestQuestionForwarding(t *testing.T) {
	// Saturate one node (admission limit 1) with simultaneous questions:
	// the question dispatcher must forward some of them to the idle peer.
	engine := liveEngine
	a, err := StartNode(NodeConfig{
		Addr: "127.0.0.1:0", Engine: engine,
		MaxConcurrent: 1, HeartbeatEvery: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	bNode, err := StartNode(NodeConfig{
		Addr: "127.0.0.1:0", Engine: engine,
		MaxConcurrent: 1, HeartbeatEvery: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bNode.Close)
	a.AddPeer(bNode.Addr())
	bNode.AddPeer(a.Addr())
	waitForPeers(t, a, 1)

	var wg sync.WaitGroup
	forwarded := make([]bool, 10)
	for i := 0; i < 10; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := liveColl.Facts[i%len(liveColl.Facts)]
			resp, err := Ask(a.Addr(), f.Question, 30*time.Second)
			if err == nil {
				forwarded[i] = resp.Forwarded
			}
		}()
	}
	wg.Wait()
	any := false
	for _, f := range forwarded {
		any = any || f
	}
	if !any {
		t.Error("no question was forwarded off the saturated node")
	}
}

func TestUnknownRequestKind(t *testing.T) {
	nodes := startCluster(t, 1)
	_, err := roundTrip(nodes[0].Addr(), &Request{Kind: "bogus"}, 2*time.Second)
	if err == nil {
		t.Fatal("unknown kind should error")
	}
}
