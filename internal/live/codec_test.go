package live

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
	"time"

	"distqa/internal/obs"
	"distqa/internal/qa"
	"distqa/internal/shard"
	"distqa/internal/wire"
)

// ---------------------------------------------------------------------------
// Round-trip helpers: encode/decode through each codec, plus semantic
// equality that treats time.Time by instant (gob and the wire codec both
// drop monotonic readings; zone representation differs between them).

func wireRoundTripRequest(t *testing.T, req *Request) *Request {
	t.Helper()
	b := wire.GetBuffer()
	defer wire.PutBuffer(b)
	if err := appendRequestWire(b, req); err != nil {
		t.Fatalf("appendRequestWire: %v", err)
	}
	r := wire.NewReader(b.B)
	var out Request
	if err := decodeRequestWireInto(&r, &out); err != nil {
		t.Fatalf("decodeRequestWireInto: %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over after request decode", r.Remaining())
	}
	return &out
}

func wireRoundTripResponse(t *testing.T, resp *Response) *Response {
	t.Helper()
	b := wire.GetBuffer()
	defer wire.PutBuffer(b)
	if err := appendResponseWire(b, resp); err != nil {
		t.Fatalf("appendResponseWire: %v", err)
	}
	r := wire.NewReader(b.B)
	out, err := decodeResponseWire(&r)
	if err != nil {
		t.Fatalf("decodeResponseWire: %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over after response decode", r.Remaining())
	}
	return out
}

func gobRoundTripRequest(t *testing.T, req *Request) *Request {
	t.Helper()
	out, err := decodeRequestFrame(encodeFrame(t, req))
	if err != nil {
		t.Fatalf("gob round trip: %v", err)
	}
	return out
}

func gobRoundTripResponse(t *testing.T, resp *Response) *Response {
	t.Helper()
	out, err := decodeResponseFrame(encodeFrame(t, resp))
	if err != nil {
		t.Fatalf("gob round trip: %v", err)
	}
	return out
}

// intsEqual compares int slices treating nil and empty as equal (the wire
// codec decodes an empty list into a reused zero-length scratch slice).
func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func loadReportsEqual(a, b *LoadReport) bool {
	return a.Addr == b.Addr && a.Questions == b.Questions &&
		a.Queued == b.Queued && a.APTasks == b.APTasks &&
		intsEqual(a.Shards, b.Shards) &&
		int64sEqual(a.SumVers, b.SumVers) && a.Sent.Equal(b.Sent)
}

func requestsEqual(a, b *Request) bool {
	return a.Kind == b.Kind && a.Span == b.Span &&
		a.Question == b.Question && a.Forwarded == b.Forwarded &&
		a.WantSpans == b.WantSpans && a.TimeoutMS == b.TimeoutMS &&
		reflect.DeepEqual(a.Keywords, b.Keywords) &&
		intsEqual(a.Subs, b.Subs) &&
		a.Shard == b.Shard && a.Epoch == b.Epoch &&
		reflect.DeepEqual(a.ParaRefs, b.ParaRefs) &&
		a.AnswerType == b.AnswerType &&
		a.Fleet == b.Fleet && a.Limit == b.Limit &&
		loadReportsEqual(&a.Load, &b.Load)
}

func shardDFsEqual(a, b []ShardDF) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Sub != b[i].Sub || len(a[i].DF) != len(b[i].DF) {
			return false
		}
		for j := range a[i].DF {
			if a[i].DF[j] != b[i].DF[j] {
				return false
			}
		}
	}
	return true
}

func summariesEqual(a, b []shard.Summary) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := &a[i], &b[i]
		if x.Shard != y.Shard || x.Version != y.Version ||
			x.Terms != y.Terms || x.Docs != y.Docs || x.Hashes != y.Hashes ||
			!reflect.DeepEqual(x.Bits, y.Bits) ||
			!reflect.DeepEqual(x.TopDF, y.TopDF) {
			return false
		}
	}
	return true
}

func spansEqual(a, b []obs.Span) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := &a[i], &b[i]
		if x.QID != y.QID || x.ID != y.ID || x.Parent != y.Parent ||
			x.Name != y.Name || x.Stage != y.Stage || x.Node != y.Node ||
			!x.Start.Equal(y.Start) || !x.End.Equal(y.End) {
			return false
		}
	}
	return true
}

// statusesEqual compares the deep Status payload by gob re-encoding — gob is
// deterministic for equal values on fresh streams, and Status travels
// gob-embedded in both codecs anyway.
func statusesEqual(t *testing.T, a, b *Status) bool {
	t.Helper()
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	var ab, bb bytes.Buffer
	if err := gob.NewEncoder(&ab).Encode(a); err != nil {
		t.Fatalf("encode status: %v", err)
	}
	if err := gob.NewEncoder(&bb).Encode(b); err != nil {
		t.Fatalf("encode status: %v", err)
	}
	return bytes.Equal(ab.Bytes(), bb.Bytes())
}

func snapshotsEqual(a, b []obs.RegistrySnapshot) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := &a[i], &b[i]
		if x.Node != y.Node || !x.TakenAt.Equal(y.TakenAt) ||
			len(x.Metrics) != len(y.Metrics) {
			return false
		}
		for j := range x.Metrics {
			if !reflect.DeepEqual(x.Metrics[j], y.Metrics[j]) {
				return false
			}
		}
	}
	return true
}

// slowEqual compares flight-recorder dumps by gob re-encoding, like
// statusesEqual — QuestionRecord travels gob-embedded in both codecs.
func slowEqual(t *testing.T, a, b []obs.QuestionRecord) bool {
	t.Helper()
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true
	}
	var ab, bb bytes.Buffer
	if err := gob.NewEncoder(&ab).Encode(a); err != nil {
		t.Fatalf("encode slow: %v", err)
	}
	if err := gob.NewEncoder(&bb).Encode(b); err != nil {
		t.Fatalf("encode slow: %v", err)
	}
	return bytes.Equal(ab.Bytes(), bb.Bytes())
}

func responsesEqual(t *testing.T, a, b *Response) bool {
	t.Helper()
	return a.Err == b.Err && a.ServedBy == b.ServedBy &&
		a.Forwarded == b.Forwarded && a.CacheHit == b.CacheHit &&
		a.Coalesced == b.Coalesced && a.APPeers == b.APPeers &&
		a.ElapsedMS == b.ElapsedMS && a.MetricsText == b.MetricsText &&
		a.Epoch == b.Epoch &&
		reflect.DeepEqual(a.Answers, b.Answers) &&
		reflect.DeepEqual(a.ParaRefs, b.ParaRefs) &&
		shardDFsEqual(a.DFs, b.DFs) &&
		summariesEqual(a.Summaries, b.Summaries) &&
		reflect.DeepEqual(a.Estimate, b.Estimate) &&
		spansEqual(a.Spans, b.Spans) &&
		snapshotsEqual(a.Snapshots, b.Snapshots) &&
		slowEqual(t, a.Slow, b.Slow) &&
		statusesEqual(t, a.Status, b.Status)
}

// codecTestRequests covers every request shape the protocol produces: each
// hand-rolled kind with empty and populated fields, plus an unknown kind
// that must travel gob-embedded.
func codecTestRequests() map[string]*Request {
	return map[string]*Request{
		"ask": {Kind: kindAsk, Question: "what is the capital of France?",
			Span: obs.SpanContext{QID: 42, Span: 7}},
		"ask-forwarded": {Kind: kindAsk, Question: "who?", Forwarded: true},
		"ask-traced":    {Kind: kindAsk, Question: "why?", WantSpans: true},
		"ask-deadline":  {Kind: kindAsk, Question: "when?", TimeoutMS: 1500},
		"ask-empty":     {Kind: kindAsk},
		"pr": {Kind: kindPRSubtask, Span: obs.SpanContext{QID: 1, Span: 2},
			Keywords: []string{"capital", "france"}, Subs: []int{0, 2, 5}},
		"pr-empty": {Kind: kindPRSubtask},
		"ap": {Kind: kindAPSubtask, Keywords: []string{"capital"}, AnswerType: 3,
			ParaRefs: []ParaRef{{ID: 7, Matched: 2, Score: 3.5}, {ID: 0, Matched: 0, Score: -1.25}}},
		"heartbeat": {Kind: kindHeartbeat, Load: LoadReport{
			Addr: "127.0.0.1:9001", Questions: 1, Queued: 2, APTasks: 3,
			Sent: time.Unix(1_700_000_000, 123456789)}},
		"heartbeat-zero-time": {Kind: kindHeartbeat, Load: LoadReport{Addr: "x"}},
		"heartbeat-shards": {Kind: kindHeartbeat, Load: LoadReport{
			Addr: "127.0.0.1:9003", Questions: 2, Shards: []int{0, 2},
			Sent: time.Unix(1_700_000_010, 42)}},
		"heartbeat-sumvers": {Kind: kindHeartbeat, Load: LoadReport{
			Addr: "127.0.0.1:9004", Questions: 1, Shards: []int{1, 3},
			SumVers: []int64{0x1234abcd, 0}, Sent: time.Unix(1_700_000_020, 7)}},
		"status":  {Kind: kindStatus},
		"metrics": {Kind: kindMetrics},
		"shardpr": {Kind: kindShardPR, Span: obs.SpanContext{QID: 5, Span: 9},
			Shard: 1, Epoch: 4, Keywords: []string{"capital", "france"}, Subs: []int{1, 3}},
		"shardpr-empty":      {Kind: kindShardPR},
		"sharddf":            {Kind: kindShardDF, Keywords: []string{"capital"}, Subs: []int{0, 1, 2}},
		"sharddf-empty":      {Kind: kindShardDF},
		"metricspull":        {Kind: kindMetricsPull, Fleet: true},
		"metricspull-single": {Kind: kindMetricsPull},
		"shardsummary":       {Kind: kindShardSummary, Subs: []int{0, 2, 3}},
		"shardsummary-empty": {Kind: kindShardSummary},
		// kindEstimate has no hand-rolled shape: a cold operator query that
		// travels gob-embedded like any future kind.
		"estimate": {Kind: kindEstimate, Question: "what is the capital of France?"},
		// kindSlow likewise rides the gob embed — flight-recorder dumps are
		// rare operator queries, not hot-path traffic.
		"slow":        {Kind: kindSlow, Limit: 5},
		"future-kind": {Kind: "futureOp", Question: "payload the binary codec has no shape for"},
	}
}

// codecTestResponses covers every response shape, including the
// gob-embedded Status payload and the PR-4 cache flags.
func codecTestResponses() map[string]*Response {
	return map[string]*Response{
		"answers": {Answers: []qa.Answer{
			{Text: "Paris", Type: 2, Score: 2.5, ParaID: 7, WindowStart: 1,
				WindowEnd: 9, CandStart: 3, CandEnd: 4, Snippet: "Paris is ..."},
			{Text: "Lyon", Score: -0.5},
		}, ServedBy: "127.0.0.1:9001", APPeers: 2, ElapsedMS: 1.25, Forwarded: true},
		"cache-hit":  {Answers: []qa.Answer{{Text: "Paris"}}, CacheHit: true, ServedBy: "a"},
		"coalesced":  {Answers: []qa.Answer{{Text: "Paris"}}, Coalesced: true},
		"error":      {Err: "remote failure"},
		"empty":      {},
		"pr-subtask": {ParaRefs: []ParaRef{{ID: 1, Matched: 1, Score: 0.5}, {ID: 9, Matched: 3, Score: 2}}},
		"shard-pr":   {ParaRefs: []ParaRef{{ID: 4, Matched: 2, Score: 1.5}}, Epoch: 3, ServedBy: "127.0.0.1:9002"},
		"shard-dfs": {DFs: []ShardDF{
			{Sub: 0, DF: []int64{3, 0, 7}},
			{Sub: 3, DF: []int64{1}},
			{Sub: 5, DF: nil},
		}, Epoch: 2},
		"summaries": {Epoch: 5, ServedBy: "127.0.0.1:9001", Summaries: []shard.Summary{
			{Shard: 0, Version: 0x7fedcba987654321, Terms: 3, Docs: 12, Hashes: 6,
				Bits:  []uint64{0x8000000000000001, 0, 42},
				TopDF: []shard.TermDF{{Term: "capit", DF: 7}, {Term: "franc", DF: 3}}},
			{Shard: 2, Version: 1},
		}},
		"estimate": {Estimate: &qa.CostEstimate{
			Documents: 12.5, Paragraphs: 3.25, CPUSeconds: 0.75, DiskBytes: 4096}},
		"metrics": {MetricsText: "# TYPE live_questions_total counter\nlive_questions_total 4\n"},
		"spans": {Spans: []obs.Span{
			{QID: 9, ID: 1, Parent: 0, Name: "ask", Node: "127.0.0.1:9001",
				Start: time.Unix(1_700_000_000, 0), End: time.Unix(1_700_000_001, 500)},
			{QID: 9, ID: 2, Parent: 1, Name: "stage:QP", Stage: obs.StageQP},
		}},
		"status": {Status: &Status{
			Addr: "127.0.0.1:9001", Collection: "tiny", Paragraphs: 64,
			Peers:  []LoadReport{{Addr: "127.0.0.1:9002", Questions: 1, Sent: time.Unix(1_700_000_000, 0)}},
			Uptime: 3 * time.Second,
			Metrics: StatusMetrics{QuestionsServed: 4, MuxCalls: 17,
				AnswerCacheHits: 3, PRCacheMisses: 2},
			Mux: []MuxPeerStatus{{Addr: "127.0.0.1:9002", InFlight: 2, Calls: 40}},
		}},
		"snapshots": {ServedBy: "127.0.0.1:9001", Snapshots: []obs.RegistrySnapshot{
			{Node: "127.0.0.1:9001", TakenAt: time.Unix(1_700_000_000, 42),
				Metrics: []obs.SnapshotMetric{
					{Name: "live_questions_total", Kind: obs.MetricCounter, Value: 9},
					{Name: "live_peers", Kind: obs.MetricGauge, Value: 2,
						Labels: []obs.LabelPair{{Key: "zone", Value: "a"}}},
					{Name: "live_ask_seconds", Kind: obs.MetricHistogram,
						Hist: &obs.HistSnapshot{Bounds: []float64{0.1, 1},
							Counts: []int64{3, 1, 0}, Count: 4, Sum: 0.95}},
				}},
			{Node: "127.0.0.1:9002", TakenAt: time.Unix(1_700_000_001, 0)},
		}},
		"snapshots-empty-metric-list": {Snapshots: []obs.RegistrySnapshot{
			{Node: "n", TakenAt: time.Unix(1_700_000_002, 0)},
		}},
		"slow": {ServedBy: "127.0.0.1:9001", Slow: []obs.QuestionRecord{
			{QID: 9, Question: "what is the capital of France?", Node: "127.0.0.1:9001",
				Start: time.Unix(1_700_000_000, 0), Duration: 1500 * time.Millisecond,
				Spans: []obs.Span{{QID: 9, ID: 1, Name: "ask", Node: "127.0.0.1:9001",
					Start: time.Unix(1_700_000_000, 0), End: time.Unix(1_700_000_001, 500_000_000)}},
				Annotations: []string{"forwarded", "shards=2"}},
		}},
	}
}

// TestWireCodecRequestRoundTrip is the round-trip property test for every
// request shape: the binary codec and the gob codec must both reproduce the
// original message exactly.
func TestWireCodecRequestRoundTrip(t *testing.T) {
	for name, req := range codecTestRequests() {
		t.Run(name, func(t *testing.T) {
			if got := wireRoundTripRequest(t, req); !requestsEqual(req, got) {
				t.Errorf("wire codec mangled request:\n in: %+v\nout: %+v", req, got)
			}
			if got := gobRoundTripRequest(t, req); !requestsEqual(req, got) {
				t.Errorf("gob codec mangled request:\n in: %+v\nout: %+v", req, got)
			}
		})
	}
}

// TestWireCodecResponseRoundTrip is the response-side property test.
func TestWireCodecResponseRoundTrip(t *testing.T) {
	for name, resp := range codecTestResponses() {
		t.Run(name, func(t *testing.T) {
			if got := wireRoundTripResponse(t, resp); !responsesEqual(t, resp, got) {
				t.Errorf("wire codec mangled response:\n in: %+v\nout: %+v", resp, got)
			}
			if got := gobRoundTripResponse(t, resp); !responsesEqual(t, resp, got) {
				t.Errorf("gob codec mangled response:\n in: %+v\nout: %+v", resp, got)
			}
		})
	}
}

// TestWireCodecEncodingStable checks decode∘encode is the identity on the
// byte level too: re-encoding a decoded message reproduces the original
// encoding (the codec has one canonical form per message).
func TestWireCodecEncodingStable(t *testing.T) {
	for name, req := range codecTestRequests() {
		b1 := wire.GetBuffer()
		if err := appendRequestWire(b1, req); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := wireRoundTripRequest(t, req)
		b2 := wire.GetBuffer()
		if err := appendRequestWire(b2, out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Gob-embedded shapes are exempt: gob streams include type
		// descriptors whose encoding may legally differ between encoders.
		if _, handRolled := codecOfKind(req.Kind); handRolled && !bytes.Equal(b1.B, b2.B) {
			t.Errorf("%s: re-encode differs\n1: % x\n2: % x", name, b1.B, b2.B)
		}
		wire.PutBuffer(b1)
		wire.PutBuffer(b2)
	}
}

// TestWireCodecRejectsUnknownShape checks both decoders fail cleanly on
// shape codes neither side of the protocol mints.
func TestWireCodecRejectsUnknownShape(t *testing.T) {
	r := wire.NewReader([]byte{0x33})
	var req Request
	if err := decodeRequestWireInto(&r, &req); err == nil {
		t.Error("unknown request shape decoded")
	}
	r = wire.NewReader([]byte{0x33})
	if _, err := decodeResponseWire(&r); err == nil {
		t.Error("unknown response shape decoded")
	}
}

// TestWireCodecFrameGuard checks the binary codec enforces the same 16 MB
// frame budget as the gob paths: an encode that outgrows the budget fails
// EndFrame, and a header announcing an oversized payload fails the read.
func TestWireCodecFrameGuard(t *testing.T) {
	req := &Request{Kind: kindAsk, Question: string(make([]byte, MaxFrameBytes+1024))}
	b := wire.GetBuffer()
	b.BeginFrame()
	b.Uint64(1)
	if err := appendRequestWire(b, req); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := b.EndFrame(); err == nil {
		t.Fatal("oversized frame encoded without error")
	}
	// Buffers that ballooned past the pool cap are dropped by PutBuffer.
	wire.PutBuffer(b)
	if wire.MaxFrameBytes != MaxFrameBytes {
		t.Fatalf("codec budgets diverged: wire %d vs gob %d", wire.MaxFrameBytes, MaxFrameBytes)
	}
}

// ---------------------------------------------------------------------------
// Fuzz targets for the binary codec — the PR-4 twins of FuzzDecodeRequest/
// FuzzDecodeResponse. Seeds reuse the gob corpus messages two ways: as
// hand-rolled binary encodings and as gob blobs embedded in codecGob frames,
// so the fuzzer starts from both decode paths.

func wireEncodeRequestSeed(f *testing.F, req *Request) []byte {
	f.Helper()
	b := wire.GetBuffer()
	defer wire.PutBuffer(b)
	if err := appendRequestWire(b, req); err != nil {
		f.Fatalf("seed encode: %v", err)
	}
	return append([]byte(nil), b.B...)
}

// FuzzDecodeWireRequest fuzzes the mux server's request decode. Property:
// arbitrary bytes produce a Request or an error — never a panic, never an
// oversized allocation (lengths are validated against the remaining
// payload before any make()).
func FuzzDecodeWireRequest(f *testing.F) {
	for _, req := range codecTestRequests() {
		f.Add(wireEncodeRequestSeed(f, req))
		// The same message as a gob-embedded frame (codecGobReq).
		b := wire.GetBuffer()
		if err := appendGob(b, codecGobReq, req); err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), b.B...))
		wire.PutBuffer(b)
	}
	f.Add([]byte{})
	f.Add([]byte{codecReqHeartbeat})
	f.Add([]byte{codecGobReq, 0xff, 0xff})
	f.Add([]byte("not a wire frame"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := wire.NewReader(data)
		var req Request
		if err := decodeRequestWireInto(&r, &req); err != nil {
			return
		}
		if req.Kind == "" {
			t.Fatal("decode succeeded with empty kind")
		}
	})
}

// FuzzDecodeWireResponse fuzzes the mux client's demux decode path.
func FuzzDecodeWireResponse(f *testing.F) {
	for _, resp := range codecTestResponses() {
		b := wire.GetBuffer()
		if err := appendResponseWire(b, resp); err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), b.B...))
		wire.PutBuffer(b)
	}
	f.Add([]byte{})
	f.Add([]byte{codecResp})
	f.Add([]byte{codecGobResp, 0x01, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := wire.NewReader(data)
		resp, err := decodeResponseWire(&r)
		if err == nil && resp == nil {
			t.Fatal("decodeResponseWire returned nil response and nil error")
		}
	})
}
