package live

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"distqa/internal/qcache"
)

// TestAskAnswerCacheHit asks the same question twice: the second response
// must come from the answer cache (CacheHit set, identical answers, no new
// pipeline execution) and must be normalization-insensitive.
func TestAskAnswerCacheHit(t *testing.T) {
	nodes := startCluster(t, 1)
	f := liveColl.Facts[1]

	cold, err := Ask(nodes[0].Addr(), f.Question, 10*time.Second)
	if err != nil {
		t.Fatalf("cold ask: %v", err)
	}
	if cold.CacheHit || cold.Coalesced {
		t.Fatalf("cold ask flagged cached: %+v", cold)
	}

	warm, err := Ask(nodes[0].Addr(), f.Question, 10*time.Second)
	if err != nil {
		t.Fatalf("warm ask: %v", err)
	}
	if !warm.CacheHit {
		t.Fatal("second identical ask was not a cache hit")
	}
	if !reflect.DeepEqual(cold.Answers, warm.Answers) {
		t.Fatalf("cached answers differ:\ncold %+v\nwarm %+v", cold.Answers, warm.Answers)
	}
	if warm.APPeers != cold.APPeers {
		t.Fatalf("cached APPeers = %d, want %d", warm.APPeers, cold.APPeers)
	}

	// Case/whitespace variants share the normalized key.
	variant := "  " + strings.ToUpper(f.Question) + "  "
	v, err := Ask(nodes[0].Addr(), variant, 10*time.Second)
	if err != nil {
		t.Fatalf("variant ask: %v", err)
	}
	if !v.CacheHit {
		t.Fatal("normalized variant missed the cache")
	}

	ans, _ := nodes[0].CacheStats()
	if ans.Hits < 2 {
		t.Fatalf("answer cache hits = %d, want ≥ 2", ans.Hits)
	}
	st := nodes[0].statusMetrics()
	if st.AnswerCacheHits < 2 || st.AnswerCacheMisses < 1 {
		t.Fatalf("status metrics missing cache counters: %+v", st)
	}

	// The cached span tree marks itself: a hit must carry a cache:hit span
	// under the ask root, and no pipeline stage spans.
	var sawHit, sawStage bool
	for _, sp := range warm.Spans {
		if sp.Name == "cache:hit" {
			sawHit = true
		}
		if strings.HasPrefix(sp.Name, "stage:") {
			sawStage = true
		}
	}
	if !sawHit || sawStage {
		t.Fatalf("cache-hit span tree wrong (hit=%v stage=%v): %+v", sawHit, sawStage, warm.Spans)
	}
}

// TestAskCoalescesConcurrentDuplicates fires a burst of identical questions
// at a cold node. Exactly one pipeline execution may run per cache fill; all
// burst members must agree on the answers and, beyond the leader, arrive
// flagged as coalesced or cache hits.
func TestAskCoalescesConcurrentDuplicates(t *testing.T) {
	nodes := startCluster(t, 1)
	f := liveColl.Facts[1]

	const burst = 16
	var wg sync.WaitGroup
	resps := make([]*Response, burst)
	errs := make([]error, burst)
	for i := 0; i < burst; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resps[i], errs[i] = Ask(nodes[0].Addr(), f.Question, 10*time.Second)
		}()
	}
	wg.Wait()

	var leaders, sharedCount int
	for i := 0; i < burst; i++ {
		if errs[i] != nil {
			t.Fatalf("ask %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(resps[i].Answers, resps[0].Answers) {
			t.Fatalf("ask %d answers diverge", i)
		}
		if resps[i].CacheHit || resps[i].Coalesced {
			sharedCount++
		} else {
			leaders++
		}
	}
	// Leaders are the calls that actually ran the pipeline; every other call
	// rode the cache or the singleflight. The scheduler decides how many
	// misses overlap, but a 16-way burst must share at least once, and the
	// stats must account for every ask.
	if sharedCount == 0 {
		t.Fatal("no burst member was coalesced or cache-served")
	}
	ans, _ := nodes[0].CacheStats()
	st := nodes[0].statusMetrics()
	total := st.AnswerCacheHits + st.AnswerCacheMisses
	if total != burst {
		t.Fatalf("cache lookups = %d, want %d (hits %d, misses %d)",
			total, burst, ans.Hits, ans.Misses)
	}
	if st.AnswerCacheCoalesced+st.AnswerCacheHits != int64(sharedCount) {
		t.Fatalf("hits(%d)+coalesced(%d) != shared responses(%d)",
			st.AnswerCacheHits, st.AnswerCacheCoalesced, sharedCount)
	}
}

// TestAskCacheDisabled checks the chaos-mode configuration: with caching off
// the node never sets CacheHit/Coalesced and repeated asks run the full
// pipeline every time.
func TestAskCacheDisabled(t *testing.T) {
	node, err := StartNode(NodeConfig{
		Addr:           "127.0.0.1:0",
		Engine:         liveEngine,
		HeartbeatEvery: 50 * time.Millisecond,
		RequestTimeout: 10 * time.Second,
		Cache:          CacheConfig{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)

	f := liveColl.Facts[1]
	for i := 0; i < 2; i++ {
		resp, err := Ask(node.Addr(), f.Question, 10*time.Second)
		if err != nil {
			t.Fatalf("ask %d: %v", i, err)
		}
		if resp.CacheHit || resp.Coalesced {
			t.Fatalf("ask %d served from cache with caching disabled", i)
		}
	}
	ans, pr := node.CacheStats()
	if ans != (qcache.Stats{}) || pr != (qcache.Stats{}) {
		t.Fatalf("disabled caches recorded traffic: ans=%+v pr=%+v", ans, pr)
	}
}

// TestPRSubtaskCache dispatches the same PR sub-task twice and checks the
// second serve comes from the PR partial cache with byte-identical refs.
func TestPRSubtaskCache(t *testing.T) {
	nodes := startCluster(t, 1)
	n := nodes[0]
	f := liveColl.Facts[1]
	analysis, _ := liveEngine.QuestionProcessing(f.Question)

	req := &Request{
		Kind:     kindPRSubtask,
		Keywords: analysis.Keywords,
		Subs:     []int{0, 1},
	}
	first := n.dispatch(req)
	if first.Err != "" {
		t.Fatalf("first dispatch: %s", first.Err)
	}
	second := n.dispatch(req)
	if second.Err != "" {
		t.Fatalf("second dispatch: %s", second.Err)
	}
	if !reflect.DeepEqual(first.ParaRefs, second.ParaRefs) {
		t.Fatal("cached PR refs differ from computed refs")
	}
	_, pr := n.CacheStats()
	if pr.Hits != 1 || pr.Misses != 1 {
		t.Fatalf("PR cache hits/misses = %d/%d, want 1/1", pr.Hits, pr.Misses)
	}
	// A different assignment over the same keywords is a different key.
	third := n.dispatch(&Request{Kind: kindPRSubtask, Keywords: analysis.Keywords, Subs: []int{0}})
	if third.Err != "" {
		t.Fatalf("third dispatch: %s", third.Err)
	}
	if _, pr := n.CacheStats(); pr.Misses != 2 {
		t.Fatalf("distinct sub assignment did not miss: %+v", pr)
	}
}

// TestCachedAnswersMatchSequential pins cache correctness to the ground
// truth: a cached answer must equal the sequential engine's answer, not just
// the first live response.
func TestCachedAnswersMatchSequential(t *testing.T) {
	nodes := startCluster(t, 1)
	f := liveColl.Facts[2]
	for i := 0; i < 2; i++ {
		resp, err := Ask(nodes[0].Addr(), f.Question, 10*time.Second)
		if err != nil {
			t.Fatalf("ask %d: %v", i, err)
		}
		seq := liveEngine.AnswerSequential(f.Question)
		if len(seq.Answers) == 0 || len(resp.Answers) == 0 {
			t.Fatalf("ask %d: empty answers (live %d, seq %d)", i, len(resp.Answers), len(seq.Answers))
		}
		if !strings.EqualFold(seq.Answers[0].Text, resp.Answers[0].Text) {
			t.Fatalf("ask %d: live %q != sequential %q", i, resp.Answers[0].Text, seq.Answers[0].Text)
		}
	}
}
