// Fleet metrics aggregation and the slow-question dump (PR-6).
//
// kindMetricsPull gathers per-node registry snapshots: a Fleet pull asks one
// node to fan out to every known peer in parallel and return the whole
// cluster's snapshots in one response, which qatop and `qactl -metrics
// -cluster` merge with obs.MergeSnapshots. kindSlow dumps the node's flight
// recorder — the keep-the-worst ring of complete per-question records.
package live

import (
	"fmt"
	"sync"
	"time"

	"distqa/internal/obs"
)

// handleMetricsPull snapshots this node's registry and, for a fleet pull,
// gathers every reachable peer's snapshot too. It runs on the goroutine
// dispatch path (never inline in the mux read loop) because the fan-out
// makes network calls.
func (n *Node) handleMetricsPull(req *Request) *Response {
	n.refreshScrapeGauges()
	snap := n.obs.Snapshot()
	snap.Node = n.Addr()
	resp := &Response{ServedBy: n.Addr(), Snapshots: []obs.RegistrySnapshot{snap}}
	if !req.Fleet {
		return resp
	}
	peers := n.peerAddrs()
	deadline := time.Now().Add(n.cfg.RequestTimeout)
	results := make([][]obs.RegistrySnapshot, len(peers))
	var wg sync.WaitGroup
	for i, addr := range peers {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			// Single attempt: a fleet pull is a periodic poll, the next
			// refresh retries naturally; retrying inside would pile load on
			// a struggling peer exactly when it matters.
			pr, err := n.callPeer(addr, &Request{Kind: kindMetricsPull}, deadline, 1)
			if err != nil || pr.Err != "" {
				return
			}
			results[i] = pr.Snapshots
		}(i, addr)
	}
	wg.Wait()
	for _, snaps := range results {
		resp.Snapshots = append(resp.Snapshots, snaps...)
	}
	return resp
}

// handleSlow dumps the k worst question records from the flight recorder,
// slowest first.
func (n *Node) handleSlow(req *Request) *Response {
	k := req.Limit
	if k <= 0 {
		k = 5
	}
	return &Response{ServedBy: n.Addr(), Slow: n.flight.Worst(k)}
}

// QueryMetricsPull fetches one node's registry snapshot.
func QueryMetricsPull(addr string, timeout time.Duration) (obs.RegistrySnapshot, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	resp, err := roundTrip(addr, &Request{Kind: kindMetricsPull}, timeout)
	if err != nil {
		return obs.RegistrySnapshot{}, err
	}
	if len(resp.Snapshots) == 0 {
		return obs.RegistrySnapshot{}, fmt.Errorf("live: %s returned no snapshot", addr)
	}
	return resp.Snapshots[0], nil
}

// QueryClusterMetrics asks one node to gather registry snapshots from the
// whole cluster (itself plus every known peer).
func QueryClusterMetrics(addr string, timeout time.Duration) ([]obs.RegistrySnapshot, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	resp, err := roundTrip(addr, &Request{Kind: kindMetricsPull, Fleet: true}, timeout)
	if err != nil {
		return nil, err
	}
	return resp.Snapshots, nil
}

// QuerySlow fetches a node's slowest retained question records (limit <= 0
// selects the node default of 5).
func QuerySlow(addr string, limit int, timeout time.Duration) ([]obs.QuestionRecord, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	resp, err := roundTrip(addr, &Request{Kind: kindSlow, Limit: limit}, timeout)
	if err != nil {
		return nil, err
	}
	return resp.Slow, nil
}
