// Package live is a real-socket implementation of the distributed Q/A
// architecture: node daemons over TCP with gob-encoded requests, periodic
// load heartbeats, question-dispatcher forwarding, and answer-processing
// partitioning across peers. It shares the pipeline (package qa) with the
// simulator; the difference is that here the concurrency, the network and
// the failures are real.
//
// Every node holds a replica of the collection (generated deterministically
// from the shared corpus configuration), mirroring the paper's testbed where
// each machine had a copy of the TREC collection. Paragraphs therefore
// travel as (id, score) references rather than full text.
//
// The live cluster is for demonstrations and integration tests
// (cmd/qanode, cmd/qactl, examples/livecluster); the performance
// experiments use the virtual-time simulator, whose 2001-hardware cost
// model is what the paper's numbers depend on.
package live

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"distqa/internal/obs"
	"distqa/internal/qa"
	"distqa/internal/shard"
)

// MaxFrameBytes bounds how many bytes one gob-encoded Request or Response
// may occupy on the wire. A malformed or hostile frame that keeps streaming
// bytes would otherwise hold a decode goroutine (and its buffers) until the
// idle timeout; the frame guard turns it into an immediate decode error.
const MaxFrameBytes = 16 << 20

// errFrameTooLarge is the frameReader's budget-exhausted error.
var errFrameTooLarge = errors.New("live: frame exceeds MaxFrameBytes")

// frameReader meters bytes flowing into a gob decoder, erroring once a
// single frame exceeds the budget. The keep-alive server loop and the
// connection pool reset it before each decode, so the budget applies per
// message, not per connection.
type frameReader struct {
	r         io.Reader
	remaining int64
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: r, remaining: MaxFrameBytes}
}

// reset restores the per-frame budget (call before each decode).
func (f *frameReader) reset() { f.remaining = MaxFrameBytes }

func (f *frameReader) Read(p []byte) (int, error) {
	if f.remaining <= 0 {
		return 0, errFrameTooLarge
	}
	if int64(len(p)) > f.remaining {
		p = p[:f.remaining]
	}
	n, err := f.r.Read(p)
	f.remaining -= int64(n)
	return n, err
}

// decodeRequestFrame decodes one Request from raw bytes under the frame
// guard — the exact decode path the keep-alive server loop runs, factored
// out so the wire protocol is natively fuzzable (FuzzDecodeRequest).
// Malformed frames must return an error; they must never panic or hang.
func decodeRequestFrame(data []byte) (*Request, error) {
	fr := newFrameReader(bytes.NewReader(data))
	var req Request
	if err := gob.NewDecoder(fr).Decode(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// decodeResponseFrame decodes one Response from raw bytes under the frame
// guard (the client pool's decode path; FuzzDecodeResponse).
func decodeResponseFrame(data []byte) (*Response, error) {
	fr := newFrameReader(bytes.NewReader(data))
	var resp Response
	if err := gob.NewDecoder(fr).Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Wire message kinds.
const (
	kindAsk       = "ask"       // full question
	kindAPSubtask = "apSubtask" // remote answer processing
	kindPRSubtask = "prSubtask" // remote paragraph retrieval + scoring
	kindHeartbeat = "heartbeat" // load exchange
	kindStatus    = "status"    // operator status query
	kindMetrics   = "metrics"   // operator metrics scrape (Prometheus text)
	kindShardPR   = "shardPR"   // shard-scoped paragraph retrieval + scoring
	kindShardDF   = "shardDF"   // shard document-frequency gather (df correction)
	kindEstimate  = "estimate"  // operator cost-prediction query (gob-embedded)
	// kindShardSummary pulls shard term summaries (PR-7): heartbeats advertise
	// summary versions (LoadReport.SumVers), and a node that sees a version it
	// has not stored pulls the full summary with this op. Request.Subs carries
	// the wanted shard ids; the response returns one shard.Summary per id the
	// serving node holds.
	kindShardSummary = "shardSummary"
	// kindMetricsPull gathers registry snapshots for fleet aggregation
	// (PR-6): Fleet=false returns the serving node's own snapshot;
	// Fleet=true makes the node fan the pull out to its peers and return
	// every per-node snapshot in one response (qatop, qactl -metrics -cluster).
	kindMetricsPull = "metricsPull"
	// kindSlow dumps the node's slow-question flight recorder (gob-embedded;
	// qactl -slow).
	kindSlow = "slow"
)

// Request is the single request envelope.
type Request struct {
	Kind string
	// Span is the observability context: the originating question's ID and
	// the parent span, propagated so remote sub-task spans (and forwarded
	// questions) join the originating question's span tree across nodes.
	Span obs.SpanContext
	// Ask
	Question string
	// Forwarded marks a question already migrated once (no re-forwarding,
	// preventing routing loops).
	Forwarded bool
	// TimeoutMS is the edge deadline, in milliseconds of budget remaining
	// when the request was sent (0 = no edge deadline; the node's retry
	// budget alone bounds remote work). A relative budget rather than an
	// absolute wall-clock instant, so it survives clock skew between the
	// gateway and the serving node. The ask pipeline clamps its per-question
	// deadline budget to it — forwards, ShardPR scatter legs and PR/AP
	// sub-tasks all inherit the clamped budget — and a question still queued
	// for admission when the deadline passes is failed without running.
	TimeoutMS int64
	// WantSpans asks the serving node to ship the question's span tree back
	// in Response.Spans. The tree exists on the server either way (flight
	// recorder, SLO windows, `qactl -slow`); shipping it is tracing payload —
	// often larger than the answers themselves — that only tracing clients
	// (`qactl`'s Ask helper, the forwarding path) should pay the wire cost of.
	WantSpans bool
	// PRSubtask. Subs doubles as the wanted shard ids on shardSummary pulls.
	Keywords []string
	Subs     []int
	// ShardPR / ShardDF: shard-scoped sub-tasks carry the shard they target
	// and the requester's shard-map epoch (diagnostics: a replica serving a
	// different epoch is a sign of a stale map, surfaced in spans).
	Shard int
	Epoch int64
	// APSubtask
	AnswerType int
	ParaRefs   []ParaRef
	// Heartbeat
	Load LoadReport
	// MetricsPull: Fleet asks the serving node to gather its peers'
	// snapshots too (one-hop scatter; peer pulls are sent with Fleet=false).
	Fleet bool
	// Slow bounds how many flight-recorder records to return (0 = default).
	Limit int
}

// ShardPRRequest builds a shard-scoped paragraph-retrieval request — the unit
// of sharded scatter-gather fan-out. Exported for the perf suite.
func ShardPRRequest(shard int, epoch int64, keywords []string, subs []int) *Request {
	return &Request{Kind: kindShardPR, Shard: shard, Epoch: epoch, Keywords: keywords, Subs: subs}
}

// PRSubtaskRequest builds a paragraph-retrieval sub-task request — the unit
// of remote PR fan-out. Exported for the perf suite, which benchmarks
// transports by pushing concurrent sub-tasks at a node.
func PRSubtaskRequest(keywords []string, subs []int) *Request {
	return &Request{Kind: kindPRSubtask, Keywords: keywords, Subs: subs}
}

// AskRequest builds a question request. Exported for the perf suite, which
// asks over a pooled transport so the measured delta between a cold pipeline
// run and an answer-cache hit is not drowned by per-request connection setup
// (as it would be through the one-shot Ask helper).
func AskRequest(question string) *Request {
	return &Request{Kind: kindAsk, Question: question}
}

// ParaRef identifies a scored paragraph in the shared collection replica.
type ParaRef struct {
	ID      int
	Matched int
	Score   float64
}

// LoadReport is a node's heartbeat payload.
type LoadReport struct {
	Addr      string
	Questions int // questions currently executing
	Queued    int // questions waiting for admission
	APTasks   int // remote AP sub-tasks executing
	// Shards are the shard ids whose index this node holds a replica of —
	// the shard map travels on the existing load-monitor channel (no extra
	// protocol round). Empty on unsharded nodes.
	Shards []int
	// SumVers advertises, parallel to Shards, the version of the sender's
	// term summary for each held shard (0 = no summary built). Versions are
	// content checksums, so summaries ride the gossip incrementally: a
	// heartbeat costs a handful of varints, and a peer pulls the full summary
	// (kindShardSummary) only when it sees a version it has not stored.
	SumVers []int64
	Sent    time.Time
}

// ShardDF is one sub-collection's per-keyword document frequencies, returned
// by shardDF requests so the coordinator can apply the exact global df
// correction (qa.EstimateCostFromDF) across shard-scoped replicas.
type ShardDF struct {
	Sub int
	DF  []int64
}

// Response is the single response envelope.
type Response struct {
	Err     string
	Answers []qa.Answer
	// PRSubtask / ShardPR result.
	ParaRefs []ParaRef
	// ShardDF result: per-sub document frequencies for the requested subs.
	DFs []ShardDF
	// Epoch echoes the serving node's shard-map epoch on shard-scoped
	// responses (stale-map diagnostics).
	Epoch int64
	// Summaries is the shardSummary result: one term summary per requested
	// shard the serving node holds (selective routing, PR-7).
	Summaries []shard.Summary
	// Status result.
	Status *Status
	// Estimate is the cost-prediction result (kindEstimate, qactl -estimate).
	// Like Status it is a cold operator payload and travels gob-embedded.
	Estimate *qa.CostEstimate
	// Metrics result: Prometheus-style text exposition of the node's
	// registry (kindMetrics).
	MetricsText string
	// Spans are the completed spans this request produced on the serving
	// node (and, for asks, the remote sub-task spans it adopted) — the
	// question's cross-node span tree travels back with the answer.
	Spans []obs.Span
	// Snapshots are per-node registry snapshots (kindMetricsPull): one for
	// a single-node pull, one per reachable node for a fleet pull.
	Snapshots []obs.RegistrySnapshot
	// Slow is the flight-recorder dump (kindSlow), slowest question first.
	// Like Status it is a cold operator payload and travels gob-embedded.
	Slow []obs.QuestionRecord
	// Ask result metadata.
	ServedBy  string
	Forwarded bool
	APPeers   int
	ElapsedMS float64
	// Question-cache metadata (internal/qcache): CacheHit marks an answer
	// served from the node's answer cache; Coalesced marks a duplicate
	// in-flight question that shared another call's execution (singleflight).
	CacheHit  bool
	Coalesced bool
}

// Status describes a node for operators (cmd/qactl).
type Status struct {
	Addr       string
	Collection string
	Paragraphs int
	// IndexBytes is the real in-memory size of the node's postings
	// structures, summed over its held sub-collections. Taken live from the
	// index set, so it is correct for snapshot-loaded indexes too (the
	// figure is recomputed at load, never persisted).
	IndexBytes int
	Questions  int
	Queued     int
	Peers      []LoadReport
	Uptime     time.Duration
	// Metrics is the node's cumulative metrics snapshot.
	Metrics StatusMetrics
	// PeerHealth is the node's failure-detector and circuit-breaker view of
	// every peer it has heard from (alive/suspect/dead, breaker state,
	// blamed failures) — rendered by `qactl -status`.
	PeerHealth []PeerHealth
	// Mux lists the node's outbound multiplexed connections, one row per
	// peer (in-flight depth and lifetime calls) — rendered by `qactl -status`.
	Mux []MuxPeerStatus
	// Shard is the node's shard-map view (nil when the node runs with a full
	// collection replica) — rendered by `qactl -status`.
	Shard *ShardStatus
	// SLO is the node's evaluated service-level objectives (PR-6): one row
	// per configured objective with burn rate and tail exemplar — rendered
	// by `qactl -status` and qatop.
	SLO []obs.SLOStatus
}

// ShardStatus is a node's view of the cluster shard map (Status.Shard).
type ShardStatus struct {
	K           int   // shard count
	R           int   // configured replica factor
	Epoch       int64 // shard-map epoch (bumps on placement change)
	Complete    bool  // every shard has at least one live replica
	Holdings    []int // shard ids this node holds
	HoldingSubs []int // sub-collections this node's index covers
	// Shards is the composed map: one row per shard with the live replica
	// addresses (self included as its own address).
	Shards []ShardReplicaRow
}

// ShardReplicaRow is one shard's row in ShardStatus.Shards.
type ShardReplicaRow struct {
	Shard    int
	Subs     []int
	Replicas []string
	// Selective-routing view (PR-7), zero-valued when routing is off: how
	// often this node's coordinator skipped / scattered to / fell back on the
	// shard, and the freshness of the summary it would consult.
	RouteSkipped   int64
	RouteScattered int64
	RouteFallbacks int64
	SummaryVersion int64  // 0 = no summary known
	SummaryFresh   bool   // usable at the current epoch
	SummaryFrom    string // "local", or the replica the summary was pulled from
	SummaryTerms   int    // distinct stems the summary covers
}

// MuxPeerStatus is one peer's row in Status.Mux: the state of this node's
// single multiplexed connection to that peer.
type MuxPeerStatus struct {
	Addr     string
	InFlight int   // calls currently awaiting a response
	Calls    int64 // lifetime calls over this transport to the peer
	GobOnly  bool  // peer failed codec negotiation; calls ride the gob pool
}

// StatusMetrics is the counter snapshot carried in Status (and rendered by
// qactl status): lifetime totals since the node started.
type StatusMetrics struct {
	UptimeSeconds      float64
	QuestionsServed    int64 // asks completed locally
	ForwardsOut        int64 // questions migrated away by the dispatcher
	ForwardsIn         int64 // migrated questions served here
	PRSubtasksSent     int64
	PRSubtasksReceived int64
	APSubtasksSent     int64
	APSubtasksReceived int64
	HeartbeatsSent     int64
	HeartbeatsReceived int64
	RequestFailures    int64 // remote calls that errored or timed out
	// Fault-tolerance counters (PR-3): retry attempts, circuit-breaker
	// trips and failure-detector re-admissions.
	Retries      int64
	BreakerTrips int64
	Readmissions int64
	// Connection-pool counters (live_pool_* metrics): persistent-connection
	// reuse on this node's outbound RPC path.
	PoolHits      int64
	PoolMisses    int64
	PoolEvictions int64
	PoolRedials   int64
	PoolOpenConns int64
	// Mux transport counters (live_mux_* metrics): the single multiplexed
	// binary-codec connection per peer that replaced pool checkout on the
	// RPC hot path (PR-4).
	MuxDials     int64
	MuxRedials   int64
	MuxFallbacks int64 // calls that degraded to the gob pool
	MuxOpenConns int64
	MuxCalls     int64
	MuxInFlight  int64
	// Question/PR cache counters (live_qcache_* metrics, PR-4).
	AnswerCacheHits      int64
	AnswerCacheMisses    int64
	AnswerCacheCoalesced int64
	PRCacheHits          int64
	PRCacheMisses        int64
	// Sharding counters (live_shard_* metrics, PR-5): scatter-gather
	// sub-tasks, replica failovers and the current shard-map epoch.
	ShardPRSent     int64
	ShardPRReceived int64
	ShardDFReceived int64
	ShardFailovers  int64
	ShardEpoch      int64
	// Selective-routing counters (live_route_* / live_summary_* metrics,
	// PR-7): per-shard routing verdicts, whole-plan outcomes, fan-outs the
	// summaries eliminated entirely, and summary-gossip pull traffic.
	RouteSkips            int64
	RouteScatters         int64
	RouteFallbacksMissing int64
	RouteFallbacksStale   int64
	RouteShortCircuits    int64
	RoutePlansSelective   int64
	RoutePlansFallback    int64
	SummaryPullsSent      int64
	SummaryPullsServed    int64
	SummaryPullFailures   int64
	// Go runtime gauges (PR-6), sampled when the status is built: the
	// profiling-adjacent health figures rendered by `qactl -status`.
	Goroutines     int64
	HeapAllocBytes int64
	GCPauseP99Ms   float64
	// FlightRecords is how many slow-question records the node's flight
	// recorder currently retains.
	FlightRecords int64
}

// roundTrip sends one request and decodes one response over a fresh
// connection. This is the pool-less *fallback* path of the protocol: normal
// node-to-node traffic (heartbeats, forwards, PR/AP sub-tasks) rides the
// per-peer persistent connection pool (pool.go), which reuses gob
// encoder/decoder streams to amortize the TCP handshake and gob's
// per-stream type-descriptor retransmission. One-shot dialing remains for
// CLI clients that make a single call (qactl, examples) and as the graceful
// degradation used by closed pools; the keep-alive server loop (Node.handle)
// serves both styles on the same port.
func roundTrip(addr string, req *Request, timeout time.Duration) (*Response, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("live: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if err := gob.NewEncoder(conn).Encode(req); err != nil {
		return nil, fmt.Errorf("live: encode to %s: %w", addr, err)
	}
	var resp Response
	if err := gob.NewDecoder(newFrameReader(conn)).Decode(&resp); err != nil {
		return nil, fmt.Errorf("live: decode from %s: %w", addr, err)
	}
	if resp.Err != "" {
		return &resp, fmt.Errorf("live: remote %s: %s", addr, resp.Err)
	}
	return &resp, nil
}
