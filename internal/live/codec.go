package live

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"distqa/internal/nlp"
	"distqa/internal/obs"
	"distqa/internal/qa"
	"distqa/internal/shard"
	"distqa/internal/wire"
)

// Binary wire encodings of the live protocol's Request and Response, layered
// on the internal/wire primitives. The hot operations — heartbeat, ask/
// forward, PR sub-task, AP sub-task, and every response shape they produce —
// are hand-rolled field by field; anything else (operator status payloads,
// messages minted by a future version) travels as a gob blob embedded inside
// a binary frame (codecGob), so the binary codec never loses expressiveness
// and gob remains the protocol's fallback and fuzz seam.
//
// Layout (one mux frame payload):
//
//	uvarint  request ID (mux correlation; 0 on non-multiplexed frames)
//	byte     shape code (codec* below)
//	...      shape-specific fields (varints, 8-byte floats, length-prefixed
//	         strings; see append*/decode* below)
//
// Every length prefix is validated against the remaining payload before any
// allocation, and the outer frame is capped at wire.MaxFrameBytes — the same
// 16 MB guard the gob paths enforce.

// Shape codes. Request and Response spaces are disjoint for debuggability
// (a swapped decode fails instantly instead of misparsing).
const (
	codecReqAsk       = 0x01
	codecReqPR        = 0x02
	codecReqAP        = 0x03
	codecReqHeartbeat = 0x04
	codecReqStatus    = 0x05
	codecReqMetrics   = 0x06
	codecReqShardPR   = 0x07
	codecReqShardDF   = 0x08
	// codecReqMetricsPull is the fleet-aggregation pull (PR-6): payload is
	// one Fleet bool, so a qatop refresh loop costs no allocations to decode.
	codecReqMetricsPull = 0x09
	// codecReqShardSummary is the term-summary pull (PR-7): payload is the
	// wanted shard-id list (Request.Subs).
	codecReqShardSummary = 0x0A
	codecResp            = 0x41 // binary response
	codecGobReq          = 0x7E // gob-embedded Request
	codecGobResp         = 0x7F // gob-embedded Response
)

// codecOfKind maps a Request.Kind to its binary shape code, or false when
// the kind must travel gob-embedded.
func codecOfKind(kind string) (byte, bool) {
	switch kind {
	case kindAsk:
		return codecReqAsk, true
	case kindPRSubtask:
		return codecReqPR, true
	case kindAPSubtask:
		return codecReqAP, true
	case kindHeartbeat:
		return codecReqHeartbeat, true
	case kindStatus:
		return codecReqStatus, true
	case kindMetrics:
		return codecReqMetrics, true
	case kindShardPR:
		return codecReqShardPR, true
	case kindShardDF:
		return codecReqShardDF, true
	case kindMetricsPull:
		return codecReqMetricsPull, true
	case kindShardSummary:
		return codecReqShardSummary, true
	default:
		return 0, false
	}
}

// kindOfCodec is the inverse of codecOfKind.
func kindOfCodec(code byte) (string, bool) {
	switch code {
	case codecReqAsk:
		return kindAsk, true
	case codecReqPR:
		return kindPRSubtask, true
	case codecReqAP:
		return kindAPSubtask, true
	case codecReqHeartbeat:
		return kindHeartbeat, true
	case codecReqStatus:
		return kindStatus, true
	case codecReqMetrics:
		return kindMetrics, true
	case codecReqShardPR:
		return kindShardPR, true
	case codecReqShardDF:
		return kindShardDF, true
	case codecReqMetricsPull:
		return kindMetricsPull, true
	case codecReqShardSummary:
		return kindShardSummary, true
	default:
		return "", false
	}
}

// appendGob embeds v as a gob blob (the fallback shape).
func appendGob(b *wire.Buffer, code byte, v any) error {
	b.Byte(code)
	var gb bytes.Buffer
	if err := gob.NewEncoder(&gb).Encode(v); err != nil {
		return fmt.Errorf("live: gob-embed: %w", err)
	}
	b.Bytes(gb.Bytes())
	return nil
}

// appendRequestWire encodes req onto b in the binary codec (gob-embedded
// when the kind has no hand-rolled shape).
func appendRequestWire(b *wire.Buffer, req *Request) error {
	code, ok := codecOfKind(req.Kind)
	if !ok {
		return appendGob(b, codecGobReq, req)
	}
	b.Byte(code)
	b.Int64(req.Span.QID)
	b.Int64(req.Span.Span)
	switch code {
	case codecReqAsk:
		b.Bool(req.Forwarded)
		b.Bool(req.WantSpans)
		b.Int64(req.TimeoutMS)
		b.String(req.Question)
	case codecReqPR:
		appendStrings(b, req.Keywords)
		b.Uint64(uint64(len(req.Subs)))
		for _, s := range req.Subs {
			b.Int(s)
		}
	case codecReqAP:
		appendStrings(b, req.Keywords)
		b.Int(req.AnswerType)
		appendParaRefs(b, req.ParaRefs)
	case codecReqShardPR:
		b.Int(req.Shard)
		b.Int64(req.Epoch)
		appendStrings(b, req.Keywords)
		b.Uint64(uint64(len(req.Subs)))
		for _, s := range req.Subs {
			b.Int(s)
		}
	case codecReqShardDF:
		appendStrings(b, req.Keywords)
		b.Uint64(uint64(len(req.Subs)))
		for _, s := range req.Subs {
			b.Int(s)
		}
	case codecReqHeartbeat:
		appendLoadReport(b, &req.Load)
	case codecReqMetricsPull:
		b.Bool(req.Fleet)
	case codecReqShardSummary:
		b.Uint64(uint64(len(req.Subs)))
		for _, s := range req.Subs {
			b.Int(s)
		}
	case codecReqStatus, codecReqMetrics:
		// No payload beyond the kind.
	}
	return nil
}

// decodeRequestWireInto decodes one binary-codec request into req
// (overwriting every field). The *out-param shape keeps the hot decode path
// allocation-free for payload-less kinds and for steady-state heartbeats
// (the repeating peer address is interned against the previous decode into
// the same scratch request); see TestWireCodecAllocBudget.
func decodeRequestWireInto(r *wire.Reader, req *Request) error {
	code := r.Byte()
	if code == codecGobReq {
		payload := r.BytesView()
		if err := r.Err(); err != nil {
			return err
		}
		dec, err := decodeRequestFrame(payload)
		if err != nil {
			return err
		}
		*req = *dec
		return nil
	}
	kind, ok := kindOfCodec(code)
	if !ok {
		if err := r.Err(); err != nil {
			return err
		}
		return fmt.Errorf("%w: unknown request shape 0x%02x", wire.ErrCorrupt, code)
	}
	prevAddr := req.Load.Addr       // survives the reset so heartbeat decode can intern it
	prevShards := req.Load.Shards   // scratch capacity reused by heartbeat decode
	prevSumVers := req.Load.SumVers // likewise for the summary-version vector
	*req = Request{Kind: kind}
	req.Span.QID = r.Int64()
	req.Span.Span = r.Int64()
	switch code {
	case codecReqAsk:
		req.Forwarded = r.Bool()
		req.WantSpans = r.Bool()
		req.TimeoutMS = r.Int64()
		req.Question = r.String()
	case codecReqPR:
		req.Keywords = decodeStrings(r)
		if n := r.ListLen(1); n > 0 {
			req.Subs = make([]int, n)
			for i := range req.Subs {
				req.Subs[i] = r.Int()
			}
		}
	case codecReqAP:
		req.Keywords = decodeStrings(r)
		req.AnswerType = r.Int()
		req.ParaRefs = decodeParaRefs(r)
	case codecReqShardPR:
		req.Shard = r.Int()
		req.Epoch = r.Int64()
		req.Keywords = decodeStrings(r)
		req.Subs = decodeInts(r)
	case codecReqShardDF:
		req.Keywords = decodeStrings(r)
		req.Subs = decodeInts(r)
	case codecReqHeartbeat:
		req.Load.Addr = prevAddr
		req.Load.Shards = prevShards
		req.Load.SumVers = prevSumVers
		decodeLoadReport(r, &req.Load)
	case codecReqMetricsPull:
		req.Fleet = r.Bool()
	case codecReqShardSummary:
		req.Subs = decodeInts(r)
	}
	return r.Err()
}

// appendResponseWire encodes resp onto b. Responses carrying an operator
// payload (Status, cost Estimate) travel gob-embedded — deep, cold-path
// structs; everything on the question-serving hot path is hand-rolled.
func appendResponseWire(b *wire.Buffer, resp *Response) error {
	if resp.Status != nil || resp.Estimate != nil || resp.Slow != nil {
		return appendGob(b, codecGobResp, resp)
	}
	b.Byte(codecResp)
	b.String(resp.Err)
	b.String(resp.ServedBy)
	b.Bool(resp.Forwarded)
	b.Bool(resp.CacheHit)
	b.Bool(resp.Coalesced)
	b.Int(resp.APPeers)
	b.Float64(resp.ElapsedMS)
	b.String(resp.MetricsText)
	b.Int64(resp.Epoch)
	appendAnswers(b, resp.Answers)
	appendParaRefs(b, resp.ParaRefs)
	appendShardDFs(b, resp.DFs)
	appendSpans(b, resp.Spans)
	appendSnapshots(b, resp.Snapshots)
	appendSummaries(b, resp.Summaries)
	return nil
}

// decodeResponseWire decodes one binary-codec response. Unlike the request
// path it allocates the Response — callers own and retain it.
func decodeResponseWire(r *wire.Reader) (*Response, error) {
	code := r.Byte()
	if code == codecGobResp {
		payload := r.BytesView()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return decodeResponseFrame(payload)
	}
	if code != codecResp {
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: unknown response shape 0x%02x", wire.ErrCorrupt, code)
	}
	resp := &Response{}
	resp.Err = r.String()
	resp.ServedBy = r.String()
	resp.Forwarded = r.Bool()
	resp.CacheHit = r.Bool()
	resp.Coalesced = r.Bool()
	resp.APPeers = r.Int()
	resp.ElapsedMS = r.Float64()
	resp.MetricsText = r.String()
	resp.Epoch = r.Int64()
	resp.Answers = decodeAnswers(r)
	resp.ParaRefs = decodeParaRefs(r)
	resp.DFs = decodeShardDFs(r)
	resp.Spans = decodeSpans(r)
	resp.Snapshots = decodeSnapshots(r)
	resp.Summaries = decodeSummaries(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	return resp, nil
}

// ---------------------------------------------------------------------------
// Field-group helpers.

func appendStrings(b *wire.Buffer, ss []string) {
	b.Uint64(uint64(len(ss)))
	for _, s := range ss {
		b.String(s)
	}
}

func decodeStrings(r *wire.Reader) []string {
	n := r.ListLen(1)
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.String()
	}
	return out
}

func decodeInts(r *wire.Reader) []int {
	n := r.ListLen(1)
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.Int()
	}
	return out
}

func appendShardDFs(b *wire.Buffer, dfs []ShardDF) {
	b.Uint64(uint64(len(dfs)))
	for i := range dfs {
		b.Int(dfs[i].Sub)
		b.Uint64(uint64(len(dfs[i].DF)))
		for _, df := range dfs[i].DF {
			b.Int64(df)
		}
	}
}

func decodeShardDFs(r *wire.Reader) []ShardDF {
	n := r.ListLen(2)
	if n == 0 {
		return nil
	}
	out := make([]ShardDF, n)
	for i := range out {
		out[i].Sub = r.Int()
		if m := r.ListLen(1); m > 0 {
			out[i].DF = make([]int64, m)
			for j := range out[i].DF {
				out[i].DF[j] = r.Int64()
			}
		}
	}
	return out
}

func appendParaRefs(b *wire.Buffer, refs []ParaRef) {
	b.Uint64(uint64(len(refs)))
	for i := range refs {
		b.Int(refs[i].ID)
		b.Int(refs[i].Matched)
		b.Float64(refs[i].Score)
	}
}

func decodeParaRefs(r *wire.Reader) []ParaRef {
	// Each ref is ≥ 10 bytes (two varints + fixed float), bounding the
	// allocation a corrupt length prefix could request.
	n := r.ListLen(10)
	if n == 0 {
		return nil
	}
	out := make([]ParaRef, n)
	for i := range out {
		out[i].ID = r.Int()
		out[i].Matched = r.Int()
		out[i].Score = r.Float64()
	}
	return out
}

func appendLoadReport(b *wire.Buffer, lr *LoadReport) {
	b.String(lr.Addr)
	b.Int(lr.Questions)
	b.Int(lr.Queued)
	b.Int(lr.APTasks)
	b.Uint64(uint64(len(lr.Shards)))
	for _, s := range lr.Shards {
		b.Int(s)
	}
	b.Uint64(uint64(len(lr.SumVers)))
	for _, v := range lr.SumVers {
		b.Int64(v)
	}
	b.Time(lr.Sent)
}

func decodeLoadReport(r *wire.Reader, lr *LoadReport) {
	// A peer's address repeats verbatim on every heartbeat and the mux server
	// decodes into a per-connection scratch Request, so keep the previous
	// string when the bytes match: the steady-state heartbeat decode is then
	// allocation-free. Strings are immutable, so sharing the retained one
	// with whatever the node stored (peer tables, detectors) is safe.
	if b := r.BytesView(); string(b) != lr.Addr {
		lr.Addr = string(b)
	}
	lr.Questions = r.Int()
	lr.Queued = r.Int()
	lr.APTasks = r.Int()
	// Shards decodes into the scratch report's retained capacity: steady-state
	// heartbeats (same shard count every beat) are then allocation-free.
	// Unlike the interned Addr string, the slice is mutable, so the node must
	// NOT retain it directly — dispatch interns a stable copy on store
	// (internShards), keeping the scratch slice private to the decode loop.
	n := r.ListLen(1)
	if n == 0 {
		lr.Shards = lr.Shards[:0]
	} else {
		if cap(lr.Shards) < n {
			lr.Shards = make([]int, n)
		}
		lr.Shards = lr.Shards[:n]
		for i := range lr.Shards {
			lr.Shards[i] = r.Int()
		}
	}
	// SumVers rides the same scratch-capacity discipline as Shards: the
	// version vector repeats its length every beat, so the steady state stays
	// allocation-free, and dispatch interns a stable copy before storing.
	nv := r.ListLen(1)
	if nv == 0 {
		lr.SumVers = lr.SumVers[:0]
	} else {
		if cap(lr.SumVers) < nv {
			lr.SumVers = make([]int64, nv)
		}
		lr.SumVers = lr.SumVers[:nv]
		for i := range lr.SumVers {
			lr.SumVers[i] = r.Int64()
		}
	}
	lr.Sent = r.Time()
}

func appendSummaries(b *wire.Buffer, sums []shard.Summary) {
	b.Uint64(uint64(len(sums)))
	for i := range sums {
		s := &sums[i]
		b.Int(s.Shard)
		b.Int64(s.Version)
		b.Int(s.Terms)
		b.Int(s.Docs)
		b.Byte(s.Hashes)
		b.Uint64(uint64(len(s.Bits)))
		for _, w := range s.Bits {
			b.Uint64(w)
		}
		b.Uint64(uint64(len(s.TopDF)))
		for _, td := range s.TopDF {
			b.String(td.Term)
			b.Int64(td.DF)
		}
	}
}

func decodeSummaries(r *wire.Reader) []shard.Summary {
	// A summary is ≥ 7 bytes of fixed fields even when empty, bounding what a
	// corrupt outer length could allocate.
	n := r.ListLen(7)
	if n == 0 {
		return nil
	}
	out := make([]shard.Summary, n)
	for i := range out {
		s := &out[i]
		s.Shard = r.Int()
		s.Version = r.Int64()
		s.Terms = r.Int()
		s.Docs = r.Int()
		s.Hashes = r.Byte()
		if nb := r.ListLen(1); nb > 0 {
			s.Bits = make([]uint64, nb)
			for j := range s.Bits {
				s.Bits[j] = r.Uint64()
			}
		}
		if nt := r.ListLen(2); nt > 0 {
			s.TopDF = make([]shard.TermDF, nt)
			for j := range s.TopDF {
				s.TopDF[j].Term = r.String()
				s.TopDF[j].DF = r.Int64()
			}
		}
	}
	return out
}

func appendAnswers(b *wire.Buffer, as []qa.Answer) {
	b.Uint64(uint64(len(as)))
	for i := range as {
		a := &as[i]
		b.String(a.Text)
		b.Int(int(a.Type))
		b.Float64(a.Score)
		b.Int(a.ParaID)
		b.Int(a.WindowStart)
		b.Int(a.WindowEnd)
		b.Int(a.CandStart)
		b.Int(a.CandEnd)
		b.String(a.Snippet)
	}
}

func decodeAnswers(r *wire.Reader) []qa.Answer {
	n := r.ListLen(16)
	if n == 0 {
		return nil
	}
	out := make([]qa.Answer, n)
	for i := range out {
		a := &out[i]
		a.Text = r.String()
		a.Type = nlp.EntityType(r.Int())
		a.Score = r.Float64()
		a.ParaID = r.Int()
		a.WindowStart = r.Int()
		a.WindowEnd = r.Int()
		a.CandStart = r.Int()
		a.CandEnd = r.Int()
		a.Snippet = r.String()
	}
	return out
}

func appendSpans(b *wire.Buffer, ss []obs.Span) {
	b.Uint64(uint64(len(ss)))
	for i := range ss {
		s := &ss[i]
		b.Int64(s.QID)
		b.Int64(s.ID)
		b.Int64(s.Parent)
		b.String(s.Name)
		b.String(s.Stage)
		b.String(s.Node)
		b.Time(s.Start)
		b.Time(s.End)
	}
}

func decodeSpans(r *wire.Reader) []obs.Span {
	n := r.ListLen(10)
	if n == 0 {
		return nil
	}
	out := make([]obs.Span, n)
	for i := range out {
		s := &out[i]
		s.QID = r.Int64()
		s.ID = r.Int64()
		s.Parent = r.Int64()
		s.Name = r.String()
		s.Stage = r.String()
		s.Node = r.String()
		s.Start = r.Time()
		s.End = r.Time()
	}
	return out
}

func appendSnapshots(b *wire.Buffer, snaps []obs.RegistrySnapshot) {
	b.Uint64(uint64(len(snaps)))
	for i := range snaps {
		sn := &snaps[i]
		b.String(sn.Node)
		b.Time(sn.TakenAt)
		b.Uint64(uint64(len(sn.Metrics)))
		for j := range sn.Metrics {
			m := &sn.Metrics[j]
			b.String(m.Name)
			b.Byte(m.Kind)
			b.Uint64(uint64(len(m.Labels)))
			for _, lp := range m.Labels {
				b.String(lp.Key)
				b.String(lp.Value)
			}
			b.Int64(m.Value)
			b.Bool(m.Hist != nil)
			if m.Hist != nil {
				b.Uint64(uint64(len(m.Hist.Bounds)))
				for _, bd := range m.Hist.Bounds {
					b.Float64(bd)
				}
				b.Uint64(uint64(len(m.Hist.Counts)))
				for _, c := range m.Hist.Counts {
					b.Int64(c)
				}
				b.Int64(m.Hist.Count)
				b.Float64(m.Hist.Sum)
			}
		}
	}
}

func decodeSnapshots(r *wire.Reader) []obs.RegistrySnapshot {
	n := r.ListLen(12)
	if n == 0 {
		return nil
	}
	out := make([]obs.RegistrySnapshot, n)
	for i := range out {
		sn := &out[i]
		sn.Node = r.String()
		sn.TakenAt = r.Time()
		nm := r.ListLen(4)
		if nm > 0 {
			sn.Metrics = make([]obs.SnapshotMetric, nm)
		}
		for j := range sn.Metrics {
			m := &sn.Metrics[j]
			m.Name = r.String()
			m.Kind = r.Byte()
			nl := r.ListLen(2)
			if nl > 0 {
				m.Labels = make([]obs.LabelPair, nl)
			}
			for k := range m.Labels {
				m.Labels[k].Key = r.String()
				m.Labels[k].Value = r.String()
			}
			m.Value = r.Int64()
			if r.Bool() {
				h := &obs.HistSnapshot{}
				nb := r.ListLen(8)
				if nb > 0 {
					h.Bounds = make([]float64, nb)
				}
				for k := range h.Bounds {
					h.Bounds[k] = r.Float64()
				}
				nc := r.ListLen(1)
				if nc > 0 {
					h.Counts = make([]int64, nc)
				}
				for k := range h.Counts {
					h.Counts[k] = r.Int64()
				}
				h.Count = r.Int64()
				h.Sum = r.Float64()
				m.Hist = h
			}
		}
	}
	return out
}
