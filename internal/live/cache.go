package live

import (
	"strconv"
	"strings"
	"time"

	"distqa/internal/qa"
	"distqa/internal/qcache"
)

// Cache defaults. The answer cache is small (distinct questions a node sees
// are few and skewed); the PR cache is larger because every question fans
// out into per-sub-collection partials and those are shared across
// *different* questions with overlapping keywords.
const (
	DefaultAnswerCacheCapacity = 512
	DefaultAnswerCacheTTL      = 60 * time.Second
	DefaultPRCacheCapacity     = 4096
	DefaultPRCacheTTL          = 60 * time.Second
)

// CacheConfig tunes the node's question/PR caches (internal/qcache). The
// zero value enables both with defaults.
type CacheConfig struct {
	// Disabled turns both caches and singleflight coalescing off — the
	// pre-cache serving path, byte-for-byte. Chaos runs set it so
	// deterministic event logs never depend on cache state.
	Disabled bool
	// AnswerCapacity/AnswerTTL bound the question-level answer cache
	// (keyed by normalized question text).
	AnswerCapacity int
	AnswerTTL      time.Duration
	// PRCapacity/PRTTL bound the paragraph-retrieval partial cache (keyed
	// by keywords + sub-collection assignment).
	PRCapacity int
	PRTTL      time.Duration
}

func (c CacheConfig) withDefaults() CacheConfig {
	if c.AnswerCapacity <= 0 {
		c.AnswerCapacity = DefaultAnswerCacheCapacity
	}
	if c.AnswerTTL <= 0 {
		c.AnswerTTL = DefaultAnswerCacheTTL
	}
	if c.PRCapacity <= 0 {
		c.PRCapacity = DefaultPRCacheCapacity
	}
	if c.PRTTL <= 0 {
		c.PRTTL = DefaultPRCacheTTL
	}
	return c
}

// cachedAnswer is the answer cache's value: everything needed to synthesize
// a Response without running the pipeline. The answers slice is shared
// between the cache and every hit response — safe because responses only
// read it (encoding copies bytes onto the wire).
type cachedAnswer struct {
	answers []qa.Answer
	apPeers int
}

// prCacheKey keys one PR partial: the analysis keywords (order-preserving —
// QP is deterministic, so identical questions produce identical keyword
// order) plus the sub-collection assignment.
func prCacheKey(keywords []string, subs []int) string {
	var b strings.Builder
	for i, k := range keywords {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		b.WriteString(k)
	}
	b.WriteByte('|')
	for i, s := range subs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(s))
	}
	return b.String()
}

// prRefsCacheKey namespaces the serving-side PR partials ([]ParaRef, cached
// by the shardPR/PR sub-task handlers) away from the coordinator-local
// partials ([]qa.ScoredParagraph, cached by the local PR path). The two
// share the cache but not a value type, and a node can play both roles for
// the same (keywords, subs) — first serving a peer's sub-task, later
// coordinating the same question itself — so the keys must not collide.
func prRefsCacheKey(keywords []string, subs []int) string {
	return "refs|" + prCacheKey(keywords, subs)
}

// cachedResponse synthesizes the response for an answer-cache hit (or a
// coalesced follower). It still opens and closes an "ask" root span with a
// cache marker child, so traces show cache-served questions explicitly, and
// it still counts toward live_questions_total/live_ask_seconds — the cache
// changes the latency distribution, not the accounting.
func (n *Node) cachedResponse(req *Request, ca *cachedAnswer, start time.Time, coalesced bool) *Response {
	if req.Forwarded {
		n.nm.forwardsIn.Inc()
	}
	root := n.spans.StartSpan("ask", "", req.Span)
	marker := "cache:hit"
	if coalesced {
		marker = "cache:coalesced"
	}
	n.spans.StartSpan(marker, "", root.Context()).End()
	rs := root.End()
	n.nm.questions.Inc()
	n.nm.askSeconds.Observe(time.Since(start).Seconds())
	return &Response{
		Answers:   ca.answers,
		ServedBy:  n.Addr(),
		APPeers:   ca.apPeers,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		CacheHit:  !coalesced,
		Coalesced: coalesced,
		Spans:     n.spans.ByQID(rs.QID),
	}
}

// CacheStats exposes both caches' counters (tests, qabench).
func (n *Node) CacheStats() (answer, pr qcache.Stats) {
	return n.answerCache.Stats(), n.prCache.Stats()
}
