package live

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"distqa/internal/fault"
	"distqa/internal/obs"
	"distqa/internal/wire"
)

// Mux transport defaults.
const (
	// DefaultMuxInFlight bounds concurrent calls per multiplexed connection.
	// Calls beyond the limit block (backpressure) until a slot frees or the
	// call's timeout expires — the mux analogue of pool-checkout queueing,
	// except a slot is a pending-table entry, not a socket.
	DefaultMuxInFlight = 64
	// muxServerInFlight bounds concurrently executing requests per accepted
	// mux connection; the read loop stops pulling frames when it is reached,
	// pushing backpressure into the peer's TCP window.
	muxServerInFlight = 64
	// muxNegotiateTimeout caps the codec hello exchange. A gob-only peer
	// never acks, so the client must fail fast and fall back rather than
	// waiting out the full call timeout.
	muxNegotiateTimeout = 3 * time.Second
	// muxGobRetryAfter is how long a peer that failed codec negotiation
	// stays pinned to the gob fallback before the transport probes it with
	// a fresh hello (a restarted peer may have been upgraded).
	muxGobRetryAfter = 30 * time.Second
)

// errGobPeer marks a peer that did not complete the binary-codec hello: the
// transport pins it to the gob pool for muxGobRetryAfter.
var errGobPeer = errors.New("peer did not ack binary codec")

// errMuxClosed is returned by muxConn.call once the connection has died.
var errMuxClosed = errors.New("mux connection closed")

// MuxConfig configures a MuxTransport. The zero value gets defaults.
type MuxConfig struct {
	// InFlight bounds concurrent calls per peer connection (default
	// DefaultMuxInFlight).
	InFlight int
	// Disabled pins every call to the gob connection pool (benchmark
	// comparisons and protocol tests; production nodes leave it false).
	Disabled bool
	// Registry optionally receives the live_mux_* metrics.
	Registry *obs.Registry
	// Self identifies the owner to the fault injector as the message source.
	Self string
	// Injector, when non-nil, is consulted before every outbound call
	// exactly like PoolConfig.Injector; the gob fallback path is
	// injector-free so one call is never decided twice.
	Injector *fault.Injector
}

// muxMetrics are the transport's instrumentation handles (always non-nil).
type muxMetrics struct {
	dials     *obs.Counter // live_mux_dials
	redials   *obs.Counter // live_mux_redials
	fallbacks *obs.Counter // live_mux_fallbacks (calls degraded to gob pool)
	open      *obs.Gauge   // live_mux_open_conns
	calls     *obs.Counter // live_mux_calls_total
	inFlight  *obs.Gauge   // live_mux_in_flight
}

func newMuxMetrics(reg *obs.Registry) *muxMetrics {
	if reg == nil {
		return &muxMetrics{
			dials:     &obs.Counter{},
			redials:   &obs.Counter{},
			fallbacks: &obs.Counter{},
			open:      &obs.Gauge{},
			calls:     &obs.Counter{},
			inFlight:  &obs.Gauge{},
		}
	}
	return &muxMetrics{
		dials:     reg.Counter("live_mux_dials", nil),
		redials:   reg.Counter("live_mux_redials", nil),
		fallbacks: reg.Counter("live_mux_fallbacks", nil),
		open:      reg.Gauge("live_mux_open_conns", nil),
		calls:     reg.Counter("live_mux_calls_total", nil),
		inFlight:  reg.Gauge("live_mux_in_flight", nil),
	}
}

// muxResult is one call's outcome, delivered by the demux read loop.
type muxResult struct {
	resp *Response
	err  error
}

// muxConn is one multiplexed binary-codec connection to a peer. All calls to
// the peer share it: each request frame carries a request ID, a single demux
// read loop routes response frames to per-call channels, and an in-flight
// semaphore provides backpressure. Writes are serialized under wmu with a
// per-write deadline that is set before and *cleared after* every frame —
// the same per-call deadline hygiene pool.go established for gob streams, so
// a slow call can never leave an expired deadline behind for the next one
// (see TestMuxNoStaleDeadline).
type muxConn struct {
	addr string
	conn net.Conn
	m    *muxMetrics

	wmu sync.Mutex // serializes frame writes and write-deadline set/clear

	mu      sync.Mutex
	pending map[uint64]chan muxResult
	nextID  uint64
	err     error // terminal transport error; nil while healthy
	calls   int64

	sem  chan struct{} // in-flight limiter
	done chan struct{} // closed by fail()
}

func newMuxConn(addr string, conn net.Conn, inFlight int, m *muxMetrics) *muxConn {
	mc := &muxConn{
		addr:    addr,
		conn:    conn,
		m:       m,
		pending: make(map[uint64]chan muxResult),
		nextID:  1,
		sem:     make(chan struct{}, inFlight),
		done:    make(chan struct{}),
	}
	go mc.readLoop()
	return mc
}

// alive reports whether the connection has not (yet) failed.
func (mc *muxConn) alive() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.err == nil
}

// depth returns the current in-flight call count and lifetime calls.
func (mc *muxConn) depth() (int, int64) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return len(mc.pending), mc.calls
}

// fail marks the connection dead, closes the socket and delivers err to
// every pending call. Idempotent; the first error wins.
func (mc *muxConn) fail(err error) {
	mc.mu.Lock()
	if mc.err != nil {
		mc.mu.Unlock()
		return
	}
	mc.err = err
	waiting := mc.pending
	mc.pending = make(map[uint64]chan muxResult)
	mc.mu.Unlock()
	close(mc.done)
	mc.conn.Close()
	mc.m.open.Dec()
	for _, ch := range waiting {
		ch <- muxResult{err: err}
	}
}

// readLoop is the demux loop: it reads response frames forever, reusing one
// buffer, and routes each to its call's channel by request ID. Responses for
// unknown IDs (a call that already timed out and unregistered itself) are
// dropped — the connection stays healthy, which is exactly what lets a slow
// response coexist with fresh calls on the same socket. The loop itself
// runs with *no* read deadline: per-call timeouts are enforced by timers on
// the waiting side, never by poisoning the shared socket.
func (mc *muxConn) readLoop() {
	var rbuf []byte
	for {
		payload, err := wire.ReadFrame(mc.conn, rbuf)
		if err != nil {
			mc.fail(fmt.Errorf("mux read: %w", err))
			return
		}
		rbuf = payload[:cap(payload)]
		r := wire.NewReader(payload)
		id := r.Uint64()
		resp, derr := decodeResponseWire(&r)
		if derr != nil {
			// Framing is broken; nothing after this frame can be trusted.
			mc.fail(fmt.Errorf("mux decode: %w", derr))
			return
		}
		mc.mu.Lock()
		ch, ok := mc.pending[id]
		if ok {
			delete(mc.pending, id)
		}
		mc.mu.Unlock()
		if ok {
			ch <- muxResult{resp: resp}
		}
	}
}

// call performs one multiplexed request/response exchange bounded by
// timeout. The timeout covers in-flight-slot acquisition, the frame write
// and the wait for the demuxed response. A timed-out call unregisters its
// ID and leaves the connection healthy; the eventual late response is
// dropped by the read loop.
func (mc *muxConn) call(req *Request, timeout time.Duration) (*Response, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()

	// Backpressure: wait for an in-flight slot.
	select {
	case mc.sem <- struct{}{}:
	case <-mc.done:
		return nil, errMuxClosed
	case <-timer.C:
		return nil, fmt.Errorf("mux in-flight limit: timeout after %v", timeout)
	}
	defer func() { <-mc.sem }()

	// Register the call before writing so the response can never race the
	// pending-table entry.
	mc.mu.Lock()
	if mc.err != nil {
		mc.mu.Unlock()
		return nil, errMuxClosed
	}
	id := mc.nextID
	mc.nextID++
	ch := make(chan muxResult, 1)
	mc.pending[id] = ch
	mc.calls++
	mc.mu.Unlock()
	mc.m.calls.Inc()
	mc.m.inFlight.Inc()
	defer mc.m.inFlight.Dec()

	unregister := func() {
		mc.mu.Lock()
		delete(mc.pending, id)
		mc.mu.Unlock()
	}

	// Encode into a pooled buffer and write the frame with a fresh write
	// deadline, cleared immediately after — never left on the shared conn.
	b := wire.GetBuffer()
	b.BeginFrame()
	b.Uint64(id)
	err := appendRequestWire(b, req)
	if err == nil {
		err = b.EndFrame()
	}
	if err != nil {
		wire.PutBuffer(b)
		unregister()
		return nil, err
	}
	mc.wmu.Lock()
	mc.conn.SetWriteDeadline(time.Now().Add(timeout)) //nolint:errcheck
	_, err = mc.conn.Write(b.B)
	mc.conn.SetWriteDeadline(time.Time{}) //nolint:errcheck
	mc.wmu.Unlock()
	wire.PutBuffer(b)
	if err != nil {
		unregister()
		mc.fail(fmt.Errorf("mux write: %w", err))
		return nil, err
	}

	select {
	case res := <-ch:
		return res.resp, res.err
	case <-timer.C:
		unregister()
		return nil, fmt.Errorf("mux call: timeout after %v", timeout)
	}
}

// MuxTransport is the node's outbound RPC path: one multiplexed binary-codec
// connection per peer, with the gob connection pool as negotiated fallback.
// It mirrors Pool.Call's contract — fault-injector consultation, transparent
// one-redial on a stale connection, Response.Err surfaced as an error — so
// callPeer (breaker + retries above it) is transport-agnostic.
type MuxTransport struct {
	cfg  MuxConfig
	m    *muxMetrics
	pool *Pool

	mu      sync.Mutex
	conns   map[string]*muxConn
	dialing map[string]*muxDial  // in-progress dials, one per peer
	gobOnly map[string]time.Time // peer -> when pinned to the gob fallback
	closed  bool
}

// muxDial coalesces concurrent first-use dials to one peer: one caller dials,
// the rest wait on done and share the outcome — without it, a 16-way
// concurrent burst against a cold peer would open 16 connections and
// immediately throw 15 away.
type muxDial struct {
	done chan struct{}
	mc   *muxConn
	err  error
}

// NewMuxTransport builds a transport over pool (which provides the gob
// fallback and the one-shot degradation once closed).
func NewMuxTransport(cfg MuxConfig, pool *Pool) *MuxTransport {
	if cfg.InFlight <= 0 {
		cfg.InFlight = DefaultMuxInFlight
	}
	return &MuxTransport{
		cfg:     cfg,
		m:       newMuxMetrics(cfg.Registry),
		pool:    pool,
		conns:   make(map[string]*muxConn),
		dialing: make(map[string]*muxDial),
		gobOnly: make(map[string]time.Time),
	}
}

// Call sends one request to addr over the multiplexed connection (dialing
// and negotiating on first use), falling back to the gob pool for peers that
// do not speak the binary codec. The fault injector is consulted exactly
// once per logical call, here — both the mux path and the gob fallback
// underneath are injector-free.
func (t *MuxTransport) Call(addr string, req *Request, timeout time.Duration) (*Response, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	if d := t.cfg.Injector.Decide(t.cfg.Self, addr, opOfKind(req.Kind)); d.Faulty() {
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
		if d.Sever {
			// Model a TCP reset: kill the mux connection and every pooled
			// gob connection to the peer before failing the call.
			t.severPeer(addr)
		}
		if d.Drop || d.Sever {
			return nil, fmt.Errorf("live: call %s: %w", addr, ErrInjectedFault)
		}
		if d.Duplicate {
			if _, err := t.call(addr, req, timeout); err != nil {
				return nil, err
			}
		}
	}
	return t.call(addr, req, timeout)
}

// call is the injector-free body of Call.
func (t *MuxTransport) call(addr string, req *Request, timeout time.Duration) (*Response, error) {
	if t.cfg.Disabled {
		return t.pool.call(addr, req, timeout)
	}
	mc, reused, err := t.conn(addr, timeout)
	if err != nil {
		if errors.Is(err, errGobPeer) || errors.Is(err, errMuxClosed) {
			// Peer speaks gob only (or the transport is closed): degrade to
			// the pool, which itself degrades to one-shot once closed.
			t.m.fallbacks.Inc()
			return t.pool.call(addr, req, timeout)
		}
		return nil, err
	}
	resp, err := mc.call(req, timeout)
	if err != nil && reused && !mc.alive() {
		// Stale mux connection (peer restarted, idle-closed us): one
		// transparent redial, mirroring the pool's staleness handling.
		t.m.redials.Inc()
		mc, _, err2 := t.conn(addr, timeout)
		if err2 != nil {
			if errors.Is(err2, errGobPeer) || errors.Is(err2, errMuxClosed) {
				t.m.fallbacks.Inc()
				return t.pool.call(addr, req, timeout)
			}
			return nil, err2
		}
		resp, err = mc.call(req, timeout)
	}
	if err != nil {
		return nil, fmt.Errorf("live: call %s: %w", addr, err)
	}
	if resp.Err != "" {
		return resp, fmt.Errorf("live: remote %s: %s", addr, resp.Err)
	}
	return resp, nil
}

// conn returns the live multiplexed connection for addr, dialing and
// negotiating a new one when absent or dead. Dials happen outside the
// transport lock and are coalesced per peer: concurrent first-use callers
// share one dial instead of racing (see TestMuxSixteenConcurrentOneConn).
func (t *MuxTransport) conn(addr string, timeout time.Duration) (*muxConn, bool, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, false, errMuxClosed
	}
	if pinned, ok := t.gobOnly[addr]; ok {
		if time.Since(pinned) < muxGobRetryAfter {
			t.mu.Unlock()
			return nil, false, errGobPeer
		}
		delete(t.gobOnly, addr) // probe the peer again
	}
	if mc := t.conns[addr]; mc != nil && mc.alive() {
		t.mu.Unlock()
		return mc, true, nil
	}
	if d := t.dialing[addr]; d != nil {
		// Another caller is already negotiating; share its outcome. The dial
		// is bounded by the leader's timeout plus muxNegotiateTimeout, so the
		// wait is too.
		t.mu.Unlock()
		<-d.done
		if d.err != nil {
			return nil, false, d.err
		}
		return d.mc, true, nil
	}
	d := &muxDial{done: make(chan struct{})}
	t.dialing[addr] = d
	t.mu.Unlock()

	mc, err := t.dial(addr, timeout)

	t.mu.Lock()
	delete(t.dialing, addr)
	if err != nil {
		if errors.Is(err, errGobPeer) {
			t.gobOnly[addr] = time.Now()
		}
		t.mu.Unlock()
		d.err = err
		close(d.done)
		return nil, false, err
	}
	if t.closed {
		t.mu.Unlock()
		mc.fail(errMuxClosed)
		d.err = errMuxClosed
		close(d.done)
		return nil, false, errMuxClosed
	}
	t.conns[addr] = mc
	t.mu.Unlock()
	d.mc = mc
	close(d.done)
	return mc, false, nil
}

// dial opens and negotiates one multiplexed connection: TCP dial, binary
// hello, ack. A peer that closes or answers garbage instead of the ack is
// reported as errGobPeer (the caller pins it to the gob fallback); the
// negotiation itself is bounded by muxNegotiateTimeout so a silent gob peer
// cannot stall the call.
func (t *MuxTransport) dial(addr string, timeout time.Duration) (*muxConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("live: dial %s: %w", addr, err)
	}
	negotiate := muxNegotiateTimeout
	if timeout < negotiate {
		negotiate = timeout
	}
	conn.SetDeadline(time.Now().Add(negotiate)) //nolint:errcheck
	if err := wire.WriteHello(conn, wire.VersionBin); err != nil {
		conn.Close()
		return nil, fmt.Errorf("live: hello %s: %w", addr, err)
	}
	version, err := wire.ReadAck(conn)
	if err != nil || version != wire.VersionBin {
		conn.Close()
		return nil, fmt.Errorf("live: %s: %w", addr, errGobPeer)
	}
	conn.SetDeadline(time.Time{}) //nolint:errcheck
	t.m.dials.Inc()
	t.m.open.Inc()
	return newMuxConn(addr, conn, t.cfg.InFlight, t.m), nil
}

// severPeer force-closes the multiplexed connection to addr and the pooled
// gob connections underneath (fault injection: a simulated network sever).
func (t *MuxTransport) severPeer(addr string) {
	t.mu.Lock()
	mc := t.conns[addr]
	delete(t.conns, addr)
	t.mu.Unlock()
	if mc != nil {
		mc.fail(fmt.Errorf("live: sever %s: %w", addr, ErrInjectedFault))
	}
	t.pool.severPeer(addr)
}

// Close closes every multiplexed connection and switches the transport to
// fallback mode (pool, then one-shot once the pool is closed too).
// Idempotent.
func (t *MuxTransport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	conns := t.conns
	t.conns = make(map[string]*muxConn)
	t.mu.Unlock()
	for _, mc := range conns {
		mc.fail(errMuxClosed)
	}
}

// MuxStats snapshots the transport counters (also exported as live_mux_*
// metrics when built with a registry).
type MuxStats struct {
	Dials     int64
	Redials   int64
	Fallbacks int64
	OpenConns int64
	Calls     int64
	InFlight  int64
}

// Stats returns the transport's cumulative counters.
func (t *MuxTransport) Stats() MuxStats {
	return MuxStats{
		Dials:     t.m.dials.Value(),
		Redials:   t.m.redials.Value(),
		Fallbacks: t.m.fallbacks.Value(),
		OpenConns: t.m.open.Value(),
		Calls:     t.m.calls.Value(),
		InFlight:  t.m.inFlight.Value(),
	}
}

// Snapshot returns one MuxPeerStatus row per peer the transport has talked
// to (live connections plus gob-pinned peers), sorted by address — the
// payload behind Status.Mux and `qactl -status`.
func (t *MuxTransport) Snapshot() []MuxPeerStatus {
	t.mu.Lock()
	out := make([]MuxPeerStatus, 0, len(t.conns)+len(t.gobOnly))
	for addr, mc := range t.conns {
		inFlight, calls := mc.depth()
		out = append(out, MuxPeerStatus{Addr: addr, InFlight: inFlight, Calls: calls})
	}
	for addr := range t.gobOnly {
		out = append(out, MuxPeerStatus{Addr: addr, GobOnly: true})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
