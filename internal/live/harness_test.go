package live

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"distqa/internal/index"
	"distqa/internal/qa"
	"distqa/internal/shard"
)

// startShardedCluster is the sharded analogue of startCluster: n nodes on
// loopback, the collection text shared in-process, each node's *index*
// scoped to the sub-collections chained declustering places on it (K shards,
// R replicas, replica j of shard s on node (s+j) mod n). mut, when non-nil,
// adjusts each node's config before start (cache/detector tuning).
func startShardedCluster(t *testing.T, n, k, r int, mut func(i int, cfg *NodeConfig)) []*Node {
	t.Helper()
	kk, rr, err := shard.Normalize(k, r, n, len(liveColl.Subs))
	if err != nil {
		t.Fatalf("shard.Normalize(%d,%d,%d): %v", k, r, n, err)
	}
	nodes := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		subs := shard.HoldingSubs(i, n, kk, rr, len(liveColl.Subs))
		engine := qa.NewEngine(liveColl, index.BuildSubset(liveColl, subs))
		cfg := NodeConfig{
			Addr:           "127.0.0.1:0",
			Engine:         engine,
			HeartbeatEvery: 50 * time.Millisecond,
			RequestTimeout: 10 * time.Second,
			Shard:          ShardConfig{K: kk, R: rr, NodeIndex: i, ClusterSize: n},
		}
		if mut != nil {
			mut(i, &cfg)
		}
		node, err := StartNode(cfg)
		if err != nil {
			t.Fatalf("start sharded node %d: %v", i, err)
		}
		nodes = append(nodes, node)
		t.Cleanup(node.Close)
	}
	for i, a := range nodes {
		for j, b := range nodes {
			if i != j {
				a.AddPeer(b.Addr())
			}
		}
	}
	return nodes
}

// waitForCompleteShardMap blocks until node's composed shard map has a live
// replica for every shard.
func waitForCompleteShardMap(t *testing.T, node *Node) {
	t.Helper()
	waitFor(t, "complete shard map on "+node.Addr(), 5*time.Second, func() bool {
		return node.shardMap().Complete()
	})
}

// TestShardedClusterServes is the end-to-end table: for several (nodes, K, R)
// topologies the sharded scatter-gather ask must return the sequential
// oracle's answer from every node, and the status payload must expose the
// composed shard map.
func TestShardedClusterServes(t *testing.T) {
	cases := []struct{ n, k, r int }{
		{n: 2, k: 2, r: 1},
		{n: 3, k: 2, r: 2},
		{n: 3, k: 4, r: 2},
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("n%d_k%d_r%d", c.n, c.k, c.r), func(t *testing.T) {
			nodes := startShardedCluster(t, c.n, c.k, c.r, nil)
			for _, nd := range nodes {
				waitForPeers(t, nd, c.n-1)
				waitForCompleteShardMap(t, nd)
			}
			for i, f := range liveColl.Facts[:4] {
				nd := nodes[i%len(nodes)]
				resp, err := Ask(nd.Addr(), f.Question, 10*time.Second)
				if err != nil {
					t.Fatalf("sharded ask via %s: %v", nd.Addr(), err)
				}
				seq := liveEngine.AnswerSequential(f.Question)
				if len(seq.Answers) > 0 {
					if len(resp.Answers) == 0 {
						t.Fatalf("no answers for %q", f.Question)
					}
					if !strings.EqualFold(seq.Answers[0].Text, resp.Answers[0].Text) {
						t.Fatalf("sharded answer %q differs from sequential %q", resp.Answers[0].Text, seq.Answers[0].Text)
					}
				}
			}
			st, err := QueryStatus(nodes[0].Addr(), 2*time.Second)
			if err != nil {
				t.Fatalf("status: %v", err)
			}
			if st.Shard == nil {
				t.Fatal("sharded node reported no shard status")
			}
			if st.Shard.K != c.k || !st.Shard.Complete {
				t.Fatalf("shard status K=%d complete=%v, want K=%d complete", st.Shard.K, st.Shard.Complete, c.k)
			}
			if len(st.Shard.Shards) != c.k {
				t.Fatalf("shard table has %d rows, want %d", len(st.Shard.Shards), c.k)
			}
		})
	}
}

// TestShardedAskSurvivesReplicaDeath: with R=2 and chained declustering,
// killing any single node leaves at least one replica per shard; asks must
// fail over to the survivors and keep returning the oracle answer.
func TestShardedAskSurvivesReplicaDeath(t *testing.T) {
	nodes := startShardedCluster(t, 3, 2, 2, func(i int, cfg *NodeConfig) {
		cfg.Cache.Disabled = true // every ask exercises the scatter path
	})
	for _, nd := range nodes {
		waitForPeers(t, nd, 2)
		waitForCompleteShardMap(t, nd)
	}
	nodes[2].Close()
	for _, f := range liveColl.Facts[:4] {
		resp, err := Ask(nodes[0].Addr(), f.Question, 15*time.Second)
		if err != nil {
			t.Fatalf("ask after replica death: %v", err)
		}
		seq := liveEngine.AnswerSequential(f.Question)
		if len(seq.Answers) > 0 {
			if len(resp.Answers) == 0 {
				t.Fatalf("no answers after replica death for %q", f.Question)
			}
			if !strings.EqualFold(seq.Answers[0].Text, resp.Answers[0].Text) {
				t.Fatalf("failover answer %q differs from sequential %q", resp.Answers[0].Text, seq.Answers[0].Text)
			}
		}
	}
}

// TestShardMapEpochLifecycle pins the epoch rules: the map composes to
// complete once heartbeats flow (epoch bump from the fresh-tracker state),
// node death recomposes with a bump (and an incomplete map when the dead
// node held the only replica of a shard), and re-admission of a replacement
// bumps again back to complete.
func TestShardMapEpochLifecycle(t *testing.T) {
	const n, k, r = 3, 2, 2
	fast := func(i int, cfg *NodeConfig) {
		cfg.Detector = DetectorConfig{SuspectAfter: 2, DeadAfter: 3}
	}
	nodes := startShardedCluster(t, n, k, r, fast)
	for _, nd := range nodes {
		waitForPeers(t, nd, n-1)
	}
	waitForCompleteShardMap(t, nodes[0])
	m0 := nodes[0].shardMap()
	if m0.Epoch < 1 {
		t.Fatalf("composed map should have bumped the epoch: %+v", m0)
	}

	// Death: the dead peer's claims leave the composition -> epoch bump.
	nodes[2].Close()
	waitFor(t, "epoch bump after node death", 5*time.Second, func() bool {
		return nodes[0].shardMap().Epoch > m0.Epoch
	})
	m1 := nodes[0].shardMap()
	if !m1.Complete() {
		// R=2 chained declustering: every shard must still have a survivor.
		t.Fatalf("map incomplete after single death at R=2: missing %v", m1.Missing())
	}

	// Re-admission: a replacement node claiming the same shards (new address)
	// joins via heartbeats -> another bump, map complete again.
	subs := shard.HoldingSubs(2, n, k, r, len(liveColl.Subs))
	engine := qa.NewEngine(liveColl, index.BuildSubset(liveColl, subs))
	repl, err := StartNode(NodeConfig{
		Addr:           "127.0.0.1:0",
		Engine:         engine,
		HeartbeatEvery: 50 * time.Millisecond,
		Shard:          ShardConfig{K: k, R: r, NodeIndex: 2, ClusterSize: n},
	})
	if err != nil {
		t.Fatalf("start replacement: %v", err)
	}
	t.Cleanup(repl.Close)
	repl.AddPeer(nodes[0].Addr())
	repl.AddPeer(nodes[1].Addr())
	nodes[0].AddPeer(repl.Addr())
	nodes[1].AddPeer(repl.Addr())
	waitFor(t, "epoch bump after re-admission", 5*time.Second, func() bool {
		m := nodes[0].shardMap()
		return m.Epoch > m1.Epoch && m.Complete()
	})
}

// TestShardedStaleEpochCacheRejected: answer-cache entries are scoped by the
// shard-map epoch, so a placement change (node death) structurally invalidates
// every answer cached under the old epoch — the next ask is a cache miss that
// re-runs the pipeline against the new topology, not a stale hit.
func TestShardedStaleEpochCacheRejected(t *testing.T) {
	nodes := startShardedCluster(t, 3, 2, 2, func(i int, cfg *NodeConfig) {
		cfg.Detector = DetectorConfig{SuspectAfter: 2, DeadAfter: 3}
	})
	for _, nd := range nodes {
		waitForPeers(t, nd, 2)
	}
	waitForCompleteShardMap(t, nodes[0])
	f := liveColl.Facts[1]

	// Warm the cache, then prove the hit under a stable epoch.
	if _, err := Ask(nodes[0].Addr(), f.Question, 10*time.Second); err != nil {
		t.Fatalf("warm ask: %v", err)
	}
	resp, err := Ask(nodes[0].Addr(), f.Question, 10*time.Second)
	if err != nil {
		t.Fatalf("second ask: %v", err)
	}
	if !resp.CacheHit {
		t.Fatal("second ask under a stable epoch should hit the answer cache")
	}

	// Kill a node; once the epoch bumps, the cached entry must stop being
	// addressable.
	before := nodes[0].shardMap().Epoch
	nodes[2].Close()
	waitFor(t, "epoch bump", 5*time.Second, func() bool {
		return nodes[0].shardMap().Epoch > before
	})
	resp, err = Ask(nodes[0].Addr(), f.Question, 15*time.Second)
	if err != nil {
		t.Fatalf("ask after epoch bump: %v", err)
	}
	if resp.CacheHit {
		t.Fatal("stale-epoch answer must not be served from cache")
	}
	if len(resp.Answers) == 0 {
		t.Fatal("no answers after epoch bump")
	}
	seq := liveEngine.AnswerSequential(f.Question)
	if len(seq.Answers) > 0 && !strings.EqualFold(seq.Answers[0].Text, resp.Answers[0].Text) {
		t.Fatalf("post-bump answer %q differs from sequential %q", resp.Answers[0].Text, seq.Answers[0].Text)
	}
}

// TestShardedEstimateMatchesFullReplica: the gathered-df estimate served by a
// sharded node equals the full-replica engine's Equation-9 prediction byte
// for byte (exact global df correction over the wire).
func TestShardedEstimateMatchesFullReplica(t *testing.T) {
	nodes := startShardedCluster(t, 3, 4, 2, nil)
	for _, nd := range nodes {
		waitForPeers(t, nd, 2)
	}
	waitForCompleteShardMap(t, nodes[0])
	for _, f := range liveColl.Facts[:4] {
		analysis, _ := liveEngine.QuestionProcessing(f.Question)
		want := liveEngine.EstimateCost(analysis)
		got, err := QueryEstimate(nodes[0].Addr(), f.Question, 10*time.Second)
		if err != nil {
			t.Fatalf("estimate: %v", err)
		}
		if *got != want {
			t.Fatalf("sharded estimate diverges for %q:\nfull:  %+v\nshard: %+v", f.Question, want, *got)
		}
	}
}

// TestShardPRRejectsUnheldSub: a shard-scoped node must refuse sub-tasks for
// sub-collections its index does not cover, never silently return partial
// results.
func TestShardPRRejectsUnheldSub(t *testing.T) {
	nodes := startShardedCluster(t, 2, 2, 1, nil)
	// Node 0 holds shard 0 only (R=1): even subs. Ask it for an odd sub.
	_, err := roundTrip(nodes[0].Addr(), &Request{
		Kind:     kindShardPR,
		Shard:    1,
		Keywords: []string{"x"},
		Subs:     []int{1},
	}, 5*time.Second)
	if err == nil {
		t.Fatal("shardPR for an unheld sub should error")
	}
}
