package live

import (
	"encoding/gob"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingProxy forwards TCP connections to backend, counting accepts — the
// observable number of connections a client actually opened.
type countingProxy struct {
	ln      net.Listener
	accepts atomic.Int64
	done    chan struct{}
}

func startCountingProxy(t *testing.T, backend string) *countingProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &countingProxy{ln: ln, done: make(chan struct{})}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			p.accepts.Add(1)
			go func(c net.Conn) {
				defer c.Close()
				b, err := net.Dial("tcp", backend)
				if err != nil {
					return
				}
				defer b.Close()
				go io.Copy(b, c) //nolint:errcheck
				io.Copy(c, b)    //nolint:errcheck
			}(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return p
}

func (p *countingProxy) addr() string { return p.ln.Addr().String() }

// TestPoolConcurrentReuse hammers one peer with cap-many goroutines × many
// calls each and asserts the pool opened at most pool-cap connections in
// total: after the initial burst every call must reuse a pooled stream.
// This test is run under -race in CI.
func TestPoolConcurrentReuse(t *testing.T) {
	nodes := startCluster(t, 1)
	proxy := startCountingProxy(t, nodes[0].Addr())

	const (
		goroutines = DefaultMaxIdlePerPeer // 4
		calls      = 25
	)
	pool := NewPool(PoolConfig{})
	defer pool.Close()

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				if _, err := pool.QueryStatus(proxy.addr(), 5*time.Second); err != nil {
					errs[g] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if got := proxy.accepts.Load(); got > goroutines {
		t.Fatalf("pool opened %d connections for %d×%d calls, want ≤ %d (per-peer cap)",
			got, goroutines, calls, goroutines)
	}
	st := pool.Stats()
	total := int64(goroutines * calls)
	if st.Hits+st.Misses != total {
		t.Fatalf("hits(%d)+misses(%d) != calls(%d)", st.Hits, st.Misses, total)
	}
	if st.Misses > goroutines {
		t.Fatalf("pool missed %d times, want ≤ %d", st.Misses, goroutines)
	}
	if st.Redials != 0 {
		t.Fatalf("unexpected redials: %d", st.Redials)
	}
}

// startOneShotServer serves the wire protocol connection-per-request style:
// one decode, one encode, close. Against a pooled client every reused
// connection is stale by construction, forcing the transparent redial path.
func startOneShotServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				var req Request
				if err := gob.NewDecoder(c).Decode(&req); err != nil {
					return
				}
				gob.NewEncoder(c).Encode(&Response{ServedBy: "oneshot"}) //nolint:errcheck
			}(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// TestPoolStaleConnRedial kills the server side of the connection after
// every response (a one-shot server — equivalent to a peer closing a pooled
// conn mid-idle). Every call after the first picks up a dead pooled conn;
// the pool must detect it and transparently redial, and every call must
// still succeed.
func TestPoolStaleConnRedial(t *testing.T) {
	addr := startOneShotServer(t)
	pool := NewPool(PoolConfig{})
	defer pool.Close()

	const calls = 5
	for i := 0; i < calls; i++ {
		resp, err := pool.Call(addr, &Request{Kind: kindStatus}, 5*time.Second)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if resp.ServedBy != "oneshot" {
			t.Fatalf("call %d: served by %q", i, resp.ServedBy)
		}
		// Give the server's close a moment to land so the staleness is
		// visible to the next call rather than racing the response.
		time.Sleep(10 * time.Millisecond)
	}
	st := pool.Stats()
	if st.Redials == 0 {
		t.Fatal("no redials recorded against a one-shot server")
	}
	if st.Redials > calls-1 {
		t.Fatalf("redials = %d, want ≤ %d", st.Redials, calls-1)
	}
}

// TestPoolNoInheritedDeadline is the regression test for the deadline bug:
// a call with a short timeout, an idle gap longer than that timeout, then a
// second call. If per-call deadlines were not cleared before pooling, the
// reused connection would fail instantly on the expired deadline and force
// a redial.
func TestPoolNoInheritedDeadline(t *testing.T) {
	nodes := startCluster(t, 1)
	pool := NewPool(PoolConfig{})
	defer pool.Close()

	if _, err := pool.QueryStatus(nodes[0].Addr(), 200*time.Millisecond); err != nil {
		t.Fatalf("first call: %v", err)
	}
	time.Sleep(400 * time.Millisecond) // idle past the first call's deadline
	if _, err := pool.QueryStatus(nodes[0].Addr(), 5*time.Second); err != nil {
		t.Fatalf("second call on pooled conn: %v", err)
	}
	st := pool.Stats()
	if st.Redials != 0 {
		t.Fatalf("pooled conn needed %d redials after idle gap; inherited deadline?", st.Redials)
	}
	if st.Hits != 1 {
		t.Fatalf("second call should be a pool hit, stats: %+v", st)
	}
}

// TestPoolClosedFallsBackToOneShot verifies the graceful degradation: a
// closed pool still completes calls via fresh one-shot dials.
func TestPoolClosedFallsBackToOneShot(t *testing.T) {
	nodes := startCluster(t, 1)
	pool := NewPool(PoolConfig{})
	pool.Close()
	if _, err := pool.QueryStatus(nodes[0].Addr(), 5*time.Second); err != nil {
		t.Fatalf("closed-pool fallback: %v", err)
	}
	if open := pool.Stats().OpenConns; open != 0 {
		t.Fatalf("closed pool holds %d conns", open)
	}
}

// TestPoolIdleEviction ages pooled connections past the TTL and checks that
// EvictIdle closes them and the gauge drops to zero.
func TestPoolIdleEviction(t *testing.T) {
	nodes := startCluster(t, 1)
	pool := NewPool(PoolConfig{IdleTTL: 50 * time.Millisecond})
	defer pool.Close()
	if _, err := pool.QueryStatus(nodes[0].Addr(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if open := pool.Stats().OpenConns; open != 1 {
		t.Fatalf("open conns = %d, want 1", open)
	}
	time.Sleep(100 * time.Millisecond)
	pool.EvictIdle()
	st := pool.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions after TTL expiry")
	}
	if st.OpenConns != 0 {
		t.Fatalf("open conns = %d after eviction, want 0", st.OpenConns)
	}
}

// TestHeartbeatsRideTheMux checks that steady-state heartbeat traffic rides
// the multiplexed transport (calls accumulate over a single negotiated
// connection per peer) instead of per-beat dials or the gob pool.
func TestHeartbeatsRideTheMux(t *testing.T) {
	nodes := startCluster(t, 2)
	waitForPeers(t, nodes[0], 1)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if nodes[0].Mux().Stats().Calls >= 3 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	st := nodes[0].Mux().Stats()
	if st.Calls < 3 {
		t.Fatalf("heartbeats did not ride the mux transport: %+v", st)
	}
	if st.Dials != 1 || st.OpenConns != 1 {
		t.Fatalf("want exactly one multiplexed conn to the peer, got %+v", st)
	}
	if st.Fallbacks != 0 {
		t.Fatalf("heartbeats fell back to the gob pool: %+v", st)
	}
}
