package live

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"distqa/internal/obs"
	"distqa/internal/shard"
)

// Selective shard routing (PR-7). Every sharded node builds a term summary of
// each shard it holds (shard.BuildSummary: a bloom filter over the shard's
// vocabulary plus a capped df sketch) and advertises the summary *versions* on
// its regular heartbeats (LoadReport.SumVers — a few varints, never the
// bodies). A peer that sees a version it has not stored pulls the summary once
// (kindShardSummary); since versions are content checksums, replicas of the
// same shard advertise the same version and the pull happens once per content
// change, not once per beat — the gossip is incremental by construction.
//
// At question time the coordinator plans the scatter (shard.PlanRoute): a
// shard whose summary proves that no query keyword occurs anywhere in it is
// skipped — byte-identical to asking it, because Boolean-AND retrieval returns
// nothing at every relaxation level when every keyword's postings list is
// empty. Shards without a usable summary fall back to scatter, so correctness
// never depends on gossip progress.
//
// Staleness is epoch-scoped and deterministic: a stored summary is stamped
// with the shard-map epoch at store time and is usable only while the stamp
// matches the current epoch. When the map changes (node death, re-admission),
// every stored summary goes stale at once, the next question falls back to a
// full scatter for the non-held shards, and that scatter's successful gather
// revalidates the store (re-stamping summaries whose holder is still in the
// map) — so exactly one routed question pays the fallback per epoch bump,
// regardless of heartbeat interleaving. Local summaries describe this node's
// own immutable index and are never stale.

// RoutingConfig tunes selective shard routing (meaningful only with
// ShardConfig.K > 0). The zero value enables routing with the shard package's
// default summary caps.
type RoutingConfig struct {
	// Disabled pins the node to full scatter: no summaries are built,
	// gossiped, served or consulted (benchmark comparisons, kill switch).
	Disabled bool
	// SummaryBytes caps each summary's bloom filter
	// (default shard.DefaultFilterBytes).
	SummaryBytes int
	// TopTerms caps each summary's df sketch (default shard.DefaultTopTerms).
	TopTerms int
}

func (c RoutingConfig) summaryOptions() shard.SummaryOptions {
	return shard.SummaryOptions{MaxFilterBytes: c.SummaryBytes, TopTerms: c.TopTerms}
}

// routeStats is one shard's routing counter row (atomic: scatterPR plans
// concurrently with status snapshots).
type routeStats struct {
	skipped   atomic.Int64
	scattered atomic.Int64
	fallbacks atomic.Int64
}

// storedSummary is one gossiped summary in the store, stamped with the
// shard-map epoch current when it was stored or last revalidated.
type storedSummary struct {
	sum   *shard.Summary
	from  string // peer address the summary was pulled from
	epoch int64  // map epoch at store/revalidation time
}

// summaryStore holds the gossiped summaries of shards this node does not hold
// itself, plus the per-peer pull guard keeping heartbeat processing from
// stacking duplicate pulls.
type summaryStore struct {
	mu      sync.Mutex
	byShard map[int]*storedSummary
	pulling map[string]bool
}

func newSummaryStore() *summaryStore {
	return &summaryStore{
		byShard: make(map[int]*storedSummary),
		pulling: make(map[string]bool),
	}
}

// lookup returns the stored summary for shard s iff its epoch stamp matches
// the current map epoch.
func (st *summaryStore) lookup(s int, epoch int64) (*shard.Summary, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.byShard[s]
	if !ok || e.epoch != epoch {
		return nil, false
	}
	return e.sum, true
}

// versionOf returns the stored version for shard s (0 = none), ignoring
// staleness — version comparison decides whether to pull, epoch decides
// whether to route.
func (st *summaryStore) versionOf(s int) int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e, ok := st.byShard[s]; ok {
		return e.sum.Version
	}
	return 0
}

// put stores one pulled summary stamped with the given epoch.
func (st *summaryStore) put(sum *shard.Summary, from string, epoch int64) {
	st.mu.Lock()
	st.byShard[sum.Shard] = &storedSummary{sum: sum, from: from, epoch: epoch}
	st.mu.Unlock()
}

// revalidate re-stamps every stored summary whose holder appears in the
// current map to the current epoch, and drops summaries whose holder left the
// map. Called only after a successful full gather, so the deterministic
// "one fallback scatter per epoch bump" contract holds (heartbeat processing
// never re-stamps).
func (st *summaryStore) revalidate(m shard.Map) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for s, e := range st.byShard {
		held := false
		for _, addr := range m.Replicas[s] {
			if addr == e.from {
				held = true
				break
			}
		}
		if held {
			e.epoch = m.Epoch
		} else {
			delete(st.byShard, s)
		}
	}
}

// snapshot returns the stored entry for shard s (nil when absent) — status
// rendering only.
func (st *summaryStore) snapshot(s int) *storedSummary {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.byShard[s]
}

// tryBeginPull marks a pull to addr in flight; false when one already is.
func (st *summaryStore) tryBeginPull(addr string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.pulling[addr] {
		return false
	}
	st.pulling[addr] = true
	return true
}

func (st *summaryStore) endPull(addr string) {
	st.mu.Lock()
	delete(st.pulling, addr)
	st.mu.Unlock()
}

// routingEnabled reports whether this node builds, gossips and consults term
// summaries.
func (n *Node) routingEnabled() bool { return n.sumStore != nil }

// internInt64s is internShards for the heartbeat's summary-version vector:
// the decoded slice is the mux read loop's scratch buffer, so a stable copy
// must be stored — reusing the previously stored slice when the contents
// repeat keeps the steady state allocation-free.
func internInt64s(prev, cur []int64) []int64 {
	if len(cur) == 0 {
		return nil
	}
	if len(prev) == len(cur) {
		same := true
		for i := range cur {
			if prev[i] != cur[i] {
				same = false
				break
			}
		}
		if same {
			return prev
		}
	}
	return append([]int64(nil), cur...)
}

// observeSummaryVersions is the heartbeat hook: compare the peer's advertised
// summary versions against the store and pull what is missing or changed.
// The comparison is allocation-free in the steady state (every version
// matches); the pull itself runs in its own goroutine, guarded per peer, so
// the inline heartbeat dispatch on the mux read loop never blocks on a peer.
func (n *Node) observeSummaryVersions(from string, shards []int, vers []int64) {
	if !n.routingEnabled() || len(vers) != len(shards) {
		return
	}
	wanted := 0
	for i, s := range shards {
		if vers[i] == 0 || n.localSums[s] != nil {
			continue
		}
		if n.sumStore.versionOf(s) != vers[i] {
			wanted++
		}
	}
	if wanted == 0 {
		return
	}
	want := make([]int, 0, wanted)
	for i, s := range shards {
		if vers[i] == 0 || n.localSums[s] != nil {
			continue
		}
		if n.sumStore.versionOf(s) != vers[i] {
			want = append(want, s)
		}
	}
	if !n.sumStore.tryBeginPull(from) {
		return
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer n.sumStore.endPull(from)
		n.pullSummaries(from, want)
	}()
}

// pullSummaries fetches the term summaries of the given shards from addr and
// stores them stamped with the epoch current at completion. A failed pull is
// simply dropped: the next heartbeat re-advertises the versions and the pull
// is retried — routing meanwhile falls back to scatter for those shards.
func (n *Node) pullSummaries(addr string, shards []int) {
	n.nm.sumPullsSent.Inc()
	deadline := time.Now().Add(n.cfg.RequestTimeout)
	resp, err := n.callPeer(addr, &Request{Kind: kindShardSummary, Subs: shards}, deadline, 1)
	if err != nil {
		n.nm.sumPullFailures.Inc()
		return
	}
	epoch := n.currentEpoch()
	for i := range resp.Summaries {
		sum := resp.Summaries[i]
		if sum.Version == 0 || sum.Shard < 0 || sum.Shard >= n.shardK {
			continue
		}
		n.sumStore.put(&sum, addr, epoch)
	}
}

// handleShardSummary serves a summary pull: the term summaries of every
// requested shard this node holds.
func (n *Node) handleShardSummary(req *Request) *Response {
	n.nm.sumPullsServed.Inc()
	resp := &Response{Epoch: n.currentEpoch(), ServedBy: n.Addr()}
	if !n.routingEnabled() {
		return resp
	}
	for _, s := range req.Subs {
		if sum := n.localSums[s]; sum != nil {
			resp.Summaries = append(resp.Summaries, *sum)
		}
	}
	return resp
}

// planRoute plans the scatter for one question's keywords against the current
// shard map. ok=false means routing is off (unsharded, disabled) and the
// caller must scatter to every shard. Marker spans narrate each decision into
// the question's trace, so `qactl -slow` explains wide scatters; counters
// feed the status table and qatop's cluster skip rate.
func (n *Node) planRoute(keywords []string, m shard.Map, parent obs.SpanContext) (shard.RoutePlan, bool) {
	if !n.routingEnabled() {
		return shard.RoutePlan{}, false
	}
	plan := shard.PlanRoute(n.shardK, keywords, func(s int) (*shard.Summary, bool) {
		if sum := n.localSums[s]; sum != nil {
			// Local summaries describe this node's own immutable index —
			// always fresh, whatever the epoch.
			return sum, true
		}
		return n.sumStore.lookup(s, m.Epoch)
	})
	for _, d := range plan.Decisions {
		switch d.Action {
		case shard.RouteSkip:
			n.nm.routeSkips.Inc()
			n.routeStats[d.Shard].skipped.Add(1)
			n.spans.StartSpan(fmt.Sprintf("route:skip shard=%d", d.Shard), "", parent).End()
		case shard.RouteScatter:
			n.nm.routeScatters.Inc()
			n.routeStats[d.Shard].scattered.Add(1)
		case shard.RouteFallback:
			// Distinguish "never pulled" from "stored but stale after an epoch
			// bump" — the staleroute chaos scenario asserts on the latter.
			if n.sumStore.snapshot(d.Shard) != nil {
				n.nm.routeFallbackStale.Inc()
				n.spans.StartSpan(fmt.Sprintf("route:fallback shard=%d reason=stale", d.Shard), "", parent).End()
			} else {
				n.nm.routeFallbackMissing.Inc()
				n.spans.StartSpan(fmt.Sprintf("route:fallback shard=%d reason=missing", d.Shard), "", parent).End()
			}
			n.routeStats[d.Shard].fallbacks.Add(1)
		}
	}
	if plan.Selective() {
		n.nm.routePlansSelective.Inc()
	} else {
		n.nm.routePlansFallback.Inc()
	}
	if plan.ShortCircuit() {
		n.nm.routeShortCircuits.Inc()
		n.spans.StartSpan("route:shortcircuit", "", parent).End()
	}
	return plan, true
}
