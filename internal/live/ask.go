package live

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"distqa/internal/nlp"
	"distqa/internal/qa"
)

func decode(conn net.Conn, v any) error { return gob.NewDecoder(conn).Decode(v) }
func encode(conn net.Conn, v any) error { return gob.NewEncoder(conn).Encode(v) }

// handleAsk drives a full question: question-dispatcher forwarding, local
// QP/PR/PS/PO, AP partitioning across under-loaded peers, and answer
// merging. It is the live counterpart of core.System.answer.
func (n *Node) handleAsk(req *Request) *Response {
	start := time.Now()

	// Scheduling point 1: forward to a clearly less-loaded peer, once.
	if !req.Forwarded {
		if target, ok := n.pickLighterPeer(); ok {
			fwd := *req
			fwd.Forwarded = true
			if resp, err := roundTrip(target, &fwd, n.cfg.RequestTimeout); err == nil {
				resp.Forwarded = true
				return resp
			}
			// The peer died between heartbeat and forward; serve locally.
		}
	}

	// Admission: at most MaxConcurrent simultaneous questions.
	n.mu.Lock()
	n.queued++
	n.mu.Unlock()
	n.admit <- struct{}{}
	n.mu.Lock()
	n.queued--
	n.questions++
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		n.questions--
		n.mu.Unlock()
		<-n.admit
	}()

	// QP locally; PR+PS partitioned across idle peers (scheduling point 2);
	// PO centralized here.
	analysis, _ := n.engine.QuestionProcessing(req.Question)
	scored := n.partitionPR(analysis)
	accepted, _ := n.engine.OrderParagraphs(scored)

	// Scheduling point 3: partition AP across idle peers (plus ourselves).
	groups, apPeers := n.partitionAP(analysis, accepted)
	final, _ := n.engine.MergeAnswerSets(groups)

	return &Response{
		Answers:   final,
		ServedBy:  n.Addr(),
		APPeers:   apPeers,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
}

// pickLighterPeer returns a peer whose committed load (running + queued)
// is at least two questions below ours (the anti-useless-migration rule).
func (n *Node) pickLighterPeer() (string, bool) {
	self := n.loadReport()
	selfLoad := self.Questions + self.Queued
	best, bestLoad := "", selfLoad
	for _, p := range n.freshPeers() {
		if l := p.Questions + p.Queued; l < bestLoad {
			best, bestLoad = p.Addr, l
		}
	}
	if best != "" && selfLoad-bestLoad >= 2 {
		return best, true
	}
	return "", false
}

// partitionPR distributes the sub-collections of paragraph retrieval (and
// its co-located scoring) round-robin across this node and its idle peers.
// A failed remote sub-task is retried locally — the receiver-controlled
// recovery of Figure 6(b), simplified to one round.
func (n *Node) partitionPR(analysis nlp.QuestionAnalysis) []qa.ScoredParagraph {
	nSubs := n.engine.Set.Len()
	var idle []string
	for _, p := range n.freshPeers() {
		if p.Questions == 0 && p.Queued == 0 && p.APTasks == 0 {
			idle = append(idle, p.Addr)
		}
	}
	workers := len(idle) + 1
	if workers > nSubs {
		workers = nSubs
	}
	// Deal sub-collections round-robin: worker 0 is this node.
	assign := make([][]int, workers)
	for sub := 0; sub < nSubs; sub++ {
		assign[sub%workers] = append(assign[sub%workers], sub)
	}

	local := func(subs []int) []qa.ScoredParagraph {
		var out []qa.ScoredParagraph
		for _, sub := range subs {
			rs, _ := n.engine.RetrieveSub(analysis, sub)
			sc, _ := n.engine.ScoreParagraphs(analysis, rs)
			out = append(out, sc...)
		}
		return out
	}

	results := make([][]qa.ScoredParagraph, workers)
	var wg sync.WaitGroup
	for i := 1; i < workers; i++ {
		i := i
		addr := idle[i-1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := roundTrip(addr, &Request{
				Kind:     kindPRSubtask,
				Keywords: analysis.Keywords,
				Subs:     assign[i],
			}, n.cfg.RequestTimeout)
			if err != nil {
				results[i] = local(assign[i]) // failure recovery
				return
			}
			paras, err := n.resolveRefs(resp.ParaRefs)
			if err != nil {
				results[i] = local(assign[i])
				return
			}
			results[i] = paras
		}()
	}
	results[0] = local(assign[0])
	wg.Wait()
	var all []qa.ScoredParagraph
	for _, r := range results {
		all = append(all, r...)
	}
	return all
}

// partitionAP splits the accepted paragraphs between this node and its idle
// peers with an interleaved (ISEND-style) split — the accepted array is
// rank-ordered, so interleaving equalises granularity. Failed remote
// sub-tasks are re-processed locally, the live analogue of the
// sender-controlled recovery of Figure 5(c).
func (n *Node) partitionAP(analysis nlp.QuestionAnalysis, accepted []qa.ScoredParagraph) ([][]qa.Answer, int) {
	var idle []string
	for _, p := range n.freshPeers() {
		if p.Questions == 0 && p.Queued == 0 && p.APTasks == 0 {
			idle = append(idle, p.Addr)
		}
	}
	workers := len(idle) + 1
	if len(accepted) < 2*workers {
		workers = 1 // not worth distributing
	}
	if workers == 1 {
		answers, _ := n.engine.ExtractAnswers(analysis, accepted)
		return [][]qa.Answer{answers}, 1
	}

	parts := make([][]qa.ScoredParagraph, workers)
	for i, sp := range accepted {
		parts[i%workers] = append(parts[i%workers], sp)
	}

	groups := make([][]qa.Answer, workers)
	var wg sync.WaitGroup
	for i := 1; i < workers; i++ {
		i := i
		addr := idle[i-1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			refs := make([]ParaRef, len(parts[i]))
			for k, sp := range parts[i] {
				refs[k] = ParaRef{ID: sp.Para.ID, Matched: sp.Matched, Score: sp.Score}
			}
			resp, err := roundTrip(addr, &Request{
				Kind:       kindAPSubtask,
				Keywords:   analysis.Keywords,
				AnswerType: int(analysis.AnswerType),
				ParaRefs:   refs,
			}, n.cfg.RequestTimeout)
			if err != nil {
				// Failure recovery: process the partition locally.
				answers, _ := n.engine.ExtractAnswers(analysis, parts[i])
				groups[i] = answers
				return
			}
			groups[i] = resp.Answers
		}()
	}
	answers, _ := n.engine.ExtractAnswers(analysis, parts[0])
	groups[0] = answers
	wg.Wait()
	return groups, workers
}

// Ask sends a question to any node of a live cluster and returns the
// response (the client side used by cmd/qactl and the examples).
func Ask(addr, question string, timeout time.Duration) (*Response, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return roundTrip(addr, &Request{Kind: kindAsk, Question: question}, timeout)
}

// QueryStatus fetches a node's status.
func QueryStatus(addr string, timeout time.Duration) (*Status, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	resp, err := roundTrip(addr, &Request{Kind: kindStatus}, timeout)
	if err != nil {
		return nil, err
	}
	if resp.Status == nil {
		return nil, fmt.Errorf("live: %s returned no status", addr)
	}
	return resp.Status, nil
}
