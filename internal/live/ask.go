package live

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"distqa/internal/index"
	"distqa/internal/nlp"
	"distqa/internal/obs"
	"distqa/internal/qa"
	"distqa/internal/qcache"
)

// handleAsk wraps the full serving path with the PR-6 observability plane:
// it times the whole question (cache front included), feeds the "ask" SLO
// window, and offers the completed record — span tree plus annotations — to
// the slow-question flight recorder.
func (n *Node) handleAsk(req *Request) *Response {
	start := time.Now()
	resp := n.serveAsk(req)
	dur := time.Since(start)
	var qid int64
	if len(resp.Spans) > 0 {
		// Every span in a question's tree shares its QID; cache hits and
		// coalesced followers open marker spans, so the tree is never empty.
		qid = resp.Spans[0].QID
	}
	n.slo.Observe("ask", dur.Seconds(), qid, resp.Err != "")
	// ShouldConsider gates the record build itself: once the ring is full of
	// genuinely slow questions, a cache-hit ask must not pay for a span-tree
	// copy and annotation formatting it would only throw away.
	if qid != 0 && n.flight.ShouldConsider(dur) {
		rec := obs.QuestionRecord{
			QID:      qid,
			Question: req.Question,
			Node:     n.Addr(),
			Err:      resp.Err,
			Start:    start,
			Duration: dur,
			Spans:    append([]obs.Span(nil), resp.Spans...),
		}
		if resp.CacheHit {
			rec.Annotations = append(rec.Annotations, "cache-hit")
		}
		if resp.Coalesced {
			rec.Annotations = append(rec.Annotations, "coalesced")
		}
		if resp.Forwarded {
			rec.Annotations = append(rec.Annotations, "forwarded")
		}
		if n.sharded() {
			rec.Annotations = append(rec.Annotations, fmt.Sprintf("shards=%d", n.shardK))
		}
		recovers, routeSkips, routeFallbacks := 0, 0, 0
		for i := range resp.Spans {
			switch name := resp.Spans[i].Name; {
			case strings.HasPrefix(name, "recover:"):
				recovers++
			case strings.HasPrefix(name, "route:skip"):
				routeSkips++
			case strings.HasPrefix(name, "route:fallback"):
				routeFallbacks++
			}
		}
		if recovers > 0 {
			rec.Annotations = append(rec.Annotations, fmt.Sprintf("recoveries=%d", recovers))
		}
		// Routing verdicts explain the fan-out width: a wide scatter with
		// fallbacks is gossip lag or an epoch bump, not a routing miss.
		if routeSkips > 0 {
			rec.Annotations = append(rec.Annotations, fmt.Sprintf("routeSkips=%d", routeSkips))
		}
		if routeFallbacks > 0 {
			rec.Annotations = append(rec.Annotations, fmt.Sprintf("routeFallbacks=%d", routeFallbacks))
		}
		n.flight.Consider(rec)
	}
	if !req.WantSpans && len(resp.Spans) > 0 {
		// The tree was server-side payload (SLO window, flight recorder,
		// annotations above); drop it from the wire unless the client asked
		// to trace. Strip on a copy — a coalesced leader's Response is shared
		// with followers still reading it.
		stripped := *resp
		stripped.Spans = nil
		return &stripped
	}
	return resp
}

// serveAsk is the cache-and-coalesce front of the question path (PR-4):
// an answer-cache hit skips the entire pipeline (no admission, no QP, no
// fan-out); a miss runs the pipeline under a singleflight group so a burst
// of identical questions executes once — the leader runs askPipeline, every
// concurrent duplicate blocks and shares the result (Response.Coalesced).
// With caching disabled (chaos runs), this is a transparent passthrough to
// the PR-3 serving path.
func (n *Node) serveAsk(req *Request) *Response {
	start := time.Now()
	if n.askFlight == nil {
		return n.askPipeline(req, start)
	}
	key := qcache.Normalize(req.Question)
	if n.sharded() {
		// Scope answer-cache entries by the shard-map epoch: a cached answer
		// encodes which replicas served it, and after a placement change
		// (node death, re-admission) stale-epoch entries must miss rather
		// than mask the new topology. The epoch prefix makes rejection
		// structural — old entries simply stop being addressable and age out
		// of the LRU.
		key = "e" + strconv.FormatInt(n.shardMap().Epoch, 10) + "|" + key
	}
	if v, ok := n.answerCache.Get(key); ok {
		n.nm.cacheAnsHits.Inc()
		return n.cachedResponse(req, v.(*cachedAnswer), start, false)
	}
	n.nm.cacheAnsMisses.Inc()
	type flightOut struct {
		resp *Response
		ca   *cachedAnswer
	}
	v, shared, _ := n.askFlight.Do(key, func() (any, error) {
		resp := n.askPipeline(req, start)
		var ca *cachedAnswer
		if resp.Err == "" {
			ca = &cachedAnswer{answers: resp.Answers, apPeers: resp.APPeers}
			n.answerCache.Put(key, ca)
		}
		return flightOut{resp: resp, ca: ca}, nil
	})
	out := v.(flightOut)
	if !shared {
		return out.resp
	}
	// Coalesced follower: synthesize a response of its own (its own span
	// tree and timing) around the leader's answers.
	n.nm.cacheAnsCoalesced.Inc()
	if out.ca == nil {
		// The leader failed; hand the follower the same failure.
		r := *out.resp
		r.Coalesced = true
		return &r
	}
	return n.cachedResponse(req, out.ca, start, true)
}

// askPipeline drives a full question: question-dispatcher forwarding, local
// QP/PR/PS/PO, AP partitioning across under-loaded peers, and answer
// merging. It is the live counterpart of core.System.answer.
//
// Observability: the whole question runs under one span tree. The root
// "ask" span joins req.Span when the question was forwarded here (so the
// originating node's tree continues on this node); every pipeline stage and
// every remote sub-task becomes a child span, and the completed tree —
// including spans recorded on *other* nodes and shipped back in sub-task
// responses — travels to the client in Response.Spans.
func (n *Node) askPipeline(req *Request, start time.Time) *Response {
	// Per-question deadline budget: every remote call this question makes
	// (forward, PR sub-tasks, AP sub-tasks), including retries and
	// backoffs, shares this one allowance. When it runs out, remaining
	// remote work degrades to local execution immediately. An edge deadline
	// (Request.TimeoutMS, set by the gateway) clamps the budget further, so
	// ShardPR scatter legs and PR/AP sub-tasks never outlive the client.
	budget := start.Add(n.retryPolicy.Budget)
	var edge time.Time
	if req.TimeoutMS > 0 {
		edge = start.Add(time.Duration(req.TimeoutMS) * time.Millisecond)
		if edge.Before(budget) {
			budget = edge
		}
	}
	root := n.spans.StartSpan("ask", "", req.Span)
	ctx := root.Context()
	if req.Forwarded {
		n.nm.forwardsIn.Inc()
	}

	// Scheduling point 1: forward to a clearly less-loaded peer, once. The
	// candidate set excludes suspect/dead/breaker-open peers, and a failed
	// forward degrades gracefully to local execution (the same local
	// fallback the PR/AP sub-tasks have always had).
	if !req.Forwarded {
		if target, ok := n.pickLighterPeer(); ok {
			fwd := *req
			fwd.Forwarded = true
			if !edge.IsZero() {
				// The forwarded request carries the budget *remaining* at
				// forward time, so the serving node's clamp lands on the same
				// wall-clock instant as ours.
				remaining := time.Until(edge).Milliseconds()
				if remaining < 1 {
					remaining = 1
				}
				fwd.TimeoutMS = remaining
			}
			// The forwarding node always wants the remote tree back: it adopts
			// the spans into its own ring (flight recorder, local qactl -slow)
			// and handleAsk re-strips per the original client's WantSpans.
			fwd.WantSpans = true
			fwdSpan := n.spans.StartSpan("forward", "", ctx)
			fwd.Span = fwdSpan.Context()
			fwdStart := time.Now()
			if resp, err := n.callPeer(target, &fwd, budget, 0); err == nil {
				n.slo.Observe("forward", time.Since(fwdStart).Seconds(), ctx.QID, false)
				n.nm.forwardsOut.Inc()
				resp.Forwarded = true
				// Adopt the remote tree locally (for this node's span view),
				// close our spans, and ship the full tree to the client.
				for _, s := range resp.Spans {
					n.spans.Record(s)
				}
				fs := fwdSpan.End()
				rs := root.End()
				resp.Spans = append(resp.Spans, fs, rs)
				return resp
			}
			// The peer died between heartbeat and forward; serve locally.
			// Blame the specific peer so the chaos harness can attribute
			// the recovery (the marker span keeps it visible in traces).
			n.slo.Observe("forward", time.Since(fwdStart).Seconds(), ctx.QID, true)
			n.nm.failForward.Inc()
			n.spans.StartSpan("recover:forward peer="+target, "", fwdSpan.Context()).End()
			fwdSpan.End()
		}
	}

	// Admission: at most MaxConcurrent simultaneous questions. A question
	// with an edge deadline waits for a slot only until the deadline — work
	// the client has already abandoned must not occupy a slot.
	n.mu.Lock()
	n.queued++
	n.mu.Unlock()
	n.nm.queueDepth.Inc()
	admitted := true
	if edge.IsZero() {
		n.admit <- struct{}{}
	} else {
		wait := time.NewTimer(time.Until(edge))
		select {
		case n.admit <- struct{}{}:
			wait.Stop()
		case <-wait.C:
			admitted = false
		}
	}
	n.mu.Lock()
	n.queued--
	if admitted {
		n.questions++
	}
	n.mu.Unlock()
	n.nm.queueDepth.Dec()
	if !admitted {
		rs := root.End()
		return &Response{
			Err:       ErrDeadlineMsg,
			ServedBy:  n.Addr(),
			ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
			Spans:     n.spans.ByQID(rs.QID),
		}
	}
	n.nm.active.Inc()
	defer func() {
		n.mu.Lock()
		n.questions--
		n.mu.Unlock()
		n.nm.active.Dec()
		<-n.admit
	}()

	// QP locally; PR+PS partitioned across idle peers (scheduling point 2);
	// PO centralized here.
	qpSpan := n.spans.StartSpan("stage:QP", obs.StageQP, ctx)
	analysis, _ := n.engine.QuestionProcessing(req.Question)
	qpSpan.End()

	prPart := n.spans.StartSpan("partition:PR", "", ctx)
	var scored []qa.ScoredParagraph
	if n.sharded() {
		// Sharded serving path: scatter one PR sub-task per shard to the
		// least-PR-loaded live replica, failover through survivors, merge.
		var err error
		scored, err = n.scatterPR(analysis, prPart.Context(), budget, int(ctx.QID))
		if err != nil {
			prPart.End()
			rs := root.End()
			return &Response{
				Err:       err.Error(),
				ServedBy:  n.Addr(),
				ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
				Spans:     n.spans.ByQID(rs.QID),
			}
		}
	} else {
		scored = n.partitionPR(analysis, prPart.Context(), budget)
	}
	prPart.End()

	poSpan := n.spans.StartSpan("stage:PO", obs.StagePO, ctx)
	accepted, _ := n.engine.OrderParagraphs(scored)
	poSpan.End()

	// Scheduling point 3: partition AP across idle peers (plus ourselves).
	apPart := n.spans.StartSpan("partition:AP", "", ctx)
	groups, apPeers := n.partitionAP(analysis, accepted, apPart.Context(), budget)
	apPart.End()

	mergeSpan := n.spans.StartSpan("stage:MERGE", obs.StageMerge, ctx)
	final, _ := n.engine.MergeAnswerSets(groups)
	mergeSpan.End()

	n.nm.questions.Inc()
	n.nm.askSeconds.Observe(time.Since(start).Seconds())
	rs := root.End()

	return &Response{
		Answers:   final,
		ServedBy:  n.Addr(),
		APPeers:   apPeers,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		Spans:     n.spans.ByQID(rs.QID),
	}
}

// pickLighterPeer returns a peer whose committed load (running + queued)
// is at least two questions below ours (the anti-useless-migration rule).
// Only detector-alive, breaker-admitting peers are candidates.
func (n *Node) pickLighterPeer() (string, bool) {
	self := n.loadReport()
	selfLoad := self.Questions + self.Queued
	best, bestLoad := "", selfLoad
	for _, p := range n.candidatePeers() {
		if l := p.Questions + p.Queued; l < bestLoad {
			best, bestLoad = p.Addr, l
		}
	}
	if best != "" && selfLoad-bestLoad >= 2 {
		return best, true
	}
	return "", false
}

// partitionPR distributes the sub-collections of paragraph retrieval (and
// its co-located scoring) round-robin across this node and its idle peers.
// A failed remote sub-task is retried locally — the receiver-controlled
// recovery of Figure 6(b), simplified to one round. Local work records
// stage:PR/stage:PS spans; remote work ships its pr-subtask spans back and
// they are adopted under the same parent.
func (n *Node) partitionPR(analysis nlp.QuestionAnalysis, parent obs.SpanContext, budget time.Time) []qa.ScoredParagraph {
	globals := n.engine.Set.Globals()
	nSubs := len(globals)
	var idle []string
	for _, p := range n.candidatePeers() {
		if p.Questions == 0 && p.Queued == 0 && p.APTasks == 0 {
			idle = append(idle, p.Addr)
		}
	}
	workers := len(idle) + 1
	if workers > nSubs {
		workers = nSubs
	}
	// Deal sub-collections round-robin: worker 0 is this node. Subs travel
	// by global id (positional == global on full replicas; remote peers
	// validate coverage via Set.Has).
	assign := make([][]int, workers)
	for i, sub := range globals {
		assign[i%workers] = append(assign[i%workers], sub)
	}

	local := func(subs []int) []qa.ScoredParagraph {
		// PR partial cache: identical (keywords, assignment) work — the same
		// question again, or a different question sharing its keywords — is
		// served from memory. A hit is marked with a span so traces stay
		// honest about which stages actually ran.
		key := prCacheKey(analysis.Keywords, subs)
		if v, ok := n.prCache.Get(key); ok {
			n.nm.cachePRHits.Inc()
			n.spans.StartSpan("cache:pr", "", parent).End()
			cached := v.([]qa.ScoredParagraph)
			return append([]qa.ScoredParagraph(nil), cached...)
		}
		if n.prCache != nil {
			n.nm.cachePRMisses.Inc()
		}
		prSpan := n.spans.StartSpan("stage:PR", obs.StagePR, parent)
		var rs []index.Retrieved
		for _, sub := range subs {
			r, _ := n.engine.RetrieveSub(analysis, sub)
			rs = append(rs, r...)
		}
		prSpan.End()
		psSpan := n.spans.StartSpan("stage:PS", obs.StagePS, parent)
		sc, _ := n.engine.ScoreParagraphs(analysis, rs)
		psSpan.End()
		n.prCache.Put(key, append([]qa.ScoredParagraph(nil), sc...))
		return sc
	}

	results := make([][]qa.ScoredParagraph, workers)
	var wg sync.WaitGroup
	for i := 1; i < workers; i++ {
		i := i
		addr := idle[i-1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.nm.prSent.Inc()
			resp, err := n.callPeer(addr, &Request{
				Kind:     kindPRSubtask,
				Span:     parent,
				Keywords: analysis.Keywords,
				Subs:     assign[i],
			}, budget, 0)
			if err != nil {
				// Failure recovery with blame: the aggregate counter keeps
				// its historical meaning, the per-peer counter and marker
				// span record *which* peer the retry-locally path blamed.
				n.nm.failPR.Inc()
				n.spans.StartSpan("recover:pr peer="+addr, "", parent).End()
				results[i] = local(assign[i]) // failure recovery
				return
			}
			paras, err := n.resolveRefs(resp.ParaRefs)
			if err != nil {
				n.nm.failPR.Inc()
				n.recordFailure("pr", addr, err)
				n.spans.StartSpan("recover:pr peer="+addr, "", parent).End()
				results[i] = local(assign[i])
				return
			}
			for _, s := range resp.Spans {
				n.spans.Record(s)
			}
			results[i] = paras
		}()
	}
	results[0] = local(assign[0])
	wg.Wait()
	var all []qa.ScoredParagraph
	for _, r := range results {
		all = append(all, r...)
	}
	return all
}

// minAPParasPerWorker is the AP fan-out break-even: below this many accepted
// paragraphs per worker, a remote AP sub-task's round-trip costs more than
// the extraction it offloads, so the partitioner narrows (possibly to fully
// local execution).
const minAPParasPerWorker = 8

// partitionAP splits the accepted paragraphs between this node and its idle
// peers with an interleaved (ISEND-style) split — the accepted array is
// rank-ordered, so interleaving equalises granularity. Failed remote
// sub-tasks are re-processed locally, the live analogue of the
// sender-controlled recovery of Figure 5(c). Remote ap-subtask spans carry
// the originating question's ID and come back in the sub-task response.
func (n *Node) partitionAP(analysis nlp.QuestionAnalysis, accepted []qa.ScoredParagraph, parent obs.SpanContext, budget time.Time) ([][]qa.Answer, int) {
	var idle []string
	for _, p := range n.candidatePeers() {
		if p.Questions == 0 && p.Queued == 0 && p.APTasks == 0 {
			idle = append(idle, p.Addr)
		}
	}
	// Distribute only when every worker gets enough paragraphs to out-earn
	// its round-trip: an AP sub-task ships refs out and answers back
	// (~tens of µs on loopback), while extracting from a handful of
	// paragraphs is cheaper than that wire cost — the PR-2 adaptive-fanout
	// lesson applied to AP. Grouping never changes the answer bytes
	// (MergeAnswerSets is partition-insensitive), so the clamp is pure
	// scheduling.
	workers := len(idle) + 1
	if w := len(accepted) / minAPParasPerWorker; w < workers {
		workers = w
	}
	if workers < 2 {
		workers = 1
	}
	localAP := func(paras []qa.ScoredParagraph) []qa.Answer {
		span := n.spans.StartSpan("stage:AP", obs.StageAP, parent)
		answers, _ := n.engine.ExtractAnswers(analysis, paras)
		span.End()
		return answers
	}
	if workers == 1 {
		return [][]qa.Answer{localAP(accepted)}, 1
	}

	parts := make([][]qa.ScoredParagraph, workers)
	for i, sp := range accepted {
		parts[i%workers] = append(parts[i%workers], sp)
	}

	groups := make([][]qa.Answer, workers)
	var wg sync.WaitGroup
	for i := 1; i < workers; i++ {
		i := i
		addr := idle[i-1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			refs := make([]ParaRef, len(parts[i]))
			for k, sp := range parts[i] {
				refs[k] = ParaRef{ID: sp.Para.ID, Matched: sp.Matched, Score: sp.Score}
			}
			n.nm.apSent.Inc()
			resp, err := n.callPeer(addr, &Request{
				Kind:       kindAPSubtask,
				Span:       parent,
				Keywords:   analysis.Keywords,
				AnswerType: int(analysis.AnswerType),
				ParaRefs:   refs,
			}, budget, 0)
			if err != nil {
				// Failure recovery: process the partition locally, blaming
				// the peer that failed (counter + marker span).
				n.nm.failAP.Inc()
				n.spans.StartSpan("recover:ap peer="+addr, "", parent).End()
				groups[i] = localAP(parts[i])
				return
			}
			for _, s := range resp.Spans {
				n.spans.Record(s)
			}
			groups[i] = resp.Answers
		}()
	}
	groups[0] = localAP(parts[0])
	wg.Wait()
	return groups, workers
}

// ErrDeadlineMsg is the Response.Err a node returns when a question's edge
// deadline (Request.TimeoutMS) expires before the question could be served —
// still queued for admission when the budget ran out. Gateways map it to
// 504 Gateway Timeout.
const ErrDeadlineMsg = "edge deadline exceeded"

// Ask sends a question to any node of a live cluster and returns the
// response (the client side used by cmd/qactl and the examples).
func Ask(addr, question string, timeout time.Duration) (*Response, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return roundTrip(addr, &Request{Kind: kindAsk, Question: question, WantSpans: true}, timeout)
}

// QueryEstimate asks a node for a cost prediction of question (Equation 9).
// On a sharded node the per-sub document frequencies are gathered from one
// live replica per shard and folded with the exact global df correction, so
// the estimate matches a full-replica node byte for byte.
func QueryEstimate(addr, question string, timeout time.Duration) (*qa.CostEstimate, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	resp, err := roundTrip(addr, &Request{Kind: kindEstimate, Question: question}, timeout)
	if err != nil {
		return nil, err
	}
	if resp.Estimate == nil {
		return nil, fmt.Errorf("live: %s returned no estimate", addr)
	}
	return resp.Estimate, nil
}

// QueryStatus fetches a node's status.
func QueryStatus(addr string, timeout time.Duration) (*Status, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	resp, err := roundTrip(addr, &Request{Kind: kindStatus}, timeout)
	if err != nil {
		return nil, err
	}
	if resp.Status == nil {
		return nil, fmt.Errorf("live: %s returned no status", addr)
	}
	return resp.Status, nil
}

// QueryMetrics fetches a node's metrics in the Prometheus text exposition
// format over the TCP status protocol (the transport behind
// `qactl -metrics`; the same text is served by qanode's -metrics-addr HTTP
// endpoint).
func QueryMetrics(addr string, timeout time.Duration) (string, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	resp, err := roundTrip(addr, &Request{Kind: kindMetrics}, timeout)
	if err != nil {
		return "", err
	}
	return resp.MetricsText, nil
}
