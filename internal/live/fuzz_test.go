package live

import (
	"bytes"
	"encoding/gob"
	"testing"
	"time"

	"distqa/internal/obs"
	"distqa/internal/qa"
	"distqa/internal/shard"
)

// encodeFrame gob-encodes one wire message (Request or Response) to raw
// bytes, exactly as the client or server would put it on the wire. Shared by
// the fuzz seeds below and by the frame-guard tests in faulttol_test.go.
func encodeFrame(t testing.TB, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("encodeFrame: %v", err)
	}
	return buf.Bytes()
}

// FuzzDecodeRequest fuzzes the server-side decode path of the wire protocol
// (the same decodeRequestFrame the keep-alive loop runs under the frame
// guard). The property: arbitrary bytes must produce either a Request or an
// error — never a panic, and never unbounded memory growth (the frame guard
// caps a single frame at MaxFrameBytes).
func FuzzDecodeRequest(f *testing.F) {
	// Seed with every request kind the protocol actually uses, so the fuzzer
	// starts from structurally valid gob streams and mutates from there.
	seeds := []*Request{
		{Kind: kindAsk, Question: "what is the capital of France?"},
		{Kind: kindAsk, Question: "who?", Forwarded: true,
			Span: obs.SpanContext{QID: 42, Span: 7}},
		{Kind: kindAsk, Question: "when?", TimeoutMS: 1500},
		{Kind: kindPRSubtask, Keywords: []string{"capital", "france"}, Subs: []int{0, 2}},
		{Kind: kindAPSubtask, Keywords: []string{"capital"}, AnswerType: 1,
			ParaRefs: []ParaRef{{ID: 7, Matched: 2, Score: 3.5}}},
		{Kind: kindHeartbeat, Load: LoadReport{
			Addr: "127.0.0.1:9001", Questions: 1, Queued: 2, APTasks: 3,
			Sent: time.Unix(1_000_000_000, 0)}},
		// Sharded shapes (PR-5): shard-scoped PR fan-out, df gather, and a
		// heartbeat carrying shard-map claims.
		{Kind: kindShardPR, Shard: 1, Epoch: 4,
			Keywords: []string{"capital", "france"}, Subs: []int{1, 3}},
		{Kind: kindShardDF, Keywords: []string{"capital"}, Subs: []int{0, 2}},
		{Kind: kindHeartbeat, Load: LoadReport{
			Addr: "127.0.0.1:9003", Questions: 1, Shards: []int{0, 2},
			Sent: time.Unix(1_000_000_000, 0)}},
		{Kind: kindEstimate, Question: "what is the capital of France?"},
		{Kind: kindStatus},
		{Kind: kindMetrics},
		// Selective-routing shapes (PR-7): a summary pull and a heartbeat
		// advertising summary versions alongside its shard claims.
		{Kind: kindShardSummary, Subs: []int{0, 2}},
		{Kind: kindHeartbeat, Load: LoadReport{
			Addr: "127.0.0.1:9004", Questions: 1, Shards: []int{1, 3},
			SumVers: []int64{77, 0}, Sent: time.Unix(1_000_000_000, 0)}},
	}
	for _, req := range seeds {
		f.Add(encodeFrame(f, req))
	}
	// Degenerate seeds: empty, truncated header, junk.
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte("not a gob stream"))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeRequestFrame(data)
		if err != nil {
			return // malformed input must error, and did
		}
		if req == nil {
			t.Fatal("decodeRequestFrame returned nil request and nil error")
		}
	})
}

// FuzzDecodeResponse fuzzes the client-side decode path (connection pool and
// one-shot roundTrip). Same property as FuzzDecodeRequest: error or value,
// never a panic or hang.
func FuzzDecodeResponse(f *testing.F) {
	seeds := []*Response{
		{Answers: []qa.Answer{{Text: "Paris", Score: 2.5}},
			ServedBy: "127.0.0.1:9001", APPeers: 2, ElapsedMS: 1.25},
		{Err: "remote failure"},
		{ParaRefs: []ParaRef{{ID: 1, Matched: 1, Score: 0.5}, {ID: 9, Matched: 3, Score: 2}}},
		{Status: &Status{
			Addr: "127.0.0.1:9001", Collection: "tiny", Paragraphs: 64,
			Peers:      []LoadReport{{Addr: "127.0.0.1:9002", Questions: 1}},
			PeerHealth: []PeerHealth{{Addr: "127.0.0.1:9002", State: PeerAlive.String()}},
			Uptime:     3 * time.Second,
		}},
		{MetricsText: "# TYPE live_questions_total counter\nlive_questions_total 4\n"},
		{Spans: []obs.Span{{QID: 42, ID: 1, Name: "ask", Node: "127.0.0.1:9001"}}},
		{Forwarded: true, ServedBy: "127.0.0.1:9002"},
		// Sharded shapes (PR-5): shard-scoped PR result with epoch echo, df
		// gather rows, and the gob-embedded estimate payload.
		{ParaRefs: []ParaRef{{ID: 4, Matched: 2, Score: 1.5}}, Epoch: 3,
			ServedBy: "127.0.0.1:9002"},
		{DFs: []ShardDF{{Sub: 0, DF: []int64{3, 0, 7}}, {Sub: 3, DF: []int64{1}}}, Epoch: 2},
		{Estimate: &qa.CostEstimate{Documents: 12.5, Paragraphs: 3.25,
			CPUSeconds: 0.75, DiskBytes: 4096}},
		// Selective-routing shape (PR-7): a term-summary pull result.
		{Summaries: []shard.Summary{{Shard: 0, Version: 9, Terms: 2, Docs: 5,
			Hashes: 6, Bits: []uint64{1, 0}, TopDF: []shard.TermDF{{Term: "capit", DF: 3}}}},
			Epoch: 4, ServedBy: "127.0.0.1:9002"},
	}
	for _, resp := range seeds {
		f.Add(encodeFrame(f, resp))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff})
	f.Add([]byte("garbage response bytes"))

	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := decodeResponseFrame(data)
		if err != nil {
			return
		}
		if resp == nil {
			t.Fatal("decodeResponseFrame returned nil response and nil error")
		}
	})
}
