package live

import (
	"testing"
	"time"

	"distqa/internal/obs"
)

// TestMetricsPullSingleNode checks the non-fleet pull: one node returns its
// own registry snapshot with the counters the traffic actually produced.
func TestMetricsPullSingleNode(t *testing.T) {
	nodes := startCluster(t, 1)
	if _, err := Ask(nodes[0].Addr(), "What is the capital of France?", 0); err != nil {
		t.Fatalf("ask: %v", err)
	}
	snap, err := QueryMetricsPull(nodes[0].Addr(), 0)
	if err != nil {
		t.Fatalf("metrics pull: %v", err)
	}
	if snap.Node != nodes[0].Addr() {
		t.Errorf("snapshot node = %q, want %q", snap.Node, nodes[0].Addr())
	}
	if got, ok := snap.Value("live_questions_total", nil); !ok || got != 1 {
		t.Errorf("live_questions_total = %d (found=%v), want 1", got, ok)
	}
	hs, ok := snap.Hist("live_ask_seconds", nil)
	if !ok || hs.Count != 1 {
		t.Errorf("live_ask_seconds snapshot = %+v, want 1 observation", hs)
	}
	// Runtime gauges are refreshed at pull time.
	if got, ok := snap.Value("go_goroutines", nil); !ok || got <= 0 {
		t.Errorf("go_goroutines = %d (found=%v), want > 0", got, ok)
	}
}

// TestFleetMetricsPullMergesCluster checks the fleet pull: one request to any
// node gathers a snapshot per cluster member, and MergeSnapshots folds them
// into correct cluster totals.
func TestFleetMetricsPullMergesCluster(t *testing.T) {
	nodes := startCluster(t, 2)
	waitForPeers(t, nodes[0], 1)
	waitForPeers(t, nodes[1], 1)
	// One distinct question per node so per-node counters are attributable.
	// Forwarding is load-driven and both nodes idle, so each ask is served
	// somewhere in the cluster; the cluster total is what we assert on.
	if _, err := Ask(nodes[0].Addr(), "What is the capital of France?", 0); err != nil {
		t.Fatalf("ask node 0: %v", err)
	}
	if _, err := Ask(nodes[1].Addr(), "Who wrote Hamlet?", 0); err != nil {
		t.Fatalf("ask node 1: %v", err)
	}
	snaps, err := QueryClusterMetrics(nodes[0].Addr(), 0)
	if err != nil {
		t.Fatalf("cluster pull: %v", err)
	}
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots, want 2", len(snaps))
	}
	seen := map[string]bool{}
	for _, s := range snaps {
		seen[s.Node] = true
	}
	if !seen[nodes[0].Addr()] || !seen[nodes[1].Addr()] {
		t.Errorf("snapshot nodes = %v, want both cluster members", seen)
	}
	merged := obs.MergeSnapshots(snaps)
	if got, ok := merged.Value("live_questions_total", nil); !ok || got != 2 {
		t.Errorf("merged live_questions_total = %d (found=%v), want 2", got, ok)
	}
	if hs, ok := merged.Hist("live_ask_seconds", nil); !ok || hs.Count != 2 {
		t.Errorf("merged live_ask_seconds = %+v, want 2 observations", hs)
	}
}

// TestStatusCarriesSLOAndRuntime checks the status payload additions: SLO
// rows evaluated from real traffic and the runtime gauges.
func TestStatusCarriesSLOAndRuntime(t *testing.T) {
	nodes := startCluster(t, 1)
	if _, err := Ask(nodes[0].Addr(), "What is the capital of France?", 0); err != nil {
		t.Fatalf("ask: %v", err)
	}
	st, err := QueryStatus(nodes[0].Addr(), 0)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if len(st.SLO) == 0 {
		t.Fatal("status carries no SLO rows")
	}
	var ask *obs.SLOStatus
	for i := range st.SLO {
		if st.SLO[i].Op == "ask" {
			ask = &st.SLO[i]
		}
	}
	if ask == nil {
		t.Fatal("no ask SLO row")
	}
	if ask.Total < 1 {
		t.Errorf("ask SLO total = %d, want >= 1", ask.Total)
	}
	if st.Metrics.Goroutines <= 0 || st.Metrics.HeapAllocBytes <= 0 {
		t.Errorf("runtime gauges missing from status metrics: %+v", st.Metrics)
	}
	if st.Metrics.FlightRecords < 1 {
		t.Errorf("flight records = %d, want >= 1", st.Metrics.FlightRecords)
	}
}

// TestSlowDumpAndExemplarAcrossCluster is the PR-6 acceptance path: on a
// sharded cluster, a served question must surface in the entry node's flight
// recorder with a complete cross-node span tree, and the ask SLO row's
// exemplar must resolve to that same question ID.
func TestSlowDumpAndExemplarAcrossCluster(t *testing.T) {
	nodes := startShardedCluster(t, 2, 2, 1, nil)
	for _, n := range nodes {
		waitForCompleteShardMap(t, n)
	}
	resp, err := Ask(nodes[0].Addr(), "What is the capital of France?", 0)
	if err != nil {
		t.Fatalf("ask: %v", err)
	}
	if len(resp.Spans) == 0 {
		t.Fatal("response carries no spans")
	}
	qid := resp.Spans[0].QID

	// The node that actually ran the pipeline holds the flight record (a
	// forward moves the question); ask whichever node served it.
	servedBy := resp.ServedBy
	slow, err := QuerySlow(servedBy, 10, 0)
	if err != nil {
		t.Fatalf("slow dump: %v", err)
	}
	var rec *obs.QuestionRecord
	for i := range slow {
		if slow[i].QID == qid {
			rec = &slow[i]
		}
	}
	if rec == nil {
		t.Fatalf("question %d not in the flight recorder (%d records)", qid, len(slow))
	}
	// Complete cross-node tree: with K=2 R=1 on two nodes, one PR leg must
	// have executed on the *other* node and its span must have traveled back.
	other := nodes[1].Addr()
	if servedBy == nodes[1].Addr() {
		other = nodes[0].Addr()
	}
	crossNode := false
	for _, s := range rec.Spans {
		if s.Node == other {
			crossNode = true
		}
	}
	if !crossNode {
		t.Errorf("flight record has no span from %s; spans: %+v", other, rec.Spans)
	}

	// The exemplar in the ask SLO row resolves to the same question.
	st, err := QueryStatus(servedBy, 0)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	for _, row := range st.SLO {
		if row.Op == "ask" {
			if row.ExemplarQID != qid {
				t.Errorf("ask exemplar QID = %d, want %d", row.ExemplarQID, qid)
			}
			return
		}
	}
	t.Fatal("no ask SLO row in status")
}

// TestSlowDumpDefaultLimit checks the server-side default of 5 records.
func TestSlowDumpDefaultLimit(t *testing.T) {
	nodes := startCluster(t, 1)
	questions := []string{
		"What is the capital of France?",
		"Who wrote Hamlet?",
		"When did the war end?",
		"Where is the river?",
		"Why is the sky blue?",
		"How many planets are there?",
		"What is the largest city?",
	}
	for _, q := range questions {
		if _, err := Ask(nodes[0].Addr(), q, 0); err != nil {
			t.Fatalf("ask %q: %v", q, err)
		}
	}
	slow, err := QuerySlow(nodes[0].Addr(), 0, 0)
	if err != nil {
		t.Fatalf("slow dump: %v", err)
	}
	if len(slow) != 5 {
		t.Errorf("default slow dump returned %d records, want 5", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].Duration > slow[i-1].Duration {
			t.Errorf("slow dump not sorted slowest-first at %d", i)
		}
	}
	for _, r := range slow {
		if len(r.Spans) == 0 {
			t.Errorf("record %d has no span tree", r.QID)
		}
		if r.Node != nodes[0].Addr() {
			t.Errorf("record %d node = %q, want %q", r.QID, r.Node, nodes[0].Addr())
		}
	}
}

// TestScrapeCarriesRuntimeGauges checks the Prometheus text exposition
// includes the Go runtime gauges (the satellite for qanode -metrics-addr).
func TestScrapeCarriesRuntimeGauges(t *testing.T) {
	nodes := startCluster(t, 1)
	text, err := QueryMetrics(nodes[0].Addr(), 0)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{"go_goroutines", "go_heap_alloc_bytes", "go_gc_pause_p99_ns", "go_gc_cycles"} {
		if !containsMetric(text, want) {
			t.Errorf("scrape missing %s:\n%s", want, text)
		}
	}
}

func containsMetric(text, name string) bool {
	for _, line := range splitLines(text) {
		if len(line) >= len(name) && line[:len(name)] == name {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// TestFlightRecorderDisabled checks FlightCap < 0 turns the recorder off
// without breaking the serving path or the slow endpoint.
func TestFlightRecorderDisabled(t *testing.T) {
	node, err := StartNode(NodeConfig{
		Addr:           "127.0.0.1:0",
		Engine:         liveEngine,
		HeartbeatEvery: 50 * time.Millisecond,
		FlightCap:      -1,
	})
	if err != nil {
		t.Fatalf("start node: %v", err)
	}
	t.Cleanup(node.Close)
	if _, err := Ask(node.Addr(), "What is the capital of France?", 0); err != nil {
		t.Fatalf("ask: %v", err)
	}
	slow, err := QuerySlow(node.Addr(), 5, 0)
	if err != nil {
		t.Fatalf("slow dump: %v", err)
	}
	if len(slow) != 0 {
		t.Errorf("disabled recorder returned %d records", len(slow))
	}
}
