//go:build !race

// Allocation budgets for the binary codec hot path (CI runs this without
// -race; testing.AllocsPerRun is unreliable under the race detector because
// instrumentation itself allocates).
package live

import (
	"testing"
	"time"

	"distqa/internal/shard"
	"distqa/internal/wire"
)

// TestWireCodecAllocBudget pins the per-operation allocation count of the
// steady-state hot path: encoding a heartbeat into a pooled buffer must not
// allocate at all, and decoding one into a reused scratch Request must not
// either (the repeating peer address is interned). A cold decode may
// allocate up to 4 times — the Addr string is the only required allocation;
// the budget leaves headroom for runtime changes without letting gob-era
// costs creep back in. The gob baseline for the same exchange is ~8
// allocs/op — the ≥5x reduction claimed in BENCH_pr4.json.
func TestWireCodecAllocBudget(t *testing.T) {
	req := &Request{
		Kind: kindHeartbeat,
		Load: LoadReport{
			Addr:      "127.0.0.1:49152",
			Questions: 3,
			Queued:    1,
			APTasks:   2,
			Sent:      time.Unix(1_700_000_000, 0),
		},
	}
	req.Span.QID = 42
	req.Span.Span = 7

	b := wire.GetBuffer()
	defer wire.PutBuffer(b)

	// Warm the pooled buffer to its steady-state capacity.
	b.Reset()
	if err := appendRequestWire(b, req); err != nil {
		t.Fatal(err)
	}
	encoded := append([]byte(nil), b.B...)

	encAllocs := testing.AllocsPerRun(200, func() {
		b.Reset()
		if err := appendRequestWire(b, req); err != nil {
			t.Fatal(err)
		}
	})
	if encAllocs > 0 {
		t.Errorf("heartbeat encode allocates %.1f times per op, want 0", encAllocs)
	}

	// Steady state: the mux server reuses one scratch Request per connection,
	// and a peer's address repeats verbatim beat after beat — the decoder
	// interns it, so repeated decodes into the same scratch must not allocate
	// at all.
	var dst Request
	decAllocs := testing.AllocsPerRun(200, func() {
		r := wire.NewReader(encoded)
		if err := decodeRequestWireInto(&r, &dst); err != nil {
			t.Fatal(err)
		}
	})
	if decAllocs > 0 {
		t.Errorf("steady-state heartbeat decode allocates %.1f times per op, want 0", decAllocs)
	}

	// A cold decode (fresh scratch, so the address string must actually be
	// built) stays within a tight budget too.
	coldAllocs := testing.AllocsPerRun(200, func() {
		var cold Request
		r := wire.NewReader(encoded)
		if err := decodeRequestWireInto(&r, &cold); err != nil {
			t.Fatal(err)
		}
	})
	if coldAllocs > 4 {
		t.Errorf("cold heartbeat decode allocates %.1f times per op, want ≤ 4", coldAllocs)
	}

	// Sharded heartbeat: the shard-claim slice repeats verbatim beat after
	// beat and decodes into the scratch report's retained capacity, so the
	// steady-state decode stays allocation-free even with Shards on the wire.
	shardReq := &Request{
		Kind: kindHeartbeat,
		Load: LoadReport{
			Addr:      "127.0.0.1:49153",
			Questions: 2,
			Shards:    []int{0, 2},
			Sent:      time.Unix(1_700_000_000, 0),
		},
	}
	b.Reset()
	if err := appendRequestWire(b, shardReq); err != nil {
		t.Fatal(err)
	}
	shardEncoded := append([]byte(nil), b.B...)
	var shardDst Request
	r0 := wire.NewReader(shardEncoded)
	if err := decodeRequestWireInto(&r0, &shardDst); err != nil { // warm scratch
		t.Fatal(err)
	}
	shardHB := testing.AllocsPerRun(200, func() {
		b.Reset()
		if err := appendRequestWire(b, shardReq); err != nil {
			t.Fatal(err)
		}
		r := wire.NewReader(shardEncoded)
		if err := decodeRequestWireInto(&r, &shardDst); err != nil {
			t.Fatal(err)
		}
	})
	if shardHB > 0 {
		t.Errorf("steady-state sharded heartbeat encode+decode allocates %.1f times per op, want 0", shardHB)
	}

	// Heartbeat with summary versions (PR-7): summaries ride the gossip
	// incrementally — a beat advertises one varint version per held shard,
	// never the summary bodies — so the steady-state encode+decode budget
	// stays exactly where the sharded heartbeat left it: zero. The size guard
	// below pins the incremental property itself: the version vector costs
	// bytes, not kilobytes.
	sumReq := &Request{
		Kind: kindHeartbeat,
		Load: LoadReport{
			Addr:      "127.0.0.1:49154",
			Questions: 2,
			Shards:    []int{0, 2},
			SumVers:   []int64{0x1f2e3d4c5b6a, 0x0102030405},
			Sent:      time.Unix(1_700_000_000, 0),
		},
	}
	b.Reset()
	if err := appendRequestWire(b, sumReq); err != nil {
		t.Fatal(err)
	}
	sumEncoded := append([]byte(nil), b.B...)
	if grew := len(sumEncoded) - len(shardEncoded); grew > 16*len(sumReq.Load.SumVers) {
		t.Errorf("summary versions grew the heartbeat by %d bytes for %d shards, want ≤ 16/shard",
			grew, len(sumReq.Load.SumVers))
	}
	var sumDst Request
	r2 := wire.NewReader(sumEncoded)
	if err := decodeRequestWireInto(&r2, &sumDst); err != nil { // warm scratch
		t.Fatal(err)
	}
	sumHB := testing.AllocsPerRun(200, func() {
		b.Reset()
		if err := appendRequestWire(b, sumReq); err != nil {
			t.Fatal(err)
		}
		r := wire.NewReader(sumEncoded)
		if err := decodeRequestWireInto(&r, &sumDst); err != nil {
			t.Fatal(err)
		}
	})
	if sumHB > 0 {
		t.Errorf("steady-state heartbeat-with-summaries encode+decode allocates %.1f times per op, want 0", sumHB)
	}

	// Shard-scoped PR fan-out: the scatter hot path encodes one request per
	// replica into the pooled buffer — the encode side must be allocation-
	// free, and the decode side must allocate only the payload it hands the
	// handler (the keyword slice, its two strings, and the subs slice = 4;
	// zero codec overhead on top).
	prReq := ShardPRRequest(1, 4, []string{"capital", "france"}, []int{1, 3})
	b.Reset()
	if err := appendRequestWire(b, prReq); err != nil {
		t.Fatal(err)
	}
	prEncoded := append([]byte(nil), b.B...)
	var prDst Request
	r1 := wire.NewReader(prEncoded)
	if err := decodeRequestWireInto(&r1, &prDst); err != nil { // warm scratch
		t.Fatal(err)
	}
	prEnc := testing.AllocsPerRun(200, func() {
		b.Reset()
		if err := appendRequestWire(b, prReq); err != nil {
			t.Fatal(err)
		}
	})
	if prEnc > 0 {
		t.Errorf("shardPR encode allocates %.1f times per op, want 0", prEnc)
	}
	prAllocs := testing.AllocsPerRun(200, func() {
		r := wire.NewReader(prEncoded)
		if err := decodeRequestWireInto(&r, &prDst); err != nil {
			t.Fatal(err)
		}
	})
	if prAllocs > 4 {
		t.Errorf("shardPR decode allocates %.1f times per op, want ≤ 4 (payload only)", prAllocs)
	}

	// Status requests are the other steady-state poll; they carry no payload
	// at all and must be fully allocation-free both ways.
	statusReq := &Request{Kind: kindStatus}
	b.Reset()
	if err := appendRequestWire(b, statusReq); err != nil {
		t.Fatal(err)
	}
	statusEncoded := append([]byte(nil), b.B...)
	statusAllocs := testing.AllocsPerRun(200, func() {
		b.Reset()
		if err := appendRequestWire(b, statusReq); err != nil {
			t.Fatal(err)
		}
		r := wire.NewReader(statusEncoded)
		if err := decodeRequestWireInto(&r, &dst); err != nil {
			t.Fatal(err)
		}
	})
	if statusAllocs > 0 {
		t.Errorf("status encode+decode allocates %.1f times per op, want 0", statusAllocs)
	}
}

// TestWireCodecAllocBudgetShardSummary pins the summary-pull op (PR-7): the
// request (a shard-id list) encodes without allocating and decodes with just
// the payload slice; the response is bounded by the summary's own size budget
// (Summary.SizeBytes plus codec framing), so gossip can never smuggle an
// unbounded payload onto the heartbeat channel.
func TestWireCodecAllocBudgetShardSummary(t *testing.T) {
	req := &Request{Kind: kindShardSummary, Subs: []int{0, 1, 2, 3}}
	b := wire.GetBuffer()
	defer wire.PutBuffer(b)
	b.Reset()
	if err := appendRequestWire(b, req); err != nil {
		t.Fatal(err)
	}
	encoded := append([]byte(nil), b.B...)
	encAllocs := testing.AllocsPerRun(200, func() {
		b.Reset()
		if err := appendRequestWire(b, req); err != nil {
			t.Fatal(err)
		}
	})
	if encAllocs > 0 {
		t.Errorf("shardSummary pull encode allocates %.1f times per op, want 0", encAllocs)
	}
	var dst Request
	decAllocs := testing.AllocsPerRun(200, func() {
		r := wire.NewReader(encoded)
		if err := decodeRequestWireInto(&r, &dst); err != nil {
			t.Fatal(err)
		}
	})
	if decAllocs > 1 {
		t.Errorf("shardSummary pull decode allocates %.1f times per op, want ≤ 1 (the Subs slice)", decAllocs)
	}

	// Response size: a default-capped summary must stay within its own
	// SizeBytes budget (plus per-term varint overhead) on the wire.
	sum := shard.Summary{Shard: 1, Version: 99, Terms: 500, Docs: 120, Hashes: 6,
		Bits: make([]uint64, shard.DefaultFilterBytes/8)}
	for i := range sum.Bits {
		sum.Bits[i] = 0x9e3779b97f4a7c15 * uint64(i+1) // saturated, worst-case varints
	}
	for i := 0; i < shard.DefaultTopTerms; i++ {
		sum.TopDF = append(sum.TopDF, shard.TermDF{Term: "stemstem", DF: int64(i)})
	}
	resp := &Response{Summaries: []shard.Summary{sum}, Epoch: 3}
	b.Reset()
	if err := appendResponseWire(b, resp); err != nil {
		t.Fatal(err)
	}
	// Varint-encoded random 64-bit words cost ≤ 10 bytes for 8 bytes of
	// filter; everything else is small. 1.5x SizeBytes + slack covers it.
	if budget := sum.SizeBytes()*3/2 + 512; len(b.B) > budget {
		t.Errorf("encoded summary response is %d bytes, budget %d (SizeBytes=%d)",
			len(b.B), budget, sum.SizeBytes())
	}
}

// TestWireCodecAllocBudgetMetricsPull pins the fleet-aggregation poll: a
// metricsPull request carries one Fleet bool, so a qatop refresh loop must
// cost zero allocations to encode and to decode into the connection's reused
// scratch Request — the same budget as heartbeats and status polls.
func TestWireCodecAllocBudgetMetricsPull(t *testing.T) {
	req := &Request{Kind: kindMetricsPull, Fleet: true}
	b := wire.GetBuffer()
	defer wire.PutBuffer(b)
	b.Reset()
	if err := appendRequestWire(b, req); err != nil {
		t.Fatal(err)
	}
	encoded := append([]byte(nil), b.B...)
	var dst Request
	allocs := testing.AllocsPerRun(200, func() {
		b.Reset()
		if err := appendRequestWire(b, req); err != nil {
			t.Fatal(err)
		}
		r := wire.NewReader(encoded)
		if err := decodeRequestWireInto(&r, &dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("metricsPull encode+decode allocates %.1f times per op, want 0", allocs)
	}
	if !dst.Fleet {
		t.Error("decoded metricsPull lost the Fleet flag")
	}
}
