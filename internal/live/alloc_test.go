//go:build !race

// Allocation budgets for the binary codec hot path (CI runs this without
// -race; testing.AllocsPerRun is unreliable under the race detector because
// instrumentation itself allocates).
package live

import (
	"testing"
	"time"

	"distqa/internal/wire"
)

// TestWireCodecAllocBudget pins the per-operation allocation count of the
// steady-state hot path: encoding a heartbeat into a pooled buffer must not
// allocate at all, and decoding one into a reused scratch Request must not
// either (the repeating peer address is interned). A cold decode may
// allocate up to 4 times — the Addr string is the only required allocation;
// the budget leaves headroom for runtime changes without letting gob-era
// costs creep back in. The gob baseline for the same exchange is ~8
// allocs/op — the ≥5x reduction claimed in BENCH_pr4.json.
func TestWireCodecAllocBudget(t *testing.T) {
	req := &Request{
		Kind: kindHeartbeat,
		Load: LoadReport{
			Addr:      "127.0.0.1:49152",
			Questions: 3,
			Queued:    1,
			APTasks:   2,
			Sent:      time.Unix(1_700_000_000, 0),
		},
	}
	req.Span.QID = 42
	req.Span.Span = 7

	b := wire.GetBuffer()
	defer wire.PutBuffer(b)

	// Warm the pooled buffer to its steady-state capacity.
	b.Reset()
	if err := appendRequestWire(b, req); err != nil {
		t.Fatal(err)
	}
	encoded := append([]byte(nil), b.B...)

	encAllocs := testing.AllocsPerRun(200, func() {
		b.Reset()
		if err := appendRequestWire(b, req); err != nil {
			t.Fatal(err)
		}
	})
	if encAllocs > 0 {
		t.Errorf("heartbeat encode allocates %.1f times per op, want 0", encAllocs)
	}

	// Steady state: the mux server reuses one scratch Request per connection,
	// and a peer's address repeats verbatim beat after beat — the decoder
	// interns it, so repeated decodes into the same scratch must not allocate
	// at all.
	var dst Request
	decAllocs := testing.AllocsPerRun(200, func() {
		r := wire.NewReader(encoded)
		if err := decodeRequestWireInto(&r, &dst); err != nil {
			t.Fatal(err)
		}
	})
	if decAllocs > 0 {
		t.Errorf("steady-state heartbeat decode allocates %.1f times per op, want 0", decAllocs)
	}

	// A cold decode (fresh scratch, so the address string must actually be
	// built) stays within a tight budget too.
	coldAllocs := testing.AllocsPerRun(200, func() {
		var cold Request
		r := wire.NewReader(encoded)
		if err := decodeRequestWireInto(&r, &cold); err != nil {
			t.Fatal(err)
		}
	})
	if coldAllocs > 4 {
		t.Errorf("cold heartbeat decode allocates %.1f times per op, want ≤ 4", coldAllocs)
	}

	// Status requests are the other steady-state poll; they carry no payload
	// at all and must be fully allocation-free both ways.
	statusReq := &Request{Kind: kindStatus}
	b.Reset()
	if err := appendRequestWire(b, statusReq); err != nil {
		t.Fatal(err)
	}
	statusEncoded := append([]byte(nil), b.B...)
	statusAllocs := testing.AllocsPerRun(200, func() {
		b.Reset()
		if err := appendRequestWire(b, statusReq); err != nil {
			t.Fatal(err)
		}
		r := wire.NewReader(statusEncoded)
		if err := decodeRequestWireInto(&r, &dst); err != nil {
			t.Fatal(err)
		}
	})
	if statusAllocs > 0 {
		t.Errorf("status encode+decode allocates %.1f times per op, want 0", statusAllocs)
	}
}
