package live

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"distqa/internal/index"
	"distqa/internal/nlp"
	"distqa/internal/obs"
	"distqa/internal/qa"
	"distqa/internal/sched"
	"distqa/internal/shard"
)

// ShardConfig configures collection sharding on a live node (PR-5). The zero
// value keeps the node on a full collection replica — the pre-sharding
// behaviour. When K > 0 the node's *index* covers only the sub-collections of
// the shards chained declustering places here (replica j of shard s on node
// (s+j) mod ClusterSize); the collection *text* stays fully replicated, so
// answer processing and paragraph-reference resolution still work everywhere.
type ShardConfig struct {
	// K is the shard count (0 = unsharded full replica).
	K int
	// R is the replica factor (default 1; clamped to ClusterSize).
	R int
	// NodeIndex is this node's position in the cluster layout, 0-based.
	NodeIndex int
	// ClusterSize is the number of nodes in the layout.
	ClusterSize int
	// Routing tunes selective shard routing (PR-7): gossiped term summaries
	// that let the coordinator skip shards provably unable to contribute. The
	// zero value enables it with defaults; Routing.Disabled pins the node to
	// full scatter.
	Routing RoutingConfig
}

func (c ShardConfig) enabled() bool { return c.K > 0 }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sharded reports whether this node runs a shard-scoped index.
func (n *Node) sharded() bool { return n.shardTracker != nil }

// totalSubs is the collection's sub-collection count (shards partition subs).
func (n *Node) totalSubs() int { return len(n.engine.Coll.Subs) }

// currentEpoch returns the node's shard-map epoch without recomposition
// (0 on unsharded nodes).
func (n *Node) currentEpoch() int64 {
	if n.shardTracker == nil {
		return 0
	}
	return n.shardTracker.Current().Epoch
}

// composeShardClaims gathers the cluster's shard claims as this node sees
// them: its own holdings plus the latest heartbeat claim of every dispatch
// candidate (detector-alive, breaker-admitting). A peer that stops
// heartbeating drops out of the claims, which is exactly how its replicas
// leave the shard map.
func (n *Node) composeShardClaims() map[string][]int {
	claims := map[string][]int{n.Addr(): n.holdings}
	for _, p := range n.candidatePeers() {
		if len(p.Shards) > 0 {
			claims[p.Addr] = p.Shards
		}
	}
	return claims
}

// shardMap recomposes the node's shard-map view from current claims. The
// tracker bumps the epoch iff the composed placement differs from the last
// composition (node death and re-admission both bump); the epoch gauge
// follows. The map rides the existing heartbeat channel — no extra protocol
// round exists for shard discovery.
func (n *Node) shardMap() shard.Map {
	m := n.shardTracker.Update(n.composeShardClaims())
	n.nm.shardEpoch.Set(m.Epoch)
	return m
}

// rankReplicas orders a shard's replica addresses for selection: ascending
// Table-3 PR load (Equation 2/5 — the same load function the simulator's PR
// dispatcher uses), TieBand rotation by salt among near-minimal replicas so
// decisions within one stale broadcast interval don't herd, deterministic
// order outside the band. The first address is the preferred replica, the
// rest are the failover order. Load comes from the same heartbeat reports
// the load monitors keep — replica selection reuses them, it does not probe.
func (n *Node) rankReplicas(holders []string, salt int) []string {
	if len(holders) <= 1 {
		return holders
	}
	self := n.Addr()
	reports := make(map[string]LoadReport, len(holders))
	n.mu.Lock()
	for _, a := range holders {
		if a != self {
			reports[a] = n.peers[a]
		}
	}
	n.mu.Unlock()
	loads := make([]sched.LoadInfo, len(holders))
	for i, a := range holders {
		r := reports[a]
		if a == self {
			r = n.loadReport()
		}
		loads[i] = sched.LoadInfo{
			Node: i,
			// The live proxy for the Table-3 resources: executing questions
			// and AP sub-tasks burn CPU; executing questions also drive the
			// disk (their PR phase); the admission queue is committed load.
			CPU:   float64(r.Questions + r.APTasks),
			Disk:  float64(r.Questions),
			Queue: float64(r.Queued),
		}
	}
	order := sched.OrderByLoad(loads, sched.PRWeights, salt)
	out := make([]string, len(order))
	for i, j := range order {
		out[i] = holders[j]
	}
	return out
}

// shardStatus composes the operator view of the shard map (Status.Shard),
// nil on unsharded nodes.
func (n *Node) shardStatus() *ShardStatus {
	if !n.sharded() {
		return nil
	}
	m := n.shardMap()
	rows := make([]ShardReplicaRow, m.K)
	for s := 0; s < m.K; s++ {
		rows[s] = ShardReplicaRow{
			Shard:    s,
			Subs:     shard.SubsOf(s, m.K, n.totalSubs()),
			Replicas: m.Replicas[s],
		}
		if !n.routingEnabled() {
			continue
		}
		row := &rows[s]
		row.RouteSkipped = n.routeStats[s].skipped.Load()
		row.RouteScattered = n.routeStats[s].scattered.Load()
		row.RouteFallbacks = n.routeStats[s].fallbacks.Load()
		if sum := n.localSums[s]; sum != nil {
			row.SummaryVersion = sum.Version
			row.SummaryFresh = true
			row.SummaryFrom = "local"
			row.SummaryTerms = sum.Terms
		} else if e := n.sumStore.snapshot(s); e != nil {
			row.SummaryVersion = e.sum.Version
			row.SummaryFresh = e.epoch == m.Epoch
			row.SummaryFrom = e.from
			row.SummaryTerms = e.sum.Terms
		}
	}
	return &ShardStatus{
		K:           m.K,
		R:           n.shardR,
		Epoch:       m.Epoch,
		Complete:    m.Complete(),
		Holdings:    n.holdings,
		HoldingSubs: n.holdSubs,
		Shards:      rows,
	}
}

// scatterPR is the sharded serving path's PR phase: one sub-task per shard,
// sent to the replica the PR load function prefers (rankReplicas), with
// failover to every surviving replica in ranked order. Shards this node
// holds itself run locally when ranked first (through the same PR partial
// cache as the unsharded path). A shard whose replicas all fail — or that
// has no live replica at all — is a hard error: a silently partial answer
// would violate the byte-identity contract (see
// TestShardedNoSurvivingReplica and the live harness failover tests).
//
// Concatenation order across shards is irrelevant for the final answer:
// qa.OrderParagraphs imposes a strict total order (score desc, paragraph id
// asc), so the merged paragraph ranking — and therefore every downstream
// byte — is permutation-insensitive.
// Selective routing (PR-7) trims the fan-out before it starts: shards whose
// gossiped term summary proves that no query keyword occurs in them are
// skipped outright (provably byte-identical — they could only contribute an
// empty sub-result), shards without a usable summary scatter as before, and
// the surviving fan-out is dispatched in expected-contribution order. When
// the plan eliminates every shard the gather short-circuits entirely. A
// successful gather revalidates the summary store against the current epoch.
func (n *Node) scatterPR(analysis nlp.QuestionAnalysis, parent obs.SpanContext, budget time.Time, salt int) ([]qa.ScoredParagraph, error) {
	m := n.shardMap()
	total := n.totalSubs()
	plan, routed := n.planRoute(analysis.Keywords, m, parent)

	local := func(subs []int) []qa.ScoredParagraph {
		key := prCacheKey(analysis.Keywords, subs)
		if v, ok := n.prCache.Get(key); ok {
			n.nm.cachePRHits.Inc()
			n.spans.StartSpan("cache:pr", "", parent).End()
			cached := v.([]qa.ScoredParagraph)
			return append([]qa.ScoredParagraph(nil), cached...)
		}
		if n.prCache != nil {
			n.nm.cachePRMisses.Inc()
		}
		prSpan := n.spans.StartSpan("stage:PR", obs.StagePR, parent)
		var rs []index.Retrieved
		for _, sub := range subs {
			r, _ := n.engine.RetrieveSub(analysis, sub)
			rs = append(rs, r...)
		}
		prSpan.End()
		psSpan := n.spans.StartSpan("stage:PS", obs.StagePS, parent)
		sc, _ := n.engine.ScoreParagraphs(analysis, rs)
		psSpan.End()
		n.prCache.Put(key, append([]qa.ScoredParagraph(nil), sc...))
		return sc
	}

	self := n.Addr()
	results := make([][]qa.ScoredParagraph, m.K)
	errs := make([]error, m.K)
	// The dispatch set: the routed plan's scatter list (skips excluded,
	// expected contribution descending), or every shard when routing is off.
	// Dispatch order never affects the answer — the gather below concatenates
	// in shard order and qa.OrderParagraphs is permutation-insensitive anyway.
	scatter := plan.Scatter
	if !routed {
		scatter = make([]int, m.K)
		for s := range scatter {
			scatter[s] = s
		}
	}
	fetch := func(s int) {
		holders := m.Replicas[s]
		if len(holders) == 0 {
			errs[s] = fmt.Errorf("live: no live replica for shard %d (epoch %d)", s, m.Epoch)
			return
		}
		subs := shard.SubsOf(s, m.K, total)
		// Salt by shard as well as question id so one question's shards
		// spread across tied replicas instead of herding onto one node.
		for _, addr := range n.rankReplicas(holders, salt+s) {
			if addr == self {
				results[s] = local(subs)
				return
			}
			n.nm.shardPRSent.Inc()
			resp, err := n.callPeer(addr, &Request{
				Kind:     kindShardPR,
				Span:     parent,
				Shard:    s,
				Epoch:    m.Epoch,
				Keywords: analysis.Keywords,
				Subs:     subs,
			}, budget, 0)
			if err == nil {
				paras, rerr := n.resolveRefs(resp.ParaRefs)
				if rerr == nil {
					for _, sp := range resp.Spans {
						n.spans.Record(sp)
					}
					results[s] = paras
					return
				}
				err = rerr
				n.recordFailure(opOfKind(kindShardPR), addr, rerr)
			}
			// Failover: blame the replica, mark the trace, try the next
			// survivor in ranked order.
			n.nm.failPR.Inc()
			n.nm.shardFailovers.Inc()
			n.spans.StartSpan("recover:shardpr peer="+addr, "", parent).End()
			errs[s] = fmt.Errorf("live: shard %d replica %s: %w", s, addr, err)
		}
		if results[s] == nil && errs[s] == nil {
			errs[s] = fmt.Errorf("live: no surviving replica for shard %d", s)
		}
	}
	if len(scatter) == 1 {
		// A routed single-shard plan (the common case on shard-local
		// questions) needs no fan-out machinery at all.
		fetch(scatter[0])
	} else {
		var wg sync.WaitGroup
		for _, s := range scatter {
			s := s
			wg.Add(1)
			go func() {
				defer wg.Done()
				fetch(s)
			}()
		}
		wg.Wait()
	}
	var all []qa.ScoredParagraph
	for s := 0; s < m.K; s++ {
		if errs[s] != nil && results[s] == nil {
			return nil, fmt.Errorf("no surviving replica: %w", errs[s])
		}
		all = append(all, results[s]...)
	}
	if routed {
		// The gather covered every non-skipped shard under map m, so the
		// store's view is consistent with m: re-stamp summaries whose holder
		// is still placed, drop the rest. This is the only place staleness
		// clears — one deterministic fallback scatter per epoch bump.
		n.sumStore.revalidate(m)
	}
	return all, nil
}

// handleShardPR serves one shard-scoped paragraph-retrieval sub-task:
// retrieval plus scoring over the requested sub-collections, which must be
// covered by this node's shard-scoped index. It shares the PR partial cache
// with the unsharded sub-task path — the refs are a pure function of
// (keywords, subs) over the immutable collection, independent of placement,
// so the cache needs no epoch scoping (unlike the answer cache, whose
// entries embed fan-out metadata).
func (n *Node) handleShardPR(req *Request) *Response {
	n.nm.shardPRRecv.Inc()
	for _, sub := range req.Subs {
		if !n.engine.Set.Has(sub) {
			return &Response{Err: fmt.Sprintf("shard %d: sub-collection %d not held here", req.Shard, sub)}
		}
	}
	span := n.spans.StartSpan("shardpr-subtask", obs.StagePR, req.Span)
	analysis := nlp.QuestionAnalysis{Keywords: req.Keywords}
	key := prRefsCacheKey(req.Keywords, req.Subs)
	epoch := n.currentEpoch()
	if v, ok := n.prCache.Get(key); ok {
		n.nm.cachePRHits.Inc()
		return &Response{ParaRefs: v.([]ParaRef), Epoch: epoch, Spans: []obs.Span{span.End()}}
	}
	if n.prCache != nil {
		n.nm.cachePRMisses.Inc()
	}
	var refs []ParaRef
	for _, sub := range req.Subs {
		rs, _ := n.engine.RetrieveSub(analysis, sub)
		scored, _ := n.engine.ScoreParagraphs(analysis, rs)
		for _, sp := range scored {
			refs = append(refs, ParaRef{ID: sp.Para.ID, Matched: sp.Matched, Score: sp.Score})
		}
	}
	n.prCache.Put(key, refs)
	return &Response{ParaRefs: refs, Epoch: epoch, Spans: []obs.Span{span.End()}}
}

// handleShardDF serves a shard document-frequency gather: the per-keyword,
// per-sub document frequencies of the requested subs, for the coordinator's
// exact global df correction (qa.EstimateCostFromDF).
func (n *Node) handleShardDF(req *Request) *Response {
	n.nm.shardDFRecv.Inc()
	for _, sub := range req.Subs {
		if !n.engine.Set.Has(sub) {
			return &Response{Err: fmt.Sprintf("df gather: sub-collection %d not held here", sub)}
		}
	}
	want := make(map[int]bool, len(req.Subs))
	for _, s := range req.Subs {
		want[s] = true
	}
	out := make([]ShardDF, 0, len(req.Subs))
	for _, d := range n.engine.LocalDF(req.Keywords) {
		if want[d.Sub] {
			out = append(out, ShardDF{Sub: d.Sub, DF: d.DF})
		}
	}
	return &Response{DFs: out, Epoch: n.currentEpoch()}
}

// handleEstimate serves a cost-prediction query (`qactl -estimate`). On a
// full replica it is Equation-9 prediction straight off the local index; on
// a sharded node the per-sub document frequencies are gathered from one live
// replica per shard (self-held shards answer from the local index) and
// folded with the exact global df correction — the minimum per-sub df per
// keyword, folded in ascending sub order, exactly as the full-replica
// EstimateCost does, so the sharded estimate is byte-identical.
func (n *Node) handleEstimate(req *Request) *Response {
	analysis, _ := n.engine.QuestionProcessing(req.Question)
	if !n.sharded() {
		est := n.engine.EstimateCost(analysis)
		return &Response{Estimate: &est, ServedBy: n.Addr()}
	}
	m := n.shardMap()
	total := n.totalSubs()
	budget := time.Now().Add(n.retryPolicy.Budget)
	self := n.Addr()
	var dfs []qa.SubDF
	localDF := n.engine.LocalDF(analysis.Keywords)
	localBySub := make(map[int]qa.SubDF, len(localDF))
	for _, d := range localDF {
		localBySub[d.Sub] = d
	}
	for s := 0; s < m.K; s++ {
		holders := m.Replicas[s]
		if len(holders) == 0 {
			return &Response{Err: fmt.Sprintf("no live replica for shard %d (epoch %d)", s, m.Epoch)}
		}
		subs := shard.SubsOf(s, m.K, total)
		got := false
		for _, addr := range n.rankReplicas(holders, s) {
			if addr == self {
				for _, sub := range subs {
					dfs = append(dfs, localBySub[sub])
				}
				got = true
				break
			}
			resp, err := n.callPeer(addr, &Request{
				Kind:     kindShardDF,
				Keywords: analysis.Keywords,
				Subs:     subs,
			}, budget, 0)
			if err != nil {
				n.nm.shardFailovers.Inc()
				continue
			}
			for _, d := range resp.DFs {
				dfs = append(dfs, qa.SubDF{Sub: d.Sub, DF: d.DF})
			}
			got = true
			break
		}
		if !got {
			return &Response{Err: fmt.Sprintf("no surviving replica for shard %d df gather", s)}
		}
	}
	// Exact global correction requires the full-replica fold order:
	// ascending sub.
	sort.Slice(dfs, func(i, j int) bool { return dfs[i].Sub < dfs[j].Sub })
	est := n.engine.EstimateCostFromDF(analysis, dfs)
	return &Response{Estimate: &est, ServedBy: n.Addr()}
}

// internShards returns a stable slice for storing a decoded heartbeat shard
// claim. The mux server decodes heartbeats into a per-connection scratch
// Request whose Shards slice is reused across frames — unlike the interned
// Addr string it is mutable, so the node must never retain it. Steady-state
// heartbeats repeat the same claim every beat, so the previously stored
// slice is reused when the contents match, keeping the store allocation-free
// too (see TestWireCodecAllocBudget).
func internShards(prev, cur []int) []int {
	if len(cur) == 0 {
		return nil
	}
	if len(prev) == len(cur) {
		same := true
		for i := range cur {
			if prev[i] != cur[i] {
				same = false
				break
			}
		}
		if same {
			return prev
		}
	}
	return append([]int(nil), cur...)
}
