package live

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"distqa/internal/fault"
	"distqa/internal/obs"
)

// ErrInjectedFault is returned (wrapped) by Pool.Call when the configured
// fault injector dropped or severed the call. Callers treat it exactly like
// a transport error — that is the point.
var ErrInjectedFault = errors.New("injected fault")

// Pool defaults. The idle TTL is deliberately shorter than the server's
// keep-alive timeout (serverIdleTimeout) so that under normal operation the
// *client* retires an aging connection before the server does — stale-conn
// redials stay the exception (peer restarts, crashes), not the steady state.
const (
	// DefaultMaxIdlePerPeer bounds the idle connections cached per peer.
	DefaultMaxIdlePerPeer = 4
	// DefaultIdleTTL is how long an idle pooled connection stays usable.
	DefaultIdleTTL = 30 * time.Second
	// serverIdleTimeout is how long a node keeps an idle keep-alive
	// connection open waiting for its next request (see Node.handle).
	serverIdleTimeout = 2 * time.Minute
)

// PoolConfig configures a Pool. The zero value gets defaults.
type PoolConfig struct {
	// MaxIdlePerPeer bounds the idle connections kept per peer address
	// (default DefaultMaxIdlePerPeer). Connections returned beyond the cap
	// are closed and counted as evictions.
	MaxIdlePerPeer int
	// IdleTTL is the maximum idle age of a pooled connection; older
	// connections are evicted lazily on acquire and by EvictIdle (default
	// DefaultIdleTTL).
	IdleTTL time.Duration
	// Registry optionally receives the pool metrics (live_pool_hits,
	// live_pool_misses, live_pool_evictions, live_pool_redials,
	// live_pool_open_conns). When nil the counters still exist but are
	// private to the pool.
	Registry *obs.Registry
	// Self identifies this pool's owner (the node's address) to the fault
	// injector as the message source. Empty is fine when no injector is
	// set.
	Self string
	// Injector, when non-nil, is consulted before every outbound call and
	// may drop it, delay it, duplicate it (all ops are idempotent) or sever
	// the pooled connections to the destination first (package fault). The
	// chaos harness drives it; production pools leave it nil.
	Injector *fault.Injector
}

// poolMetrics are the pool's instrumentation handles. All fields are always
// non-nil: standalone counters when no registry was supplied.
type poolMetrics struct {
	hits      *obs.Counter // live_pool_hits
	misses    *obs.Counter // live_pool_misses
	evictions *obs.Counter // live_pool_evictions
	redials   *obs.Counter // live_pool_redials
	open      *obs.Gauge   // live_pool_open_conns
}

func newPoolMetrics(reg *obs.Registry) *poolMetrics {
	if reg == nil {
		return &poolMetrics{
			hits:      &obs.Counter{},
			misses:    &obs.Counter{},
			evictions: &obs.Counter{},
			redials:   &obs.Counter{},
			open:      &obs.Gauge{},
		}
	}
	return &poolMetrics{
		hits:      reg.Counter("live_pool_hits", nil),
		misses:    reg.Counter("live_pool_misses", nil),
		evictions: reg.Counter("live_pool_evictions", nil),
		redials:   reg.Counter("live_pool_redials", nil),
		open:      reg.Gauge("live_pool_open_conns", nil),
	}
}

// pooledConn is one persistent connection with its gob streams. Reusing the
// encoder/decoder pair is the point of the pool: gob retransmits type
// descriptors on every new stream, so a fresh connection pays the TCP
// handshake *and* re-sends the wire types of Request/Response (several
// hundred bytes) before any payload moves.
type pooledConn struct {
	conn     net.Conn
	enc      *gob.Encoder
	dec      *gob.Decoder
	fr       *frameReader // per-response frame budget, reset before each decode
	lastUsed time.Time
	calls    int
}

// do performs one request/response exchange. Deadlines are set fresh per
// call — a write deadline before the encode, a read deadline before the
// decode — and cleared before the connection can go back to the pool, so a
// reused connection never inherits an expired deadline from a previous call
// (the bug the old single-absolute-deadline roundTrip would have caused
// under reuse).
func (pc *pooledConn) do(req *Request, timeout time.Duration) (*Response, error) {
	if err := pc.conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if err := pc.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("encode: %w", err)
	}
	if err := pc.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	pc.fr.reset()
	var resp Response
	if err := pc.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("decode: %w", err)
	}
	if err := pc.conn.SetDeadline(time.Time{}); err != nil {
		return nil, err
	}
	pc.calls++
	pc.lastUsed = time.Now()
	return &resp, nil
}

// Pool is a per-peer persistent connection pool for the live wire protocol.
// It amortizes TCP dials and gob type-descriptor retransmission across
// calls, detects stale connections (peer restarted, server-side idle close)
// and transparently redials once, and falls back to one-shot dialing when
// closed. Safe for concurrent use.
type Pool struct {
	cfg PoolConfig
	m   *poolMetrics

	mu     sync.Mutex
	idle   map[string][]*pooledConn
	closed bool
}

// NewPool builds a pool with the given configuration.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.MaxIdlePerPeer <= 0 {
		cfg.MaxIdlePerPeer = DefaultMaxIdlePerPeer
	}
	if cfg.IdleTTL <= 0 {
		cfg.IdleTTL = DefaultIdleTTL
	}
	return &Pool{
		cfg:  cfg,
		m:    newPoolMetrics(cfg.Registry),
		idle: make(map[string][]*pooledConn),
	}
}

// Call sends one request to addr and decodes one response, reusing a pooled
// connection when available. A transport error on a *reused* connection is
// treated as staleness and retried exactly once on a fresh dial; every
// request kind in the protocol is idempotent (pure reads over the shared
// replica, or load reports where the freshest value wins), so the retry is
// safe even if the peer processed the first attempt. A remote application
// error (Response.Err) leaves the connection healthy and pooled.
func (p *Pool) Call(addr string, req *Request, timeout time.Duration) (*Response, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		// Graceful fallback: a closed pool (node shutting down, or a caller
		// that never wanted pooling) degrades to the one-shot protocol.
		return roundTrip(addr, req, timeout)
	}

	if d := p.cfg.Injector.Decide(p.cfg.Self, addr, opOfKind(req.Kind)); d.Faulty() {
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
		if d.Sever {
			// Model a TCP reset: kill every pooled connection to the peer
			// before failing the call.
			p.severPeer(addr)
		}
		if d.Drop || d.Sever {
			return nil, fmt.Errorf("live: call %s: %w", addr, ErrInjectedFault)
		}
		if d.Duplicate {
			// Duplicate delivery: send the request twice (every protocol op
			// is idempotent); the second response wins.
			if _, err := p.call(addr, req, timeout); err != nil {
				return nil, err
			}
		}
	}
	return p.call(addr, req, timeout)
}

// call is the injector-free body of Call: one pooled request/response
// exchange with the transparent stale-conn redial.
func (p *Pool) call(addr string, req *Request, timeout time.Duration) (*Response, error) {
	pc, reused, err := p.acquire(addr, timeout)
	if err != nil {
		return nil, err
	}
	resp, err := pc.do(req, timeout)
	if err != nil && reused {
		// Stale pooled connection: the peer restarted, closed us while idle,
		// or speaks the one-shot protocol. One transparent redial.
		p.discard(pc)
		p.m.redials.Inc()
		pc, err = p.dialPooled(addr, timeout)
		if err != nil {
			return nil, err
		}
		resp, err = pc.do(req, timeout)
	}
	if err != nil {
		p.discard(pc)
		return nil, fmt.Errorf("live: call %s: %w", addr, err)
	}
	p.release(addr, pc)
	if resp.Err != "" {
		return resp, fmt.Errorf("live: remote %s: %s", addr, resp.Err)
	}
	return resp, nil
}

// Ask sends a question through the pool (the pooled analogue of Ask).
func (p *Pool) Ask(addr, question string, timeout time.Duration) (*Response, error) {
	return p.Call(addr, &Request{Kind: kindAsk, Question: question}, timeout)
}

// QueryStatus fetches a node's status through the pool.
func (p *Pool) QueryStatus(addr string, timeout time.Duration) (*Status, error) {
	resp, err := p.Call(addr, &Request{Kind: kindStatus}, timeout)
	if err != nil {
		return nil, err
	}
	if resp.Status == nil {
		return nil, fmt.Errorf("live: %s returned no status", addr)
	}
	return resp.Status, nil
}

// acquire pops the most recently used healthy idle connection for addr
// (counted as a hit), or dials a new one (a miss). Expired idle connections
// encountered on the way are evicted.
func (p *Pool) acquire(addr string, timeout time.Duration) (*pooledConn, bool, error) {
	cutoff := time.Now().Add(-p.cfg.IdleTTL)
	var pc *pooledConn
	var expired []*pooledConn
	p.mu.Lock()
	list := p.idle[addr]
	for len(list) > 0 {
		cand := list[len(list)-1]
		list = list[:len(list)-1]
		if cand.lastUsed.Before(cutoff) {
			expired = append(expired, cand)
			continue
		}
		pc = cand
		break
	}
	if len(list) == 0 {
		delete(p.idle, addr)
	} else {
		p.idle[addr] = list
	}
	p.mu.Unlock()
	for _, e := range expired {
		p.m.evictions.Inc()
		p.discard(e)
	}
	if pc != nil {
		p.m.hits.Inc()
		return pc, true, nil
	}
	p.m.misses.Inc()
	fresh, err := p.dialPooled(addr, timeout)
	return fresh, false, err
}

// dialPooled opens a new tracked connection with fresh gob streams.
func (p *Pool) dialPooled(addr string, timeout time.Duration) (*pooledConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("live: dial %s: %w", addr, err)
	}
	p.m.open.Inc()
	fr := newFrameReader(conn)
	return &pooledConn{
		conn:     conn,
		enc:      gob.NewEncoder(conn),
		dec:      gob.NewDecoder(fr),
		fr:       fr,
		lastUsed: time.Now(),
	}, nil
}

// release returns a healthy connection to the pool, discarding it instead
// when the pool is closed or the per-peer idle cap is reached.
func (p *Pool) release(addr string, pc *pooledConn) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.discard(pc)
		return
	}
	if len(p.idle[addr]) >= p.cfg.MaxIdlePerPeer {
		p.mu.Unlock()
		p.m.evictions.Inc()
		p.discard(pc)
		return
	}
	p.idle[addr] = append(p.idle[addr], pc)
	p.mu.Unlock()
}

// discard closes a connection and decrements the open gauge. Each pooled
// connection passes through discard exactly once at end of life.
func (p *Pool) discard(pc *pooledConn) {
	pc.conn.Close()
	p.m.open.Dec()
}

// severPeer force-closes every pooled idle connection to addr (fault
// injection: a simulated TCP reset / network sever).
func (p *Pool) severPeer(addr string) {
	p.mu.Lock()
	list := p.idle[addr]
	delete(p.idle, addr)
	p.mu.Unlock()
	for _, pc := range list {
		p.m.evictions.Inc()
		p.discard(pc)
	}
}

// EvictIdle closes idle connections older than the idle TTL. Nodes call it
// from their heartbeat loop so pools of quiescent peers shrink without
// waiting for the next acquire.
func (p *Pool) EvictIdle() {
	cutoff := time.Now().Add(-p.cfg.IdleTTL)
	var expired []*pooledConn
	p.mu.Lock()
	for addr, list := range p.idle {
		keep := list[:0]
		for _, pc := range list {
			if pc.lastUsed.Before(cutoff) {
				expired = append(expired, pc)
			} else {
				keep = append(keep, pc)
			}
		}
		if len(keep) == 0 {
			delete(p.idle, addr)
		} else {
			p.idle[addr] = keep
		}
	}
	p.mu.Unlock()
	for _, pc := range expired {
		p.m.evictions.Inc()
		p.discard(pc)
	}
}

// Close closes all idle connections and switches the pool to one-shot
// fallback mode. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	var all []*pooledConn
	for _, list := range p.idle {
		all = append(all, list...)
	}
	p.idle = make(map[string][]*pooledConn)
	p.mu.Unlock()
	for _, pc := range all {
		p.discard(pc)
	}
}

// Stats snapshots the pool counters (also exported as metrics when the pool
// was built with a registry).
type PoolStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Redials   int64
	OpenConns int64
}

// Stats returns the pool's cumulative counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Hits:      p.m.hits.Value(),
		Misses:    p.m.misses.Value(),
		Evictions: p.m.evictions.Value(),
		Redials:   p.m.redials.Value(),
		OpenConns: p.m.open.Value(),
	}
}
