package live

import (
	"sort"
	"sync"
	"time"
)

// PeerState is the failure detector's verdict on a peer.
type PeerState int

const (
	// PeerAlive: heartbeats arriving within the suspect threshold.
	PeerAlive PeerState = iota
	// PeerSuspect: SuspectAfter heartbeat periods missed. Suspect peers are
	// excluded from forward and PR/AP partitioning candidate sets but keep
	// receiving our heartbeats so they can re-admit us symmetrically.
	PeerSuspect
	// PeerDead: DeadAfter heartbeat periods missed. Dead peers are excluded
	// from dispatch like suspects; a single fresh heartbeat re-admits them.
	PeerDead
)

// String returns the state's operator-facing name.
func (s PeerState) String() string {
	switch s {
	case PeerAlive:
		return "alive"
	case PeerSuspect:
		return "suspect"
	case PeerDead:
		return "dead"
	default:
		return "unknown"
	}
}

// DetectorConfig tunes the heartbeat failure detector. Thresholds are
// expressed in heartbeat periods (NodeConfig.HeartbeatEvery), so faster
// heartbeats mean faster detection without retuning.
type DetectorConfig struct {
	// SuspectAfter is how many missed heartbeat periods move a peer from
	// alive to suspect (default 3 — the paper's stale-node eviction window).
	SuspectAfter int
	// DeadAfter is how many missed periods move a peer to dead (default 6).
	DeadAfter int
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = 2 * c.SuspectAfter
	}
	return c
}

// PeerHealth is one peer's failure-detector + circuit-breaker view, exposed
// through Status for qactl and the chaos harness.
type PeerHealth struct {
	Addr string
	// State is the detector verdict ("alive", "suspect", "dead").
	State string
	// SinceBeat is how long ago the last heartbeat from this peer arrived.
	SinceBeat time.Duration
	// Breaker is the circuit-breaker state ("closed", "half-open", "open").
	Breaker string
	// Failures counts remote-call failures blamed on this peer.
	Failures int64
	// Readmissions counts suspect/dead -> alive transitions.
	Readmissions int64
}

// detector is the heartbeat-driven failure detector: peers move
// alive -> suspect -> dead as heartbeat periods go missing, and any fresh
// heartbeat re-admits them instantly. It only tracks peers it has heard at
// least one heartbeat from (configured-but-silent peers are not dispatch
// candidates, exactly as before this subsystem existed).
type detector struct {
	cfg     DetectorConfig
	hbEvery time.Duration

	mu    sync.Mutex
	peers map[string]*peerRecord
}

type peerRecord struct {
	lastBeat     time.Time
	readmissions int64
}

func newDetector(cfg DetectorConfig, hbEvery time.Duration) *detector {
	return &detector{
		cfg:     cfg.withDefaults(),
		hbEvery: hbEvery,
		peers:   make(map[string]*peerRecord),
	}
}

// observeBeat records a heartbeat from addr and reports whether the peer
// was re-admitted (it was suspect or dead beforehand).
func (d *detector) observeBeat(addr string, now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec, ok := d.peers[addr]
	if !ok {
		d.peers[addr] = &peerRecord{lastBeat: now}
		return false
	}
	readmitted := d.stateLocked(rec, now) != PeerAlive
	if readmitted {
		rec.readmissions++
	}
	rec.lastBeat = now
	return readmitted
}

// stateOf returns the detector verdict for addr. Unknown peers are dead:
// they have never heartbeated, so they are not dispatch candidates.
func (d *detector) stateOf(addr string, now time.Time) PeerState {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec, ok := d.peers[addr]
	if !ok {
		return PeerDead
	}
	return d.stateLocked(rec, now)
}

func (d *detector) stateLocked(rec *peerRecord, now time.Time) PeerState {
	missed := now.Sub(rec.lastBeat)
	switch {
	case missed >= time.Duration(d.cfg.DeadAfter)*d.hbEvery:
		return PeerDead
	case missed >= time.Duration(d.cfg.SuspectAfter)*d.hbEvery:
		return PeerSuspect
	default:
		return PeerAlive
	}
}

// snapshot returns every tracked peer's state, sorted by address.
func (d *detector) snapshot(now time.Time) []PeerHealth {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]PeerHealth, 0, len(d.peers))
	for addr, rec := range d.peers {
		out = append(out, PeerHealth{
			Addr:         addr,
			State:        d.stateLocked(rec, now).String(),
			SinceBeat:    now.Sub(rec.lastBeat),
			Readmissions: rec.readmissions,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
