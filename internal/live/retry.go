package live

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"distqa/internal/fault"
)

// RetryPolicy replaces the pre-fault-tolerance scattering of fixed
// per-call timeouts with one policy: every remote call a question makes is
// bounded by the question's remaining *deadline budget*, transient failures
// are retried with jittered exponential backoff, and the per-peer circuit
// breaker (BreakerConfig) short-circuits retry storms against a peer that
// keeps failing.
type RetryPolicy struct {
	// MaxAttempts bounds tries per logical call (default 2: one try plus
	// one retry). Heartbeats always use a single attempt — the next beat is
	// the retry.
	MaxAttempts int
	// BaseBackoff is the first retry's nominal delay (default 25 ms);
	// successive retries double it up to MaxBackoff (default 250 ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter is the randomized fraction of each backoff delay, 0..1
	// (default 0.5: sleep in [d/2, d]). Jitter draws from the node's seeded
	// RNG (NodeConfig.Seed), keeping chaos runs reproducible.
	Jitter float64
	// Budget is the per-question deadline budget: the wall-clock allowance
	// for *all* remote work one question triggers, attempts and backoffs
	// included (default = NodeConfig.RequestTimeout). When the budget runs
	// out, remaining work degrades to local execution immediately.
	Budget time.Duration
}

func (p RetryPolicy) withDefaults(reqTimeout time.Duration) RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 2
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 25 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 250 * time.Millisecond
	}
	if p.Jitter <= 0 || p.Jitter > 1 {
		p.Jitter = 0.5
	}
	if p.Budget <= 0 {
		p.Budget = reqTimeout
	}
	return p
}

// errBreakerOpen is returned (wrapped) when the destination peer's circuit
// breaker is open: the call failed fast without touching the network.
var errBreakerOpen = errors.New("circuit breaker open")

// errBudgetExhausted is returned (wrapped) when a question's deadline
// budget ran out before the call could be attempted.
var errBudgetExhausted = errors.New("question budget exhausted")

// retrier owns the node's retry RNG (jitter must be lock-protected: many
// question goroutines back off concurrently).
type retrier struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newRetrier(seed int64) *retrier {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &retrier{rng: rand.New(rand.NewSource(seed))}
}

// backoff returns the jittered delay before retry attempt (1-based).
func (r *retrier) backoff(p RetryPolicy, attempt int) time.Duration {
	d := p.BaseBackoff << (attempt - 1)
	if d > p.MaxBackoff || d <= 0 {
		d = p.MaxBackoff
	}
	r.mu.Lock()
	f := r.rng.Float64()
	r.mu.Unlock()
	// Equal jitter: keep (1-Jitter) of d deterministic, randomize the rest.
	return time.Duration(float64(d) * ((1 - p.Jitter) + p.Jitter*f))
}

// opOfKind maps a wire request kind to its fault/metrics operation name.
func opOfKind(kind string) string {
	switch kind {
	case kindHeartbeat:
		return fault.OpHeartbeat
	case kindPRSubtask:
		return fault.OpPR
	case kindAPSubtask:
		return fault.OpAP
	case kindAsk:
		return fault.OpForward
	case kindShardPR:
		return fault.OpShardPR
	case kindShardDF:
		return fault.OpShardDF
	case kindStatus, kindMetrics:
		return fault.OpStatus
	default:
		return kind
	}
}

// callPeer is the node's guarded remote-call path: circuit breaker in
// front, pooled transport underneath, jittered-backoff retries behind, the
// whole thing bounded by the question's deadline budget. Every remote call
// the node makes on behalf of a question (forward, PR sub-task, AP
// sub-task) and every heartbeat goes through here.
//
// maxAttempts <= 0 uses the node's retry policy; heartbeats pass 1.
func (n *Node) callPeer(addr string, req *Request, deadline time.Time, maxAttempts int) (*Response, error) {
	op := opOfKind(req.Kind)
	if maxAttempts <= 0 {
		maxAttempts = n.retryPolicy.MaxAttempts
	}
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		now := time.Now()
		remaining := deadline.Sub(now)
		if remaining <= 0 {
			if lastErr != nil {
				return nil, fmt.Errorf("live: call %s op=%s: %w (last error: %v)", addr, op, errBudgetExhausted, lastErr)
			}
			return nil, fmt.Errorf("live: call %s op=%s: %w", addr, op, errBudgetExhausted)
		}
		if !n.breakers.allow(addr, now) {
			n.recordFailure(op, addr, errBreakerOpen)
			return nil, fmt.Errorf("live: call %s op=%s: %w", addr, op, errBreakerOpen)
		}
		timeout := remaining
		if n.cfg.RequestTimeout < timeout {
			timeout = n.cfg.RequestTimeout
		}
		resp, err := n.mux.Call(addr, req, timeout)
		if err == nil {
			n.breakers.onSuccess(addr)
			return resp, nil
		}
		n.breakers.onFailure(addr, time.Now())
		n.recordFailure(op, addr, err)
		lastErr = err
		if attempt+1 < maxAttempts {
			n.nm.retries(op).Inc()
			delay := n.retry.backoff(n.retryPolicy, attempt+1)
			if until := time.Until(deadline); delay > until {
				delay = until
			}
			if delay > 0 {
				select {
				case <-time.After(delay):
				case <-n.done:
					return nil, lastErr
				}
			}
		}
	}
	return nil, lastErr
}
