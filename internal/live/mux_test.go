package live

import (
	"encoding/gob"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"distqa/internal/wire"
)

// startMuxServer runs a hand-rolled binary-codec server whose per-frame
// behaviour is scripted by handle: it receives the 0-based connection and
// frame index plus the request ID, and returns the response to send — or nil
// to close the connection without responding (simulating a peer dying
// mid-call). Negotiation follows the production hello: magic, version, ack.
func startMuxServer(t *testing.T, handle func(connIdx, frameIdx int, id uint64) *Response) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for connIdx := 0; ; connIdx++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn, ci int) {
				defer c.Close()
				peek := make([]byte, wire.MagicLen)
				if _, err := io.ReadFull(c, peek); err != nil || !wire.IsMagic(peek) {
					return
				}
				if _, err := wire.ReadHelloVersion(c); err != nil {
					return
				}
				if err := wire.WriteAck(c, wire.VersionBin); err != nil {
					return
				}
				var rbuf []byte
				for frame := 0; ; frame++ {
					payload, err := wire.ReadFrame(c, rbuf)
					if err != nil {
						return
					}
					rbuf = payload[:cap(payload)]
					r := wire.NewReader(payload)
					id := r.Uint64()
					resp := handle(ci, frame, id)
					if resp == nil {
						return
					}
					b := wire.GetBuffer()
					b.BeginFrame()
					b.Uint64(id)
					if err := appendResponseWire(b, resp); err == nil {
						err = b.EndFrame()
						if err == nil {
							_, err = c.Write(b.B)
						}
					}
					wire.PutBuffer(b)
					if err != nil {
						return
					}
				}
			}(c, connIdx)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// newTestMux builds a MuxTransport over a fresh pool, both cleaned up with
// the test.
func newTestMux(t *testing.T, cfg MuxConfig) *MuxTransport {
	t.Helper()
	pool := NewPool(PoolConfig{})
	mt := NewMuxTransport(cfg, pool)
	t.Cleanup(func() { mt.Close(); pool.Close() })
	return mt
}

// TestMuxSixteenConcurrentOneConn is the acceptance scenario: 16 concurrent
// callers against one peer must share exactly one negotiated connection —
// no per-call dials, no fallback to the gob pool.
func TestMuxSixteenConcurrentOneConn(t *testing.T) {
	nodes := startCluster(t, 1)
	mt := newTestMux(t, MuxConfig{})

	const (
		goroutines = 16
		calls      = 10
	)
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				if _, err := mt.Call(nodes[0].Addr(), &Request{Kind: kindStatus}, 5*time.Second); err != nil {
					errs[g] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	st := mt.Stats()
	if st.Dials != 1 || st.OpenConns != 1 {
		t.Fatalf("want exactly one multiplexed conn, got %+v", st)
	}
	if st.Fallbacks != 0 {
		t.Fatalf("calls fell back to the gob pool: %+v", st)
	}
	if st.Calls != goroutines*calls {
		t.Fatalf("calls = %d, want %d", st.Calls, goroutines*calls)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight gauge = %d after quiesce, want 0", st.InFlight)
	}
}

// TestMuxNoStaleDeadline is the multiplexed analogue of
// TestPoolNoInheritedDeadline: a call that times out against a slow peer must
// not poison the shared connection for the next call. The scripted server
// sleeps past the first call's timeout before answering (the late response is
// dropped by the demux loop), then answers the second call promptly on the
// SAME connection. If the timed-out call left a deadline or killed the conn,
// the second call would need a redial.
func TestMuxNoStaleDeadline(t *testing.T) {
	addr := startMuxServer(t, func(ci, frame int, id uint64) *Response {
		if ci == 0 && frame == 0 {
			time.Sleep(400 * time.Millisecond) // outlive the first call's timeout
		}
		return &Response{ServedBy: "muxsrv"}
	})
	mt := newTestMux(t, MuxConfig{})

	if _, err := mt.Call(addr, &Request{Kind: kindStatus}, 100*time.Millisecond); err == nil {
		t.Fatal("slow first call did not time out")
	} else if !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("first call error = %v, want timeout", err)
	}
	resp, err := mt.Call(addr, &Request{Kind: kindStatus}, 5*time.Second)
	if err != nil {
		t.Fatalf("second call after peer slowness: %v", err)
	}
	if resp.ServedBy != "muxsrv" {
		t.Fatalf("served by %q", resp.ServedBy)
	}
	st := mt.Stats()
	if st.Dials != 1 {
		t.Fatalf("dials = %d, want 1 (timed-out call must not burn the conn)", st.Dials)
	}
	if st.Redials != 0 {
		t.Fatalf("redials = %d after a per-call timeout; stale deadline inherited?", st.Redials)
	}
}

// TestMuxTransparentRedial scripts a peer that dies mid-call: connection 0
// answers its first frame, then closes on the second without responding. The
// transport must detect the dead reused connection and transparently redial
// exactly once; the caller sees two successes.
func TestMuxTransparentRedial(t *testing.T) {
	addr := startMuxServer(t, func(ci, frame int, id uint64) *Response {
		if ci == 0 && frame == 1 {
			return nil // die mid-call
		}
		return &Response{ServedBy: "muxsrv"}
	})
	mt := newTestMux(t, MuxConfig{})

	for i := 0; i < 2; i++ {
		if _, err := mt.Call(addr, &Request{Kind: kindStatus}, 5*time.Second); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	st := mt.Stats()
	if st.Redials != 1 {
		t.Fatalf("redials = %d, want 1", st.Redials)
	}
	if st.Dials != 2 {
		t.Fatalf("dials = %d, want 2", st.Dials)
	}
	if st.Fallbacks != 0 {
		t.Fatalf("unexpected gob fallbacks: %+v", st)
	}
}

// TestMuxInFlightBackpressure holds the single in-flight slot with a blocked
// call and checks that a second call with a short timeout fails on the limit
// rather than queueing forever; once the slot frees, the blocked call
// completes normally.
func TestMuxInFlightBackpressure(t *testing.T) {
	release := make(chan struct{})
	addr := startMuxServer(t, func(ci, frame int, id uint64) *Response {
		if ci == 0 && frame == 0 {
			<-release
		}
		return &Response{ServedBy: "muxsrv"}
	})
	mt := newTestMux(t, MuxConfig{InFlight: 1})

	done := make(chan error, 1)
	go func() {
		_, err := mt.Call(addr, &Request{Kind: kindStatus}, 10*time.Second)
		done <- err
	}()
	// Wait until the blocked call owns the slot.
	deadline := time.Now().Add(5 * time.Second)
	for mt.Stats().InFlight == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if mt.Stats().InFlight != 1 {
		t.Fatal("first call never became in-flight")
	}

	_, err := mt.Call(addr, &Request{Kind: kindStatus}, 100*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "in-flight") {
		t.Fatalf("second call error = %v, want in-flight limit timeout", err)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("blocked call failed after release: %v", err)
	}
}

// startGobOnlyServer runs a legacy peer: plain gob request/response streams,
// no knowledge of the binary hello. The first connection receives the hello
// bytes, fails its gob decode and closes — exactly how a pre-upgrade node
// reacts — and the client must degrade to the pooled gob path.
func startGobOnlyServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				dec := gob.NewDecoder(c)
				enc := gob.NewEncoder(c)
				for {
					var req Request
					if err := dec.Decode(&req); err != nil {
						return
					}
					if err := enc.Encode(&Response{ServedBy: "gob-only"}); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// TestMuxGobPeerFallback checks codec negotiation against a peer that never
// acks the binary hello: the call must degrade to the gob pool and succeed,
// the peer must be pinned so the second call skips the hello entirely, and
// the status snapshot must report the pin.
func TestMuxGobPeerFallback(t *testing.T) {
	addr := startGobOnlyServer(t)
	mt := newTestMux(t, MuxConfig{})

	// The gob peer never answers the hello, so negotiation runs out the
	// (clamped) timeout before falling back — keep it short.
	resp, err := mt.Call(addr, &Request{Kind: kindStatus}, 500*time.Millisecond)
	if err != nil {
		t.Fatalf("first call against gob peer: %v", err)
	}
	if resp.ServedBy != "gob-only" {
		t.Fatalf("served by %q, want gob fallback", resp.ServedBy)
	}
	// Pinned now: the second call must go straight to the pool, fast.
	begin := time.Now()
	if _, err := mt.Call(addr, &Request{Kind: kindStatus}, 5*time.Second); err != nil {
		t.Fatalf("second call: %v", err)
	}
	if d := time.Since(begin); d > time.Second {
		t.Fatalf("pinned gob peer call took %v; re-negotiated instead of using the pin?", d)
	}
	st := mt.Stats()
	if st.Fallbacks != 2 {
		t.Fatalf("fallbacks = %d, want 2", st.Fallbacks)
	}
	if st.Dials != 0 || st.OpenConns != 0 {
		t.Fatalf("mux conns against a gob-only peer: %+v", st)
	}
	snap := mt.Snapshot()
	if len(snap) != 1 || !snap[0].GobOnly || snap[0].Addr != addr {
		t.Fatalf("snapshot = %+v, want one gob-pinned peer", snap)
	}
}

// TestMuxDisabledUsesPool pins the transport to the pool path and checks no
// mux connection is ever negotiated.
func TestMuxDisabledUsesPool(t *testing.T) {
	nodes := startCluster(t, 1)
	mt := newTestMux(t, MuxConfig{Disabled: true})
	if _, err := mt.Call(nodes[0].Addr(), &Request{Kind: kindStatus}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if st := mt.Stats(); st.Dials != 0 || st.Calls != 0 {
		t.Fatalf("disabled transport negotiated mux conns: %+v", st)
	}
}
