package live

import (
	"io"
	"sync"
	"time"

	"distqa/internal/fault"
	"distqa/internal/obs"
)

// nodeMetrics caches the node's hot-path metric handles so instrumented code
// never goes through the registry's map lookups.
type nodeMetrics struct {
	reg *obs.Registry

	questions   *obs.Counter // live_questions_total
	forwardsOut *obs.Counter // live_forwards_total{direction="out"}
	forwardsIn  *obs.Counter // live_forwards_total{direction="in"}
	prSent      *obs.Counter // live_subtasks_total{kind="pr",direction="sent"}
	prRecv      *obs.Counter // live_subtasks_total{kind="pr",direction="received"}
	apSent      *obs.Counter // live_subtasks_total{kind="ap",direction="sent"}
	apRecv      *obs.Counter // live_subtasks_total{kind="ap",direction="received"}
	hbSent      *obs.Counter // live_heartbeats_total{direction="sent"}
	hbRecv      *obs.Counter // live_heartbeats_total{direction="received"}

	failForward *obs.Counter // live_request_failures_total{op="forward"}
	failPR      *obs.Counter // live_request_failures_total{op="pr"}
	failAP      *obs.Counter // live_request_failures_total{op="ap"}
	failHB      *obs.Counter // live_request_failures_total{op="heartbeat"}

	// Fault-tolerance instrumentation: retry attempts per op
	// (live_retries_total{op=...}), circuit-breaker trips
	// (live_breaker_trips_total), detector re-admissions
	// (live_peer_readmissions_total) and per-peer blame counters
	// (live_peer_failures_total{op=...,peer=...}, created lazily — the peer
	// label space is unbounded).
	retryByOp    map[string]*obs.Counter
	breakerTrips *obs.Counter
	readmissions *obs.Counter

	blameMu     sync.Mutex
	blameByPeer map[string]int64 // per-peer failure totals for PeerHealth

	// Connection-pool instrumentation. These are the same counters the
	// node's Pool increments (registry lookups are idempotent), cached here
	// for the Status snapshot.
	poolHits      *obs.Counter // live_pool_hits
	poolMisses    *obs.Counter // live_pool_misses
	poolEvictions *obs.Counter // live_pool_evictions
	poolRedials   *obs.Counter // live_pool_redials
	poolOpen      *obs.Gauge   // live_pool_open_conns

	// Question/PR cache instrumentation (PR-4): the answer cache in front of
	// the whole pipeline and the PR partial cache in front of retrieval.
	cacheAnsHits      *obs.Counter // live_qcache_answer_hits
	cacheAnsMisses    *obs.Counter // live_qcache_answer_misses
	cacheAnsCoalesced *obs.Counter // live_qcache_answer_coalesced
	cachePRHits       *obs.Counter // live_qcache_pr_hits
	cachePRMisses     *obs.Counter // live_qcache_pr_misses

	// Sharding instrumentation (PR-5): scatter-gather sub-tasks, replica
	// failovers and the node's current shard-map epoch.
	shardPRSent    *obs.Counter // live_shard_subtasks_total{kind="pr",direction="sent"}
	shardPRRecv    *obs.Counter // live_shard_subtasks_total{kind="pr",direction="received"}
	shardDFRecv    *obs.Counter // live_shard_subtasks_total{kind="df",direction="received"}
	shardFailovers *obs.Counter // live_shard_failovers_total
	shardEpoch     *obs.Gauge   // live_shard_epoch

	// Selective-routing instrumentation (PR-7): per-shard routing verdicts
	// (live_route_decisions_total{action=...}), fallback reasons, whole-plan
	// outcomes, short-circuited fan-outs, and summary-gossip pull traffic.
	routeSkips           *obs.Counter // live_route_decisions_total{action="skip"}
	routeScatters        *obs.Counter // live_route_decisions_total{action="scatter"}
	routeFallbackMissing *obs.Counter // live_route_fallbacks_total{reason="missing"}
	routeFallbackStale   *obs.Counter // live_route_fallbacks_total{reason="stale"}
	routeShortCircuits   *obs.Counter // live_route_shortcircuits_total
	routePlansSelective  *obs.Counter // live_route_plans_total{outcome="selective"}
	routePlansFallback   *obs.Counter // live_route_plans_total{outcome="fallback"}
	sumPullsSent         *obs.Counter // live_summary_pulls_total{direction="sent"}
	sumPullsServed       *obs.Counter // live_summary_pulls_total{direction="served"}
	sumPullFailures      *obs.Counter // live_summary_pull_failures_total

	active     *obs.Gauge // live_questions_active
	queueDepth *obs.Gauge // live_admission_queue_depth
	peers      *obs.Gauge // live_peers (refreshed at scrape time)
	uptime     *obs.Gauge // live_uptime_seconds (refreshed at scrape time)

	askSeconds *obs.Histogram            // live_ask_seconds
	stages     map[string]*obs.Histogram // qa_stage_seconds{stage=...}
}

func newNodeMetrics(reg *obs.Registry) *nodeMetrics {
	m := &nodeMetrics{reg: reg}
	m.questions = reg.Counter("live_questions_total", nil)
	m.forwardsOut = reg.Counter("live_forwards_total", obs.Labels{"direction": "out"})
	m.forwardsIn = reg.Counter("live_forwards_total", obs.Labels{"direction": "in"})
	m.prSent = reg.Counter("live_subtasks_total", obs.Labels{"kind": "pr", "direction": "sent"})
	m.prRecv = reg.Counter("live_subtasks_total", obs.Labels{"kind": "pr", "direction": "received"})
	m.apSent = reg.Counter("live_subtasks_total", obs.Labels{"kind": "ap", "direction": "sent"})
	m.apRecv = reg.Counter("live_subtasks_total", obs.Labels{"kind": "ap", "direction": "received"})
	m.hbSent = reg.Counter("live_heartbeats_total", obs.Labels{"direction": "sent"})
	m.hbRecv = reg.Counter("live_heartbeats_total", obs.Labels{"direction": "received"})
	m.failForward = reg.Counter("live_request_failures_total", obs.Labels{"op": "forward"})
	m.failPR = reg.Counter("live_request_failures_total", obs.Labels{"op": "pr"})
	m.failAP = reg.Counter("live_request_failures_total", obs.Labels{"op": "ap"})
	m.failHB = reg.Counter("live_request_failures_total", obs.Labels{"op": "heartbeat"})
	m.retryByOp = make(map[string]*obs.Counter, 6)
	for _, op := range []string{fault.OpHeartbeat, fault.OpForward, fault.OpPR, fault.OpAP, fault.OpStatus, fault.OpShardPR} {
		m.retryByOp[op] = reg.Counter("live_retries_total", obs.Labels{"op": op})
	}
	m.breakerTrips = reg.Counter("live_breaker_trips_total", nil)
	m.readmissions = reg.Counter("live_peer_readmissions_total", nil)
	m.blameByPeer = make(map[string]int64)
	m.poolHits = reg.Counter("live_pool_hits", nil)
	m.poolMisses = reg.Counter("live_pool_misses", nil)
	m.poolEvictions = reg.Counter("live_pool_evictions", nil)
	m.poolRedials = reg.Counter("live_pool_redials", nil)
	m.poolOpen = reg.Gauge("live_pool_open_conns", nil)
	m.cacheAnsHits = reg.Counter("live_qcache_answer_hits", nil)
	m.cacheAnsMisses = reg.Counter("live_qcache_answer_misses", nil)
	m.cacheAnsCoalesced = reg.Counter("live_qcache_answer_coalesced", nil)
	m.cachePRHits = reg.Counter("live_qcache_pr_hits", nil)
	m.cachePRMisses = reg.Counter("live_qcache_pr_misses", nil)
	m.shardPRSent = reg.Counter("live_shard_subtasks_total", obs.Labels{"kind": "pr", "direction": "sent"})
	m.shardPRRecv = reg.Counter("live_shard_subtasks_total", obs.Labels{"kind": "pr", "direction": "received"})
	m.shardDFRecv = reg.Counter("live_shard_subtasks_total", obs.Labels{"kind": "df", "direction": "received"})
	m.shardFailovers = reg.Counter("live_shard_failovers_total", nil)
	m.shardEpoch = reg.Gauge("live_shard_epoch", nil)
	m.routeSkips = reg.Counter("live_route_decisions_total", obs.Labels{"action": "skip"})
	m.routeScatters = reg.Counter("live_route_decisions_total", obs.Labels{"action": "scatter"})
	m.routeFallbackMissing = reg.Counter("live_route_fallbacks_total", obs.Labels{"reason": "missing"})
	m.routeFallbackStale = reg.Counter("live_route_fallbacks_total", obs.Labels{"reason": "stale"})
	m.routeShortCircuits = reg.Counter("live_route_shortcircuits_total", nil)
	m.routePlansSelective = reg.Counter("live_route_plans_total", obs.Labels{"outcome": "selective"})
	m.routePlansFallback = reg.Counter("live_route_plans_total", obs.Labels{"outcome": "fallback"})
	m.sumPullsSent = reg.Counter("live_summary_pulls_total", obs.Labels{"direction": "sent"})
	m.sumPullsServed = reg.Counter("live_summary_pulls_total", obs.Labels{"direction": "served"})
	m.sumPullFailures = reg.Counter("live_summary_pull_failures_total", nil)
	m.active = reg.Gauge("live_questions_active", nil)
	m.queueDepth = reg.Gauge("live_admission_queue_depth", nil)
	m.peers = reg.Gauge("live_peers", nil)
	m.uptime = reg.Gauge("live_uptime_seconds", nil)
	m.askSeconds = reg.Histogram("live_ask_seconds", nil, obs.LatencyBuckets())
	m.stages = make(map[string]*obs.Histogram, 6)
	for _, stage := range []string{obs.StageQP, obs.StagePR, obs.StagePS, obs.StagePO, obs.StageAP, obs.StageMerge} {
		m.stages[stage] = reg.Histogram("qa_stage_seconds", obs.Labels{"stage": stage}, obs.LatencyBuckets())
	}
	return m
}

// retries returns the retry counter for op (lazily registered for exotic
// ops; the protocol's five ops are pre-registered).
func (m *nodeMetrics) retries(op string) *obs.Counter {
	if c, ok := m.retryByOp[op]; ok {
		return c
	}
	return m.reg.Counter("live_retries_total", obs.Labels{"op": op})
}

// blame attributes one remote-call failure to a specific peer: it feeds the
// per-peer labelled failure counter *and* the PeerHealth.Failures snapshot,
// so the chaos harness can assert exactly which peer a local-fallback
// recovery blamed.
func (m *nodeMetrics) blame(op, addr string) {
	m.reg.Counter("live_peer_failures_total", obs.Labels{"op": op, "peer": addr}).Inc()
	m.blameMu.Lock()
	m.blameByPeer[addr]++
	m.blameMu.Unlock()
}

// retryTotal sums retry attempts across the pre-registered ops.
func (m *nodeMetrics) retryTotal() int64 {
	var total int64
	for _, c := range m.retryByOp {
		total += c.Value()
	}
	return total
}

// peerFailures returns the failures blamed on addr so far.
func (m *nodeMetrics) peerFailures(addr string) int64 {
	m.blameMu.Lock()
	defer m.blameMu.Unlock()
	return m.blameByPeer[addr]
}

// recordFailure is the single funnel for "a remote call to addr failed":
// per-peer blame plus the aggregate per-op failure counter.
func (n *Node) recordFailure(op, addr string, err error) {
	_ = err
	n.nm.blame(op, addr)
}

// observeSpan feeds the per-stage latency histograms from completed spans —
// the recorder's OnEnd hook, so every stage executed on this node (locally
// or as a remote sub-task) lands in qa_stage_seconds{stage=...}.
func (m *nodeMetrics) observeSpan(s obs.Span) {
	if s.Stage == "" {
		return
	}
	h, ok := m.stages[s.Stage]
	if !ok {
		h = m.reg.Histogram("qa_stage_seconds", obs.Labels{"stage": s.Stage}, obs.LatencyBuckets())
	}
	h.Observe(s.Duration().Seconds())
}

// Metrics returns the node's metrics registry (for embedding into HTTP
// servers or tests).
func (n *Node) Metrics() *obs.Registry { return n.obs }

// Spans returns the node's span recorder.
func (n *Node) Spans() *obs.Recorder { return n.spans }

// refreshScrapeGauges updates the gauges that are computed at scrape time
// rather than maintained incrementally: uptime, fresh peer count, per-peer
// detector and breaker states, and the Go runtime gauges (goroutines, heap,
// GC pause p99). Both the text scrape and the fleet metrics pull call it, so
// a pulled snapshot and a local scrape describe the same instant.
func (n *Node) refreshScrapeGauges() {
	n.nm.uptime.Set(int64(time.Since(n.started).Seconds()))
	n.nm.peers.Set(int64(len(n.freshPeers())))
	now := time.Now()
	for _, ph := range n.detector.snapshot(now) {
		n.obs.Gauge("live_peer_state", obs.Labels{"peer": ph.Addr}).
			Set(int64(n.detector.stateOf(ph.Addr, now)))
		n.obs.Gauge("live_breaker_state", obs.Labels{"peer": ph.Addr}).
			Set(int64(n.breakers.stateOf(ph.Addr)))
	}
	n.obs.SetRuntimeGauges(n.runtimeSample())
}

// runtimeSample returns the node's Go runtime stats, re-sampled at most once
// per second (see the rtMu field comment in node.go).
func (n *Node) runtimeSample() obs.RuntimeStats {
	n.rtMu.Lock()
	defer n.rtMu.Unlock()
	if now := time.Now(); n.rtSampledAt.IsZero() || now.Sub(n.rtSampledAt) >= time.Second {
		n.rtSample = obs.SampleRuntime()
		n.rtSampledAt = now
	}
	return n.rtSample
}

// WriteMetricsText refreshes the scrape-time gauges and renders the registry
// in the Prometheus text format.
func (n *Node) WriteMetricsText(w io.Writer) error {
	n.refreshScrapeGauges()
	return n.obs.WriteText(w)
}

// PeerHealthSnapshot returns the node's current failure-detector and
// circuit-breaker view of every peer it has heard from, with per-peer blame
// totals — the payload behind Status.PeerHealth and `qactl -status`.
func (n *Node) PeerHealthSnapshot() []PeerHealth {
	now := time.Now()
	out := n.detector.snapshot(now)
	for i := range out {
		out[i].Breaker = n.breakers.stateOf(out[i].Addr).String()
		out[i].Failures = n.nm.peerFailures(out[i].Addr)
	}
	return out
}

// statusMetrics snapshots the counters for the Status payload.
func (n *Node) statusMetrics() StatusMetrics {
	failures := n.nm.failForward.Value() + n.nm.failPR.Value() +
		n.nm.failAP.Value() + n.nm.failHB.Value()
	ms := n.mux.Stats()
	rt := n.runtimeSample()
	return StatusMetrics{
		UptimeSeconds:      time.Since(n.started).Seconds(),
		QuestionsServed:    n.nm.questions.Value(),
		ForwardsOut:        n.nm.forwardsOut.Value(),
		ForwardsIn:         n.nm.forwardsIn.Value(),
		PRSubtasksSent:     n.nm.prSent.Value(),
		PRSubtasksReceived: n.nm.prRecv.Value(),
		APSubtasksSent:     n.nm.apSent.Value(),
		APSubtasksReceived: n.nm.apRecv.Value(),
		HeartbeatsSent:     n.nm.hbSent.Value(),
		HeartbeatsReceived: n.nm.hbRecv.Value(),
		RequestFailures:    failures,
		Retries:            n.nm.retryTotal(),
		BreakerTrips:       n.nm.breakerTrips.Value(),
		Readmissions:       n.nm.readmissions.Value(),
		PoolHits:           n.nm.poolHits.Value(),
		PoolMisses:         n.nm.poolMisses.Value(),
		PoolEvictions:      n.nm.poolEvictions.Value(),
		PoolRedials:        n.nm.poolRedials.Value(),
		PoolOpenConns:      n.nm.poolOpen.Value(),

		MuxDials:     ms.Dials,
		MuxRedials:   ms.Redials,
		MuxFallbacks: ms.Fallbacks,
		MuxOpenConns: ms.OpenConns,
		MuxCalls:     ms.Calls,
		MuxInFlight:  ms.InFlight,

		AnswerCacheHits:      n.nm.cacheAnsHits.Value(),
		AnswerCacheMisses:    n.nm.cacheAnsMisses.Value(),
		AnswerCacheCoalesced: n.nm.cacheAnsCoalesced.Value(),
		PRCacheHits:          n.nm.cachePRHits.Value(),
		PRCacheMisses:        n.nm.cachePRMisses.Value(),

		ShardPRSent:     n.nm.shardPRSent.Value(),
		ShardPRReceived: n.nm.shardPRRecv.Value(),
		ShardDFReceived: n.nm.shardDFRecv.Value(),
		ShardFailovers:  n.nm.shardFailovers.Value(),
		ShardEpoch:      n.nm.shardEpoch.Value(),

		RouteSkips:            n.nm.routeSkips.Value(),
		RouteScatters:         n.nm.routeScatters.Value(),
		RouteFallbacksMissing: n.nm.routeFallbackMissing.Value(),
		RouteFallbacksStale:   n.nm.routeFallbackStale.Value(),
		RouteShortCircuits:    n.nm.routeShortCircuits.Value(),
		RoutePlansSelective:   n.nm.routePlansSelective.Value(),
		RoutePlansFallback:    n.nm.routePlansFallback.Value(),
		SummaryPullsSent:      n.nm.sumPullsSent.Value(),
		SummaryPullsServed:    n.nm.sumPullsServed.Value(),
		SummaryPullFailures:   n.nm.sumPullFailures.Value(),

		Goroutines:     int64(rt.Goroutines),
		HeapAllocBytes: int64(rt.HeapAllocBytes),
		GCPauseP99Ms:   float64(rt.GCPauseP99.Microseconds()) / 1000,
		FlightRecords:  int64(n.flight.Len()),
	}
}
