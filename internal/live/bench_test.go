package live

import (
	"testing"
	"time"
)

// startBenchNode starts one node on loopback backed by the shared test
// engine, for RPC micro-benchmarks.
func startBenchNode(b *testing.B) *Node {
	b.Helper()
	node, err := StartNode(NodeConfig{
		Addr:           "127.0.0.1:0",
		Engine:         liveEngine,
		HeartbeatEvery: time.Hour, // keep the benchmark wire quiet
		RequestTimeout: 10 * time.Second,
	})
	if err != nil {
		b.Fatalf("start node: %v", err)
	}
	b.Cleanup(node.Close)
	return node
}

// BenchmarkRPCRoundTripOneShot measures the legacy connection-per-request
// path: TCP dial + fresh gob encoder/decoder (type descriptors retransmitted)
// per call.
func BenchmarkRPCRoundTripOneShot(b *testing.B) {
	node := startBenchNode(b)
	req := &Request{Kind: kindStatus}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := roundTrip(node.Addr(), req, 5*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPCRoundTripPooled measures the pooled path: persistent
// connection, reused gob streams, per-call deadlines only.
func BenchmarkRPCRoundTripPooled(b *testing.B) {
	node := startBenchNode(b)
	pool := NewPool(PoolConfig{})
	b.Cleanup(pool.Close)
	req := &Request{Kind: kindStatus}
	// Warm one connection so b.N==1 runs measure steady state.
	if _, err := pool.Call(node.Addr(), req, 5*time.Second); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.Call(node.Addr(), req, 5*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAskPooledCluster measures an end-to-end distributed question on a
// two-node cluster whose inter-node traffic rides the pool.
func BenchmarkAskPooledCluster(b *testing.B) {
	a := startBenchNode(b)
	c := startBenchNode(b)
	a.AddPeer(c.Addr())
	c.AddPeer(a.Addr())
	q := liveColl.Facts[0].Question
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Ask(a.Addr(), q, 10*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
