package live

import (
	"sync"
	"time"
)

// BreakerState is one peer's circuit-breaker state.
type BreakerState int

const (
	// BreakerClosed: calls flow normally.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe call is let
	// through, and its outcome closes or re-opens the breaker.
	BreakerHalfOpen
	// BreakerOpen: consecutive failures tripped the breaker; calls to the
	// peer fail fast and the caller degrades to local execution.
	BreakerOpen
)

// String returns the state's operator-facing name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes the per-peer circuit breaker layered over the
// connection pool. The pool's transparent stale-conn redial stays; the
// breaker sits above it and reacts to *call* failures (dial errors,
// timeouts, dropped frames), tripping after a streak so a flapping or dead
// peer degrades the caller to fast local execution instead of a timeout per
// attempt.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that trips the
	// breaker open (default 3).
	FailureThreshold int
	// Cooldown is how long an open breaker waits before letting a half-open
	// probe through (default 2 s; chaos tests shrink it).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	return c
}

// breakerSet holds one circuit breaker per peer address.
type breakerSet struct {
	cfg BreakerConfig

	// onTrip, when non-nil, is invoked (outside the lock) each time a
	// breaker trips open — feeds live_breaker_trips_total.
	onTrip func(addr string)

	mu sync.Mutex
	m  map[string]*breaker
}

type breaker struct {
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool
}

func newBreakerSet(cfg BreakerConfig) *breakerSet {
	return &breakerSet{cfg: cfg.withDefaults(), m: make(map[string]*breaker)}
}

func (bs *breakerSet) get(addr string) *breaker {
	b, ok := bs.m[addr]
	if !ok {
		b = &breaker{}
		bs.m[addr] = b
	}
	return b
}

// allow reports whether a call to addr may proceed now. An open breaker
// whose cooldown elapsed transitions to half-open and admits exactly one
// probe; the probe's success/failure (reported via onSuccess/onFailure)
// decides what happens next.
func (bs *breakerSet) allow(addr string, now time.Time) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.get(addr)
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) >= bs.cfg.Cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			return true
		}
		return false
	case BreakerHalfOpen:
		if b.probing {
			return false // a probe is already in flight
		}
		b.probing = true
		return true
	}
	return true
}

// onSuccess records a successful call: any state collapses back to closed.
func (bs *breakerSet) onSuccess(addr string) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.get(addr)
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
}

// onFailure records a failed call, tripping the breaker when the
// consecutive-failure streak reaches the threshold (or instantly for a
// failed half-open probe).
func (bs *breakerSet) onFailure(addr string, now time.Time) {
	bs.mu.Lock()
	b := bs.get(addr)
	tripped := false
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = now
		b.probing = false
		tripped = true
	case BreakerClosed:
		b.fails++
		if b.fails >= bs.cfg.FailureThreshold {
			b.state = BreakerOpen
			b.openedAt = now
			tripped = true
		}
	case BreakerOpen:
		// Late failure from a call admitted before the trip; keep it open.
		b.openedAt = now
	}
	cb := bs.onTrip
	bs.mu.Unlock()
	if tripped && cb != nil {
		cb(addr)
	}
}

// stateOf returns addr's breaker state (closed for unknown peers).
func (bs *breakerSet) stateOf(addr string) BreakerState {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if b, ok := bs.m[addr]; ok {
		return b.state
	}
	return BreakerClosed
}
