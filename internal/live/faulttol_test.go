package live

import (
	"strings"
	"testing"
	"time"

	"distqa/internal/fault"
	"distqa/internal/obs"
)

// startFaultCluster is startCluster with per-node config mutation (fault
// injectors, detector/breaker tuning, seeds).
func startFaultCluster(t *testing.T, n int, mutate func(i int, cfg *NodeConfig)) []*Node {
	t.Helper()
	var nodes []*Node
	for i := 0; i < n; i++ {
		cfg := NodeConfig{
			Addr:           "127.0.0.1:0",
			Engine:         liveEngine,
			HeartbeatEvery: 25 * time.Millisecond,
			RequestTimeout: 10 * time.Second,
			Seed:           int64(i + 1),
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		node, err := StartNode(cfg)
		if err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		nodes = append(nodes, node)
		t.Cleanup(node.Close)
	}
	for i, a := range nodes {
		for j, b := range nodes {
			if i != j {
				a.AddPeer(b.Addr())
			}
		}
	}
	return nodes
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestDetectorGatesDispatch is the failure-detector acceptance test: black
// out one peer's heartbeats and assert that no new forwards or sub-tasks
// reach it until it is re-admitted.
func TestDetectorGatesDispatch(t *testing.T) {
	inj := fault.New(1)
	nodes := startFaultCluster(t, 3, func(i int, cfg *NodeConfig) {
		cfg.Fault = inj // shared injector; rules keyed by source address
	})
	a, c := nodes[0], nodes[2]
	waitForPeers(t, a, 2)
	waitFor(t, "initial alive states", 2*time.Second, func() bool {
		return a.PeerState(c.Addr()) == PeerAlive && len(a.candidatePeers()) == 2
	})

	// Heartbeat blackout: C's beats reach nobody (asymmetric — C still
	// hears everyone else and serves traffic fine if asked).
	ruleID := inj.Add(fault.Rule{From: c.Addr(), Op: fault.OpHeartbeat, Drop: true})
	waitFor(t, "C to become suspect/dead on A", 3*time.Second, func() bool {
		return a.PeerState(c.Addr()) != PeerAlive
	})

	// While blacked out, C must receive no new work from A.
	prBefore := c.nm.prRecv.Value()
	apBefore := c.nm.apRecv.Value()
	fwdBefore := c.nm.forwardsIn.Value()
	for i := 0; i < 3; i++ {
		f := liveColl.Facts[i%len(liveColl.Facts)]
		if _, err := Ask(a.Addr(), f.Question, 10*time.Second); err != nil {
			t.Fatalf("ask during blackout: %v", err)
		}
		for _, p := range a.candidatePeers() {
			if p.Addr == c.Addr() {
				t.Fatal("blacked-out peer still in candidate set")
			}
		}
	}
	if got := c.nm.prRecv.Value(); got != prBefore {
		t.Fatalf("suspect peer received %d new PR sub-tasks", got-prBefore)
	}
	if got := c.nm.apRecv.Value(); got != apBefore {
		t.Fatalf("suspect peer received %d new AP sub-tasks", got-apBefore)
	}
	if got := c.nm.forwardsIn.Value(); got != fwdBefore {
		t.Fatalf("suspect peer received %d new forwards", got-fwdBefore)
	}

	// Lift the blackout: one fresh heartbeat re-admits C.
	inj.Remove(ruleID)
	waitFor(t, "C re-admission on A", 3*time.Second, func() bool {
		return a.PeerState(c.Addr()) == PeerAlive
	})
	found := false
	for _, p := range a.candidatePeers() {
		if p.Addr == c.Addr() {
			found = true
		}
	}
	if !found {
		t.Fatal("re-admitted peer missing from candidate set")
	}
	if a.nm.readmissions.Value() == 0 {
		t.Fatal("re-admission not counted")
	}
	// The health snapshot agrees.
	for _, ph := range a.PeerHealthSnapshot() {
		if ph.Addr == c.Addr() && ph.State != "alive" {
			t.Fatalf("health snapshot says %s, want alive", ph.State)
		}
	}
}

// TestBlameAttribution drops every PR sub-task toward one peer and asserts
// the local-fallback recovery still answers correctly AND records which
// peer failed (the per-peer blame counters the chaos harness asserts on).
func TestBlameAttribution(t *testing.T) {
	inj := fault.New(2)
	nodes := startFaultCluster(t, 2, func(i int, cfg *NodeConfig) {
		if i == 0 {
			cfg.Fault = inj
			cfg.Retry = RetryPolicy{MaxAttempts: 2, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 10 * time.Millisecond}
		}
	})
	a, b := nodes[0], nodes[1]
	waitForPeers(t, a, 1)
	waitFor(t, "B alive on A", 2*time.Second, func() bool { return a.PeerState(b.Addr()) == PeerAlive })

	inj.Add(fault.Rule{From: a.Addr(), To: b.Addr(), Op: fault.OpPR, Drop: true})

	f := liveColl.Facts[0]
	resp, err := Ask(a.Addr(), f.Question, 10*time.Second)
	if err != nil {
		t.Fatalf("ask: %v", err)
	}
	seq := liveEngine.AnswerSequential(f.Question)
	if len(resp.Answers) == 0 || !strings.EqualFold(resp.Answers[0].Text, seq.Answers[0].Text) {
		t.Fatalf("local-fallback answer wrong: %+v", resp.Answers)
	}
	if a.nm.failPR.Value() == 0 {
		t.Fatal("aggregate PR failure counter did not move")
	}
	// Blame is attributed to B specifically.
	blamed := a.Metrics().Counter("live_peer_failures_total", obs.Labels{"op": fault.OpPR, "peer": b.Addr()})
	if blamed.Value() == 0 {
		t.Fatal("no blame attributed to the failed peer")
	}
	if a.nm.peerFailures(b.Addr()) == 0 {
		t.Fatal("PeerHealth blame total did not move")
	}
	// The retry policy fired before falling back.
	if a.nm.retries(fault.OpPR).Value() == 0 {
		t.Fatal("no retry recorded before local fallback")
	}
	// The recovery marker span names the blamed peer.
	foundMarker := false
	for _, s := range resp.Spans {
		if strings.HasPrefix(s.Name, "recover:pr peer=") && strings.Contains(s.Name, b.Addr()) {
			foundMarker = true
		}
	}
	if !foundMarker {
		t.Fatal("no recover:pr marker span naming the blamed peer")
	}
}

// TestBreakerLifecycle drives one peer's breaker through
// closed -> open -> half-open -> closed.
func TestBreakerLifecycle(t *testing.T) {
	bs := newBreakerSet(BreakerConfig{FailureThreshold: 3, Cooldown: 50 * time.Millisecond})
	trips := 0
	bs.onTrip = func(string) { trips++ }
	now := time.Now()
	const peer = "p"

	for i := 0; i < 3; i++ {
		if !bs.allow(peer, now) {
			t.Fatalf("closed breaker blocked call %d", i)
		}
		bs.onFailure(peer, now)
	}
	if got := bs.stateOf(peer); got != BreakerOpen {
		t.Fatalf("after threshold failures state=%v", got)
	}
	if trips != 1 {
		t.Fatalf("trips=%d", trips)
	}
	if bs.allow(peer, now.Add(10*time.Millisecond)) {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	// Cooldown elapsed: exactly one probe is admitted.
	probeAt := now.Add(60 * time.Millisecond)
	if !bs.allow(peer, probeAt) {
		t.Fatal("half-open breaker refused the probe")
	}
	if bs.allow(peer, probeAt) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Failed probe re-opens instantly.
	bs.onFailure(peer, probeAt)
	if got := bs.stateOf(peer); got != BreakerOpen {
		t.Fatalf("failed probe left state=%v", got)
	}
	if trips != 2 {
		t.Fatalf("trips=%d after failed probe", trips)
	}
	// Next probe succeeds and closes the breaker.
	again := probeAt.Add(60 * time.Millisecond)
	if !bs.allow(peer, again) {
		t.Fatal("second probe refused")
	}
	bs.onSuccess(peer)
	if got := bs.stateOf(peer); got != BreakerClosed {
		t.Fatalf("successful probe left state=%v", got)
	}
	if !bs.allow(peer, again) {
		t.Fatal("closed breaker blocked")
	}
}

// TestBreakerDegradesForwardsToLocal trips a breaker by pointing a node at
// a dead peer address and asserts calls fail fast (breaker open) while
// questions still get answered locally.
func TestBreakerDegradesToLocal(t *testing.T) {
	nodes := startFaultCluster(t, 1, func(i int, cfg *NodeConfig) {
		cfg.Breaker = BreakerConfig{FailureThreshold: 2, Cooldown: 10 * time.Second}
		cfg.Retry = RetryPolicy{MaxAttempts: 1, Budget: 5 * time.Second}
		cfg.RequestTimeout = 200 * time.Millisecond
	})
	n := nodes[0]
	// A peer that never answers: a bound-then-closed port.
	dead := "127.0.0.1:1"
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; i < 3; i++ {
		n.callPeer(dead, &Request{Kind: kindStatus}, deadline, 1) //nolint:errcheck
	}
	if got := n.BreakerStateOf(dead); got != BreakerOpen {
		t.Fatalf("breaker state %v after repeated failures, want open", got)
	}
	// Open breaker fails fast, without a network attempt.
	start := time.Now()
	_, err := n.callPeer(dead, &Request{Kind: kindStatus}, time.Now().Add(time.Second), 1)
	if err == nil || !strings.Contains(err.Error(), "circuit breaker open") {
		t.Fatalf("err=%v, want breaker-open", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("breaker-open call took %v, not fail-fast", elapsed)
	}
	if n.nm.breakerTrips.Value() == 0 {
		t.Fatal("breaker trip not counted")
	}
	// The node still answers questions (local execution, no candidates).
	f := liveColl.Facts[2]
	resp, err := Ask(n.Addr(), f.Question, 10*time.Second)
	if err != nil || len(resp.Answers) == 0 {
		t.Fatalf("local ask failed: %v", err)
	}
}

// TestRetryBudgetExhaustion asserts the per-question deadline budget cuts
// retries off: with the budget already spent, callPeer refuses immediately.
func TestRetryBudgetExhaustion(t *testing.T) {
	nodes := startFaultCluster(t, 1, nil)
	n := nodes[0]
	_, err := n.callPeer("127.0.0.1:1", &Request{Kind: kindStatus}, time.Now().Add(-time.Second), 0)
	if err == nil || !strings.Contains(err.Error(), "budget exhausted") {
		t.Fatalf("err=%v, want budget exhausted", err)
	}
}

// TestBackoffJitterBounds checks the jittered exponential schedule stays
// within [d*(1-jitter), d] and is reproducible under a seed.
func TestBackoffJitterBounds(t *testing.T) {
	p := RetryPolicy{}.withDefaults(time.Second)
	r1, r2 := newRetrier(7), newRetrier(7)
	for attempt := 1; attempt <= 6; attempt++ {
		nominal := p.BaseBackoff << (attempt - 1)
		if nominal > p.MaxBackoff {
			nominal = p.MaxBackoff
		}
		d1 := r1.backoff(p, attempt)
		d2 := r2.backoff(p, attempt)
		if d1 != d2 {
			t.Fatalf("same-seed backoffs diverged: %v vs %v", d1, d2)
		}
		lo := time.Duration(float64(nominal) * (1 - p.Jitter))
		if d1 < lo || d1 > nominal {
			t.Fatalf("attempt %d backoff %v outside [%v, %v]", attempt, d1, lo, nominal)
		}
	}
}

// TestInjectorDelayAndDuplicate exercises the remaining injector verbs on
// the live pool: delays stall the call, duplicates re-send it (idempotent
// protocol), severs kill pooled conns.
func TestInjectorDelayAndDuplicate(t *testing.T) {
	inj := fault.New(3)
	nodes := startFaultCluster(t, 2, func(i int, cfg *NodeConfig) {
		if i == 0 {
			cfg.Fault = inj
			// Silence a's background heartbeat loop: the duplicate assertion
			// below counts b's received heartbeats, and a periodic beat
			// landing mid-window would race both the count and the
			// MaxHits-limited duplicate rule. a's peer table still fills
			// from b's beats, which is all waitForPeers needs.
			cfg.HeartbeatEvery = time.Hour
		}
	})
	a, b := nodes[0], nodes[1]
	waitForPeers(t, a, 1)

	// Delay.
	id := inj.Add(fault.Rule{From: a.Addr(), To: b.Addr(), Op: fault.OpStatus, Delay: 80 * time.Millisecond})
	start := time.Now()
	if _, err := a.Pool().QueryStatus(b.Addr(), 5*time.Second); err != nil {
		t.Fatalf("delayed status: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("delay rule not applied: %v", elapsed)
	}
	inj.Remove(id)

	// Duplicate: the peer sees two requests for one call.
	recvBefore := b.nm.hbRecv.Value()
	id = inj.Add(fault.Rule{From: a.Addr(), To: b.Addr(), Op: fault.OpHeartbeat, Duplicate: true, MaxHits: 1})
	deadline := time.Now().Add(2 * time.Second)
	if _, err := a.callPeer(b.Addr(), &Request{Kind: kindHeartbeat, Load: a.loadReport()}, deadline, 1); err != nil {
		t.Fatalf("duplicated heartbeat: %v", err)
	}
	if got := b.nm.hbRecv.Value() - recvBefore; got != 2 {
		t.Fatalf("peer saw %d deliveries for a duplicated call, want 2", got)
	}
	inj.Remove(id)

	// Sever: pooled conns die and the call errors.
	id = inj.Add(fault.Rule{From: a.Addr(), To: b.Addr(), Sever: true})
	if _, err := a.Pool().QueryStatus(b.Addr(), time.Second); err == nil {
		t.Fatal("severed call succeeded")
	}
	inj.Remove(id)
	// After the sever rule lifts, traffic recovers (fresh dial).
	if _, err := a.Pool().QueryStatus(b.Addr(), 5*time.Second); err != nil {
		t.Fatalf("post-sever recovery: %v", err)
	}
}

// TestFrameGuardRejectsOversizedFrame plants a frame larger than
// MaxFrameBytes and asserts the guarded decode errors instead of consuming
// it.
func TestFrameGuardRejectsOversizedFrame(t *testing.T) {
	req := &Request{Kind: kindAsk, Question: strings.Repeat("x", MaxFrameBytes+1024)}
	data := encodeFrame(t, req)
	if _, err := decodeRequestFrame(data); err == nil {
		t.Fatal("oversized frame decoded without error")
	}
}
