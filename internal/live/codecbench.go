package live

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"distqa/internal/wire"
)

// CodecBenchOps returns two closures for the perf suite (`qabench -perf`):
// each performs one heartbeat RPC exchange in memory — encode and decode a
// heartbeat request plus its empty ack response. Heartbeats are the
// steady-state hot path (every node beats every peer continuously, whether
// or not questions are flowing), so this is the exchange whose per-op
// allocation cost the codec tentpole targets. The baseline runs the
// pooled-gob configuration (persistent stream encoder/decoder, so gob's
// per-connection type negotiation is amortised exactly as it is on a pooled
// socket); the candidate runs the binary wire codec with pooled scratch
// buffers and reused decode targets, as the mux transport does. The
// allocs/op gap between the two rows is the codec tentpole's headline
// number.
func CodecBenchOps() (gobOp, wireOp func()) {
	req := &Request{
		Kind: kindHeartbeat,
		Load: LoadReport{
			Addr:      "127.0.0.1:49321",
			Questions: 3,
			Queued:    1,
			APTasks:   7,
			Sent:      time.Now(),
		},
	}
	resp := &Response{} // heartbeat ack

	// Baseline: persistent gob stream codecs over a shared buffer — the
	// pooled-connection configuration (type descriptors sent once, here
	// during the warm-up call the perf runner always makes).
	var stream bytes.Buffer
	enc := gob.NewEncoder(&stream)
	dec := gob.NewDecoder(&stream)
	gobOp = func() {
		if err := enc.Encode(req); err != nil {
			panic(fmt.Sprintf("codec bench: gob encode req: %v", err))
		}
		var r Request
		if err := dec.Decode(&r); err != nil {
			panic(fmt.Sprintf("codec bench: gob decode req: %v", err))
		}
		if err := enc.Encode(resp); err != nil {
			panic(fmt.Sprintf("codec bench: gob encode resp: %v", err))
		}
		var rs Response
		if err := dec.Decode(&rs); err != nil {
			panic(fmt.Sprintf("codec bench: gob decode resp: %v", err))
		}
	}

	// Candidate: pooled wire buffer, decode into a reused Request — the
	// shape of the mux server's per-connection receive loop.
	var reqScratch Request
	wireOp = func() {
		b := wire.GetBuffer()
		b.BeginFrame()
		if err := appendRequestWire(b, req); err != nil {
			panic(fmt.Sprintf("codec bench: wire encode req: %v", err))
		}
		if err := b.EndFrame(); err != nil {
			panic(fmt.Sprintf("codec bench: wire frame req: %v", err))
		}
		rd := wire.NewReader(b.B[4:]) // skip the length header, as ReadFrame would
		if err := decodeRequestWireInto(&rd, &reqScratch); err != nil {
			panic(fmt.Sprintf("codec bench: wire decode req: %v", err))
		}
		b.Reset()
		b.BeginFrame()
		if err := appendResponseWire(b, resp); err != nil {
			panic(fmt.Sprintf("codec bench: wire encode resp: %v", err))
		}
		if err := b.EndFrame(); err != nil {
			panic(fmt.Sprintf("codec bench: wire frame resp: %v", err))
		}
		rd = wire.NewReader(b.B[4:])
		if _, err := decodeResponseWire(&rd); err != nil {
			panic(fmt.Sprintf("codec bench: wire decode resp: %v", err))
		}
		wire.PutBuffer(b)
	}
	return gobOp, wireOp
}
