package live

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"distqa/internal/corpus"
	"distqa/internal/fault"
	"distqa/internal/index"
	"distqa/internal/nlp"
	"distqa/internal/obs"
	"distqa/internal/qa"
	"distqa/internal/qcache"
	"distqa/internal/shard"
	"distqa/internal/wire"
)

// NodeConfig configures one live node.
type NodeConfig struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// Peers are the other nodes' addresses. Peers may also be learned from
	// incoming heartbeats (dynamic pool join, Section 3.1 of the paper).
	Peers []string
	// Corpus is the shared collection configuration; every node generates
	// an identical replica from it.
	Corpus corpus.Config
	// Engine optionally supplies a pre-built engine sharing a collection
	// replica across nodes in the same process (tests, demos). When set,
	// Corpus is ignored.
	Engine *qa.Engine
	// MaxConcurrent is the admission limit (default 4, the paper's
	// full-load threshold).
	MaxConcurrent int
	// HeartbeatEvery is the load-broadcast period (default 500 ms).
	HeartbeatEvery time.Duration
	// RequestTimeout bounds each remote call (default 30 s).
	RequestTimeout time.Duration
	// Detector tunes the heartbeat failure detector (missed-beat thresholds
	// for alive -> suspect -> dead). Zero value selects defaults.
	Detector DetectorConfig
	// Breaker tunes the per-peer circuit breaker layered over the
	// connection pool. Zero value selects defaults.
	Breaker BreakerConfig
	// Retry is the jittered-exponential-backoff retry policy with the
	// per-question deadline budget. Zero value selects defaults.
	Retry RetryPolicy
	// Seed seeds the node's retry-jitter RNG (0 = time-based). Chaos runs
	// set it for reproducibility.
	Seed int64
	// Fault optionally injects faults into every outbound call (package
	// fault): drop, delay, duplicate or sever per peer/op. nil = no faults.
	Fault *fault.Injector
	// Mux tunes the multiplexed binary-codec transport (PR-4). The zero
	// value enables it with defaults; Mux.Disabled pins outbound calls to
	// the gob pool (benchmark comparisons).
	Mux MuxConfig
	// Cache tunes the question/PR result caches (PR-4). The zero value
	// enables both with defaults; Cache.Disabled turns caching off (chaos
	// runs, cold-path benchmarks).
	Cache CacheConfig
	// Shard configures collection sharding (PR-5): K shards, R replicas,
	// chained-declustering placement by NodeIndex/ClusterSize. The zero
	// value keeps the node on a full collection replica.
	Shard ShardConfig
	// SLOObjectives overrides the rolling-window latency/error objectives
	// the node evaluates (PR-6). nil selects obs.DefaultObjectives.
	SLOObjectives []obs.Objective
	// FlightCap bounds the slow-question flight recorder (records retained,
	// keep-the-worst). 0 selects obs.DefaultFlightCap; negative disables.
	FlightCap int
}

// Node is a running live Q/A node.
type Node struct {
	cfg      NodeConfig
	engine   *qa.Engine
	listener net.Listener
	started  time.Time

	// Observability: per-node metrics registry, cached metric handles, the
	// span recorder (stamped with this node's address), the SLO engine and
	// the slow-question flight recorder (PR-6).
	obs    *obs.Registry
	nm     *nodeMetrics
	spans  *obs.Recorder
	slo    *obs.SLOEngine
	flight *obs.FlightRecorder

	// Cached Go runtime sample: runtime.ReadMemStats stops the world and the
	// GC-pause quantile sorts the pause ring, so status replies and scrapes
	// share one sample per second instead of paying that per request (the
	// rpc benchmarks drive QueryStatus in a tight loop).
	rtMu        sync.Mutex
	rtSample    obs.RuntimeStats
	rtSampledAt time.Time

	// pool holds persistent gob connections to peers — the negotiated
	// fallback under mux, and the transport for legacy peers.
	pool *Pool
	// mux is the primary outbound transport: one multiplexed binary-codec
	// connection per peer; heartbeats, forwards and PR/AP sub-task traffic
	// all ride it (degrading to pool, then one-shot, as layers close).
	mux *MuxTransport

	// Question/PR caches (internal/qcache) with singleflight coalescing of
	// identical in-flight questions; see ask.go.
	answerCache *qcache.Cache
	prCache     *qcache.Cache
	askFlight   *qcache.Group

	// Fault tolerance: the heartbeat failure detector (alive/suspect/dead
	// gating of dispatch candidates), per-peer circuit breakers over the
	// pool, and the retry machinery with its seeded jitter RNG.
	detector    *detector
	breakers    *breakerSet
	retry       *retrier
	retryPolicy RetryPolicy

	// Sharding state (PR-5). shardTracker == nil means the node serves a
	// full collection replica (every pre-sharding behaviour intact).
	// holdings/holdSubs are immutable after StartNode and safe to share.
	shardK       int
	shardR       int
	holdings     []int // shard ids this node's index covers
	holdSubs     []int // sub-collections this node's index covers
	shardTracker *shard.Tracker

	// Selective-routing state (PR-7). All nil/empty when routing is off.
	// localSums/localSumVers are immutable after StartNode and safe to share;
	// sumStore holds gossiped summaries of shards other nodes hold.
	localSums    map[int]*shard.Summary
	localSumVers []int64 // parallel to holdings, for the heartbeat payload
	sumStore     *summaryStore
	routeStats   []routeStats // per-shard skip/scatter/fallback counters

	mu         sync.Mutex
	peers      map[string]LoadReport
	knownPeers map[string]bool
	questions  int
	queued     int
	apTasks    int

	// connMu guards the set of accepted keep-alive connections so Close can
	// unblock handler goroutines parked in a decode.
	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	admit     chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// StartNode builds the collection replica (unless an engine is supplied),
// starts listening and begins heartbeating.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 500 * time.Millisecond
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	engine := cfg.Engine
	var (
		shardK, shardR     int
		holdings, holdSubs []int
		tracker            *shard.Tracker
	)
	if engine == nil {
		coll := corpus.Generate(cfg.Corpus)
		if cfg.Shard.enabled() {
			// Text replicated, index sharded: the full collection text is
			// regenerated everywhere (AP and paragraph-reference resolution
			// need it), but the index — the memory-dominant structure — is
			// built only for the sub-collections chained declustering places
			// on this node.
			k, r, err := shard.Normalize(cfg.Shard.K, maxInt(cfg.Shard.R, 1), cfg.Shard.ClusterSize, len(coll.Subs))
			if err != nil {
				return nil, fmt.Errorf("live: shard config: %w", err)
			}
			if cfg.Shard.NodeIndex < 0 || cfg.Shard.NodeIndex >= cfg.Shard.ClusterSize {
				return nil, fmt.Errorf("live: shard config: node index %d outside cluster of %d", cfg.Shard.NodeIndex, cfg.Shard.ClusterSize)
			}
			shardK, shardR = k, r
			holdings = shard.Holdings(cfg.Shard.NodeIndex, cfg.Shard.ClusterSize, k, r)
			holdSubs = shard.HoldingSubs(cfg.Shard.NodeIndex, cfg.Shard.ClusterSize, k, r, len(coll.Subs))
			engine = qa.NewEngine(coll, index.BuildSubset(coll, holdSubs))
			tracker = shard.NewTracker(k)
		} else {
			engine = qa.NewEngine(coll, index.BuildAll(coll))
		}
		// A live node owns its replica and serves real traffic: exploit the
		// host's cores for PR/PS fan-out (byte-identical results either way).
		engine.Workers = runtime.GOMAXPROCS(0)
	} else if cfg.Shard.enabled() {
		// Supplied engine (tests, demos sharing one collection in-process):
		// derive this node's holdings from the engine's shard-scoped index.
		k, r, err := shard.Normalize(cfg.Shard.K, maxInt(cfg.Shard.R, 1), maxInt(cfg.Shard.ClusterSize, 1), len(engine.Coll.Subs))
		if err != nil {
			return nil, fmt.Errorf("live: shard config: %w", err)
		}
		shardK, shardR = k, r
		seen := make(map[int]bool, k)
		for _, sub := range engine.Set.Globals() {
			s := shard.OfSub(sub, k)
			if !seen[s] {
				seen[s] = true
				holdings = append(holdings, s)
			}
		}
		sort.Ints(holdings)
		holdSubs = engine.Set.Globals()
		tracker = shard.NewTracker(k)
	}
	var (
		localSums    map[int]*shard.Summary
		localSumVers []int64
		sumStore     *summaryStore
		rstats       []routeStats
	)
	if tracker != nil && !cfg.Shard.Routing.Disabled {
		// Selective routing (PR-7): summarise each held shard once — the index
		// is immutable, so the summaries (and their content-checksum versions,
		// gossiped on every heartbeat) never change for the node's lifetime.
		localSums = make(map[int]*shard.Summary, len(holdings))
		localSumVers = make([]int64, len(holdings))
		opts := cfg.Shard.Routing.summaryOptions()
		for i, s := range holdings {
			sum, err := shard.BuildSummary(engine.Set, s, shard.SubsOf(s, shardK, len(engine.Coll.Subs)), opts)
			if err != nil {
				return nil, fmt.Errorf("live: summarise shard %d: %w", s, err)
			}
			localSums[s] = &sum
			localSumVers[i] = sum.Version
		}
		sumStore = newSummaryStore()
		rstats = make([]routeStats, shardK)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", cfg.Addr, err)
	}
	reg := obs.NewRegistry()
	flightCap := cfg.FlightCap
	if flightCap == 0 {
		flightCap = obs.DefaultFlightCap
	}
	var flight *obs.FlightRecorder
	if flightCap > 0 {
		flight = obs.NewFlightRecorder(flightCap)
	}
	n := &Node{
		cfg:      cfg,
		engine:   engine,
		listener: ln,
		started:  time.Now(),
		obs:      reg,
		nm:       newNodeMetrics(reg),
		spans:    obs.NewRecorder(ln.Addr().String(), 0),
		slo:      obs.NewSLOEngine(obs.SLOConfig{Objectives: cfg.SLOObjectives}),
		flight:   flight,
		pool: NewPool(PoolConfig{
			Registry: reg,
			Self:     ln.Addr().String(),
			// The injector also lives here (not only on the mux transport)
			// so direct Pool users keep fault semantics; no call is decided
			// twice because the mux fallback uses the injector-free p.call.
			Injector: cfg.Fault,
		}),
		detector:     newDetector(cfg.Detector, cfg.HeartbeatEvery),
		breakers:     newBreakerSet(cfg.Breaker),
		retry:        newRetrier(cfg.Seed),
		retryPolicy:  cfg.Retry.withDefaults(cfg.RequestTimeout),
		shardK:       shardK,
		shardR:       shardR,
		holdings:     holdings,
		holdSubs:     holdSubs,
		shardTracker: tracker,
		localSums:    localSums,
		localSumVers: localSumVers,
		sumStore:     sumStore,
		routeStats:   rstats,
		peers:        make(map[string]LoadReport),
		knownPeers:   make(map[string]bool),
		conns:        make(map[net.Conn]struct{}),
		admit:        make(chan struct{}, cfg.MaxConcurrent),
		done:         make(chan struct{}),
	}
	muxCfg := cfg.Mux
	muxCfg.Registry = reg
	muxCfg.Self = ln.Addr().String()
	muxCfg.Injector = cfg.Fault
	n.mux = NewMuxTransport(muxCfg, n.pool)
	if !cfg.Cache.Disabled {
		cc := cfg.Cache.withDefaults()
		n.answerCache = qcache.New(cc.AnswerCapacity, cc.AnswerTTL)
		n.prCache = qcache.New(cc.PRCapacity, cc.PRTTL)
		n.askFlight = qcache.NewGroup()
	}
	n.breakers.onTrip = func(string) { n.nm.breakerTrips.Inc() }
	// Every stage span completed on this node (local stages and remote
	// sub-tasks alike) feeds the per-stage latency histograms.
	n.spans.OnEnd = n.nm.observeSpan
	for _, a := range cfg.Peers {
		n.knownPeers[a] = true
	}
	n.wg.Add(2)
	go n.serve()
	go n.heartbeatLoop()
	return n, nil
}

// Addr returns the node's bound address.
func (n *Node) Addr() string { return n.listener.Addr().String() }

// Close stops the node. It is idempotent.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		close(n.done)
		n.listener.Close()
		n.mux.Close()
		n.pool.Close()
		// Force-close accepted keep-alive connections so handler goroutines
		// parked in a decode unblock instead of waiting out the idle timeout.
		n.connMu.Lock()
		for c := range n.conns {
			c.Close()
		}
		n.connMu.Unlock()
		n.wg.Wait()
	})
}

// Pool returns the node's peer connection pool (tests, benchmarks).
func (n *Node) Pool() *Pool { return n.pool }

// Mux returns the node's multiplexed peer transport (tests, benchmarks).
func (n *Node) Mux() *MuxTransport { return n.mux }

// serve accepts connections until closed.
func (n *Node) serve() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			select {
			case <-n.done:
				return
			default:
				continue
			}
		}
		n.connMu.Lock()
		n.conns[conn] = struct{}{}
		n.connMu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer func() {
				n.connMu.Lock()
				delete(n.conns, conn)
				n.connMu.Unlock()
			}()
			n.handle(conn)
		}()
	}
}

// heartbeatLoop periodically reports load to every known peer.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-tick.C:
		}
		report := n.loadReport()
		for _, addr := range n.peerAddrs() {
			addr := addr
			go func() {
				n.nm.hbSent.Inc()
				// Single attempt per beat (the next beat is the retry), but
				// breaker-gated: an open breaker makes beats to a dead peer
				// free, and its half-open probe is how connectivity recovery
				// is discovered.
				deadline := time.Now().Add(2 * n.cfg.HeartbeatEvery)
				if _, err := n.callPeer(addr, &Request{Kind: kindHeartbeat, Load: report}, deadline, 1); err != nil {
					n.nm.failHB.Inc()
				}
			}()
		}
		n.pool.EvictIdle()
	}
}

// AddPeer registers another node's address (peers are also learned
// automatically from incoming heartbeats).
func (n *Node) AddPeer(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.knownPeers[addr] = true
}

// peerAddrs merges configured and learned peers.
func (n *Node) peerAddrs() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	set := make(map[string]bool)
	for a := range n.knownPeers {
		set[a] = true
	}
	for a := range n.peers {
		set[a] = true
	}
	delete(set, n.Addr())
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func (n *Node) loadReport() LoadReport {
	n.mu.Lock()
	defer n.mu.Unlock()
	return LoadReport{
		Addr:      n.Addr(),
		Questions: n.questions,
		Queued:    n.queued,
		APTasks:   n.apTasks,
		// The shard claim rides every heartbeat (the load-monitor channel is
		// the shard map's transport). holdings is immutable, safe to share —
		// as is the summary-version vector (PR-7), which is how summaries
		// gossip incrementally: versions every beat, bodies only on pull.
		Shards:  n.holdings,
		SumVers: n.localSumVers,
		Sent:    time.Now(),
	}
}

// freshPeers returns peer reports younger than three heartbeats (the
// paper's stale-node eviction) — the operator-facing peer table.
func (n *Node) freshPeers() []LoadReport {
	n.mu.Lock()
	defer n.mu.Unlock()
	cutoff := time.Now().Add(-3 * n.cfg.HeartbeatEvery)
	var out []LoadReport
	for _, r := range n.peers {
		if r.Sent.After(cutoff) {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// candidatePeers is the dispatch-candidate set: peers the failure detector
// considers alive AND whose circuit breaker is not open. Forwarding and
// PR/AP partitioning draw exclusively from this set, so a peer that stops
// heartbeating (or keeps failing calls) receives no new work until it is
// re-admitted by a fresh heartbeat (and its breaker's half-open probe
// succeeds).
func (n *Node) candidatePeers() []LoadReport {
	now := time.Now()
	var out []LoadReport
	for _, r := range n.freshPeers() {
		if n.detector.stateOf(r.Addr, now) != PeerAlive {
			continue
		}
		if n.breakers.stateOf(r.Addr) == BreakerOpen {
			continue
		}
		out = append(out, r)
	}
	return out
}

// PeerState returns this node's failure-detector verdict on addr (tests,
// chaos harness).
func (n *Node) PeerState(addr string) PeerState {
	return n.detector.stateOf(addr, time.Now())
}

// BreakerStateOf returns this node's circuit-breaker state for addr.
func (n *Node) BreakerStateOf(addr string) BreakerState {
	return n.breakers.stateOf(addr)
}

// handle serves one accepted connection. The first bytes classify the codec:
// the binary hello magic selects the multiplexed frame loop (handleMux);
// anything else is a legacy gob peer — the peeked bytes are replayed into a
// gob decoder and the connection is served by the keep-alive gob loop
// (handleGob). Both styles share the port and the dispatch table, so old gob
// peers (and one-shot clients like qactl) interop with binary-codec nodes.
func (n *Node) handle(conn net.Conn) {
	defer conn.Close()
	peek := make([]byte, wire.MagicLen)
	conn.SetReadDeadline(time.Now().Add(serverIdleTimeout)) //nolint:errcheck
	nr, err := io.ReadFull(conn, peek)
	if err != nil && nr == 0 {
		return
	}
	if err == nil && wire.IsMagic(peek) {
		version, err := wire.ReadHelloVersion(conn)
		if err != nil {
			return
		}
		agreed := wire.Negotiate(wire.VersionBin, version)
		if err := wire.WriteAck(conn, agreed); err != nil {
			return
		}
		if agreed == wire.VersionBin {
			n.handleMux(conn)
			return
		}
		// Negotiated down to gob: the client switches to fresh gob streams
		// after the ack.
		n.handleGob(conn, conn)
		return
	}
	n.handleGob(io.MultiReader(bytes.NewReader(peek[:nr]), conn), conn)
}

// handleMux serves one negotiated binary-codec connection: a demux loop
// reading request frames (uvarint request ID + codec payload) and answering
// each out of order as its handler finishes. Heartbeats are dispatched
// inline — they are cheap and keeping them on the read-loop stack is what
// makes the hot decode path allocation-free; everything else runs in its own
// goroutine behind a per-connection concurrency limit, so one slow ask never
// blocks heartbeat processing on the same socket.
//
// Deadline hygiene matches pool.go: the read deadline is refreshed to the
// keep-alive idle timeout before every frame, and each response write sets a
// fresh write deadline and clears it immediately after — a reused
// multiplexed connection never inherits an expired deadline from a previous
// call (see TestMuxNoStaleDeadline).
func (n *Node) handleMux(conn net.Conn) {
	var wmu sync.Mutex
	var wg sync.WaitGroup
	defer wg.Wait()
	sem := make(chan struct{}, muxServerInFlight)
	var rbuf []byte
	for {
		if err := conn.SetReadDeadline(time.Now().Add(serverIdleTimeout)); err != nil {
			return
		}
		payload, err := wire.ReadFrame(conn, rbuf)
		if err != nil {
			return
		}
		rbuf = payload[:cap(payload)]
		r := wire.NewReader(payload)
		id := r.Uint64()
		var req Request
		// Decode synchronously — the frame buffer is reused for the next
		// read, so the Request must be fully materialized before dispatch.
		if err := decodeRequestWireInto(&r, &req); err != nil {
			return
		}
		if req.Kind == kindHeartbeat || req.Kind == kindStatus || req.Kind == kindMetrics {
			// Cheap control-plane ops: answer inline, no goroutine.
			if err := n.writeMuxResponse(conn, &wmu, id, n.dispatch(&req)); err != nil {
				return
			}
		} else {
			select {
			case sem <- struct{}{}:
			case <-n.done:
				return
			}
			wg.Add(1)
			go func(id uint64, req Request) {
				defer wg.Done()
				defer func() { <-sem }()
				n.writeMuxResponse(conn, &wmu, id, n.dispatch(&req)) //nolint:errcheck
			}(id, req)
		}
		select {
		case <-n.done:
			return
		default:
		}
	}
}

// writeMuxResponse encodes one response frame into a pooled buffer and
// writes it under the connection's write lock with set-then-cleared write
// deadlines.
func (n *Node) writeMuxResponse(conn net.Conn, wmu *sync.Mutex, id uint64, resp *Response) error {
	b := wire.GetBuffer()
	defer wire.PutBuffer(b)
	b.BeginFrame()
	b.Uint64(id)
	if err := appendResponseWire(b, resp); err != nil {
		return err
	}
	if err := b.EndFrame(); err != nil {
		return err
	}
	wmu.Lock()
	defer wmu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(n.cfg.RequestTimeout)) //nolint:errcheck
	_, err := conn.Write(b.B)
	conn.SetWriteDeadline(time.Time{}) //nolint:errcheck
	return err
}

// handleGob serves one legacy gob connection as a keep-alive
// request/response loop: the gob encoder/decoder pair persists across
// requests, matching the client pool's reused streams so type descriptors
// travel once per connection, not once per call. One-shot clients
// (roundTrip) are served identically — they close after the first response
// and the next decode returns EOF.
func (n *Node) handleGob(r io.Reader, conn net.Conn) {
	// The frame guard bounds each decoded message to MaxFrameBytes, so a
	// malformed or hostile frame errors out instead of streaming until the
	// idle timeout (see FuzzDecodeRequest).
	fr := newFrameReader(r)
	dec := gob.NewDecoder(fr)
	enc := gob.NewEncoder(conn)
	for {
		// Wait up to the keep-alive idle timeout for the next request; the
		// client pool's shorter IdleTTL normally retires the conn first.
		if err := conn.SetReadDeadline(time.Now().Add(serverIdleTimeout)); err != nil {
			return
		}
		fr.reset()
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		// Fresh per-request deadline bounding handling plus response write.
		conn.SetDeadline(time.Now().Add(n.cfg.RequestTimeout)) //nolint:errcheck
		resp := n.dispatch(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
		conn.SetDeadline(time.Time{}) //nolint:errcheck
		select {
		case <-n.done:
			return
		default:
		}
	}
}

// dispatch routes one decoded request to its handler.
func (n *Node) dispatch(req *Request) *Response {
	switch req.Kind {
	case kindHeartbeat:
		n.nm.hbRecv.Inc()
		n.mu.Lock()
		stored := req.Load
		// The decoded Shards/SumVers slices may be the mux read loop's scratch
		// buffers (reused next frame); intern stable copies before retaining.
		stored.Shards = internShards(n.peers[req.Load.Addr].Shards, req.Load.Shards)
		stored.SumVers = internInt64s(n.peers[req.Load.Addr].SumVers, req.Load.SumVers)
		n.peers[req.Load.Addr] = stored
		// Heartbeats double as dynamic peer discovery (Section 3.1), so a
		// restarted peer re-joins the mesh without reconfiguration.
		n.knownPeers[req.Load.Addr] = true
		n.mu.Unlock()
		if n.detector.observeBeat(req.Load.Addr, time.Now()) {
			n.nm.readmissions.Inc()
		}
		// Summary gossip (PR-7): an advertised version the store has not seen
		// triggers an async pull; steady-state beats cost a version compare.
		n.observeSummaryVersions(stored.Addr, stored.Shards, stored.SumVers)
		return &Response{}
	case kindStatus:
		return n.handleStatus()
	case kindMetrics:
		return n.handleMetrics()
	case kindPRSubtask:
		return n.handlePRSubtask(req)
	case kindAPSubtask:
		return n.handleAPSubtask(req)
	case kindShardPR:
		// Shard fan-out legs get their own SLO row: the paper's per-module
		// decomposition says PR dominates, so its tail is tracked separately
		// from the end-to-end ask objective.
		start := time.Now()
		resp := n.handleShardPR(req)
		n.slo.Observe("ShardPR", time.Since(start).Seconds(), req.Span.QID, resp.Err != "")
		return resp
	case kindShardDF:
		return n.handleShardDF(req)
	case kindShardSummary:
		return n.handleShardSummary(req)
	case kindMetricsPull:
		return n.handleMetricsPull(req)
	case kindSlow:
		return n.handleSlow(req)
	case kindEstimate:
		return n.handleEstimate(req)
	case kindAsk:
		return n.handleAsk(req)
	default:
		return &Response{Err: fmt.Sprintf("unknown request kind %q", req.Kind)}
	}
}

func (n *Node) handleStatus() *Response {
	n.mu.Lock()
	questions, queued := n.questions, n.queued
	n.mu.Unlock()
	return &Response{Status: &Status{
		Addr:       n.Addr(),
		Collection: n.engine.Coll.Name,
		Paragraphs: len(n.engine.Coll.Paragraphs()),
		IndexBytes: n.engine.Set.IndexBytes(),
		Questions:  questions,
		Queued:     queued,
		Peers:      n.freshPeers(),
		Uptime:     time.Since(n.started),
		Metrics:    n.statusMetrics(),
		PeerHealth: n.PeerHealthSnapshot(),
		Mux:        n.mux.Snapshot(),
		Shard:      n.shardStatus(),
		SLO:        n.slo.Status(),
	}}
}

// handleMetrics renders the node's registry in the Prometheus text format —
// the TCP twin of the qanode -metrics-addr HTTP endpoint, used by
// `qactl -metrics`.
func (n *Node) handleMetrics() *Response {
	var b strings.Builder
	if err := n.WriteMetricsText(&b); err != nil {
		return &Response{Err: err.Error()}
	}
	return &Response{MetricsText: b.String()}
}

// handlePRSubtask retrieves and scores paragraphs from the given
// sub-collections, returning references into the shared replica. The
// resulting span joins the originating question's tree via req.Span.
func (n *Node) handlePRSubtask(req *Request) *Response {
	n.nm.prRecv.Inc()
	span := n.spans.StartSpan("pr-subtask", obs.StagePR, req.Span)
	analysis := nlp.QuestionAnalysis{Keywords: req.Keywords}
	// PR partial cache: a repeated question fans the same (keywords,
	// assignment) sub-task out to this node, and the refs are pure functions
	// of the immutable replica. Keyed in the refs namespace — the local PR
	// path caches []qa.ScoredParagraph under the bare key, and a node can
	// play both roles for the same sub-task.
	key := prRefsCacheKey(req.Keywords, req.Subs)
	if v, ok := n.prCache.Get(key); ok {
		n.nm.cachePRHits.Inc()
		return &Response{ParaRefs: v.([]ParaRef), Spans: []obs.Span{span.End()}}
	}
	if n.prCache != nil {
		n.nm.cachePRMisses.Inc()
	}
	var refs []ParaRef
	for _, sub := range req.Subs {
		if !n.engine.Set.Has(sub) {
			return &Response{Err: fmt.Sprintf("sub-collection %d not held here", sub)}
		}
		rs, _ := n.engine.RetrieveSub(analysis, sub)
		scored, _ := n.engine.ScoreParagraphs(analysis, rs)
		for _, sp := range scored {
			refs = append(refs, ParaRef{ID: sp.Para.ID, Matched: sp.Matched, Score: sp.Score})
		}
	}
	n.prCache.Put(key, refs)
	return &Response{ParaRefs: refs, Spans: []obs.Span{span.End()}}
}

// handleAPSubtask runs answer processing over the referenced paragraphs.
func (n *Node) handleAPSubtask(req *Request) *Response {
	n.nm.apRecv.Inc()
	n.mu.Lock()
	n.apTasks++
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		n.apTasks--
		n.mu.Unlock()
	}()
	span := n.spans.StartSpan("ap-subtask", obs.StageAP, req.Span)
	analysis := nlp.QuestionAnalysis{
		Keywords:   req.Keywords,
		AnswerType: nlp.EntityType(req.AnswerType),
	}
	paras, err := n.resolveRefs(req.ParaRefs)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	answers, _ := n.engine.ExtractAnswers(analysis, paras)
	return &Response{Answers: answers, Spans: []obs.Span{span.End()}}
}

// resolveRefs maps paragraph references back to replica paragraphs.
func (n *Node) resolveRefs(refs []ParaRef) ([]qa.ScoredParagraph, error) {
	all := n.engine.Coll.Paragraphs()
	out := make([]qa.ScoredParagraph, 0, len(refs))
	for _, r := range refs {
		if r.ID < 0 || r.ID >= len(all) {
			return nil, fmt.Errorf("paragraph ref %d out of range", r.ID)
		}
		out = append(out, qa.ScoredParagraph{Para: all[r.ID], Matched: r.Matched, Score: r.Score})
	}
	return out, nil
}
