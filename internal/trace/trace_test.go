package trace

import (
	"strings"
	"testing"
)

func TestLogRecordsInOrder(t *testing.T) {
	l := New()
	l.Add(1.5, "N1", 226, "started question")
	l.Add(2.0, "N2", 226, "received %d paragraphs", 512)
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	es := l.Events()
	if es[0].Text != "started question" || es[1].Text != "received 512 paragraphs" {
		t.Fatalf("events = %+v", es)
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(1, "N1", 0, "ignored")
	if l.Len() != 0 || l.Events() != nil || l.Count("x") != 0 {
		t.Fatal("nil log should record nothing")
	}
}

func TestStringFormat(t *testing.T) {
	l := New()
	l.Add(12.34, "N2", 226, "finished sub-collection 3")
	s := l.String()
	for _, want := range []string{"12.34", "N2", "q226", "finished sub-collection 3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("format %q missing %q", s, want)
		}
	}
	l2 := New()
	l2.Add(1, "N1", -1, "system event")
	if strings.Contains(l2.String(), "q-1") {
		t.Fatal("question -1 should not render")
	}
}

func TestCountAndFilter(t *testing.T) {
	l := New()
	l.Add(1, "N1", 1, "migrated question to N2")
	l.Add(2, "N2", 1, "started PR")
	l.Add(3, "N2", 2, "migrated question to N3")
	if got := l.Count("migrated"); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	only2 := l.Filter(func(e Event) bool { return e.Question == 2 })
	if len(only2) != 1 || only2[0].Node != "N2" {
		t.Fatalf("Filter = %+v", only2)
	}
}
