package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"distqa/internal/obs"
)

func TestLogRecordsInOrder(t *testing.T) {
	l := New()
	l.Add(1.5, "N1", 226, "started question")
	l.Add(2.0, "N2", 226, "received %d paragraphs", 512)
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	es := l.Events()
	if es[0].Text != "started question" || es[1].Text != "received 512 paragraphs" {
		t.Fatalf("events = %+v", es)
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(1, "N1", 0, "ignored")
	if l.Len() != 0 || l.Events() != nil || l.Count("x") != 0 {
		t.Fatal("nil log should record nothing")
	}
}

func TestStringFormat(t *testing.T) {
	l := New()
	l.Add(12.34, "N2", 226, "finished sub-collection 3")
	s := l.String()
	for _, want := range []string{"12.34", "N2", "q226", "finished sub-collection 3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("format %q missing %q", s, want)
		}
	}
	l2 := New()
	l2.Add(1, "N1", -1, "system event")
	if strings.Contains(l2.String(), "q-1") {
		t.Fatal("question -1 should not render")
	}
}

// TestConcurrentAdd exercises the log from many goroutines at once — the
// live cluster and parallel simulator drivers share one log, so Add/Events/
// Count must be safe under `go test -race`.
func TestConcurrentAdd(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	const writers, perWriter = 8, 200
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Add(float64(i), "N1", w, "event %d from writer %d", i, w)
				// Interleave reads with writes: these must not race.
				_ = l.Len()
				_ = l.Count("event")
				for range l.Events() {
				}
			}
		}()
	}
	wg.Wait()
	if got := l.Len(); got != writers*perWriter {
		t.Fatalf("len = %d, want %d", got, writers*perWriter)
	}
	if got := l.Count("event"); got != writers*perWriter {
		t.Fatalf("count = %d, want %d", got, writers*perWriter)
	}
}

// TestEventsReturnsCopy pins that Events is a snapshot: appending after the
// call must not alter a previously returned slice.
func TestEventsReturnsCopy(t *testing.T) {
	l := New()
	l.Add(1, "N1", 1, "first")
	snap := l.Events()
	l.Add(2, "N2", 2, "second")
	if len(snap) != 1 || snap[0].Text != "first" {
		t.Fatalf("snapshot mutated: %+v", snap)
	}
}

func TestChromeEvents(t *testing.T) {
	l := New()
	l.Add(0.5, "N1", 226, "started QP")
	l.Add(2.0, "N2", 226, "started PR on sub-collection 3")
	ces := l.ChromeEvents()
	var buf bytes.Buffer
	if err := obs.WriteChromeJSON(&buf, ces); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("chrome export is not valid JSON")
	}
	instants := 0
	for _, e := range ces {
		if e.Ph == "i" {
			instants++
		}
	}
	if instants != 2 {
		t.Fatalf("instant events = %d, want 2", instants)
	}
}

func TestCountAndFilter(t *testing.T) {
	l := New()
	l.Add(1, "N1", 1, "migrated question to N2")
	l.Add(2, "N2", 1, "started PR")
	l.Add(3, "N2", 2, "migrated question to N3")
	if got := l.Count("migrated"); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	only2 := l.Filter(func(e Event) bool { return e.Question == 2 })
	if len(only2) != 1 || only2[0].Node != "N2" {
		t.Fatalf("Filter = %+v", only2)
	}
}
