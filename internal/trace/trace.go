// Package trace records timestamped scheduling events, reproducing the
// system traces of the paper's Figure 7 (node, virtual time, event text).
package trace

import (
	"fmt"
	"strings"
)

// Event is one trace line.
type Event struct {
	// Time is the virtual time in seconds.
	Time float64
	// Node is the display name of the node the event happened on.
	Node string
	// Question is the question id the event belongs to (-1 if none).
	Question int
	// Text is the human-readable event description.
	Text string
}

// Log is an append-only event log. A nil *Log is valid and records nothing,
// so tracing can be compiled into the hot path without conditionals.
type Log struct {
	events []Event
}

// New creates an empty log.
func New() *Log { return &Log{} }

// Add records an event. No-op on a nil log.
func (l *Log) Add(time float64, node string, question int, format string, args ...any) {
	if l == nil {
		return
	}
	l.events = append(l.events, Event{
		Time:     time,
		Node:     node,
		Question: question,
		Text:     fmt.Sprintf(format, args...),
	})
}

// Events returns the recorded events in order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return l.events
}

// Len reports the number of recorded events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// Filter returns the events satisfying keep, in order.
func (l *Log) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range l.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// String renders the log in the paper's Figure 7 style:
//
//	[  12.34] N2  q226 started paragraph retrieval on sub-collection 3
func (l *Log) String() string {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders one event line.
func (e Event) String() string {
	q := ""
	if e.Question >= 0 {
		q = fmt.Sprintf(" q%d", e.Question)
	}
	return fmt.Sprintf("[%8.2f] %-4s%s %s", e.Time, e.Node, q, e.Text)
}

// Count returns how many events contain the given substring — convenient
// for assertions and for the migration counting of Table 7.
func (l *Log) Count(substr string) int {
	n := 0
	for _, e := range l.Events() {
		if strings.Contains(e.Text, substr) {
			n++
		}
	}
	return n
}
