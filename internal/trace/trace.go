// Package trace records timestamped scheduling events, reproducing the
// system traces of the paper's Figure 7 (node, virtual time, event text).
package trace

import (
	"fmt"
	"strings"
	"sync"

	"distqa/internal/obs"
)

// Event is one trace line.
type Event struct {
	// Time is the virtual time in seconds.
	Time float64
	// Node is the display name of the node the event happened on.
	Node string
	// Question is the question id the event belongs to (-1 if none).
	Question int
	// Text is the human-readable event description.
	Text string
}

// Log is an append-only event log. A nil *Log is valid and records nothing,
// so tracing can be compiled into the hot path without conditionals. All
// methods are safe for concurrent use: the single-goroutine simulator is the
// original caller, but the live cluster and parallel simulator drivers may
// append from many goroutines at once.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// New creates an empty log.
func New() *Log { return &Log{} }

// Add records an event. No-op on a nil log.
func (l *Log) Add(time float64, node string, question int, format string, args ...any) {
	if l == nil {
		return
	}
	e := Event{
		Time:     time,
		Node:     node,
		Question: question,
		Text:     fmt.Sprintf(format, args...),
	}
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Events returns a copy of the recorded events in order (a copy, so callers
// can iterate while other goroutines keep appending).
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.events) == 0 {
		return nil
	}
	return append([]Event(nil), l.events...)
}

// Len reports the number of recorded events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Filter returns the events satisfying keep, in order.
func (l *Log) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range l.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// String renders the log in the paper's Figure 7 style:
//
//	[  12.34] N2  q226 started paragraph retrieval on sub-collection 3
func (l *Log) String() string {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders one event line.
func (e Event) String() string {
	q := ""
	if e.Question >= 0 {
		q = fmt.Sprintf(" q%d", e.Question)
	}
	return fmt.Sprintf("[%8.2f] %-4s%s %s", e.Time, e.Node, q, e.Text)
}

// Count returns how many events contain the given substring — convenient
// for assertions and for the migration counting of Table 7.
func (l *Log) Count(substr string) int {
	n := 0
	for _, e := range l.Events() {
		if strings.Contains(e.Text, substr) {
			n++
		}
	}
	return n
}

// ChromeEvents converts the log to Chrome trace-event records (one thread
// per node, virtual seconds as trace microseconds), so a Figure-7 simulator
// run opens in chrome://tracing or Perfetto via cmd/qatrace -format=chrome.
func (l *Log) ChromeEvents() []obs.ChromeEvent {
	events := l.Events()
	ves := make([]obs.VirtualEvent, len(events))
	for i, e := range events {
		ves[i] = obs.VirtualEvent{
			Seconds:  e.Time,
			Node:     e.Node,
			Question: e.Question,
			Text:     e.Text,
		}
	}
	return obs.ChromeFromVirtual(ves)
}
