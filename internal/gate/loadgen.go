package gate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"distqa/internal/workload"
)

// Open-loop load harness (qabench -load): fires POST /v1/ask requests at a
// gateway on a precomputed arrival schedule — Poisson or bursty, from
// internal/workload — independent of completions, the way production traffic
// arrives. Because arrivals do not wait for answers, offered and achieved
// throughput diverge the moment the gateway saturates: the report's shed
// rate and admitted-latency quantiles are the measurement, not a failure.

// LoadConfig configures one open-loop run.
type LoadConfig struct {
	// BaseURL is the gateway ("http://host:port").
	BaseURL string
	// Questions are cycled through in order (pre-shuffle or heavy-tail-order
	// them with workload.Set.Pick / HeavyTailedPick).
	Questions []string
	// Rate is the offered arrival rate (requests/second).
	Rate float64
	// Duration bounds the schedule (arrivals stop; stragglers are awaited).
	Duration time.Duration
	// Arrivals selects the process: "poisson" (default) or "burst".
	Arrivals string
	// Seed makes the schedule and question order deterministic.
	Seed int64
	// TimeoutMS is each request's edge deadline (0 = gateway default).
	TimeoutMS int64
	// APIKey is sent as X-API-Key when non-empty.
	APIKey string
}

// LoadResult is one run's report.
type LoadResult struct {
	Name        string  `json:"name"`
	Arrivals    string  `json:"arrivals"`
	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"` // 200s per second of run
	Sent        int     `json:"sent"`
	OK          int     `json:"ok"`
	Shed        int     `json:"shed"`     // 429s
	Timeouts    int     `json:"timeouts"` // 504s
	Errors      int     `json:"errors"`   // everything else non-200
	ShedRate    float64 `json:"shed_rate"`
	// Latency quantiles of the 200s (admitted, completed requests), ms.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// Queue evidence pulled from the gateway's statusz after the run: the
	// admission queue's peak depth against its configured bound.
	QueuePeak  int     `json:"queue_peak"`
	QueueBound int     `json:"queue_bound"`
	DurationS  float64 `json:"duration_s"`
}

// RunLoad executes one open-loop run against a live gateway.
func RunLoad(cfg LoadConfig) (LoadResult, error) {
	if cfg.BaseURL == "" || len(cfg.Questions) == 0 {
		return LoadResult{}, fmt.Errorf("gate: load config needs BaseURL and Questions")
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 10
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	n := int(cfg.Rate * cfg.Duration.Seconds())
	if n < 1 {
		n = 1
	}
	var schedule []float64
	arrivals := cfg.Arrivals
	if arrivals == "" {
		arrivals = "poisson"
	}
	switch arrivals {
	case "poisson":
		schedule = workload.PoissonArrivals(cfg.Seed, cfg.Rate, n, 0)
	case "burst":
		// 4x bursts for a quarter of each one-second cycle: same mean rate,
		// much spikier queue.
		schedule = workload.BurstArrivals(cfg.Seed, cfg.Rate, 4, 0.25, 1, n, 0)
	default:
		return LoadResult{}, fmt.Errorf("gate: unknown arrival process %q", arrivals)
	}

	// A dedicated transport with generous idle-conn reuse, plus a client-side
	// concurrency cap: without them, an over-threshold schedule spawns
	// thousands of concurrent first-time dials and the *generator* collapses
	// (fd exhaustion) before the gateway's admission control is ever
	// exercised. The cap bounds sockets, not arrivals — arrival instants stay
	// open-loop; a goroutine that must wait for a slot is client queueing,
	// which is why each latency clock starts after slot acquisition (we
	// measure the gateway, not this process's socket budget).
	const maxClientConcurrency = 512
	tr := &http.Transport{
		MaxIdleConns:        maxClientConcurrency,
		MaxIdleConnsPerHost: maxClientConcurrency,
		IdleConnTimeout:     30 * time.Second,
	}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr, Timeout: 2 * time.Minute}
	sem := make(chan struct{}, maxClientConcurrency)
	type outcome struct {
		status int
		ms     float64
	}
	outcomes := make([]outcome, len(schedule))
	var wg sync.WaitGroup
	start := time.Now()
	for i, at := range schedule {
		// Open loop: sleep until the arrival instant, then fire regardless of
		// how many requests are still in flight.
		if d := time.Duration(at*float64(time.Second)) - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			q := cfg.Questions[i%len(cfg.Questions)]
			body, _ := json.Marshal(AskPayload{Question: q, TimeoutMS: cfg.TimeoutMS})
			req, err := http.NewRequest(http.MethodPost, cfg.BaseURL+"/v1/ask", bytes.NewReader(body))
			if err != nil {
				outcomes[i] = outcome{status: -1}
				return
			}
			req.Header.Set("Content-Type", "application/json")
			if cfg.APIKey != "" {
				req.Header.Set("X-API-Key", cfg.APIKey)
			}
			t0 := time.Now()
			resp, err := client.Do(req)
			if err != nil {
				outcomes[i] = outcome{status: -1}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			outcomes[i] = outcome{status: resp.StatusCode,
				ms: float64(time.Since(t0).Microseconds()) / 1000}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := LoadResult{
		Arrivals:   arrivals,
		OfferedQPS: float64(len(schedule)) / elapsed,
		Sent:       len(schedule),
		DurationS:  elapsed,
	}
	var okMs []float64
	for _, o := range outcomes {
		switch o.status {
		case http.StatusOK:
			res.OK++
			okMs = append(okMs, o.ms)
		case http.StatusTooManyRequests:
			res.Shed++
		case http.StatusGatewayTimeout:
			res.Timeouts++
		default:
			res.Errors++
		}
	}
	res.AchievedQPS = float64(res.OK) / elapsed
	res.ShedRate = float64(res.Shed) / float64(res.Sent)
	sort.Float64s(okMs)
	res.P50Ms = quantile(okMs, 0.50)
	res.P99Ms = quantile(okMs, 0.99)
	if st, err := FetchStatus(cfg.BaseURL, 5*time.Second); err == nil {
		res.QueuePeak = st.QueuePeak
		res.QueueBound = st.QueueBound
	}
	return res, nil
}

// quantile reads q from an ascending sample set (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// Text renders the report for terminals (qabench -load output).
func (r LoadResult) Text() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "open-loop load (%s arrivals, %.1fs)\n", r.Arrivals, r.DurationS)
	fmt.Fprintf(&b, "  offered   %8.1f qps (%d sent)\n", r.OfferedQPS, r.Sent)
	fmt.Fprintf(&b, "  achieved  %8.1f qps (%d ok)\n", r.AchievedQPS, r.OK)
	fmt.Fprintf(&b, "  shed      %8d (%.1f%%)   timeouts %d   errors %d\n",
		r.Shed, r.ShedRate*100, r.Timeouts, r.Errors)
	fmt.Fprintf(&b, "  latency   p50 %.2fms  p99 %.2fms (admitted)\n", r.P50Ms, r.P99Ms)
	fmt.Fprintf(&b, "  queue     peak %d / bound %d\n", r.QueuePeak, r.QueueBound)
	return b.String()
}
