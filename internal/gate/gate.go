// Package gate is the cluster's public front door: an HTTP/JSON gateway
// (cmd/qagate) that fronts a live Q/A cluster over the existing mux
// transport and carries the production-traffic machinery the internal wire
// protocol deliberately does not — per-client token buckets, a global
// concurrency cap with queue-depth load shedding (429 + Retry-After),
// edge-deadline propagation (the request's timeout_ms rides
// live.Request.TimeoutMS down into ShardPR sub-task budgets), and graceful
// drain (readiness flips, in-flight asks finish, then the listener closes).
//
// Routes:
//
//	POST /v1/ask        {"question": "...", "timeout_ms": 2000}
//	POST /v1/ask/batch  {"questions": ["...", ...], "timeout_ms": 2000}
//	GET  /v1/healthz    readiness (503 while draining)
//	GET  /v1/statusz    gateway status JSON (qactl -gate, qatop -gate)
//	GET  /metrics       Prometheus text exposition (gate_* metrics)
package gate

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"distqa/internal/live"
	"distqa/internal/obs"
	"distqa/internal/qa"
)

// Config configures a Gateway.
type Config struct {
	// Addr is the HTTP listen address (host:port; port 0 picks one).
	Addr string
	// Nodes are the cluster node addresses asks are routed to (round-robin).
	Nodes []string
	// MaxInflight caps concurrently executing asks (default 32).
	MaxInflight int
	// MaxQueue bounds the admission queue; beyond it requests are shed with
	// 429 (default 2·MaxInflight).
	MaxQueue int
	// RatePerClient is each client key's token-bucket refill rate in
	// requests/second (0 = per-client limiting off).
	RatePerClient float64
	// Burst is the bucket capacity (default 2·RatePerClient, min 1).
	Burst float64
	// DefaultTimeout is the edge deadline applied when a request carries no
	// timeout_ms (default 10s); MaxTimeout caps client-supplied deadlines
	// (default 30s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Clock is the token-bucket time source (tests; nil = time.Now).
	Clock func() time.Time
	// Objectives overrides the gateway's SLOs (default: edge ask p99).
	Objectives []obs.Objective
}

func (c *Config) fill() {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 32
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxInflight
	}
	if c.Burst <= 0 {
		c.Burst = 2 * c.RatePerClient
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if len(c.Objectives) == 0 {
		// The edge twin of the cluster's "ask" objective: p99 of everything
		// the gateway serves (queueing included) under 2.5s over 5 minutes,
		// with at most 5% failures.
		c.Objectives = []obs.Objective{{
			Op: "edge_ask", Quantile: 0.99, Target: 2.5,
			Window: 5 * time.Minute, MaxErrorRate: 0.05,
		}}
	}
}

// Gateway is the HTTP front door. Build with New, serve with Start (or mount
// Handler yourself), stop with Drain (graceful) or Close (immediate).
type Gateway struct {
	cfg      Config
	pool     *live.Pool
	mux      *live.MuxTransport
	reg      *obs.Registry
	gm       *gateMetrics
	slo      *obs.SLOEngine
	adm      *Admission
	buckets  *Buckets
	handler  http.Handler
	srv      *http.Server
	ln       net.Listener
	draining atomic.Bool
	next     atomic.Uint64
	started  time.Time
	qid      atomic.Int64 // synthetic QIDs for SLO exemplars

	mu     sync.Mutex
	closed bool
}

// New builds a gateway (no listener yet). The node list must be non-empty.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("gate: no cluster nodes configured")
	}
	cfg.fill()
	reg := obs.NewRegistry()
	pool := live.NewPool(live.PoolConfig{})
	g := &Gateway{
		cfg:     cfg,
		pool:    pool,
		mux:     live.NewMuxTransport(live.MuxConfig{}, pool),
		reg:     reg,
		gm:      newGateMetrics(reg),
		slo:     obs.NewSLOEngine(obs.SLOConfig{Objectives: cfg.Objectives, Clock: cfg.Clock}),
		adm:     NewAdmission(cfg.MaxInflight, cfg.MaxQueue),
		buckets: NewBuckets(cfg.RatePerClient, cfg.Burst, 4096),
		started: time.Now(),
	}
	if cfg.Clock != nil {
		g.buckets.SetClock(cfg.Clock)
	}
	m := http.NewServeMux()
	m.HandleFunc("POST /v1/ask", g.handleAsk)
	m.HandleFunc("POST /v1/ask/batch", g.handleBatch)
	m.HandleFunc("GET /v1/healthz", g.handleHealthz)
	m.HandleFunc("GET /v1/statusz", g.handleStatusz)
	m.HandleFunc("GET /metrics", g.handleMetrics)
	g.handler = m
	return g, nil
}

// Handler returns the gateway's HTTP handler (for tests and embedding).
func (g *Gateway) Handler() http.Handler { return g.handler }

// Metrics returns the gateway's obs registry.
func (g *Gateway) Metrics() *obs.Registry { return g.reg }

// Start binds the listener and serves in a background goroutine.
func (g *Gateway) Start() error {
	ln, err := net.Listen("tcp", g.cfg.Addr)
	if err != nil {
		return fmt.Errorf("gate: listen %s: %w", g.cfg.Addr, err)
	}
	g.ln = ln
	g.srv = &http.Server{Handler: g.handler}
	go g.srv.Serve(ln)
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (g *Gateway) Addr() string { return g.ln.Addr().String() }

// URL returns the gateway's base URL (valid after Start).
func (g *Gateway) URL() string { return "http://" + g.Addr() }

// Draining reports whether drain has begun (readiness is down).
func (g *Gateway) Draining() bool { return g.draining.Load() }

// Drain is the SIGTERM path: flip readiness first (healthz answers 503 and
// new asks are refused while the listener is still accepting — load
// balancers need to observe not-ready before connections start failing),
// wait for in-flight asks to finish, then shut the listener down. Bounded
// by ctx.
func (g *Gateway) Drain(ctx context.Context) error {
	g.draining.Store(true)
	if err := g.adm.WaitIdle(ctx); err != nil {
		return err
	}
	var err error
	if g.srv != nil {
		err = g.srv.Shutdown(ctx)
	}
	g.closeTransports()
	return err
}

// Close stops immediately: in-flight requests are abandoned.
func (g *Gateway) Close() error {
	g.draining.Store(true)
	var err error
	if g.srv != nil {
		err = g.srv.Close()
	}
	g.closeTransports()
	return err
}

func (g *Gateway) closeTransports() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return
	}
	g.closed = true
	g.mux.Close()
	g.pool.Close()
}

// pickNode round-robins over the configured cluster nodes.
func (g *Gateway) pickNode() string {
	n := g.next.Add(1)
	return g.cfg.Nodes[int(n-1)%len(g.cfg.Nodes)]
}

// clientKey identifies the token bucket a request spends from: the API key
// when one is presented, the remote host otherwise.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "addr:" + host
}

// errorJSON is the error body of every non-2xx response.
type errorJSON struct {
	Error string `json:"error"`
	// RetryAfterMS accompanies 429s (mirrors the Retry-After header).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (g *Gateway) writeShed(w http.ResponseWriter, status int, msg string, retryAfter time.Duration) {
	if retryAfter < time.Second {
		retryAfter = time.Second
	}
	w.Header().Set("Retry-After", strconv.FormatInt(int64(retryAfter/time.Second), 10))
	writeJSON(w, status, errorJSON{Error: msg, RetryAfterMS: retryAfter.Milliseconds()})
}

// AnswerJSON is one answer in an ask response — a stable public projection
// of qa.Answer (the equivalence test asserts it matches a direct live.Ask
// byte for byte).
type AnswerJSON struct {
	Text    string  `json:"text"`
	Type    string  `json:"type"`
	Score   float64 `json:"score"`
	ParaID  int     `json:"para_id"`
	Snippet string  `json:"snippet"`
}

// AskResult is the body of a 200 from POST /v1/ask (and one entry of a
// batch response).
type AskResult struct {
	Answers  []AnswerJSON `json:"answers"`
	ServedBy string       `json:"served_by"`
	// NodeMS is the serving node's own pipeline time; ElapsedMS is the
	// gateway's view (queueing and wire included).
	NodeMS    float64 `json:"node_ms"`
	ElapsedMS float64 `json:"elapsed_ms"`
	CacheHit  bool    `json:"cache_hit"`
	Coalesced bool    `json:"coalesced"`
	Forwarded bool    `json:"forwarded"`
	Spans     int     `json:"spans,omitempty"`
}

// BatchEntry is one question's outcome in a batch response: Status is the
// HTTP status the question would have gotten on /v1/ask.
type BatchEntry struct {
	Status int        `json:"status"`
	Result *AskResult `json:"result,omitempty"`
	Error  string     `json:"error,omitempty"`
}

// BatchResult is the body of a 200 from POST /v1/ask/batch.
type BatchResult struct {
	Results []BatchEntry `json:"results"`
}

// ProjectAnswers converts pipeline answers to their public JSON projection
// (shared with the equivalence test, which projects a direct live.Ask
// response the same way before comparing bytes).
func ProjectAnswers(answers []qa.Answer) []AnswerJSON {
	out := make([]AnswerJSON, len(answers))
	for i, a := range answers {
		out[i] = AnswerJSON{
			Text:    a.Text,
			Type:    a.Type.String(),
			Score:   a.Score,
			ParaID:  a.ParaID,
			Snippet: a.Snippet,
		}
	}
	return out
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	g.refreshGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	g.reg.WriteText(w)
}

func (g *Gateway) refreshGauges() {
	g.gm.inflight.Set(int64(g.adm.InFlight()))
	g.gm.queueDepth.Set(int64(g.adm.QueueDepth()))
	g.gm.clientKeys.Set(int64(g.buckets.Keys()))
}

// timeoutOf resolves a request's edge deadline from its timeout_ms.
func (g *Gateway) timeoutOf(ms int64) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if ms <= 0 {
		d = g.cfg.DefaultTimeout
	}
	if d > g.cfg.MaxTimeout {
		d = g.cfg.MaxTimeout
	}
	return d
}

func (g *Gateway) handleAsk(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	g.gm.askRequests.Inc()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		g.gm.badRequests.Inc()
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "body too large or unreadable"})
		return
	}
	p, err := DecodeAskJSON(body)
	if err != nil {
		g.gm.badRequests.Inc()
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
		return
	}
	status, result, errMsg, retryAfter := g.serveOne(r, p.Question, g.timeoutOf(p.TimeoutMS), p.Trace)
	g.observeAsk(start, status)
	g.gm.askSeconds.Observe(time.Since(start).Seconds())
	switch {
	case status == http.StatusOK:
		writeJSON(w, status, result)
	case status == http.StatusTooManyRequests:
		g.writeShed(w, status, errMsg, retryAfter)
	default:
		writeJSON(w, status, errorJSON{Error: errMsg})
	}
}

func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	g.gm.batchRequests.Inc()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		g.gm.badRequests.Inc()
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "body too large or unreadable"})
		return
	}
	p, err := DecodeBatchJSON(body)
	if err != nil {
		g.gm.badRequests.Inc()
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
		return
	}
	timeout := g.timeoutOf(p.TimeoutMS)
	out := BatchResult{Results: make([]BatchEntry, len(p.Questions))}
	for i, q := range p.Questions {
		qStart := time.Now()
		status, result, errMsg, _ := g.serveOne(r, q, timeout, false)
		g.observeAsk(qStart, status)
		out.Results[i] = BatchEntry{Status: status, Result: result, Error: errMsg}
	}
	g.gm.batchSeconds.Observe(time.Since(start).Seconds())
	writeJSON(w, http.StatusOK, out)
}

// observeAsk feeds one question's outcome into the edge SLO window.
func (g *Gateway) observeAsk(start time.Time, status int) {
	g.slo.Observe("edge_ask", time.Since(start).Seconds(), g.qid.Add(1), status != http.StatusOK)
}

// serveOne runs one question through the full edge machinery — drain check,
// token bucket, admission, backend call — and returns (status, result,
// errMsg, retryAfter). It is shared by /v1/ask and each batch entry, so a
// batch observes the same shedding and deadlines a stream of single asks
// would.
func (g *Gateway) serveOne(r *http.Request, question string, timeout time.Duration, trace bool) (int, *AskResult, string, time.Duration) {
	qStart := time.Now()
	if g.draining.Load() {
		g.gm.shedDraining.Inc()
		return http.StatusServiceUnavailable, nil, "gateway is draining", 0
	}
	if ok, wait := g.buckets.Allow(clientKey(r)); !ok {
		g.gm.shedRate.Inc()
		return http.StatusTooManyRequests, nil, "client rate limit exceeded", wait
	}
	deadline := qStart.Add(timeout)
	admitted, ticket, shed := g.adm.Reserve()
	switch {
	case shed:
		g.gm.shedQueue.Inc()
		// The queue is full: the soonest a slot could open is roughly one
		// service time away; a one-second hint keeps well-behaved clients
		// from hammering the full queue.
		return http.StatusTooManyRequests, nil, "admission queue full", time.Second
	case !admitted:
		g.gm.queued.Inc()
		ctx, cancel := context.WithDeadline(r.Context(), deadline)
		err := g.adm.Wait(ctx, ticket)
		cancel()
		if err != nil {
			g.gm.timeouts.Inc()
			return http.StatusGatewayTimeout, nil, "deadline exceeded while queued for admission", 0
		}
	}
	defer g.adm.Release()
	g.gm.admitted.Inc()

	req := live.AskRequest(question)
	req.WantSpans = trace
	remaining := time.Until(deadline)
	if remaining < time.Millisecond {
		g.gm.timeouts.Inc()
		return http.StatusGatewayTimeout, nil, "deadline exceeded", 0
	}
	req.TimeoutMS = remaining.Milliseconds()
	if req.TimeoutMS < 1 {
		req.TimeoutMS = 1
	}
	// The client-side call timeout gets a little slack past the edge
	// deadline, so the server-side deadline (propagated via TimeoutMS) fires
	// first and the failure comes back as a structured response instead of
	// an abandoned mux call.
	resp, err := g.mux.Call(g.pickNode(), req, remaining+250*time.Millisecond)
	if err != nil {
		deadlinePassed := !time.Now().Before(deadline)
		// "budget exhausted" from the cluster means the question's deadline
		// budget — clamped to our TimeoutMS — ran out mid-pipeline: timeout
		// semantics for the client even when the gateway clock has a few
		// milliseconds left.
		structuredTimeout := resp != nil && (strings.Contains(resp.Err, live.ErrDeadlineMsg) ||
			strings.Contains(resp.Err, "budget exhausted"))
		if structuredTimeout || deadlinePassed {
			g.gm.timeouts.Inc()
			return http.StatusGatewayTimeout, nil, "deadline exceeded: " + err.Error(), 0
		}
		g.gm.backendErrors.Inc()
		return http.StatusBadGateway, nil, "cluster error: " + err.Error(), 0
	}
	res := &AskResult{
		Answers:   ProjectAnswers(resp.Answers),
		ServedBy:  resp.ServedBy,
		NodeMS:    resp.ElapsedMS,
		ElapsedMS: float64(time.Since(qStart).Microseconds()) / 1000,
		CacheHit:  resp.CacheHit,
		Coalesced: resp.Coalesced,
		Forwarded: resp.Forwarded,
		Spans:     len(resp.Spans),
	}
	return http.StatusOK, res, "", 0
}
