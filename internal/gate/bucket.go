package gate

import (
	"sync"
	"time"
)

// Buckets is the gateway's per-client rate limiter: one token bucket per
// client key (API key when the request carries one, remote host otherwise),
// refilled continuously at rate tokens/second up to burst. The clock is a
// seam — tests inject a manual clock and step it, mirroring
// internal/qcache's injectable-clock tests — and the key table is bounded:
// once it outgrows maxKeys, full (= idle long enough to have fully refilled)
// buckets are swept, so an attacker cycling keys cannot grow the table
// without bound.
type Buckets struct {
	rate    float64 // tokens per second
	burst   float64 // bucket capacity
	maxKeys int
	now     func() time.Time

	mu sync.Mutex
	m  map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewBuckets builds a limiter. rate <= 0 disables limiting entirely (every
// Allow succeeds); burst < 1 is clamped to 1; maxKeys < 16 to 16.
func NewBuckets(rate, burst float64, maxKeys int) *Buckets {
	if burst < 1 {
		burst = 1
	}
	if maxKeys < 16 {
		maxKeys = 16
	}
	return &Buckets{rate: rate, burst: burst, maxKeys: maxKeys,
		now: time.Now, m: make(map[string]*bucket)}
}

// SetClock replaces the limiter's time source (tests).
func (b *Buckets) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}

// Allow spends one token from key's bucket. When the bucket is empty it
// returns false and the duration until one token will have refilled — the
// Retry-After the HTTP layer sends with the 429.
func (b *Buckets) Allow(key string) (bool, time.Duration) {
	if b == nil || b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	bk, ok := b.m[key]
	if !ok {
		if len(b.m) >= b.maxKeys {
			b.sweepLocked(now)
		}
		bk = &bucket{tokens: b.burst, last: now}
		b.m[key] = bk
	} else {
		if dt := now.Sub(bk.last).Seconds(); dt > 0 {
			bk.tokens += dt * b.rate
			if bk.tokens > b.burst {
				bk.tokens = b.burst
			}
		}
		bk.last = now
	}
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	wait := time.Duration((1 - bk.tokens) / b.rate * float64(time.Second))
	return false, wait
}

// Keys returns how many client buckets are currently tracked.
func (b *Buckets) Keys() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.m)
}

// sweepLocked drops buckets that have been idle long enough to have fully
// refilled — indistinguishable from brand-new buckets, so dropping them
// changes no Allow outcome.
func (b *Buckets) sweepLocked(now time.Time) {
	full := time.Duration(b.burst / b.rate * float64(time.Second))
	for k, bk := range b.m {
		if now.Sub(bk.last) >= full {
			delete(b.m, k)
		}
	}
}
