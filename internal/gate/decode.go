package gate

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"unicode/utf8"
)

// JSON decode seams of the public API. Factored out of the HTTP handlers so
// the edge parsing — the one part of the gateway that eats attacker-shaped
// bytes — is natively fuzzable (FuzzDecodeAskJSON, FuzzDecodeBatchJSON):
// arbitrary input must produce a payload or an error, never a panic, and
// never an unbounded allocation (every limit below is enforced before the
// payload is accepted).

const (
	// MaxBodyBytes bounds a request body (both routes).
	MaxBodyBytes = 1 << 20
	// MaxQuestionBytes bounds one question's UTF-8 length.
	MaxQuestionBytes = 8 << 10
	// MaxBatchQuestions bounds a batch.
	MaxBatchQuestions = 64
)

// AskPayload is the body of POST /v1/ask.
type AskPayload struct {
	Question string `json:"question"`
	// TimeoutMS is the edge deadline in milliseconds (0 = gateway default).
	// It propagates as live.Request.TimeoutMS down to ShardPR sub-task
	// budgets, and the gateway answers 504 once it expires.
	TimeoutMS int64 `json:"timeout_ms"`
	// Trace asks for the question's span tree (server-side cost; off by
	// default like live.Request.WantSpans).
	Trace bool `json:"trace"`
}

// BatchPayload is the body of POST /v1/ask/batch. TimeoutMS bounds each
// question individually, not the batch.
type BatchPayload struct {
	Questions []string `json:"questions"`
	TimeoutMS int64    `json:"timeout_ms"`
}

var (
	errEmptyQuestion   = errors.New("gate: empty question")
	errQuestionTooLong = fmt.Errorf("gate: question exceeds %d bytes", MaxQuestionBytes)
	errBadTimeout      = errors.New("gate: timeout_ms must be >= 0")
	errEmptyBatch      = errors.New("gate: empty questions array")
	errBatchTooLarge   = fmt.Errorf("gate: batch exceeds %d questions", MaxBatchQuestions)
	errNotUTF8         = errors.New("gate: question is not valid UTF-8")
)

// decodeJSON decodes body into v with the strictness the edge wants: body
// capped, unknown fields rejected (typos fail loudly instead of silently
// dropping a field), and trailing garbage after the value rejected.
func decodeJSON(body []byte, v any) error {
	if len(body) > MaxBodyBytes {
		return fmt.Errorf("gate: body exceeds %d bytes", MaxBodyBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("gate: bad JSON: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return errors.New("gate: trailing data after JSON value")
	}
	return nil
}

func checkQuestion(q string) error {
	if q == "" {
		return errEmptyQuestion
	}
	if len(q) > MaxQuestionBytes {
		return errQuestionTooLong
	}
	if !utf8.ValidString(q) {
		return errNotUTF8
	}
	return nil
}

// DecodeAskJSON parses and validates a POST /v1/ask body.
func DecodeAskJSON(body []byte) (*AskPayload, error) {
	var p AskPayload
	if err := decodeJSON(body, &p); err != nil {
		return nil, err
	}
	if err := checkQuestion(p.Question); err != nil {
		return nil, err
	}
	if p.TimeoutMS < 0 {
		return nil, errBadTimeout
	}
	return &p, nil
}

// DecodeBatchJSON parses and validates a POST /v1/ask/batch body.
func DecodeBatchJSON(body []byte) (*BatchPayload, error) {
	var p BatchPayload
	if err := decodeJSON(body, &p); err != nil {
		return nil, err
	}
	if len(p.Questions) == 0 {
		return nil, errEmptyBatch
	}
	if len(p.Questions) > MaxBatchQuestions {
		return nil, errBatchTooLarge
	}
	for _, q := range p.Questions {
		if err := checkQuestion(q); err != nil {
			return nil, err
		}
	}
	if p.TimeoutMS < 0 {
		return nil, errBadTimeout
	}
	return &p, nil
}
