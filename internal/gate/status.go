package gate

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"distqa/internal/obs"
)

// Statusz is the gateway's operator status (GET /v1/statusz), rendered as a
// row by `qactl -gate` and `qatop -gate`.
type Statusz struct {
	Addr          string   `json:"addr"`
	Nodes         []string `json:"nodes"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	Draining      bool     `json:"draining"`
	// Admission state and lifetime outcomes.
	InFlight    int   `json:"inflight"`
	MaxInflight int   `json:"max_inflight"`
	QueueDepth  int   `json:"queue_depth"`
	QueueBound  int   `json:"queue_bound"`
	QueuePeak   int   `json:"queue_peak"`
	Admitted    int64 `json:"admitted"`
	Queued      int64 `json:"queued"`
	ShedQueue   int64 `json:"shed_queue"`
	ShedRate    int64 `json:"shed_rate"`
	Timeouts    int64 `json:"timeouts"`
	BackendErrs int64 `json:"backend_errors"`
	BadRequests int64 `json:"bad_requests"`
	ClientKeys  int   `json:"client_keys"`
	// SLO is the gateway's evaluated edge objectives.
	SLO []obs.SLOStatus `json:"slo,omitempty"`
}

// Status builds the gateway's current Statusz.
func (g *Gateway) Status() Statusz {
	addr := g.cfg.Addr
	if g.ln != nil {
		addr = g.ln.Addr().String()
	}
	return Statusz{
		Addr:          addr,
		Nodes:         g.cfg.Nodes,
		UptimeSeconds: time.Since(g.started).Seconds(),
		Draining:      g.draining.Load(),
		InFlight:      g.adm.InFlight(),
		MaxInflight:   g.adm.Cap(),
		QueueDepth:    g.adm.QueueDepth(),
		QueueBound:    g.adm.QueueBound(),
		QueuePeak:     g.adm.QueuePeak(),
		Admitted:      g.gm.admitted.Value(),
		Queued:        g.gm.queued.Value(),
		ShedQueue:     g.gm.shedQueue.Value(),
		ShedRate:      g.gm.shedRate.Value(),
		Timeouts:      g.gm.timeouts.Value(),
		BackendErrs:   g.gm.backendErrors.Value(),
		BadRequests:   g.gm.badRequests.Value(),
		ClientKeys:    g.buckets.Keys(),
		SLO:           g.slo.Status(),
	}
}

func (g *Gateway) handleStatusz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.Status())
}

// FetchStatus pulls a remote gateway's Statusz — the client side of
// `qactl -gate` and `qatop -gate`. base is the gateway's base URL
// ("http://host:port").
func FetchStatus(base string, timeout time.Duration) (*Statusz, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(base + "/v1/statusz")
	if err != nil {
		return nil, fmt.Errorf("gate: fetch status: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("gate: status endpoint returned %s", resp.Status)
	}
	var st Statusz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("gate: parse status: %w", err)
	}
	return &st, nil
}
