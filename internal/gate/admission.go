package gate

import (
	"context"
	"sync"
	"time"
)

// Admission is the gateway's global concurrency cap with a bounded FIFO
// admission queue: at most cap requests execute at once, at most maxQueue
// wait for a slot, and everything beyond that is shed immediately (the
// HTTP layer turns a shed into 429 + Retry-After). The two-step
// Reserve/Release API is deliberately non-blocking — Reserve never waits, it
// either admits, hands back a ticket channel to wait on, or sheds — so the
// controller's queueing and shed-ordering behavior is testable without
// goroutines, sleeps or real time.
type Admission struct {
	mu       sync.Mutex
	cap      int
	maxQueue int
	inflight int
	queue    []chan struct{} // FIFO of waiting tickets; closed = slot granted
	// peak tracks the deepest the queue has been (bounded-queue evidence for
	// the load report).
	peak int
}

// NewAdmission builds a controller admitting capacity concurrent requests
// with a queue of at most maxQueue waiters. capacity < 1 is clamped to 1;
// maxQueue < 0 to 0 (shed the instant the cap is reached).
func NewAdmission(capacity, maxQueue int) *Admission {
	if capacity < 1 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{cap: capacity, maxQueue: maxQueue}
}

// Reserve attempts to claim an execution slot. Exactly one of three outcomes:
//
//   - admitted: a slot is held; the caller must Release it.
//   - ticket != nil: the cap is reached but the queue has room; the caller
//     waits for the ticket channel to close (slot granted — then Release) or
//     abandons the wait with Abandon.
//   - shed: the queue is full too; the caller must go away (429).
func (a *Admission) Reserve() (admitted bool, ticket chan struct{}, shed bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inflight < a.cap {
		a.inflight++
		return true, nil, false
	}
	if len(a.queue) >= a.maxQueue {
		return false, nil, true
	}
	t := make(chan struct{})
	a.queue = append(a.queue, t)
	if len(a.queue) > a.peak {
		a.peak = len(a.queue)
	}
	return false, t, false
}

// Release returns a slot. If waiters are queued, the slot transfers to the
// oldest one (its ticket closes; inflight stays constant); otherwise the
// in-flight count drops.
func (a *Admission) Release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.queue) > 0 {
		t := a.queue[0]
		a.queue = a.queue[1:]
		close(t)
		return
	}
	if a.inflight > 0 {
		a.inflight--
	}
}

// Abandon cancels a queued ticket (deadline or client gone). It returns true
// if the ticket was still queued and has been removed; false means the ticket
// already won a slot — the caller then holds it and must Release.
func (a *Admission) Abandon(ticket chan struct{}) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, t := range a.queue {
		if t == ticket {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			return true
		}
	}
	return false
}

// Wait blocks until the ticket grants a slot or ctx expires. It returns nil
// when the slot is held (caller must Release) and ctx.Err() otherwise — and
// in the error case the ticket has been fully disposed of, whichever way the
// race between cancellation and the grant went.
func (a *Admission) Wait(ctx context.Context, ticket chan struct{}) error {
	select {
	case <-ticket:
		return nil
	case <-ctx.Done():
		if !a.Abandon(ticket) {
			// The grant raced the cancellation and won: give the slot back.
			a.Release()
		}
		return ctx.Err()
	}
}

// InFlight returns the number of currently admitted requests.
func (a *Admission) InFlight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// QueueDepth returns the number of queued waiters.
func (a *Admission) QueueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

// QueuePeak returns the deepest the admission queue has been.
func (a *Admission) QueuePeak() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// QueueBound returns the configured queue capacity.
func (a *Admission) QueueBound() int { return a.maxQueue }

// Cap returns the configured concurrency cap.
func (a *Admission) Cap() int { return a.cap }

// WaitIdle blocks until no request is admitted or queued (drain) or ctx
// expires.
func (a *Admission) WaitIdle(ctx context.Context) error {
	for {
		a.mu.Lock()
		idle := a.inflight == 0 && len(a.queue) == 0
		a.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}
