package gate

import (
	"strings"
	"testing"
)

func TestDecodeAskJSON(t *testing.T) {
	good := []string{
		`{"question":"what is the capital of France?"}`,
		`{"question":"who?","timeout_ms":2000}`,
		`{"question":"why?","timeout_ms":0,"trace":true}`,
	}
	for _, body := range good {
		p, err := DecodeAskJSON([]byte(body))
		if err != nil {
			t.Fatalf("DecodeAskJSON(%s): %v", body, err)
		}
		if p.Question == "" {
			t.Fatalf("DecodeAskJSON(%s): empty question accepted", body)
		}
	}
	bad := map[string]string{
		"empty body":     ``,
		"not json":       `hello`,
		"empty object":   `{}`,
		"empty question": `{"question":""}`,
		"unknown field":  `{"question":"q","qeustion_typo":"x"}`,
		"bad timeout":    `{"question":"q","timeout_ms":-1}`,
		"trailing data":  `{"question":"q"} {"question":"r"}`,
		"question array": `{"question":["a"]}`,
		"too long":       `{"question":"` + strings.Repeat("a", MaxQuestionBytes+1) + `"}`,
	}
	for name, body := range bad {
		if _, err := DecodeAskJSON([]byte(body)); err == nil {
			t.Errorf("DecodeAskJSON accepted %s: %s", name, body)
		}
	}
}

func TestDecodeBatchJSON(t *testing.T) {
	p, err := DecodeBatchJSON([]byte(`{"questions":["a?","b?"],"timeout_ms":500}`))
	if err != nil {
		t.Fatalf("DecodeBatchJSON: %v", err)
	}
	if len(p.Questions) != 2 || p.TimeoutMS != 500 {
		t.Fatalf("DecodeBatchJSON parsed %+v", p)
	}
	var many strings.Builder
	many.WriteString(`{"questions":[`)
	for i := 0; i <= MaxBatchQuestions; i++ {
		if i > 0 {
			many.WriteString(",")
		}
		many.WriteString(`"q?"`)
	}
	many.WriteString(`]}`)
	bad := map[string]string{
		"empty batch":       `{"questions":[]}`,
		"missing questions": `{}`,
		"empty entry":       `{"questions":["a?",""]}`,
		"over batch cap":    many.String(),
		"unknown field":     `{"questions":["a?"],"batch_timeout":1}`,
	}
	for name, body := range bad {
		if _, err := DecodeBatchJSON([]byte(body)); err == nil {
			t.Errorf("DecodeBatchJSON accepted %s", name)
		}
	}
}
