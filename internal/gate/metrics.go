package gate

import (
	"distqa/internal/obs"
)

// gateMetrics caches the gateway's obs registry handles, mirroring
// internal/live's nodeMetrics: handles are resolved once at startup so the
// serving path never pays the registry's lookup lock.
type gateMetrics struct {
	// Per-route request counters and latency histograms.
	askRequests   *obs.Counter
	batchRequests *obs.Counter
	askSeconds    *obs.Histogram
	batchSeconds  *obs.Histogram
	// Admission-control outcomes.
	admitted      *obs.Counter
	queued        *obs.Counter
	shedQueue     *obs.Counter // queue full → 429
	shedRate      *obs.Counter // token bucket empty → 429
	shedDraining  *obs.Counter // drain in progress → 503
	timeouts      *obs.Counter // edge deadline exceeded → 504
	backendErrors *obs.Counter // cluster call failed → 502
	badRequests   *obs.Counter // decode/validation failures → 400
	// Live state.
	inflight   *obs.Gauge
	queueDepth *obs.Gauge
	clientKeys *obs.Gauge
}

func newGateMetrics(reg *obs.Registry) *gateMetrics {
	lat := obs.LatencyBuckets()
	return &gateMetrics{
		askRequests:   reg.Counter("gate_requests_total", obs.Labels{"route": "ask"}),
		batchRequests: reg.Counter("gate_requests_total", obs.Labels{"route": "batch"}),
		askSeconds:    reg.Histogram("gate_route_seconds", obs.Labels{"route": "ask"}, lat),
		batchSeconds:  reg.Histogram("gate_route_seconds", obs.Labels{"route": "batch"}, lat),
		admitted:      reg.Counter("gate_admitted_total", nil),
		queued:        reg.Counter("gate_queued_total", nil),
		shedQueue:     reg.Counter("gate_shed_total", obs.Labels{"reason": "queue"}),
		shedRate:      reg.Counter("gate_shed_total", obs.Labels{"reason": "rate"}),
		shedDraining:  reg.Counter("gate_shed_total", obs.Labels{"reason": "draining"}),
		timeouts:      reg.Counter("gate_timeouts_total", nil),
		backendErrors: reg.Counter("gate_backend_errors_total", nil),
		badRequests:   reg.Counter("gate_bad_requests_total", nil),
		inflight:      reg.Gauge("gate_inflight", nil),
		queueDepth:    reg.Gauge("gate_queue_depth", nil),
		clientKeys:    reg.Gauge("gate_client_keys", nil),
	}
}
