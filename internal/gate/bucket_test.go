package gate

import (
	"fmt"
	"testing"
	"time"
)

// manualClock is the injectable time source the bucket tests step by hand —
// no sleeps, mirroring internal/qcache's clock-seam tests.
type manualClock struct{ at time.Time }

func (c *manualClock) now() time.Time          { return c.at }
func (c *manualClock) advance(d time.Duration) { c.at = c.at.Add(d) }

func newTestBuckets(rate, burst float64) (*Buckets, *manualClock) {
	b := NewBuckets(rate, burst, 0)
	clk := &manualClock{at: time.Unix(1_000_000, 0)}
	b.SetClock(clk.now)
	return b, clk
}

func TestBucketBurstThenDeny(t *testing.T) {
	b, _ := newTestBuckets(1, 2) // 1 token/s, burst 2

	// A fresh bucket starts full: exactly burst requests pass.
	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow("k"); !ok {
			t.Fatalf("request %d within burst should pass", i)
		}
	}
	ok, retry := b.Allow("k")
	if ok {
		t.Fatal("request beyond burst should be denied")
	}
	if retry != time.Second {
		t.Fatalf("retry-after = %v, want 1s (empty bucket, 1 token/s)", retry)
	}
}

func TestBucketRefill(t *testing.T) {
	b, clk := newTestBuckets(1, 2)
	b.Allow("k")
	b.Allow("k") // drained

	clk.advance(500 * time.Millisecond)
	ok, retry := b.Allow("k")
	if ok {
		t.Fatal("half a token refilled: request should still be denied")
	}
	if retry != 500*time.Millisecond {
		t.Fatalf("retry-after = %v, want 500ms", retry)
	}

	clk.advance(500 * time.Millisecond)
	if ok, _ := b.Allow("k"); !ok {
		t.Fatal("a full token has refilled: request should pass")
	}
}

func TestBucketRefillCapsAtBurst(t *testing.T) {
	b, clk := newTestBuckets(1, 2)
	b.Allow("k")
	b.Allow("k")
	clk.advance(time.Hour) // refills far more than burst
	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow("k"); !ok {
			t.Fatalf("request %d after a long idle should pass (bucket refilled)", i)
		}
	}
	if ok, _ := b.Allow("k"); ok {
		t.Fatal("burst cap must bound the refill: third request denied")
	}
}

func TestBucketKeysAreIndependent(t *testing.T) {
	b, _ := newTestBuckets(1, 1)
	if ok, _ := b.Allow("a"); !ok {
		t.Fatal("first request for key a should pass")
	}
	if ok, _ := b.Allow("a"); ok {
		t.Fatal("key a is drained")
	}
	if ok, _ := b.Allow("b"); !ok {
		t.Fatal("key b has its own bucket and should pass")
	}
}

func TestBucketRateZeroDisables(t *testing.T) {
	b := NewBuckets(0, 0, 0)
	for i := 0; i < 100; i++ {
		if ok, _ := b.Allow("k"); !ok {
			t.Fatal("rate 0 must disable limiting")
		}
	}
	var nilB *Buckets
	if ok, _ := nilB.Allow("k"); !ok {
		t.Fatal("nil limiter must allow")
	}
}

// TestBucketKeyTableBounded: once the table reaches maxKeys, buckets idle
// long enough to have fully refilled are swept, so cycling client keys
// cannot grow memory without bound — and the sweep never changes an Allow
// outcome (a swept bucket is indistinguishable from a new one).
func TestBucketKeyTableBounded(t *testing.T) {
	b, clk := newTestBuckets(1, 2) // full refill after 2s idle
	for i := 0; i < 16; i++ {
		b.Allow(fmt.Sprintf("old-%d", i))
	}
	if got := b.Keys(); got != 16 {
		t.Fatalf("keys = %d, want 16", got)
	}
	clk.advance(3 * time.Second) // every old bucket fully refilled
	b.Allow("new")               // triggers the sweep at the maxKeys threshold
	if got := b.Keys(); got != 1 {
		t.Fatalf("keys = %d after sweep, want 1 (old idle buckets dropped)", got)
	}
	// A freshly swept key behaves like a new client: full burst available.
	if ok, _ := b.Allow("old-3"); !ok {
		t.Fatal("swept key must start with a full bucket")
	}
}
