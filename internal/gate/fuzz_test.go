package gate

import (
	"testing"
	"unicode/utf8"
)

// The edge decode seams eat attacker-shaped bytes before any admission or
// rate-limit check runs, so they are fuzzed natively like the wire codec's
// decode paths (internal/live's FuzzDecodeRequest): arbitrary input must
// yield a payload or an error — never a panic — and an accepted payload must
// actually satisfy the documented limits.

func FuzzDecodeAskJSON(f *testing.F) {
	seeds := []string{
		`{"question":"what is the capital of France?"}`,
		`{"question":"who?","timeout_ms":2000}`,
		`{"question":"why?","timeout_ms":0,"trace":true}`,
		`{"question":""}`,
		`{"question":"q","timeout_ms":-5}`,
		`{}`,
		`[]`,
		`{"question":"q"}{"question":"r"}`,
		`{"question":"éclair"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeAskJSON(data)
		if err != nil {
			return
		}
		if p.Question == "" || len(p.Question) > MaxQuestionBytes {
			t.Fatalf("accepted question violates limits: %d bytes", len(p.Question))
		}
		if !utf8.ValidString(p.Question) {
			t.Fatal("accepted question is not valid UTF-8")
		}
		if p.TimeoutMS < 0 {
			t.Fatalf("accepted negative timeout_ms %d", p.TimeoutMS)
		}
	})
}

func FuzzDecodeBatchJSON(f *testing.F) {
	seeds := []string{
		`{"questions":["a?","b?"]}`,
		`{"questions":["a?"],"timeout_ms":500}`,
		`{"questions":[]}`,
		`{"questions":[""]}`,
		`{"questions":"not-an-array"}`,
		`{"questions":["a?"],"timeout_ms":-1}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeBatchJSON(data)
		if err != nil {
			return
		}
		if len(p.Questions) == 0 || len(p.Questions) > MaxBatchQuestions {
			t.Fatalf("accepted batch violates limits: %d questions", len(p.Questions))
		}
		for _, q := range p.Questions {
			if q == "" || len(q) > MaxQuestionBytes || !utf8.ValidString(q) {
				t.Fatal("accepted batch entry violates question limits")
			}
		}
		if p.TimeoutMS < 0 {
			t.Fatalf("accepted negative timeout_ms %d", p.TimeoutMS)
		}
	})
}
