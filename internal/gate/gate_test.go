package gate

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"distqa/internal/corpus"
	"distqa/internal/fault"
	"distqa/internal/index"
	"distqa/internal/live"
	"distqa/internal/qa"
	"distqa/internal/shard"
)

// Shared fixtures: the tiny corpus text is shared in-process by every node
// (the same economy internal/live's tests use); the full-replica engine is
// the sequential oracle the equivalence assertions compare against.
var (
	gateColl   = corpus.Generate(corpus.Tiny())
	gateOracle = qa.NewEngine(gateColl, index.BuildAll(gateColl))
)

func waitFor(t *testing.T, what string, timeout time.Duration, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// startShardedCluster mirrors internal/live's harness of the same name from
// outside the package: n loopback nodes, K shards, R replicas under chained
// declustering, each node's index scoped to its holdings. mut adjusts each
// node's config before start.
func startShardedCluster(t *testing.T, n, k, r int, mut func(i int, cfg *live.NodeConfig)) []*live.Node {
	t.Helper()
	kk, rr, err := shard.Normalize(k, r, n, len(gateColl.Subs))
	if err != nil {
		t.Fatalf("shard.Normalize(%d,%d,%d): %v", k, r, n, err)
	}
	nodes := make([]*live.Node, 0, n)
	for i := 0; i < n; i++ {
		subs := shard.HoldingSubs(i, n, kk, rr, len(gateColl.Subs))
		engine := qa.NewEngine(gateColl, index.BuildSubset(gateColl, subs))
		cfg := live.NodeConfig{
			Addr:           "127.0.0.1:0",
			Engine:         engine,
			HeartbeatEvery: 50 * time.Millisecond,
			RequestTimeout: 10 * time.Second,
			Shard:          live.ShardConfig{K: kk, R: rr, NodeIndex: i, ClusterSize: n},
		}
		if mut != nil {
			mut(i, &cfg)
		}
		node, err := live.StartNode(cfg)
		if err != nil {
			t.Fatalf("start sharded node %d: %v", i, err)
		}
		nodes = append(nodes, node)
		t.Cleanup(node.Close)
	}
	for i, a := range nodes {
		for j, b := range nodes {
			if i != j {
				a.AddPeer(b.Addr())
			}
		}
	}
	for _, nd := range nodes {
		nd := nd
		waitFor(t, "peers+shard map on "+nd.Addr(), 10*time.Second, func() bool {
			st, err := live.QueryStatus(nd.Addr(), 2*time.Second)
			return err == nil && len(st.Peers) >= n-1 &&
				st.Shard != nil && st.Shard.Complete
		})
	}
	return nodes
}

// startGateway fronts nodes with a gateway on a loopback listener.
func startGateway(t *testing.T, nodes []*live.Node, mut func(cfg *Config)) *Gateway {
	t.Helper()
	addrs := make([]string, len(nodes))
	for i, nd := range nodes {
		addrs[i] = nd.Addr()
	}
	cfg := Config{Addr: "127.0.0.1:0", Nodes: addrs}
	if mut != nil {
		mut(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("gate.New: %v", err)
	}
	if err := g.Start(); err != nil {
		t.Fatalf("gate.Start: %v", err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

// postJSON posts body to the gateway and returns (status, response bytes).
func postJSON(t *testing.T, url string, body any, header map[string]string) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp.StatusCode, out.Bytes()
}

// TestGatewayEquivalence: the acceptance invariant — answers served through
// the HTTP front door over a sharded K=2/R=2 cluster are byte-identical to a
// direct live.Ask, for /v1/ask and for every entry of /v1/ask/batch.
func TestGatewayEquivalence(t *testing.T) {
	nodes := startShardedCluster(t, 3, 2, 2, nil)
	g := startGateway(t, nodes, nil)

	project := func(resp *live.Response) []byte {
		b, err := json.Marshal(ProjectAnswers(resp.Answers))
		if err != nil {
			t.Fatalf("marshal direct answers: %v", err)
		}
		return b
	}

	var qs []string
	for _, f := range gateColl.Facts[:3] {
		qs = append(qs, f.Question)
	}
	for _, q := range qs {
		direct, err := live.Ask(nodes[0].Addr(), q, 10*time.Second)
		if err != nil {
			t.Fatalf("direct ask %q: %v", q, err)
		}
		status, body := postJSON(t, g.URL()+"/v1/ask", AskPayload{Question: q}, nil)
		if status != http.StatusOK {
			t.Fatalf("gateway ask %q: status %d: %s", q, status, body)
		}
		var res AskResult
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("parse gateway response: %v", err)
		}
		got, err := json.Marshal(res.Answers)
		if err != nil {
			t.Fatalf("re-marshal gateway answers: %v", err)
		}
		if want := project(direct); !bytes.Equal(got, want) {
			t.Fatalf("gateway answers for %q differ from direct ask:\ngateway: %s\ndirect:  %s", q, got, want)
		}
		if len(res.Answers) == 0 {
			t.Fatalf("no answers for %q", q)
		}
	}

	// Batch: each entry equals its direct twin.
	status, body := postJSON(t, g.URL()+"/v1/ask/batch", BatchPayload{Questions: qs}, nil)
	if status != http.StatusOK {
		t.Fatalf("batch: status %d: %s", status, body)
	}
	var batch BatchResult
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatalf("parse batch response: %v", err)
	}
	if len(batch.Results) != len(qs) {
		t.Fatalf("batch returned %d results, want %d", len(batch.Results), len(qs))
	}
	for i, q := range qs {
		entry := batch.Results[i]
		if entry.Status != http.StatusOK || entry.Result == nil {
			t.Fatalf("batch entry %d: status %d error %q", i, entry.Status, entry.Error)
		}
		direct, err := live.Ask(nodes[1].Addr(), q, 10*time.Second)
		if err != nil {
			t.Fatalf("direct ask %q: %v", q, err)
		}
		got, _ := json.Marshal(entry.Result.Answers)
		if want := project(direct); !bytes.Equal(got, want) {
			t.Fatalf("batch entry %d answers differ from direct ask:\ngateway: %s\ndirect:  %s", i, got, want)
		}
	}
}

// TestGatewayDeadline504: an edge deadline shorter than the (injector-
// delayed) service time must come back as 504, the deadline must propagate
// into the cluster (the node observes TimeoutMS and its scatter budget is
// clamped), and — the regression this test exists for — the gateway's mux
// connection to the node must survive: subsequent asks over the same
// transport return the oracle answer.
func TestGatewayDeadline504(t *testing.T) {
	// Every ShardPR scatter leg stalls 400ms before sending, so any ask that
	// needs a remote shard cannot finish inside a 100ms edge deadline. The
	// answer cache is disabled so every ask exercises the scatter path.
	nodes := startShardedCluster(t, 3, 2, 2, func(i int, cfg *live.NodeConfig) {
		cfg.Cache.Disabled = true
		inj := fault.New(1)
		inj.Add(fault.Rule{Op: fault.OpShardPR, Delay: 400 * time.Millisecond})
		cfg.Fault = inj
	})
	g := startGateway(t, nodes, nil)
	q := gateColl.Facts[0].Question

	status, body := postJSON(t, g.URL()+"/v1/ask", AskPayload{Question: q, TimeoutMS: 100}, nil)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("short-deadline ask: status %d (want 504): %s", status, body)
	}

	// The same gateway, the same mux conns: asks with a generous deadline
	// must still serve the oracle answer (delayed, not broken).
	seq := gateOracle.AnswerSequential(q)
	for i := 0; i < 2; i++ {
		status, body = postJSON(t, g.URL()+"/v1/ask", AskPayload{Question: q, TimeoutMS: 8000}, nil)
		if status != http.StatusOK {
			t.Fatalf("post-timeout ask %d: status %d: %s", i, status, body)
		}
		var res AskResult
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("parse: %v", err)
		}
		if len(res.Answers) == 0 || !strings.EqualFold(res.Answers[0].Text, seq.Answers[0].Text) {
			t.Fatalf("post-timeout answer %+v differs from oracle %q — mux conn poisoned?", res.Answers, seq.Answers[0].Text)
		}
	}
	st := g.Status()
	if st.Timeouts < 1 {
		t.Fatalf("gateway counted %d timeouts, want >= 1", st.Timeouts)
	}
}

// TestGatewayDrain: the SIGTERM sequence. With a slow ask in flight, Drain
// must flip /v1/healthz to 503 and refuse new asks *while the listener still
// accepts* (readiness down before connections fail), let the in-flight ask
// finish with the oracle answer, and only then close the listener.
func TestGatewayDrain(t *testing.T) {
	nodes := startShardedCluster(t, 3, 2, 2, func(i int, cfg *live.NodeConfig) {
		cfg.Cache.Disabled = true
		inj := fault.New(1)
		inj.Add(fault.Rule{Op: fault.OpShardPR, Delay: 500 * time.Millisecond})
		cfg.Fault = inj
	})
	g := startGateway(t, nodes, nil)
	q := gateColl.Facts[1].Question

	healthz := func() int {
		resp, err := http.Get(g.URL() + "/v1/healthz")
		if err != nil {
			return -1
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := healthz(); got != http.StatusOK {
		t.Fatalf("healthz before drain = %d, want 200", got)
	}

	// A slow ask in flight...
	type askOut struct {
		status int
		body   []byte
	}
	done := make(chan askOut, 1)
	go func() {
		status, body := postJSON(t, g.URL()+"/v1/ask", AskPayload{Question: q, TimeoutMS: 8000}, nil)
		done <- askOut{status, body}
	}()
	waitFor(t, "ask in flight", 5*time.Second, func() bool { return g.Status().InFlight >= 1 })

	// ...drain begins: readiness flips and new asks are refused while the
	// in-flight ask still runs and the listener still answers.
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- g.Drain(ctx)
	}()
	waitFor(t, "readiness down", 5*time.Second, func() bool { return healthz() == http.StatusServiceUnavailable })
	if g.Status().InFlight < 1 {
		t.Fatal("in-flight ask finished before readiness was observed down; slow-ask setup broken")
	}
	if status, _ := postJSON(t, g.URL()+"/v1/ask", AskPayload{Question: q}, nil); status != http.StatusServiceUnavailable {
		t.Fatalf("new ask during drain: status %d, want 503", status)
	}

	// The in-flight ask completes with the oracle answer.
	out := <-done
	if out.status != http.StatusOK {
		t.Fatalf("in-flight ask during drain: status %d: %s", out.status, out.body)
	}
	var res AskResult
	if err := json.Unmarshal(out.body, &res); err != nil {
		t.Fatalf("parse drained ask: %v", err)
	}
	seq := gateOracle.AnswerSequential(q)
	if len(res.Answers) == 0 || !strings.EqualFold(res.Answers[0].Text, seq.Answers[0].Text) {
		t.Fatalf("drained ask answers %+v differ from oracle %q", res.Answers, seq.Answers[0].Text)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Only now is the listener gone.
	if conn, err := net.DialTimeout("tcp", g.Addr(), time.Second); err == nil {
		conn.Close()
		t.Fatal("listener still accepting after drain completed")
	}
}

// TestGatewayQueueShed: with MaxInflight=1 and MaxQueue=1, a third
// concurrent ask must shed synchronously with 429 + Retry-After while the
// first two (admitted + queued) complete fine — queue-depth shedding, not
// blind rejection.
func TestGatewayQueueShed(t *testing.T) {
	nodes := startShardedCluster(t, 3, 2, 2, func(i int, cfg *live.NodeConfig) {
		cfg.Cache.Disabled = true
		inj := fault.New(1)
		inj.Add(fault.Rule{Op: fault.OpShardPR, Delay: 400 * time.Millisecond})
		cfg.Fault = inj
	})
	g := startGateway(t, nodes, func(cfg *Config) {
		cfg.MaxInflight = 1
		cfg.MaxQueue = 1
	})
	q := gateColl.Facts[2].Question

	results := make(chan int, 2)
	ask := func() {
		status, _ := postJSON(t, g.URL()+"/v1/ask", AskPayload{Question: q, TimeoutMS: 8000}, nil)
		results <- status
	}
	go ask()
	waitFor(t, "first ask admitted", 5*time.Second, func() bool { return g.Status().InFlight == 1 })
	go ask()
	waitFor(t, "second ask queued", 5*time.Second, func() bool { return g.Status().QueueDepth == 1 })

	// Queue full: the third ask sheds immediately.
	raw, _ := json.Marshal(AskPayload{Question: q})
	resp, err := http.Post(g.URL()+"/v1/ask", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("shed ask: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third concurrent ask: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 carried Retry-After %q, want a positive hint", ra)
	}
	var e errorJSON
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.RetryAfterMS <= 0 {
		t.Fatalf("429 body %+v (err %v), want retry_after_ms > 0", e, err)
	}

	for i := 0; i < 2; i++ {
		if status := <-results; status != http.StatusOK {
			t.Fatalf("admitted/queued ask finished with %d, want 200", status)
		}
	}
	st := g.Status()
	if st.ShedQueue < 1 {
		t.Fatalf("shed_queue = %d, want >= 1", st.ShedQueue)
	}
	if st.QueuePeak < 1 || st.QueuePeak > st.QueueBound {
		t.Fatalf("queue peak %d outside (0, bound %d]", st.QueuePeak, st.QueueBound)
	}
}

// TestGatewayRateLimit: per-client token buckets keyed by API key — the
// third rapid request from one key sheds with 429 while a different key
// passes untouched.
func TestGatewayRateLimit(t *testing.T) {
	nodes := startShardedCluster(t, 2, 2, 1, nil)
	g := startGateway(t, nodes, func(cfg *Config) {
		cfg.RatePerClient = 0.5 // one token per 2s: no refill during the test
		cfg.Burst = 2
	})
	q := gateColl.Facts[0].Question

	alice := map[string]string{"X-API-Key": "alice"}
	for i := 0; i < 2; i++ {
		if status, body := postJSON(t, g.URL()+"/v1/ask", AskPayload{Question: q}, alice); status != http.StatusOK {
			t.Fatalf("ask %d within burst: status %d: %s", i, status, body)
		}
	}
	status, body := postJSON(t, g.URL()+"/v1/ask", AskPayload{Question: q}, alice)
	if status != http.StatusTooManyRequests {
		t.Fatalf("ask beyond burst: status %d (want 429): %s", status, body)
	}
	if status, _ := postJSON(t, g.URL()+"/v1/ask", AskPayload{Question: q}, map[string]string{"X-API-Key": "bob"}); status != http.StatusOK {
		t.Fatalf("different API key should have its own bucket, got %d", status)
	}
	if st := g.Status(); st.ShedRate < 1 {
		t.Fatalf("shed_rate = %d, want >= 1", st.ShedRate)
	}
}

// expositionLine is PR 1's Prometheus text-format line shape (the same
// regexp internal/live's TestMetricsExposition parses with).
var expositionLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|\+Inf|NaN)$`)

// TestGateMetricsExposition: observability parity with the cluster nodes —
// the gate_* registry serves parseable Prometheus text covering admission
// outcomes, live gauges and per-route latency histograms, and /v1/statusz
// carries the edge-ask SLO row.
func TestGateMetricsExposition(t *testing.T) {
	// No live backend needed: an unreachable node makes asks count as
	// backend errors, which is itself signal for the exposition.
	g, err := New(Config{Nodes: []string{"127.0.0.1:1"}})
	if err != nil {
		t.Fatalf("gate.New: %v", err)
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	if status, _ := postJSON(t, srv.URL+"/v1/ask", AskPayload{Question: "q?", TimeoutMS: 1000}, nil); status == http.StatusOK {
		t.Fatal("ask against an unreachable backend cannot succeed")
	}
	resp, err := http.Post(srv.URL+"/v1/ask", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatalf("bad ask: %v", err)
	}
	resp.Body.Close()

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	text := buf.String()

	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := expositionLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable exposition line: %q", line)
		}
		seen[m[1]+m[2]] = true
	}
	for _, want := range []string{
		`gate_requests_total{route="ask"}`,
		`gate_bad_requests_total`,
		`gate_inflight`,
		`gate_queue_depth`,
		`gate_shed_total{reason="queue"}`,
		`gate_shed_total{reason="rate"}`,
		`gate_route_seconds_count{route="ask"}`,
	} {
		if !seen[want] {
			t.Errorf("exposition is missing %s", want)
		}
	}
	if !strings.Contains(text, `gate_route_seconds_bucket{le=`) {
		t.Error("exposition has no latency histogram buckets")
	}

	// Statusz carries the SLO row for the edge objective.
	sresp, err := http.Get(srv.URL + "/v1/statusz")
	if err != nil {
		t.Fatalf("GET /v1/statusz: %v", err)
	}
	defer sresp.Body.Close()
	var st Statusz
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatalf("parse statusz: %v", err)
	}
	found := false
	for _, row := range st.SLO {
		if row.Op == "edge_ask" && row.Quantile == 0.99 {
			found = true
			if row.Total < 1 {
				t.Errorf("edge_ask SLO window saw %d observations, want >= 1", row.Total)
			}
		}
	}
	if !found {
		t.Fatalf("statusz has no edge_ask p99 SLO row: %+v", st.SLO)
	}
}

// TestRunLoadSmoke: the open-loop harness against a single full-replica
// node — a short sub-saturation run must achieve nonzero throughput with
// ~zero shed.
func TestRunLoadSmoke(t *testing.T) {
	node, err := live.StartNode(live.NodeConfig{Addr: "127.0.0.1:0", Engine: gateOracle})
	if err != nil {
		t.Fatalf("start node: %v", err)
	}
	t.Cleanup(node.Close)
	g := startGateway(t, []*live.Node{node}, nil)

	var qs []string
	for _, f := range gateColl.Facts[:4] {
		qs = append(qs, f.Question)
	}
	res, err := RunLoad(LoadConfig{
		BaseURL:   g.URL(),
		Questions: qs,
		Rate:      40,
		Duration:  1 * time.Second,
		Seed:      1,
		TimeoutMS: 5000,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.OK == 0 || res.AchievedQPS <= 0 {
		t.Fatalf("load run achieved nothing: %+v", res)
	}
	if res.ShedRate > 0.01 {
		t.Fatalf("sub-threshold run shed %.1f%%, want ~0%%", res.ShedRate*100)
	}
	if res.P99Ms <= 0 || res.P50Ms > res.P99Ms {
		t.Fatalf("nonsense latency quantiles: %+v", res)
	}
	if fmt.Sprintf("%s", res.Text()) == "" {
		t.Fatal("empty text report")
	}
}
