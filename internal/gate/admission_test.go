package gate

import (
	"context"
	"testing"
	"time"
)

// The admission controller's contract is tested without goroutines, sleeps
// or real time: Reserve never blocks — it admits, queues (returning a ticket
// channel), or sheds — so cap/queue/shed ordering is checked by driving the
// state machine directly, the same injectable-seam style as
// internal/qcache's clock tests.

func TestAdmissionCapThenQueueThenShed(t *testing.T) {
	a := NewAdmission(2, 3)

	// First cap admissions are immediate.
	for i := 0; i < 2; i++ {
		admitted, ticket, shed := a.Reserve()
		if !admitted || ticket != nil || shed {
			t.Fatalf("reserve %d: got (%v,%v,%v), want admitted", i, admitted, ticket, shed)
		}
	}
	if got := a.InFlight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}

	// Next maxQueue reservations queue.
	var tickets []chan struct{}
	for i := 0; i < 3; i++ {
		admitted, ticket, shed := a.Reserve()
		if admitted || ticket == nil || shed {
			t.Fatalf("reserve %d over cap: got (%v,%v,%v), want queued", i, admitted, ticket, shed)
		}
		tickets = append(tickets, ticket)
	}
	if got := a.QueueDepth(); got != 3 {
		t.Fatalf("queue depth = %d, want 3", got)
	}
	if got := a.QueuePeak(); got != 3 {
		t.Fatalf("queue peak = %d, want 3", got)
	}

	// Beyond the queue bound: shed.
	if admitted, ticket, shed := a.Reserve(); !shed || admitted || ticket != nil {
		t.Fatalf("reserve over queue bound: got (%v,%v,%v), want shed", admitted, ticket, shed)
	}
}

// TestAdmissionFIFOHandoff: a released slot transfers to the *oldest* queued
// waiter — tickets close strictly in reservation order, and the in-flight
// count never dips while waiters exist (the slot hands over, it does not
// bounce through free).
func TestAdmissionFIFOHandoff(t *testing.T) {
	a := NewAdmission(1, 2)
	a.Reserve() // take the only slot
	_, t1, _ := a.Reserve()
	_, t2, _ := a.Reserve()

	granted := func(ch chan struct{}) bool {
		select {
		case <-ch:
			return true
		default:
			return false
		}
	}
	if granted(t1) || granted(t2) {
		t.Fatal("no ticket should be granted while the slot is held")
	}

	a.Release() // slot transfers to t1
	if !granted(t1) {
		t.Fatal("oldest ticket not granted on release")
	}
	if granted(t2) {
		t.Fatal("younger ticket granted out of order")
	}
	if got := a.InFlight(); got != 1 {
		t.Fatalf("inflight = %d after handoff, want 1 (slot transferred, not freed)", got)
	}

	a.Release() // t1's holder releases; transfers to t2
	if !granted(t2) {
		t.Fatal("second ticket not granted in FIFO order")
	}
	a.Release() // t2's holder releases; queue empty, slot frees
	if got := a.InFlight(); got != 0 {
		t.Fatalf("inflight = %d after final release, want 0", got)
	}
}

func TestAdmissionAbandon(t *testing.T) {
	a := NewAdmission(1, 2)
	a.Reserve()
	_, t1, _ := a.Reserve()
	_, t2, _ := a.Reserve()

	// Abandoning a queued ticket removes it; the later ticket moves up.
	if !a.Abandon(t1) {
		t.Fatal("abandon of a queued ticket should report removed")
	}
	if got := a.QueueDepth(); got != 1 {
		t.Fatalf("queue depth = %d after abandon, want 1", got)
	}
	a.Release()
	select {
	case <-t2:
	default:
		t.Fatal("remaining ticket should have been granted")
	}
	// t2 was granted before any abandon attempt: Abandon must report "too
	// late" so the caller knows it now holds the slot.
	if a.Abandon(t2) {
		t.Fatal("abandon of a granted ticket must return false")
	}
	a.Release()
	if got, want := a.InFlight(), 0; got != want {
		t.Fatalf("inflight = %d, want %d", got, want)
	}
}

// TestAdmissionWaitCancelled: Wait with an already-cancelled context on a
// still-queued ticket returns the context error and removes the ticket —
// no slot leaks either way the grant/cancel race resolves.
func TestAdmissionWaitCancelled(t *testing.T) {
	a := NewAdmission(1, 2)
	a.Reserve()
	_, ticket, _ := a.Reserve()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := a.Wait(ctx, ticket); err == nil {
		t.Fatal("Wait with cancelled context should error")
	}
	if got := a.QueueDepth(); got != 0 {
		t.Fatalf("queue depth = %d after cancelled wait, want 0", got)
	}
	// The held slot is unaffected.
	if got := a.InFlight(); got != 1 {
		t.Fatalf("inflight = %d, want 1", got)
	}
}

// TestAdmissionWaitCancelledAfterGrant: when the grant lands before the
// cancelled Wait runs, Wait must hand the already-granted slot back rather
// than leak it.
func TestAdmissionWaitCancelledAfterGrant(t *testing.T) {
	a := NewAdmission(1, 2)
	a.Reserve()
	_, ticket, _ := a.Reserve()
	a.Release() // grant lands: ticket closed, slot transferred

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The select in Wait may legitimately observe the closed ticket first
	// (nil error, caller holds the slot) or the cancelled context first
	// (error, Wait gives the slot back). Either way exactly the controller's
	// books must balance afterwards.
	if err := a.Wait(ctx, ticket); err == nil {
		a.Release()
	}
	if got := a.InFlight(); got != 0 {
		t.Fatalf("inflight = %d after granted-then-cancelled wait, want 0", got)
	}
	if got := a.QueueDepth(); got != 0 {
		t.Fatalf("queue depth = %d, want 0", got)
	}
}

func TestAdmissionWaitIdle(t *testing.T) {
	a := NewAdmission(1, 1)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := a.WaitIdle(ctx); err != nil {
		t.Fatalf("WaitIdle on an idle controller: %v", err)
	}
	a.Reserve()
	busy, bcancel := context.WithCancel(context.Background())
	bcancel()
	if err := a.WaitIdle(busy); err == nil {
		t.Fatal("WaitIdle with a held slot and cancelled context should error")
	}
	a.Release()
	if err := a.WaitIdle(ctx); err != nil {
		t.Fatalf("WaitIdle after release: %v", err)
	}
}

func TestAdmissionClamps(t *testing.T) {
	a := NewAdmission(0, -5)
	if a.Cap() != 1 || a.QueueBound() != 0 {
		t.Fatalf("clamps: cap=%d queue=%d, want 1 and 0", a.Cap(), a.QueueBound())
	}
	a.Reserve()
	// Queue bound 0: the instant the cap is reached, reservations shed.
	if _, _, shed := a.Reserve(); !shed {
		t.Fatal("zero-queue controller must shed at the cap")
	}
}
