// Package vtime implements a deterministic virtual-time discrete-event
// simulation kernel. Simulated processes run as goroutines, but exactly one
// goroutine (either the scheduler or a single process) executes at any
// moment, so the simulation is fully deterministic: events at equal virtual
// times fire in creation order, and no real-time data races can influence
// results.
//
// The kernel provides the primitives the cluster simulator is built from:
// processes (Proc), timers (Sleep), condition signalling (Cond), FIFO
// queues (Queue), wait groups (Group), and processor-sharing resources (PS).
//
// Virtual time is a float64 number of seconds since the start of the
// simulation.
package vtime

import (
	"container/heap"
	"fmt"
	"math"
)

// Sim is a single simulation instance. A Sim is not safe for concurrent use
// from multiple host goroutines; all interaction happens either before Run
// (spawning the initial processes) or from within simulated processes.
type Sim struct {
	now     float64
	seq     uint64
	events  eventHeap
	yield   chan struct{} // handed to the scheduler by a parking process
	procs   map[*Proc]struct{}
	current *Proc
	stopped bool
	nprocs  int // total processes ever spawned, for naming
}

// event is a scheduled occurrence. If p is non-nil the event resumes that
// process; otherwise fn is invoked in the scheduler goroutine (and must not
// block).
type event struct {
	at        float64
	seq       uint64
	p         *Proc
	fn        func()
	cancelled bool
	index     int
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ ev *event }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (h Handle) Cancel() {
	if h.ev != nil {
		h.ev.cancelled = true
	}
}

// NewSim creates an empty simulation positioned at virtual time zero.
func NewSim() *Sim {
	return &Sim{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now reports the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// schedule inserts an event at absolute virtual time at.
func (s *Sim) schedule(at float64, p *Proc, fn func()) Handle {
	if at < s.now {
		at = s.now
	}
	if math.IsNaN(at) {
		panic("vtime: scheduling event at NaN time")
	}
	s.seq++
	ev := &event{at: at, seq: s.seq, p: p, fn: fn}
	heap.Push(&s.events, ev)
	return Handle{ev}
}

// After schedules fn to run in the scheduler context d seconds from now.
// fn must not block; it typically mutates state and wakes processes.
func (s *Sim) After(d float64, fn func()) Handle {
	return s.schedule(s.now+d, nil, fn)
}

// Spawn creates a new simulated process executing fn and schedules it to
// start at the current virtual time. It may be called before Run or from
// within a running process.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	if s.stopped {
		return nil
	}
	s.nprocs++
	if name == "" {
		name = fmt.Sprintf("proc-%d", s.nprocs)
	}
	p := &Proc{
		sim:    s,
		name:   name,
		id:     s.nprocs,
		resume: make(chan struct{}),
	}
	s.procs[p] = struct{}{}
	go func() {
		<-p.resume // wait for first activation
		if p.killed {
			delete(s.procs, p)
			return
		}
		defer func() {
			if r := recover(); r != nil {
				if r == errKilled {
					// Shutdown poison: exit silently without yielding;
					// the scheduler is not waiting for us.
					return
				}
				panic(r)
			}
		}()
		fn(p)
		p.done = true
		delete(s.procs, p)
		s.yield <- struct{}{}
	}()
	s.schedule(s.now, p, nil)
	return p
}

// runOne pops and fires the next event. It reports false when no events
// remain.
func (s *Sim) runOne() bool {
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.cancelled {
			continue
		}
		if ev.at < s.now {
			panic("vtime: event queue went backwards")
		}
		s.now = ev.at
		if ev.p != nil {
			if ev.p.done || ev.p.killed {
				continue
			}
			s.current = ev.p
			ev.p.resume <- struct{}{}
			<-s.yield
			s.current = nil
		} else if ev.fn != nil {
			ev.fn()
		}
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called. Simulations
// containing perpetual processes (for example load monitors) never drain;
// use RunUntil for those.
func (s *Sim) Run() {
	for !s.stopped && s.runOne() {
	}
}

// RunUntil executes events with virtual time ≤ t, then advances the clock to
// exactly t. Events scheduled beyond t remain queued.
func (s *Sim) RunUntil(t float64) {
	for !s.stopped && s.events.Len() > 0 && s.events[0].at <= t {
		s.runOne()
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
}

// Stop halts the simulation: Run/RunUntil return after the in-flight event
// completes, and no further events fire. May be called from a process or an
// event callback.
func (s *Sim) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Sim) Stopped() bool { return s.stopped }

// Shutdown terminates all parked processes so their goroutines exit. It must
// be called from the host goroutine after Run/RunUntil returns. The Sim is
// unusable afterwards.
func (s *Sim) Shutdown() {
	s.stopped = true
	for p := range s.procs {
		if p == s.current {
			continue
		}
		p.killed = true
		p.resume <- struct{}{}
	}
	s.procs = map[*Proc]struct{}{}
}

// PendingEvents reports the number of queued (possibly cancelled) events.
func (s *Sim) PendingEvents() int { return s.events.Len() }

// errKilled is the panic sentinel used to unwind poisoned processes.
var errKilled = new(int)

// Proc is a simulated process. All its methods must be called from the
// process's own goroutine (i.e. from within the function passed to Spawn),
// except Name/ID which are safe anywhere.
type Proc struct {
	sim    *Sim
	name   string
	id     int
	resume chan struct{}
	done   bool
	killed bool
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the unique process id (1-based, in spawn order).
func (p *Proc) ID() int { return p.id }

// Sim returns the simulation this process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now reports the current virtual time.
func (p *Proc) Now() float64 { return p.sim.now }

// park suspends the process until some event resumes it.
func (p *Proc) park() {
	p.sim.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(errKilled)
	}
}

// wake schedules the process to resume at the current virtual time.
// It is invoked by synchronisation primitives, never by the process itself.
func (p *Proc) wake() Handle {
	return p.sim.schedule(p.sim.now, p, nil)
}

// Sleep suspends the process for d virtual seconds. Negative durations are
// treated as zero (the process still yields, letting same-time events run).
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		d = 0
	}
	p.sim.schedule(p.sim.now+d, p, nil)
	p.park()
}

// Yield lets all other runnable same-time events execute before continuing.
func (p *Proc) Yield() { p.Sleep(0) }

// Spawn starts a child process in the same simulation.
func (p *Proc) Spawn(name string, fn func(p *Proc)) *Proc {
	return p.sim.Spawn(name, fn)
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
