package vtime

// Cond is a virtual-time condition variable. Processes block in Wait and are
// released, in FIFO order, by Signal or Broadcast. Unlike sync.Cond there is
// no associated lock: the simulation is single-threaded, so state inspected
// before Wait cannot change until the process parks.
type Cond struct {
	sim     *Sim
	waiters []*Proc
}

// NewCond creates a condition variable bound to sim.
func NewCond(sim *Sim) *Cond { return &Cond{sim: sim} }

// Wait parks the calling process until a Signal or Broadcast releases it.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Signal releases the longest-waiting process, if any. The release is
// scheduled at the current virtual time, so the woken process runs after the
// caller next yields.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	p.wake()
}

// Broadcast releases every waiting process in FIFO order.
func (c *Cond) Broadcast() {
	for _, p := range c.waiters {
		p.wake()
	}
	c.waiters = nil
}

// Waiters reports how many processes are blocked on the condition.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Queue is an unbounded FIFO mailbox carrying arbitrary values between
// simulated processes. Put never blocks; Get blocks until an item is
// available.
type Queue struct {
	sim   *Sim
	items []any
	cond  *Cond
}

// NewQueue creates an empty queue bound to sim.
func NewQueue(sim *Sim) *Queue {
	return &Queue{sim: sim, cond: NewCond(sim)}
}

// Put appends v and wakes one waiting consumer. Callable from processes and
// from event callbacks.
func (q *Queue) Put(v any) {
	q.items = append(q.items, v)
	q.cond.Signal()
}

// Get removes and returns the oldest item, blocking the calling process
// while the queue is empty.
func (q *Queue) Get(p *Proc) any {
	for len(q.items) == 0 {
		q.cond.Wait(p)
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// TryGet removes and returns the oldest item without blocking. The second
// result reports whether an item was available.
func (q *Queue) TryGet() (any, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// GetTimeout behaves like Get but gives up after d virtual seconds, returning
// ok=false on timeout.
func (q *Queue) GetTimeout(p *Proc, d float64) (any, bool) {
	if v, ok := q.TryGet(); ok {
		return v, true
	}
	deadline := q.sim.now + d
	expired := false
	h := q.sim.schedule(deadline, nil, func() {
		expired = true
		// Force a pass through the wait loop: wake p only if it is still a
		// waiter on the condition.
		for i, w := range q.cond.waiters {
			if w == p {
				q.cond.waiters = append(q.cond.waiters[:i], q.cond.waiters[i+1:]...)
				p.wake()
				break
			}
		}
	})
	defer h.Cancel()
	for len(q.items) == 0 {
		if expired {
			return nil, false
		}
		q.cond.Wait(p)
		if expired && len(q.items) == 0 {
			return nil, false
		}
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len reports the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Sem is a FIFO counting semaphore in virtual time: Acquire blocks while no
// permits are free and earlier waiters are served strictly first (Release
// hands its permit directly to the longest waiter, so late arrivals cannot
// barge).
type Sem struct {
	free int
	cond *Cond
}

// NewSem creates a semaphore with n permits.
func NewSem(sim *Sim, n int) *Sem {
	if n < 1 {
		panic("vtime: semaphore needs at least one permit")
	}
	return &Sem{free: n, cond: NewCond(sim)}
}

// Acquire blocks the calling process until a permit is available and all
// earlier (un-served) waiters have been handed theirs.
func (s *Sem) Acquire(p *Proc) {
	if s.free > 0 && s.cond.Waiters() == 0 {
		s.free--
		return
	}
	s.cond.Wait(p)
	// The permit was handed over by Release; do not touch free.
}

// Release returns a permit, waking the longest waiter if any. Waiters that
// were already signalled (but have not resumed yet) hold their hand-off, so
// the permit goes to the next un-signalled waiter or back to the pool.
func (s *Sem) Release() {
	if s.cond.Waiters() > 0 {
		s.cond.Signal() // direct hand-off
		return
	}
	s.free++
}

// Waiting reports how many processes are queued for a permit.
func (s *Sem) Waiting() int { return s.cond.Waiters() }

// Free reports the currently unclaimed permits.
func (s *Sem) Free() int { return s.free }

// Group is a virtual-time wait group: Wait blocks until the counter returns
// to zero.
type Group struct {
	n    int
	cond *Cond
}

// NewGroup creates a group with counter zero.
func NewGroup(sim *Sim) *Group { return &Group{cond: NewCond(sim)} }

// Add increments the counter by delta (which may be negative). A counter
// reaching zero releases all waiters.
func (g *Group) Add(delta int) {
	g.n += delta
	if g.n < 0 {
		panic("vtime: negative Group counter")
	}
	if g.n == 0 {
		g.cond.Broadcast()
	}
}

// Done decrements the counter by one.
func (g *Group) Done() { g.Add(-1) }

// Wait blocks the calling process until the counter is zero.
func (g *Group) Wait(p *Proc) {
	for g.n > 0 {
		g.cond.Wait(p)
	}
}

// Count reports the current counter value.
func (g *Group) Count() int { return g.n }
