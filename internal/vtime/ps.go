package vtime

import "math"

// PS is a processor-sharing resource: a device with a fixed service capacity
// (units of work per virtual second) divided equally among all jobs currently
// in service. It models CPUs (capacity = 1 cpu-second/second per core) and
// disks (capacity = bytes/second) under concurrent load: with n active jobs
// each proceeds at capacity/n, exactly the behaviour responsible for the
// paper's "four simultaneous questions cause disk overload" observation.
//
// A speed factor below 1 uniformly slows the device; the cluster package uses
// it to model page-thrashing when memory is oversubscribed.
//
// PS also keeps two running integrals used by load monitors:
//
//   - busy time: seconds during which at least one job was in service
//     (utilisation = Δbusy/Δt, in [0,1]);
//   - job seconds: ∫ n(t) dt, whose window average is the run-queue style
//     load figure (≥ 0, exceeding 1 under contention) used by the paper's
//     load functions.
type PS struct {
	sim      *Sim
	name     string
	capacity float64
	speed    float64
	jobs     map[*psJob]struct{}
	last     float64 // virtual time of the last settle
	next     Handle  // pending completion event
	hasNext  bool

	busyTime   float64
	jobSeconds float64
	served     float64 // total work units completed
	failed     bool
}

type psJob struct {
	p         *Proc
	amount    float64 // original demand, for the relative completion test
	remaining float64
	aborted   bool
}

// done reports whether the job's remaining work is negligible. The test is
// relative to the original amount: jobs range from milliseconds of CPU to
// hundreds of megabytes of disk, so no absolute epsilon fits all.
func (j *psJob) done() bool {
	return j.remaining <= psEpsilon*j.amount
}

// NewPS creates a processor-sharing resource with the given capacity in work
// units per virtual second.
func NewPS(sim *Sim, name string, capacity float64) *PS {
	if capacity <= 0 {
		panic("vtime: PS capacity must be positive")
	}
	return &PS{
		sim:      sim,
		name:     name,
		capacity: capacity,
		speed:    1,
		jobs:     make(map[*psJob]struct{}),
		last:     sim.Now(),
	}
}

// Name returns the resource name.
func (r *PS) Name() string { return r.name }

// Capacity returns the nominal capacity in units per second.
func (r *PS) Capacity() float64 { return r.capacity }

// rate is the per-job service rate right now.
func (r *PS) rate() float64 {
	if len(r.jobs) == 0 {
		return 0
	}
	return r.capacity * r.speed / float64(len(r.jobs))
}

// settle advances internal accounting from r.last to the current time.
func (r *PS) settle() {
	now := r.sim.Now()
	dt := now - r.last
	if dt < 0 {
		dt = 0
	}
	if n := len(r.jobs); n > 0 && dt > 0 {
		perJob := dt * r.rate()
		for j := range r.jobs {
			j.remaining -= perJob
			if j.remaining < 0 {
				j.remaining = 0
			}
		}
		r.busyTime += dt
		r.jobSeconds += dt * float64(n)
		r.served += perJob * float64(n)
	}
	r.last = now
}

const psEpsilon = 1e-9

// reschedule cancels any pending completion event and schedules the next one.
func (r *PS) reschedule() {
	if r.hasNext {
		r.next.Cancel()
		r.hasNext = false
	}
	if len(r.jobs) == 0 {
		return
	}
	minRem := math.Inf(1)
	for j := range r.jobs {
		if j.remaining < minRem {
			minRem = j.remaining
		}
	}
	eff := r.capacity * r.speed
	if eff <= 0 {
		return // fully stalled; completion rescheduled when speed recovers
	}
	dt := minRem * float64(len(r.jobs)) / eff
	r.next = r.sim.After(dt, r.complete)
	r.hasNext = true
}

// complete fires when the job(s) with the least remaining work finish.
func (r *PS) complete() {
	r.hasNext = false
	r.settle()
	var done []*psJob
	for j := range r.jobs {
		if j.done() {
			done = append(done, j)
		}
	}
	if len(done) == 0 && len(r.jobs) > 0 {
		// Floating-point slack left the minimum job marginally unfinished;
		// force-complete it to guarantee progress.
		var min *psJob
		for j := range r.jobs {
			if min == nil || j.remaining < min.remaining ||
				(j.remaining == min.remaining && j.p.id < min.p.id) {
				min = j
			}
		}
		min.remaining = 0
		done = append(done, min)
	}
	sortJobs(done)
	for _, j := range done {
		delete(r.jobs, j)
		j.p.wake()
	}
	r.reschedule()
}

// sortJobs orders jobs by owner process id so that simultaneous completions
// wake deterministically despite map iteration order.
func sortJobs(js []*psJob) {
	for i := 1; i < len(js); i++ {
		for k := i; k > 0 && js[k].p.id < js[k-1].p.id; k-- {
			js[k], js[k-1] = js[k-1], js[k]
		}
	}
}

// Use blocks the calling process until amount units of work have been served
// by the resource under processor sharing. Zero or negative amounts return
// immediately (after a yield, to preserve event ordering). It reports false
// if the job was aborted by AbortAll (device failure) before completing.
func (r *PS) Use(p *Proc, amount float64) bool {
	if r.failed {
		p.Yield()
		return false
	}
	if amount <= 0 {
		p.Yield()
		return true
	}
	r.settle()
	j := &psJob{p: p, amount: amount, remaining: amount}
	r.jobs[j] = struct{}{}
	r.reschedule()
	p.park()
	return !j.aborted
}

// AbortAll marks the resource as failed: every in-service job is woken with
// a failure result and future Use calls fail immediately. This models a
// device (node) crash; the distributed system observes it as a sub-task
// error and triggers partitioner failure recovery.
func (r *PS) AbortAll() {
	r.settle()
	r.failed = true
	var all []*psJob
	for j := range r.jobs {
		all = append(all, j)
	}
	sortJobs(all)
	for _, j := range all {
		j.aborted = true
		delete(r.jobs, j)
		j.p.wake()
	}
	r.reschedule()
}

// Failed reports whether AbortAll has been called.
func (r *PS) Failed() bool { return r.failed }

// SetSpeed changes the speed factor (1 = nominal). Used to model thrashing.
func (r *PS) SetSpeed(f float64) {
	if f < 0 {
		f = 0
	}
	r.settle()
	r.speed = f
	r.reschedule()
}

// Speed returns the current speed factor.
func (r *PS) Speed() float64 { return r.speed }

// Active reports the number of jobs currently in service.
func (r *PS) Active() int { return len(r.jobs) }

// BusyTime returns the cumulative seconds during which the resource served at
// least one job, settled to the current virtual time.
func (r *PS) BusyTime() float64 {
	r.settle()
	return r.busyTime
}

// JobSeconds returns the cumulative ∫ n(t) dt, settled to the current time.
func (r *PS) JobSeconds() float64 {
	r.settle()
	return r.jobSeconds
}

// Served returns the total work units completed so far.
func (r *PS) Served() float64 {
	r.settle()
	return r.served
}
