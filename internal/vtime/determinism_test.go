package vtime

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// traceRun executes a randomized process mix — sleeps, PS usage, queue
// traffic, semaphores — and returns an event trace. Two runs with the same
// seed must produce byte-identical traces: the simulator's determinism is
// what makes every experiment in this repository reproducible.
func traceRun(seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	sim := NewSim()
	cpu := NewPS(sim, "cpu", 1+rng.Float64()*3)
	disk := NewPS(sim, "disk", 1+rng.Float64()*3)
	q := NewQueue(sim)
	sem := NewSem(sim, 1+rng.Intn(3))
	var trace []string

	nProcs := 3 + rng.Intn(8)
	for i := 0; i < nProcs; i++ {
		i := i
		starts := rng.Float64() * 5
		cpuWork := 0.1 + rng.Float64()*2
		diskWork := 0.1 + rng.Float64()*2
		useSem := rng.Intn(2) == 0
		sim.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(starts)
			trace = append(trace, fmt.Sprintf("p%d start %.6f", i, p.Now()))
			if useSem {
				sem.Acquire(p)
			}
			cpu.Use(p, cpuWork)
			trace = append(trace, fmt.Sprintf("p%d cpu-done %.6f", i, p.Now()))
			disk.Use(p, diskWork)
			q.Put(i)
			if useSem {
				sem.Release()
			}
			trace = append(trace, fmt.Sprintf("p%d end %.6f", i, p.Now()))
		})
	}
	sim.Spawn("consumer", func(p *Proc) {
		for k := 0; k < nProcs; k++ {
			v := q.Get(p).(int)
			trace = append(trace, fmt.Sprintf("consumed %d at %.6f", v, p.Now()))
		}
	})
	sim.Run()
	return trace
}

func TestSimulationDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		a := traceRun(seed)
		b := traceRun(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				t.Logf("divergence at %d: %q vs %q", i, a[i], b[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := traceRun(1)
	b := traceRun(2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces; randomization broken")
	}
}

// Property: semaphore FIFO — under arbitrary acquire/release interleavings,
// waiters are served strictly in arrival order.
func TestSemFIFOProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sim := NewSim()
		sem := NewSem(sim, 1)
		var served []int
		n := 2 + rng.Intn(10)
		for i := 0; i < n; i++ {
			i := i
			at := float64(i) // strictly increasing arrival
			hold := 0.1 + rng.Float64()
			sim.Spawn("w", func(p *Proc) {
				p.Sleep(at)
				sem.Acquire(p)
				served = append(served, i)
				p.Sleep(hold)
				sem.Release()
			})
		}
		sim.Run()
		if len(served) != n {
			return false
		}
		for i, v := range served {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
