package vtime

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}

func TestSleepAdvancesClock(t *testing.T) {
	sim := NewSim()
	var end float64
	sim.Spawn("sleeper", func(p *Proc) {
		p.Sleep(2.5)
		p.Sleep(1.5)
		end = p.Now()
	})
	sim.Run()
	if !almostEqual(end, 4.0) {
		t.Fatalf("end = %v, want 4.0", end)
	}
	if !almostEqual(sim.Now(), 4.0) {
		t.Fatalf("sim.Now() = %v, want 4.0", sim.Now())
	}
}

func TestSpawnOrderIsDeterministic(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		sim := NewSim()
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			sim.Spawn("p", func(p *Proc) {
				order = append(order, i)
				p.Sleep(1)
				order = append(order, 100+i)
			})
		}
		sim.Run()
		for i := 0; i < 10; i++ {
			if order[i] != i {
				t.Fatalf("trial %d: first wave order[%d]=%d", trial, i, order[i])
			}
			if order[10+i] != 100+i {
				t.Fatalf("trial %d: second wave order[%d]=%d", trial, 10+i, order[10+i])
			}
		}
	}
}

func TestAfterCallbackAndCancel(t *testing.T) {
	sim := NewSim()
	fired := 0
	sim.After(1, func() { fired++ })
	h := sim.After(2, func() { fired += 10 })
	h.Cancel()
	sim.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if !almostEqual(sim.Now(), 1) {
		t.Fatalf("now = %v, want 1 (cancelled event should not advance clock)", sim.Now())
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	sim := NewSim()
	var ticks []float64
	sim.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(1)
			ticks = append(ticks, p.Now())
		}
	})
	sim.RunUntil(5.5)
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5", len(ticks))
	}
	if !almostEqual(sim.Now(), 5.5) {
		t.Fatalf("now = %v, want 5.5", sim.Now())
	}
	sim.RunUntil(7.0)
	if len(ticks) != 7 {
		t.Fatalf("after second RunUntil got %d ticks, want 7", len(ticks))
	}
	sim.Shutdown()
}

func TestStopHaltsSimulation(t *testing.T) {
	sim := NewSim()
	count := 0
	sim.Spawn("p", func(p *Proc) {
		for {
			p.Sleep(1)
			count++
			if count == 3 {
				sim.Stop()
				// The process keeps control until it parks again.
			}
		}
	})
	sim.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	sim.Shutdown()
}

func TestCondFIFOSignal(t *testing.T) {
	sim := NewSim()
	cond := NewCond(sim)
	var woken []int
	for i := 0; i < 3; i++ {
		i := i
		sim.Spawn("waiter", func(p *Proc) {
			cond.Wait(p)
			woken = append(woken, i)
		})
	}
	sim.Spawn("signaler", func(p *Proc) {
		p.Sleep(1)
		if cond.Waiters() != 3 {
			t.Errorf("waiters = %d, want 3", cond.Waiters())
		}
		cond.Signal()
		p.Sleep(1)
		cond.Broadcast()
	})
	sim.Run()
	if len(woken) != 3 || woken[0] != 0 || woken[1] != 1 || woken[2] != 2 {
		t.Fatalf("woken = %v, want [0 1 2]", woken)
	}
}

func TestQueueFIFO(t *testing.T) {
	sim := NewSim()
	q := NewQueue(sim)
	var got []int
	sim.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Get(p).(int))
		}
	})
	sim.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(1)
			q.Put(i)
		}
	})
	sim.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestQueueGetTimeout(t *testing.T) {
	sim := NewSim()
	q := NewQueue(sim)
	var gotOK, timedOut bool
	var when float64
	sim.Spawn("consumer", func(p *Proc) {
		_, ok := q.GetTimeout(p, 2)
		timedOut = !ok
		when = p.Now()
		v, ok := q.GetTimeout(p, 10)
		gotOK = ok && v.(int) == 42
	})
	sim.Spawn("producer", func(p *Proc) {
		p.Sleep(5)
		q.Put(42)
	})
	sim.Run()
	if !timedOut {
		t.Fatal("first GetTimeout should have timed out")
	}
	if !almostEqual(when, 2) {
		t.Fatalf("timeout at %v, want 2", when)
	}
	if !gotOK {
		t.Fatal("second GetTimeout should have received 42")
	}
}

func TestGroupWait(t *testing.T) {
	sim := NewSim()
	g := NewGroup(sim)
	g.Add(3)
	var joined float64 = -1
	sim.Spawn("joiner", func(p *Proc) {
		g.Wait(p)
		joined = p.Now()
	})
	for i := 1; i <= 3; i++ {
		d := float64(i)
		sim.Spawn("worker", func(p *Proc) {
			p.Sleep(d)
			g.Done()
		})
	}
	sim.Run()
	if !almostEqual(joined, 3) {
		t.Fatalf("joined at %v, want 3", joined)
	}
}

func TestPSSingleJobTiming(t *testing.T) {
	sim := NewSim()
	cpu := NewPS(sim, "cpu", 2.0) // 2 units/sec
	var end float64
	sim.Spawn("job", func(p *Proc) {
		cpu.Use(p, 10)
		end = p.Now()
	})
	sim.Run()
	if !almostEqual(end, 5) {
		t.Fatalf("end = %v, want 5", end)
	}
	if !almostEqual(cpu.BusyTime(), 5) {
		t.Fatalf("busy = %v, want 5", cpu.BusyTime())
	}
	if !almostEqual(cpu.Served(), 10) {
		t.Fatalf("served = %v, want 10", cpu.Served())
	}
}

func TestPSFairSharing(t *testing.T) {
	// Two equal jobs sharing a unit-capacity resource each take twice as long.
	sim := NewSim()
	cpu := NewPS(sim, "cpu", 1.0)
	ends := make([]float64, 2)
	for i := 0; i < 2; i++ {
		i := i
		sim.Spawn("job", func(p *Proc) {
			cpu.Use(p, 3)
			ends[i] = p.Now()
		})
	}
	sim.Run()
	for i, e := range ends {
		if !almostEqual(e, 6) {
			t.Fatalf("ends[%d] = %v, want 6", i, e)
		}
	}
	if !almostEqual(cpu.JobSeconds(), 12) {
		t.Fatalf("jobSeconds = %v, want 12", cpu.JobSeconds())
	}
}

func TestPSUnequalJobs(t *testing.T) {
	// Job A needs 1 unit, job B needs 3. Shared until A leaves at t=2
	// (each got 1 unit), then B runs alone for its remaining 2 → ends t=4.
	sim := NewSim()
	cpu := NewPS(sim, "cpu", 1.0)
	var endA, endB float64
	sim.Spawn("A", func(p *Proc) {
		cpu.Use(p, 1)
		endA = p.Now()
	})
	sim.Spawn("B", func(p *Proc) {
		cpu.Use(p, 3)
		endB = p.Now()
	})
	sim.Run()
	if !almostEqual(endA, 2) {
		t.Fatalf("endA = %v, want 2", endA)
	}
	if !almostEqual(endB, 4) {
		t.Fatalf("endB = %v, want 4", endB)
	}
}

func TestPSLateArrival(t *testing.T) {
	// A (4 units) starts at t=0 alone; B (2 units) arrives at t=2.
	// t=0..2: A alone, serves 2, 2 left. t=2..: share 0.5 each.
	// B finishes its 2 units at t=6; A finishes its remaining 2 at t=6 too.
	sim := NewSim()
	cpu := NewPS(sim, "cpu", 1.0)
	var endA, endB float64
	sim.Spawn("A", func(p *Proc) {
		cpu.Use(p, 4)
		endA = p.Now()
	})
	sim.Spawn("B", func(p *Proc) {
		p.Sleep(2)
		cpu.Use(p, 2)
		endB = p.Now()
	})
	sim.Run()
	if !almostEqual(endA, 6) {
		t.Fatalf("endA = %v, want 6", endA)
	}
	if !almostEqual(endB, 6) {
		t.Fatalf("endB = %v, want 6", endB)
	}
}

func TestPSSpeedChange(t *testing.T) {
	// Unit job on unit resource, but at t=1 the speed halves → remaining 0.5
	// units take 1 more second. Total 2 s... wait: t=0..1 serves 1*1=1? Use 2
	// units so: t=0..1 serves 1, speed 0.5 → remaining 1 takes 2 s → end 3.
	sim := NewSim()
	cpu := NewPS(sim, "cpu", 1.0)
	var end float64
	sim.Spawn("job", func(p *Proc) {
		cpu.Use(p, 2)
		end = p.Now()
	})
	sim.After(1, func() { cpu.SetSpeed(0.5) })
	sim.Run()
	if !almostEqual(end, 3) {
		t.Fatalf("end = %v, want 3", end)
	}
}

func TestPSStallAndRecover(t *testing.T) {
	sim := NewSim()
	cpu := NewPS(sim, "cpu", 1.0)
	var end float64
	sim.Spawn("job", func(p *Proc) {
		cpu.Use(p, 2)
		end = p.Now()
	})
	sim.After(1, func() { cpu.SetSpeed(0) })
	sim.After(5, func() { cpu.SetSpeed(1) })
	sim.Run()
	// 1 unit served by t=1, stalled until t=5, remaining 1 unit → end t=6.
	if !almostEqual(end, 6) {
		t.Fatalf("end = %v, want 6", end)
	}
}

func TestPSZeroAmountReturnsImmediately(t *testing.T) {
	sim := NewSim()
	cpu := NewPS(sim, "cpu", 1.0)
	var end float64
	sim.Spawn("job", func(p *Proc) {
		cpu.Use(p, 0)
		cpu.Use(p, -5)
		end = p.Now()
	})
	sim.Run()
	if !almostEqual(end, 0) {
		t.Fatalf("end = %v, want 0", end)
	}
}

// TestPSConservation is a property test: for any set of jobs with arbitrary
// arrival offsets and sizes, total served work equals the sum of job sizes,
// and every job's completion time is at least its arrival + size/capacity.
func TestPSConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		sim := NewSim()
		cpu := NewPS(sim, "cpu", 1+rng.Float64()*4)
		type jobSpec struct{ arrive, size, end float64 }
		jobs := make([]*jobSpec, n)
		total := 0.0
		for i := range jobs {
			js := &jobSpec{arrive: rng.Float64() * 10, size: 0.1 + rng.Float64()*5}
			jobs[i] = js
			total += js.size
			sim.Spawn("j", func(p *Proc) {
				p.Sleep(js.arrive)
				cpu.Use(p, js.size)
				js.end = p.Now()
			})
		}
		sim.Run()
		if !almostEqual(cpu.Served(), total) {
			t.Logf("served %v != total %v", cpu.Served(), total)
			return false
		}
		for _, js := range jobs {
			min := js.arrive + js.size/cpu.Capacity()
			if js.end+1e-6 < min {
				t.Logf("job finished at %v before lower bound %v", js.end, min)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPSOrderPreservation: jobs of equal size arriving at distinct times must
// finish in arrival order under processor sharing.
func TestPSOrderPreservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		sim := NewSim()
		cpu := NewPS(sim, "cpu", 1)
		arrivals := make([]float64, n)
		ends := make([]float64, n)
		for i := range arrivals {
			arrivals[i] = rng.Float64() * 20
		}
		sort.Float64s(arrivals)
		for i := 0; i < n; i++ {
			i := i
			sim.Spawn("j", func(p *Proc) {
				p.Sleep(arrivals[i])
				cpu.Use(p, 2)
				ends[i] = p.Now()
			})
		}
		sim.Run()
		for i := 1; i < n; i++ {
			if ends[i]+1e-9 < ends[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestShutdownReleasesParkedProcs(t *testing.T) {
	sim := NewSim()
	cond := NewCond(sim)
	for i := 0; i < 5; i++ {
		sim.Spawn("stuck", func(p *Proc) {
			cond.Wait(p) // never signalled
			t.Error("process should never resume normally")
		})
	}
	sim.RunUntil(10)
	sim.Shutdown()
	if len(sim.procs) != 0 {
		t.Fatalf("%d procs alive after Shutdown", len(sim.procs))
	}
}

func TestNestedSpawn(t *testing.T) {
	sim := NewSim()
	var childEnd float64
	sim.Spawn("parent", func(p *Proc) {
		p.Sleep(1)
		p.Spawn("child", func(c *Proc) {
			c.Sleep(2)
			childEnd = c.Now()
		})
		p.Sleep(5)
	})
	sim.Run()
	if !almostEqual(childEnd, 3) {
		t.Fatalf("childEnd = %v, want 3", childEnd)
	}
}

func TestYieldOrdering(t *testing.T) {
	sim := NewSim()
	var order []string
	sim.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	sim.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
		p.Yield()
		order = append(order, "b2")
	})
	sim.Run()
	want := []string{"a1", "b1", "a2", "b2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
