package perf

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestRunAndCompare(t *testing.T) {
	r := NewReport()
	b := r.Run("noop", 10*time.Millisecond, func() {})
	if b.Ops <= 0 || b.NsPerOp < 0 {
		t.Fatalf("bad benchmark: %+v", b)
	}
	r.Run("sleepy", 10*time.Millisecond, func() { time.Sleep(100 * time.Microsecond) })
	if err := r.Compare("noop vs sleepy", "sleepy", "noop"); err != nil {
		t.Fatal(err)
	}
	if sp := r.Comparisons[0].Speedup; sp <= 1 {
		t.Fatalf("noop should beat sleepy, speedup = %f", sp)
	}
	if err := r.Compare("bad", "nope", "noop"); err == nil {
		t.Fatal("comparison against unknown benchmark did not error")
	}
}

func TestReportRoundTrips(t *testing.T) {
	r := NewReport()
	r.Run("noop", time.Millisecond, func() {})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Benchmarks) != 1 || got.Benchmarks[0].Name != "noop" {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

// TestSuiteSmoke runs the full standard suite with a minimal budget — the
// same code path `qabench -perf` takes — and checks every expected
// benchmark and comparison is present.
func TestSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("suite smoke test skipped in -short mode")
	}
	report, err := RunSuite(SuiteConfig{Budget: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"rpc_oneshot", "rpc_pooled",
		"retrieve_uncached", "retrieve_cached",
		"pr_ps_sequential", "pr_ps_parallel",
		"ask_sequential", "ask_parallel",
	}
	for _, name := range want {
		if _, ok := report.find(name); !ok {
			t.Fatalf("suite report missing benchmark %q", name)
		}
	}
	if len(report.Comparisons) != 4 {
		t.Fatalf("comparisons = %d, want 4", len(report.Comparisons))
	}
	for _, c := range report.Comparisons {
		if c.Speedup <= 0 {
			t.Fatalf("comparison %q has non-positive speedup", c.Name)
		}
	}
}
