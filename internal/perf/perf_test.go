package perf

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRunAndCompare(t *testing.T) {
	r := NewReport()
	b := r.Run("noop", 10*time.Millisecond, func() {})
	if b.Ops <= 0 || b.NsPerOp < 0 {
		t.Fatalf("bad benchmark: %+v", b)
	}
	r.Run("sleepy", 10*time.Millisecond, func() { time.Sleep(100 * time.Microsecond) })
	if err := r.Compare("noop vs sleepy", "sleepy", "noop"); err != nil {
		t.Fatal(err)
	}
	if sp := r.Comparisons[0].Speedup; sp <= 1 {
		t.Fatalf("noop should beat sleepy, speedup = %f", sp)
	}
	if err := r.Compare("bad", "nope", "noop"); err == nil {
		t.Fatal("comparison against unknown benchmark did not error")
	}
}

func TestReportRoundTrips(t *testing.T) {
	r := NewReport()
	r.Run("noop", time.Millisecond, func() {})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Benchmarks) != 1 || got.Benchmarks[0].Name != "noop" {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

// TestSuiteSmoke runs the full standard suite with a minimal budget — the
// same code path `qabench -perf` takes — and checks every expected
// benchmark and comparison is present.
func TestSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("suite smoke test skipped in -short mode")
	}
	report, err := RunSuite(SuiteConfig{Budget: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"rpc_oneshot", "rpc_pooled",
		"retrieve_uncached", "retrieve_cached",
		"retrieve_plain", "retrieve_compressed",
		"pr_ps_sequential", "pr_ps_parallel",
		"ask_sequential", "ask_parallel",
		"codec_gob_roundtrip", "codec_wire_roundtrip",
		"pool_rpc_16", "mux_rpc_16",
		"ask_cold", "ask_cached",
		"ask_full_replica", "ask_sharded",
		"ask_sharded_scatter", "ask_sharded_selective",
		"gate_ask",
	}
	for _, name := range want {
		if _, ok := report.find(name); !ok {
			t.Fatalf("suite report missing benchmark %q", name)
		}
	}
	if len(report.Comparisons) != 12 {
		t.Fatalf("comparisons = %d, want 12", len(report.Comparisons))
	}
	// The compressed-core footprint rows are deterministic byte counts, so
	// their ≥2x floor is meaningful even on a 20ms smoke budget.
	if v := CheckSizes(report); len(v) != 0 {
		t.Fatalf("size gate violations on smoke run: %v", v)
	}
	// The open-loop gateway rows must be present and structurally sound; the
	// regimes are derived from the run's own calibrated capacity, so the
	// CheckLoad gate is meaningful even on a smoke budget.
	if len(report.Load) != 2 {
		t.Fatalf("load rows = %d, want 2 (sub + over)", len(report.Load))
	}
	if v := CheckLoad(report); len(v) != 0 {
		t.Fatalf("load gate violations on smoke run: %v", v)
	}
	for _, c := range report.Comparisons {
		if c.Speedup <= 0 {
			t.Fatalf("comparison %q has non-positive speedup", c.Name)
		}
	}
	// The floor gate must at least find every comparison it watches; the
	// ratios themselves are only meaningful on real budgets, not a 20ms
	// smoke, so ratio violations are tolerated here.
	for _, v := range CheckFloors(report) {
		if strings.Contains(v, "missing") {
			t.Fatalf("floor gate cannot find its comparison: %s", v)
		}
	}
}

// TestCheckRegression exercises the baseline gate on synthetic reports.
func TestCheckRegression(t *testing.T) {
	base := NewReport()
	base.Benchmarks = []Benchmark{{Name: "x", NsPerOp: 100}, {Name: "gone", NsPerOp: 50}}
	cur := NewReport()
	cur.Benchmarks = []Benchmark{{Name: "x", NsPerOp: 130}, {Name: "new", NsPerOp: 10}}

	if v := CheckRegression(base, cur, 0.40); len(v) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", v)
	}
	v := CheckRegression(base, cur, 0.20)
	if len(v) != 1 {
		t.Fatalf("violations = %v, want exactly the x regression", v)
	}
}

// TestCheckComparisonRegression exercises the cross-machine ratio gate.
func TestCheckComparisonRegression(t *testing.T) {
	base := NewReport()
	base.Comparisons = []Comparison{
		{Name: "codec: wire vs gob", Speedup: 4.0, AllocRatio: 8.0},
		{Name: "rpc16: mux vs pool", Speedup: 16.0, AllocRatio: 25.0},
	}
	cur := NewReport()
	cur.GOMAXPROCS = 8
	cur.Comparisons = []Comparison{
		{Name: "codec: wire vs gob", Speedup: 3.5, AllocRatio: 8.0},   // kept 88%
		{Name: "rpc16: mux vs pool", Speedup: 15.0, AllocRatio: 24.0}, // kept 94%/96%
	}
	if v := CheckComparisonRegression(base, cur, 0.20); len(v) != 0 {
		t.Fatalf("within-tolerance ratios flagged: %v", v)
	}
	cur.Comparisons[0].Speedup = 2.0 // kept 50% of 4.0x
	if v := CheckComparisonRegression(base, cur, 0.20); len(v) != 1 {
		t.Fatalf("violations = %v, want exactly the codec speedup", v)
	}
	cur.Comparisons[0].Speedup = 3.5
	cur.Comparisons[1].AllocRatio = 10 // kept 40% of 25x
	if v := CheckComparisonRegression(base, cur, 0.20); len(v) != 1 {
		t.Fatalf("violations = %v, want exactly the mux alloc ratio", v)
	}

	// A vanished comparison must trip the gate.
	cur.Comparisons = cur.Comparisons[:1]
	cur.Comparisons[0].AllocRatio = 8
	if v := CheckComparisonRegression(base, cur, 0.20); len(v) != 1 {
		t.Fatalf("violations = %v, want exactly the missing comparison", v)
	}

	// Parallel-engine comparisons are skipped on single-proc runners.
	base.Comparisons = []Comparison{{Name: "ask: parallel vs sequential", Speedup: 1.0}}
	uni := NewReport()
	uni.GOMAXPROCS = 1
	uni.Comparisons = []Comparison{{Name: "ask: parallel vs sequential", Speedup: 0.5}}
	if v := CheckComparisonRegression(base, uni, 0.20); len(v) != 0 {
		t.Fatalf("parallel comparison gated on a single-proc report: %v", v)
	}

	// A serial-fanout comparison's committed speedup transfers only between
	// runs in the same latency regime (equal GOMAXPROCS); the alloc ratio —
	// deterministic work — transfers regardless.
	base = NewReport()
	base.GOMAXPROCS = 1
	base.Comparisons = []Comparison{{Name: "ask: selective vs scatter (K=4)", Speedup: 2.0, AllocRatio: 1.3}}
	multi := NewReport()
	multi.GOMAXPROCS = 8
	multi.Comparisons = []Comparison{{Name: "ask: selective vs scatter (K=4)", Speedup: 1.05, AllocRatio: 1.3}}
	if v := CheckComparisonRegression(base, multi, 0.20); len(v) != 0 {
		t.Fatalf("serial-fanout speedup gated across regimes: %v", v)
	}
	multi.Comparisons[0].AllocRatio = 0.9 // kept 69% of 1.3x
	if v := CheckComparisonRegression(base, multi, 0.20); len(v) != 1 {
		t.Fatalf("violations = %v, want exactly the alloc ratio", v)
	}
	sameRegime := NewReport()
	sameRegime.GOMAXPROCS = 1
	sameRegime.Comparisons = []Comparison{{Name: "ask: selective vs scatter (K=4)", Speedup: 1.0, AllocRatio: 1.3}}
	if v := CheckComparisonRegression(base, sameRegime, 0.20); len(v) != 1 {
		t.Fatalf("violations = %v, want exactly the same-regime speedup", v)
	}
}

// TestCheckFloors exercises the CI floor gate on synthetic comparisons.
func TestCheckFloors(t *testing.T) {
	r := NewReport()
	r.GOMAXPROCS = 8 // all floors apply, including the parallel-engine ones
	if v := CheckFloors(r); len(v) != len(floors) {
		t.Fatalf("empty report yielded %d violations, want %d (all comparisons missing)", len(v), len(floors))
	}
	for _, f := range floors {
		r.Comparisons = append(r.Comparisons, Comparison{Name: f.comparison, Speedup: 100, AllocRatio: 100})
	}
	if v := CheckFloors(r); len(v) != 0 {
		t.Fatalf("generous report flagged: %v", v)
	}
	r.Comparisons[0].AllocRatio = 1 // codec floor demands ≥ 5x
	if v := CheckFloors(r); len(v) != 1 {
		t.Fatalf("alloc-floor violation not caught: %v", v)
	}
	r.Comparisons[0].AllocRatio = 100

	// On a multi-proc runner a serial-fanout floor's time bound is regime-
	// gated (overlapping legs hide the wire cost), but its alloc bound — the
	// work actually saved — still applies.
	for i, f := range floors {
		if !f.serialFanout {
			continue
		}
		r.Comparisons[i].Speedup = 1.0 // below the 1.3x time floor: tolerated at GOMAXPROCS=8
		if v := CheckFloors(r); len(v) != 0 {
			t.Fatalf("serial-fanout time floor applied on a multi-proc report: %v", v)
		}
		r.Comparisons[i].AllocRatio = 1.0 // below the alloc floor: caught anywhere
		if v := CheckFloors(r); len(v) != 1 {
			t.Fatalf("serial-fanout alloc floor not caught on a multi-proc report: %v", v)
		}
		r.Comparisons[i].Speedup = 100
		r.Comparisons[i].AllocRatio = 100
	}

	// On a single-proc runner the clamped parallel engine runs the identical
	// sequential path, so the parallel floors are vacuous and must be
	// skipped — a noisy 0.8x there is not a regression.
	uni := NewReport()
	uni.GOMAXPROCS = 1
	for _, f := range floors {
		sp := 100.0
		if f.needsParallelism {
			sp = 0.5 // would violate if the floor were applied
		}
		uni.Comparisons = append(uni.Comparisons, Comparison{Name: f.comparison, Speedup: sp, AllocRatio: 100})
	}
	if v := CheckFloors(uni); len(v) != 0 {
		t.Fatalf("parallel floors applied on a single-proc report: %v", v)
	}
}

// TestCheckSizes is the footprint-gate contract: a below-floor compression
// ratio must trip it, a missing or degenerate row must trip it, and a report
// meeting the floor must pass.
func TestCheckSizes(t *testing.T) {
	r := NewReport()
	if v := CheckSizes(r); len(v) != 1 {
		t.Fatalf("empty report yielded %v, want exactly the missing-rows violation", v)
	}
	r.AddSize("index_bytes_plain", 100000)
	r.AddSize("index_bytes_compressed", 40000)
	if v := CheckSizes(r); len(v) != 0 {
		t.Fatalf("2.5x compression flagged: %v", v)
	}
	r.Sizes[1].Bytes = 60000 // 1.67x, below the 2x floor
	if v := CheckSizes(r); len(v) != 1 {
		t.Fatalf("below-floor ratio not caught: %v", v)
	}
	r.Sizes[1].Bytes = 0
	if v := CheckSizes(r); len(v) != 1 {
		t.Fatalf("degenerate zero-byte row not caught: %v", v)
	}
}

// TestLatencySampling checks the per-op quantile pass: a benchmark with a
// known per-op delay must report sane sample counts and quantiles near the
// delay.
func TestLatencySampling(t *testing.T) {
	r := NewReport()
	b := r.Run("sleepy", 20*time.Millisecond, func() { time.Sleep(time.Millisecond) })
	if b.LatencySamples == 0 {
		t.Fatal("no latency samples collected")
	}
	if b.P50Ms < 0.5 || b.P50Ms > 50 {
		t.Errorf("p50 = %.3fms, want around 1ms", b.P50Ms)
	}
	if b.P99Ms < b.P50Ms {
		t.Errorf("p99 %.3fms below p50 %.3fms", b.P99Ms, b.P50Ms)
	}
}

// TestCheckSLOs is the gate contract: an injected delay above the objective
// must trip it, staying under must pass, and a missing or unsampled
// benchmark must trip rather than silently disable the gate.
func TestCheckSLOs(t *testing.T) {
	r := NewReport()
	r.Run("fast", 10*time.Millisecond, func() {})
	// The injected regression: every op sleeps well past the 1ms objective.
	r.Run("regressed", 20*time.Millisecond, func() { time.Sleep(5 * time.Millisecond) })

	if v := CheckSLOs(r, []SLORow{{Benchmark: "fast", MaxP99: 100 * time.Millisecond}}); len(v) != 0 {
		t.Fatalf("healthy benchmark flagged: %v", v)
	}
	if v := CheckSLOs(r, []SLORow{{Benchmark: "regressed", MaxP99: time.Millisecond}}); len(v) != 1 {
		t.Fatalf("injected delay not caught: %v", v)
	}
	if v := CheckSLOs(r, []SLORow{{Benchmark: "missing", MaxP99: time.Second}}); len(v) != 1 {
		t.Fatalf("missing benchmark not flagged: %v", v)
	}
	unsampled := NewReport()
	unsampled.Benchmarks = append(unsampled.Benchmarks, Benchmark{Name: "nosamples"})
	if v := CheckSLOs(unsampled, []SLORow{{Benchmark: "nosamples", MaxP99: time.Second}}); len(v) != 1 {
		t.Fatalf("sample-less benchmark not flagged: %v", v)
	}
}
