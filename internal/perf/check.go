package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// ReadReport loads a previously written JSON report (a committed baseline).
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perf: read baseline: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: parse baseline %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("perf: baseline %s has schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// CheckRegression compares current against a baseline report from the same
// machine: every benchmark present in both must not be slower than
// baseline·(1+tolerance). It returns one message per violation (empty =
// pass). Benchmarks that exist on only one side are ignored, so the gate
// survives suite growth.
func CheckRegression(baseline, current *Report, tolerance float64) []string {
	var violations []string
	for _, base := range baseline.Benchmarks {
		cur, ok := current.find(base.Name)
		if !ok || base.NsPerOp <= 0 {
			continue
		}
		limit := base.NsPerOp * (1 + tolerance)
		if cur.NsPerOp > limit {
			violations = append(violations, fmt.Sprintf(
				"%s: %.0f ns/op vs baseline %.0f ns/op (%.0f%% over the %.0f%% budget)",
				base.Name, cur.NsPerOp, base.NsPerOp,
				(cur.NsPerOp/base.NsPerOp-1)*100, tolerance*100))
		}
	}
	return violations
}

// SameEnv reports whether two reports come from comparable environments —
// the precondition for ns/op comparisons to mean anything. Ratio-based
// checks (CheckComparisonRegression, CheckFloors) do not need it.
func SameEnv(a, b *Report) bool {
	return a.GoVersion == b.GoVersion && a.GOOS == b.GOOS &&
		a.GOARCH == b.GOARCH && a.GOMAXPROCS == b.GOMAXPROCS
}

// CheckComparisonRegression gates the current report's baseline/candidate
// comparisons against a committed baseline report: every comparison present
// in the baseline must keep at least (1-tolerance) of its speedup and of
// its allocation ratio. Unlike raw ns/op, these ratios are measured within
// one run, so the gate holds across machines. A comparison missing from the
// current report is a violation (a renamed benchmark cannot silently
// disable the gate); parallel-engine comparisons are skipped on single-proc
// runners for the same reason CheckFloors skips them, and a serial-fanout
// comparison's speedup (not its alloc ratio) is skipped when the current
// run's GOMAXPROCS differs from the baseline's — the latency regime changed,
// so the committed figure does not transfer.
func CheckComparisonRegression(baseline, current *Report, tolerance float64) []string {
	parallelOnly := make(map[string]bool, len(floors))
	serialOnly := make(map[string]bool, len(floors))
	for _, f := range floors {
		if f.needsParallelism {
			parallelOnly[f.comparison] = true
		}
		if f.serialFanout {
			serialOnly[f.comparison] = true
		}
	}
	var violations []string
	for _, base := range baseline.Comparisons {
		if parallelOnly[base.Name] && current.GOMAXPROCS <= 1 {
			continue
		}
		var cur *Comparison
		for i := range current.Comparisons {
			if current.Comparisons[i].Name == base.Name {
				cur = &current.Comparisons[i]
				break
			}
		}
		if cur == nil {
			violations = append(violations, fmt.Sprintf("comparison %q missing from current report", base.Name))
			continue
		}
		speedupTransfers := !serialOnly[base.Name] || current.GOMAXPROCS == baseline.GOMAXPROCS
		if limit := base.Speedup * (1 - tolerance); speedupTransfers && base.Speedup > 0 && cur.Speedup < limit {
			violations = append(violations, fmt.Sprintf(
				"%s: speedup %.2fx vs committed %.2fx (kept %.0f%%, need ≥ %.0f%%)",
				base.Name, cur.Speedup, base.Speedup,
				cur.Speedup/base.Speedup*100, (1-tolerance)*100))
		}
		if limit := base.AllocRatio * (1 - tolerance); base.AllocRatio > 0 && cur.AllocRatio < limit {
			violations = append(violations, fmt.Sprintf(
				"%s: alloc ratio %.1fx vs committed %.1fx (kept %.0f%%, need ≥ %.0f%%)",
				base.Name, cur.AllocRatio, base.AllocRatio,
				cur.AllocRatio/base.AllocRatio*100, (1-tolerance)*100))
		}
	}
	return violations
}

// Floors are the machine-independent acceptance invariants of the serving
// path, checked in CI against a freshly generated report. They are ratios
// between benchmarks measured in the same run, so they hold across hardware;
// each floor is set conservatively below the figures in the committed
// BENCH_pr8.json to absorb CI noise.
var floors = []struct {
	comparison string
	minSpeedup float64 // 0 = not checked
	minAllocs  float64 // 0 = not checked
	// needsParallelism marks floors that only measure anything real when
	// GOMAXPROCS > 1: with the adaptive fan-out clamp, a single-proc run
	// executes the identical sequential code path on both sides, so the
	// ratio is pure scheduler/GC noise. Such floors are skipped (never
	// "missing") on single-proc runners.
	needsParallelism bool
	// serialFanout is needsParallelism's mirror image: the time ratio is
	// only meaningful at GOMAXPROCS = 1, where every fan-out leg's wire
	// cost serializes onto the critical path. On a multi-proc runner the
	// legs overlap and the mux writer batches their frames, so the latency
	// gap collapses toward the (tiny-corpus) per-shard compute difference —
	// a property of the machine, not the router. For such floors only
	// minSpeedup is regime-gated; minAllocs is deterministic work and is
	// enforced everywhere.
	serialFanout bool
}{
	// The binary codec's reason to exist: an RPC exchange must allocate at
	// least 5x less than pooled gob.
	{comparison: "codec: wire vs gob", minSpeedup: 1.0, minAllocs: 5},
	// One multiplexed connection must keep up with the 4-conn gob pool under
	// 16-way concurrency (committed figure is ≥ 1.0; CI floor absorbs noise).
	{comparison: "rpc16: mux vs pool", minSpeedup: 0.75},
	// An answer-cache hit skips the entire pipeline (committed ≥ 10x).
	{comparison: "ask: cached vs cold", minSpeedup: 5},
	// The adaptive fan-out clamp: the parallel engine must never lose to the
	// sequential one again (the PR-2 regression was 0.95x — caused by fanning
	// out wider than GOMAXPROCS; floors sit below 1.0 only to absorb
	// measurement noise).
	{comparison: "pr+ps: parallel vs sequential", minSpeedup: 0.9, needsParallelism: true},
	{comparison: "ask: parallel vs sequential", minSpeedup: 0.9, needsParallelism: true},
	// Sharding's overhead bound: a K=2/R=1 scatter-gather ask pays one RPC
	// fan-out per question and must stay within 4x of a full-replica ask
	// (committed figure ~0.5x — the wire cost of halving per-node index
	// memory; the floor catches a scatter path that degrades to serial
	// per-shard round-trips or timeout-driven failover).
	{comparison: "ask: sharded vs full replica", minSpeedup: 0.25},
	// Selective routing isolated (PR-7): the same shard-local workload, the
	// same client, the same four engines — only the router differs. The
	// skipped fan-outs are ~60 fewer allocations per ask (measured ~1.3x;
	// gated everywhere), and in the serial regime their wire cost comes off
	// the critical path (measured 1.2–1.6x run to run; the floor absorbs
	// machine drift — with the
	// span-stripped mux wire the whole tax is only ~3×20µs against ~160µs of
	// pipeline compute, so the honest time ratio is modest by construction).
	{comparison: "ask: selective vs scatter (K=4)", minSpeedup: 1.1, minAllocs: 1.2, serialFanout: true},
	// The PR-7 acceptance bound: a selectively routed K=4 ask must beat the
	// PR-5 sharded serving stack by ≥ 1.3x (committed figure ~1.6x). Both
	// sides pay at most one non-overlappable fan-out leg on their critical
	// path, so unlike the twin comparison above this ratio survives
	// multi-proc runners.
	{comparison: "ask: selective vs sharded", minSpeedup: 1.3, minAllocs: 1.3},
	// The compressed postings core's speed bound (PR-10): block-at-a-time
	// varint decode plus skip-seek intersection against the plain sorted-slice
	// core, over the same keyword workload on the same multi-block corpus.
	// The committed figure is ~1x (skip pruning pays back the decode cost);
	// the 0.8x floor is the acceptance bound — the space win below must not
	// cost more than 20% of retrieval throughput.
	{comparison: "retrieve: compressed vs plain", minSpeedup: 0.8},
	// The front door's overhead bound (PR-8): a cache-hit ask through the
	// full HTTP gateway — JSON decode, token bucket, admission, mux hop —
	// must stay within 50x of the same cache hit over direct pooled RPC
	// (committed figure ~0.1–0.3x; the floor catches an edge stack that
	// serializes, double-dials, or leaks multi-ms sleeps into the hot path).
	{comparison: "ask: gateway vs direct (cached)", minSpeedup: 0.02},
}

// SLORow is one latency objective over a benchmark's sampled per-op p99 —
// the perf-suite twin of the live cluster's obs.Objective, gated by
// `qabench -perf-check` the same way alloc budgets are.
type SLORow struct {
	// Benchmark names the measured operation the objective bounds.
	Benchmark string
	// MaxP99 is the per-op p99 latency bound.
	MaxP99 time.Duration
}

// DefaultSLOs returns the stock perf-suite objectives. Bounds are generous —
// an order of magnitude above healthy figures — so they trip on real serving-
// path regressions (an accidental sleep, a lost cache, serial fan-out), not
// on machine speed.
func DefaultSLOs() []SLORow {
	return []SLORow{
		{Benchmark: "ask_cached", MaxP99: 250 * time.Millisecond},
		{Benchmark: "rpc_pooled", MaxP99: 250 * time.Millisecond},
		{Benchmark: "codec_wire_roundtrip", MaxP99: 50 * time.Millisecond},
		// The edge twin of ask_cached: the same cache hit through the whole
		// HTTP gateway stack. Generous for the same reason the others are —
		// it trips on a lost cache or an accidental sleep, not machine speed.
		{Benchmark: "gate_ask", MaxP99: 500 * time.Millisecond},
	}
}

// CheckSLOs validates the report's sampled p99 latencies against the given
// objectives. A referenced benchmark that is missing or collected no latency
// samples is itself a violation, so a renamed benchmark or a broken sampling
// pass cannot silently disable the gate.
func CheckSLOs(r *Report, rows []SLORow) []string {
	var violations []string
	for _, row := range rows {
		b, ok := r.find(row.Benchmark)
		if !ok {
			violations = append(violations, fmt.Sprintf("slo: benchmark %q missing from report", row.Benchmark))
			continue
		}
		if b.LatencySamples == 0 {
			violations = append(violations, fmt.Sprintf("slo: benchmark %q has no latency samples", row.Benchmark))
			continue
		}
		maxMs := float64(row.MaxP99.Microseconds()) / 1000
		if b.P99Ms > maxMs {
			violations = append(violations, fmt.Sprintf(
				"slo: %s p99 %.2fms exceeds objective %.2fms (%d samples)",
				row.Benchmark, b.P99Ms, maxMs, b.LatencySamples))
		}
	}
	return violations
}

// CheckLoad validates the report's open-loop gateway load rows (PR-8). The
// assertions are structural, not wall-clock: regimes were chosen relative to
// the run's own measured capacity, so they hold on any machine. An "over"
// row must actually shed (admission control engaged), keep the queue within
// its configured bound (bounded, not unbounded, buffering), and keep the
// admitted p99 under the bound computed from the measured service time —
// the load-shedding contract: saturation degrades throughput, never the
// latency of what is admitted. A "sub" row must shed ~nothing and achieve
// real throughput. A report with no load rows is itself a violation, so the
// harness cannot be silently unplugged.
func CheckLoad(r *Report) []string {
	if len(r.Load) == 0 {
		return []string{"load: no gateway load rows in report"}
	}
	var violations []string
	for _, l := range r.Load {
		if l.OK == 0 || l.AchievedQPS <= 0 {
			violations = append(violations, fmt.Sprintf(
				"load %s: achieved nothing (%d ok of %d sent)", l.Name, l.OK, l.Sent))
			continue
		}
		switch l.Regime {
		case "sub":
			if l.ShedRate > 0.01 {
				violations = append(violations, fmt.Sprintf(
					"load %s: sub-threshold run shed %.1f%% (want ~0%%)", l.Name, l.ShedRate*100))
			}
		case "over":
			if l.Shed == 0 {
				violations = append(violations, fmt.Sprintf(
					"load %s: over-threshold run shed nothing — admission control never engaged", l.Name))
			}
			if l.QueuePeak > l.QueueBound {
				violations = append(violations, fmt.Sprintf(
					"load %s: queue peak %d exceeded its bound %d", l.Name, l.QueuePeak, l.QueueBound))
			}
			if l.P99BoundMs > 0 && l.P99Ms > l.P99BoundMs {
				violations = append(violations, fmt.Sprintf(
					"load %s: admitted p99 %.2fms exceeds computed bound %.2fms (service %.2fms)",
					l.Name, l.P99Ms, l.P99BoundMs, l.ServiceMs))
			}
		default:
			violations = append(violations, fmt.Sprintf("load %s: unknown regime %q", l.Name, l.Regime))
		}
	}
	return violations
}

// sizeFloors are the deterministic footprint invariants (PR-10): each pair's
// baseline row must be at least minRatio times larger than its candidate.
// Byte counts are exact — no machine noise, no tolerance needed — so the
// ratio is the acceptance figure itself: the compressed postings core must
// hold the same postings in at most half the bytes of the plain core.
var sizeFloors = []struct {
	baseline  string
	candidate string
	minRatio  float64
}{
	{baseline: "index_bytes_plain", candidate: "index_bytes_compressed", minRatio: 2.0},
}

// CheckSizes validates the report's footprint rows against the size floors.
// A missing row is itself a violation, so a renamed measurement cannot
// silently disable the gate.
func CheckSizes(r *Report) []string {
	var violations []string
	for _, f := range sizeFloors {
		b, okB := r.findSize(f.baseline)
		c, okC := r.findSize(f.candidate)
		if !okB || !okC {
			violations = append(violations, fmt.Sprintf(
				"size rows %q/%q missing from report (have %d rows)", f.baseline, f.candidate, len(r.Sizes)))
			continue
		}
		if c.Bytes <= 0 {
			violations = append(violations, fmt.Sprintf("size %s: measured %d bytes", f.candidate, c.Bytes))
			continue
		}
		if ratio := float64(b.Bytes) / float64(c.Bytes); ratio < f.minRatio {
			violations = append(violations, fmt.Sprintf(
				"%s/%s: compression ratio %.2fx below floor %.1fx (%d vs %d bytes)",
				f.baseline, f.candidate, ratio, f.minRatio, b.Bytes, c.Bytes))
		}
	}
	return violations
}

// CheckFloors validates the report's comparisons against the serving-path
// floors. It returns one message per violation (empty = pass); a missing
// comparison is itself a violation so a renamed benchmark cannot silently
// disable the gate.
func CheckFloors(r *Report) []string {
	var violations []string
	for _, f := range floors {
		if f.needsParallelism && r.GOMAXPROCS <= 1 {
			// Both sides ran the identical clamped code path; the ratio is
			// noise, and 'parallel must not lose' is vacuously true.
			continue
		}
		var c *Comparison
		for i := range r.Comparisons {
			if r.Comparisons[i].Name == f.comparison {
				c = &r.Comparisons[i]
				break
			}
		}
		if c == nil {
			violations = append(violations, fmt.Sprintf("comparison %q missing from report", f.comparison))
			continue
		}
		checkSpeedup := f.minSpeedup > 0
		if f.serialFanout && r.GOMAXPROCS > 1 {
			// Overlapping fan-out legs hide the wire cost the time floor
			// measures; the alloc floor below still gates the work saved.
			checkSpeedup = false
		}
		if checkSpeedup && c.Speedup < f.minSpeedup {
			violations = append(violations, fmt.Sprintf(
				"%s: speedup %.2fx below floor %.2fx", f.comparison, c.Speedup, f.minSpeedup))
		}
		if f.minAllocs > 0 && c.AllocRatio < f.minAllocs {
			violations = append(violations, fmt.Sprintf(
				"%s: alloc ratio %.1fx below floor %.1fx", f.comparison, c.AllocRatio, f.minAllocs))
		}
	}
	return violations
}
