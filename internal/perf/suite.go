// The standard suite: the four baseline/candidate pairs proving out this
// PR's hot-path optimisations, runnable from qabench -perf.
package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"distqa/internal/corpus"
	"distqa/internal/gate"
	"distqa/internal/index"
	"distqa/internal/live"
	"distqa/internal/nlp"
	"distqa/internal/qa"
	"distqa/internal/shard"
	"distqa/internal/wire"
)

// SuiteConfig tunes the standard suite.
type SuiteConfig struct {
	// Corpus is the collection configuration benchmarked against
	// (default corpus.Tiny(); use corpus.TREC8Like() for paper scale).
	Corpus corpus.Config
	// Budget is the wall-clock measuring time per benchmark (default 1s).
	Budget time.Duration
	// Workers is the parallel engine's fan-out (default 8).
	Workers int
	// Log, when non-nil, receives progress lines as the suite runs.
	Log io.Writer
}

func (c *SuiteConfig) defaults() {
	if c.Corpus.SubCollections == 0 {
		c.Corpus = corpus.Tiny()
	}
	if c.Budget <= 0 {
		c.Budget = time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
}

func (c *SuiteConfig) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format, args...)
	}
}

// RunSuite executes the standard benchmark suite and returns its report:
//
//	rpc_oneshot / rpc_pooled            — connection-per-request vs pooled gob RPC
//	retrieve_uncached / retrieve_cached — Boolean retrieval without/with relaxation memo
//	retrieve_plain / retrieve_compressed — multi-block Boolean retrieval, plain sorted-slice vs compressed skip-indexed core (plus index_bytes_plain/index_bytes_compressed size rows)
//	pr_ps_sequential / pr_ps_parallel   — retrieval+scoring stages, 1 vs N workers
//	ask_sequential / ask_parallel       — full pipeline, 1 vs N workers
//	codec_gob_roundtrip / codec_wire_roundtrip — RPC message encode+decode, gob vs binary wire codec
//	pool_rpc_16 / mux_rpc_16            — 16 concurrent PR sub-tasks, pooled gob vs multiplexed binary conn
//	ask_cold / ask_cached               — paper-scale question over pooled loopback RPC, cache-disabled vs answer-cache hit
//	ask_full_replica / ask_sharded      — full pipeline over pooled RPC, full index vs K=2 scatter-gather
//	ask_sharded_scatter / ask_sharded_selective — K=4 scatter-gather on a shard-local workload, full fan-out vs summary-routed skips
func RunSuite(cfg SuiteConfig) (*Report, error) {
	cfg.defaults()
	r := NewReport()

	cfg.logf("building collection %q and indexes...\n", cfg.Corpus.Name)
	coll := corpus.Generate(cfg.Corpus)
	set := index.BuildAll(coll)
	seq := qa.NewEngine(coll, set)
	par := *seq
	par.Workers = cfg.Workers

	questions := make([]string, 0, 8)
	analyses := make([]nlp.QuestionAnalysis, 0, 8)
	for i := 0; i < 8 && i < len(coll.Facts); i++ {
		questions = append(questions, coll.Facts[i].Question)
		analyses = append(analyses, nlp.AnalyzeQuestion(coll.Facts[i].Question))
	}
	if len(questions) == 0 {
		return nil, fmt.Errorf("perf: collection %q has no fact questions", coll.Name)
	}

	// --- RPC: one-shot vs pooled, against a real node on loopback.
	cfg.logf("starting loopback node for RPC benchmarks...\n")
	node, err := live.StartNode(live.NodeConfig{
		Addr:           "127.0.0.1:0",
		Engine:         seq,
		HeartbeatEvery: time.Hour, // keep the wire quiet while measuring
		RequestTimeout: 10 * time.Second,
	})
	if err != nil {
		return nil, fmt.Errorf("perf: start node: %w", err)
	}
	defer node.Close()

	cfg.logf("bench rpc_oneshot...\n")
	r.Run("rpc_oneshot", cfg.Budget, func() {
		if _, err := live.QueryStatus(node.Addr(), 5*time.Second); err != nil {
			panic(fmt.Sprintf("rpc_oneshot: %v", err))
		}
	})
	pool := live.NewPool(live.PoolConfig{})
	defer pool.Close()
	cfg.logf("bench rpc_pooled...\n")
	r.Run("rpc_pooled", cfg.Budget, func() {
		if _, err := pool.QueryStatus(node.Addr(), 5*time.Second); err != nil {
			panic(fmt.Sprintf("rpc_pooled: %v", err))
		}
	})

	// --- Boolean retrieval: relaxation memo off vs on. A dedicated index
	// pair keeps cache state out of the engine benchmarks below.
	uncachedIx := index.Build(coll, 0)
	uncachedIx.SetRelaxCacheCap(0)
	cachedIx := index.Build(coll, 0)
	for _, a := range analyses {
		cachedIx.RetrieveParagraphs(a.Keywords) // warm the memo
	}
	i := 0
	cfg.logf("bench retrieve_uncached...\n")
	r.Run("retrieve_uncached", cfg.Budget, func() {
		uncachedIx.RetrieveParagraphs(analyses[i%len(analyses)].Keywords)
		i++
	})
	i = 0
	cfg.logf("bench retrieve_cached...\n")
	r.Run("retrieve_cached", cfg.Budget, func() {
		cachedIx.RetrieveParagraphs(analyses[i%len(analyses)].Keywords)
		i++
	})

	// --- Compressed postings core (PR-10): the plain sorted-slice core vs
	// the block-compressed, skip-indexed core, over a collection deep enough
	// that frequent stems span many 128-doc posting blocks (the suite corpus
	// tops out at one block per list, where the two cores share almost every
	// code path). Each query pairs one high-df stem — a multi-block list the
	// intersection skip-seeks across — with two mid-df stems, the shape
	// question analysis produces. Both relaxation memos are off so every op
	// prices the decode + intersection, not a cache hit. The same two indexes
	// also report their exact postings footprints as deterministic size rows;
	// CheckSizes gates the ≥2x compression floor on that pair.
	cfg.logf("building multi-block collection for the compressed-core benchmarks...\n")
	deepCfg := cfg.Corpus
	deepCfg.Name = cfg.Corpus.Name + "-deep"
	if deepCfg.DocsPerSub < 300 {
		deepCfg.DocsPerSub = 300
	}
	deepColl := corpus.Generate(deepCfg)
	plainIx := index.BuildWith(deepColl, 0, index.IndexOptions{Compressed: false})
	compIx := index.BuildWith(deepColl, 0, index.IndexOptions{Compressed: true})
	plainIx.SetRelaxCacheCap(0)
	compIx.SetRelaxCacheCap(0)
	type dfTerm struct {
		stem string
		df   int
	}
	var terms []dfTerm
	plainIx.EachTerm(func(stem string, df int) { terms = append(terms, dfTerm{stem, df}) })
	sort.Slice(terms, func(a, b int) bool {
		if terms[a].df != terms[b].df {
			return terms[a].df > terms[b].df
		}
		return terms[a].stem < terms[b].stem
	})
	mid := len(terms) / 3
	if len(terms) < mid+16 || terms[0].df <= wire.PostingBlockSize {
		return nil, fmt.Errorf("perf: collection %q too shallow for a multi-block retrieval measurement (top df %d, %d stems)",
			deepColl.Name, terms[0].df, len(terms))
	}
	kwSets := make([][]string, 8)
	for q := range kwSets {
		kwSets[q] = []string{terms[q%4].stem, terms[mid+2*q].stem, terms[mid+2*q+1].stem}
	}
	i = 0
	cfg.logf("bench retrieve_plain...\n")
	r.Run("retrieve_plain", cfg.Budget, func() {
		plainIx.RetrieveParagraphs(kwSets[i%len(kwSets)])
		i++
	})
	i = 0
	cfg.logf("bench retrieve_compressed...\n")
	r.Run("retrieve_compressed", cfg.Budget, func() {
		compIx.RetrieveParagraphs(kwSets[i%len(kwSets)])
		i++
	})
	r.AddSize("index_bytes_plain", plainIx.IndexBytes())
	r.AddSize("index_bytes_compressed", compIx.IndexBytes())

	// --- PR+PS stages and full pipeline: sequential vs parallel engine.
	stage := func(e *qa.Engine) func() {
		j := 0
		return func() {
			a := analyses[j%len(analyses)]
			rs, _ := e.RetrieveAll(a)
			e.ScoreParagraphs(a, rs)
			j++
		}
	}
	cfg.logf("bench pr_ps_sequential...\n")
	r.Run("pr_ps_sequential", cfg.Budget, stage(seq))
	cfg.logf("bench pr_ps_parallel...\n")
	r.Run("pr_ps_parallel", cfg.Budget, stage(&par))

	ask := func(e *qa.Engine) func() {
		j := 0
		return func() {
			e.AnswerSequential(questions[j%len(questions)])
			j++
		}
	}
	cfg.logf("bench ask_sequential...\n")
	r.Run("ask_sequential", cfg.Budget, ask(seq))
	cfg.logf("bench ask_parallel...\n")
	r.Run("ask_parallel", cfg.Budget, ask(&par))

	// --- Codec: one RPC exchange (ask request + answers response) encoded
	// and decoded in memory, pooled-gob baseline vs binary wire codec.
	gobOp, wireOp := live.CodecBenchOps()
	cfg.logf("bench codec_gob_roundtrip...\n")
	r.Run("codec_gob_roundtrip", cfg.Budget, gobOp)
	cfg.logf("bench codec_wire_roundtrip...\n")
	r.Run("codec_wire_roundtrip", cfg.Budget, wireOp)

	// --- Transport under concurrency: one op = 16 concurrent PR sub-tasks
	// against the loopback node, pooled gob conns vs one multiplexed binary
	// conn. The node's PR partial cache serves the repeats, so the work per
	// call is small and the transport dominates the measurement — exactly
	// the regime the mux was built for.
	prReq := live.PRSubtaskRequest(analyses[0].Keywords, []int{0})
	fanout := func(call func() error) func() {
		return func() {
			var wg sync.WaitGroup
			errs := make([]error, 16)
			for i := 0; i < 16; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					errs[i] = call()
				}()
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					panic(fmt.Sprintf("rpc_16: %v", err))
				}
			}
		}
	}
	cfg.logf("bench pool_rpc_16...\n")
	r.Run("pool_rpc_16", cfg.Budget, fanout(func() error {
		_, err := pool.Call(node.Addr(), prReq, 5*time.Second)
		return err
	}))
	muxFallback := live.NewPool(live.PoolConfig{})
	defer muxFallback.Close()
	mux := live.NewMuxTransport(live.MuxConfig{}, muxFallback)
	defer mux.Close()
	cfg.logf("bench mux_rpc_16...\n")
	r.Run("mux_rpc_16", cfg.Budget, fanout(func() error {
		_, err := mux.Call(node.Addr(), prReq, 5*time.Second)
		return err
	}))
	if st := mux.Stats(); st.Fallbacks > 0 {
		return nil, fmt.Errorf("perf: mux_rpc_16 degraded to the gob pool (%d fallbacks) — not a mux measurement", st.Fallbacks)
	}

	// --- Serving-path cache: a full question at paper scale (TREC8-like
	// collection) over the pooled transport, against a cache-disabled node
	// vs an answer-cache hit. The pooled transport keeps per-request
	// connection setup out of the measurement — through the one-shot Ask
	// helper the dial dominates both sides and hides the cache's effect —
	// and the paper-scale collection prices the cold pipeline realistically.
	cfg.logf("building paper-scale collection for the ask cache benchmarks...\n")
	askColl := corpus.Generate(corpus.TREC8Like())
	askEng := qa.NewEngine(askColl, index.BuildAll(askColl))
	askReq := live.AskRequest(askColl.Facts[0].Question)
	coldNode, err := live.StartNode(live.NodeConfig{
		Addr:           "127.0.0.1:0",
		Engine:         askEng,
		HeartbeatEvery: time.Hour,
		RequestTimeout: 30 * time.Second,
		Cache:          live.CacheConfig{Disabled: true},
	})
	if err != nil {
		return nil, fmt.Errorf("perf: start cache-disabled node: %w", err)
	}
	defer coldNode.Close()
	warmNode, err := live.StartNode(live.NodeConfig{
		Addr:           "127.0.0.1:0",
		Engine:         askEng,
		HeartbeatEvery: time.Hour,
		RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		return nil, fmt.Errorf("perf: start cache-enabled node: %w", err)
	}
	defer warmNode.Close()
	cfg.logf("bench ask_cold...\n")
	r.Run("ask_cold", cfg.Budget, func() {
		resp, err := pool.Call(coldNode.Addr(), askReq, 30*time.Second)
		if err != nil {
			panic(fmt.Sprintf("ask_cold: %v", err))
		}
		if resp.CacheHit {
			panic("ask_cold: cache-disabled node served a cache hit")
		}
	})
	cfg.logf("bench ask_cached...\n")
	// Fill the answer cache before timing starts: the first ask is the cold
	// leader, everything after it must hit.
	if _, err := pool.Call(warmNode.Addr(), askReq, 30*time.Second); err != nil {
		return nil, fmt.Errorf("perf: warm ask: %w", err)
	}
	r.Run("ask_cached", cfg.Budget, func() {
		resp, err := pool.Call(warmNode.Addr(), askReq, 30*time.Second)
		if err != nil {
			panic(fmt.Sprintf("ask_cached: %v", err))
		}
		if !resp.CacheHit {
			panic("ask_cached: response was not a cache hit")
		}
	})

	// --- Sharded scatter-gather vs full replica: a two-node K=2/R=1 cluster
	// serves every ask over the scatter path (half the index local, half one
	// RPC away), measured against a single full-replica node. Caches are
	// disabled on both sides so every op prices the pipeline plus — on the
	// sharded side — the wire fan-out: the cost of halving per-node index
	// memory, which the floor bounds rather than celebrates.
	cfg.logf("starting sharded pair for the scatter-gather benchmarks...\n")
	fullNode, err := live.StartNode(live.NodeConfig{
		Addr:           "127.0.0.1:0",
		Engine:         seq,
		HeartbeatEvery: time.Hour,
		RequestTimeout: 10 * time.Second,
		Cache:          live.CacheConfig{Disabled: true},
	})
	if err != nil {
		return nil, fmt.Errorf("perf: start full-replica node: %w", err)
	}
	defer fullNode.Close()
	shardNodes := make([]*live.Node, 2)
	for i := range shardNodes {
		subs := shard.HoldingSubs(i, 2, 2, 1, len(coll.Subs))
		n, err := live.StartNode(live.NodeConfig{
			Addr:   "127.0.0.1:0",
			Engine: qa.NewEngine(coll, index.BuildSubset(coll, subs)),
			// The shard map rides heartbeats, so they cannot be fully quiet;
			// 100ms keeps map composition prompt while leaving the mux mostly
			// free for the scatter fan-out under measurement.
			HeartbeatEvery: 100 * time.Millisecond,
			RequestTimeout: 10 * time.Second,
			Cache:          live.CacheConfig{Disabled: true},
			Shard:          live.ShardConfig{K: 2, R: 1, NodeIndex: i, ClusterSize: 2},
		})
		if err != nil {
			return nil, fmt.Errorf("perf: start sharded node %d: %w", i, err)
		}
		defer n.Close()
		shardNodes[i] = n
	}
	shardNodes[0].AddPeer(shardNodes[1].Addr())
	shardNodes[1].AddPeer(shardNodes[0].Addr())
	mapDeadline := time.Now().Add(10 * time.Second)
	for {
		st, err := live.QueryStatus(shardNodes[0].Addr(), 2*time.Second)
		if err == nil && st.Shard != nil && st.Shard.Complete {
			break
		}
		if time.Now().After(mapDeadline) {
			return nil, fmt.Errorf("perf: sharded pair never composed a complete shard map")
		}
		time.Sleep(10 * time.Millisecond)
	}
	askVia := func(addr string, qs []string) func() {
		j := 0
		return func() {
			resp, err := pool.Call(addr, live.AskRequest(qs[j%len(qs)]), 10*time.Second)
			if err != nil {
				panic(fmt.Sprintf("ask via %s: %v", addr, err))
			}
			if resp.Err != "" {
				panic(fmt.Sprintf("ask via %s: %s", addr, resp.Err))
			}
			j++
		}
	}
	cfg.logf("bench ask_full_replica...\n")
	r.Run("ask_full_replica", cfg.Budget, askVia(fullNode.Addr(), questions))
	cfg.logf("bench ask_sharded...\n")
	r.Run("ask_sharded", cfg.Budget, askVia(shardNodes[0].Addr(), questions))

	// --- Selective routing vs full scatter (PR-7): two K=4/R=1 four-node
	// clusters sharing the same shard-scoped engines, one pinned to full
	// scatter and one with summary routing on, measured over a *shard-local*
	// workload (every question's keywords occur in exactly one shard, so
	// fresh summaries let the router skip the other three). This is the
	// workload the federated-search literature says selection pays off on;
	// the mixed-workload cost stays covered by ask_sharded above. The nodes
	// measured above are closed first (Close is idempotent, so the deferred
	// closes stay safe): on a single-proc runner an unrelated cluster's
	// heartbeat and gossip traffic lands on the same core as the measurement
	// and flattens exactly the fan-out difference this comparison exists to
	// see. The two K=4 twins themselves stay up together — their heartbeat
	// load is symmetric across the pair of rows, unlike measurement drift.
	fullNode.Close()
	for _, sn := range shardNodes {
		sn.Close()
	}
	cfg.logf("starting K=4 clusters for the selective routing benchmarks...\n")
	localQs := shardLocalQuestions(set, coll, 4)
	if len(localQs) == 0 {
		return nil, fmt.Errorf("perf: collection %q has no shard-local vocabulary for the selective workload", coll.Name)
	}
	k4Engines := make([]*qa.Engine, 4)
	for i := range k4Engines {
		subs := shard.HoldingSubs(i, 4, 4, 1, len(coll.Subs))
		k4Engines[i] = qa.NewEngine(coll, index.BuildSubset(coll, subs))
	}
	startK4 := func(routingOff bool) ([]*live.Node, error) {
		nodes := make([]*live.Node, 4)
		for i := range nodes {
			n, err := live.StartNode(live.NodeConfig{
				Addr:           "127.0.0.1:0",
				Engine:         k4Engines[i],
				HeartbeatEvery: 100 * time.Millisecond,
				RequestTimeout: 10 * time.Second,
				Cache:          live.CacheConfig{Disabled: true},
				Shard: live.ShardConfig{
					K: 4, R: 1, NodeIndex: i, ClusterSize: 4,
					Routing: live.RoutingConfig{Disabled: routingOff},
				},
			})
			if err != nil {
				return nil, fmt.Errorf("perf: start K=4 node %d: %w", i, err)
			}
			nodes[i] = n
		}
		for i, a := range nodes {
			for j, b := range nodes {
				if i != j {
					a.AddPeer(b.Addr())
				}
			}
		}
		return nodes, nil
	}
	waitComplete := func(addr, label string) error {
		deadline := time.Now().Add(10 * time.Second)
		for {
			st, err := live.QueryStatus(addr, 2*time.Second)
			if err == nil && st.Shard != nil && st.Shard.Complete {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("perf: %s cluster never composed a complete shard map", label)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// Both rows ride the mux transport — the binary codec every inter-node
	// call uses — so client-side encode prices the serving path, not gob.
	// One sequential client, so the rows measure the latency regime: each
	// fan-out leg's wire cost lands on the critical path instead of being
	// hidden behind concurrent legs or amortized by the mux writer's frame
	// batching. That is the regime where the scatter tax is visible on a
	// tiny corpus, so the time floor on this pair is enforced only at
	// GOMAXPROCS=1 (see check.go: serialFanout); the machine-independent
	// invariant — selective routing does strictly less work per ask — is
	// gated everywhere through the pair's allocation ratio.
	askK4 := live.NewMuxTransport(live.MuxConfig{}, pool)
	defer askK4.Close()
	askViaMux := func(addr string, qs []string) func() {
		j := 0
		return func() {
			resp, err := askK4.Call(addr, live.AskRequest(qs[j%len(qs)]), 10*time.Second)
			if err != nil {
				panic(fmt.Sprintf("ask via %s: %v", addr, err))
			}
			if resp.Err != "" {
				panic(fmt.Sprintf("ask via %s: %s", addr, resp.Err))
			}
			j++
		}
	}
	// Both clusters come up and warm BEFORE either row is measured, and the
	// two measurements run back-to-back. A machine's throughput drifts over
	// seconds (frequency scaling, cgroup bursts); measuring the twins far
	// apart in time folds that drift into the ratio. Adjacent measurements
	// under identical background load (both clusters' heartbeats, which are
	// symmetric) keep the ratio about routing, not about when each row ran.
	scatterK4, err := startK4(true)
	if err != nil {
		return nil, err
	}
	for _, n := range scatterK4 {
		defer n.Close()
	}
	selectiveK4, err := startK4(false)
	if err != nil {
		return nil, err
	}
	for _, n := range selectiveK4 {
		defer n.Close()
	}
	if err := waitComplete(scatterK4[0].Addr(), "K=4 scatter"); err != nil {
		return nil, err
	}
	if err := waitComplete(selectiveK4[0].Addr(), "K=4 selective"); err != nil {
		return nil, err
	}
	// Warm every selective node until its summary view is fresh: gossip
	// pulls ride the heartbeats, and the first routed ask's gather
	// revalidates entries stamped before the map finished composing. Only
	// node 0 coordinates during the measurement, but a forwarded ask can
	// land anywhere, so every view must be routable before the clock starts.
	routeCounters := func() (skips, fallbacks int64, err error) {
		for _, n := range selectiveK4 {
			st, qerr := live.QueryStatus(n.Addr(), 2*time.Second)
			if qerr != nil {
				return 0, 0, fmt.Errorf("perf: selective cluster status via %s: %w", n.Addr(), qerr)
			}
			skips += st.Metrics.RouteSkips
			fallbacks += st.Metrics.RoutePlansFallback
		}
		return skips, fallbacks, nil
	}
	warmDeadline := time.Now().Add(10 * time.Second)
	for {
		fresh := true
		for _, n := range selectiveK4 {
			st, err := live.QueryStatus(n.Addr(), 2*time.Second)
			if err != nil || st.Shard == nil || len(st.Shard.Shards) == 0 {
				fresh = false
				break
			}
			for _, row := range st.Shard.Shards {
				if row.SummaryVersion == 0 || !row.SummaryFresh {
					fresh = false
					break
				}
			}
			if !fresh {
				break
			}
		}
		if fresh {
			break
		}
		if time.Now().After(warmDeadline) {
			return nil, fmt.Errorf("perf: selective cluster summaries never went fresh")
		}
		for _, n := range selectiveK4 {
			askK4.Call(n.Addr(), live.AskRequest(localQs[0]), 10*time.Second)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Pre-open the scatter coordinator's mux connection so the first measured
	// op doesn't pay the dial.
	for _, q := range localQs {
		if _, err := askK4.Call(scatterK4[0].Addr(), live.AskRequest(q), 10*time.Second); err != nil {
			return nil, fmt.Errorf("perf: warm scatter coordinator: %w", err)
		}
	}
	preSkips, preFallbacks, err := routeCounters()
	if err != nil {
		return nil, err
	}
	cfg.logf("bench ask_sharded_scatter...\n")
	r.Run("ask_sharded_scatter", cfg.Budget, askViaMux(scatterK4[0].Addr(), localQs))
	cfg.logf("bench ask_sharded_selective...\n")
	r.Run("ask_sharded_selective", cfg.Budget, askViaMux(selectiveK4[0].Addr(), localQs))
	postSkips, postFallbacks, err := routeCounters()
	if err != nil {
		return nil, err
	}
	if st := askK4.Stats(); st.Fallbacks > 0 {
		return nil, fmt.Errorf("perf: K=4 ask benchmarks degraded to the gob pool (%d fallbacks) — not a mux measurement", st.Fallbacks)
	}
	if postFallbacks > preFallbacks {
		return nil, fmt.Errorf("perf: ask_sharded_selective fell back to full scatter mid-measurement — not a selective measurement")
	}
	if postSkips <= preSkips {
		return nil, fmt.Errorf("perf: ask_sharded_selective skipped no shards — workload was not shard-local")
	}

	// --- The public front door (PR-8): the same paper-scale cache hit as
	// ask_cached, but through the entire HTTP gateway stack — JSON decode,
	// token bucket, admission, the mux hop to warmNode, JSON encode. The
	// comparison against ask_cached prices pure edge overhead: both sides
	// serve the identical answer from the identical node's cache. The K=4
	// clusters are closed first (Close is idempotent) so their heartbeat
	// traffic stays out of the measurement.
	for _, n := range scatterK4 {
		n.Close()
	}
	for _, n := range selectiveK4 {
		n.Close()
	}
	cfg.logf("starting gateway for the front-door benchmarks...\n")
	gw, err := gate.New(gate.Config{Addr: "127.0.0.1:0", Nodes: []string{warmNode.Addr()}})
	if err != nil {
		return nil, fmt.Errorf("perf: build gateway: %w", err)
	}
	if err := gw.Start(); err != nil {
		return nil, fmt.Errorf("perf: start gateway: %w", err)
	}
	defer gw.Close()
	httpClient := &http.Client{Timeout: 30 * time.Second}
	gateBody, _ := json.Marshal(gate.AskPayload{Question: askColl.Facts[0].Question})
	gateAsk := func() error {
		resp, err := httpClient.Post(gw.URL()+"/v1/ask", "application/json", bytes.NewReader(gateBody))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	// Pre-open the gateway's HTTP and mux connections (the answer cache is
	// already warm from ask_cached).
	if err := gateAsk(); err != nil {
		return nil, fmt.Errorf("perf: warm gateway: %w", err)
	}
	cfg.logf("bench gate_ask...\n")
	r.Run("gate_ask", cfg.Budget, func() {
		if err := gateAsk(); err != nil {
			panic(fmt.Sprintf("gate_ask: %v", err))
		}
	})

	for _, c := range []struct{ name, base, cand string }{
		{"rpc: pooled vs one-shot", "rpc_oneshot", "rpc_pooled"},
		{"retrieval: memo vs cold", "retrieve_uncached", "retrieve_cached"},
		// The PR-10 acceptance ratio: block decode + skip-seek intersection
		// against the plain sorted-slice core, same keywords, same corpus.
		{"retrieve: compressed vs plain", "retrieve_plain", "retrieve_compressed"},
		{"pr+ps: parallel vs sequential", "pr_ps_sequential", "pr_ps_parallel"},
		{"ask: parallel vs sequential", "ask_sequential", "ask_parallel"},
		{"codec: wire vs gob", "codec_gob_roundtrip", "codec_wire_roundtrip"},
		{"rpc16: mux vs pool", "pool_rpc_16", "mux_rpc_16"},
		{"ask: cached vs cold", "ask_cold", "ask_cached"},
		{"ask: sharded vs full replica", "ask_full_replica", "ask_sharded"},
		{"ask: selective vs scatter (K=4)", "ask_sharded_scatter", "ask_sharded_selective"},
		// The PR-7 acceptance ratio: the selective stack against the PR-5
		// sharded serving stack (`ask_sharded`, K=2 mixed workload, pooled gob
		// client). The twin comparison above isolates routing under identical
		// conditions; this one prices the end-to-end win of the PR.
		{"ask: selective vs sharded", "ask_sharded", "ask_sharded_selective"},
		// The PR-8 edge-overhead bound: the full HTTP gateway stack against
		// direct pooled RPC, both serving the same cache hit.
		{"ask: gateway vs direct (cached)", "ask_cached", "gate_ask"},
	} {
		if err := r.Compare(c.name, c.base, c.cand); err != nil {
			return nil, err
		}
	}

	// --- Open-loop load (PR-8 acceptance): a deliberately small gateway
	// (2 servers, queue of 4) fronting a cache-disabled full replica, so
	// saturation is reachable at modest offered rates. The serial service
	// time measured through the gateway sets the regimes — sub-threshold at
	// a quarter of capacity must shed ~nothing; over-threshold at 4x with
	// bursty arrivals must shed, keep its queue bounded, and keep the
	// admitted p99 under the bound computed from the service time. Those
	// structural assertions (CheckLoad) are machine-independent because the
	// rates are relative to this run's own capacity.
	// The target is the paper-scale cache-disabled node from the ask_cold
	// benchmark: multi-ms service demand puts the capacity threshold at
	// rates one client process can honestly generate (the tiny corpus's
	// sub-ms asks would put it in the unreachable tens of thousands of qps).
	cfg.logf("starting gateway for the open-loop load runs...\n")
	const loadInflight, loadQueue = 2, 16
	lgw, err := gate.New(gate.Config{
		Addr:        "127.0.0.1:0",
		Nodes:       []string{coldNode.Addr()},
		MaxInflight: loadInflight,
		MaxQueue:    loadQueue,
	})
	if err != nil {
		return nil, fmt.Errorf("perf: build load gateway: %w", err)
	}
	if err := lgw.Start(); err != nil {
		return nil, fmt.Errorf("perf: start load gateway: %w", err)
	}
	defer lgw.Close()
	// Serial calibration: the mean uncached ask time through the gateway,
	// over the same paper-scale questions the schedules will draw from.
	loadQs := make([]string, 0, 8)
	for i := 0; i < 8 && i < len(askColl.Facts); i++ {
		loadQs = append(loadQs, askColl.Facts[i].Question)
	}
	serialAsk := func(q string) error {
		body, _ := json.Marshal(gate.AskPayload{Question: q, TimeoutMS: 30000})
		resp, err := httpClient.Post(lgw.URL()+"/v1/ask", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	if err := serialAsk(loadQs[0]); err != nil { // open conns before timing
		return nil, fmt.Errorf("perf: warm load gateway: %w", err)
	}
	const calibrationOps = 16
	calStart := time.Now()
	for i := 0; i < calibrationOps; i++ {
		if err := serialAsk(loadQs[i%len(loadQs)]); err != nil {
			return nil, fmt.Errorf("perf: calibrate load gateway: %w", err)
		}
	}
	service := time.Since(calStart).Seconds() / calibrationOps
	capacity := float64(loadInflight) / service
	// Bound each schedule's request count so a fast machine (huge capacity)
	// still finishes the runs in a couple of seconds.
	durFor := func(rate float64, maxN int) time.Duration {
		d := 2 * time.Second
		if byCount := time.Duration(float64(maxN) / rate * float64(time.Second)); byCount < d {
			d = byCount
		}
		if d < 250*time.Millisecond {
			d = 250 * time.Millisecond
		}
		return d
	}
	// Sub-threshold sits at 5% utilization: service demand is heavy-tailed,
	// so even modest utilization lets one expensive question briefly back the
	// queue up past its bound and shed — which is exactly what the "over" row
	// demonstrates and the "sub" row must not.
	subRate := 0.05 * capacity
	if subRate < 4 {
		subRate = 4
	}
	overRate := 4 * capacity
	serviceMs := service * 1000
	// Admitted-latency bound: full queue wait plus service with 10x slack,
	// floored at 750ms for loaded single-core runners (the generator, the
	// gateway and the node share the core during the over run). The gate is
	// the shape — a *bounded* queue keeps admitted p99 in this range, while
	// unbounded buffering of a 4x overload would push it into seconds.
	p99Bound := serviceMs * (1 + float64(loadQueue)/float64(loadInflight)) * 10
	if p99Bound < 750 {
		p99Bound = 750
	}
	cfg.logf("load calibration: service %.2fms, capacity %.0f qps (sub %.0f, over %.0f)\n",
		serviceMs, capacity, subRate, overRate)
	subRes, err := gate.RunLoad(gate.LoadConfig{
		BaseURL: lgw.URL(), Questions: loadQs,
		Rate: subRate, Duration: durFor(subRate, 1000),
		Arrivals: "poisson", Seed: 1, TimeoutMS: 30000,
	})
	if err != nil {
		return nil, fmt.Errorf("perf: sub-threshold load run: %w", err)
	}
	overRes, err := gate.RunLoad(gate.LoadConfig{
		BaseURL: lgw.URL(), Questions: loadQs,
		Rate: overRate, Duration: durFor(overRate, 1500),
		Arrivals: "burst", Seed: 2, TimeoutMS: 30000,
	})
	if err != nil {
		return nil, fmt.Errorf("perf: over-threshold load run: %w", err)
	}
	toRow := func(name, regime string, res gate.LoadResult, bound float64) LoadRow {
		return LoadRow{
			Name: name, Regime: regime, Arrivals: res.Arrivals,
			OfferedQPS: res.OfferedQPS, AchievedQPS: res.AchievedQPS,
			Sent: res.Sent, OK: res.OK, Shed: res.Shed,
			Timeouts: res.Timeouts, Errors: res.Errors, ShedRate: res.ShedRate,
			P50Ms: res.P50Ms, P99Ms: res.P99Ms,
			QueuePeak: res.QueuePeak, QueueBound: res.QueueBound,
			ServiceMs: serviceMs, P99BoundMs: bound, DurationS: res.DurationS,
		}
	}
	r.Load = append(r.Load,
		toRow("gate_sub", "sub", subRes, 0),
		toRow("gate_over", "over", overRes, p99Bound))
	return r, nil
}

// shardLocalQuestions synthesizes one "Tell me about <word>?" question per
// shard of the K-way split whose keywords occur *only* inside that shard —
// the selective-routing workload: with fresh summaries, the router provably
// skips every other shard. Mirrors the shard package's routed-equivalence
// test helper.
func shardLocalQuestions(set *index.Set, coll *corpus.Collection, k int) []string {
	total := len(coll.Subs)
	var qs []string
	for s := 0; s < k; s++ {
		inShard := make(map[int]bool)
		for _, sub := range shard.SubsOf(s, k, total) {
			inShard[sub] = true
		}
		absentOutside := func(stem string) bool {
			for sub := 0; sub < total; sub++ {
				if !inShard[sub] && set.Sub(sub).DocFreq(stem) > 0 {
					return false
				}
			}
			return true
		}
		found := false
		for sub := 0; sub < total && !found; sub++ {
			if !inShard[sub] {
				continue
			}
			for _, doc := range coll.Subs[sub].Docs {
				for _, p := range doc.Paragraphs {
					for _, tok := range p.Tokens {
						if tok.Stem == "" || len(tok.Text) < 4 {
							continue
						}
						if set.Sub(sub).DocFreq(tok.Stem) == 0 || !absentOutside(tok.Stem) {
							continue
						}
						q := "Tell me about " + tok.Text + "?"
						a := nlp.AnalyzeQuestion(q)
						hit, clean := false, len(a.Keywords) > 0
						for _, kw := range a.Keywords {
							if kw == tok.Stem {
								hit = true
							}
							if !absentOutside(kw) {
								clean = false
								break
							}
						}
						if hit && clean {
							qs = append(qs, q)
							found = true
							break
						}
					}
					if found {
						break
					}
				}
				if found {
					break
				}
			}
		}
	}
	return qs
}
