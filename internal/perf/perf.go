// Package perf is the machine-readable benchmark harness behind
// `qabench -perf`. It runs the hot-path benchmarks this PR optimised —
// pooled vs one-shot RPC, cached vs uncached Boolean retrieval, parallel vs
// sequential PR/PS — with a small time-budgeted runner (the shape of
// testing.B, without importing the testing package into a binary) and emits
// a JSON report (BENCH_pr2.json) that successive runs can diff.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"
)

// Schema identifies the report layout for downstream tooling.
const Schema = "distqa-perf/1"

// Benchmark is one measured operation.
type Benchmark struct {
	// Name identifies the benchmark (stable across runs; diff key).
	Name string `json:"name"`
	// Ops is the number of iterations actually timed.
	Ops int `json:"ops"`
	// NsPerOp is the mean wall-clock nanoseconds per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// OpsPerSec is the reciprocal throughput (1e9 / NsPerOp).
	OpsPerSec float64 `json:"ops_per_sec"`
	// AllocsPerOp is the mean heap allocations per iteration (from
	// runtime.MemStats deltas, so GC noise is possible on tiny budgets).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// BytesPerOp is the mean heap bytes allocated per iteration.
	BytesPerOp float64 `json:"bytes_per_op"`
	// P50Ms and P99Ms are per-op latency quantiles in milliseconds from a
	// separate individually-timed sampling pass (the batch-timed loop above
	// cannot see per-op spread). Zero when the pass collected no samples.
	P50Ms float64 `json:"p50_ms,omitempty"`
	P99Ms float64 `json:"p99_ms,omitempty"`
	// LatencySamples is the number of individually timed ops behind the
	// quantiles.
	LatencySamples int `json:"latency_samples,omitempty"`
}

// Comparison pairs a baseline benchmark with its optimised candidate.
type Comparison struct {
	// Name labels the comparison (e.g. "rpc: pooled vs one-shot").
	Name string `json:"name"`
	// Baseline and Candidate are Benchmark names in the same report.
	Baseline  string `json:"baseline"`
	Candidate string `json:"candidate"`
	// Speedup is baseline NsPerOp / candidate NsPerOp (>1 means the
	// candidate is faster).
	Speedup float64 `json:"speedup"`
	// AllocRatio is baseline AllocsPerOp / candidate AllocsPerOp (>1 means
	// the candidate allocates less). A candidate measuring ≤ 0 allocs/op is
	// floored at 0.01 so the ratio stays finite and JSON-encodable.
	AllocRatio float64 `json:"alloc_ratio"`
}

// LoadRow is one open-loop load run against the HTTP gateway (PR-8): the
// admission-control acceptance evidence, gated structurally by CheckLoad
// rather than by wall-clock diffs — the regimes are set relative to the
// machine's measured capacity, so the assertions hold on any hardware.
type LoadRow struct {
	// Name labels the run; Regime is "sub" (offered rate well under
	// capacity — shed must be ~0) or "over" (offered rate well over — shed
	// must engage, the queue must stay within its bound, and admitted p99
	// must stay under P99BoundMs).
	Name     string `json:"name"`
	Regime   string `json:"regime"`
	Arrivals string `json:"arrivals"`
	// Offered vs achieved throughput: equal until saturation, divergent after.
	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	Sent        int     `json:"sent"`
	OK          int     `json:"ok"`
	Shed        int     `json:"shed"`
	Timeouts    int     `json:"timeouts"`
	Errors      int     `json:"errors"`
	ShedRate    float64 `json:"shed_rate"`
	// Latency quantiles of admitted (200) requests, ms.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// Queue evidence: peak admission-queue depth against its configured bound.
	QueuePeak  int `json:"queue_peak"`
	QueueBound int `json:"queue_bound"`
	// ServiceMs is the serially measured per-ask service time the regimes
	// were derived from; P99BoundMs is the admitted-latency bound computed
	// from it (service · (1 + queue/servers) · slack), checked on "over" rows.
	ServiceMs  float64 `json:"service_ms"`
	P99BoundMs float64 `json:"p99_bound_ms,omitempty"`
	DurationS  float64 `json:"duration_s"`
}

// SizeRow is one measured in-memory footprint (PR-10): a deterministic byte
// count, not a timing, so it is exactly reproducible and machine-independent.
// The compression floor (CheckSizes) gates the ratio between paired rows.
type SizeRow struct {
	// Name identifies the measurement (stable across runs; diff key).
	Name string `json:"name"`
	// Bytes is the measured footprint.
	Bytes int `json:"bytes"`
}

// Report is the full perf run output.
type Report struct {
	Schema      string       `json:"schema"`
	GeneratedAt time.Time    `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	GOOS        string       `json:"goos"`
	GOARCH      string       `json:"goarch"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Benchmarks  []Benchmark  `json:"benchmarks"`
	Comparisons []Comparison `json:"comparisons"`
	// Load holds the gateway load runs (omitted by pre-PR-8 baselines).
	Load []LoadRow `json:"load,omitempty"`
	// Sizes holds deterministic footprint rows (omitted by pre-PR-10
	// baselines, so older committed reports still parse).
	Sizes []SizeRow `json:"sizes,omitempty"`
}

// NewReport returns a Report stamped with the current environment.
func NewReport() *Report {
	return &Report{
		Schema:      Schema,
		GeneratedAt: time.Now().UTC(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
}

// Run measures fn under name for roughly budget wall-clock time: a warm-up
// call, a calibration pass to size the batch, then timed batches until the
// budget is spent. Allocation figures come from runtime.MemStats deltas
// around the timed region.
func (r *Report) Run(name string, budget time.Duration, fn func()) Benchmark {
	fn() // warm-up: page in code paths, fill pools/caches' first slots

	// Calibrate: grow the batch until one batch takes ≥ ~1/16 of budget.
	batch := 1
	for {
		start := time.Now()
		for i := 0; i < batch; i++ {
			fn()
		}
		if d := time.Since(start); d >= budget/16 || batch >= 1<<20 {
			break
		}
		batch *= 2
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	ops := 0
	var elapsed time.Duration
	for elapsed < budget {
		start := time.Now()
		for i := 0; i < batch; i++ {
			fn()
		}
		elapsed += time.Since(start)
		ops += batch
	}
	runtime.ReadMemStats(&after)

	b := Benchmark{
		Name:    name,
		Ops:     ops,
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(ops),
	}
	if b.NsPerOp > 0 {
		b.OpsPerSec = 1e9 / b.NsPerOp
	}
	b.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(ops)
	b.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(ops)

	// Latency-quantile pass, separate from the batch loop above so the mean
	// measurement keeps its committed-baseline comparability (a per-op clock
	// read inside the batches would shift ns/op). A quarter of the budget,
	// capped at 10k samples, gives exact sorted quantiles for the SLO gate.
	const maxSamples = 10000
	samples := make([]float64, 0, 256)
	sampleBudget := budget / 4
	var spent time.Duration
	for spent < sampleBudget && len(samples) < maxSamples {
		start := time.Now()
		fn()
		d := time.Since(start)
		spent += d
		samples = append(samples, float64(d.Nanoseconds())/1e6)
	}
	sort.Float64s(samples)
	b.LatencySamples = len(samples)
	b.P50Ms = quantileAt(samples, 0.50)
	b.P99Ms = quantileAt(samples, 0.99)

	r.Benchmarks = append(r.Benchmarks, b)
	return b
}

// quantileAt returns the q-th quantile of sorted (nearest-rank) or 0 when
// empty.
func quantileAt(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Compare records a baseline/candidate pair. Unknown names are an error so
// a typo cannot silently produce an empty comparison.
func (r *Report) Compare(name, baseline, candidate string) error {
	b, okB := r.find(baseline)
	c, okC := r.find(candidate)
	if !okB || !okC {
		return fmt.Errorf("perf: comparison %q references unknown benchmark (baseline %q: %v, candidate %q: %v)",
			name, baseline, okB, candidate, okC)
	}
	sp := 0.0
	if c.NsPerOp > 0 {
		sp = b.NsPerOp / c.NsPerOp
	}
	candAllocs := c.AllocsPerOp
	if candAllocs <= 0 {
		candAllocs = 0.01
	}
	ar := 0.0
	if b.AllocsPerOp > 0 {
		ar = b.AllocsPerOp / candAllocs
	}
	r.Comparisons = append(r.Comparisons, Comparison{
		Name: name, Baseline: baseline, Candidate: candidate, Speedup: sp, AllocRatio: ar,
	})
	return nil
}

// AddSize records one deterministic footprint measurement.
func (r *Report) AddSize(name string, bytes int) {
	r.Sizes = append(r.Sizes, SizeRow{Name: name, Bytes: bytes})
}

func (r *Report) findSize(name string) (SizeRow, bool) {
	for _, s := range r.Sizes {
		if s.Name == name {
			return s, true
		}
	}
	return SizeRow{}, false
}

func (r *Report) find(name string) (Benchmark, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders a human-readable summary table.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "perf report (%s, %s/%s, GOMAXPROCS=%d)\n",
		r.GoVersion, r.GOOS, r.GOARCH, r.GOMAXPROCS)
	fmt.Fprintf(w, "  %-22s %12s %14s %12s %12s %10s\n", "benchmark", "ops", "ns/op", "allocs/op", "ops/sec", "p99")
	for _, b := range r.Benchmarks {
		p99 := "-"
		if b.LatencySamples > 0 {
			p99 = fmt.Sprintf("%.2fms", b.P99Ms)
		}
		fmt.Fprintf(w, "  %-22s %12d %14.0f %12.1f %12.0f %10s\n",
			b.Name, b.Ops, b.NsPerOp, b.AllocsPerOp, b.OpsPerSec, p99)
	}
	if len(r.Comparisons) > 0 {
		fmt.Fprintln(w, "  speedups:")
		for _, c := range r.Comparisons {
			fmt.Fprintf(w, "    %-32s %6.2fx  (allocs %5.1fx)\n", c.Name, c.Speedup, c.AllocRatio)
		}
	}
	if len(r.Sizes) > 0 {
		fmt.Fprintln(w, "  index footprint:")
		for _, s := range r.Sizes {
			fmt.Fprintf(w, "    %-28s %12d bytes (%.1f KiB)\n", s.Name, s.Bytes, float64(s.Bytes)/1024)
		}
	}
	if len(r.Load) > 0 {
		fmt.Fprintln(w, "  gateway load (open loop):")
		for _, l := range r.Load {
			fmt.Fprintf(w, "    %-14s %-4s offered %7.1f qps  achieved %7.1f  shed %5.1f%%  p99 %8.2fms  queue %d/%d\n",
				l.Name, l.Regime, l.OfferedQPS, l.AchievedQPS, l.ShedRate*100, l.P99Ms, l.QueuePeak, l.QueueBound)
		}
	}
}
