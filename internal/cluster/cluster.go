// Package cluster models the machines of the distributed Q/A testbed: nodes
// with a processor-sharing CPU, a processor-sharing disk, and a fixed amount
// of physical memory. The defaults reproduce the paper's experimental
// platform (Section 6): 500 MHz Pentium III class nodes with 256 MB of RAM
// and a commodity IDE disk, connected by 100 Mbps Ethernet (the network
// itself lives in package simnet).
//
// Memory is modelled explicitly because it drives one of the paper's central
// observations (Section 2.2): a question needs 25-40 MB of dynamic memory,
// and more than four simultaneous questions push a 256 MB node into page
// swapping, collapsing throughput. When allocations exceed physical memory,
// the node's CPU and disk are slowed by a thrash factor proportional to the
// oversubscription.
package cluster

import (
	"errors"
	"fmt"

	"distqa/internal/vtime"
)

// Hardware describes the capabilities of a node. All rates are in base units
// per virtual second.
type Hardware struct {
	// CPUPower is the relative CPU speed: 1.0 means one "standard CPU
	// second" of work per second. The cost model in package qa expresses CPU
	// demand in standard CPU seconds (calibrated to the paper's 500 MHz
	// Pentium III), so CPUPower 1.0 reproduces the testbed.
	CPUPower float64
	// DiskBandwidth is the sustained disk transfer rate in bytes/second.
	DiskBandwidth float64
	// MemoryMB is the physical memory in megabytes.
	MemoryMB float64
	// ThrashSlope controls how hard the node degrades once memory is
	// oversubscribed: the speed factor applied to CPU and disk is
	// 1/(1+ThrashSlope*over) where over = used/MemoryMB - 1.
	ThrashSlope float64
}

// TestbedHardware returns the paper's experimental node profile:
// 500 MHz Pentium III, 256 MB RAM, ~25 MB/s sustained disk reads.
func TestbedHardware() Hardware {
	return Hardware{
		CPUPower:      1.0,
		DiskBandwidth: 25e6,
		MemoryMB:      256,
		ThrashSlope:   8,
	}
}

// Node is one simulated machine.
type Node struct {
	id   int
	name string
	sim  *vtime.Sim
	hw   Hardware

	CPU  *vtime.PS
	Disk *vtime.PS

	memUsed float64
	failed  bool

	// onFail callbacks run when the node fails (used to error out transfers
	// and drop it from monitor tables).
	onFail []func()
}

// New creates a node with the given id and hardware profile.
func New(sim *vtime.Sim, id int, hw Hardware) *Node {
	if hw.CPUPower <= 0 || hw.DiskBandwidth <= 0 || hw.MemoryMB <= 0 {
		panic("cluster: invalid hardware profile")
	}
	// Display names are 1-based like the paper's Figure 7 traces (N1..N4).
	name := fmt.Sprintf("N%d", id+1)
	return &Node{
		id:   id,
		name: name,
		sim:  sim,
		hw:   hw,
		CPU:  vtime.NewPS(sim, name+".cpu", hw.CPUPower),
		Disk: vtime.NewPS(sim, name+".disk", hw.DiskBandwidth),
	}
}

// ID returns the node id (unique within a cluster, 0-based).
func (n *Node) ID() int { return n.id }

// Name returns the node's display name (N1, N2, ... style, matching the
// traces in Figure 7 of the paper).
func (n *Node) Name() string { return n.name }

// Hardware returns the node's hardware profile.
func (n *Node) Hardware() Hardware { return n.hw }

// Sim returns the simulation the node belongs to.
func (n *Node) Sim() *vtime.Sim { return n.sim }

// ErrFailed is returned by resource use on a crashed node.
var ErrFailed = errors.New("cluster: node failed")

// UseCPU blocks p until seconds of standard CPU work have been served by the
// node's processor-sharing CPU. It returns ErrFailed if the node crashes
// before the work completes.
func (n *Node) UseCPU(p *vtime.Proc, seconds float64) error {
	if !n.CPU.Use(p, seconds) {
		return ErrFailed
	}
	return nil
}

// UseDisk blocks p until bytes have been read from (or written to) the
// node's processor-sharing disk. It returns ErrFailed if the node crashes
// before the transfer completes.
func (n *Node) UseDisk(p *vtime.Proc, bytes float64) error {
	if !n.Disk.Use(p, bytes) {
		return ErrFailed
	}
	return nil
}

// Alloc reserves mb megabytes of memory for the duration of a task. It never
// blocks: like a 2001 Linux box, the node happily overcommits and starts
// thrashing instead. Call the returned release function when the task ends.
func (n *Node) Alloc(mb float64) (release func()) {
	if mb < 0 {
		mb = 0
	}
	n.memUsed += mb
	n.applyThrash()
	released := false
	return func() {
		if released {
			return
		}
		released = true
		n.memUsed -= mb
		if n.memUsed < 0 {
			n.memUsed = 0
		}
		n.applyThrash()
	}
}

// MemUsedMB reports current memory reservations in MB.
func (n *Node) MemUsedMB() float64 { return n.memUsed }

// Oversubscribed reports whether reservations exceed physical memory.
func (n *Node) Oversubscribed() bool { return n.memUsed > n.hw.MemoryMB }

// applyThrash recomputes the CPU/disk speed factor from memory pressure.
func (n *Node) applyThrash() {
	if n.failed {
		return
	}
	speed := 1.0
	if over := n.memUsed/n.hw.MemoryMB - 1; over > 0 {
		speed = 1 / (1 + n.hw.ThrashSlope*over)
	}
	n.CPU.SetSpeed(speed)
	n.Disk.SetSpeed(speed)
}

// Fail marks the node as crashed: its resources stall and registered
// failure callbacks run. Work in flight on the node never completes, which
// is how partitioner failure recovery gets exercised.
func (n *Node) Fail() {
	if n.failed {
		return
	}
	n.failed = true
	n.CPU.AbortAll()
	n.Disk.AbortAll()
	for _, fn := range n.onFail {
		fn()
	}
	n.onFail = nil
}

// Failed reports whether the node has crashed.
func (n *Node) Failed() bool { return n.failed }

// OnFail registers a callback invoked when the node fails. If the node has
// already failed the callback runs immediately.
func (n *Node) OnFail(fn func()) {
	if n.failed {
		fn()
		return
	}
	n.onFail = append(n.onFail, fn)
}

// LoadSample is a point-in-time reading of a node's resource loads, in
// run-queue style units: the average number of jobs concurrently active on
// the resource over the sampling window (0 = idle, 1 = exactly busy,
// >1 = contended). The paper's load functions (Equations 1-3) combine these
// with per-module resource weights.
type LoadSample struct {
	Node int
	Time float64
	CPU  float64
	Disk float64
}

// LoadMeter converts the cumulative job-seconds integrals of a node's
// resources into windowed load averages. Each call to Sample reads the load
// over the interval since the previous call.
type LoadMeter struct {
	node         *Node
	lastTime     float64
	lastCPUJobs  float64
	lastDiskJobs float64
}

// NewLoadMeter creates a meter positioned at the current virtual time.
func NewLoadMeter(n *Node) *LoadMeter {
	return &LoadMeter{
		node:         n,
		lastTime:     n.sim.Now(),
		lastCPUJobs:  n.CPU.JobSeconds(),
		lastDiskJobs: n.Disk.JobSeconds(),
	}
}

// Sample returns the load averages since the previous Sample call. A window
// of zero duration returns the instantaneous active-job counts.
func (m *LoadMeter) Sample() LoadSample {
	now := m.node.sim.Now()
	cpuJobs := m.node.CPU.JobSeconds()
	diskJobs := m.node.Disk.JobSeconds()
	dt := now - m.lastTime
	s := LoadSample{Node: m.node.id, Time: now}
	if dt > 0 {
		s.CPU = (cpuJobs - m.lastCPUJobs) / dt
		s.Disk = (diskJobs - m.lastDiskJobs) / dt
	} else {
		s.CPU = float64(m.node.CPU.Active())
		s.Disk = float64(m.node.Disk.Active())
	}
	m.lastTime = now
	m.lastCPUJobs = cpuJobs
	m.lastDiskJobs = diskJobs
	return s
}

// Cluster is a set of nodes sharing one simulation.
type Cluster struct {
	sim   *vtime.Sim
	nodes []*Node
}

// NewCluster creates n homogeneous nodes with the given hardware profile.
func NewCluster(sim *vtime.Sim, n int, hw Hardware) *Cluster {
	c := &Cluster{sim: sim}
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, New(sim, i, hw))
	}
	return c
}

// Nodes returns the cluster's nodes in id order. The slice must not be
// modified.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Node returns the node with the given id.
func (c *Cluster) Node(id int) *Node { return c.nodes[id] }

// Len returns the number of nodes.
func (c *Cluster) Len() int { return len(c.nodes) }

// Sim returns the underlying simulation.
func (c *Cluster) Sim() *vtime.Sim { return c.sim }

// Add appends a new node with the given hardware (dynamic pool join,
// Section 3.1 of the paper).
func (c *Cluster) Add(hw Hardware) *Node {
	n := New(c.sim, len(c.nodes), hw)
	c.nodes = append(c.nodes, n)
	return n
}
