package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"distqa/internal/vtime"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}

func TestCPUTiming(t *testing.T) {
	sim := vtime.NewSim()
	n := New(sim, 0, TestbedHardware())
	var end float64
	sim.Spawn("w", func(p *vtime.Proc) {
		n.UseCPU(p, 10)
		end = p.Now()
	})
	sim.Run()
	if !almostEqual(end, 10) {
		t.Fatalf("end = %v, want 10", end)
	}
}

func TestDiskTiming(t *testing.T) {
	sim := vtime.NewSim()
	hw := TestbedHardware()
	n := New(sim, 0, hw)
	var end float64
	sim.Spawn("w", func(p *vtime.Proc) {
		n.UseDisk(p, 50e6) // 50 MB at 25 MB/s → 2 s
		end = p.Now()
	})
	sim.Run()
	if !almostEqual(end, 2) {
		t.Fatalf("end = %v, want 2", end)
	}
}

func TestHeterogeneousCPUPower(t *testing.T) {
	sim := vtime.NewSim()
	hw := TestbedHardware()
	hw.CPUPower = 2.0
	n := New(sim, 0, hw)
	var end float64
	sim.Spawn("w", func(p *vtime.Proc) {
		n.UseCPU(p, 10)
		end = p.Now()
	})
	sim.Run()
	if !almostEqual(end, 5) {
		t.Fatalf("end = %v, want 5 on a 2x CPU", end)
	}
}

func TestMemoryThrashSlowdown(t *testing.T) {
	// A job that takes 10 s with free memory must take strictly longer when
	// memory is oversubscribed 2x for the duration.
	run := func(allocMB float64) float64 {
		sim := vtime.NewSim()
		n := New(sim, 0, TestbedHardware())
		release := n.Alloc(allocMB)
		defer release()
		var end float64
		sim.Spawn("w", func(p *vtime.Proc) {
			n.UseCPU(p, 10)
			end = p.Now()
		})
		sim.Run()
		return end
	}
	fast := run(100) // under 256 MB
	slow := run(512) // 2x oversubscribed
	if !almostEqual(fast, 10) {
		t.Fatalf("fast = %v, want 10", fast)
	}
	if slow <= fast*1.5 {
		t.Fatalf("slow = %v, want significant thrash slowdown vs %v", slow, fast)
	}
}

func TestThrashRecoversAfterRelease(t *testing.T) {
	sim := vtime.NewSim()
	n := New(sim, 0, TestbedHardware())
	release := n.Alloc(512)
	var end float64
	sim.Spawn("w", func(p *vtime.Proc) {
		n.UseCPU(p, 10)
		end = p.Now()
	})
	// Free the memory at t=1: the rest of the job runs at full speed.
	sim.After(1, release)
	sim.Run()
	// Thrash speed at 2x oversubscription with slope 8: 1/(1+8) = 1/9.
	// t=0..1 serves 1/9 CPU-s; remaining 10-1/9 at full speed.
	want := 1 + (10 - 1.0/9)
	if !almostEqual(end, want) {
		t.Fatalf("end = %v, want %v", end, want)
	}
	if n.MemUsedMB() != 0 {
		t.Fatalf("memUsed = %v, want 0", n.MemUsedMB())
	}
}

func TestReleaseIsIdempotent(t *testing.T) {
	sim := vtime.NewSim()
	n := New(sim, 0, TestbedHardware())
	r1 := n.Alloc(100)
	r2 := n.Alloc(50)
	r1()
	r1() // double release must not corrupt accounting
	if !almostEqual(n.MemUsedMB(), 50) {
		t.Fatalf("memUsed = %v, want 50", n.MemUsedMB())
	}
	r2()
	if n.MemUsedMB() != 0 {
		t.Fatalf("memUsed = %v, want 0", n.MemUsedMB())
	}
}

func TestFailAbortsInFlightWork(t *testing.T) {
	sim := vtime.NewSim()
	n := New(sim, 0, TestbedHardware())
	var err error
	var when float64
	sim.Spawn("w", func(p *vtime.Proc) {
		err = n.UseCPU(p, 10)
		when = p.Now()
	})
	sim.After(1, n.Fail)
	sim.Run()
	if err == nil {
		t.Fatal("work should abort with error on node failure")
	}
	if !almostEqual(when, 1) {
		t.Fatalf("abort observed at %v, want 1 (failure time)", when)
	}
	if !n.Failed() {
		t.Fatal("node should report failed")
	}
	// New work on a failed node errors immediately.
	var err2 error
	sim.Spawn("w2", func(p *vtime.Proc) { err2 = n.UseCPU(p, 1) })
	sim.Run()
	if err2 == nil {
		t.Fatal("work on failed node should error")
	}
}

func TestOnFailCallbacks(t *testing.T) {
	sim := vtime.NewSim()
	n := New(sim, 0, TestbedHardware())
	calls := 0
	n.OnFail(func() { calls++ })
	n.Fail()
	n.Fail() // idempotent
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	// Registering after failure fires immediately.
	n.OnFail(func() { calls++ })
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestLoadMeterIdle(t *testing.T) {
	sim := vtime.NewSim()
	n := New(sim, 0, TestbedHardware())
	m := NewLoadMeter(n)
	sim.Spawn("clock", func(p *vtime.Proc) { p.Sleep(5) })
	sim.Run()
	s := m.Sample()
	if s.CPU != 0 || s.Disk != 0 {
		t.Fatalf("idle load = %+v, want zeros", s)
	}
}

func TestLoadMeterSingleJob(t *testing.T) {
	sim := vtime.NewSim()
	n := New(sim, 0, TestbedHardware())
	m := NewLoadMeter(n)
	sim.Spawn("w", func(p *vtime.Proc) { n.UseCPU(p, 5) })
	sim.RunUntil(5)
	s := m.Sample()
	if !almostEqual(s.CPU, 1) {
		t.Fatalf("cpu load = %v, want 1 (one job busy the whole window)", s.CPU)
	}
	sim.Shutdown()
}

func TestLoadMeterContention(t *testing.T) {
	sim := vtime.NewSim()
	n := New(sim, 0, TestbedHardware())
	m := NewLoadMeter(n)
	for i := 0; i < 3; i++ {
		sim.Spawn("w", func(p *vtime.Proc) { n.UseCPU(p, 100) })
	}
	sim.RunUntil(10)
	s := m.Sample()
	if !almostEqual(s.CPU, 3) {
		t.Fatalf("cpu load = %v, want 3 under three concurrent jobs", s.CPU)
	}
	sim.Shutdown()
}

func TestLoadMeterWindows(t *testing.T) {
	// Load must reflect only the window since the previous sample.
	sim := vtime.NewSim()
	n := New(sim, 0, TestbedHardware())
	m := NewLoadMeter(n)
	sim.Spawn("w", func(p *vtime.Proc) {
		p.Sleep(5)
		n.UseCPU(p, 5)
	})
	sim.RunUntil(5)
	s := m.Sample()
	if !almostEqual(s.CPU, 0) {
		t.Fatalf("first window load = %v, want 0", s.CPU)
	}
	sim.RunUntil(10)
	s = m.Sample()
	if !almostEqual(s.CPU, 1) {
		t.Fatalf("second window load = %v, want 1", s.CPU)
	}
	sim.Shutdown()
}

func TestClusterConstruction(t *testing.T) {
	sim := vtime.NewSim()
	c := NewCluster(sim, 12, TestbedHardware())
	if c.Len() != 12 {
		t.Fatalf("len = %d, want 12", c.Len())
	}
	for i, n := range c.Nodes() {
		if n.ID() != i {
			t.Fatalf("node %d has id %d", i, n.ID())
		}
	}
	added := c.Add(TestbedHardware())
	if added.ID() != 12 || c.Len() != 13 {
		t.Fatalf("dynamic join broken: id=%d len=%d", added.ID(), c.Len())
	}
}

// Property: total CPU work served across any concurrent mix equals the sum of
// demands, and memory accounting returns to zero after all releases.
func TestWorkAndMemoryConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sim := vtime.NewSim()
		n := New(sim, 0, TestbedHardware())
		jobs := 1 + rng.Intn(8)
		total := 0.0
		for i := 0; i < jobs; i++ {
			work := 0.5 + rng.Float64()*4
			mem := 10 + rng.Float64()*80
			delay := rng.Float64() * 3
			total += work
			sim.Spawn("w", func(p *vtime.Proc) {
				p.Sleep(delay)
				release := n.Alloc(mem)
				n.UseCPU(p, work)
				release()
			})
		}
		sim.Run()
		return almostEqual(n.CPU.Served(), total) && math.Abs(n.MemUsedMB()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
