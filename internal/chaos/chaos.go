// Package chaos is the fault-tolerance proving ground for the live cluster:
// it boots a multi-node loopback cluster sharing one collection's text (the
// index is a full replica on every node by default, or shard-scoped with
// R-way replication in the shardloss scenario), runs a seeded fault schedule
// against it (node crash mid-question, heartbeat blackout, asymmetric
// partition, replica loss, rolling restart), and asserts that every question
// still returns the planted answer — the paper's claim that the distributed
// design "degrades gracefully" under failures, made executable.
//
// Determinism: the event log records the *planned* schedule (node indexes,
// question indexes, per-question correctness flags), never wall-clock times
// or ephemeral port numbers, so the same seed reproduces a byte-identical
// log. Counters that depend on goroutine interleaving (retries, breaker
// trips) are reported separately and excluded from the log.
//
// The harness runs behind `qabench -chaos` and inside the CI race smoke.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"time"

	"distqa/internal/corpus"
	"distqa/internal/fault"
	"distqa/internal/index"
	"distqa/internal/live"
	"distqa/internal/qa"
	"distqa/internal/shard"
)

// Scenario names accepted by Config.Scenario.
const (
	ScenarioCrash     = "crash"     // kill a node mid-question, restart it later
	ScenarioBlackout  = "blackout"  // drop one node's outbound heartbeats, then lift
	ScenarioPartition = "partition" // asymmetric link drop between two nodes
	ScenarioMixed     = "mixed"     // all of the above in one run (default)
	// ScenarioShardLoss boots the cluster *sharded* (K=2 shards, R=2
	// replicas, chained declustering) and kills all-but-one replica of a
	// chosen shard while a question is in flight: the scatter-gather path
	// must fail over to the surviving replica and the answer must still
	// match the sequential oracle.
	ScenarioShardLoss = "shardloss"
	// ScenarioStaleRoute boots the sharded cluster with selective routing
	// *enabled* (the only scenario that does) and kills one replica of a
	// chosen shard after the routing summaries have gone fresh: the epoch
	// bump makes every gossiped summary stale at once, the next routed
	// question must detect the mismatch and fall back to a full scatter
	// (answering correctly), and the fallback's gather must revalidate the
	// store so routing turns selective again — PR-7's staleness contract,
	// proven under a real failover.
	ScenarioStaleRoute = "staleroute"
)

// Config parameterises one chaos run.
type Config struct {
	Seed      int64         // drives the injector, node retry jitter and victim picks
	Nodes     int           // cluster size (>= 2; default 3)
	Questions int           // questions to ask across the schedule (default 12)
	Scenario  string        // one of the Scenario* constants (default mixed)
	Heartbeat time.Duration // node heartbeat period (default 25ms)
	Timeout   time.Duration // per-question client timeout (default 30s)
	// Out, when non-nil, receives live narration (the event log as it is
	// written plus the informational counter summary).
	Out io.Writer
}

func (c Config) withDefaults() Config {
	if c.Nodes < 2 {
		c.Nodes = 3
	}
	if c.Questions <= 0 {
		c.Questions = 12
	}
	if c.Scenario == "" {
		c.Scenario = ScenarioMixed
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 25 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// Result is the outcome of one chaos run.
type Result struct {
	// Log is the deterministic event log: planned schedule plus per-question
	// correctness. Same seed + config => byte-identical log.
	Log []string
	// Asked / Correct count questions issued and answered with the planted
	// answer.
	Asked, Correct int
	// Failures lists every violated expectation (empty on a clean run).
	Failures []string
	// Metrics aggregates the fault-tolerance counters across nodes at the end
	// of the run. Interleaving-dependent: informational, NOT part of Log.
	Metrics Counters
}

// Counters is the cross-node sum of fault-tolerance metrics.
type Counters struct {
	Retries      int64
	BreakerTrips int64
	Readmissions int64
	Forwards     int64
	Failures     int64 // remote calls that errored (live_request_failures)
	Injected     int64 // faults the injector actually fired
	// FlightRecords counts the slow-question records retained across nodes —
	// proof the always-on flight recorder stayed on through the chaos run
	// without perturbing the deterministic event log (it reads no clocks of
	// its own and takes no randomness off the seeded schedule path).
	FlightRecords int64
	// Selective-routing counters (PR-7, staleroute scenario): shards skipped
	// by the route planner, fallbacks charged to stale summaries, and summary
	// pulls the gossip issued. Zero in every other scenario (routing off).
	RouteSkips     int64
	StaleFallbacks int64
	SummaryPulls   int64
}

// OK reports whether the run met every expectation.
func (r *Result) OK() bool { return len(r.Failures) == 0 && r.Asked == r.Correct }

// EventLog renders the deterministic log as one string (the artifact the
// determinism test compares byte-for-byte).
func (r *Result) EventLog() string { return strings.Join(r.Log, "\n") + "\n" }

// Shared collection: one Tiny corpus for every run. In the unsharded
// scenarios every node serves the shared full-index engine (the paper's
// "each machine holds a copy of the collection" testbed); the shardloss
// scenario shares only the collection *text* and gives each node a
// shard-scoped index (text replicated, index sharded). Building the corpus
// once keeps repeated runs (determinism tests, CI smoke) fast.
var (
	engineOnce sync.Once
	chaosColl  *corpus.Collection
	chaosEng   *qa.Engine
)

func sharedEngine() (*corpus.Collection, *qa.Engine) {
	engineOnce.Do(func() {
		chaosColl = corpus.Generate(corpus.Tiny())
		chaosEng = qa.NewEngine(chaosColl, index.BuildAll(chaosColl))
	})
	return chaosColl, chaosEng
}

// event is one planned schedule entry, fired just before question At.
type event struct {
	At   int
	Kind string // "crashMid", "restart", "blackout", "lift", "partition", "heal"
	Node int    // victim node index
	Peer int    // second node (partition target)
}

// run carries the mutable state of one chaos execution.
type run struct {
	cfg    Config
	inj    *fault.Injector
	eng    *qa.Engine
	coll   *corpus.Collection
	nodes  []*live.Node
	addrs  []string // index -> address (stable across restarts)
	alive  []bool
	res    *Result
	ruleID map[string]int // active injector rules by tag
	// crashed remembers the nodes actually killed by the last crashMid /
	// shardLossMid event (planned victims shift deterministically if they
	// would have been the serving node), so the paired restart event revives
	// the right nodes.
	crashed []int
	// Sharding (shardloss scenario): K shards, R replicas, per-node
	// shard-scoped engines sharing the collection text. shardK == 0 means
	// the classic full-replica topology.
	shardK, shardR int
	engines        []*qa.Engine
}

func (r *run) logf(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	r.res.Log = append(r.res.Log, line)
	if r.cfg.Out != nil {
		fmt.Fprintln(r.cfg.Out, line)
	}
}

func (r *run) failf(format string, args ...any) {
	r.res.Failures = append(r.res.Failures, fmt.Sprintf(format, args...))
}

// Run executes one seeded chaos schedule and returns its result. It only
// returns an error for setup problems (cannot bind sockets); expectation
// violations are reported in Result.Failures.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	coll, eng := sharedEngine()
	r := &run{
		cfg:    cfg,
		inj:    fault.New(cfg.Seed),
		eng:    eng,
		coll:   coll,
		res:    &Result{},
		ruleID: make(map[string]int),
	}
	if cfg.Scenario == ScenarioShardLoss || cfg.Scenario == ScenarioStaleRoute {
		// Shard the cluster: K=2 shards, R=2 replicas (normalized against the
		// topology) — single-replica loss always leaves a survivor.
		k, rr, err := shard.Normalize(2, 2, cfg.Nodes, len(coll.Subs))
		if err != nil {
			return nil, fmt.Errorf("chaos: shard topology: %w", err)
		}
		r.shardK, r.shardR = k, rr
		r.engines = make([]*qa.Engine, cfg.Nodes)
		for i := 0; i < cfg.Nodes; i++ {
			subs := shard.HoldingSubs(i, cfg.Nodes, k, rr, len(coll.Subs))
			r.engines[i] = qa.NewEngine(coll, index.BuildSubset(coll, subs))
		}
	}
	defer func() {
		for i, n := range r.nodes {
			if r.alive[i] && n != nil {
				n.Close()
			}
		}
	}()

	r.logf("chaos seed=%d nodes=%d questions=%d scenario=%s", cfg.Seed, cfg.Nodes, cfg.Questions, cfg.Scenario)

	// Boot the cluster.
	r.nodes = make([]*live.Node, cfg.Nodes)
	r.addrs = make([]string, cfg.Nodes)
	r.alive = make([]bool, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		n, err := r.startNode(i, "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		r.nodes[i] = n
		r.addrs[i] = n.Addr()
		r.alive[i] = true
	}
	for i, a := range r.nodes {
		for j := range r.nodes {
			if i != j {
				a.AddPeer(r.addrs[j])
			}
		}
	}
	r.waitMesh()

	// Build and execute the schedule.
	schedule := buildSchedule(cfg, rand.New(rand.NewSource(cfg.Seed)))
	cursor := 0
	for q := 0; q < cfg.Questions; q++ {
		var mid *event
		for _, ev := range schedule {
			if ev.At != q {
				continue
			}
			if ev.Kind == "crashMid" || ev.Kind == "shardLossMid" || ev.Kind == "staleRoute" {
				ev := ev
				mid = &ev // fires while this question is in flight
				continue
			}
			r.fire(ev)
		}
		fact := r.coll.Facts[q%len(r.coll.Facts)]
		target := r.nextAlive(&cursor)
		switch {
		case mid != nil && mid.Kind == "staleRoute":
			r.askWithStaleRoute(q, *mid, fact.Question)
		case mid != nil && mid.Kind == "shardLossMid":
			r.askWithShardLoss(q, target, *mid, fact.Question)
		case mid != nil:
			r.askWithMidCrash(q, target, *mid, fact.Question)
		default:
			r.ask(q, target, fact.Question)
		}
	}

	r.logf("summary asked=%d correct=%d failures=%d", r.res.Asked, r.res.Correct, len(r.res.Failures))
	r.collectCounters()
	return r.res, nil
}

// startNode boots node i on addr (0 = ephemeral) with chaos-tuned timings.
// In the shardloss scenario each node gets its shard-scoped engine; restarts
// reuse the same (immutable) engine.
func (r *run) startNode(i int, addr string) (*live.Node, error) {
	engine := r.eng
	var shardCfg live.ShardConfig
	if r.shardK > 0 {
		engine = r.engines[i]
		shardCfg = live.ShardConfig{K: r.shardK, R: r.shardR, NodeIndex: i, ClusterSize: r.cfg.Nodes}
		// Selective routing stays off except in the scenario built to probe
		// it: shardloss pins full scatter so its mid-flight replica kills keep
		// exercising the failover path on every shard.
		shardCfg.Routing.Disabled = r.cfg.Scenario != ScenarioStaleRoute
	}
	return live.StartNode(live.NodeConfig{
		Addr:           addr,
		Engine:         engine,
		Shard:          shardCfg,
		HeartbeatEvery: r.cfg.Heartbeat,
		RequestTimeout: 2 * time.Second,
		Seed:           r.cfg.Seed + int64(i) + 1,
		Fault:          r.inj,
		// Determinism: a cache hit would skip pipeline stages (and their
		// events) based on what earlier questions happened to run, so chaos
		// runs serve every question cold.
		Cache: live.CacheConfig{Disabled: true},
		Retry: live.RetryPolicy{
			MaxAttempts: 2,
			BaseBackoff: 10 * time.Millisecond,
			MaxBackoff:  80 * time.Millisecond,
			Budget:      5 * time.Second,
		},
		Breaker: live.BreakerConfig{
			FailureThreshold: 3,
			Cooldown:         4 * r.cfg.Heartbeat,
		},
	})
}

// waitMesh blocks until every node has heard a heartbeat from every peer.
func (r *run) waitMesh() {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ready := true
		for i, n := range r.nodes {
			if !r.alive[i] {
				continue
			}
			st, err := live.QueryStatus(n.Addr(), time.Second)
			if err != nil || len(st.Peers) < r.cfg.Nodes-1 {
				ready = false
				break
			}
		}
		if ready {
			return
		}
		time.Sleep(r.cfg.Heartbeat)
	}
	r.failf("cluster mesh did not form within 10s")
}

// nextAlive picks the next planned-alive node round-robin.
func (r *run) nextAlive(cursor *int) int {
	for range r.nodes {
		i := *cursor % len(r.nodes)
		*cursor++
		if r.alive[i] {
			return i
		}
	}
	return 0
}

// ask issues question q at node target and checks the answer against the
// sequential reference pipeline.
func (r *run) ask(q, target int, question string) {
	r.res.Asked++
	ok := r.check(target, question)
	r.logf("[q %d] node=%d ok=%v", q, target, ok)
	if ok {
		r.res.Correct++
	} else {
		r.failf("question %d at node %d: wrong or missing answer", q, target)
	}
}

// askWithMidCrash issues question q, then kills the victim while the
// question is in flight — the acceptance scenario: the serving node's
// PR/AP sub-tasks (or its forward) lose a peer mid-flight and must degrade
// to local execution without corrupting the answer.
func (r *run) askWithMidCrash(q, target int, ev event, question string) {
	victim := ev.Node
	if victim == target {
		victim = (victim + 1) % len(r.nodes) // never kill the serving node
	}
	r.crashed = []int{victim}
	// Stretch the question across the crash: delay every message the serving
	// node sends the victim, so the victim dies while a sub-task (or its
	// connection) to it is genuinely in flight.
	slow := r.inj.Add(fault.Rule{From: r.addrs[target], To: r.addrs[victim], Delay: 4 * r.cfg.Heartbeat})
	defer r.inj.Remove(slow)
	r.res.Asked++
	done := make(chan bool, 1)
	go func() { done <- r.check(target, question) }()
	// Give the ask a moment to enter its distributed phase, then kill.
	time.Sleep(2 * r.cfg.Heartbeat)
	r.logf("[q %d] crash node=%d mid-question", q, victim)
	if r.alive[victim] {
		r.nodes[victim].Close()
		r.alive[victim] = false
	}
	ok := <-done
	r.logf("[q %d] node=%d ok=%v", q, target, ok)
	if ok {
		r.res.Correct++
	} else {
		r.failf("question %d at node %d (mid-question crash of %d): wrong or missing answer", q, target, victim)
	}
}

// askWithShardLoss issues question q, then — while the question is in
// flight — kills every replica of the planned shard except one survivor: the
// scatter-gather PR fan-out must fail over to the surviving replica and the
// answer must still match the sequential oracle. ev.Node carries the *shard*
// id; victims shift deterministically so the serving node is never killed.
func (r *run) askWithShardLoss(q, target int, ev event, question string) {
	s := ev.Node % r.shardK
	replicas := shard.ReplicaNodes(s, r.cfg.Nodes, r.shardR)
	// Survivor: the serving node when it replicates the shard (so the local
	// path covers it), else the last replica in chain order.
	survivor := replicas[len(replicas)-1]
	for _, n := range replicas {
		if n == target {
			survivor = target
		}
	}
	victims := make([]int, 0, len(replicas))
	for _, n := range replicas {
		if n != survivor && n != target && r.alive[n] {
			victims = append(victims, n)
		}
	}
	r.crashed = victims
	r.logf("[q %d] shardloss shard=%d survivor=%d victims=%v planned", q, s, survivor, victims)
	// Stretch the question across the loss: delay everything the serving node
	// sends the victims so their sub-tasks are genuinely in flight when they
	// die, forcing the failover branch rather than a clean pre-death miss.
	rules := make([]int, 0, len(victims))
	for _, v := range victims {
		rules = append(rules, r.inj.Add(fault.Rule{From: r.addrs[target], To: r.addrs[v], Delay: 4 * r.cfg.Heartbeat}))
	}
	defer func() {
		for _, id := range rules {
			r.inj.Remove(id)
		}
	}()
	r.res.Asked++
	done := make(chan bool, 1)
	go func() { done <- r.check(target, question) }()
	time.Sleep(2 * r.cfg.Heartbeat)
	for _, v := range victims {
		r.logf("[q %d] crash node=%d mid-question (shard %d replica)", q, v, s)
		if r.alive[v] {
			r.nodes[v].Close()
			r.alive[v] = false
		}
	}
	ok := <-done
	r.logf("[q %d] node=%d ok=%v", q, target, ok)
	if ok {
		r.res.Correct++
	} else {
		r.failf("question %d at node %d (shard %d replica loss %v): wrong or missing answer", q, target, s, victims)
	}
}

// askWithStaleRoute drives the PR-7 staleness contract through a real
// failover. ev.Node carries the shard id and ev.Peer the replica index of the
// victim; the target — a node *outside* the shard's replica set, so it must
// consult a gossiped (not local) summary — is derived deterministically at
// fire time. Sequence: warm a routed question through the target and wait for
// its summaries to go fresh, kill the victim and wait for the epoch bump,
// then probe: the first routed question must fall back on the stale summary
// while still answering correctly, and once the store revalidates a confirm
// question must plan selectively again. Every logged value is either planned
// or polled to quiescence first, so the log stays byte-identical per seed.
func (r *run) askWithStaleRoute(q int, ev event, question string) {
	s := ev.Node % r.shardK
	replicas := shard.ReplicaNodes(s, r.cfg.Nodes, r.shardR)
	target := -1
	for i := 0; i < r.cfg.Nodes; i++ {
		if !r.alive[i] {
			continue
		}
		holds := false
		for _, n := range replicas {
			if n == i {
				holds = true
				break
			}
		}
		if !holds {
			target = i
			break
		}
	}
	if target < 0 {
		r.failf("staleroute: every node replicates shard %d — nothing gossips, nothing can go stale", s)
		return
	}
	victim := replicas[ev.Peer%len(replicas)]
	r.crashed = []int{victim}
	r.logf("[q %d] staleroute shard=%d target=%d victim=%d planned", q, s, target, victim)

	// Warm: route one question through the target (revalidating its store at
	// the current epoch) and hold until every summary it consults is fresh.
	r.res.Asked++
	ok := r.check(target, question)
	r.logf("[q %d] staleroute warm node=%d ok=%v", q, target, ok)
	if ok {
		r.res.Correct++
	} else {
		r.failf("staleroute warm question %d at node %d: wrong or missing answer", q, target)
	}
	fresh := r.awaitFreshSummaries(target)
	r.logf("[check] staleroute summaries fresh=%v", fresh)
	if !fresh {
		r.failf("staleroute: node %d never saw fresh summaries for every shard", target)
		return
	}

	pre, ok := r.nodeMetrics(target)
	if !ok {
		r.failf("staleroute: cannot read node %d metrics before the kill", target)
		return
	}
	r.logf("[q %d] crash node=%d (shard %d replica)", q, victim, s)
	if r.alive[victim] {
		r.nodes[victim].Close()
		r.alive[victim] = false
	}
	bumped := r.awaitEpochBump(target, pre.ShardEpoch)
	r.logf("[check] staleroute epoch bumped=%v", bumped)
	if !bumped {
		r.failf("staleroute: shard-map epoch never bumped at node %d after killing node %d", target, victim)
		return
	}

	// Probe: epoch mismatch must force the stale fallback — full scatter,
	// correct answer, counted as a stale (not missing) fallback.
	r.res.Asked++
	ok = r.check(target, question)
	post, metricsOK := r.nodeMetrics(target)
	fellBack := metricsOK && post.RouteFallbacksStale > pre.RouteFallbacksStale
	r.logf("[q %d] staleroute probe node=%d ok=%v fallback=%v", q, target, ok, fellBack)
	if ok {
		r.res.Correct++
	} else {
		r.failf("staleroute probe question %d at node %d: wrong or missing answer", q, target)
	}
	if !fellBack {
		r.failf("staleroute: node %d did not fall back on its stale summaries after the epoch bump", target)
	}

	// Confirm: revalidation (plus a re-pull from the surviving replica when
	// the victim was the summary's source) restores selective routing.
	fresh = r.awaitFreshSummaries(target)
	r.logf("[check] staleroute revalidated=%v", fresh)
	if !fresh {
		r.failf("staleroute: node %d summaries never revalidated after the fallback", target)
		return
	}
	mid, _ := r.nodeMetrics(target)
	r.res.Asked++
	ok = r.check(target, question)
	fin, metricsOK := r.nodeMetrics(target)
	selective := metricsOK && fin.RoutePlansSelective > mid.RoutePlansSelective
	r.logf("[q %d] staleroute confirm node=%d ok=%v selective=%v", q, target, ok, selective)
	if ok {
		r.res.Correct++
	} else {
		r.failf("staleroute confirm question %d at node %d: wrong or missing answer", q, target)
	}
	if !selective {
		r.failf("staleroute: node %d did not plan selectively again after revalidation", target)
	}
}

// nodeMetrics fetches one node's cumulative metrics snapshot.
func (r *run) nodeMetrics(i int) (live.StatusMetrics, bool) {
	st, err := live.QueryStatus(r.addrs[i], 2*time.Second)
	if err != nil {
		return live.StatusMetrics{}, false
	}
	return st.Metrics, true
}

// awaitFreshSummaries blocks until node i's shard-status table shows a fresh
// summary for every shard. Status polling alone cannot revalidate a store
// whose entries carry an older epoch stamp (only a routed question's gather
// does), so the poll interleaves uncounted asks — invisible in the event log.
func (r *run) awaitFreshSummaries(i int) bool {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := live.QueryStatus(r.addrs[i], time.Second)
		if err == nil && st.Shard != nil {
			fresh := len(st.Shard.Shards) > 0
			for _, row := range st.Shard.Shards {
				if row.SummaryVersion == 0 || !row.SummaryFresh {
					fresh = false
					break
				}
			}
			if fresh {
				return true
			}
		}
		live.Ask(r.addrs[i], r.coll.Facts[0].Question, r.cfg.Timeout)
		time.Sleep(r.cfg.Heartbeat)
	}
	return false
}

// awaitEpochBump blocks until node i's composed shard-map epoch exceeds from.
// Pure status polling: it must not issue asks, or the probe question would not
// be the first routed question to see the bumped epoch.
func (r *run) awaitEpochBump(i int, from int64) bool {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m, ok := r.nodeMetrics(i); ok && m.ShardEpoch > from {
			return true
		}
		time.Sleep(r.cfg.Heartbeat)
	}
	return false
}

// check asks one question and compares the top answer with the sequential
// pipeline's (the correctness oracle every live test uses).
func (r *run) check(target int, question string) bool {
	resp, err := live.Ask(r.addrs[target], question, r.cfg.Timeout)
	if err != nil || len(resp.Answers) == 0 {
		return false
	}
	want := r.eng.AnswerSequential(question)
	if len(want.Answers) == 0 {
		return false
	}
	return strings.EqualFold(resp.Answers[0].Text, want.Answers[0].Text)
}

// fire executes one schedule event.
func (r *run) fire(ev event) {
	switch ev.Kind {
	case "restart":
		// Revive whatever the last mid-question event actually killed (the
		// planned victim shifts deterministically when it would have been the
		// serving node); fall back to the scheduled node.
		targets := r.crashed
		if len(targets) == 0 {
			targets = []int{ev.Node}
		}
		r.crashed = nil
		for _, node := range targets {
			r.restartNode(ev.At, node)
		}

	case "blackout":
		r.logf("[q %d] blackout heartbeats from node=%d", ev.At, ev.Node)
		id := r.inj.Add(fault.Rule{From: r.addrs[ev.Node], Op: fault.OpHeartbeat, Drop: true})
		r.ruleID[fmt.Sprintf("blackout-%d", ev.Node)] = id
		// Hold the window open past the detector's dead threshold, then
		// assert the gating guarantee: every peer must have demoted the
		// silent node out of its candidate set.
		r.settle()
		gated := true
		for j, m := range r.nodes {
			if j == ev.Node || !r.alive[j] {
				continue
			}
			if m.PeerState(r.addrs[ev.Node]) == live.PeerAlive {
				gated = false
			}
		}
		r.logf("[check] blackout node=%d gated=%v", ev.Node, gated)
		if !gated {
			r.failf("blackout: node %d still admitted by a peer after %v of silence", ev.Node, r.settleWindow())
		}

	case "lift":
		r.logf("[q %d] lift blackout node=%d", ev.At, ev.Node)
		if id, ok := r.ruleID[fmt.Sprintf("blackout-%d", ev.Node)]; ok {
			r.inj.Remove(id)
		}
		r.awaitReadmission(ev.Node)

	case "partition":
		r.logf("[q %d] partition node=%d -/-> node=%d", ev.At, ev.Node, ev.Peer)
		id := r.inj.Add(fault.Rule{From: r.addrs[ev.Node], To: r.addrs[ev.Peer], Drop: true, Sever: true})
		r.ruleID[fmt.Sprintf("part-%d-%d", ev.Node, ev.Peer)] = id
		if r.alive[ev.Node] && r.alive[ev.Peer] {
			// Asymmetry check: the deaf side must demote the silent side
			// while the silent side still hears the deaf side.
			r.settle()
			farGated := r.nodes[ev.Peer].PeerState(r.addrs[ev.Node]) != live.PeerAlive
			nearAlive := r.nodes[ev.Node].PeerState(r.addrs[ev.Peer]) == live.PeerAlive
			r.logf("[check] partition far_gated=%v near_alive=%v", farGated, nearAlive)
			if !farGated {
				r.failf("partition: node %d still admits silent node %d", ev.Peer, ev.Node)
			}
		} else {
			r.logf("[check] partition skipped (node down)")
		}

	case "heal":
		r.logf("[q %d] heal partition node=%d -> node=%d", ev.At, ev.Node, ev.Peer)
		if id, ok := r.ruleID[fmt.Sprintf("part-%d-%d", ev.Node, ev.Peer)]; ok {
			r.inj.Remove(id)
		}
		// The partitioned side went suspect/dead on the far side; the
		// detector must re-admit it once heartbeats flow again.
		if r.alive[ev.Node] {
			r.awaitReadmission(ev.Node)
		}
	}
}

// restartNode revives one previously crashed node on its original address.
func (r *run) restartNode(at, node int) {
	r.logf("[q %d] restart node=%d", at, node)
	if r.alive[node] {
		return
	}
	// Same address: peers re-admit it via the failure detector once its
	// heartbeats resume. The OS may hold the port briefly; retry.
	var n *live.Node
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		n, err = r.startNode(node, r.addrs[node])
		if err == nil {
			break
		}
		time.Sleep(40 * time.Millisecond)
	}
	if err != nil {
		r.failf("restart node %d on %s: %v", node, r.addrs[node], err)
		return
	}
	for j := range r.nodes {
		if j != node {
			n.AddPeer(r.addrs[j])
		}
	}
	r.nodes[node] = n
	r.alive[node] = true
	r.awaitReadmission(node)
	// Re-admission proves the *peers* hear the revived node; a sharded
	// revived node must additionally hear its peers' shard claims before it
	// can serve a scatter — asking it inside that window is a planned "no
	// live replica" failure, not a fault-tolerance violation.
	if r.shardK > 0 {
		r.awaitCompleteMap(node)
	}
}

// awaitCompleteMap blocks until node i's own composed shard map has a live
// replica for every shard.
func (r *run) awaitCompleteMap(i int) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := live.QueryStatus(r.addrs[i], time.Second)
		if err == nil && st.Shard != nil && st.Shard.Complete {
			return
		}
		time.Sleep(r.cfg.Heartbeat)
	}
	r.failf("node %d shard map did not complete within 10s of restart", i)
}

// settleWindow is how long a fault window is held open so the failure
// detector can cross its dead threshold (DeadAfter defaults to 6 missed
// beats; 8 adds slack for scheduling jitter).
func (r *run) settleWindow() time.Duration { return 8 * r.cfg.Heartbeat }

func (r *run) settle() { time.Sleep(r.settleWindow()) }

// awaitReadmission blocks until every other live node's failure detector
// reports the node alive again — the detector-gating guarantee, asserted at
// runtime (a violation becomes a Failure).
func (r *run) awaitReadmission(i int) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for j, m := range r.nodes {
			if j == i || !r.alive[j] {
				continue
			}
			if m.PeerState(r.addrs[i]) != live.PeerAlive {
				all = false
				break
			}
		}
		if all {
			r.logf("[event] node=%d re-admitted by all peers", i)
			return
		}
		time.Sleep(r.cfg.Heartbeat)
	}
	r.failf("node %d was not re-admitted within 10s", i)
}

// collectCounters sums the fault-tolerance counters across surviving nodes
// (informational; excluded from the deterministic log).
func (r *run) collectCounters() {
	var c Counters
	for i, n := range r.nodes {
		if !r.alive[i] || n == nil {
			continue
		}
		st, err := live.QueryStatus(n.Addr(), 2*time.Second)
		if err != nil {
			continue
		}
		c.Retries += st.Metrics.Retries
		c.BreakerTrips += st.Metrics.BreakerTrips
		c.Readmissions += st.Metrics.Readmissions
		c.Forwards += st.Metrics.ForwardsOut
		c.Failures += st.Metrics.RequestFailures
		c.FlightRecords += st.Metrics.FlightRecords
		c.RouteSkips += st.Metrics.RouteSkips
		c.StaleFallbacks += st.Metrics.RouteFallbacksStale
		c.SummaryPulls += st.Metrics.SummaryPullsSent
	}
	stats := r.inj.Stats()
	c.Injected = stats.Dropped + stats.Delayed + stats.Duplicated
	r.res.Metrics = c
	if r.cfg.Out != nil {
		fmt.Fprintf(r.cfg.Out, "counters (informational): retries=%d breaker_trips=%d readmissions=%d forwards=%d request_failures=%d injected=%d flight_records=%d route_skips=%d stale_fallbacks=%d summary_pulls=%d\n",
			c.Retries, c.BreakerTrips, c.Readmissions, c.Forwards, c.Failures, c.Injected, c.FlightRecords, c.RouteSkips, c.StaleFallbacks, c.SummaryPulls)
	}
}

// buildSchedule plans the fault events for a scenario. Victim choices come
// from the seeded rng, so different seeds exercise different victims while
// the same seed replays the same plan.
func buildSchedule(cfg Config, rng *rand.Rand) []event {
	q := cfg.Questions
	pick := func(exclude int) int {
		for {
			v := rng.Intn(cfg.Nodes)
			if v != exclude {
				return v
			}
		}
	}
	at := func(frac float64) int {
		i := int(frac * float64(q))
		if i >= q {
			i = q - 1
		}
		return i
	}
	switch cfg.Scenario {
	case ScenarioCrash:
		v := pick(-1)
		return []event{
			{At: at(0.25), Kind: "crashMid", Node: v},
			{At: at(0.70), Kind: "restart", Node: v},
		}
	case ScenarioBlackout:
		v := pick(-1)
		return []event{
			{At: at(0.25), Kind: "blackout", Node: v},
			{At: at(0.70), Kind: "lift", Node: v},
		}
	case ScenarioPartition:
		a := pick(-1)
		b := pick(a)
		return []event{
			{At: at(0.25), Kind: "partition", Node: a, Peer: b},
			{At: at(0.70), Kind: "heal", Node: a, Peer: b},
		}
	case ScenarioShardLoss:
		// Node carries the *shard* id here; the concrete victims (all replicas
		// but one survivor) are derived deterministically at fire time from the
		// shard placement and the serving node.
		s := rng.Intn(2) // K is normalized to <= 2 in the shardloss setup
		return []event{
			{At: at(0.25), Kind: "shardLossMid", Node: s},
			{At: at(0.70), Kind: "restart"},
		}
	case ScenarioStaleRoute:
		// Node carries the shard id, Peer the replica index of the victim; the
		// target (a node outside the shard's replica set) is derived at fire
		// time. Late placement gives the summary gossip time to converge on
		// ordinary questions first.
		s := rng.Intn(2)
		return []event{
			{At: at(0.45), Kind: "staleRoute", Node: s, Peer: rng.Intn(2)},
			{At: at(0.80), Kind: "restart"},
		}
	default: // mixed: phases are disjoint so each recovery completes cleanly
		v1 := pick(-1)
		a := pick(-1)
		b := pick(a)
		v2 := pick(v1)
		return []event{
			{At: at(0.10), Kind: "blackout", Node: v1},
			{At: at(0.25), Kind: "lift", Node: v1},
			{At: at(0.40), Kind: "partition", Node: a, Peer: b},
			{At: at(0.55), Kind: "heal", Node: a, Peer: b},
			{At: at(0.70), Kind: "crashMid", Node: v2},
			{At: at(0.90), Kind: "restart", Node: v2},
		}
	}
}
