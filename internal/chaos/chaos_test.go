package chaos

import (
	"strings"
	"testing"
	"time"

	"distqa/internal/core"
	"distqa/internal/corpus"
	"distqa/internal/fault"
	"distqa/internal/index"
	"distqa/internal/qa"
	"distqa/internal/trace"
)

// TestChaosRunSucceeds is the harness's own smoke test: a small mixed
// schedule on three nodes must answer every question correctly.
func TestChaosRunSucceeds(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes a few seconds")
	}
	res, err := Run(Config{Seed: 3, Nodes: 3, Questions: 8})
	if err != nil {
		t.Fatalf("chaos: %v", err)
	}
	if !res.OK() {
		t.Fatalf("chaos run failed: asked=%d correct=%d failures=%v",
			res.Asked, res.Correct, res.Failures)
	}
	if res.Metrics.Injected == 0 {
		t.Fatal("schedule injected no faults — the run proved nothing")
	}
}

// TestChaosShardLoss: the sharded topology (K=2, R=2, chained declustering)
// must keep answering correctly when all-but-one replica of a shard dies
// mid-question — the scatter-gather failover path, proven under real faults.
func TestChaosShardLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes a few seconds")
	}
	res, err := Run(Config{Seed: 7, Nodes: 3, Questions: 8, Scenario: ScenarioShardLoss})
	if err != nil {
		t.Fatalf("chaos shardloss: %v", err)
	}
	if !res.OK() {
		t.Fatalf("shardloss run failed: asked=%d correct=%d failures=%v",
			res.Asked, res.Correct, res.Failures)
	}
	log := res.EventLog()
	if !strings.Contains(log, "shardloss shard=") {
		t.Fatalf("shardloss run never planned a replica loss:\n%s", log)
	}
}

// TestChaosShardLossDeterministic: the shardloss schedule (shard pick,
// survivor/victim derivation, restart) is a pure function of the seed.
func TestChaosShardLossDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes a few seconds")
	}
	cfg := Config{Seed: 19, Nodes: 3, Questions: 6, Scenario: ScenarioShardLoss}
	first, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	second, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if !first.OK() || !second.OK() {
		t.Fatalf("runs failed: %v / %v", first.Failures, second.Failures)
	}
	if first.EventLog() != second.EventLog() {
		t.Fatalf("shardloss event logs differ for the same seed:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			first.EventLog(), second.EventLog())
	}
}

// TestChaosStaleRoute: the selective-routing staleness contract under a real
// failover — killing a replica bumps the shard-map epoch, the next routed
// question must fall back on its stale summaries (answering correctly), and
// revalidation must restore selective routing.
func TestChaosStaleRoute(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes a few seconds")
	}
	res, err := Run(Config{Seed: 5, Nodes: 3, Questions: 8, Scenario: ScenarioStaleRoute})
	if err != nil {
		t.Fatalf("chaos staleroute: %v", err)
	}
	if !res.OK() {
		t.Fatalf("staleroute run failed: asked=%d correct=%d failures=%v",
			res.Asked, res.Correct, res.Failures)
	}
	log := res.EventLog()
	for _, want := range []string{
		"staleroute shard=",
		"staleroute summaries fresh=true",
		"staleroute epoch bumped=true",
		"fallback=true",
		"selective=true",
	} {
		if !strings.Contains(log, want) {
			t.Fatalf("staleroute log missing %q:\n%s", want, log)
		}
	}
	if res.Metrics.StaleFallbacks == 0 {
		t.Fatal("staleroute run recorded no stale-summary fallbacks")
	}
	if res.Metrics.SummaryPulls == 0 {
		t.Fatal("staleroute run recorded no summary pulls — gossip never ran")
	}
}

// TestChaosStaleRouteDeterministic: the staleroute schedule and its polled
// assertions are a pure function of the seed — byte-identical event logs.
func TestChaosStaleRouteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes a few seconds")
	}
	cfg := Config{Seed: 23, Nodes: 3, Questions: 6, Scenario: ScenarioStaleRoute}
	first, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	second, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if !first.OK() || !second.OK() {
		t.Fatalf("runs failed: %v / %v", first.Failures, second.Failures)
	}
	if first.EventLog() != second.EventLog() {
		t.Fatalf("staleroute event logs differ for the same seed:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			first.EventLog(), second.EventLog())
	}
}

// TestChaosEventLogDeterministic: the same seed must reproduce a
// byte-identical event log (the acceptance criterion behind
// `qabench -chaos -seed N` being replayable).
func TestChaosEventLogDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes a few seconds")
	}
	cfg := Config{Seed: 11, Nodes: 3, Questions: 6, Scenario: ScenarioBlackout}
	first, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	second, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if !first.OK() || !second.OK() {
		t.Fatalf("runs failed: %v / %v", first.Failures, second.Failures)
	}
	if first.EventLog() != second.EventLog() {
		t.Fatalf("event logs differ for the same seed:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			first.EventLog(), second.EventLog())
	}
}

// TestChaosFlightRecorderStaysDeterministic pins the PR-6 contract: the
// always-on flight recorder must actually retain records through a chaos run
// (it is not disabled alongside the caches) while leaving the seeded event
// log byte-identical across replays — it reads no clocks of its own and
// takes nothing from the schedule's rng.
func TestChaosFlightRecorderStaysDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes a few seconds")
	}
	cfg := Config{Seed: 7, Nodes: 3, Questions: 6, Scenario: ScenarioCrash}
	first, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	second, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if !first.OK() || !second.OK() {
		t.Fatalf("runs failed: %v / %v", first.Failures, second.Failures)
	}
	if first.EventLog() != second.EventLog() {
		t.Fatalf("flight recorder perturbed the event log:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			first.EventLog(), second.EventLog())
	}
	if first.Metrics.FlightRecords == 0 {
		t.Fatal("flight recorder retained nothing during the chaos run")
	}
}

// simReplay runs one simulated DQA deployment under a seeded fault schedule
// and returns its full scheduling trace plus the answers, for the
// determinism comparison below.
func simReplay(eng *qa.Engine, coll *corpus.Collection, seed int64) (string, []string) {
	inj := fault.New(seed)
	// Scripted schedule keyed by the simulator's stable node names: node N2
	// suffers an asymmetric partition towards N1, and every transfer out of
	// N3 is delayed. Plus a probabilistic 30% transfer drop anywhere, which
	// exercises the seeded rng under virtual time.
	inj.Add(fault.Rule{From: "N2", To: "N1", Op: fault.OpTransfer, Drop: true, MaxHits: 4})
	inj.Add(fault.Rule{From: "N3", Op: fault.OpTransfer, Delay: 20 * time.Millisecond})
	inj.Add(fault.Rule{Op: fault.OpTransfer, Prob: 0.3, Drop: true, MaxHits: 6})

	log := trace.New()
	cfg := core.DefaultConfig(4, core.DQA)
	cfg.Trace = log
	sys := core.NewSystem(cfg, eng)
	sys.Net.SetInjector(inj)
	for i := 0; i < 8; i++ {
		f := coll.Facts[i%len(coll.Facts)]
		sys.Submit(float64(i)*0.5, i, f.Question)
	}
	sys.RunToCompletion()

	var answers []string
	for _, r := range sys.Results() {
		top := "<none>"
		if len(r.Answers) > 0 {
			top = r.Answers[0].Text
		}
		answers = append(answers, top)
	}
	return log.String(), answers
}

// TestSimulatorFaultReplayDeterministic: the virtual-time simulator with an
// installed fault injector must be a pure function of the seed — two
// in-process runs produce byte-identical scheduling traces and identical
// answers.
func TestSimulatorFaultReplayDeterministic(t *testing.T) {
	coll := corpus.Generate(corpus.Tiny())
	eng := qa.NewEngine(coll, index.BuildAll(coll))

	trace1, answers1 := simReplay(eng, coll, 42)
	trace2, answers2 := simReplay(eng, coll, 42)

	if trace1 != trace2 {
		t.Fatal("same seed + fault schedule produced different simulator traces")
	}
	if len(answers1) != len(answers2) {
		t.Fatalf("answer counts differ: %d vs %d", len(answers1), len(answers2))
	}
	for i := range answers1 {
		if answers1[i] != answers2[i] {
			t.Fatalf("answer %d differs: %q vs %q", i, answers1[i], answers2[i])
		}
	}
	if len(trace1) == 0 {
		t.Fatal("empty trace — the run recorded nothing")
	}

	// A different seed must be allowed to diverge (the injector's
	// probabilistic rule actually consumes randomness).
	trace3, _ := simReplay(eng, coll, 43)
	if trace3 == trace1 {
		t.Log("note: seeds 42 and 43 produced identical traces (faults may not have perturbed scheduling)")
	}
}
