// Package model implements the paper's analytical performance model
// (Section 5): the inter-question parallelism model (Equations 9-23,
// Figure 8) and the intra-question parallelism model (Equations 24-36,
// Figure 9, Table 4), plus the practical processor limit of Equation 34.
//
// Parameter provenance. The paper plots Figure 8/9 and Table 4 from TREC-9
// measurements (its Figure 8(b) parameter table is unreadable in the
// available scan), so the defaults here are re-derived from the quantities
// the paper does state: T ≈ 94 s per sequential TREC-9 question split
// 1.2 % QP / 26.5 % PR / 2.2 % PS / 0.1 % PO / 69.7 % AP (Table 2), ~1450
// retrieved and ~880 accepted paragraphs of ~250 bytes (Section 4.1.3,
// Figure 7), N_a = 5 answers of ~250 bytes, 64-byte load packets at 1 Hz,
// and Q = 8 questions per processor with the Table 7 migration rates. With
// these inputs the model reproduces the paper's headline analytical
// results: efficiency ≈ 0.9 at 1000 processors on a 1 Gbps network
// (Figure 8) and a practical intra-question limit of ~11-95 processors with
// speedups ~6-48 across the Table 4 bandwidth grid.
package model

import "math"

// ---------------------------------------------------------------------------
// Inter-question parallelism (Section 5.1)

// InterParams parameterises the system speedup model of Equation 23.
type InterParams struct {
	// T is the average sequential question time in seconds.
	T float64
	// Q is the average number of questions per processor.
	Q float64
	// TLoad is t_load, the CPU cost of one local load measurement.
	TLoad float64
	// SLoad is S_load, the load broadcast packet size in bytes.
	SLoad float64
	// SQ is S_q, the question size in bytes.
	SQ float64
	// SA is S_a, the answer size in bytes; NA is N_a, answers per question.
	SA float64
	NA float64
	// SPara is S_para, the average paragraph size in bytes.
	SPara float64
	// NP and NPA are N_p (retrieved) and N_pa (accepted) paragraph counts.
	NP  float64
	NPA float64
	// PQA, PPR, PAP are the migration probabilities at the three
	// dispatching points; PNet is the probability a task uses the network.
	PQA  float64
	PPR  float64
	PAP  float64
	PNet float64
	// BMem is the local memory bandwidth in bytes/second.
	BMem float64
	// DispatchCPU is the per-node cost of one dispatcher table scan
	// (Equation 15's linear factor).
	DispatchCPU float64
}

// TREC9InterParams returns the re-derived Figure 8 parameter set.
func TREC9InterParams() InterParams {
	return InterParams{
		T:           94,
		Q:           8,
		TLoad:       0.01,
		SLoad:       64,
		SQ:          100,
		SA:          250,
		NA:          5,
		SPara:       250,
		NP:          1450,
		NPA:         880,
		PQA:         0.40, // Table 7: 17/32 … 37/96
		PPR:         0.42,
		PAP:         0.41,
		PNet:        0.75,
		BMem:        800e6,
		DispatchCPU: 20e-6,
	}
}

// MonitorOverhead is Equation 14: per-question load monitoring overhead for
// an N-processor system with network bandwidth netBps (bits/second).
func (p InterParams) MonitorOverhead(n int, netBps float64) float64 {
	bnet := netBps / 8
	perSecond := p.TLoad + float64(n)*p.SLoad/bnet + float64(n)*p.SLoad/p.BMem
	return p.T * perSecond
}

// DispatchOverhead is Equation 15: the three dispatchers each scan a load
// table that grows linearly with N.
func (p InterParams) DispatchOverhead(n int) float64 {
	return 3 * p.DispatchCPU * float64(n)
}

// MigrationOverhead is Equation 20: expected per-question migration cost.
// The available per-flow network bandwidth is B_net/(N·p_net·Q), so the
// per-byte cost grows linearly with system size.
func (p InterParams) MigrationOverhead(n int, netBps float64) float64 {
	bnet := netBps / 8
	bytes := p.PQA*(p.SQ+p.NA*p.SA) + p.PPR*p.NP*p.SPara + p.PAP*p.NPA*p.SPara
	perByte := float64(n) * p.PNet * p.Q / bnet
	return bytes * perByte
}

// SystemSpeedup is Equation 23: the N-processor throughput speedup over the
// sequential system when all three dispatchers run but partitioning is
// disabled (high-load regime).
func (p InterParams) SystemSpeedup(n int, netBps float64) float64 {
	if n <= 0 {
		return 0
	}
	overhead := p.MonitorOverhead(n, netBps) + p.DispatchOverhead(n) + p.MigrationOverhead(n, netBps)
	return float64(n) * p.T / (p.T + overhead)
}

// SystemEfficiency is speedup divided by N.
func (p InterParams) SystemEfficiency(n int, netBps float64) float64 {
	return p.SystemSpeedup(n, netBps) / float64(n)
}

// ---------------------------------------------------------------------------
// Intra-question parallelism (Section 5.2)

// IntraParams parameterises the individual-question speedup model of
// Equations 24-36. Module times are expressed so the model responds to disk
// bandwidth the way the paper's does: PR time is PRBytes/B_disk.
type IntraParams struct {
	// TQP and TPO are the inherently sequential module times (Equation 25).
	TQP float64
	TPO float64
	// TPS and TAP are the parallelizable CPU module times.
	TPS float64
	TAP float64
	// PRBytes is the disk traffic of the PR module, so t_pr = PRBytes/B_disk.
	PRBytes float64
	// TransferBytes is the partitioning network traffic of Equations 27+29:
	// (N_p + N_pa)·S_para.
	TransferBytes float64
	// MergeBytes is the partitioning disk traffic (paragraph merging reads
	// plus answer-set reads), charged at B_disk.
	MergeBytes float64
}

// TREC9IntraParams returns the re-derived Figure 9 / Table 4 parameters.
func TREC9IntraParams() IntraParams {
	return IntraParams{
		TQP:           0.84,
		TPO:           0.10,
		TPS:           2.1,
		TAP:           65.5,
		PRBytes:       311e6, // t_pr = 24.9 s at 100 Mbps disk
		TransferBytes: (1450 + 880) * 250,
		MergeBytes:    (1450 + 880) * 250,
	}
}

// TPar is Equation 32: the parallelizable fraction T_PR + T_PS + T_AP.
func (p IntraParams) TPar(diskBps float64) float64 {
	return p.PRBytes/(diskBps/8) + p.TPS + p.TAP
}

// TSeq is Equation 33: the sequential fraction — QP, PO, and the
// partitioning overhead of Equations 27 and 29.
func (p IntraParams) TSeq(netBps, diskBps float64) float64 {
	return p.TQP + p.TPO + p.TransferBytes/(netBps/8) + p.MergeBytes/(diskBps/8)
}

// T1 is Equation 24: the sequential question time.
func (p IntraParams) T1(diskBps float64) float64 {
	return p.TQP + p.TPO + p.TPar(diskBps)
}

// TN is Equation 31: the N-processor question time.
func (p IntraParams) TN(n int, netBps, diskBps float64) float64 {
	return p.TSeq(netBps, diskBps) + p.TPar(diskBps)/float64(n)
}

// QuestionSpeedup is Equation 35/36.
func (p IntraParams) QuestionSpeedup(n int, netBps, diskBps float64) float64 {
	if n <= 0 {
		return 0
	}
	return p.T1(diskBps) / p.TN(n, netBps, diskBps)
}

// NMax is Equation 34: the practical upper limit on processors — the point
// where the constant part of T_N equals the shrinking parallel part, beyond
// which added processors mostly buy overhead.
func (p IntraParams) NMax(netBps, diskBps float64) int {
	n := p.TPar(diskBps) / p.TSeq(netBps, diskBps)
	if n < 1 {
		return 1
	}
	return int(math.Floor(n))
}

// SpeedupAtNMax is the speedup at the practical limit (the paper's Table 4
// S values); by construction it is T1/(2·TSeq) up to integer rounding.
func (p IntraParams) SpeedupAtNMax(netBps, diskBps float64) float64 {
	return p.QuestionSpeedup(p.NMax(netBps, diskBps), netBps, diskBps)
}

// ---------------------------------------------------------------------------
// Analytical speedup from measured module times (Table 10's first column)

// Measured carries per-module times measured on the 1-processor system plus
// the partitioning traffic, for computing the analytical speedup the
// experiments compare against (Table 10).
type Measured struct {
	TQP, TPR, TPS, TPO, TAP float64
	// NetBytes and DiskBytes are the per-question partitioning traffic.
	NetBytes  float64
	DiskBytes float64
}

// Speedup evaluates Equations 31/35 directly from measured times.
func (m Measured) Speedup(n int, netBps, diskBps float64) float64 {
	tpar := m.TPR + m.TPS + m.TAP
	tseq := m.TQP + m.TPO + m.NetBytes/(netBps/8) + m.DiskBytes/(diskBps/8)
	t1 := m.TQP + m.TPO + tpar
	return t1 / (tseq + tpar/float64(n))
}
