package model

import (
	"testing"
	"testing/quick"
)

func TestSystemSpeedupHeadline(t *testing.T) {
	// The paper's headline analytical results (Section 5.1): efficiency
	// ≈ 0.9 for 1000 processors on a 1 Gbps network, and decent efficiency
	// for 100 processors on 100 Mbps.
	p := TREC9InterParams()
	eff1000 := p.SystemEfficiency(1000, 1*Gbps)
	if eff1000 < 0.82 || eff1000 > 0.97 {
		t.Errorf("efficiency(1000, 1Gbps) = %.3f, want ≈ 0.9", eff1000)
	}
	eff100 := p.SystemEfficiency(100, 100*Mbps)
	if eff100 < 0.75 || eff100 > 0.98 {
		t.Errorf("efficiency(100, 100Mbps) = %.3f, want ≈ 0.8+", eff100)
	}
	// A slow network must collapse efficiency at scale.
	if e := p.SystemEfficiency(1000, 10*Mbps); e > 0.5 {
		t.Errorf("efficiency(1000, 10Mbps) = %.3f, should collapse", e)
	}
}

func TestSystemSpeedupMonotonicInBandwidth(t *testing.T) {
	p := TREC9InterParams()
	for _, n := range []int{10, 100, 500, 1000} {
		s10 := p.SystemSpeedup(n, 10*Mbps)
		s100 := p.SystemSpeedup(n, 100*Mbps)
		s1000 := p.SystemSpeedup(n, 1*Gbps)
		if !(s10 <= s100 && s100 <= s1000) {
			t.Errorf("n=%d: speedup not monotone in bandwidth: %f %f %f", n, s10, s100, s1000)
		}
	}
}

func TestSystemSpeedupBelowLinear(t *testing.T) {
	f := func(nRaw uint16, netIdx uint8) bool {
		n := 1 + int(nRaw)%2000
		nets := []float64{1 * Mbps, 10 * Mbps, 100 * Mbps, 1 * Gbps}
		net := nets[int(netIdx)%len(nets)]
		p := TREC9InterParams()
		s := p.SystemSpeedup(n, net)
		return s > 0 && s <= float64(n)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntraSpeedupShape(t *testing.T) {
	p := TREC9IntraParams()
	// Speedup grows with N then saturates: S(90) >> S(4), S asymptote below
	// T1/TSeq.
	s4 := p.QuestionSpeedup(4, 1*Gbps, 100*Mbps)
	s90 := p.QuestionSpeedup(90, 1*Gbps, 100*Mbps)
	if s4 < 3 || s4 > 4 {
		t.Errorf("S(4) = %.2f, want ≈ 3.8 (near-linear at small N)", s4)
	}
	if s90 <= s4*5 {
		t.Errorf("S(90) = %.2f should far exceed S(4) = %.2f", s90, s4)
	}
	limit := p.T1(100*Mbps) / p.TSeq(1*Gbps, 100*Mbps)
	for _, n := range []int{10, 100, 1000} {
		if s := p.QuestionSpeedup(n, 1*Gbps, 100*Mbps); s >= limit {
			t.Errorf("S(%d) = %.2f exceeds asymptote %.2f", n, s, limit)
		}
	}
}

func TestSpeedupDecreasesWithDiskBandwidth(t *testing.T) {
	// The paper's counter-intuitive Figure 9(b) result: faster disks lower
	// the question speedup, because the parallelizable PR time shrinks while
	// the distribution overhead stays.
	p := TREC9IntraParams()
	for _, n := range []int{20, 60, 100} {
		slow := p.QuestionSpeedup(n, 1*Gbps, 100*Mbps)
		fast := p.QuestionSpeedup(n, 1*Gbps, 1*Gbps)
		if fast >= slow {
			t.Errorf("n=%d: speedup with fast disk (%.2f) should be below slow disk (%.2f)", n, fast, slow)
		}
	}
}

func TestNMaxTable4Corners(t *testing.T) {
	// Paper Table 4 corners: N ranges from ~11 (slow net, fast disk) to
	// ~93 (fast net, slow disk); speedups from ~5.6 to ~47.7. Allow modest
	// tolerance — the paper's exact parameter table is unreadable and the
	// values here are re-derived (see package comment).
	p := TREC9IntraParams()
	cases := []struct {
		net, disk    float64
		nLo, nHi     int
		sLo, sHi     float64
		paperN       int
		paperSpeedup float64
	}{
		{1 * Mbps, 100 * Mbps, 14, 21, 7.0, 10.5, 17, 8.65},
		{1 * Gbps, 100 * Mbps, 80, 110, 40, 56, 93, 47.73},
		{1 * Mbps, 1 * Gbps, 9, 16, 4.5, 8.0, 11, 5.59},
		{1 * Gbps, 1 * Gbps, 55, 90, 28, 45, 60, 31.34},
	}
	for _, c := range cases {
		n := p.NMax(c.net, c.disk)
		s := p.SpeedupAtNMax(c.net, c.disk)
		if n < c.nLo || n > c.nHi {
			t.Errorf("NMax(net=%.0g, disk=%.0g) = %d, want in [%d,%d] (paper %d)",
				c.net, c.disk, n, c.nLo, c.nHi, c.paperN)
		}
		if s < c.sLo || s > c.sHi {
			t.Errorf("S@NMax(net=%.0g, disk=%.0g) = %.2f, want in [%.1f,%.1f] (paper %.2f)",
				c.net, c.disk, s, c.sLo, c.sHi, c.paperSpeedup)
		}
	}
}

func TestTable4Structure(t *testing.T) {
	rows := Table4(TREC9IntraParams())
	if len(rows) != 16 {
		t.Fatalf("Table 4 has %d rows, want 16", len(rows))
	}
	// Along each disk row, NMax must grow with network bandwidth.
	for d := 0; d < 4; d++ {
		for i := 1; i < 4; i++ {
			prev, cur := rows[d*4+i-1], rows[d*4+i]
			if cur.NMax < prev.NMax {
				t.Errorf("NMax not monotone in net bandwidth: %+v -> %+v", prev, cur)
			}
		}
	}
	// Down each net column, NMax must fall with disk bandwidth.
	for c := 0; c < 4; c++ {
		for i := 1; i < 4; i++ {
			prev, cur := rows[(i-1)*4+c], rows[i*4+c]
			if cur.NMax > prev.NMax {
				t.Errorf("NMax not decreasing in disk bandwidth: %+v -> %+v", prev, cur)
			}
		}
	}
}

func TestFigureCurves(t *testing.T) {
	f8 := Figure8(TREC9InterParams())
	if len(f8) != 3 {
		t.Fatalf("Figure 8 has %d curves", len(f8))
	}
	for _, c := range f8 {
		if len(c.N) != len(c.Y) || len(c.N) < 100 {
			t.Fatalf("curve %s malformed", c.Label)
		}
	}
	// Faster network curve dominates at the right edge.
	last := len(f8[0].Y) - 1
	if !(f8[0].Y[last] < f8[1].Y[last] && f8[1].Y[last] < f8[2].Y[last]) {
		t.Error("Figure 8 curves not ordered by bandwidth at N=1000")
	}

	f9a := Figure9a(TREC9IntraParams())
	if len(f9a) != 4 {
		t.Fatalf("Figure 9a has %d curves", len(f9a))
	}
	last = len(f9a[0].Y) - 1
	if !(f9a[0].Y[last] < f9a[3].Y[last]) {
		t.Error("Figure 9a: 1 Gbps net should beat 1 Mbps at N=200")
	}

	f9b := Figure9b(TREC9IntraParams())
	if len(f9b) != 4 {
		t.Fatalf("Figure 9b has %d curves", len(f9b))
	}
	if !(f9b[0].Y[last] > f9b[3].Y[last]) {
		t.Error("Figure 9b: slow disk should show higher speedup than fast disk")
	}
}

func TestMeasuredSpeedup(t *testing.T) {
	// With the paper's Table 8 one-processor module times and testbed
	// bandwidths, the analytical speedups should be near Table 10's
	// analytical column (3.84 / 7.34 / 10.60).
	m := Measured{
		TQP: 0.81, TPR: 38.01, TPS: 2.06, TPO: 0.02, TAP: 117.55,
		NetBytes:  (1450 + 880) * 250,
		DiskBytes: (1450 + 880) * 250,
	}
	cases := []struct {
		n     int
		paper float64
	}{
		{4, 3.84}, {8, 7.34}, {12, 10.60},
	}
	for _, c := range cases {
		got := m.Speedup(c.n, 100*Mbps, 200*Mbps)
		if got < c.paper*0.85 || got > c.paper*1.15 {
			t.Errorf("analytical speedup(%d) = %.2f, want ≈ %.2f (±15%%)", c.n, got, c.paper)
		}
	}
}

func TestEdgeCases(t *testing.T) {
	p := TREC9IntraParams()
	if p.QuestionSpeedup(0, Gbps, Gbps) != 0 {
		t.Error("speedup at n=0 should be 0")
	}
	if p.NMax(1, 1) < 1 {
		t.Error("NMax must be at least 1")
	}
	ip := TREC9InterParams()
	if ip.SystemSpeedup(0, Gbps) != 0 {
		t.Error("system speedup at n=0 should be 0")
	}
	if s := ip.SystemSpeedup(1, Gbps); s < 0.9 || s > 1.0 {
		t.Errorf("S(1) = %.3f, want just under 1", s)
	}
}
