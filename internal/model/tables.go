package model

// Bandwidth constants for the paper's sweeps, in bits/second.
const (
	Mbps = 1e6
	Gbps = 1e9
)

// Table4Row is one cell block of the paper's Table 4: for a (disk, net)
// bandwidth pair, the practical processor limit and its speedup.
type Table4Row struct {
	DiskBps float64
	NetBps  float64
	NMax    int
	Speedup float64
}

// Table4 computes the paper's Table 4 grid: disk bandwidths down the rows,
// network bandwidths across the columns.
func Table4(p IntraParams) []Table4Row {
	disks := []float64{100 * Mbps, 250 * Mbps, 500 * Mbps, 1 * Gbps}
	nets := []float64{1 * Mbps, 10 * Mbps, 100 * Mbps, 1 * Gbps}
	var rows []Table4Row
	for _, d := range disks {
		for _, n := range nets {
			rows = append(rows, Table4Row{
				DiskBps: d,
				NetBps:  n,
				NMax:    p.NMax(n, d),
				Speedup: p.SpeedupAtNMax(n, d),
			})
		}
	}
	return rows
}

// Curve is one plotted series: speedup as a function of processor count.
type Curve struct {
	Label string
	N     []int
	Y     []float64
}

// Figure8 computes the analytical system speedup curves of Figure 8(a):
// processors 1..1000 for 10 Mbps, 100 Mbps and 1 Gbps networks.
func Figure8(p InterParams) []Curve {
	nets := []struct {
		label string
		bps   float64
	}{
		{"10 Mbps", 10 * Mbps},
		{"100 Mbps", 100 * Mbps},
		{"1 Gbps", 1 * Gbps},
	}
	ns := sweep(1000)
	var curves []Curve
	for _, net := range nets {
		c := Curve{Label: net.label, N: ns}
		for _, n := range ns {
			c.Y = append(c.Y, p.SystemSpeedup(n, net.bps))
		}
		curves = append(curves, c)
	}
	return curves
}

// Figure9a computes the question speedup curves of Figure 9(a): disk fixed
// at 1 Gbps, network swept over 1 Mbps - 1 Gbps, processors 1..200.
func Figure9a(p IntraParams) []Curve {
	nets := []struct {
		label string
		bps   float64
	}{
		{"1 Mbps", 1 * Mbps},
		{"10 Mbps", 10 * Mbps},
		{"100 Mbps", 100 * Mbps},
		{"1 Gbps", 1 * Gbps},
	}
	ns := sweep(200)
	var curves []Curve
	for _, net := range nets {
		c := Curve{Label: net.label, N: ns}
		for _, n := range ns {
			c.Y = append(c.Y, p.QuestionSpeedup(n, net.bps, 1*Gbps))
		}
		curves = append(curves, c)
	}
	return curves
}

// Figure9b computes the question speedup curves of Figure 9(b): network
// fixed at 1 Gbps, disk swept over 100 Mbps - 1 Gbps.
func Figure9b(p IntraParams) []Curve {
	disks := []struct {
		label string
		bps   float64
	}{
		{"100 Mbps", 100 * Mbps},
		{"250 Mbps", 250 * Mbps},
		{"500 Mbps", 500 * Mbps},
		{"1 Gbps", 1 * Gbps},
	}
	ns := sweep(200)
	var curves []Curve
	for _, d := range disks {
		c := Curve{Label: d.label, N: ns}
		for _, n := range ns {
			c.Y = append(c.Y, p.QuestionSpeedup(n, 1*Gbps, d.bps))
		}
		curves = append(curves, c)
	}
	return curves
}

// sweep returns 1 and every multiple of 5 up to max — enough resolution for
// the paper's plots without drowning text output.
func sweep(max int) []int {
	ns := []int{1}
	for n := 5; n <= max; n += 5 {
		ns = append(ns, n)
	}
	return ns
}
