package nlp

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	toks := Tokenize("Where is the Taj Mahal?")
	want := []string{"where", "is", "the", "taj", "mahal"}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Text != w {
			t.Fatalf("token %d = %q, want %q", i, toks[i].Text, w)
		}
		if toks[i].Pos != i {
			t.Fatalf("token %d has Pos %d", i, toks[i].Pos)
		}
	}
	if !toks[0].Capitalized || !toks[3].Capitalized {
		t.Fatal("Where and Taj should be marked capitalized")
	}
	if toks[1].Capitalized {
		t.Fatal("'is' should not be capitalized")
	}
}

func TestTokenizePunctuationAndNumbers(t *testing.T) {
	toks := Tokenize("In 1987, the Pope (John Paul II) toured.")
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.Text)
	}
	want := []string{"in", "1987", "the", "pope", "john", "paul", "ii", "toured"}
	if !reflect.DeepEqual(texts, want) {
		t.Fatalf("texts = %v, want %v", texts, want)
	}
	if !toks[1].Numeric {
		t.Fatal("1987 should be numeric")
	}
	if toks[7].Numeric {
		t.Fatal("'toured' should not be numeric")
	}
}

func TestTokenizeEmptyAndWhitespace(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("empty text produced %d tokens", len(got))
	}
	if got := Tokenize("  \t\n ,,, "); len(got) != 0 {
		t.Fatalf("punctuation-only text produced %d tokens", len(got))
	}
}

func TestStemmer(t *testing.T) {
	cases := map[string]string{
		"running":   "run",
		"cities":    "city",
		"buried":    "bury",
		"movements": "movement",
		"walked":    "walk",
		"quickly":   "quick",
		"dog":       "dog",
		"is":        "is",
		"answers":   "answer",
		"retrieval": "retrieval",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	f := func(s string) bool {
		w := strings.ToLower(s)
		if len(w) == 0 || len(w) > 20 {
			return true
		}
		for _, r := range w {
			if r < 'a' || r > 'z' {
				return true
			}
		}
		once := Stem(w)
		return len(Stem(once)) <= len(once) // stemming never grows a stem
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStopwords(t *testing.T) {
	for _, w := range []string{"the", "is", "of", "The", "WHERE"} {
		if !IsStopword(w) {
			t.Errorf("%q should be a stopword", w)
		}
	}
	for _, w := range []string{"pope", "taj", "disease"} {
		if IsStopword(w) {
			t.Errorf("%q should not be a stopword", w)
		}
	}
}

func TestContentWords(t *testing.T) {
	toks := Tokenize("Where is the actress Marion Davies buried?")
	content := ContentWords(toks)
	var texts []string
	for _, tk := range content {
		texts = append(texts, tk.Text)
	}
	want := []string{"actress", "marion", "davies", "buried"}
	if !reflect.DeepEqual(texts, want) {
		t.Fatalf("content = %v, want %v", texts, want)
	}
}

func TestGazetteerRecognize(t *testing.T) {
	g := NewGazetteer(map[EntityType][]string{
		Location: {"Taj Mahal", "Hollywood Cemetery", "India"},
		Person:   {"Marion Davies", "Pope John Paul II"},
		Disease:  {"Tourette's Syndrome"},
	})
	toks := Tokenize("The Taj Mahal in India was visited by Pope John Paul II.")
	ents := g.Recognize(toks)
	byText := map[string]EntityType{}
	for _, e := range ents {
		byText[e.Text] = e.Type
	}
	if byText["Taj Mahal"] != Location {
		t.Errorf("Taj Mahal not recognized as LOCATION: %v", ents)
	}
	if byText["India"] != Location {
		t.Errorf("India not recognized: %v", ents)
	}
	if byText["Pope John Paul II"] != Person {
		t.Errorf("Pope John Paul II not recognized as PERSON: %v", ents)
	}
}

func TestGazetteerLongestMatchWins(t *testing.T) {
	g := NewGazetteer(map[EntityType][]string{
		Location: {"New York", "New York City"},
	})
	ents := g.Recognize(Tokenize("I love New York City in spring"))
	if len(ents) != 1 || ents[0].Text != "New York City" {
		t.Fatalf("ents = %v, want single New York City match", ents)
	}
}

func TestRecognizePatterns(t *testing.T) {
	g := NewGazetteer(nil)
	ents := g.Recognize(Tokenize("On March 12 1987 it cost 500 dollars and drew 12000 visitors."))
	var types []EntityType
	for _, e := range ents {
		types = append(types, e.Type)
	}
	haveDate, haveMoney, haveQty := false, false, false
	for _, e := range ents {
		switch e.Type {
		case Date:
			haveDate = true
			if !strings.Contains(e.Text, "march") {
				t.Errorf("date entity %q should span the month", e.Text)
			}
		case Money:
			haveMoney = true
		case Quantity:
			haveQty = true
		}
	}
	if !haveDate || !haveMoney || !haveQty {
		t.Fatalf("missing pattern entities, got %v", types)
	}
}

func TestYearPattern(t *testing.T) {
	g := NewGazetteer(nil)
	ents := g.Recognize(Tokenize("the treaty of 1987"))
	if len(ents) != 1 || ents[0].Type != Date || ents[0].Text != "1987" {
		t.Fatalf("ents = %v, want one DATE 1987", ents)
	}
}

func TestEntityTypeStrings(t *testing.T) {
	for _, typ := range EntityTypes() {
		s := typ.String()
		if s == "UNKNOWN" {
			t.Fatalf("concrete type %d stringifies to UNKNOWN", typ)
		}
		back, err := ParseEntityType(s)
		if err != nil || back != typ {
			t.Fatalf("round trip failed for %v: %v %v", typ, back, err)
		}
	}
	if _, err := ParseEntityType("NOPE"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestAnalyzeQuestionTypes(t *testing.T) {
	cases := []struct {
		q    string
		want EntityType
	}{
		{"Where is the Taj Mahal?", Location},
		{"Where is the actress Marion Davies buried?", Location},
		{"What is the nationality of Pope John Paul II?", Nationality},
		{"Who invented the telephone?", Person},
		{"When did the war end?", Date},
		{"How many islands does the nation include?", Quantity},
		{"How much money did the museum cost?", Money},
		{"What disease causes involuntary movements?", Disease},
		{"What is the name of the rare neurological disease with symptoms such as involuntary movements?", Disease},
		{"What company built the bridge?", Organization},
		{"What city hosts the festival?", Location},
		{"What year did the expedition start?", Date},
	}
	for _, c := range cases {
		got := AnalyzeQuestion(c.q)
		if got.AnswerType != c.want {
			t.Errorf("AnalyzeQuestion(%q).AnswerType = %v, want %v", c.q, got.AnswerType, c.want)
		}
	}
}

func TestAnalyzeQuestionKeywords(t *testing.T) {
	a := AnalyzeQuestion("Where is the actress Marion Davies buried?")
	joined := strings.Join(a.Keywords, " ")
	for _, want := range []string{"marion", "davy", "bury"} {
		// stems: davies→davy? Stem("davies") = "davy"? "ies"→"y": davies→davy. buried→bury.
		if !strings.Contains(joined, want) {
			t.Errorf("keywords %v missing %q", a.Keywords, want)
		}
	}
	for _, bad := range []string{"where", "the", "is"} {
		if strings.Contains(" "+joined+" ", " "+bad+" ") {
			t.Errorf("keywords %v should not contain %q", a.Keywords, bad)
		}
	}
}

func TestAnalyzeQuestionDeduplicates(t *testing.T) {
	a := AnalyzeQuestion("What city is the city of bridges?")
	count := 0
	for _, k := range a.Keywords {
		if k == "city" {
			count++
		}
	}
	if count > 1 {
		t.Fatalf("keyword 'city' appears %d times, want ≤1", count)
	}
}

func TestTokenizeCapitalizedPerWord(t *testing.T) {
	toks := Tokenize("alpha Beta gamma Delta")
	wantCaps := []bool{false, true, false, true}
	for i, w := range wantCaps {
		if toks[i].Capitalized != w {
			t.Fatalf("token %d capitalized = %v, want %v", i, toks[i].Capitalized, w)
		}
	}
}

// Property: tokenization output positions are dense and ordered.
func TestTokenizePositionsProperty(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		for i, tk := range toks {
			if tk.Pos != i || tk.Text == "" {
				return false
			}
			if tk.Text != strings.ToLower(tk.Text) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
