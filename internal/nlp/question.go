package nlp

import "strings"

// QuestionAnalysis is the output of question classification: the expected
// answer type plus the content keywords to hand to paragraph retrieval.
// This mirrors the two goals of Falcon's Question Processing module
// (Section 1.1 of the paper): extract semantic information (the answer
// type) and select the retrieval keywords.
type QuestionAnalysis struct {
	AnswerType EntityType
	// Keywords are stemmed content words in question order, deduplicated.
	Keywords []string
	// Tokens is the full normalised token stream of the question.
	Tokens []Token
}

// classRule maps a trigger phrase in the question to an answer type. Rules
// are checked in order; the first match wins.
type classRule struct {
	phrase string
	typ    EntityType
}

var classRules = []classRule{
	// Specific "what ..." constructions must precede the generic wh-rules.
	{"what is the nationality", Nationality},
	{"what nationality", Nationality},
	{"what disease", Disease},
	{"what is the name of the disease", Disease},
	{"what illness", Disease},
	{"what syndrome", Disease},
	{"what company", Organization},
	{"what organization", Organization},
	{"what city", Location},
	{"what country", Location},
	{"what state", Location},
	{"what place", Location},
	{"what year", Date},
	{"what date", Date},
	{"what time", Date},
	{"how much money", Money},
	{"how much", Money},
	{"how many", Quantity},
	{"how long", Quantity},
	{"how far", Quantity},
	{"how old", Quantity},
	{"who", Person},
	{"whom", Person},
	{"whose", Person},
	{"where", Location},
	{"when", Date},
}

// Head-noun cues used for bare "what is ..." questions.
var headNounTypes = map[string]EntityType{
	"disease":      Disease,
	"illness":      Disease,
	"syndrome":     Disease,
	"nationality":  Nationality,
	"city":         Location,
	"country":      Location,
	"capital":      Location,
	"state":        Location,
	"river":        Location,
	"mountain":     Location,
	"place":        Location,
	"location":     Location,
	"company":      Organization,
	"corporation":  Organization,
	"organization": Organization,
	"agency":       Organization,
	"year":         Date,
	"date":         Date,
	"president":    Person,
	"actor":        Person,
	"actress":      Person,
	"author":       Person,
	"inventor":     Person,
	"scientist":    Person,
	"population":   Quantity,
	"height":       Quantity,
	"number":       Quantity,
	"cost":         Money,
	"price":        Money,
}

// AnalyzeQuestion classifies the expected answer type and selects retrieval
// keywords for a natural-language question.
func AnalyzeQuestion(question string) QuestionAnalysis {
	lower := strings.ToLower(question)
	tokens := Tokenize(question)

	typ := UnknownEntity
	for _, rule := range classRules {
		if strings.Contains(lower, rule.phrase) {
			typ = rule.typ
			break
		}
	}
	if typ == UnknownEntity {
		// Fall back on head-noun cues anywhere in the question.
		for _, t := range tokens {
			if ht, ok := headNounTypes[t.Text]; ok {
				typ = ht
				break
			}
		}
	}

	// Keyword selection: content words, stemmed, deduplicated, dropping the
	// interrogative machinery that survives stopword filtering.
	seen := make(map[string]bool)
	var keywords []string
	for _, t := range ContentWords(tokens) {
		if questionMachinery[t.Text] {
			continue
		}
		if seen[t.Stem] {
			continue
		}
		seen[t.Stem] = true
		keywords = append(keywords, t.Stem)
	}
	return QuestionAnalysis{AnswerType: typ, Keywords: keywords, Tokens: tokens}
}

// questionMachinery lists words that carry the question form rather than its
// content; they never make useful retrieval keywords.
var questionMachinery = map[string]bool{
	"what": true, "whats": true, "many": true, "much": true, "long": true,
	"far": true, "old": true, "kind": true, "type": true,
	"first": true, "rare": true,
	// Type head nouns name the expected answer class (already captured by
	// question classification), not retrievable content.
	"nationality": true, "disease": true, "illness": true, "syndrome": true,
	"company": true, "organization": true, "year": true, "date": true,
	"city": true, "country": true, "place": true, "money": true,
}
