package nlp

import (
	"fmt"
	"strings"
)

// EntityType is the semantic class of a candidate answer. The paper's
// examples (Table 1) cover DISEASE, LOCATION and NATIONALITY; the full
// taxonomy here matches the factual-question classes of TREC-8/9.
type EntityType int

// Entity classes recognised by the pipeline.
const (
	UnknownEntity EntityType = iota
	Person
	Location
	Organization
	Date
	Quantity
	Money
	Disease
	Nationality
	numEntityTypes
)

// EntityTypes lists every concrete entity class (excluding UnknownEntity).
func EntityTypes() []EntityType {
	out := make([]EntityType, 0, numEntityTypes-1)
	for t := Person; t < numEntityTypes; t++ {
		out = append(out, t)
	}
	return out
}

// String returns the paper-style upper-case name of the class.
func (t EntityType) String() string {
	switch t {
	case Person:
		return "PERSON"
	case Location:
		return "LOCATION"
	case Organization:
		return "ORGANIZATION"
	case Date:
		return "DATE"
	case Quantity:
		return "QUANTITY"
	case Money:
		return "MONEY"
	case Disease:
		return "DISEASE"
	case Nationality:
		return "NATIONALITY"
	default:
		return "UNKNOWN"
	}
}

// Entity is a typed span of text found by the recogniser.
type Entity struct {
	Type EntityType
	// Text is the canonical surface form.
	Text string
	// Start and End are token positions [Start, End) within the text the
	// entity was found in.
	Start, End int
}

// Gazetteer maps known multi-word names to entity types, the way Falcon's
// dictionaries back its named-entity recogniser. Lookups are by lower-cased
// full phrase; the recogniser additionally applies surface patterns for
// dates, quantities and money.
type Gazetteer struct {
	// phrases maps the lower-cased first word of each known name to the
	// candidate full phrases starting with it (longest first).
	phrases map[string][]gazEntry
	size    int
}

type gazEntry struct {
	words []string
	typ   EntityType
	text  string
}

// NewGazetteer builds a recogniser dictionary from per-type name lists.
func NewGazetteer(names map[EntityType][]string) *Gazetteer {
	g := &Gazetteer{phrases: make(map[string][]gazEntry)}
	for typ, list := range names {
		for _, name := range list {
			g.Add(typ, name)
		}
	}
	return g
}

// Add inserts one name into the dictionary.
func (g *Gazetteer) Add(typ EntityType, name string) {
	words := Words(name)
	if len(words) == 0 {
		return
	}
	head := words[0]
	entry := gazEntry{words: words, typ: typ, text: name}
	list := g.phrases[head]
	// Keep longest-first so greedy matching prefers "New York City" over
	// "New York".
	pos := len(list)
	for i, e := range list {
		if len(e.words) < len(words) {
			pos = i
			break
		}
	}
	list = append(list, gazEntry{})
	copy(list[pos+1:], list[pos:])
	list[pos] = entry
	g.phrases[head] = list
	g.size++
}

// Size reports the number of names in the dictionary.
func (g *Gazetteer) Size() int { return g.size }

// Recognize finds all typed entities in a token stream: dictionary matches
// first (greedy, longest-first, non-overlapping), then surface patterns for
// dates, quantities and money over the remaining tokens.
func (g *Gazetteer) Recognize(tokens []Token) []Entity {
	var out []Entity
	used := make([]bool, len(tokens))
	// Dictionary pass.
	for i := 0; i < len(tokens); i++ {
		if used[i] {
			continue
		}
		entries := g.phrases[tokens[i].Text]
		for _, e := range entries {
			if i+len(e.words) > len(tokens) {
				continue
			}
			match := true
			for k, w := range e.words {
				if tokens[i+k].Text != w || used[i+k] {
					match = false
					break
				}
			}
			if match {
				out = append(out, Entity{Type: e.typ, Text: e.text, Start: i, End: i + len(e.words)})
				for k := range e.words {
					used[i+k] = true
				}
				break
			}
		}
	}
	// Pattern pass: dates ("march 12 1987", "1987"), quantities, money.
	for i := 0; i < len(tokens); i++ {
		if used[i] {
			continue
		}
		t := tokens[i]
		switch {
		case isMonthName(t.Text):
			end := i + 1
			for end < len(tokens) && end < i+3 && tokens[end].Numeric && !used[end] {
				end++
			}
			out = append(out, Entity{Type: Date, Text: joinTokens(tokens[i:end]), Start: i, End: end})
			for k := i; k < end; k++ {
				used[k] = true
			}
		case t.Numeric && i+1 < len(tokens) && !used[i+1] &&
			(tokens[i+1].Text == "dollars" || tokens[i+1].Text == "usd"):
			out = append(out, Entity{Type: Money, Text: joinTokens(tokens[i : i+2]), Start: i, End: i + 2})
			used[i] = true
			used[i+1] = true
		case t.Numeric && len(t.Text) == 4 && (strings.HasPrefix(t.Text, "1") || strings.HasPrefix(t.Text, "2")):
			out = append(out, Entity{Type: Date, Text: t.Text, Start: i, End: i + 1})
			used[i] = true
		case t.Numeric:
			out = append(out, Entity{Type: Quantity, Text: t.Text, Start: i, End: i + 1})
			used[i] = true
		}
	}
	return out
}

func isMonthName(w string) bool {
	switch w {
	case "january", "february", "march", "april", "may", "june", "july",
		"august", "september", "october", "november", "december":
		return true
	}
	return false
}

func joinTokens(toks []Token) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.Text
	}
	return strings.Join(parts, " ")
}

// ParseEntityType converts a paper-style name ("LOCATION") back to a type.
func ParseEntityType(s string) (EntityType, error) {
	for t := Person; t < numEntityTypes; t++ {
		if t.String() == strings.ToUpper(s) {
			return t, nil
		}
	}
	return UnknownEntity, fmt.Errorf("nlp: unknown entity type %q", s)
}
