// Package nlp provides the light natural-language machinery the Falcon-style
// question/answering pipeline is built from: tokenisation, stopword
// filtering, a light suffix stemmer, a dictionary-driven named-entity
// recogniser, and the answer-type classifier used by the Question Processing
// module.
//
// Falcon's real NLP stack (named-entity recognition, syntactic parsing,
// WordNet-based semantics) is proprietary and far heavier than needed here:
// the paper treats the modules as black boxes characterised by their
// resource profiles (Table 2, Table 3). This package reproduces the
// functional interfaces — keywords in, typed candidate answers out — so the
// distributed architecture has real work to schedule, while the virtual cost
// model (package qa) reproduces the paper's timing profile.
package nlp

import (
	"strings"
	"unicode"
)

// Token is a normalised word occurrence within a text.
type Token struct {
	// Text is the lower-cased surface form.
	Text string
	// Stem is the stemmed form used for matching.
	Stem string
	// Pos is the token index within its text (0-based).
	Pos int
	// Capitalized records whether the original form started with an
	// upper-case letter (a cheap NER feature).
	Capitalized bool
	// Numeric records whether the token is all digits.
	Numeric bool
}

// Tokenize splits text into normalised tokens. Words are maximal runs of
// letters, digits or apostrophes; everything else separates tokens.
func Tokenize(text string) []Token {
	var tokens []Token
	start := -1
	runes := []rune(text)
	flush := func(end int) {
		if start < 0 {
			return
		}
		word := string(runes[start:end])
		start = -1
		lower := strings.ToLower(word)
		tokens = append(tokens, Token{
			Text:        lower,
			Stem:        Stem(lower),
			Pos:         len(tokens),
			Capitalized: unicode.IsUpper(runes[0]) || unicode.IsUpper([]rune(word)[0]),
			Numeric:     isNumeric(word),
		})
	}
	for i, r := range runes {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'' {
			if start < 0 {
				start = i
			}
		} else {
			flush(i)
		}
	}
	flush(len(runes))
	// Fix Capitalized: it must reflect each word's own first rune, not the
	// text's. Recompute properly in a second pass over the original runs.
	return retagCapitals(runes, tokens)
}

// retagCapitals walks the rune stream again and sets Capitalized per token.
func retagCapitals(runes []rune, tokens []Token) []Token {
	idx := 0
	start := -1
	for i, r := range runes {
		isWord := unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\''
		if isWord && start < 0 {
			start = i
			if idx < len(tokens) {
				tokens[idx].Capitalized = unicode.IsUpper(r)
			}
		} else if !isWord && start >= 0 {
			start = -1
			idx++
		}
	}
	return tokens
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

// Words returns just the lower-cased word strings of a text.
func Words(text string) []string {
	toks := Tokenize(text)
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

// stopwords is a compact English function-word list. Keyword selection
// (Question Processing) and indexing both skip these.
var stopwords = map[string]bool{}

func init() {
	for _, w := range strings.Fields(`
a an and are as at be been but by can could did do does for from had has
have he her him his how i if in into is it its me my no nor not of on or
our she so such that the their them then there these they this those to
was we were what when where which who whom why will with would you your
about above after again against all am any because before being below
between both down during each few further here more most off once only
other out over own same some than too under until up very s t don now
name names called`) {
		stopwords[w] = true
	}
}

// IsStopword reports whether the lower-cased word is a function word.
func IsStopword(w string) bool { return stopwords[strings.ToLower(w)] }

// ContentWords filters tokens down to non-stopword tokens.
func ContentWords(tokens []Token) []Token {
	var out []Token
	for _, t := range tokens {
		if !IsStopword(t.Text) {
			out = append(out, t)
		}
	}
	return out
}

// Stem applies a light suffix-stripping stemmer (a simplified Porter step 1)
// sufficient for matching question keywords against document terms.
func Stem(w string) string {
	if len(w) <= 3 {
		return w
	}
	// Order matters: longest suffixes first.
	suffixes := []struct{ suf, rep string }{
		{"ational", "ate"},
		{"ization", "ize"},
		{"fulness", "ful"},
		{"ousness", "ous"},
		{"iveness", "ive"},
		{"tional", "tion"},
		{"biliti", "ble"},
		{"lities", "lity"},
		{"ingly", ""},
		{"edly", ""},
		{"ments", "ment"},
		{"ation", "ate"},
		{"ness", ""},
		{"ions", "ion"},
		{"ings", "ing"},
		{"ing", ""},
		{"ies", "y"},
		{"ied", "y"},
		{"est", ""},
		{"ed", ""},
		{"ly", ""},
		{"es", ""},
		{"s", ""},
	}
	for _, s := range suffixes {
		if strings.HasSuffix(w, s.suf) && len(w)-len(s.suf)+len(s.rep) >= 3 {
			stem := w[:len(w)-len(s.suf)] + s.rep
			// Undouble final consonants produced by -ing/-ed stripping
			// ("running" → "runn" → "run").
			if n := len(stem); n >= 2 && stem[n-1] == stem[n-2] && !isVowelByte(stem[n-1]) {
				stem = stem[:n-1]
			}
			return stem
		}
	}
	return w
}

func isVowelByte(b byte) bool {
	switch b {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}
