package sched

// The gradient model (Lin & Keller 1987; Lüling/Monien/Ramme; Muniz &
// Zaluska) is the classical distributed load-balancing scheme the paper
// compares its design against in related work (Section 1.4). Nodes sit on a
// logical topology (a ring here); each maintains a "proximity": its hop
// distance to the nearest lightly-loaded node. Work on an overloaded node
// migrates one hop along the falling proximity gradient, so tasks diffuse
// toward idle regions using only neighbour information — in contrast to the
// paper's design, where every node sees the whole load table via broadcast.
//
// Implementing it makes the paper's implicit claim testable: the GRADIENT
// strategy in package core runs the question dispatcher on gradient routing
// instead of global least-loaded selection.

// GradientLightThreshold marks a node as lightly loaded for proximity
// computation, in QuestionLoad units (resource load + queued questions):
// under one running question's worth.
const GradientLightThreshold = 1.0

// gradientInfinity stands for "no light node reachable".
const gradientInfinity = 1 << 20

// GradientProximity computes each node's hop distance to the nearest
// lightly-loaded node on a bidirectional ring of n nodes, from a (possibly
// partial) load table. Missing nodes are treated as unknown and non-light.
// Light nodes have proximity 0.
func GradientProximity(n int, loads []LoadInfo) []int {
	prox := make([]int, n)
	light := make([]bool, n)
	for i := range prox {
		prox[i] = gradientInfinity
	}
	for _, li := range loads {
		if li.Node >= 0 && li.Node < n && QuestionLoad(li) < GradientLightThreshold {
			light[li.Node] = true
			prox[li.Node] = 0
		}
	}
	// Relax around the ring until stable (at most n passes; n is small).
	for pass := 0; pass < n; pass++ {
		changed := false
		for i := 0; i < n; i++ {
			left := (i - 1 + n) % n
			right := (i + 1) % n
			best := prox[i]
			if prox[left]+1 < best {
				best = prox[left] + 1
			}
			if prox[right]+1 < best {
				best = prox[right] + 1
			}
			if best < prox[i] {
				prox[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return prox
}

// PickGradientTarget implements the gradient migration rule for node self
// on a ring of n nodes: if self is overloaded (load above the light
// threshold plus one question's workload) and a neighbour has strictly
// smaller proximity to a light region, the task moves one hop toward it.
// It returns the chosen neighbour and whether to migrate.
func PickGradientTarget(self, n int, loads []LoadInfo) (target int, migrate bool) {
	if n < 2 {
		return self, false
	}
	var selfLoad float64
	found := false
	for _, li := range loads {
		if li.Node == self {
			selfLoad = QuestionLoad(li)
			found = true
		}
	}
	if !found || selfLoad < GradientLightThreshold+QuestionWorkload {
		return self, false // not overloaded enough to push work away
	}
	prox := GradientProximity(n, loads)
	left := (self - 1 + n) % n
	right := (self + 1) % n
	best, bestProx := self, prox[self]
	if prox[left] < bestProx {
		best, bestProx = left, prox[left]
	}
	if prox[right] < bestProx {
		best, bestProx = right, prox[right]
	}
	if best == self {
		return self, false
	}
	gradientMigrationsTotal.Inc()
	return best, true
}
