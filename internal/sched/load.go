package sched

// Weights are the resource weights of a load function (Equations 1-3): the
// fraction of a task's execution time spent on each resource. The defaults
// below are the paper's Table 3 measurements for the TREC-9 question set;
// experiments/table3 re-measures them on this implementation.
type Weights struct {
	CPU  float64
	Disk float64
}

// The paper's Table 3 weights.
var (
	// QAWeights drives the question dispatcher (Equation 1/4).
	QAWeights = Weights{CPU: 0.79, Disk: 0.21}
	// PRWeights drives the paragraph-retrieval dispatcher (Equation 2/5).
	PRWeights = Weights{CPU: 0.20, Disk: 0.80}
	// APWeights drives the answer-processing dispatcher (Equation 3/6).
	APWeights = Weights{CPU: 1.00, Disk: 0.00}
)

// Load evaluates the weighted load function for one node's load info.
func (w Weights) Load(li LoadInfo) float64 {
	return w.CPU*li.CPU + w.Disk*li.Disk
}

// Under-load thresholds (Equations 7-8): a node is under-loaded for a module
// when its weighted load is below the load observed when a single sub-task
// of that module runs alone on the node (Section 4.2). A lone PR sub-task
// saturates the disk (load ≈ 0.2·0.25 + 0.8·1.0); a lone AP sub-task
// saturates the CPU (load ≈ 1.0).
// The AP threshold carries a small tolerance above the single-sub-task load
// of 1.0: the broadcast load averages are one-second windows, so a node that
// merely finished a burst at the window edge reads exactly 1.0 and must not
// be excluded from partitioning.
const (
	PRUnderloadThreshold = 0.85
	APUnderloadThreshold = 1.05
)

// PRUnderloaded is the paragraph-retrieval under-load condition.
func PRUnderloaded(li LoadInfo) bool {
	return PRWeights.Load(li) < PRUnderloadThreshold
}

// APUnderloaded is the answer-processing under-load condition.
func APUnderloaded(li LoadInfo) bool {
	return APWeights.Load(li) < APUnderloadThreshold
}

// QuestionWorkload is the average load one question adds to a node, used by
// the question dispatcher's anti-thrash rule: a question migrates only if
// the load gap between source and destination exceeds one question's worth
// (Section 3.1). In QuestionLoad units a queued question contributes
// exactly 1 and a running one ≈ 0.8, so one question's workload is ≈ 1.
const QuestionWorkload = 1.0

// TieBand treats loads within this margin as equal. Stale load tables make
// exact minima meaningless; dispatchers rotate deterministically among
// near-minimal nodes (by question id) instead of herding every decision
// made within one broadcast interval onto the same lowest-id node.
const TieBand = 0.5

// QuestionLoad is the load the question dispatcher compares: the weighted
// resource load of Equation 4 plus the admission-queue backlog (each queued
// question is one question's worth of committed future load).
func QuestionLoad(li LoadInfo) float64 {
	return QAWeights.Load(li) + li.Queue
}

// PickQuestionNode implements the question dispatcher's policy: select the
// node with the smallest Q/A load (rotating among near-minimal nodes by the
// salt, typically the question id); migrate only if the gap to the current
// node exceeds QuestionWorkload. It returns the chosen node and whether
// that constitutes a migration.
func PickQuestionNode(self int, loads []LoadInfo, salt int) (target int, migrate bool) {
	if len(loads) == 0 {
		return self, false
	}
	var selfLoad float64
	haveSelf := false
	for _, li := range loads {
		if li.Node == self {
			selfLoad = QuestionLoad(li)
			haveSelf = true
		}
	}
	best, bestLoad := pickMin(loads, QuestionLoad, salt)
	if best < 0 || best == self || !haveSelf {
		return self, false
	}
	if selfLoad-bestLoad > QuestionWorkload {
		migrationsTotal.Inc()
		return best, true
	}
	return self, false
}

// pickMin returns a node whose load is within TieBand of the minimum,
// rotating among the candidates by salt, together with that node's load.
func pickMin(loads []LoadInfo, loadFn func(LoadInfo) float64, salt int) (int, float64) {
	if len(loads) == 0 {
		return -1, 0
	}
	min := loadFn(loads[0])
	for _, li := range loads[1:] {
		if l := loadFn(li); l < min {
			min = l
		}
	}
	var cand []LoadInfo
	for _, li := range loads {
		if loadFn(li) <= min+TieBand {
			cand = append(cand, li)
		}
	}
	if salt < 0 {
		salt = -salt
	}
	chosen := cand[salt%len(cand)]
	return chosen.Node, loadFn(chosen)
}

// OrderByLoad ranks nodes by ascending weighted load — the replica-selection
// order of the sharded scatter-gather path. Called with PRWeights it is the
// Table-3 PR load function (Equation 2/5) applied to replica choice: the
// first element is the preferred replica, the rest are the failover order.
// Like pickMin, candidates within TieBand of the minimum are rotated by
// salt (typically the question id), so decisions made within one stale
// broadcast interval don't herd onto the same replica; outside the tie band
// the order is ascending load with a deterministic node-id tie-break.
func OrderByLoad(loads []LoadInfo, w Weights, salt int) []int {
	if len(loads) == 0 {
		return nil
	}
	idx := make([]int, len(loads))
	for i := range idx {
		idx[i] = i
	}
	sortStableBy(idx, func(a, b int) bool {
		la, lb := w.Load(loads[a]), w.Load(loads[b])
		if la != lb {
			return la < lb
		}
		return loads[a].Node < loads[b].Node
	})
	// Rotate the leading tie band by salt.
	min := w.Load(loads[idx[0]])
	band := 1
	for band < len(idx) && w.Load(loads[idx[band]]) <= min+TieBand {
		band++
	}
	if salt < 0 {
		salt = -salt
	}
	if band > 1 {
		rot := salt % band
		rotated := append(append([]int(nil), idx[rot:band]...), idx[:rot]...)
		copy(idx[:band], rotated)
	}
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = loads[j].Node
	}
	return out
}

// sortStableBy is a tiny insertion sort (candidate sets are replica counts:
// a handful of nodes), keeping load.go free of sort-package closures on the
// per-question path.
func sortStableBy(idx []int, less func(a, b int) bool) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && less(idx[j], idx[j-1]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// WeightedNode is one processor selected by the meta-scheduler with its
// normalized share of the task.
type WeightedNode struct {
	Node   int
	Weight float64
}

// MetaSchedule implements the meta-scheduling algorithm of Figure 4,
// steps 1-4: select all under-loaded processors (or the single least-loaded
// one if none, rotating among near-minimal nodes by salt), then weight each
// selected processor by its available capacity and normalize. Step 5 — the
// actual partitioning — is performed by the partitioners in this package.
func MetaSchedule(loads []LoadInfo, loadFn func(LoadInfo) float64, underloaded func(LoadInfo) bool, salt int) []WeightedNode {
	if len(loads) == 0 {
		return nil
	}
	metaScheduleCalls.Inc()
	// Step 1: all under-loaded processors.
	var selected []LoadInfo
	for _, li := range loads {
		if underloaded(li) {
			selected = append(selected, li)
		}
	}
	// Step 2: fall back to the least-loaded processor.
	if len(selected) == 0 {
		metaScheduleFallbacks.Inc()
		node, _ := pickMin(loads, loadFn, salt)
		return []WeightedNode{{Node: node, Weight: 1}}
	}
	// Step 3: unnormalized weights. The most-loaded selected processor must
	// still receive a positive share, so weights are measured as headroom
	// against (max observed load + one sub-task's worth).
	maxLoad := loadFn(selected[0])
	for _, li := range selected[1:] {
		if l := loadFn(li); l > maxLoad {
			maxLoad = l
		}
	}
	ref := maxLoad + 1
	total := 0.0
	raw := make([]float64, len(selected))
	for i, li := range selected {
		raw[i] = ref - loadFn(li)
		total += raw[i]
	}
	// Step 4: normalize.
	out := make([]WeightedNode, len(selected))
	for i, li := range selected {
		out[i] = WeightedNode{Node: li.Node, Weight: raw[i] / total}
	}
	return out
}
