package sched

import (
	"testing"

	"distqa/internal/obs"
)

// TestDispatcherMigrationCounter checks that the question-dispatcher policy
// increments the global migration counter exactly when it migrates.
func TestDispatcherMigrationCounter(t *testing.T) {
	before := obs.Default().Counter("sched_question_migrations_total", nil).Value()
	loads := []LoadInfo{
		{Node: 0, CPU: 3, Disk: 1, Queue: 2}, // self: heavily loaded
		{Node: 1, CPU: 0, Disk: 0, Queue: 0}, // idle peer
	}
	if _, migrate := PickQuestionNode(0, loads, 0); !migrate {
		t.Fatal("expected a migration")
	}
	after := obs.Default().Counter("sched_question_migrations_total", nil).Value()
	if after != before+1 {
		t.Fatalf("migration counter moved %d, want +1", after-before)
	}
	// Balanced load: no migration, no count.
	balanced := []LoadInfo{{Node: 0, CPU: 1}, {Node: 1, CPU: 1}}
	if _, migrate := PickQuestionNode(0, balanced, 0); migrate {
		t.Fatal("unexpected migration")
	}
	if got := obs.Default().Counter("sched_question_migrations_total", nil).Value(); got != after {
		t.Fatalf("counter moved on non-migration: %d -> %d", after, got)
	}
}

// TestMetaScheduleCounters checks invocation and fallback counting.
func TestMetaScheduleCounters(t *testing.T) {
	calls := obs.Default().Counter("sched_metaschedule_calls_total", nil)
	fallbacks := obs.Default().Counter("sched_metaschedule_fallbacks_total", nil)
	c0, f0 := calls.Value(), fallbacks.Value()

	// All nodes overloaded → fallback path.
	overloaded := []LoadInfo{{Node: 0, CPU: 5}, {Node: 1, CPU: 5}}
	MetaSchedule(overloaded, APWeights.Load, APUnderloaded, 0)
	if calls.Value() != c0+1 || fallbacks.Value() != f0+1 {
		t.Fatalf("overloaded call: calls %d->%d, fallbacks %d->%d",
			c0, calls.Value(), f0, fallbacks.Value())
	}
	// Idle pool → no fallback.
	idle := []LoadInfo{{Node: 0}, {Node: 1}}
	MetaSchedule(idle, APWeights.Load, APUnderloaded, 0)
	if calls.Value() != c0+2 || fallbacks.Value() != f0+1 {
		t.Fatalf("idle call: calls %d->%d, fallbacks %d->%d",
			c0, calls.Value(), f0, fallbacks.Value())
	}
}
