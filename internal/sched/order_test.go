package sched

import (
	"reflect"
	"testing"
)

// TestOrderByLoad pins the replica-selection order the sharded scatter-
// gather path relies on: ascending Table-3 PR load, deterministic node-id
// tie-break, and salt rotation within the tie band only.
func TestOrderByLoad(t *testing.T) {
	if got := OrderByLoad(nil, PRWeights, 0); got != nil {
		t.Fatalf("empty: %v", got)
	}

	// Distinct loads far outside the tie band: pure ascending order,
	// regardless of salt.
	loads := []LoadInfo{
		{Node: 1, CPU: 4, Disk: 4},
		{Node: 2, CPU: 0.1, Disk: 0.1},
		{Node: 3, CPU: 2, Disk: 2},
	}
	for salt := 0; salt < 5; salt++ {
		if got := OrderByLoad(loads, PRWeights, salt); !reflect.DeepEqual(got, []int{2, 3, 1}) {
			t.Fatalf("salt %d: %v", salt, got)
		}
	}

	// All within the tie band: the whole set rotates by salt.
	tied := []LoadInfo{
		{Node: 1, CPU: 0.1, Disk: 0.1},
		{Node: 2, CPU: 0.12, Disk: 0.12},
		{Node: 3, CPU: 0.11, Disk: 0.11},
	}
	if got := OrderByLoad(tied, PRWeights, 0); !reflect.DeepEqual(got, []int{1, 3, 2}) {
		t.Fatalf("salt 0: %v", got)
	}
	if got := OrderByLoad(tied, PRWeights, 1); !reflect.DeepEqual(got, []int{3, 2, 1}) {
		t.Fatalf("salt 1: %v", got)
	}
	if got := OrderByLoad(tied, PRWeights, -1); !reflect.DeepEqual(got, []int{3, 2, 1}) {
		t.Fatalf("salt -1 (negative salts are folded): %v", got)
	}

	// Rotation must never promote a node from outside the tie band.
	mixed := []LoadInfo{
		{Node: 1, CPU: 0.1, Disk: 0.1},
		{Node: 2, CPU: 0.2, Disk: 0.2}, // in band (TieBand = 0.5)
		{Node: 3, CPU: 5, Disk: 5},     // far out
	}
	for salt := 0; salt < 4; salt++ {
		got := OrderByLoad(mixed, PRWeights, salt)
		if got[len(got)-1] != 3 {
			t.Fatalf("salt %d: out-of-band node promoted: %v", salt, got)
		}
	}
}
