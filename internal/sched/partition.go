package sched

import (
	"errors"

	"distqa/internal/vtime"
)

// ErrNoProcessors is returned when a partitioner cannot obtain any live
// processor from its selector.
var ErrNoProcessors = errors.New("sched: no processors available")

// Runner executes one sub-task — the processing of a set of item indices —
// on the given node. It returns a non-nil error if the node (or its network
// path) failed before the sub-task completed; the items are then considered
// unprocessed and the partitioner's recovery strategy re-distributes them.
// Implementations live in package core (they ship inputs over the simulated
// network and run the pipeline module remotely).
type Runner func(p *vtime.Proc, node int, items []int) error

// Selector re-runs the meta-scheduling algorithm against the current load
// table, returning the processors (with normalized weights) the next
// distribution round should use. Partitioners call it again after failures,
// implementing the "jump to Step 1" recovery of Figure 5(c).
type Selector func() []WeightedNode

// retryBackoff spaces failure-recovery rounds so a crashed node has time to
// fall out of the monitors' tables.
const retryBackoff = 0.1

// Partitioner is a partitioning algorithm for one iterative module.
type Partitioner interface {
	// Name returns the paper's identifier: SEND, ISEND or RECV.
	Name() string
	// Distribute processes all items across the processors produced by sel,
	// using run to execute sub-tasks, and returns once every item has been
	// processed (or ErrNoProcessors if the pool died entirely).
	Distribute(p *vtime.Proc, sel Selector, items []int, run Runner) error
}

// ---------------------------------------------------------------------------
// Sender-controlled algorithms (Figure 5)

// sendPartitioner implements SEND (direct partitioning) and ISEND
// (interleaved partitioning); they share the Figure 5(c) distribution and
// recovery strategy and differ only in how the item array is split.
type sendPartitioner struct {
	name  string
	split func(items []int, targets []WeightedNode) [][]int
	pm    partitionMetrics
}

// NewSEND returns the direct sender-controlled partitioner: partition i
// receives the next W_i·n consecutive items (Figure 5(a)). It assumes
// sub-task granularity does not vary widely across items.
func NewSEND() Partitioner {
	return &sendPartitioner{name: "SEND", split: splitConsecutive, pm: newPartitionMetrics("SEND")}
}

// NewISEND returns the interleaved sender-controlled partitioner: partitions
// are built by weighted round-robin interleaving (Figure 5(b)), which
// equalizes average granularity when items are sorted by decreasing
// granularity — the case for the AP module, whose input is ranked by the
// paragraph ordering module.
func NewISEND() Partitioner {
	return &sendPartitioner{name: "ISEND", split: splitInterleaved, pm: newPartitionMetrics("ISEND")}
}

func (s *sendPartitioner) Name() string { return s.name }

func (s *sendPartitioner) Distribute(p *vtime.Proc, sel Selector, items []int, run Runner) error {
	remaining := items
	for round := 0; len(remaining) > 0; round++ {
		if round > 0 {
			p.Sleep(retryBackoff)
		}
		targets := sel()
		if len(targets) == 0 {
			return ErrNoProcessors
		}
		s.pm.rounds.Inc()
		parts := s.split(remaining, targets)
		// Allocate each partition in parallel and wait for termination
		// (Figure 5(c) steps 1-2), one monitoring process per partition.
		group := vtime.NewGroup(p.Sim())
		failed := make([][]int, len(parts))
		for i := range parts {
			if len(parts[i]) == 0 {
				continue
			}
			i := i
			node := targets[i].Node
			part := parts[i]
			s.pm.subtasks.Inc()
			group.Add(1)
			p.Spawn("send-part", func(w *vtime.Proc) {
				defer group.Done()
				if err := run(w, node, part); err != nil {
					s.pm.recoveries.Inc()
					failed[i] = part
				}
			})
		}
		group.Wait(p)
		// Figure 5(c) step 4: collect unprocessed items and repeat. The
		// retry array keeps the *original* item order (the ranked order the
		// split functions assume) rather than concatenating partitions:
		// with interleaved partitioning, two failed partitions concatenated
		// naively would interleave out of rank order and the next round's
		// sub-tasks would no longer receive rank-ordered (merge-ordered)
		// item runs.
		unprocessed := make(map[int]int)
		for _, f := range failed {
			for _, item := range f {
				unprocessed[item]++
			}
		}
		var next []int
		for _, item := range remaining {
			if unprocessed[item] > 0 {
				unprocessed[item]--
				next = append(next, item)
			}
		}
		remaining = next
	}
	return nil
}

// splitConsecutive assigns the next round(W_i·n) consecutive items to
// partition i (largest-remainder rounding so counts sum to n).
func splitConsecutive(items []int, targets []WeightedNode) [][]int {
	counts := apportion(len(items), targets)
	parts := make([][]int, len(targets))
	at := 0
	for i, c := range counts {
		parts[i] = items[at : at+c]
		at += c
	}
	return parts
}

// splitInterleaved deals items one at a time to the partition whose
// assigned share lags its weight the most (weighted round-robin), so each
// partition still receives ≈ W_i·n items but interleaved across the ranked
// item array.
func splitInterleaved(items []int, targets []WeightedNode) [][]int {
	counts := apportion(len(items), targets)
	parts := make([][]int, len(targets))
	credit := make([]float64, len(targets))
	assigned := make([]int, len(targets))
	for _, item := range items {
		best := -1
		for i := range targets {
			if assigned[i] >= counts[i] {
				continue
			}
			credit[i] += targets[i].Weight
			if best < 0 || credit[i] > credit[best] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		credit[best] -= 1
		parts[best] = append(parts[best], item)
		assigned[best]++
	}
	return parts
}

// apportion converts normalized weights into integer counts summing to n
// (largest remainder method; deterministic ties by index).
func apportion(n int, targets []WeightedNode) []int {
	counts := make([]int, len(targets))
	rems := make([]float64, len(targets))
	total := 0
	for i, t := range targets {
		exact := t.Weight * float64(n)
		counts[i] = int(exact)
		rems[i] = exact - float64(counts[i])
		total += counts[i]
	}
	for total < n {
		best := 0
		for i := 1; i < len(rems); i++ {
			if rems[i] > rems[best] {
				best = i
			}
		}
		counts[best]++
		rems[best] = -1
		total++
	}
	return counts
}

// ---------------------------------------------------------------------------
// Receiver-controlled algorithm (Figure 6)

// recvPartitioner implements RECV: the item array is divided into
// equal-size chunks and the selected processors pull chunks one at a time
// according to their own availability. Failure recovery returns the chunk
// to the available set and removes the processor from the working set
// (Figure 6(b)).
type recvPartitioner struct {
	chunkSize int
	pm        partitionMetrics
}

// NewRECV returns the receiver-controlled partitioner with the given chunk
// size (in items). The paper's empirical optimum for the AP module is 40
// paragraphs (Figure 10).
func NewRECV(chunkSize int) Partitioner {
	if chunkSize < 1 {
		chunkSize = 1
	}
	return &recvPartitioner{chunkSize: chunkSize, pm: newPartitionMetrics("RECV")}
}

func (r *recvPartitioner) Name() string { return "RECV" }

func (r *recvPartitioner) Distribute(p *vtime.Proc, sel Selector, items []int, run Runner) error {
	// Figure 6(a): divide into equal-size chunks. A trailing remainder
	// shorter than half a chunk is folded into the last chunk ("chunk k
	// extended to include the last item"); otherwise it forms its own.
	var chunks [][]int
	if len(items) > 0 {
		n := (len(items) + r.chunkSize - 1) / r.chunkSize
		if n > 1 && len(items)-(n-1)*r.chunkSize < (r.chunkSize+1)/2 {
			n--
		}
		for i := 0; i < n; i++ {
			lo := i * r.chunkSize
			hi := lo + r.chunkSize
			if i == n-1 {
				hi = len(items)
			}
			chunks = append(chunks, items[lo:hi])
		}
	}
	for round := 0; len(chunks) > 0; round++ {
		if round > 0 {
			p.Sleep(retryBackoff)
		}
		targets := sel()
		if len(targets) == 0 {
			return ErrNoProcessors
		}
		r.pm.rounds.Inc()
		// Shared chunk queue; each worker pulls until the queue drains or
		// its node fails.
		queue := chunks
		chunks = nil
		pop := func() ([]int, bool) {
			if len(queue) == 0 {
				return nil, false
			}
			c := queue[0]
			queue = queue[1:]
			return c, true
		}
		var giveBack [][]int
		group := vtime.NewGroup(p.Sim())
		for _, t := range targets {
			node := t.Node
			group.Add(1)
			p.Spawn("recv-worker", func(w *vtime.Proc) {
				defer group.Done()
				for {
					chunk, ok := pop()
					if !ok {
						return
					}
					r.pm.subtasks.Inc()
					if err := run(w, node, chunk); err != nil {
						// Figure 6(b) step iv.z: move the chunk back and
						// leave the working processor set.
						r.pm.recoveries.Inc()
						giveBack = append(giveBack, chunk)
						return
					}
				}
			})
		}
		group.Wait(p)
		// Failure recovery: chunks whose sub-task failed come back via
		// giveBack, but when *every* worker of the round has failed the
		// queue may still hold chunks nobody pulled — those must survive
		// into the next round too (found by the partitioner property test:
		// dropping them loses items when the whole working set dies at
		// once).
		chunks = append(chunks, queue...)
		chunks = append(chunks, giveBack...)
	}
	return nil
}
