// Package sched implements the paper's distributed scheduling machinery:
// per-node load monitors with periodic broadcast (Section 3.1), the
// resource-weighted load functions of Equations 1-3, the meta-scheduling
// algorithm of Figure 4, the question-dispatcher migration policy, and the
// three partitioning algorithms SEND, ISEND and RECV of Figures 5-6 with
// their failure-recovery strategies.
package sched

import (
	"distqa/internal/cluster"
	"distqa/internal/simnet"
	"distqa/internal/vtime"
)

// Monitoring constants (Section 3.1 and the analytical model's parameters).
const (
	// BroadcastInterval is how often each load monitor samples and
	// broadcasts, in virtual seconds.
	BroadcastInterval = 1.0
	// StaleAfter is the silence interval after which a node is dropped
	// from the system pool.
	StaleAfter = 3.0
	// LoadPacketBytes is S_load, the broadcast packet size.
	LoadPacketBytes = 64
	// LoadMeasureCPU is t_load, the CPU cost of inspecting the kernel for
	// local load information, charged once per broadcast interval.
	LoadMeasureCPU = 0.010
)

// LoadInfo is one node's load broadcast: run-queue style CPU and disk load
// averages over the last broadcast interval, plus the number of questions
// waiting in the node's admission queue (a node runs at most a fixed number
// of simultaneous questions — the paper's "fully-loaded at 4" observation —
// and queues the rest).
type LoadInfo struct {
	Node  int
	Time  float64
	CPU   float64
	Disk  float64
	Queue float64
}

// Monitor is the per-node load monitoring process. It periodically samples
// the local node, broadcasts the sample, and accumulates the samples
// broadcast by every other monitor, giving each node a full (slightly
// stale) view of system load — the paper's distributed load management.
type Monitor struct {
	node     *cluster.Node
	net      *simnet.Network
	meter    *cluster.LoadMeter
	sim      *vtime.Sim
	table    map[int]LoadInfo
	interval float64
	// queueProbe reports the node's admission-queue length at sample time.
	queueProbe func() float64
}

// StartMonitor creates a monitor for node and spawns its broadcast process
// with the default BroadcastInterval.
func StartMonitor(node *cluster.Node, net *simnet.Network) *Monitor {
	return StartMonitorInterval(node, net, BroadcastInterval)
}

// StartMonitorInterval creates a monitor broadcasting every interval
// seconds — the staleness ablation knob. Stale-node eviction scales with
// the interval (3 missed broadcasts).
func StartMonitorInterval(node *cluster.Node, net *simnet.Network, interval float64) *Monitor {
	if interval <= 0 {
		interval = BroadcastInterval
	}
	m := &Monitor{
		node:     node,
		net:      net,
		meter:    cluster.NewLoadMeter(node),
		sim:      node.Sim(),
		table:    make(map[int]LoadInfo),
		interval: interval,
	}
	// A node always knows its own load immediately, before any broadcast
	// round trips; seed the table so dispatchers can schedule from t=0.
	m.table[node.ID()] = LoadInfo{Node: node.ID(), Time: node.Sim().Now()}
	net.Subscribe(func(from int, payload any) {
		if li, ok := payload.(LoadInfo); ok && !m.node.Failed() {
			m.table[li.Node] = li
		}
	})
	node.Sim().Spawn(node.Name()+".monitor", m.run)
	return m
}

// run is the monitor main loop.
func (m *Monitor) run(p *vtime.Proc) {
	for !m.node.Failed() {
		p.Sleep(m.interval)
		if m.node.Failed() {
			return
		}
		sample := m.meter.Sample()
		m.node.UseCPU(p, LoadMeasureCPU)
		// Blend the window average with the instantaneous run queue: the
		// window alone makes a node that finished a burst moments ago look
		// busy for a full broadcast period, which skews the meta-scheduler's
		// partition weights.
		cpu := 0.5*sample.CPU + 0.5*float64(m.node.CPU.Active())
		disk := 0.5*sample.Disk + 0.5*float64(m.node.Disk.Active())
		li := LoadInfo{Node: m.node.ID(), Time: p.Now(), CPU: cpu, Disk: disk}
		if m.queueProbe != nil {
			li.Queue = m.queueProbe()
		}
		m.table[li.Node] = li
		m.net.Broadcast(p, m.node, LoadPacketBytes, li)
	}
}

// staleAfter is the silence interval after which this monitor drops a node.
func (m *Monitor) staleAfter() float64 {
	if m.interval > BroadcastInterval {
		return 3 * m.interval
	}
	return StaleAfter
}

// Table returns the current (non-stale) view of system load, including this
// node itself, as a slice ordered by node id for determinism.
func (m *Monitor) Table() []LoadInfo {
	now := m.sim.Now()
	maxNode := -1
	for id := range m.table {
		if id > maxNode {
			maxNode = id
		}
	}
	out := make([]LoadInfo, 0, len(m.table))
	for id := 0; id <= maxNode; id++ {
		li, ok := m.table[id]
		if !ok {
			continue
		}
		if now-li.Time > m.staleAfter() {
			continue // node left the pool or crashed
		}
		out = append(out, li)
	}
	return out
}

// Lookup returns the last load info for a node and whether it is fresh.
func (m *Monitor) Lookup(node int) (LoadInfo, bool) {
	li, ok := m.table[node]
	if !ok || m.sim.Now()-li.Time > m.staleAfter() {
		return LoadInfo{}, false
	}
	return li, true
}

// NodeID returns the monitored node's id.
func (m *Monitor) NodeID() int { return m.node.ID() }

// SetQueueProbe installs the admission-queue length callback sampled at
// each broadcast.
func (m *Monitor) SetQueueProbe(fn func() float64) { m.queueProbe = fn }

// BumpQueue optimistically adjusts the local view of a node's admission
// queue after dispatching a question there (see Bump).
func (m *Monitor) BumpQueue(node int, d float64) {
	li, ok := m.table[node]
	if !ok {
		return
	}
	li.Queue += d
	m.table[node] = li
}

// Bump optimistically adjusts this node's view of another node's load,
// reflecting work this node just dispatched there before the next broadcast
// confirms it. The adjustment is transient: the target's next broadcast
// overwrites it with measured load (which by then includes the dispatched
// work). Without this, a dispatcher making several decisions within one
// broadcast interval herds them all onto the same momentarily-least-loaded
// node.
func (m *Monitor) Bump(node int, cpu, disk float64) {
	li, ok := m.table[node]
	if !ok {
		return
	}
	li.CPU += cpu
	li.Disk += disk
	m.table[node] = li
}
