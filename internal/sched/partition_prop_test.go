package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"distqa/internal/vtime"
)

// Property-style tests for the three partitioners of Figures 5-6: under any
// workload shape and any subset of injected sub-task failures,
//
//  1. every item is processed exactly once (no loss, no duplication), and
//  2. every successful sub-task receives its items in rank order (a
//     strictly increasing subsequence of the input), so the downstream
//     merge sees rank-ordered runs regardless of how recovery reshuffled
//     the work.
//
// The failure injection mirrors the two recovery strategies the paper
// specifies: transient failures (the node fails one sub-task, then heals —
// Figure 5(c) retries the items in a later round) and permanent failures
// (the node leaves the pool; the selector stops offering it — Figure 6(b)).

// flakyRunner wraps the recorder with scripted failures. Transient nodes
// fail their first fails[node] sub-tasks then heal; permanent nodes always
// fail and are dropped from the selector's pool.
type flakyRunner struct {
	rec       *recorder
	transient map[int]int  // node -> remaining failures
	permanent map[int]bool // node -> always fails
	failures  int
}

func (f *flakyRunner) run(p *vtime.Proc, node int, items []int) error {
	if f.permanent[node] {
		f.failures++
		return errors.New("node dead")
	}
	if f.transient[node] > 0 {
		f.transient[node]--
		f.failures++
		return errors.New("transient failure")
	}
	return f.rec.run(p, node, items)
}

// liveSel offers only non-permanently-failed nodes, with equal weights —
// the monitors' behaviour of dropping stale nodes from the pool.
func liveSel(nodes int, permanent map[int]bool) Selector {
	return func() []WeightedNode {
		var alive []int
		for n := 0; n < nodes; n++ {
			if !permanent[n] {
				alive = append(alive, n)
			}
		}
		out := make([]WeightedNode, len(alive))
		for i, n := range alive {
			out[i] = WeightedNode{Node: n, Weight: 1 / float64(len(alive))}
		}
		return out
	}
}

// checkExactlyOnce asserts every input item was processed exactly once.
func checkExactlyOnce(t *testing.T, rec *recorder, items []int) {
	t.Helper()
	got := rec.processed()
	want := append([]int(nil), items...)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("processed %d items, want %d (loss or duplication)", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("processed set differs at %d: got %d want %d", i, got[i], want[i])
		}
	}
}

// checkMergeOrder asserts every successful sub-task's item list is strictly
// increasing — i.e. a rank-ordered subsequence of the (sorted) input.
func checkMergeOrder(t *testing.T, rec *recorder) {
	t.Helper()
	for _, a := range rec.mu {
		for i := 1; i < len(a.items); i++ {
			if a.items[i] <= a.items[i-1] {
				t.Fatalf("node %d sub-task out of rank order: %v", a.node, a.items)
			}
		}
	}
}

// randomWeights draws a normalized weight vector with at least one node.
func randomWeights(rng *rand.Rand, nodes int) []WeightedNode {
	ws := make([]WeightedNode, nodes)
	total := 0.0
	for i := range ws {
		w := 0.05 + rng.Float64()
		ws[i] = WeightedNode{Node: i, Weight: w}
		total += w
	}
	for i := range ws {
		ws[i].Weight /= total
	}
	return ws
}

func partitioners(rng *rand.Rand) []Partitioner {
	return []Partitioner{
		NewSEND(),
		NewISEND(),
		NewRECV(1 + rng.Intn(8)),
	}
}

// TestPartitionPropertyTransientFailures: any subset of nodes may fail any
// number of leading sub-tasks; every item must still be processed exactly
// once and in merge order.
func TestPartitionPropertyTransientFailures(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nodes := 1 + rng.Intn(5)
			n := rng.Intn(60)
			sel := staticSel(randomWeights(rng, nodes)...)
			for _, part := range partitioners(rng) {
				transient := map[int]int{}
				for node := 0; node < nodes; node++ {
					if rng.Intn(2) == 0 {
						transient[node] = rng.Intn(3)
					}
				}
				rec := &recorder{}
				fr := &flakyRunner{rec: rec, transient: transient}
				sim := vtime.NewSim()
				var err error
				items := seq(n)
				sim.Spawn("driver", func(p *vtime.Proc) {
					err = part.Distribute(p, sel, items, fr.run)
				})
				sim.Run()
				if err != nil {
					t.Fatalf("%s: %v (failures injected: %d)", part.Name(), err, fr.failures)
				}
				checkExactlyOnce(t, rec, items)
				checkMergeOrder(t, rec)
			}
		})
	}
}

// TestPartitionPropertyPermanentFailures: a random strict subset of nodes
// dies for good and the selector drops them (the monitors' stale-node
// eviction); the survivors must still process everything exactly once, in
// merge order.
func TestPartitionPropertyPermanentFailures(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nodes := 2 + rng.Intn(4)
			n := 1 + rng.Intn(50)
			permanent := map[int]bool{}
			// Kill a strict subset: at least one node survives.
			for node := 0; node < nodes; node++ {
				if len(permanent) < nodes-1 && rng.Intn(2) == 0 {
					permanent[node] = true
				}
			}
			for _, part := range partitioners(rng) {
				rec := &recorder{}
				fr := &flakyRunner{rec: rec, permanent: permanent}
				sim := vtime.NewSim()
				var err error
				items := seq(n)
				sim.Spawn("driver", func(p *vtime.Proc) {
					err = part.Distribute(p, liveSel(nodes, permanent), items, fr.run)
				})
				sim.Run()
				if err != nil {
					t.Fatalf("%s: %v", part.Name(), err)
				}
				checkExactlyOnce(t, rec, items)
				checkMergeOrder(t, rec)
				// Dead nodes must never hold a successful sub-task.
				for _, a := range rec.mu {
					if permanent[a.node] {
						t.Fatalf("%s: dead node %d completed a sub-task", part.Name(), a.node)
					}
				}
			}
		})
	}
}

// TestPartitionPropertyPoolDeath: when every node is gone the partitioners
// must return ErrNoProcessors instead of spinning.
func TestPartitionPropertyPoolDeath(t *testing.T) {
	empty := func() []WeightedNode { return nil }
	rng := rand.New(rand.NewSource(7))
	for _, part := range partitioners(rng) {
		rec := &recorder{}
		sim := vtime.NewSim()
		var err error
		sim.Spawn("driver", func(p *vtime.Proc) {
			err = part.Distribute(p, empty, seq(5), rec.run)
		})
		sim.Run()
		if !errors.Is(err, ErrNoProcessors) {
			t.Fatalf("%s: err = %v, want ErrNoProcessors", part.Name(), err)
		}
	}
}
