package sched

import "distqa/internal/obs"

// Simulator-side scheduling metrics, registered on the process-global
// registry (obs.Default()): package sched has no long-lived object to hang
// a registry off — partitioners and dispatch policies are values and pure
// functions — so its counters are global, like the simulator itself.
//
// Counter families:
//
//	sched_question_migrations_total            dispatcher migrations (Eq. 4)
//	sched_gradient_migrations_total            gradient-model migrations
//	sched_metaschedule_calls_total             meta-scheduler invocations
//	sched_metaschedule_fallbacks_total         rounds with no under-loaded node
//	sched_partition_rounds_total{algo}         distribution rounds (>1 ⇒ recovery)
//	sched_partition_subtasks_total{algo}       sub-tasks dispatched
//	sched_partition_recoveries_total{algo}     failed partitions/chunks re-queued
var (
	migrationsTotal         = obs.Default().Counter("sched_question_migrations_total", nil)
	gradientMigrationsTotal = obs.Default().Counter("sched_gradient_migrations_total", nil)
	metaScheduleCalls       = obs.Default().Counter("sched_metaschedule_calls_total", nil)
	metaScheduleFallbacks   = obs.Default().Counter("sched_metaschedule_fallbacks_total", nil)
)

// partitionMetrics caches one partitioner's counter handles.
type partitionMetrics struct {
	rounds     *obs.Counter
	subtasks   *obs.Counter
	recoveries *obs.Counter
}

func newPartitionMetrics(algo string) partitionMetrics {
	labels := obs.Labels{"algo": algo}
	return partitionMetrics{
		rounds:     obs.Default().Counter("sched_partition_rounds_total", labels),
		subtasks:   obs.Default().Counter("sched_partition_subtasks_total", labels),
		recoveries: obs.Default().Counter("sched_partition_recoveries_total", labels),
	}
}
