package sched

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"distqa/internal/cluster"
	"distqa/internal/simnet"
	"distqa/internal/vtime"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}

func fabric(n int) (*vtime.Sim, *cluster.Cluster, *simnet.Network) {
	sim := vtime.NewSim()
	c := cluster.NewCluster(sim, n, cluster.TestbedHardware())
	net := simnet.New(sim, simnet.Testbed())
	return sim, c, net
}

// --- Monitor -------------------------------------------------------------

func TestMonitorsSeeEachOther(t *testing.T) {
	sim, c, net := fabric(4)
	var monitors []*Monitor
	for _, n := range c.Nodes() {
		monitors = append(monitors, StartMonitor(n, net))
	}
	sim.RunUntil(2.5)
	for i, m := range monitors {
		tbl := m.Table()
		if len(tbl) != 4 {
			t.Fatalf("monitor %d sees %d nodes, want 4", i, len(tbl))
		}
		for j, li := range tbl {
			if li.Node != j {
				t.Fatalf("table not ordered by node id: %+v", tbl)
			}
		}
	}
	sim.Shutdown()
}

func TestMonitorReportsLoad(t *testing.T) {
	sim, c, net := fabric(2)
	m0 := StartMonitor(c.Node(0), net)
	StartMonitor(c.Node(1), net)
	// Put three CPU jobs on node 1.
	for i := 0; i < 3; i++ {
		sim.Spawn("w", func(p *vtime.Proc) { c.Node(1).UseCPU(p, 100) })
	}
	sim.RunUntil(3.5)
	li, ok := m0.Lookup(1)
	if !ok {
		t.Fatal("node 1 unknown to node 0")
	}
	if li.CPU < 2.5 {
		t.Fatalf("node 1 CPU load = %v, want ≈ 3", li.CPU)
	}
	li0, _ := m0.Lookup(0)
	if li0.CPU > 0.2 {
		t.Fatalf("node 0 CPU load = %v, want ≈ 0 (monitor overhead only)", li0.CPU)
	}
	sim.Shutdown()
}

func TestFailedNodeDropsFromPool(t *testing.T) {
	sim, c, net := fabric(3)
	m0 := StartMonitor(c.Node(0), net)
	StartMonitor(c.Node(1), net)
	StartMonitor(c.Node(2), net)
	sim.RunUntil(2.5)
	if len(m0.Table()) != 3 {
		t.Fatalf("expected 3 nodes before failure")
	}
	c.Node(2).Fail()
	sim.RunUntil(7.0) // > StaleAfter past the last broadcast
	tbl := m0.Table()
	if len(tbl) != 2 {
		t.Fatalf("failed node still in pool: %+v", tbl)
	}
	for _, li := range tbl {
		if li.Node == 2 {
			t.Fatalf("node 2 should have been dropped")
		}
	}
	sim.Shutdown()
}

func TestDynamicJoin(t *testing.T) {
	sim, c, net := fabric(2)
	m0 := StartMonitor(c.Node(0), net)
	StartMonitor(c.Node(1), net)
	sim.RunUntil(2.5)
	if len(m0.Table()) != 2 {
		t.Fatal("setup failed")
	}
	// A node joins the pool simply by broadcasting (Section 3.1).
	n2 := c.Add(cluster.TestbedHardware())
	StartMonitor(n2, net)
	sim.RunUntil(5.0)
	if len(m0.Table()) != 3 {
		t.Fatalf("joined node not visible: %+v", m0.Table())
	}
	sim.Shutdown()
}

// --- Load functions and policies ------------------------------------------

func TestWeightsLoad(t *testing.T) {
	li := LoadInfo{CPU: 2, Disk: 1}
	if got := QAWeights.Load(li); !almostEqual(got, 0.79*2+0.21*1) {
		t.Fatalf("QA load = %v", got)
	}
	if got := PRWeights.Load(li); !almostEqual(got, 0.2*2+0.8*1) {
		t.Fatalf("PR load = %v", got)
	}
	if got := APWeights.Load(li); !almostEqual(got, 2) {
		t.Fatalf("AP load = %v", got)
	}
}

func TestUnderloadConditions(t *testing.T) {
	idle := LoadInfo{}
	if !PRUnderloaded(idle) || !APUnderloaded(idle) {
		t.Fatal("idle node must be under-loaded for both modules")
	}
	// A node solidly busier than one AP sub-task is not under-loaded; the
	// threshold carries a small sampling tolerance above 1.0 (see load.go).
	oneAP := LoadInfo{CPU: 1.2}
	if APUnderloaded(oneAP) {
		t.Fatal("a node busier than one AP sub-task is not AP-under-loaded (Eq. 8)")
	}
	onePR := LoadInfo{CPU: 0.25, Disk: 1.0}
	if PRUnderloaded(onePR) {
		t.Fatal("a node running one PR sub-task is not PR-under-loaded (Eq. 7)")
	}
	halfBusy := LoadInfo{CPU: 0.4, Disk: 0.2}
	if !APUnderloaded(halfBusy) || !PRUnderloaded(halfBusy) {
		t.Fatal("lightly loaded node must be under-loaded")
	}
}

func TestPickQuestionNode(t *testing.T) {
	loads := []LoadInfo{
		{Node: 0, CPU: 4, Disk: 2},
		{Node: 1, CPU: 0.5, Disk: 0.1},
		{Node: 2, CPU: 2, Disk: 1},
	}
	target, migrate := PickQuestionNode(0, loads, 0)
	if !migrate || target != 1 {
		t.Fatalf("overloaded node should migrate to 1: got %d %v", target, migrate)
	}
	// Small gap: no migration (anti-thrash rule).
	loads2 := []LoadInfo{
		{Node: 0, CPU: 1.0},
		{Node: 1, CPU: 0.5},
	}
	target, migrate = PickQuestionNode(0, loads2, 0)
	if migrate || target != 0 {
		t.Fatalf("small gap should not migrate: got %d %v", target, migrate)
	}
	// Already least loaded.
	target, migrate = PickQuestionNode(1, loads, 0)
	if migrate || target != 1 {
		t.Fatalf("least-loaded node should stay: got %d %v", target, migrate)
	}
	// Empty table.
	if target, migrate = PickQuestionNode(3, nil, 0); migrate || target != 3 {
		t.Fatal("empty table must keep the question local")
	}
}

// --- Meta-scheduler --------------------------------------------------------

func TestMetaScheduleSelectsUnderloaded(t *testing.T) {
	loads := []LoadInfo{
		{Node: 0, CPU: 0.1},
		{Node: 1, CPU: 2.0},
		{Node: 2, CPU: 0.5},
	}
	sel := MetaSchedule(loads, APWeights.Load, APUnderloaded, 0)
	if len(sel) != 2 {
		t.Fatalf("selected %d nodes, want 2 (0 and 2)", len(sel))
	}
	total := 0.0
	byNode := map[int]float64{}
	for _, wn := range sel {
		total += wn.Weight
		byNode[wn.Node] = wn.Weight
	}
	if !almostEqual(total, 1) {
		t.Fatalf("weights sum to %v", total)
	}
	if byNode[0] <= byNode[2] {
		t.Fatalf("less-loaded node 0 should get more weight: %v", byNode)
	}
	if _, ok := byNode[1]; ok {
		t.Fatal("overloaded node 1 selected")
	}
}

func TestMetaScheduleFallbackToLeastLoaded(t *testing.T) {
	loads := []LoadInfo{
		{Node: 0, CPU: 3.0},
		{Node: 1, CPU: 2.0},
		{Node: 2, CPU: 4.0},
	}
	sel := MetaSchedule(loads, APWeights.Load, APUnderloaded, 0)
	if len(sel) != 1 || sel[0].Node != 1 || !almostEqual(sel[0].Weight, 1) {
		t.Fatalf("fallback broken: %+v", sel)
	}
}

func TestMetaScheduleEmpty(t *testing.T) {
	if sel := MetaSchedule(nil, APWeights.Load, APUnderloaded, 0); sel != nil {
		t.Fatalf("empty loads should select nothing, got %+v", sel)
	}
}

// Property: weights are positive and normalized for any load table.
func TestMetaScheduleNormalizationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		loads := make([]LoadInfo, n)
		for i := range loads {
			loads[i] = LoadInfo{Node: i, CPU: rng.Float64() * 4, Disk: rng.Float64() * 4}
		}
		sel := MetaSchedule(loads, APWeights.Load, APUnderloaded, 0)
		if len(sel) == 0 {
			return false
		}
		total := 0.0
		for _, wn := range sel {
			if wn.Weight <= 0 {
				return false
			}
			total += wn.Weight
		}
		return almostEqual(total, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- Partitioners ----------------------------------------------------------

// recorder is a Runner capturing assignments in virtual time.
type recorder struct {
	mu        []assignment
	perItem   float64 // virtual seconds per item
	failNodes map[int]bool
	failOnce  map[int]bool
}

type assignment struct {
	node  int
	items []int
}

func (r *recorder) run(p *vtime.Proc, node int, items []int) error {
	if r.failNodes[node] {
		return errors.New("node failed")
	}
	if r.failOnce[node] {
		delete(r.failOnce, node)
		return errors.New("node failed transiently")
	}
	if r.perItem > 0 {
		p.Sleep(r.perItem * float64(len(items)))
	}
	r.mu = append(r.mu, assignment{node: node, items: append([]int(nil), items...)})
	return nil
}

func (r *recorder) processed() []int {
	var all []int
	for _, a := range r.mu {
		all = append(all, a.items...)
	}
	sort.Ints(all)
	return all
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func staticSel(ws ...WeightedNode) Selector {
	return func() []WeightedNode { return ws }
}

func runPartitionTest(t *testing.T, part Partitioner, sel Selector, items []int, rec *recorder) error {
	t.Helper()
	sim := vtime.NewSim()
	var err error
	sim.Spawn("driver", func(p *vtime.Proc) {
		err = part.Distribute(p, sel, items, rec.run)
	})
	sim.Run()
	return err
}

func TestSENDConsecutiveWeighted(t *testing.T) {
	rec := &recorder{}
	sel := staticSel(WeightedNode{0, 0.5}, WeightedNode{1, 0.25}, WeightedNode{2, 0.25})
	if err := runPartitionTest(t, NewSEND(), sel, seq(8), rec); err != nil {
		t.Fatal(err)
	}
	if got := rec.processed(); len(got) != 8 {
		t.Fatalf("processed %d items, want 8", len(got))
	}
	byNode := map[int][]int{}
	for _, a := range rec.mu {
		byNode[a.node] = append(byNode[a.node], a.items...)
	}
	if len(byNode[0]) != 4 || len(byNode[1]) != 2 || len(byNode[2]) != 2 {
		t.Fatalf("weighted split broken: %v", byNode)
	}
	// SEND partitions are consecutive runs.
	for node, items := range byNode {
		for i := 1; i < len(items); i++ {
			if items[i] != items[i-1]+1 {
				t.Fatalf("node %d items not consecutive: %v", node, items)
			}
		}
	}
}

func TestISENDInterleaves(t *testing.T) {
	rec := &recorder{}
	sel := staticSel(WeightedNode{0, 0.5}, WeightedNode{1, 0.5})
	if err := runPartitionTest(t, NewISEND(), sel, seq(8), rec); err != nil {
		t.Fatal(err)
	}
	byNode := map[int][]int{}
	for _, a := range rec.mu {
		byNode[a.node] = append(byNode[a.node], a.items...)
	}
	if len(byNode[0]) != 4 || len(byNode[1]) != 4 {
		t.Fatalf("counts wrong: %v", byNode)
	}
	// With equal weights the deal alternates: node0 gets even ranks.
	for node, items := range byNode {
		consecutive := 0
		for i := 1; i < len(items); i++ {
			if items[i] == items[i-1]+1 {
				consecutive++
			}
		}
		if consecutive == len(items)-1 {
			t.Fatalf("node %d items fully consecutive — not interleaved: %v", node, items)
		}
	}
	if got := rec.processed(); len(got) != 8 {
		t.Fatalf("processed %d items", len(got))
	}
}

func TestRECVPullsByAvailability(t *testing.T) {
	// Node 0 is fast, node 1 slow: with receiver control node 0 must
	// process more chunks.
	sim := vtime.NewSim()
	rec := struct{ counts map[int]int }{counts: map[int]int{}}
	run := func(p *vtime.Proc, node int, items []int) error {
		d := 1.0
		if node == 1 {
			d = 4.0
		}
		p.Sleep(d)
		rec.counts[node] += len(items)
		return nil
	}
	var err error
	sim.Spawn("driver", func(p *vtime.Proc) {
		err = NewRECV(2).Distribute(p, staticSel(WeightedNode{0, 0.5}, WeightedNode{1, 0.5}), seq(20), run)
	})
	sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rec.counts[0]+rec.counts[1] != 20 {
		t.Fatalf("items lost: %v", rec.counts)
	}
	if rec.counts[0] <= rec.counts[1] {
		t.Fatalf("fast node should process more: %v", rec.counts)
	}
}

func TestRECVChunkRemainder(t *testing.T) {
	rec := &recorder{}
	if err := runPartitionTest(t, NewRECV(4), staticSel(WeightedNode{0, 1}), seq(10), rec); err != nil {
		t.Fatal(err)
	}
	// 10 items, chunk 4 → chunks of 4, 4, 2 (remainder ≥ half a chunk
	// stands alone).
	if len(rec.mu) != 3 {
		t.Fatalf("chunks = %d, want 3: %+v", len(rec.mu), rec.mu)
	}
	sizes := []int{len(rec.mu[0].items), len(rec.mu[1].items), len(rec.mu[2].items)}
	if sizes[0] != 4 || sizes[1] != 4 || sizes[2] != 2 {
		t.Fatalf("chunk sizes %v, want [4 4 2]", sizes)
	}

	// 9 items, chunk 4 → remainder 1 < half a chunk folds into the last:
	// chunks of 4, 5.
	rec2 := &recorder{}
	if err := runPartitionTest(t, NewRECV(4), staticSel(WeightedNode{0, 1}), seq(9), rec2); err != nil {
		t.Fatal(err)
	}
	if len(rec2.mu) != 2 || len(rec2.mu[0].items) != 4 || len(rec2.mu[1].items) != 5 {
		t.Fatalf("fold-in broken: %+v", rec2.mu)
	}
}

func TestPartitionersHandleEmptyItems(t *testing.T) {
	for _, part := range []Partitioner{NewSEND(), NewISEND(), NewRECV(5)} {
		rec := &recorder{}
		if err := runPartitionTest(t, part, staticSel(WeightedNode{0, 1}), nil, rec); err != nil {
			t.Fatalf("%s: %v", part.Name(), err)
		}
		if len(rec.mu) != 0 {
			t.Fatalf("%s ran sub-tasks for empty input", part.Name())
		}
	}
}

func TestFailureRecoverySenderControlled(t *testing.T) {
	for _, part := range []Partitioner{NewSEND(), NewISEND()} {
		rec := &recorder{failOnce: map[int]bool{1: true}}
		calls := 0
		sel := func() []WeightedNode {
			calls++
			if calls == 1 {
				return []WeightedNode{{0, 0.5}, {1, 0.5}}
			}
			return []WeightedNode{{0, 1}} // node 1 dropped after failure
		}
		if err := runPartitionTest(t, part, sel, seq(10), rec); err != nil {
			t.Fatalf("%s: %v", part.Name(), err)
		}
		if got := rec.processed(); len(got) != 10 {
			t.Fatalf("%s: processed %d items after failure, want 10", part.Name(), len(got))
		}
		if calls < 2 {
			t.Fatalf("%s: recovery did not re-select processors", part.Name())
		}
	}
}

func TestFailureRecoveryRECV(t *testing.T) {
	rec := &recorder{failNodes: map[int]bool{1: true}}
	if err := runPartitionTest(t, NewRECV(2),
		staticSel(WeightedNode{0, 0.5}, WeightedNode{1, 0.5}), seq(10), rec); err != nil {
		t.Fatal(err)
	}
	if got := rec.processed(); len(got) != 10 {
		t.Fatalf("processed %d items, want 10", len(got))
	}
	for _, a := range rec.mu {
		if a.node == 1 {
			t.Fatal("failed node processed a chunk")
		}
	}
}

func TestAllProcessorsDead(t *testing.T) {
	for _, part := range []Partitioner{NewSEND(), NewISEND(), NewRECV(2)} {
		rec := &recorder{failNodes: map[int]bool{0: true}}
		calls := 0
		sel := func() []WeightedNode {
			calls++
			if calls == 1 {
				return []WeightedNode{{0, 1}}
			}
			return nil
		}
		err := runPartitionTest(t, part, sel, seq(4), rec)
		if !errors.Is(err, ErrNoProcessors) {
			t.Fatalf("%s: err = %v, want ErrNoProcessors", part.Name(), err)
		}
	}
}

// Property: every partitioner processes each item exactly once for random
// weights and random transient failures.
func TestPartitionExactlyOnceProperty(t *testing.T) {
	parts := []func() Partitioner{
		NewSEND, NewISEND, func() Partitioner { return NewRECV(3) },
	}
	f := func(seed int64, which uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		part := parts[int(which)%len(parts)]()
		nNodes := 1 + rng.Intn(5)
		nItems := rng.Intn(40)
		var ws []WeightedNode
		total := 0.0
		raw := make([]float64, nNodes)
		for i := range raw {
			raw[i] = 0.1 + rng.Float64()
			total += raw[i]
		}
		for i, r := range raw {
			ws = append(ws, WeightedNode{Node: i, Weight: r / total})
		}
		failOnce := map[int]bool{}
		if nNodes > 1 && rng.Float64() < 0.5 {
			failOnce[rng.Intn(nNodes)] = true
		}
		rec := &recorder{failOnce: failOnce, perItem: 0.01}
		err := runPartitionTest(t, part, staticSel(ws...), seq(nItems), rec)
		if err != nil {
			return false
		}
		got := rec.processed()
		if len(got) != nItems {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestApportionSums(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100)
		k := 1 + rng.Intn(8)
		var ws []WeightedNode
		total := 0.0
		raw := make([]float64, k)
		for i := range raw {
			raw[i] = 0.05 + rng.Float64()
			total += raw[i]
		}
		for i, r := range raw {
			ws = append(ws, WeightedNode{Node: i, Weight: r / total})
		}
		counts := apportion(n, ws)
		sum := 0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			sum += c
		}
		return sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// --- Gradient model ---------------------------------------------------------

func TestGradientProximity(t *testing.T) {
	// Ring of 6; node 3 light. Proximities: 3,2,1,0,1,2.
	loads := []LoadInfo{
		{Node: 0, CPU: 3}, {Node: 1, CPU: 3}, {Node: 2, CPU: 3},
		{Node: 3, CPU: 0.2}, {Node: 4, CPU: 3}, {Node: 5, CPU: 3},
	}
	prox := GradientProximity(6, loads)
	want := []int{3, 2, 1, 0, 1, 2}
	for i := range want {
		if prox[i] != want[i] {
			t.Fatalf("prox = %v, want %v", prox, want)
		}
	}
}

func TestGradientProximityNoLightNodes(t *testing.T) {
	loads := []LoadInfo{{Node: 0, CPU: 5}, {Node: 1, CPU: 5}}
	prox := GradientProximity(2, loads)
	for _, p := range prox {
		if p < gradientInfinity {
			t.Fatalf("no light node, but proximity %v", prox)
		}
	}
}

func TestPickGradientTarget(t *testing.T) {
	loads := []LoadInfo{
		{Node: 0, CPU: 4, Queue: 3}, // overloaded self
		{Node: 1, CPU: 3},
		{Node: 2, CPU: 0.1}, // light
		{Node: 3, CPU: 3},
	}
	target, migrate := PickGradientTarget(0, 4, loads)
	if !migrate {
		t.Fatal("overloaded node next to a gradient should migrate")
	}
	// Both neighbours (1 and 3) are one hop from node 2 on a 4-ring;
	// either is a valid downhill step.
	if target != 1 && target != 3 {
		t.Fatalf("target = %d, want a neighbour of 0", target)
	}
	// A light node itself must not migrate.
	if _, m := PickGradientTarget(2, 4, loads); m {
		t.Fatal("light node migrated")
	}
	// Single node cannot migrate.
	if _, m := PickGradientTarget(0, 1, loads); m {
		t.Fatal("single-node ring migrated")
	}
}
