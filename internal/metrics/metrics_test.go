package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev = %v", s.Stddev)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.P50 != 7 || s.P90 != 7 || s.P99 != 7 || s.Stddev != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

// TestP99SmallSampleInterpolation pins the tail-percentile interpolation at
// small sample sizes: for {1..5}, the 0.99-quantile position is 0.99·4 =
// 3.96, i.e. 4·0.04 + 5·0.96 = 4.96; for a pair {10, 20} it is 10 + 0.99·10.
func TestP99SmallSampleInterpolation(t *testing.T) {
	s := Summarize([]float64{5, 3, 1, 4, 2}) // unsorted on purpose
	if math.Abs(s.P99-4.96) > 1e-9 {
		t.Fatalf("P99 of {1..5} = %v, want 4.96", s.P99)
	}
	s = Summarize([]float64{20, 10})
	if math.Abs(s.P99-19.9) > 1e-9 {
		t.Fatalf("P99 of {10,20} = %v, want 19.9", s.P99)
	}
	// P99 sits between P90 and Max.
	if !(s.P90 <= s.P99 && s.P99 <= s.Max) {
		t.Fatalf("ordering violated: %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestThroughput(t *testing.T) {
	if got := ThroughputPerMinute(96, 480); got != 12 {
		t.Fatalf("throughput = %v, want 12", got)
	}
	if got := ThroughputPerMinute(5, 0); got != 0 {
		t.Fatal("zero makespan must not divide")
	}
}

func TestSpeedupAndEfficiency(t *testing.T) {
	if Speedup(100, 25) != 4 {
		t.Fatal("speedup")
	}
	if Speedup(100, 0) != 0 {
		t.Fatal("speedup zero guard")
	}
	if Efficiency(4, 8) != 0.5 {
		t.Fatal("efficiency")
	}
	if Efficiency(4, 0) != 0 {
		t.Fatal("efficiency zero guard")
	}
}

// Property: Min ≤ P50 ≤ P90 ≤ Max and Min ≤ Mean ≤ Max.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 &&
			s.P99 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
