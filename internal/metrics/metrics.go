// Package metrics provides the summary statistics the experiment harness
// reports: latency distributions, throughput, and speedup helpers.
package metrics

import (
	"math"
	"sort"
)

// Summary describes a sample of observations.
type Summary struct {
	Count  int
	Mean   float64
	Min    float64
	Max    float64
	P50    float64
	P90    float64
	P99    float64
	Stddev float64
}

// Summarize computes summary statistics over xs (which it does not modify).
func Summarize(xs []float64) Summary {
	var s Summary
	s.Count = len(xs)
	if s.Count == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.P50 = percentile(sorted, 0.50)
	s.P90 = percentile(sorted, 0.90)
	s.P99 = percentile(sorted, 0.99)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(s.Count)
	varsum := 0.0
	for _, x := range sorted {
		d := x - s.Mean
		varsum += d * d
	}
	s.Stddev = math.Sqrt(varsum / float64(s.Count))
	return s
}

// percentile interpolates the p-quantile of a sorted sample.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ThroughputPerMinute converts a completed-question count and a makespan in
// virtual seconds into the paper's questions/minute metric (Table 5).
func ThroughputPerMinute(completed int, makespanSeconds float64) float64 {
	if makespanSeconds <= 0 {
		return 0
	}
	return float64(completed) / makespanSeconds * 60
}

// Speedup is T1/TN, guarding division by zero.
func Speedup(t1, tn float64) float64 {
	if tn <= 0 {
		return 0
	}
	return t1 / tn
}

// Efficiency is speedup divided by processor count.
func Efficiency(speedup float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	return speedup / float64(n)
}
