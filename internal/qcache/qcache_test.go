package qcache

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCacheHitMissAndLRUOrder(t *testing.T) {
	c := New(2, time.Minute)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// "a" is now most recently used; inserting "c" must evict "b".
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU evicted the wrong entry: b survived")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/2", st.Hits, st.Misses)
	}
	if st.Len != 2 {
		t.Fatalf("len = %d, want 2", st.Len)
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := New(4, time.Minute)
	c.Put("k", "old")
	c.Put("k", "new")
	if c.Len() != 1 {
		t.Fatalf("len = %d after double Put, want 1", c.Len())
	}
	if v, _ := c.Get("k"); v.(string) != "new" {
		t.Fatalf("Get = %v, want new", v)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	c := New(8, 10*time.Second)
	c.SetClock(func() time.Time { return now })
	c.Put("k", 42)

	now = now.Add(9 * time.Second)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry expired before its TTL")
	}
	now = now.Add(2 * time.Second) // 11s after insertion
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry survived past its TTL")
	}
	st := c.Stats()
	if st.Expirations != 1 {
		t.Fatalf("expirations = %d, want 1", st.Expirations)
	}
	if st.Len != 0 {
		t.Fatalf("expired entry still resident: len = %d", st.Len)
	}
	// Put refreshes the stored time: re-inserting restarts the clock.
	c.Put("k", 43)
	now = now.Add(9 * time.Second)
	if v, ok := c.Get("k"); !ok || v.(int) != 43 {
		t.Fatalf("refreshed entry missing: %v, %v", v, ok)
	}
}

func TestCacheNilSafety(t *testing.T) {
	var c *Cache
	c.Put("k", 1) // must not panic
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache has entries")
	}
	c.Purge()
	c.SetClock(time.Now)
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

func TestCachePurge(t *testing.T) {
	c := New(4, time.Minute)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len = %d after purge", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("purged entry still served")
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Who invented the telephone?", "who invented the telephone"},
		{"  who   invented\tthe\ntelephone ?? ", "who invented the telephone"},
		{"WHO INVENTED THE TELEPHONE", "who invented the telephone"},
		{"", ""},
		{"   ", ""},
		{"what is X!.", "what is x"},
	}
	for _, tc := range cases {
		if got := Normalize(tc.in); got != tc.want {
			t.Errorf("Normalize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestGroupCoalesces runs a deterministic leader/follower schedule: the
// leader enters fn and blocks; a follower issued while the leader is inside
// must receive the leader's value with shared=true, and fn must have run
// exactly once.
func TestGroupCoalesces(t *testing.T) {
	g := NewGroup()
	entered := make(chan struct{})
	release := make(chan struct{})
	var runs int

	leaderDone := make(chan struct{})
	var leaderVal any
	var leaderShared bool
	go func() {
		defer close(leaderDone)
		leaderVal, leaderShared, _ = g.Do("q", func() (any, error) {
			runs++
			close(entered)
			<-release
			return "answer", nil
		})
	}()
	<-entered // leader is inside fn now

	followerDone := make(chan struct{})
	var followerVal any
	var followerShared bool
	go func() {
		defer close(followerDone)
		followerVal, followerShared, _ = g.Do("q", func() (any, error) {
			runs++ // must never execute
			return "duplicate", nil
		})
	}()
	// Give the follower time to register against the in-flight call; it
	// cannot complete before release regardless.
	time.Sleep(20 * time.Millisecond)
	close(release)
	<-leaderDone
	<-followerDone

	if runs != 1 {
		t.Fatalf("fn ran %d times, want 1", runs)
	}
	if leaderShared {
		t.Fatal("leader reported shared=true")
	}
	if !followerShared {
		t.Fatal("follower reported shared=false")
	}
	if leaderVal.(string) != "answer" || followerVal.(string) != "answer" {
		t.Fatalf("values = %v / %v, want answer", leaderVal, followerVal)
	}
	// The call entry is gone: a later Do runs fn again.
	_, shared, _ := g.Do("q", func() (any, error) { return "fresh", nil })
	if shared {
		t.Fatal("post-completion Do was coalesced against a finished call")
	}
}

// TestGroupDistinctKeysDoNotCoalesce checks key isolation under concurrency.
func TestGroupDistinctKeysDoNotCoalesce(t *testing.T) {
	g := NewGroup()
	const n = 8
	var wg sync.WaitGroup
	vals := make([]any, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			vals[i], _, _ = g.Do(fmt.Sprintf("k%d", i), func() (any, error) {
				return i, nil
			})
		}()
	}
	wg.Wait()
	for i, v := range vals {
		if v.(int) != i {
			t.Fatalf("key k%d got value %v", i, v)
		}
	}
}

// TestGroupPropagatesErrors checks both leader and followers see fn's error.
func TestGroupPropagatesErrors(t *testing.T) {
	g := NewGroup()
	want := errors.New("pipeline failed")
	_, _, err := g.Do("q", func() (any, error) { return nil, want })
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

// TestGroupNilRunsDirectly checks the disabled-cache path.
func TestGroupNilRunsDirectly(t *testing.T) {
	var g *Group
	v, shared, err := g.Do("q", func() (any, error) { return 7, nil })
	if err != nil || shared || v.(int) != 7 {
		t.Fatalf("nil group: v=%v shared=%v err=%v", v, shared, err)
	}
}
