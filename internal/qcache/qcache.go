// Package qcache is the serving-path result cache: a small, dependency-free
// LRU with per-entry TTL expiry plus a singleflight group that coalesces
// identical in-flight computations. The live node puts one in front of the
// whole question pipeline (answers keyed by normalized question text) and
// one in front of paragraph retrieval+scoring (keyed by keywords and
// sub-collection) — the "Dispatching Odyssey" observation that real cluster
// workloads are dominated by repeated and skewed requests means the cheapest
// question to serve is the one you already answered.
//
// Consistency model: every node owns an identical, immutable collection
// replica, so a cached answer can never be stale with respect to the corpus;
// the TTL exists to bound memory residency and to age out results computed
// under a different peer population (an answer produced while peers were
// partitioned away is still *correct*, just possibly slower than one the
// full pool would produce — it carries the same answers either way because
// failed sub-tasks degrade to local execution). Chaos runs disable caching
// wholesale so deterministic event logs never depend on cache state.
package qcache

import (
	"container/list"
	"strings"
	"sync"
	"time"
)

// Defaults chosen for a demo-scale node: a few hundred distinct questions
// and a few thousand PR partials dwarf the working set of the generated
// corpus while staying irrelevant memory-wise.
const (
	DefaultCapacity = 1024
	DefaultTTL      = 60 * time.Second
)

// Cache is a mutex-guarded LRU with TTL expiry. The zero *Cache (nil) is a
// valid always-miss cache: Get misses, Put is a no-op — callers gate caching
// by simply not constructing one.
type Cache struct {
	capacity int
	ttl      time.Duration
	now      func() time.Time // injectable clock (tests)

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions, expirations int64
}

// entry is one cached value with its insertion time.
type entry struct {
	key    string
	val    any
	stored time.Time
}

// New builds a cache holding at most capacity entries, each valid for ttl
// after insertion. Non-positive arguments select the defaults.
func New(capacity int, ttl time.Duration) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Cache{
		capacity: capacity,
		ttl:      ttl,
		now:      time.Now,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// SetClock replaces the cache's time source (TTL tests).
func (c *Cache) SetClock(now func() time.Time) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.now = now
	c.mu.Unlock()
}

// Get returns the live value for key. An entry past its TTL is removed and
// counted as an expiration (and a miss). Safe on a nil cache.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	ent := el.Value.(*entry)
	if c.now().Sub(ent.stored) > c.ttl {
		c.removeLocked(el)
		c.expirations++
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return ent.val, true
}

// Put stores val under key, refreshing the TTL of an existing entry and
// evicting the least recently used entry on overflow. Safe on a nil cache.
func (c *Cache) Put(key string, val any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*entry)
		ent.val = val
		ent.stored = c.now()
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&entry{key: key, val: val, stored: c.now()})
	c.items[key] = el
	if c.ll.Len() > c.capacity {
		if back := c.ll.Back(); back != nil {
			c.removeLocked(back)
			c.evictions++
		}
	}
}

// removeLocked unlinks el from both structures. Caller holds c.mu.
func (c *Cache) removeLocked(el *list.Element) {
	c.ll.Remove(el)
	delete(c.items, el.Value.(*entry).key)
}

// Len reports the current entry count (expired entries still resident count
// until a Get or eviction removes them). Safe on a nil cache.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Purge drops every entry, keeping the counters. Safe on a nil cache.
func (c *Cache) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element, c.capacity)
}

// Stats is the cache's cumulative counter snapshot.
type Stats struct {
	Hits        int64
	Misses      int64
	Evictions   int64
	Expirations int64
	Len         int
}

// Stats snapshots the counters. Safe on a nil cache (all zeros).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Expirations: c.expirations,
		Len:         c.ll.Len(),
	}
}

// Normalize canonicalizes question text for cache keying: lower-case,
// whitespace runs collapsed to single spaces, leading/trailing space and
// trailing question-mark punctuation stripped — so "Who  invented X?" and
// "who invented x" share an entry without any linguistic processing (the
// pipeline's own QP stage does the real analysis on a miss).
func Normalize(q string) string {
	q = strings.ToLower(q)
	var b strings.Builder
	b.Grow(len(q))
	space := false
	for _, r := range q {
		switch r {
		case ' ', '\t', '\n', '\r':
			space = true
		default:
			if space && b.Len() > 0 {
				b.WriteByte(' ')
			}
			space = false
			b.WriteRune(r)
		}
	}
	return strings.TrimRight(b.String(), " ?!.")
}
