package qcache

import "sync"

// Group coalesces concurrent computations that share a key: the first
// caller (the leader) runs fn, every concurrent duplicate (a follower)
// blocks until the leader finishes and receives the same value. This is the
// request-dedup half of the serving-path cache — under the skewed workloads
// of "Dispatching Odyssey" a popular question arrives in bursts, and without
// coalescing every burst member would race past the still-empty cache into
// the full pipeline.
//
// Unlike golang.org/x/sync/singleflight this minimal version is tailored to
// the cache's needs: values are any, there is no Forget (the call entry is
// removed as the leader completes), and the shared flag tells followers they
// were coalesced (the node surfaces it as Response.Coalesced).
type Group struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// flightCall is one in-flight computation.
type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// NewGroup returns an empty group.
func NewGroup() *Group {
	return &Group{calls: make(map[string]*flightCall)}
}

// Do executes fn for key, coalescing concurrent duplicates. It returns fn's
// value and error; shared is true when this caller was a follower that
// received another caller's result. A nil group runs fn directly (no
// coalescing) — the disabled-cache configuration.
func (g *Group) Do(key string, fn func() (any, error)) (v any, shared bool, err error) {
	if g == nil {
		v, err = fn()
		return v, false, err
	}
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}
