// Package simnet models the testbed's interconnection network: a shared-
// medium (star-configuration Ethernet in the paper, Section 6) link whose
// bandwidth is divided among concurrent transfers, plus a small fixed
// per-message latency. Transfers to or from failed nodes error out, which is
// how the distributed Q/A system observes "TCP errors" and triggers the
// partitioners' failure recovery (Section 4.1.1).
//
// Besides point-to-point transfers the network carries the load monitors'
// periodic broadcasts: a broadcast charges one packet's worth of bandwidth
// (it is a shared medium) and delivers the payload to every listener.
package simnet

import (
	"errors"
	"fmt"

	"distqa/internal/cluster"
	"distqa/internal/fault"
	"distqa/internal/vtime"
)

// ErrNodeFailed is returned by transfers whose source or destination node
// crashed before or during the transfer. It stands in for the TCP reset the
// real system would observe.
var ErrNodeFailed = errors.New("simnet: peer node failed")

// Config describes the network fabric.
type Config struct {
	// BandwidthBps is the shared medium capacity in bits per second
	// (100e6 for the paper's testbed Ethernet).
	BandwidthBps float64
	// LatencySec is the fixed per-message latency in seconds.
	LatencySec float64
	// LoopbackBps is the effective bandwidth for same-node "transfers"
	// (memory copies). The analytical model's B_mem. Zero disables charging.
	LoopbackBps float64
}

// Testbed returns the paper's network profile: 100 Mbps switched Ethernet
// with ~0.2 ms latency, and an 800 MB/s memory bus for local copies.
func Testbed() Config {
	return Config{
		BandwidthBps: 100e6,
		LatencySec:   0.0002,
		LoopbackBps:  800e6 * 8,
	}
}

// Network is the simulated fabric connecting a cluster's nodes.
type Network struct {
	sim  *vtime.Sim
	cfg  Config
	link *vtime.PS // shared medium, capacity in bytes/second

	listeners []func(from int, payload any)

	// inj, when non-nil, is consulted per transfer/broadcast; it models
	// asymmetric partitions, message loss, extra latency and duplicate
	// delivery, deterministically in virtual time (package fault).
	inj *fault.Injector

	// Traffic accounting.
	bytesSent  float64
	msgsSent   int
	broadcasts int
	injected   int
}

// New creates a network over the given simulation.
func New(sim *vtime.Sim, cfg Config) *Network {
	if cfg.BandwidthBps <= 0 {
		panic("simnet: bandwidth must be positive")
	}
	return &Network{
		sim:  sim,
		cfg:  cfg,
		link: vtime.NewPS(sim, "net", cfg.BandwidthBps/8),
	}
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// SetInjector installs (or, with nil, removes) a fault injector consulted
// for every transfer and broadcast. Rule identities are node display names
// ("N1", "N2", ...) and the ops fault.OpTransfer / fault.OpBroadcast.
// Injected faults are deterministic under the injector's seed because the
// simulator itself is deterministic.
func (n *Network) SetInjector(inj *fault.Injector) { n.inj = inj }

// InjectedFaults reports how many transfers/broadcasts the injector
// perturbed (dropped, severed, delayed or duplicated).
func (n *Network) InjectedFaults() int { return n.injected }

// Transfer moves size bytes from node src to node dst, blocking p for the
// transmission time (bandwidth shared with concurrent transfers, plus fixed
// latency). Same-node transfers are charged to the loopback (memory) path.
// It returns ErrNodeFailed if either endpoint has crashed; the bandwidth for
// the partial transfer is still consumed, as it would be on a real wire.
func (n *Network) Transfer(p *vtime.Proc, src, dst *cluster.Node, size float64) error {
	if src.Failed() || dst.Failed() {
		return fmt.Errorf("transfer %s->%s: %w", src.Name(), dst.Name(), ErrNodeFailed)
	}
	if size < 0 {
		size = 0
	}
	if src == dst {
		if n.cfg.LoopbackBps > 0 && size > 0 {
			p.Sleep(size * 8 / n.cfg.LoopbackBps)
		}
		if src.Failed() {
			return fmt.Errorf("transfer %s->%s: %w", src.Name(), dst.Name(), ErrNodeFailed)
		}
		return nil
	}
	n.msgsSent++
	n.bytesSent += size
	n.link.Use(p, size)
	if n.cfg.LatencySec > 0 {
		p.Sleep(n.cfg.LatencySec)
	}
	if d := n.inj.Decide(src.Name(), dst.Name(), fault.OpTransfer); d.Faulty() {
		n.injected++
		if d.Delay > 0 {
			p.Sleep(d.Delay.Seconds())
		}
		if d.Drop || d.Sever {
			// The bandwidth was consumed, the payload never arrived — the
			// caller observes the same TCP-error shape as a crashed peer,
			// so the partitioners' recovery path fires.
			return fmt.Errorf("transfer %s->%s: injected fault: %w", src.Name(), dst.Name(), ErrNodeFailed)
		}
	}
	if src.Failed() || dst.Failed() {
		return fmt.Errorf("transfer %s->%s: %w", src.Name(), dst.Name(), ErrNodeFailed)
	}
	return nil
}

// Subscribe registers a listener invoked (in the scheduler context — it must
// not block) for every Broadcast. The load monitors use this as their
// receive path.
func (n *Network) Subscribe(fn func(from int, payload any)) {
	n.listeners = append(n.listeners, fn)
}

// Broadcast sends payload from node src to every subscriber, charging one
// packet of the given size against the shared medium. Listeners on failed
// nodes are the listeners' own problem: delivery is fabric-level.
func (n *Network) Broadcast(p *vtime.Proc, src *cluster.Node, size float64, payload any) {
	if src.Failed() {
		return
	}
	n.broadcasts++
	n.bytesSent += size
	n.link.Use(p, size)
	if n.cfg.LatencySec > 0 {
		p.Sleep(n.cfg.LatencySec)
	}
	deliveries := 1
	if d := n.inj.Decide(src.Name(), "", fault.OpBroadcast); d.Faulty() {
		n.injected++
		if d.Delay > 0 {
			p.Sleep(d.Delay.Seconds())
		}
		if d.Drop || d.Sever {
			// Heartbeat blackout: the medium was used but nobody heard it.
			return
		}
		if d.Duplicate {
			deliveries = 2
		}
	}
	from := src.ID()
	for i := 0; i < deliveries; i++ {
		for _, fn := range n.listeners {
			fn(from, payload)
		}
	}
}

// BytesSent reports the cumulative payload bytes offered to the medium.
func (n *Network) BytesSent() float64 { return n.bytesSent }

// MessagesSent reports the number of point-to-point transfers initiated.
func (n *Network) MessagesSent() int { return n.msgsSent }

// Broadcasts reports the number of broadcasts sent.
func (n *Network) Broadcasts() int { return n.broadcasts }

// Utilization reports the cumulative busy fraction of the medium since the
// start of the simulation.
func (n *Network) Utilization() float64 {
	if now := n.sim.Now(); now > 0 {
		return n.link.BusyTime() / now
	}
	return 0
}

// Mailbox is an addressed message queue: the per-node, per-service inbox the
// distributed Q/A system's RPC layer is built on.
type Mailbox struct {
	q *vtime.Queue
}

// NewMailbox creates an empty mailbox.
func NewMailbox(sim *vtime.Sim) *Mailbox {
	return &Mailbox{q: vtime.NewQueue(sim)}
}

// Deliver enqueues a message without charging network time (the caller is
// expected to have paid via Transfer).
func (m *Mailbox) Deliver(msg any) { m.q.Put(msg) }

// Receive blocks until a message is available.
func (m *Mailbox) Receive(p *vtime.Proc) any { return m.q.Get(p) }

// ReceiveTimeout blocks up to d seconds; ok=false on timeout.
func (m *Mailbox) ReceiveTimeout(p *vtime.Proc, d float64) (any, bool) {
	return m.q.GetTimeout(p, d)
}

// Len reports queued messages.
func (m *Mailbox) Len() int { return m.q.Len() }
