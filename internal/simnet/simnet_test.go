package simnet

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"distqa/internal/cluster"
	"distqa/internal/vtime"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}

func testFabric(nNodes int) (*vtime.Sim, *cluster.Cluster, *Network) {
	sim := vtime.NewSim()
	c := cluster.NewCluster(sim, nNodes, cluster.TestbedHardware())
	cfg := Config{BandwidthBps: 100e6, LatencySec: 0} // latency 0 keeps math exact
	return sim, c, New(sim, cfg)
}

func TestTransferTiming(t *testing.T) {
	sim, c, net := testFabric(2)
	var end float64
	sim.Spawn("tx", func(p *vtime.Proc) {
		// 12.5 MB over 100 Mbps (=12.5 MB/s) → 1 s.
		if err := net.Transfer(p, c.Node(0), c.Node(1), 12.5e6); err != nil {
			t.Errorf("transfer: %v", err)
		}
		end = p.Now()
	})
	sim.Run()
	if !almostEqual(end, 1) {
		t.Fatalf("end = %v, want 1", end)
	}
	if net.MessagesSent() != 1 {
		t.Fatalf("msgs = %d, want 1", net.MessagesSent())
	}
}

func TestSharedMediumHalvesThroughput(t *testing.T) {
	sim, c, net := testFabric(4)
	ends := make([]float64, 2)
	for i := 0; i < 2; i++ {
		i := i
		sim.Spawn("tx", func(p *vtime.Proc) {
			if err := net.Transfer(p, c.Node(i), c.Node(i+2), 12.5e6); err != nil {
				t.Errorf("transfer: %v", err)
			}
			ends[i] = p.Now()
		})
	}
	sim.Run()
	for i, e := range ends {
		if !almostEqual(e, 2) {
			t.Fatalf("ends[%d] = %v, want 2 (two concurrent transfers share the wire)", i, e)
		}
	}
}

func TestLatencyAdds(t *testing.T) {
	sim := vtime.NewSim()
	c := cluster.NewCluster(sim, 2, cluster.TestbedHardware())
	net := New(sim, Config{BandwidthBps: 100e6, LatencySec: 0.5})
	var end float64
	sim.Spawn("tx", func(p *vtime.Proc) {
		net.Transfer(p, c.Node(0), c.Node(1), 12.5e6)
		end = p.Now()
	})
	sim.Run()
	if !almostEqual(end, 1.5) {
		t.Fatalf("end = %v, want 1.5", end)
	}
}

func TestLoopbackIsCheap(t *testing.T) {
	sim := vtime.NewSim()
	c := cluster.NewCluster(sim, 1, cluster.TestbedHardware())
	net := New(sim, Config{BandwidthBps: 100e6, LatencySec: 0.1, LoopbackBps: 800e6 * 8})
	var end float64
	sim.Spawn("tx", func(p *vtime.Proc) {
		net.Transfer(p, c.Node(0), c.Node(0), 8e6) // 8 MB at 800 MB/s = 10 ms
		end = p.Now()
	})
	sim.Run()
	if !almostEqual(end, 0.01) {
		t.Fatalf("end = %v, want 0.01 (loopback skips wire and latency)", end)
	}
	if net.MessagesSent() != 0 {
		t.Fatalf("loopback must not count as a wire message")
	}
}

func TestTransferToFailedNode(t *testing.T) {
	sim, c, net := testFabric(2)
	c.Node(1).Fail()
	var err error
	sim.Spawn("tx", func(p *vtime.Proc) {
		err = net.Transfer(p, c.Node(0), c.Node(1), 1000)
	})
	sim.Run()
	if !errors.Is(err, ErrNodeFailed) {
		t.Fatalf("err = %v, want ErrNodeFailed", err)
	}
}

func TestFailureDuringTransfer(t *testing.T) {
	sim, c, net := testFabric(2)
	var err error
	sim.Spawn("tx", func(p *vtime.Proc) {
		err = net.Transfer(p, c.Node(0), c.Node(1), 12.5e6) // takes 1 s
	})
	sim.After(0.5, c.Node(1).Fail)
	sim.Run()
	if !errors.Is(err, ErrNodeFailed) {
		t.Fatalf("err = %v, want ErrNodeFailed for mid-transfer crash", err)
	}
}

func TestBroadcastReachesAllSubscribers(t *testing.T) {
	sim, c, net := testFabric(3)
	got := map[int][]int{} // receiver -> senders seen
	for i := 0; i < 3; i++ {
		i := i
		net.Subscribe(func(from int, payload any) {
			got[i] = append(got[i], from)
		})
	}
	sim.Spawn("bcast", func(p *vtime.Proc) {
		net.Broadcast(p, c.Node(1), 64, "load")
	})
	sim.Run()
	for i := 0; i < 3; i++ {
		if len(got[i]) != 1 || got[i][0] != 1 {
			t.Fatalf("receiver %d saw %v, want [1]", i, got[i])
		}
	}
	if net.Broadcasts() != 1 {
		t.Fatalf("broadcasts = %d, want 1", net.Broadcasts())
	}
}

func TestBroadcastFromFailedNodeDropped(t *testing.T) {
	sim, c, net := testFabric(2)
	seen := 0
	net.Subscribe(func(from int, payload any) { seen++ })
	c.Node(0).Fail()
	sim.Spawn("bcast", func(p *vtime.Proc) {
		net.Broadcast(p, c.Node(0), 64, "load")
	})
	sim.Run()
	if seen != 0 {
		t.Fatalf("broadcast from failed node delivered %d times", seen)
	}
}

func TestMailboxOrdering(t *testing.T) {
	sim := vtime.NewSim()
	mb := NewMailbox(sim)
	var got []int
	sim.Spawn("rx", func(p *vtime.Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Receive(p).(int))
		}
	})
	sim.Spawn("tx", func(p *vtime.Proc) {
		for i := 0; i < 3; i++ {
			mb.Deliver(i)
			p.Sleep(1)
		}
	})
	sim.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestMailboxTimeout(t *testing.T) {
	sim := vtime.NewSim()
	mb := NewMailbox(sim)
	var ok bool
	sim.Spawn("rx", func(p *vtime.Proc) {
		_, ok = mb.ReceiveTimeout(p, 2)
	})
	sim.Run()
	if ok {
		t.Fatal("expected timeout")
	}
}

// Property: for any set of concurrent transfers, the total bytes accounted
// equals the sum of sizes, and the last completion time is at least
// totalBytes/bandwidth (work conservation on the shared medium).
func TestNetworkWorkConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sim := vtime.NewSim()
		c := cluster.NewCluster(sim, 4, cluster.TestbedHardware())
		net := New(sim, Config{BandwidthBps: 8e6}) // 1 MB/s
		n := 1 + rng.Intn(10)
		total := 0.0
		var lastEnd float64
		var firstStart = math.Inf(1)
		for i := 0; i < n; i++ {
			size := 1e3 + rng.Float64()*1e6
			start := rng.Float64() * 2
			src, dst := rng.Intn(4), rng.Intn(4)
			if src == dst {
				dst = (dst + 1) % 4
			}
			if start < firstStart {
				firstStart = start
			}
			total += size
			sim.Spawn("tx", func(p *vtime.Proc) {
				p.Sleep(start)
				net.Transfer(p, c.Node(src), c.Node(dst), size)
				if p.Now() > lastEnd {
					lastEnd = p.Now()
				}
			})
		}
		sim.Run()
		if !almostEqual(net.BytesSent(), total) {
			return false
		}
		minTime := firstStart + total/1e6
		return lastEnd+1e-6 >= minTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
