package core

import (
	"distqa/internal/nlp"
	"distqa/internal/qa"
	"distqa/internal/sched"
	"distqa/internal/vtime"
)

// runPRStage executes paragraph retrieval and scoring. Under DQA the stage
// is meta-scheduled and partitioned (one sub-collection per item); under DNS
// and INTER it runs sequentially on the home node, iterating over the
// sub-collections exactly like the sequential Falcon.
func (s *System) runPRStage(p *vtime.Proc, res *QuestionResult, home int, analysis nlp.QuestionAnalysis) ([]qa.ScoredParagraph, error) {
	nSubs := s.Engine.Set.Len()
	perNodePR := make(map[int]float64)
	perNodePS := make(map[int]float64)
	nodesUsed := make(map[int]bool)
	var collected []qa.ScoredParagraph

	if s.cfg.Strategy != DQA {
		// Sequential PR+PS on the home node.
		for sub := 0; sub < nSubs; sub++ {
			rs, prCost := s.Engine.RetrieveSub(analysis, sub)
			t0 := p.Now()
			if err := s.charge(p, home, prCost); err != nil {
				return nil, err
			}
			perNodePR[home] += p.Now() - t0
			scored, psCost := s.Engine.ScoreParagraphs(analysis, rs)
			t0 = p.Now()
			if err := s.charge(p, home, psCost); err != nil {
				return nil, err
			}
			perNodePS[home] += p.Now() - t0
			collected = append(collected, scored...)
		}
		res.PRNodes = 1
		res.Times.PR = perNodePR[home]
		res.Times.PS = perNodePS[home]
		return collected, nil
	}

	// DQA: the PR dispatcher meta-schedules against the disk-weighted load
	// function and partitions the sub-collection set.
	homeNode := s.node(home)
	sel := s.dispatchSelector(home, sched.PRWeights, s.prUnderloaded, res.ID)
	items := make([]int, nSubs)
	for i := range items {
		items[i] = i
	}
	run := func(w *vtime.Proc, node int, subs []int) error {
		remote := s.node(node)
		// Ship the keywords to the remote paragraph retrieval engine.
		t0 := w.Now()
		if err := s.Net.Transfer(w, homeNode, remote, qa.KeywordsWireBytes(analysis.Keywords)); err != nil {
			return err
		}
		res.Overhead.KeywordSend += w.Now() - t0
		var local []qa.ScoredParagraph
		for _, sub := range subs {
			rs, prCost := s.Engine.RetrieveSub(analysis, sub)
			t1 := w.Now()
			if err := s.charge(w, node, prCost); err != nil {
				return err
			}
			perNodePR[node] += w.Now() - t1
			scored, psCost := s.Engine.ScoreParagraphs(analysis, rs)
			t1 = w.Now()
			if err := s.charge(w, node, psCost); err != nil {
				return err
			}
			perNodePS[node] += w.Now() - t1
			local = append(local, scored...)
			s.tracef(w, node, res.ID, "finished sub-collection %d (%d paragraphs)", sub, len(scored))
		}
		// Return the paragraphs and merge them on the home node (the
		// paragraph-merging module reads them from disk, Equation 27).
		bytes := qa.ParagraphSetWireBytes(local)
		t2 := w.Now()
		if err := s.Net.Transfer(w, remote, homeNode, bytes); err != nil {
			return err
		}
		if err := homeNode.UseDisk(w, bytes); err != nil {
			return err
		}
		res.Overhead.ParagraphRecv += w.Now() - t2
		collected = append(collected, local...)
		nodesUsed[node] = true
		return nil
	}
	if err := s.cfg.PRPartitioner.Distribute(p, sel, items, run); err != nil {
		return nil, err
	}
	res.PRNodes = len(nodesUsed)
	if res.PRNodes > 1 {
		s.stats.PRPartitioned++
	}
	for n := range nodesUsed {
		if n != home {
			res.PRMoved = true
		}
	}
	if res.PRMoved {
		s.stats.PRMigrations++
		s.tracef(p, home, res.ID, "PR dispatcher used %d node(s) off the home node", res.PRNodes)
	}
	res.Times.PR = maxVal(perNodePR)
	res.Times.PS = maxVal(perNodePS)
	return collected, nil
}

// runAPStage executes answer processing over the accepted paragraphs. Under
// DQA the AP dispatcher meta-schedules against the CPU-weighted load
// function and partitions the ranked paragraph array; otherwise AP runs
// sequentially on the home node.
func (s *System) runAPStage(p *vtime.Proc, res *QuestionResult, home int, analysis nlp.QuestionAnalysis, accepted []qa.ScoredParagraph) ([][]qa.Answer, error) {
	if len(accepted) == 0 {
		return nil, nil
	}
	perNodeAP := make(map[int]float64)
	nodesUsed := make(map[int]bool)
	var groups [][]qa.Answer

	if s.cfg.Strategy != DQA {
		answers, apCost := s.Engine.ExtractAnswers(analysis, accepted)
		t0 := p.Now()
		if err := s.charge(p, home, apCost); err != nil {
			return nil, err
		}
		perNodeAP[home] += p.Now() - t0
		res.APNodes = 1
		res.Times.AP = perNodeAP[home]
		return [][]qa.Answer{answers}, nil
	}

	homeNode := s.node(home)
	sel := s.dispatchSelector(home, sched.APWeights, s.apUnderloaded, res.ID)
	items := make([]int, len(accepted))
	for i := range items {
		items[i] = i
	}
	run := func(w *vtime.Proc, node int, idxs []int) error {
		remote := s.node(node)
		paras := make([]qa.ScoredParagraph, len(idxs))
		for i, idx := range idxs {
			paras[i] = accepted[idx]
		}
		// Ship the paragraph subset to the remote AP module.
		bytes := qa.ParagraphSetWireBytes(paras)
		t0 := w.Now()
		if err := s.Net.Transfer(w, homeNode, remote, bytes); err != nil {
			return err
		}
		res.Overhead.ParagraphSend += w.Now() - t0
		// The remote AP sub-task holds its paragraph subset in memory.
		release := remote.Alloc(s.Engine.Cost.MemPerParagraphMB * float64(len(paras)))
		defer release()
		answers, apCost := s.Engine.ExtractAnswers(analysis, paras)
		t1 := w.Now()
		if err := s.charge(w, node, apCost); err != nil {
			return err
		}
		perNodeAP[node] += w.Now() - t1
		// Each AP sub-task returns its local best N_a answers; the home
		// node reads them from disk during answer merging (Equation 19).
		abytes := qa.AnswerSetWireBytes(answers)
		t2 := w.Now()
		if err := s.Net.Transfer(w, remote, homeNode, abytes); err != nil {
			return err
		}
		if err := homeNode.UseDisk(w, abytes); err != nil {
			return err
		}
		res.Overhead.AnswerRecv += w.Now() - t2
		groups = append(groups, answers)
		nodesUsed[node] = true
		s.tracef(w, node, res.ID, "finished AP sub-task (%d paragraphs, %d answers)", len(paras), len(answers))
		return nil
	}
	if err := s.cfg.APPartitioner.Distribute(p, sel, items, run); err != nil {
		return nil, err
	}
	res.APNodes = len(nodesUsed)
	if res.APNodes > 1 {
		s.stats.APPartitioned++
	}
	for n := range nodesUsed {
		if n != home {
			res.APMoved = true
		}
	}
	if res.APMoved {
		s.stats.APMigrations++
		s.tracef(p, home, res.ID, "AP dispatcher used %d node(s) off the home node", res.APNodes)
	}
	res.Times.AP = maxVal(perNodeAP)
	return groups, nil
}

// subtaskWorkload is the load one whole dispatched module adds to a node —
// the embedded dispatchers' anti-useless-migration threshold, mirroring the
// question dispatcher's rule (Section 3.1): when no node is under-loaded,
// the module moves off the home node only if the load gap justifies it.
const subtaskWorkload = 1.0

// dispatchSelector builds the meta-scheduling selector for an embedded
// dispatcher: Figure 4 selection, plus the marginal-move guard on the
// single-node fallback, plus an optimistic local table bump so several
// decisions within one broadcast interval do not herd onto the same node.
func (s *System) dispatchSelector(home int, w sched.Weights, under func(sched.LoadInfo) bool, salt int) sched.Selector {
	mon := s.monitors[home]
	return func() []sched.WeightedNode {
		tbl := mon.Table()
		// The load averages include the dispatching question's own recent
		// activity on its home node (it was running QP/PR/PO there during
		// the sampling window). Discount one job's worth so the question
		// does not evict itself from its own home.
		for i := range tbl {
			if tbl[i].Node == home {
				tbl[i].CPU = maxf(0, tbl[i].CPU-1)
				tbl[i].Disk = maxf(0, tbl[i].Disk-1)
			}
		}
		targets := sched.MetaSchedule(tbl, w.Load, under, salt)
		if len(targets) == 1 && targets[0].Node != home {
			var homeLoad, bestLoad float64
			haveHome := false
			for _, li := range tbl {
				if li.Node == home {
					homeLoad = w.Load(li)
					haveHome = true
				}
				if li.Node == targets[0].Node {
					bestLoad = w.Load(li)
				}
			}
			if haveHome && homeLoad-bestLoad <= subtaskWorkload {
				targets[0].Node = home
			}
		}
		for _, t := range targets {
			mon.Bump(t.Node, w.CPU*t.Weight, w.Disk*t.Weight)
		}
		return targets
	}
}

// prUnderloaded / apUnderloaded evaluate the configured Equation 7/8
// thresholds.
func (s *System) prUnderloaded(li sched.LoadInfo) bool {
	return sched.PRWeights.Load(li) < s.cfg.PRUnderload
}

func (s *System) apUnderloaded(li sched.LoadInfo) bool {
	return sched.APWeights.Load(li) < s.cfg.APUnderload
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func maxVal(m map[int]float64) float64 {
	max := 0.0
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	return max
}
