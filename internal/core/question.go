package core

import (
	"distqa/internal/cluster"
	"distqa/internal/nlp"
	"distqa/internal/qa"
	"distqa/internal/sched"
	"distqa/internal/vtime"
)

// questionWireBytes is S_q, the size of a question on the wire.
func questionWireBytes(question string) float64 {
	return float64(len(question) + 32)
}

// node is shorthand for the cluster node with the given id.
func (s *System) node(id int) *cluster.Node { return s.Cluster.Node(id) }

// charge blocks p while node id serves the given cost. Disk and CPU demand
// are interleaved in slices, the way a real read-then-process loop
// alternates between I/O waits and computation; this also keeps the load
// monitors' one-second samples representative of the module's true resource
// mix instead of catching an all-CPU or all-disk phase.
func (s *System) charge(p *vtime.Proc, id int, cost qa.Cost) error {
	n := s.node(id)
	const slices = 4
	for i := 0; i < slices; i++ {
		if cost.DiskBytes > 0 {
			if err := n.UseDisk(p, cost.DiskBytes/slices); err != nil {
				return err
			}
		}
		if cost.CPUSeconds > 0 {
			if err := n.UseCPU(p, cost.CPUSeconds/slices); err != nil {
				return err
			}
		}
	}
	return nil
}

// answer drives one question through the distributed architecture: DNS
// placement (already decided), the question dispatcher, QP, the PR stage,
// PO, the AP stage and final answer sorting.
func (s *System) answer(p *vtime.Proc, res *QuestionResult) {
	home := res.DNSNode

	// Workload prediction (optional extension): size this question in
	// average-question units from index statistics, before any placement.
	units := 1.0
	if s.cfg.Predictive {
		est := s.Engine.EstimateCost(nlp.AnalyzeQuestion(res.Question))
		hw := s.cfg.Hardware
		units = est.NominalSeconds(hw.CPUPower, hw.DiskBandwidth) / s.cfg.ReferenceNominal
		if units < 0.25 {
			units = 0.25
		}
		if units > 4 {
			units = 4
		}
	}

	// Scheduling point 1: the question dispatcher (INTER and DQA migrate
	// to the globally least-loaded node if the gap exceeds one question's
	// workload, Section 3.1; GRADIENT instead diffuses the question hop by
	// hop along the ring toward the nearest lightly-loaded region).
	switch {
	case s.cfg.Strategy == GRADIENT:
		for hop := 0; hop < 3; hop++ {
			loads := s.monitors[home].Table()
			target, migrate := sched.PickGradientTarget(home, s.Cluster.Len(), loads)
			if !migrate {
				break
			}
			t0 := p.Now()
			err := s.Net.Transfer(p, s.node(home), s.node(target), questionWireBytes(res.Question))
			res.Overhead.Migration += p.Now() - t0
			if err != nil {
				break
			}
			s.stats.QAMigrations++
			res.Migrated = true
			s.tracef(p, home, res.ID, "gradient migrated question to %s", s.node(target).Name())
			s.monitors[home].BumpQueue(target, units)
			home = target
		}
	case s.cfg.Strategy >= INTER:
		loads := s.monitors[home].Table()
		target, migrate := sched.PickQuestionNode(home, loads, res.ID)
		if migrate {
			t0 := p.Now()
			err := s.Net.Transfer(p, s.node(home), s.node(target), questionWireBytes(res.Question))
			res.Overhead.Migration += p.Now() - t0
			if err == nil {
				s.stats.QAMigrations++
				res.Migrated = true
				s.tracef(p, home, res.ID, "question dispatcher migrated question to %s", s.node(target).Name())
				// Optimistic local update: this node's next dispatch
				// decisions must see the queue slot it just committed.
				s.monitors[home].BumpQueue(target, units)
				home = target
			}
		}
	}
	res.HomeNode = home

	// Admission: a node serves at most MaxConcurrent simultaneous questions
	// (the paper's full-load threshold); excess questions queue FIFO. Under
	// prediction the backlog is accounted in workload units.
	s.queuedUnits[home] += units
	s.admission[home].Acquire(p)
	s.queuedUnits[home] -= units
	if s.queuedUnits[home] < 0 {
		s.queuedUnits[home] = 0
	}
	defer s.admission[home].Release()

	res.StartTime = p.Now()
	homeNode := s.node(home)
	s.tracef(p, home, res.ID, "Q/A task started")

	// The Q/A task's base memory footprint lives on the home node for the
	// question's lifetime.
	releaseBase := homeNode.Alloc(s.Engine.Cost.MemBaseMB)
	defer releaseBase()

	fail := func(err error) {
		res.Err = err
		res.DoneTime = p.Now()
		s.stats.Failed++
		s.tracef(p, home, res.ID, "question failed: %v", err)
	}

	// Question Processing on the home node.
	analysis, qpCost := s.Engine.QuestionProcessing(res.Question)
	t0 := p.Now()
	if err := homeNode.UseCPU(p, qpCost.CPUSeconds); err != nil {
		fail(err)
		return
	}
	res.Times.QP = p.Now() - t0

	// Scheduling point 2: paragraph retrieval (+ co-located scoring).
	scored, err := s.runPRStage(p, res, home, analysis)
	if err != nil {
		fail(err)
		return
	}
	res.Retrieved = len(scored)

	// Paragraph Ordering: centralized on the home node (Section 3.2).
	accepted, poCost := s.Engine.OrderParagraphs(scored)
	t0 = p.Now()
	if err := homeNode.UseCPU(p, poCost.CPUSeconds); err != nil {
		fail(err)
		return
	}
	res.Times.PO = p.Now() - t0
	res.Accepted = len(accepted)

	// The accepted paragraphs now occupy home memory until the question
	// completes (25-40 MB per question, Section 6.1).
	releaseParas := homeNode.Alloc(s.Engine.Cost.MemPerParagraphMB * float64(len(accepted)))
	defer releaseParas()

	// Scheduling point 3: answer processing.
	groups, err := s.runAPStage(p, res, home, analysis, accepted)
	if err != nil {
		fail(err)
		return
	}

	// Answer merging and sorting on the home node.
	final, sortCost := s.Engine.MergeAnswerSets(groups)
	t0 = p.Now()
	if err := homeNode.UseCPU(p, sortCost.CPUSeconds); err != nil {
		fail(err)
		return
	}
	res.Overhead.AnswerSort = p.Now() - t0

	res.Answers = final
	res.DoneTime = p.Now()
	s.tracef(p, home, res.ID, "question answered in %.2f sec (%d answers)", res.Latency(), len(final))
}
