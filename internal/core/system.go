// Package core implements the paper's contribution: the distributed
// question/answering architecture of Sections 3-4. It combines the
// sequential pipeline (package qa), the cluster and network simulators
// (packages cluster, simnet, vtime) and the scheduling machinery (package
// sched) into a system with three scheduling points:
//
//  1. the question dispatcher, which corrects the DNS round-robin placement
//     by migrating whole questions away from overloaded nodes;
//  2. the PR dispatcher, which meta-schedules and partitions paragraph
//     retrieval across under-loaded nodes (disk-weighted);
//  3. the AP dispatcher, which meta-schedules and partitions answer
//     processing (CPU-weighted).
//
// The three load-balancing strategies compared in Section 6.1 are ablations
// of each other: DNS uses only round-robin placement, INTER adds the
// question dispatcher, and DQA adds the two embedded dispatchers with task
// partitioning.
package core

import (
	"fmt"

	"distqa/internal/cluster"
	"distqa/internal/qa"
	"distqa/internal/sched"
	"distqa/internal/simnet"
	"distqa/internal/trace"
	"distqa/internal/vtime"
)

// Strategy selects the load-balancing model (Section 6.1).
type Strategy int

const (
	// DNS emulates plain round-robin DNS name-to-address mapping.
	DNS Strategy = iota
	// GRADIENT balances whole questions with the classical gradient model
	// (Lin & Keller) on a logical ring — the related-work comparator of
	// Section 1.4, implemented for comparison; not part of the paper's
	// evaluation ladder.
	GRADIENT
	// INTER adds the question dispatcher before the Q/A task.
	INTER
	// DQA adds the PR and AP dispatchers with task partitioning — the
	// paper's full architecture.
	DQA
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case DNS:
		return "DNS"
	case GRADIENT:
		return "GRADIENT"
	case INTER:
		return "INTER"
	case DQA:
		return "DQA"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config describes a distributed Q/A deployment.
type Config struct {
	// Nodes is the cluster size.
	Nodes int
	// Strategy is the load-balancing model.
	Strategy Strategy
	// Hardware is the per-node profile (defaults to the paper's testbed).
	Hardware cluster.Hardware
	// Net is the interconnection fabric (defaults to 100 Mbps Ethernet).
	Net simnet.Config
	// PRPartitioner partitions paragraph retrieval under DQA. The paper
	// uses RECV with one sub-collection per chunk (Section 4.1.3: weight-
	// based partitioning is "virtually inapplicable" for PR).
	PRPartitioner sched.Partitioner
	// APPartitioner partitions answer processing under DQA. The paper's
	// best performer is RECV with 40-paragraph chunks (Figure 10).
	APPartitioner sched.Partitioner
	// MaxConcurrent is the per-node admission limit: a node runs at most
	// this many simultaneous questions and queues the rest (the paper
	// considers a node fully loaded at 4 simultaneous questions,
	// Section 6.1). Zero selects the default of 4.
	MaxConcurrent int
	// MonitorInterval is the load-broadcast period in virtual seconds
	// (default sched.BroadcastInterval = 1 s) — the staleness ablation knob.
	MonitorInterval float64
	// Predictive enables workload prediction (qa.Engine.EstimateCost): the
	// admission queue is reported in predicted-workload units instead of
	// question counts, so dispatchers see a queue of two heavy questions as
	// heavier than one of two light ones. This is the paper's footnote-1
	// future work ("dynamic task workload detection"), built on the
	// document-frequency heuristic its Section 1.4 discusses.
	Predictive bool
	// ReferenceNominal normalises predictions into average-question units
	// (default 100 s, the TREC-9-like mean).
	ReferenceNominal float64
	// PRUnderload / APUnderload override the Equation 7/8 under-load
	// thresholds (zero selects the sched package defaults) — the
	// partitioning-aggressiveness ablation knob.
	PRUnderload float64
	APUnderload float64
	// Trace, when non-nil, records Figure 7 style scheduling events.
	Trace *trace.Log
}

// DefaultConfig returns the paper's testbed deployment for n nodes under
// the given strategy.
func DefaultConfig(n int, strategy Strategy) Config {
	return Config{
		Nodes:         n,
		Strategy:      strategy,
		Hardware:      cluster.TestbedHardware(),
		Net:           simnet.Testbed(),
		PRPartitioner: sched.NewRECV(1),
		APPartitioner: sched.NewRECV(40),
		MaxConcurrent: 4,
	}
}

// Stats counts dispatcher activity — the raw data of Table 7.
type Stats struct {
	// QAMigrations counts questions the question dispatcher moved away
	// from their DNS-assigned node.
	QAMigrations int
	// PRMigrations counts questions whose PR dispatcher placed work on a
	// node other than the one chosen by the question dispatcher.
	PRMigrations int
	// APMigrations counts questions whose AP dispatcher disagreed likewise.
	APMigrations int
	// PRPartitioned / APPartitioned count questions whose module was split
	// across more than one node (intra-question parallelism engaged).
	PRPartitioned int
	APPartitioned int
	// Failed counts questions lost to node crashes.
	Failed int
}

// System is one simulated deployment of the distributed Q/A architecture.
type System struct {
	Sim     *vtime.Sim
	Cluster *cluster.Cluster
	Net     *simnet.Network
	Engine  *qa.Engine

	cfg         Config
	monitors    []*sched.Monitor
	admission   []*vtime.Sem
	queuedUnits []float64
	rrNext      int
	stats       Stats

	pending *vtime.Group
	results []*QuestionResult
}

// NewSystem builds a deployment of cfg over a fresh simulation, sharing the
// given pipeline engine (every node holds a copy of the collection, as on
// the paper's testbed).
func NewSystem(cfg Config, engine *qa.Engine) *System {
	if cfg.Nodes <= 0 {
		panic("core: config needs at least one node")
	}
	if cfg.Hardware == (cluster.Hardware{}) {
		cfg.Hardware = cluster.TestbedHardware()
	}
	if cfg.Net == (simnet.Config{}) {
		cfg.Net = simnet.Testbed()
	}
	if cfg.PRPartitioner == nil {
		cfg.PRPartitioner = sched.NewRECV(1)
	}
	if cfg.APPartitioner == nil {
		cfg.APPartitioner = sched.NewRECV(40)
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	sim := vtime.NewSim()
	sys := &System{
		Sim:     sim,
		Cluster: cluster.NewCluster(sim, cfg.Nodes, cfg.Hardware),
		Net:     simnet.New(sim, cfg.Net),
		Engine:  engine,
		cfg:     cfg,
		pending: vtime.NewGroup(sim),
	}
	if cfg.PRUnderload <= 0 {
		cfg.PRUnderload = sched.PRUnderloadThreshold
	}
	if cfg.APUnderload <= 0 {
		cfg.APUnderload = sched.APUnderloadThreshold
	}
	if cfg.ReferenceNominal <= 0 {
		cfg.ReferenceNominal = 100
	}
	sys.cfg = cfg
	sys.queuedUnits = make([]float64, cfg.Nodes)
	for _, n := range sys.Cluster.Nodes() {
		id := n.ID()
		mon := sched.StartMonitorInterval(n, sys.Net, cfg.MonitorInterval)
		sem := vtime.NewSem(sim, cfg.MaxConcurrent)
		mon.SetQueueProbe(sys.queueProbe(id, sem))
		sys.monitors = append(sys.monitors, mon)
		sys.admission = append(sys.admission, sem)
	}
	return sys
}

// queueProbe reports a node's admission backlog: question count normally,
// predicted-workload units under Config.Predictive.
func (s *System) queueProbe(id int, sem *vtime.Sem) func() float64 {
	return func() float64 {
		if s.cfg.Predictive {
			return s.queuedUnits[id]
		}
		return float64(sem.Waiting())
	}
}

// Config returns the deployment configuration.
func (s *System) Config() Config { return s.cfg }

// Stats returns dispatcher activity counters.
func (s *System) Stats() Stats { return s.stats }

// Results returns the per-question results recorded so far, in completion
// order.
func (s *System) Results() []*QuestionResult { return s.results }

// Monitor returns node i's load monitor.
func (s *System) Monitor(i int) *sched.Monitor { return s.monitors[i] }

// AddNode grows the cluster by one node with the given hardware (zero value
// selects the configured profile) — the paper's dynamic pool join: the new
// node starts broadcasting load and the dispatchers begin using it for
// migrations and partitions; the DNS round-robin mapping, true to its
// nature, keeps serving the original address list.
func (s *System) AddNode(hw cluster.Hardware) int {
	if hw == (cluster.Hardware{}) {
		hw = s.cfg.Hardware
	}
	n := s.Cluster.Add(hw)
	mon := sched.StartMonitorInterval(n, s.Net, s.cfg.MonitorInterval)
	sem := vtime.NewSem(s.Sim, s.cfg.MaxConcurrent)
	s.queuedUnits = append(s.queuedUnits, 0)
	mon.SetQueueProbe(s.queueProbe(n.ID(), sem))
	s.monitors = append(s.monitors, mon)
	s.admission = append(s.admission, sem)
	return n.ID()
}

// Submit schedules a question to arrive at the given virtual time; the DNS
// round-robin mapping assigns its initial node (Section 3.1). It returns the
// result record, which is filled in as the question progresses.
func (s *System) Submit(at float64, id int, question string) *QuestionResult {
	node := s.rrNext % s.cfg.Nodes
	s.rrNext++
	return s.SubmitToNode(at, id, question, node)
}

// SubmitToNode schedules a question to arrive at a specific node, bypassing
// the DNS mapping (used by tests and by the Figure 7 trace driver).
func (s *System) SubmitToNode(at float64, id int, question string, node int) *QuestionResult {
	res := &QuestionResult{ID: id, Question: question, SubmitTime: at, DNSNode: node, HomeNode: node}
	s.pending.Add(1)
	s.Sim.After(at, func() {
		s.Sim.Spawn(fmt.Sprintf("q%d", id), func(p *vtime.Proc) {
			defer s.pending.Done()
			s.answer(p, res)
			s.results = append(s.results, res)
		})
	})
	return res
}

// RunToCompletion advances the simulation until every submitted question has
// completed (or failed), then stops the monitors and returns.
func (s *System) RunToCompletion() {
	done := false
	s.Sim.Spawn("completion-watch", func(p *vtime.Proc) {
		p.Yield() // let same-time submissions register first
		s.pending.Wait(p)
		done = true
		s.Sim.Stop()
	})
	s.Sim.Run()
	if !done {
		panic("core: simulation drained without completing all questions")
	}
}

// Shutdown releases simulation resources (parked monitor goroutines).
func (s *System) Shutdown() { s.Sim.Shutdown() }

// tracef records a scheduling event if tracing is enabled.
func (s *System) tracef(p *vtime.Proc, node int, q int, format string, args ...any) {
	s.cfg.Trace.Add(p.Now(), s.Cluster.Node(node).Name(), q, fmt.Sprintf(format, args...))
}
