package core

import (
	"math/rand"
	"testing"

	"distqa/internal/cluster"
	"distqa/internal/sched"
)

// TestCPUPowerScaling: the same question on a cluster with half-speed CPUs
// must take correspondingly longer (the CPU-dominated AP stage scales with
// Hardware.CPUPower) while producing hardware-independent answers.
func TestCPUPowerScaling(t *testing.T) {
	f := mostComplexFact(t)
	cfg := DefaultConfig(4, DQA)
	cfg.APPartitioner = sched.NewRECV(3)
	sys := NewSystem(cfg, testEngine)
	t.Cleanup(sys.Shutdown)
	res := sys.Submit(warm, 0, f.Question)
	sys.RunToCompletion()
	if res.Err != nil {
		t.Fatalf("failed: %v", res.Err)
	}

	hw := cluster.TestbedHardware()
	hw.CPUPower = 0.5 // everyone slow...
	cfg2 := DefaultConfig(4, DQA)
	cfg2.Hardware = hw
	cfg2.APPartitioner = sched.NewRECV(3)
	sys2 := NewSystem(cfg2, testEngine)
	t.Cleanup(sys2.Shutdown)
	res2 := sys2.Submit(warm, 0, f.Question)
	sys2.RunToCompletion()
	if res2.Err != nil {
		t.Fatalf("slow cluster failed: %v", res2.Err)
	}
	// Halving CPU power must lengthen the (CPU-dominated) response.
	if res2.Latency() <= res.Latency()*1.3 {
		t.Errorf("half-speed CPUs gave latency %.2f vs %.2f; CPU scaling broken",
			res2.Latency(), res.Latency())
	}
	// Answers must be hardware-independent.
	if len(res.Answers) > 0 && len(res2.Answers) > 0 && res.Answers[0].Text != res2.Answers[0].Text {
		t.Errorf("hardware changed the answers: %q vs %q", res.Answers[0].Text, res2.Answers[0].Text)
	}
}

// TestRandomNonHomeFailures is a property test: killing any random non-home
// node mid-question never loses the question and never changes the top
// answer (partitioner failure recovery, Section 4.1).
func TestRandomNonHomeFailures(t *testing.T) {
	f := mostComplexFact(t)
	seq := testEngine.AnswerSequential(f.Question)
	if len(seq.Answers) == 0 {
		t.Skip("no sequential answer to compare")
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		victim := 1 + rng.Intn(3) // never the home node 0
		when := warm + rng.Float64()*8
		cfg := DefaultConfig(4, DQA)
		cfg.APPartitioner = sched.NewRECV(4)
		sys := NewSystem(cfg, testEngine)
		res := sys.SubmitToNode(warm, trial, f.Question, 0)
		sys.Sim.After(when, func() { sys.Cluster.Node(victim).Fail() })
		sys.RunToCompletion()
		if res.Err != nil {
			t.Errorf("trial %d (kill N%d at %.1f): question lost: %v", trial, victim+1, when, res.Err)
		} else if len(res.Answers) == 0 {
			t.Errorf("trial %d: no answers", trial)
		} else if res.Answers[0].Text != seq.Answers[0].Text {
			t.Errorf("trial %d: top answer %q differs from sequential %q",
				trial, res.Answers[0].Text, seq.Answers[0].Text)
		}
		sys.Shutdown()
	}
}

// TestCascadingFailures: two of four nodes die during a question; the
// remaining pair must still finish it.
func TestCascadingFailures(t *testing.T) {
	f := mostComplexFact(t)
	cfg := DefaultConfig(4, DQA)
	cfg.APPartitioner = sched.NewRECV(4)
	sys := NewSystem(cfg, testEngine)
	t.Cleanup(sys.Shutdown)
	res := sys.SubmitToNode(warm, 0, f.Question, 0)
	sys.Sim.After(warm+2, func() { sys.Cluster.Node(2).Fail() })
	sys.Sim.After(warm+4, func() { sys.Cluster.Node(3).Fail() })
	sys.RunToCompletion()
	if res.Err != nil {
		t.Fatalf("question lost after cascading failures: %v", res.Err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers after cascading failures")
	}
}

// TestQueueObservedByDispatcher: a saturated node's admission queue must be
// visible in its load broadcasts and drive question migration.
func TestQueueObservedByDispatcher(t *testing.T) {
	sys := newSystem(t, 2, INTER)
	// Node 0 gets a pile of questions; later arrivals should divert to 1.
	for i := 0; i < 8; i++ {
		sys.SubmitToNode(warm+float64(i)*0.5, i, testColl.Facts[i%len(testColl.Facts)].Question, 0)
	}
	sys.RunToCompletion()
	if sys.Stats().QAMigrations == 0 {
		t.Fatal("queue buildup did not trigger any migration")
	}
	onNode1 := 0
	for _, r := range sys.Results() {
		if r.HomeNode == 1 {
			onNode1++
		}
	}
	if onNode1 == 0 {
		t.Fatal("no question ended up on the idle node")
	}
}

// TestDynamicNodeJoin: a node added mid-run starts broadcasting, enters the
// pool, and receives partitioned sub-task work — Section 3.1's "a processor
// automatically joins the pool when it starts broadcasting load
// information".
func TestDynamicNodeJoin(t *testing.T) {
	f := mostComplexFact(t)
	cfg := DefaultConfig(2, DQA)
	cfg.APPartitioner = sched.NewRECV(3)
	sys := NewSystem(cfg, testEngine)
	t.Cleanup(sys.Shutdown)
	// The node joins at t=3; the question arrives at t=6, well after the
	// joiner's first broadcasts.
	sys.Sim.After(3.0, func() { sys.AddNode(cluster.Hardware{}) })
	res := sys.Submit(6.0, 0, f.Question)
	sys.RunToCompletion()
	if res.Err != nil {
		t.Fatalf("failed: %v", res.Err)
	}
	if res.APNodes < 3 {
		t.Errorf("AP used %d nodes; the joined node was not adopted", res.APNodes)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
}

// TestGradientStrategy: the gradient comparator must migrate questions off
// an overloaded node toward lighter ring regions and still answer them all.
func TestGradientStrategy(t *testing.T) {
	cfg := DefaultConfig(4, GRADIENT)
	cfg.APPartitioner = sched.NewRECV(5)
	sys := NewSystem(cfg, testEngine)
	t.Cleanup(sys.Shutdown)
	// Pile questions on node 0 so a gradient forms.
	for i := 0; i < 8; i++ {
		sys.SubmitToNode(warm+float64(i)*0.5, i, testColl.Facts[i%len(testColl.Facts)].Question, 0)
	}
	sys.RunToCompletion()
	if sys.Stats().QAMigrations == 0 {
		t.Fatal("gradient strategy never migrated despite hotspot")
	}
	for _, r := range sys.Results() {
		if r.Err != nil {
			t.Fatalf("question %d failed: %v", r.ID, r.Err)
		}
		if r.PRNodes != 1 || r.APNodes != 1 {
			t.Fatalf("gradient must not partition modules: %+v", r)
		}
	}
	if GRADIENT.String() != "GRADIENT" {
		t.Fatal("strategy name")
	}
}
