package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"distqa/internal/corpus"
	"distqa/internal/index"
	"distqa/internal/qa"
	"distqa/internal/sched"
	"distqa/internal/trace"
)

var (
	testColl   = corpus.Generate(corpus.Tiny())
	testEngine = qa.NewEngine(testColl, index.BuildAll(testColl))
)

func newSystem(t *testing.T, nodes int, strategy Strategy) *System {
	t.Helper()
	cfg := DefaultConfig(nodes, strategy)
	// The tiny test corpus accepts a few dozen paragraphs per question, so
	// use a proportionally smaller AP chunk than the paper's 40.
	cfg.APPartitioner = sched.NewRECV(5)
	sys := NewSystem(cfg, testEngine)
	t.Cleanup(sys.Shutdown)
	return sys
}

// warm is a submission time late enough for every monitor to have broadcast
// at least once, mirroring a production system whose monitors run long
// before questions arrive.
const warm = 2.0

func TestSingleQuestionSequentialTiming(t *testing.T) {
	// On a 1-node DNS system the question latency must equal the nominal
	// sequential time (no contention, no distribution).
	f := testColl.Facts[0]
	seq := testEngine.AnswerSequential(f.Question)
	nominal := seq.Costs.Nominal(1.0, 25e6).Total

	sys := newSystem(t, 1, DNS)
	res := sys.Submit(0, 0, f.Question)
	sys.RunToCompletion()

	if res.Err != nil {
		t.Fatalf("question failed: %v", res.Err)
	}
	if math.Abs(res.Latency()-nominal) > 0.05*nominal {
		t.Fatalf("latency = %.2f, nominal = %.2f (want within 5%%)", res.Latency(), nominal)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
	if !res.Correct(f.Answer) && !strings.EqualFold(res.Answers[0].Text, f.Answer) {
		t.Logf("note: expected %q not in answers (acceptable for some facts)", f.Answer)
	}
	if res.Times.Total() > res.Latency()+1e-9 {
		t.Fatalf("module times %.2f exceed latency %.2f", res.Times.Total(), res.Latency())
	}
}

func TestDistributedMatchesSequentialAnswers(t *testing.T) {
	// The DQA system must return the same answers as the sequential system
	// (the design goal of mimicking sequential output, Section 3.2).
	for _, f := range testColl.Facts[:6] {
		seq := testEngine.AnswerSequential(f.Question)
		sys := newSystem(t, 4, DQA)
		res := sys.Submit(warm, f.ID, f.Question)
		sys.RunToCompletion()
		if res.Err != nil {
			t.Fatalf("fact %d failed: %v", f.ID, res.Err)
		}
		if len(seq.Answers) == 0 {
			continue
		}
		if len(res.Answers) == 0 {
			t.Fatalf("fact %d: distributed system lost all answers", f.ID)
		}
		if !strings.EqualFold(seq.Answers[0].Text, res.Answers[0].Text) {
			t.Errorf("fact %d: top answer differs: seq %q vs dist %q",
				f.ID, seq.Answers[0].Text, res.Answers[0].Text)
		}
	}
}

func TestIntraQuestionSpeedup(t *testing.T) {
	// A single question at low load must run faster on 4 DQA nodes than on
	// one node, through PR/AP partitioning.
	f := mostComplexFact(t)
	lat1 := runOne(t, 1, DQA, f.Question)
	lat4 := runOne(t, 4, DQA, f.Question)
	speedup := lat1 / lat4
	t.Logf("1-node %.2f s, 4-node %.2f s, speedup %.2f", lat1, lat4, speedup)
	if speedup < 1.8 {
		t.Fatalf("speedup = %.2f, want ≥ 1.8 on 4 nodes", speedup)
	}
}

func runOne(t *testing.T, nodes int, strategy Strategy, question string) float64 {
	t.Helper()
	sys := newSystem(t, nodes, strategy)
	res := sys.Submit(warm, 0, question)
	sys.RunToCompletion()
	if res.Err != nil {
		t.Fatalf("question failed: %v", res.Err)
	}
	return res.Latency()
}

func mostComplexFact(t *testing.T) corpus.Fact {
	t.Helper()
	best := testColl.Facts[0]
	bestAcc := -1
	for _, f := range testColl.Facts {
		r := testEngine.AnswerSequential(f.Question)
		if r.Accepted > bestAcc {
			bestAcc = r.Accepted
			best = f
		}
	}
	return best
}

func TestDQAPartitionsAtLowLoad(t *testing.T) {
	f := mostComplexFact(t)
	sys := newSystem(t, 4, DQA)
	res := sys.Submit(warm, 0, f.Question)
	sys.RunToCompletion()
	if res.PRNodes < 2 {
		t.Errorf("PR used %d nodes at low load, want ≥ 2", res.PRNodes)
	}
	if res.APNodes < 2 {
		t.Errorf("AP used %d nodes at low load, want ≥ 2", res.APNodes)
	}
	if sys.Stats().PRPartitioned == 0 || sys.Stats().APPartitioned == 0 {
		t.Errorf("partition stats not recorded: %+v", sys.Stats())
	}
}

func TestDNSNeverMigrates(t *testing.T) {
	sys := newSystem(t, 4, DNS)
	for i, f := range testColl.Facts[:8] {
		sys.Submit(float64(i), f.ID, f.Question)
	}
	sys.RunToCompletion()
	st := sys.Stats()
	if st.QAMigrations != 0 || st.PRMigrations != 0 || st.APMigrations != 0 {
		t.Fatalf("DNS strategy migrated: %+v", st)
	}
	for _, r := range sys.Results() {
		if r.HomeNode != r.DNSNode {
			t.Fatalf("question %d moved from DNS node", r.ID)
		}
		if r.PRNodes != 1 || r.APNodes != 1 {
			t.Fatalf("DNS question %d used multiple nodes", r.ID)
		}
	}
}

func TestRoundRobinAssignment(t *testing.T) {
	sys := newSystem(t, 3, DNS)
	var rs []*QuestionResult
	for i := 0; i < 6; i++ {
		rs = append(rs, sys.Submit(0, i, testColl.Facts[0].Question))
	}
	sys.RunToCompletion()
	for i, r := range rs {
		if r.DNSNode != i%3 {
			t.Fatalf("question %d assigned to %d, want %d", i, r.DNSNode, i%3)
		}
	}
}

func TestInterMigratesOffOverloadedNode(t *testing.T) {
	// Pile questions onto node 0 only; the question dispatcher must move
	// some of them to the idle nodes.
	sys := newSystem(t, 4, INTER)
	var rs []*QuestionResult
	for i := 0; i < 6; i++ {
		// Stagger past the first monitor broadcast so load is visible.
		rs = append(rs, sys.SubmitToNode(1.5+float64(i)*2, i, testColl.Facts[i].Question, 0))
	}
	sys.RunToCompletion()
	if sys.Stats().QAMigrations == 0 {
		t.Fatal("no questions migrated off the overloaded node")
	}
	moved := 0
	for _, r := range rs {
		if r.Migrated {
			moved++
			if r.HomeNode == 0 {
				t.Fatal("migrated question still reports home node 0")
			}
		}
	}
	if moved != sys.Stats().QAMigrations {
		t.Fatalf("migration accounting mismatch: %d vs %d", moved, sys.Stats().QAMigrations)
	}
}

func TestStrategyThroughputOrdering(t *testing.T) {
	// Under high load (8 questions/node arriving in a burst on a 4-node
	// system) the paper's ordering must hold: DQA ≥ INTER ≥ DNS on
	// throughput (Table 5). We assert the end-to-end makespan ordering.
	makespan := func(strategy Strategy) float64 {
		sys := newSystem(t, 4, strategy)
		n := 24
		// The paper's arrival process: successive questions start at
		// intervals uniform in [0, 2] seconds (Section 6.1). Same arrival
		// sequence for every strategy.
		rng := rand.New(rand.NewSource(7))
		at := warm
		for i := 0; i < n; i++ {
			f := testColl.Facts[i%len(testColl.Facts)]
			sys.Submit(at, i, f.Question)
			at += rng.Float64() * 2
		}
		sys.RunToCompletion()
		last := 0.0
		for _, r := range sys.Results() {
			if r.Err != nil {
				t.Fatalf("%v: question %d failed: %v", strategy, r.ID, r.Err)
			}
			if r.DoneTime > last {
				last = r.DoneTime
			}
		}
		return last
	}
	dns := makespan(DNS)
	inter := makespan(INTER)
	dqa := makespan(DQA)
	t.Logf("makespans: DNS=%.1f INTER=%.1f DQA=%.1f", dns, inter, dqa)
	// The tiny corpus cannot express the paper's Table 5 ordering (its ~10 s
	// questions are commensurate with the 1 s monitor staleness and the AP
	// invocation overhead); assert a sanity band here. The paper-scale
	// ordering is asserted by experiments.TestPaperScaleOrdering.
	if dqa > dns*1.10 || inter > dns*1.10 {
		t.Errorf("strategy makespans diverge beyond sanity band: DNS=%.1f INTER=%.1f DQA=%.1f", dns, inter, dqa)
	}
}

func TestFailureRecoveryDuringPartitionedAP(t *testing.T) {
	f := mostComplexFact(t)
	sys := newSystem(t, 4, DQA)
	res := sys.Submit(warm, 0, f.Question)
	// Kill a non-home node while AP sub-tasks are likely in flight.
	sys.Sim.After(warm+4.0, func() { sys.Cluster.Node(3).Fail() })
	sys.RunToCompletion()
	if res.Err != nil {
		t.Fatalf("question lost despite recovery: %v", res.Err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers after failure recovery")
	}
	// The sequential result must still be reproduced.
	seq := testEngine.AnswerSequential(f.Question)
	if len(seq.Answers) > 0 && !strings.EqualFold(seq.Answers[0].Text, res.Answers[0].Text) {
		t.Errorf("top answer differs after recovery: %q vs %q", seq.Answers[0].Text, res.Answers[0].Text)
	}
}

func TestHomeNodeFailureLosesQuestion(t *testing.T) {
	sys := newSystem(t, 2, DNS)
	res := sys.SubmitToNode(0, 0, testColl.Facts[0].Question, 0)
	sys.Sim.After(0.5, func() { sys.Cluster.Node(0).Fail() })
	sys.RunToCompletion()
	if res.Err == nil {
		t.Fatal("question on crashed home node should fail")
	}
	if sys.Stats().Failed != 1 {
		t.Fatalf("failed count = %d", sys.Stats().Failed)
	}
}

func TestTraceRecordsLifecycle(t *testing.T) {
	cfg := DefaultConfig(4, DQA)
	cfg.APPartitioner = sched.NewRECV(5)
	cfg.Trace = trace.New()
	sys := NewSystem(cfg, testEngine)
	t.Cleanup(sys.Shutdown)
	f := mostComplexFact(t)
	sys.Submit(warm, 226, f.Question)
	sys.RunToCompletion()
	log := cfg.Trace
	if log.Count("Q/A task started") != 1 {
		t.Error("missing task start event")
	}
	if log.Count("finished sub-collection") == 0 {
		t.Error("missing PR sub-task events")
	}
	if log.Count("finished AP sub-task") == 0 {
		t.Error("missing AP sub-task events")
	}
	if log.Count("question answered") != 1 {
		t.Error("missing completion event")
	}
}

func TestDeterministicSimulation(t *testing.T) {
	run := func() []float64 {
		sys := newSystem(t, 4, DQA)
		for i := 0; i < 10; i++ {
			f := testColl.Facts[i]
			sys.Submit(warm+float64(i)*0.7, i, f.Question)
		}
		sys.RunToCompletion()
		var lats []float64
		for _, r := range sys.Results() {
			lats = append(lats, r.Latency())
		}
		return lats
	}
	a := run()
	b := run()
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestOverheadIsSmallFraction(t *testing.T) {
	// Table 9: complete distribution overhead below ~3% of response time.
	f := mostComplexFact(t)
	sys := newSystem(t, 4, DQA)
	res := sys.Submit(warm, 0, f.Question)
	sys.RunToCompletion()
	frac := res.Overhead.Total() / res.Latency()
	t.Logf("overhead %.3f s of %.2f s latency (%.1f%%)", res.Overhead.Total(), res.Latency(), frac*100)
	if frac > 0.10 {
		t.Errorf("distribution overhead fraction %.1f%% too high", frac*100)
	}
}

func TestPartitionerChoiceAffectsAP(t *testing.T) {
	// SEND must not beat RECV for the AP stage (Table 11 ordering).
	f := mostComplexFact(t)
	lat := func(part sched.Partitioner) float64 {
		cfg := DefaultConfig(4, DQA)
		cfg.APPartitioner = part
		sys := NewSystem(cfg, testEngine)
		t.Cleanup(sys.Shutdown)
		res := sys.Submit(warm, 0, f.Question)
		sys.RunToCompletion()
		if res.Err != nil {
			t.Fatalf("failed: %v", res.Err)
		}
		return res.Latency()
	}
	send := lat(sched.NewSEND())
	recv := lat(sched.NewRECV(8))
	t.Logf("AP latency: SEND=%.2f RECV=%.2f", send, recv)
	// At tiny-corpus scale the per-invocation AP overhead dominates chunked
	// strategies, so only a sanity band is asserted here; the paper-scale
	// ordering (RECV ≳ ISEND > SEND) is regenerated by BenchmarkTable11.
	if recv > send*1.30 {
		t.Errorf("RECV (%.2f) far slower than SEND (%.2f)", recv, send)
	}
}

func TestStrategyString(t *testing.T) {
	if DNS.String() != "DNS" || INTER.String() != "INTER" || DQA.String() != "DQA" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(9).String() == "" {
		t.Fatal("unknown strategy should still stringify")
	}
}
