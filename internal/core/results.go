package core

import "distqa/internal/qa"

// ModuleTimes are per-module observed latencies in virtual seconds — the
// rows of the paper's Table 8. For partitioned modules the time is the
// maximum across the parallel sub-tasks (the module's contribution to the
// question's critical path), excluding distribution overhead.
type ModuleTimes struct {
	QP, PR, PS, PO, AP float64
}

// Total sums the module times.
func (m ModuleTimes) Total() float64 { return m.QP + m.PR + m.PS + m.PO + m.AP }

// Overheads are the measured distribution overhead components per question,
// in virtual seconds — the columns of the paper's Table 9.
type Overheads struct {
	// KeywordSend is time spent shipping keywords to remote PR sub-tasks.
	KeywordSend float64
	// ParagraphRecv is time receiving paragraphs from remote PS modules
	// plus the paragraph-merging disk reads.
	ParagraphRecv float64
	// ParagraphSend is time shipping accepted paragraphs to remote AP
	// sub-tasks.
	ParagraphSend float64
	// AnswerRecv is time receiving answers from remote AP sub-tasks.
	AnswerRecv float64
	// AnswerSort is the final answer sorting time.
	AnswerSort float64
	// Migration is time spent moving whole questions between nodes
	// (question-dispatcher migrations).
	Migration float64
}

// Total sums the overhead components.
func (o Overheads) Total() float64 {
	return o.KeywordSend + o.ParagraphRecv + o.ParagraphSend + o.AnswerRecv + o.AnswerSort + o.Migration
}

// QuestionResult records the lifecycle of one question through the
// distributed system.
type QuestionResult struct {
	ID       int
	Question string

	// DNSNode is the initial round-robin assignment; HomeNode is where the
	// Q/A task actually ran after the question dispatcher's decision.
	DNSNode  int
	HomeNode int

	// SubmitTime is the arrival time; StartTime is when the Q/A task began
	// on its home node; DoneTime is when the final answers were ready.
	SubmitTime float64
	StartTime  float64
	DoneTime   float64

	// Answers is the final answer set.
	Answers []qa.Answer
	// Retrieved and Accepted are the PR output and PO output sizes.
	Retrieved int
	Accepted  int

	// Migrated reports a question-dispatcher migration; PRMoved/APMoved
	// report embedded-dispatcher disagreements (Table 7); PRNodes/APNodes
	// are the distinct node counts used by each stage.
	Migrated bool
	PRMoved  bool
	APMoved  bool
	PRNodes  int
	APNodes  int

	// Times are the observed module latencies (Table 8).
	Times ModuleTimes
	// Overhead is the measured distribution overhead (Table 9).
	Overhead Overheads

	// Err is non-nil if the question was lost (home node crash with no
	// recovery path).
	Err error
}

// Latency is the response time observed by the user.
func (r *QuestionResult) Latency() float64 { return r.DoneTime - r.SubmitTime }

// Correct reports whether any of the returned answers matches expected
// (case-insensitive); a helper for accuracy accounting in experiments.
func (r *QuestionResult) Correct(expected string) bool {
	for _, a := range r.Answers {
		if equalFold(a.Text, expected) {
			return true
		}
	}
	return false
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
