package corpus

import (
	"strings"
	"testing"

	"distqa/internal/nlp"
)

func tinyColl(t *testing.T) *Collection {
	t.Helper()
	return Generate(Tiny())
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Tiny())
	b := Generate(Tiny())
	if a.RealBytes() != b.RealBytes() {
		t.Fatalf("sizes differ: %d vs %d", a.RealBytes(), b.RealBytes())
	}
	if len(a.Facts) != len(b.Facts) {
		t.Fatalf("fact counts differ")
	}
	for i := range a.Facts {
		if a.Facts[i].Question != b.Facts[i].Question || a.Facts[i].Answer != b.Facts[i].Answer {
			t.Fatalf("fact %d differs: %+v vs %+v", i, a.Facts[i], b.Facts[i])
		}
	}
	for i := range a.paragraphs {
		if a.paragraphs[i].Text != b.paragraphs[i].Text {
			t.Fatalf("paragraph %d text differs", i)
		}
	}
}

func TestCollectionStructure(t *testing.T) {
	c := tinyColl(t)
	cfg := c.Cfg
	if len(c.Subs) != cfg.SubCollections {
		t.Fatalf("subs = %d, want %d", len(c.Subs), cfg.SubCollections)
	}
	seen := map[int]bool{}
	for si, sub := range c.Subs {
		if sub.ID != si {
			t.Fatalf("sub %d has id %d", si, sub.ID)
		}
		if len(sub.Docs) != cfg.DocsPerSub {
			t.Fatalf("sub %d has %d docs, want %d", si, len(sub.Docs), cfg.DocsPerSub)
		}
		for _, doc := range sub.Docs {
			if doc.Sub != si {
				t.Fatalf("doc %d claims sub %d, in sub %d", doc.ID, doc.Sub, si)
			}
			if len(doc.Paragraphs) < cfg.ParagraphsPerDoc[0] || len(doc.Paragraphs) > cfg.ParagraphsPerDoc[1] {
				t.Fatalf("doc %d has %d paragraphs", doc.ID, len(doc.Paragraphs))
			}
			for pi, p := range doc.Paragraphs {
				if p.Index != pi || p.DocID != doc.ID || p.Sub != si {
					t.Fatalf("paragraph linkage broken: %+v", p)
				}
				if seen[p.ID] {
					t.Fatalf("duplicate paragraph id %d", p.ID)
				}
				seen[p.ID] = true
				if c.Paragraph(p.ID) != p {
					t.Fatalf("Paragraph(%d) lookup broken", p.ID)
				}
			}
		}
	}
	if len(seen) != len(c.Paragraphs()) {
		t.Fatalf("paragraph index inconsistent: %d vs %d", len(seen), len(c.Paragraphs()))
	}
}

func TestParagraphsTokenizedAndTagged(t *testing.T) {
	c := tinyColl(t)
	withEntities := 0
	for _, p := range c.Paragraphs() {
		if len(p.Tokens) == 0 {
			t.Fatalf("paragraph %d has no tokens: %q", p.ID, p.Text)
		}
		if p.RealBytes != len(p.Text) {
			t.Fatalf("paragraph %d byte count mismatch", p.ID)
		}
		if len(p.Entities) > 0 {
			withEntities++
		}
	}
	if frac := float64(withEntities) / float64(len(c.Paragraphs())); frac < 0.2 {
		t.Fatalf("only %.0f%% of paragraphs have entities; NER or noise injection broken", frac*100)
	}
}

func TestGoldParagraphSupportsFact(t *testing.T) {
	c := tinyColl(t)
	for _, f := range c.Facts {
		gold := c.Paragraph(f.GoldParagraph)
		text := strings.ToLower(gold.Text)
		if !strings.Contains(text, strings.ToLower(f.Answer)) {
			t.Errorf("fact %d: gold paragraph missing answer %q", f.ID, f.Answer)
		}
		for _, w := range f.TopicWords {
			if !strings.Contains(text, strings.ToLower(w)) {
				t.Errorf("fact %d: gold paragraph missing topic word %q", f.ID, w)
			}
		}
		// The gold paragraph's entity list must include an entity of the
		// answer type whose text matches the answer.
		found := false
		for _, e := range gold.Entities {
			if e.Type == f.AnswerType && strings.EqualFold(e.Text, f.Answer) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fact %d (%s): NER did not tag answer %q in gold paragraph %q",
				f.ID, f.AnswerType, f.Answer, gold.Text)
		}
	}
}

func TestQuestionClassifiesToAnswerType(t *testing.T) {
	c := tinyColl(t)
	mismatches := 0
	for _, f := range c.Facts {
		a := nlp.AnalyzeQuestion(f.Question)
		if a.AnswerType != f.AnswerType {
			mismatches++
			t.Logf("fact %d: question %q classified %v, want %v", f.ID, f.Question, a.AnswerType, f.AnswerType)
		}
		if len(a.Keywords) == 0 {
			t.Errorf("fact %d: no keywords from %q", f.ID, f.Question)
		}
	}
	if mismatches > 0 {
		t.Errorf("%d/%d generated questions misclassified", mismatches, len(c.Facts))
	}
}

func TestVirtualScale(t *testing.T) {
	c := tinyColl(t)
	if got, want := c.VirtualBytes(), c.Cfg.TargetVirtualBytes; got < want*0.99 || got > want*1.01 {
		t.Fatalf("virtual bytes = %g, want ≈ %g", got, want)
	}
	total := 0.0
	for s := range c.Subs {
		total += c.SubVirtualBytes(s)
	}
	if total < c.VirtualBytes()*0.99 || total > c.VirtualBytes()*1.01 {
		t.Fatalf("sub-collection virtual sizes don't sum: %g vs %g", total, c.VirtualBytes())
	}
}

func TestTopicSkewCreatesFrequencyVariance(t *testing.T) {
	// A topic word's occurrence count must vary across sub-collections —
	// that variance is what defeats static PR partitioning in the paper.
	c := tinyColl(t)
	// Count occurrences of each fact's first topic word per sub-collection.
	varied := 0
	for _, f := range c.Facts {
		w := strings.ToLower(f.TopicWords[0])
		counts := make([]int, len(c.Subs))
		for _, p := range c.Paragraphs() {
			for _, tok := range p.Tokens {
				if tok.Text == w {
					counts[p.Sub]++
				}
			}
		}
		min, max := counts[0], counts[0]
		for _, n := range counts {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if max >= 2*min+2 {
			varied++
		}
	}
	if varied < len(c.Facts)/4 {
		t.Fatalf("only %d/%d topic words show cross-sub-collection skew", varied, len(c.Facts))
	}
}

func TestStatsSummary(t *testing.T) {
	c := tinyColl(t)
	st := c.Stats()
	if st.Subs != len(c.Subs) || st.Facts != len(c.Facts) {
		t.Fatalf("stats mismatch: %+v", st)
	}
	if st.Paragraphs == 0 || st.Docs == 0 || st.RealBytes == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestDistinctSeedsGiveDistinctCorpora(t *testing.T) {
	cfg := Tiny()
	a := Generate(cfg)
	cfg.Seed = 43
	b := Generate(cfg)
	if a.Paragraphs()[0].Text == b.Paragraphs()[0].Text {
		t.Fatal("different seeds produced identical text")
	}
}

func TestVocabularyProperties(t *testing.T) {
	c := tinyColl(t)
	g := newGenerator(c.Cfg)
	seen := map[string]bool{}
	for _, w := range g.vocab {
		if len(w) < 4 {
			t.Fatalf("vocabulary word %q too short", w)
		}
		if seen[w] {
			t.Fatalf("duplicate vocabulary word %q", w)
		}
		if nlp.IsStopword(w) {
			t.Fatalf("stopword %q in vocabulary", w)
		}
		seen[w] = true
	}
	if len(g.vocab) != c.Cfg.VocabularySize {
		t.Fatalf("vocab size %d, want %d", len(g.vocab), c.Cfg.VocabularySize)
	}
}

func TestGazetteerCoversFactAnswers(t *testing.T) {
	c := tinyColl(t)
	for _, f := range c.Facts {
		switch f.AnswerType {
		case nlp.Date, nlp.Quantity, nlp.Money:
			continue // pattern-recognised, not gazetteer-backed
		}
		ents := c.Gazetteer.Recognize(nlp.Tokenize("x " + f.Answer + " y"))
		ok := false
		for _, e := range ents {
			if e.Type == f.AnswerType && strings.EqualFold(e.Text, f.Answer) {
				ok = true
			}
		}
		if !ok {
			t.Errorf("gazetteer cannot recognise fact answer %q (%v)", f.Answer, f.AnswerType)
		}
	}
}
