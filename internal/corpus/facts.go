package corpus

import (
	"fmt"
	"strings"

	"distqa/internal/nlp"
)

// factTemplate describes how to phrase one answer type's questions and
// supporting sentences.
type factTemplate struct {
	typ nlp.EntityType
	// question formats the question from the subject phrase.
	question func(subject string) string
	// gold formats the full-support sentence from subject and answer.
	gold func(subject, answer string) string
	// verb is the template's content verb; partial paragraphs include it
	// with 50 % probability, mimicking real paraphrase variation.
	verb string
}

var factTemplates = []factTemplate{
	{
		typ:      nlp.Location,
		question: func(s string) string { return fmt.Sprintf("Where is the %s?", s) },
		gold: func(s, a string) string {
			return fmt.Sprintf("The famous %s is located in %s.", s, a)
		},
		verb: "located",
	},
	{
		typ:      nlp.Person,
		question: func(s string) string { return fmt.Sprintf("Who discovered the %s?", s) },
		gold: func(s, a string) string {
			return fmt.Sprintf("%s discovered the %s after years of work.", a, s)
		},
		verb: "discovered",
	},
	{
		typ:      nlp.Date,
		question: func(s string) string { return fmt.Sprintf("What year did the %s begin?", s) },
		gold: func(s, a string) string {
			return fmt.Sprintf("The %s began in %s according to records.", s, a)
		},
		verb: "began",
	},
	{
		typ:      nlp.Quantity,
		question: func(s string) string { return fmt.Sprintf("How many %s were counted?", s) },
		gold: func(s, a string) string {
			return fmt.Sprintf("Officials counted %s %s during the survey.", a, s)
		},
		verb: "counted",
	},
	{
		typ:      nlp.Money,
		question: func(s string) string { return fmt.Sprintf("How much did the %s cost?", s) },
		gold: func(s, a string) string {
			return fmt.Sprintf("The %s cost %s to complete.", s, a)
		},
		verb: "cost",
	},
	{
		typ:      nlp.Organization,
		question: func(s string) string { return fmt.Sprintf("What company built the %s?", s) },
		gold: func(s, a string) string {
			return fmt.Sprintf("%s built the %s over a decade.", a, s)
		},
		verb: "built",
	},
	{
		typ:      nlp.Disease,
		question: func(s string) string { return fmt.Sprintf("What disease is associated with the %s?", s) },
		gold: func(s, a string) string {
			return fmt.Sprintf("Doctors associated %s with the %s.", a, s)
		},
		verb: "associated",
	},
}

// plantFact creates fact f: it picks a template, topic words and an answer,
// appends the gold sentence to one paragraph and partial-support sentences
// to many others.
func (g *generator) plantFact(f int) Fact {
	cfg := g.cfg

	// Nationality questions have a different shape (the subject is a
	// person, as in the paper's Q.176); interleave them every 8th fact.
	if f%8 == 7 {
		return g.plantNationalityFact(f)
	}
	tmpl := factTemplates[f%len(factTemplates)]

	k := randRange(g.rng, cfg.KeywordsPerFact)
	topics := g.pickTopicWords(k)
	subject := strings.Join(topics, " ")

	answer := g.makeAnswer(tmpl.typ)
	question := tmpl.question(subject)
	gold := tmpl.gold(subject, answer)

	goldPara := g.randomParagraph()
	goldPara.Text = strings.TrimSpace(goldPara.Text + " " + gold)
	echoes := g.plantEchoes(subject, answer)

	partials := randRange(g.rng, cfg.PartialsPerFact)
	for i := 0; i < partials; i++ {
		g.plantPartial(tmpl, topics)
	}

	return Fact{
		ID:             f,
		Question:       question,
		AnswerType:     tmpl.typ,
		Answer:         answer,
		TopicWords:     topics,
		GoldParagraph:  goldPara.ID,
		EchoParagraphs: echoes,
		Partials:       partials,
	}
}

// plantEchoes plants two paraphrased restatements of the fact in other
// paragraphs. Real collections repeat true facts across documents — that
// redundancy is precisely what the answer-sorting h7 heuristic exploits, so
// the synthetic corpus must reproduce it for the pipeline's accuracy to be
// meaningful.
func (g *generator) plantEchoes(subject, answer string) []int {
	templates := []string{
		"Records about the %s point to %s.",
		"Most accounts link the %s with %s.",
	}
	out := make([]int, 0, len(templates))
	for _, tpl := range templates {
		p := g.randomParagraph()
		p.Text = strings.TrimSpace(p.Text + " " + fmt.Sprintf(tpl, subject, answer))
		out = append(out, p.ID)
	}
	return out
}

// plantNationalityFact handles "What is the nationality of <PERSON>?".
func (g *generator) plantNationalityFact(f int) Fact {
	cfg := g.cfg
	person := g.randomEntityOf(nlp.Person)
	answer := g.randomEntityOf(nlp.Nationality)
	topic := g.pickTopicWords(1)[0]
	question := fmt.Sprintf("What is the nationality of %s?", person)
	gold := fmt.Sprintf("The %s born %s spoke about the %s at length.", answer, person, topic)

	goldPara := g.randomParagraph()
	goldPara.Text = strings.TrimSpace(goldPara.Text + " " + gold)
	echoes := g.plantEchoes(person, answer)

	partials := randRange(g.rng, cfg.PartialsPerFact)
	for i := 0; i < partials; i++ {
		p := g.randomParagraph()
		var b strings.Builder
		b.WriteString(capitalize(person))
		b.WriteString(" appeared near the ")
		b.WriteString(strings.Join(g.backgroundWords(p.Sub, 2), " "))
		if g.rng.Float64() < cfg.DistractorRate {
			b.WriteString(" alongside members of the ")
			b.WriteString(g.randomEntityOf(nlp.Nationality))
			b.WriteString(" delegation")
		}
		b.WriteString(".")
		p.Text = strings.TrimSpace(p.Text + " " + b.String())
	}
	return Fact{
		ID:             f,
		Question:       question,
		AnswerType:     nlp.Nationality,
		Answer:         answer,
		TopicWords:     append(nlp.Words(person), topic),
		GoldParagraph:  goldPara.ID,
		EchoParagraphs: echoes,
		Partials:       partials,
	}
}

// plantPartial appends a partial-support sentence (a keyword subset, the
// template verb half the time, and occasionally a same-type distractor
// entity) to a random paragraph.
//
// Each partial draws a quality in [0,1) that shapes the sentence the way
// editorial quality shapes real text: high-quality partials keep the topic
// words adjacent (high keyword-proximity score, so the Paragraph Ordering
// module ranks them first) and are dense with named entities (expensive for
// answer processing). This is the rank/granularity correlation the paper
// observes in Section 4.1.3 — "the paragraph ranking performed by the PO
// module provides also a good ranking of the paragraph processing
// complexity" — which is what makes ISEND effective and SEND unbalanced.
func (g *generator) plantPartial(tmpl factTemplate, topics []string) {
	cfg := g.cfg
	p := g.randomParagraph()
	quality := g.rng.Float64()
	// With FullPartialRate the partial carries all topic words (retrieved
	// by the strict Boolean AND); otherwise a subset of at least half.
	n := len(topics)
	if g.rng.Float64() >= cfg.FullPartialRate {
		min := (len(topics) + 1) / 2
		n = min
		if len(topics) > min {
			n += g.rng.Intn(len(topics) - min)
		}
	}
	var b strings.Builder
	b.WriteString("Reports mention the ")
	gap := int((1 - quality) * 5) // low quality scatters the keywords
	for i, w := range topics[:n] {
		if i > 0 {
			for k := 0; k < gap; k++ {
				b.WriteString(g.backgroundWords(p.Sub, 1)[0])
				b.WriteString(" ")
			}
		}
		b.WriteString(w)
		b.WriteString(" ")
	}
	if g.rng.Float64() < 0.5 {
		b.WriteString(tmpl.verb)
	}
	if g.rng.Float64() < cfg.DistractorRate {
		// Spurious co-occurrences sit in looser apposition than true
		// support, which is what lets the window distance heuristic (h3)
		// separate them from the gold answers.
		b.WriteString(" near the far side of ")
		b.WriteString(g.makeAnswer(tmpl.typ))
	}
	// Entity density scales with quality (no accuracy impact: other-type
	// entities are dropped by the answer-type filter).
	if g.rng.Float64() < quality {
		b.WriteString(" beside ")
		b.WriteString(g.entityOfOtherType(tmpl.typ))
	}
	if g.rng.Float64() < quality*0.3 {
		b.WriteString(" and ")
		b.WriteString(g.entityOfOtherType(tmpl.typ))
	}
	b.WriteString(".")
	// High-quality coverage returns to its subject: topic words recur, and
	// answer processing pays for each extra (candidate, occurrence) window.
	for _, w := range topics[:n] {
		if g.rng.Float64() < quality*0.7 {
			b.WriteString(" The ")
			b.WriteString(w)
			b.WriteString(" drew attention.")
		}
	}
	p.Text = strings.TrimSpace(p.Text + " " + b.String())
}

// makeAnswer produces an answer string of the given type. Gazetteer-backed
// types draw a name; pattern types synthesise a matching surface form.
func (g *generator) makeAnswer(typ nlp.EntityType) string {
	switch typ {
	case nlp.Date:
		return fmt.Sprintf("%d", 1900+g.rng.Intn(100))
	case nlp.Quantity:
		// Three-digit counts: four-digit values starting with 1 or 2 would
		// be recognised as years by the NER date pattern.
		return fmt.Sprintf("%d", 100+g.rng.Intn(900))
	case nlp.Money:
		return fmt.Sprintf("%d dollars", 1000+g.rng.Intn(900000))
	default:
		return g.randomEntityOf(typ)
	}
}

// pickTopicWords samples n distinct mid-to-low-frequency vocabulary words.
func (g *generator) pickTopicWords(n int) []string {
	lo := len(g.vocab) / 3
	seen := make(map[string]bool, n)
	var out []string
	for len(out) < n {
		w := g.vocab[lo+g.rng.Intn(len(g.vocab)-lo)]
		if seen[w] {
			continue
		}
		seen[w] = true
		out = append(out, w)
	}
	return out
}

// entityOfOtherType draws a gazetteer entity whose type differs from typ.
func (g *generator) entityOfOtherType(typ nlp.EntityType) string {
	types := []nlp.EntityType{nlp.Person, nlp.Location, nlp.Organization, nlp.Disease, nlp.Nationality}
	for {
		t := types[g.rng.Intn(len(types))]
		if t != typ {
			return g.randomEntityOf(t)
		}
	}
}

func (g *generator) randomParagraph() *Paragraph {
	return g.coll.paragraphs[g.rng.Intn(len(g.coll.paragraphs))]
}
