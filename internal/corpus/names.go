package corpus

import (
	"math/rand"
	"strings"

	"distqa/internal/nlp"
)

// Syllable inventories for synthetic word and name generation. Vocabulary
// words and entity names draw from disjoint syllable families so that a
// planted entity rarely collides with a background word, the same way real
// proper nouns are mostly disjoint from common vocabulary.
var (
	wordOnsets  = []string{"b", "br", "c", "cl", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k", "l", "m", "n", "p", "pl", "r", "s", "st", "t", "tr", "v", "w", "z", "sh", "th"}
	wordNuclei  = []string{"a", "e", "i", "o", "u", "ai", "ea", "ou", "io"}
	wordCodas   = []string{"", "n", "r", "l", "s", "t", "m", "nd", "rt", "st", "x"}
	nameOnsets  = []string{"Bal", "Cor", "Dan", "El", "Far", "Gor", "Hal", "Is", "Jor", "Kal", "Lor", "Mar", "Nor", "Or", "Pel", "Quin", "Ros", "Sal", "Tor", "Ul", "Var", "Wen", "Yor", "Zan"}
	nameMiddles = []string{"a", "e", "i", "o", "u", "an", "en", "in", "on", "ar", "er", "or", "al", "el", "il"}
	nameEndings = []string{"d", "da", "dor", "la", "lan", "mir", "na", "nia", "ria", "ros", "s", "sa", "th", "thia", "ton", "va", "vin"}
)

// makeVocabulary generates n distinct lower-case content words, ordered by
// intended frequency rank (rank 0 = most frequent under the Zipf sampler).
func makeVocabulary(rng *rand.Rand, n int) []string {
	seen := make(map[string]bool, n)
	words := make([]string, 0, n)
	for len(words) < n {
		var b strings.Builder
		syllables := 2 + rng.Intn(2)
		for s := 0; s < syllables; s++ {
			b.WriteString(wordOnsets[rng.Intn(len(wordOnsets))])
			b.WriteString(wordNuclei[rng.Intn(len(wordNuclei))])
			b.WriteString(wordCodas[rng.Intn(len(wordCodas))])
		}
		w := b.String()
		if len(w) < 4 || seen[w] || nlp.IsStopword(w) {
			continue
		}
		seen[w] = true
		words = append(words, w)
	}
	return words
}

// makeName generates a capitalized proper-noun-like word.
func makeName(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString(nameOnsets[rng.Intn(len(nameOnsets))])
	if rng.Float64() < 0.6 {
		b.WriteString(nameMiddles[rng.Intn(len(nameMiddles))])
	}
	b.WriteString(nameEndings[rng.Intn(len(nameEndings))])
	return b.String()
}

// makeEntityNames builds the per-type gazetteer name lists. The counts are
// sized so questions have plenty of same-type distractors, exercising the
// answer-window heuristics rather than letting type filtering alone pick the
// answer.
func makeEntityNames(rng *rand.Rand) map[nlp.EntityType][]string {
	uniq := func(n int, gen func() string) []string {
		seen := make(map[string]bool, n)
		var out []string
		for len(out) < n {
			name := gen()
			if seen[name] {
				continue
			}
			seen[name] = true
			out = append(out, name)
		}
		return out
	}
	firstNames := uniq(48, func() string { return makeName(rng) })
	lastNames := uniq(96, func() string { return makeName(rng) })

	names := map[nlp.EntityType][]string{}
	names[nlp.Person] = uniq(160, func() string {
		return firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
	})
	names[nlp.Location] = uniq(140, func() string {
		base := makeName(rng)
		switch rng.Intn(4) {
		case 0:
			return "Lake " + base
		case 1:
			return "Port " + base
		case 2:
			return base + " Valley"
		default:
			return base
		}
	})
	names[nlp.Organization] = uniq(100, func() string {
		base := makeName(rng)
		suffixes := []string{"Corporation", "Institute", "University", "Company", "Laboratories"}
		return base + " " + suffixes[rng.Intn(len(suffixes))]
	})
	names[nlp.Disease] = uniq(80, func() string {
		base := makeName(rng)
		suffixes := []string{"Syndrome", "Disease", "Fever", "Disorder"}
		return base + " " + suffixes[rng.Intn(len(suffixes))]
	})
	names[nlp.Nationality] = uniq(80, func() string {
		base := makeName(rng)
		suffixes := []string{"ian", "ish", "ese", "ic"}
		return base + suffixes[rng.Intn(len(suffixes))]
	})
	return names
}
