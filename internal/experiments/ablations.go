package experiments

import (
	"fmt"

	"distqa/internal/core"
	"distqa/internal/metrics"
	"distqa/internal/sched"
	"distqa/internal/workload"
)

// This file holds the ablation studies for the design choices DESIGN.md
// §6 calls out — knobs the paper fixes implicitly whose values matter:
// the per-node admission limit, the load-broadcast interval (staleness),
// and the AP under-load threshold (partitioning aggressiveness). Each
// ablation runs the high-load DQA workload with one knob swept and
// everything else at paper defaults.

// ablationRun executes one high-load DQA run with a customised config.
func ablationRun(env *Env, nodes int, mutate func(*core.Config)) HighLoadRun {
	eng := env.Engine()
	n := env.QPerNode * nodes
	qs := env.Questions().Pick(env.Seed, n)
	arrivals := workload.PaperArrivals(env.Seed, n, Warm)

	cfg := core.DefaultConfig(nodes, core.DQA)
	cfg.APPartitioner = sched.NewRECV(env.APChunk)
	mutate(&cfg)
	sys := core.NewSystem(cfg, eng)
	defer sys.Shutdown()
	for i, q := range qs {
		sys.Submit(arrivals[i], q.ID, q.Text)
	}
	sys.RunToCompletion()

	run := HighLoadRun{Strategy: core.DQA, Nodes: nodes, Questions: n, Stats: sys.Stats()}
	var lats []float64
	first, last := arrivals[0], 0.0
	for _, r := range sys.Results() {
		if r.Err != nil {
			continue
		}
		lats = append(lats, r.Latency())
		if r.DoneTime > last {
			last = r.DoneTime
		}
	}
	run.Makespan = last - first
	run.Throughput = metrics.ThroughputPerMinute(len(lats), run.Makespan)
	run.Latency = metrics.Summarize(lats)
	return run
}

// AblationAdmission sweeps the per-node admission limit. The paper fixes
// "fully loaded" at 4 simultaneous questions; this shows the trade-off that
// choice sits on: tight caps serialize (queueing latency), loose caps
// oversubscribe memory (thrash).
func AblationAdmission(env *Env) Table {
	t := Table{
		ID:     "ablation-admission",
		Title:  "Ablation: per-node admission limit (DQA, high load)",
		Header: []string{"MaxConcurrent", "Throughput (q/min)", "Avg latency (s)", "P90 latency (s)"},
	}
	nodes := midNodes(env)
	for _, cap := range []int{1, 2, 4, 8, 16} {
		cap := cap
		r := ablationRun(env, nodes, func(c *core.Config) { c.MaxConcurrent = cap })
		t.AddRow(fmt.Sprintf("%d", cap), f2(r.Throughput), f1(r.Latency.Mean), f1(r.Latency.P90))
	}
	t.Note("paper's operating point: 4 (Section 6.1); expect degradation on both sides")
	t.Note("%d-node cluster, %d questions", nodes, env.QPerNode*nodes)
	return t
}

// AblationBroadcast sweeps the load monitors' broadcast interval. All
// dispatcher decisions act on information up to one interval stale; longer
// intervals cheapen monitoring but degrade placement.
func AblationBroadcast(env *Env) Table {
	t := Table{
		ID:     "ablation-broadcast",
		Title:  "Ablation: load-broadcast interval (DQA, high load)",
		Header: []string{"Interval (s)", "Throughput (q/min)", "Avg latency (s)", "QA/PR/AP migrations"},
	}
	nodes := midNodes(env)
	for _, iv := range []float64{0.25, 0.5, 1, 2, 4, 8} {
		iv := iv
		r := ablationRun(env, nodes, func(c *core.Config) { c.MonitorInterval = iv })
		t.AddRow(fmt.Sprintf("%.2f", iv), f2(r.Throughput), f1(r.Latency.Mean),
			fmt.Sprintf("%d/%d/%d", r.Stats.QAMigrations, r.Stats.PRMigrations, r.Stats.APMigrations))
	}
	t.Note("paper's operating point: 1 s (Section 3.1)")
	return t
}

// AblationAPThreshold sweeps the AP under-load threshold of Equation 8.
// Low thresholds suppress partitioning (favouring throughput); high
// thresholds partition aggressively (favouring response time) — the
// trade-off Section 4.2 discusses.
func AblationAPThreshold(env *Env) Table {
	t := Table{
		ID:     "ablation-apthreshold",
		Title:  "Ablation: AP under-load threshold (DQA, high load)",
		Header: []string{"Threshold", "Throughput (q/min)", "Avg latency (s)", "AP partitioned"},
	}
	nodes := midNodes(env)
	for _, th := range []float64{0.5, 1.05, 2, 4} {
		th := th
		r := ablationRun(env, nodes, func(c *core.Config) { c.APUnderload = th })
		t.AddRow(fmt.Sprintf("%.2f", th), f2(r.Throughput), f1(r.Latency.Mean),
			fmt.Sprintf("%d", r.Stats.APPartitioned))
	}
	t.Note("paper's operating point: the load of a single AP sub-task (≈1), favouring throughput (Section 4.2)")
	return t
}

// midNodes picks the middle configured cluster size for ablations.
func midNodes(env *Env) int {
	if len(env.Nodes) == 0 {
		return 4
	}
	return env.Nodes[len(env.Nodes)/2]
}

// Ablations runs all three sweeps.
func Ablations(env *Env) []Table {
	return []Table{AblationAdmission(env), AblationBroadcast(env), AblationAPThreshold(env)}
}
