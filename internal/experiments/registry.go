package experiments

import (
	"fmt"
	"sort"
)

// Runner produces one or more tables for an experiment id.
type Runner func(*Env) []Table

// registry maps experiment ids to their runners. Shared-run experiments
// (table5/6/7 and table8/9/10) are grouped so a single invocation reuses
// the same simulations, exactly like the paper's shared measurement runs.
var registry = map[string]Runner{
	"table1":  single(Table1),
	"table2":  single(Table2),
	"table3":  single(Table3),
	"table4":  single(Table4),
	"table5":  Tables567,
	"table6":  Tables567,
	"table7":  Tables567,
	"table8":  Tables8910,
	"table9":  Tables8910,
	"table10": Tables8910,
	"table11": single(Table11),
	"fig7":    single(Figure7),
	"fig8":    single(Figure8),
	"fig9a":   single(Figure9a),
	"fig9b":   single(Figure9b),
	"fig10":   single(Figure10),
	// Ablations of the design knobs DESIGN.md §6 documents (not in the
	// paper; run with `qabench -exp ablations`).
	"ablations": Ablations,
	// Scaling beyond the paper's 12-node testbed.
	"scaling": single(Scaling),
	// The footnote-1 future work: workload prediction at the dispatcher.
	"predictive": single(Predictive),
	// The related-work gradient model as a fourth strategy.
	"comparators": single(Comparators),
}

func single(f func(*Env) Table) Runner {
	return func(e *Env) []Table { return []Table{f(e)} }
}

// IDs lists the known experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given id.
func Run(env *Env, id string) ([]Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(env), nil
}

// All runs every experiment once, deduplicating the grouped runners, and
// returns the tables in presentation order.
func All(env *Env) []Table {
	var out []Table
	out = append(out, Table1(env))
	out = append(out, Table2(env))
	out = append(out, Table3(env))
	out = append(out, Table4(env))
	out = append(out, Tables567(env)...)
	out = append(out, Tables8910(env)...)
	out = append(out, Table11(env))
	out = append(out, Figure7(env))
	out = append(out, Figure8(env))
	out = append(out, Figure9a(env))
	out = append(out, Figure9b(env))
	out = append(out, Figure10(env))
	return out
}

// AllWithAblations appends the ablation sweeps to the paper experiments.
func AllWithAblations(env *Env) []Table {
	return append(All(env), Ablations(env)...)
}
