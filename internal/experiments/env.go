// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 2, 4, 5 and 6). Each experiment returns a Table —
// rows of formatted cells plus the paper's reference values — that the
// qabench/qamodel commands print and the benchmark harness exercises.
//
// Two environments are provided: Paper() runs at the paper's scale
// (TREC-9-like 3 GB virtual collection, 4/8/12-node clusters, 8 questions
// per node) and Small() is a down-scaled variant for unit tests.
package experiments

import (
	"sync"

	"distqa/internal/corpus"
	"distqa/internal/index"
	"distqa/internal/qa"
	"distqa/internal/workload"
)

// Warm is the virtual time of the first question submission; monitors have
// broadcast at least once by then (a production system's monitors run long
// before any question arrives).
const Warm = 2.0

// Env carries the experiment configuration and caches the expensive
// artifacts (corpora, indexes, question profiles).
type Env struct {
	// Corpus9 is the main evaluation collection (TREC-9 stand-in);
	// Corpus8 is the TREC-8 stand-in used by Table 2.
	Corpus9 corpus.Config
	Corpus8 corpus.Config
	// Nodes are the cluster sizes of the load-balancing experiments.
	Nodes []int
	// QPerNode is the high-load multiplier (the paper starts 8·N questions).
	QPerNode int
	// ComplexCount is how many complex questions the low-load experiments
	// use (the paper used 307 TREC questions; the synthetic set is smaller).
	ComplexCount int
	// APChunk is the RECV chunk size for answer processing (Figure 10's
	// optimum, 40 paragraphs).
	APChunk int
	// Fig10Chunks is the chunk-size sweep of Figure 10.
	Fig10Chunks []int
	// Seed drives question selection and arrival gaps.
	Seed int64
	// Replications is how many independent question/arrival draws the
	// high-load experiments average over.
	Replications int

	mu        sync.Mutex
	engine9   *qa.Engine
	engine8   *qa.Engine
	profiled  *workload.Set
	profiled8 *workload.Set
}

// Paper returns the full-scale environment.
func Paper() *Env {
	return &Env{
		Corpus9:      corpus.TREC9Like(),
		Corpus8:      corpus.TREC8Like(),
		Nodes:        []int{4, 8, 12},
		QPerNode:     8,
		ComplexCount: 48,
		APChunk:      40,
		Fig10Chunks:  []int{5, 10, 20, 40, 60, 80, 100},
		Seed:         20010901,
		Replications: 3,
	}
}

// Small returns a fast environment for unit tests: tiny corpus, two cluster
// sizes, fewer questions, proportionally smaller chunks.
func Small() *Env {
	tiny8 := corpus.Tiny()
	tiny8.Seed = 43
	tiny8.Name = "tiny8"
	tiny8.PartialsPerFact = [2]int{3, 12}
	tiny8.TargetVirtualBytes = 30e6
	return &Env{
		Corpus9:      corpus.Tiny(),
		Corpus8:      tiny8,
		Nodes:        []int{2, 4},
		QPerNode:     3,
		ComplexCount: 6,
		APChunk:      5,
		Fig10Chunks:  []int{2, 5, 10},
		Seed:         42,
		Replications: 2,
	}
}

// Engine returns the pipeline engine over the main collection, built once.
func (e *Env) Engine() *qa.Engine {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.engine9 == nil {
		c := corpus.Generate(e.Corpus9)
		e.engine9 = qa.NewEngine(c, index.BuildAll(c))
	}
	return e.engine9
}

// Engine8 returns the engine over the TREC-8 stand-in collection.
func (e *Env) Engine8() *qa.Engine {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.engine8 == nil {
		c := corpus.Generate(e.Corpus8)
		e.engine8 = qa.NewEngine(c, index.BuildAll(c))
	}
	return e.engine8
}

// Questions returns the profiled question set over the main collection.
func (e *Env) Questions() workload.Set {
	eng := e.Engine()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.profiled == nil {
		s := workload.FromCollection(eng.Coll).Profile(eng)
		e.profiled = &s
	}
	return *e.profiled
}

// Questions8 returns the profiled question set over the TREC-8 stand-in.
func (e *Env) Questions8() workload.Set {
	eng := e.Engine8()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.profiled8 == nil {
		s := workload.FromCollection(eng.Coll).Profile(eng)
		e.profiled8 = &s
	}
	return *e.profiled8
}

// Complex returns the ComplexCount most complex questions — the Section 6.2
// population ("questions with at least 20 paragraphs allocated to each AP
// module").
func (e *Env) Complex() workload.Set {
	return e.Questions().TopComplex(e.ComplexCount)
}

// MaxNodes returns the largest configured cluster size.
func (e *Env) MaxNodes() int {
	max := 0
	for _, n := range e.Nodes {
		if n > max {
			max = n
		}
	}
	return max
}
