package experiments

import (
	"fmt"

	"distqa/internal/cluster"
	"distqa/internal/core"
	"distqa/internal/model"
	"distqa/internal/qa"
	"distqa/internal/sched"
	"distqa/internal/workload"
)

// lowLoadGap is the virtual-time spacing between questions in the
// Section 6.2 protocol ("questions were executed one at a time"); it
// comfortably exceeds the longest single-question response time.
const lowLoadGap = 600.0

// LowLoadRun aggregates one low-load sweep: complex questions executed one
// at a time on an n-node DQA system.
type LowLoadRun struct {
	Nodes     int
	Questions int
	// Mean module times and response time (Table 8).
	Times    core.ModuleTimes
	Response float64
	// Mean overhead components (Table 9).
	Overhead core.Overheads
	// Mean network/disk bytes a question moved during partitioning, for
	// the analytical model comparison.
	NetBytes float64
}

// runLowLoad executes the complex-question set one at a time on an n-node
// DQA cluster with the given AP partitioner.
func runLowLoad(env *Env, nodes int, ap sched.Partitioner) LowLoadRun {
	eng := env.Engine()
	qs := env.Complex()
	arrivals := workload.OneAtATime(qs.Len(), Warm, lowLoadGap)

	cfg := core.DefaultConfig(nodes, core.DQA)
	cfg.APPartitioner = ap
	sys := core.NewSystem(cfg, eng)
	defer sys.Shutdown()
	for i, q := range qs.Questions {
		sys.Submit(arrivals[i], q.ID, q.Text)
	}
	sys.RunToCompletion()

	run := LowLoadRun{Nodes: nodes, Questions: qs.Len()}
	n := 0
	var paraBytes float64
	for _, r := range sys.Results() {
		if r.Err != nil {
			continue
		}
		n++
		run.Times.QP += r.Times.QP
		run.Times.PR += r.Times.PR
		run.Times.PS += r.Times.PS
		run.Times.PO += r.Times.PO
		run.Times.AP += r.Times.AP
		run.Response += r.Latency()
		run.Overhead.KeywordSend += r.Overhead.KeywordSend
		run.Overhead.ParagraphRecv += r.Overhead.ParagraphRecv
		run.Overhead.ParagraphSend += r.Overhead.ParagraphSend
		run.Overhead.AnswerRecv += r.Overhead.AnswerRecv
		run.Overhead.AnswerSort += r.Overhead.AnswerSort
		run.Overhead.Migration += r.Overhead.Migration
		paraBytes += float64(r.Retrieved+r.Accepted) * avgParagraphWireBytes(eng)
	}
	if n > 0 {
		inv := 1 / float64(n)
		run.Times.QP *= inv
		run.Times.PR *= inv
		run.Times.PS *= inv
		run.Times.PO *= inv
		run.Times.AP *= inv
		run.Response *= inv
		run.Overhead.KeywordSend *= inv
		run.Overhead.ParagraphRecv *= inv
		run.Overhead.ParagraphSend *= inv
		run.Overhead.AnswerRecv *= inv
		run.Overhead.AnswerSort *= inv
		run.Overhead.Migration *= inv
		run.NetBytes = paraBytes * inv
	}
	return run
}

func avgParagraphWireBytes(eng *qa.Engine) float64 {
	st := eng.Coll.Stats()
	if st.Paragraphs == 0 {
		return 0
	}
	return float64(st.RealBytes)/float64(st.Paragraphs) + 16
}

// LowLoadSeries runs the Table 8 sweep (1 node plus the configured cluster
// sizes) with the paper's best partitioning (RECV everywhere).
func LowLoadSeries(env *Env) []LowLoadRun {
	sizes := append([]int{1}, env.Nodes...)
	var out []LowLoadRun
	for _, n := range sizes {
		out = append(out, runLowLoad(env, n, sched.NewRECV(env.APChunk)))
	}
	return out
}

// Tables8910 runs the low-load series once and derives Tables 8, 9 and 10.
func Tables8910(env *Env) []Table {
	runs := LowLoadSeries(env)
	return []Table{table8(env, runs), table9(env, runs), table10(env, runs)}
}

func table8(env *Env, runs []LowLoadRun) Table {
	t := Table{
		ID:     "table8",
		Title:  "Observed module times and average question response times (seconds)",
		Header: []string{"Configuration", "QP", "PR", "PS", "PO", "AP", "Response (incl. overhead)"},
	}
	for _, r := range runs {
		t.AddRow(fmt.Sprintf("%d processor(s)", r.Nodes),
			f2(r.Times.QP), f2(r.Times.PR), f2(r.Times.PS), f2(r.Times.PO), f2(r.Times.AP), f2(r.Response))
	}
	t.Note("paper (1/4/8/12p): QP 0.81 const; PR 38.0/9.8/7.3/7.3 (plateau at 8p: only 8 sub-collections); AP 117.6/31.5/17.9/11.9; response 158.5/43.1/27.1/21.2")
	t.Note("workload: %d most complex questions, one at a time, RECV partitioning", env.ComplexCount)
	return t
}

func table9(env *Env, runs []LowLoadRun) Table {
	t := Table{
		ID:     "table9",
		Title:  "Measured distribution overhead per question (seconds)",
		Header: []string{"Configuration", "Keyword send", "Paragraph recv", "Paragraph send", "Answer recv", "Answer sort", "Total"},
	}
	for _, r := range runs {
		if r.Nodes == 1 {
			continue
		}
		t.AddRow(fmt.Sprintf("%d processors", r.Nodes),
			f3(r.Overhead.KeywordSend), f3(r.Overhead.ParagraphRecv), f3(r.Overhead.ParagraphSend),
			f3(r.Overhead.AnswerRecv), f3(r.Overhead.AnswerSort), f3(r.Overhead.Total()))
	}
	t.Note("paper totals: 0.44 s (4p), 0.61 s (8p), 0.67 s (12p) — under 3%% of the response time")
	return t
}

func table10(env *Env, runs []LowLoadRun) Table {
	t := Table{
		ID:     "table10",
		Title:  "Analytical versus measured question speedup",
		Header: []string{"Configuration", "Analytical", "Measured"},
	}
	base := runs[0]
	hw := cluster.TestbedHardware()
	m := model.Measured{
		TQP: base.Times.QP, TPR: base.Times.PR, TPS: base.Times.PS,
		TPO: base.Times.PO, TAP: base.Times.AP,
		NetBytes:  base.NetBytes,
		DiskBytes: base.NetBytes,
	}
	for _, r := range runs[1:] {
		analytical := m.Speedup(r.Nodes, 100e6, hw.DiskBandwidth*8)
		measured := base.Response / r.Response
		t.AddRow(fmt.Sprintf("%d processors", r.Nodes), f2(analytical), f2(measured))
	}
	t.Note("paper: 4p 3.84/3.67, 8p 7.34/5.85, 12p 10.60/7.48 — measured below analytical, gap grows with N (uneven partition granularity)")
	return t
}

// APSpeedups measures the answer-processing module speedup (Table 11 /
// Figure 10 metric): mean AP time on one node divided by mean AP time on n
// nodes under the given partitioner.
func APSpeedups(env *Env, partitioners map[string]func() sched.Partitioner, sizes []int) map[string]map[int]float64 {
	base := runLowLoad(env, 1, sched.NewRECV(env.APChunk))
	out := make(map[string]map[int]float64)
	for name, mk := range partitioners {
		out[name] = make(map[int]float64)
		for _, n := range sizes {
			r := runLowLoad(env, n, mk())
			if r.Times.AP > 0 {
				out[name][n] = base.Times.AP / r.Times.AP
			}
		}
	}
	return out
}

// Table11 reproduces the paper's Table 11: answer processing speedup under
// the three partitioning strategies.
func Table11(env *Env) Table {
	t := Table{
		ID:     "table11",
		Title:  "Answer processing speedup for different partitioning strategies",
		Header: []string{"Configuration", "SEND", "ISEND", "RECV"},
	}
	parts := map[string]func() sched.Partitioner{
		"SEND":  sched.NewSEND,
		"ISEND": sched.NewISEND,
		"RECV":  func() sched.Partitioner { return sched.NewRECV(env.APChunk) },
	}
	sp := APSpeedups(env, parts, env.Nodes)
	for _, n := range env.Nodes {
		t.AddRow(fmt.Sprintf("%d processors", n),
			f2(sp["SEND"][n]), f2(sp["ISEND"][n]), f2(sp["RECV"][n]))
	}
	t.Note("paper: 4p 2.71/3.61/3.73, 8p 4.78/6.25/6.58, 12p 7.17/9.22/9.87 — RECV ≳ ISEND > SEND")
	return t
}

// Figure10 reproduces the paper's Figure 10: AP speedup for the RECV
// partitioner as a function of paragraph chunk size, on 4 and 8 processors.
func Figure10(env *Env) Table {
	t := Table{
		ID:     "fig10",
		Title:  "Answer processing speedup (RECV) vs paragraph chunk size",
		Header: []string{"Chunk size", "4 processors", "8 processors"},
	}
	base := runLowLoad(env, 1, sched.NewRECV(env.APChunk))
	sizes := []int{4, 8}
	if len(env.Nodes) > 0 && env.Nodes[0] < 4 {
		sizes = env.Nodes[:min(2, len(env.Nodes))]
	}
	for _, chunk := range env.Fig10Chunks {
		row := []string{fmt.Sprintf("%d", chunk)}
		for _, n := range sizes {
			r := runLowLoad(env, n, sched.NewRECV(chunk))
			row = append(row, f2(base.Times.AP/r.Times.AP))
		}
		t.AddRow(row...)
	}
	t.Note("paper: interior optimum near chunk = 40 paragraphs; small chunks pay per-chunk overhead, large chunks suffer uneven granularity")
	return t
}
