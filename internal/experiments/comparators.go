package experiments

import (
	"fmt"

	"distqa/internal/core"
)

// Comparators extends the paper's Table 5/6 ladder with the classical
// gradient model (Lin & Keller) that its related work cites: whole-question
// balancing by hop-wise diffusion on a logical ring, using only neighbour
// proximities, against the paper's broadcast-table designs.
func Comparators(env *Env) Table {
	t := Table{
		ID:     "comparators",
		Title:  "Extension: gradient model vs the paper's strategies (high load)",
		Header: []string{"Processors", "DNS", "GRADIENT", "INTER", "DQA", "(throughput q/min)"},
	}
	strategies := []core.Strategy{core.DNS, core.GRADIENT, core.INTER, core.DQA}
	for _, nodes := range env.Nodes {
		row := []string{fmt.Sprintf("%d", nodes)}
		for _, strat := range strategies {
			r := runHighLoad(env, nodes, strat)
			row = append(row, f2(r.Throughput))
		}
		row = append(row, "")
		t.AddRow(row...)
	}
	t.Note("the gradient model sees only ring neighbours; the paper's dispatchers see the full broadcast load table")
	return t
}
