package experiments

import (
	"fmt"

	"distqa/internal/model"
)

// Table4 renders the analytical Table 4: practical upper limits on the
// number of processors (Equation 34) and the corresponding speedups, across
// the disk × network bandwidth grid.
func Table4(env *Env) Table {
	t := Table{
		ID:     "table4",
		Title:  "Practical upper limits on the number of processors and the corresponding speedups",
		Header: []string{"disk \\ net", "1 Mbps", "10 Mbps", "100 Mbps", "1 Gbps"},
	}
	rows := model.Table4(model.TREC9IntraParams())
	labels := []string{"100 Mbps", "250 Mbps", "500 Mbps", "1 Gbps"}
	for d := 0; d < 4; d++ {
		nRow := []string{labels[d]}
		sRow := []string{""}
		for c := 0; c < 4; c++ {
			cell := rows[d*4+c]
			nRow = append(nRow, fmt.Sprintf("N = %d", cell.NMax))
			sRow = append(sRow, fmt.Sprintf("S = %.2f", cell.Speedup))
		}
		t.AddRow(nRow...)
		t.AddRow(sRow...)
	}
	t.Note("paper corners: (1Mbps,100Mbps) N=17 S=8.65; (1Gbps,100Mbps) N=93 S=47.73; (1Mbps,1Gbps) N=11 S=5.59; (1Gbps,1Gbps) N=60 S=31.34")
	t.Note("parameters re-derived from the paper's stated TREC-9 profile; see internal/model package comment")
	return t
}

// curveTable renders model curves at selected processor counts.
func curveTable(id, title string, curves []model.Curve, at []int) Table {
	t := Table{ID: id, Title: title}
	t.Header = []string{"Processors"}
	for _, c := range curves {
		t.Header = append(t.Header, c.Label)
	}
	for _, n := range at {
		row := []string{fmt.Sprintf("%d", n)}
		for _, c := range curves {
			row = append(row, f2(sampleCurve(c, n)))
		}
		t.AddRow(row...)
	}
	return t
}

func sampleCurve(c model.Curve, n int) float64 {
	for i, cn := range c.N {
		if cn >= n {
			return c.Y[i]
		}
	}
	return c.Y[len(c.Y)-1]
}

// Figure8 renders the analytical system speedup for various network
// bandwidths (the paper's Figure 8(a)).
func Figure8(env *Env) Table {
	t := curveTable("fig8", "Analytical system speedup for various network bandwidths",
		model.Figure8(model.TREC9InterParams()),
		[]int{1, 100, 200, 400, 600, 800, 1000})
	t.Note("paper: efficiency ≈ 0.9 at 1000 processors on 1 Gbps; 10 Mbps collapses at scale")
	return t
}

// Figure9a renders the analytical question speedup for a 1 Gbps disk and
// various network bandwidths (Figure 9(a)).
func Figure9a(env *Env) Table {
	t := curveTable("fig9a", "Analytical question speedup: disk 1 Gbps, network swept",
		model.Figure9a(model.TREC9IntraParams()),
		[]int{1, 20, 40, 80, 120, 160, 200})
	t.Note("speedup increases with network bandwidth (Figure 9(a))")
	return t
}

// Figure9b renders the analytical question speedup for a 1 Gbps network and
// various disk bandwidths (Figure 9(b)).
func Figure9b(env *Env) Table {
	t := curveTable("fig9b", "Analytical question speedup: network 1 Gbps, disk swept",
		model.Figure9b(model.TREC9IntraParams()),
		[]int{1, 20, 40, 80, 120, 160, 200})
	t.Note("speedup decreases as disk bandwidth increases (Figure 9(b)): faster disks shrink the parallelizable PR share")
	return t
}
