package experiments

import (
	"fmt"

	"distqa/internal/core"
	"distqa/internal/sched"
	"distqa/internal/trace"
)

// Figure7Trace runs one complex question on a homogeneous 4-processor DQA
// system with RECV partitioning for PR/PS and the named partitioner for AP,
// returning the scheduling trace — the paper's Figure 7 (a), (b) or (c) for
// apPartitioner SEND, ISEND or RECV respectively.
func Figure7Trace(env *Env, apName string) (*trace.Log, *core.QuestionResult, error) {
	var ap sched.Partitioner
	switch apName {
	case "SEND":
		ap = sched.NewSEND()
	case "ISEND":
		ap = sched.NewISEND()
	case "RECV":
		ap = sched.NewRECV(env.APChunk)
	default:
		return nil, nil, fmt.Errorf("experiments: unknown AP partitioner %q (want SEND, ISEND or RECV)", apName)
	}
	qs := env.Complex()
	if qs.Len() == 0 {
		return nil, nil, fmt.Errorf("experiments: no complex questions available")
	}
	q := qs.Questions[0]

	cfg := core.DefaultConfig(4, core.DQA)
	cfg.APPartitioner = ap
	cfg.Trace = trace.New()
	sys := core.NewSystem(cfg, env.Engine())
	defer sys.Shutdown()
	res := sys.SubmitToNode(Warm, q.ID, q.Text, 0)
	sys.RunToCompletion()
	return cfg.Trace, res, res.Err
}

// Figure7 renders condensed trace statistics for the three AP partitioning
// strategies (the full traces are printed by cmd/qatrace).
func Figure7(env *Env) Table {
	t := Table{
		ID:     "fig7",
		Title:  "System traces with RECV for PR/PS and SEND/ISEND/RECV for AP (condensed)",
		Header: []string{"AP strategy", "Trace events", "PR nodes", "AP nodes", "AP time (s)", "Response (s)"},
	}
	for _, name := range []string{"SEND", "ISEND", "RECV"} {
		log, res, err := Figure7Trace(env, name)
		if err != nil {
			t.AddRow(name, fmt.Sprintf("error: %v", err), "", "", "", "")
			continue
		}
		t.AddRow(name,
			fmt.Sprintf("%d", log.Len()),
			fmt.Sprintf("%d", res.PRNodes),
			fmt.Sprintf("%d", res.APNodes),
			f2(res.Times.AP),
			f2(res.Latency()))
	}
	t.Note("paper (q226): SEND sub-tasks spread over >60 s; ISEND finishes within a 6 s window; RECV best — run cmd/qatrace for the full per-node event log")
	return t
}
