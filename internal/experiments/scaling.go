package experiments

import (
	"fmt"

	"distqa/internal/core"
	"distqa/internal/model"
)

// Scaling extends the paper's evaluation beyond its 12-node testbed: it runs
// the high-load DQA workload at growing cluster sizes and compares the
// measured throughput scaling against the analytical inter-question model
// of Equation 23 (which the paper could only evaluate analytically,
// Figure 8). The simulated cluster carries the full protocol — monitors,
// dispatchers, admission, partitioning — so this is the paper's "large
// number of processors" claim exercised end to end.
func Scaling(env *Env) Table {
	t := Table{
		ID:     "scaling",
		Title:  "DQA throughput scaling beyond the testbed (measured vs Eq. 23)",
		Header: []string{"Processors", "Throughput (q/min)", "Speedup", "Efficiency", "Model efficiency (Eq. 23)"},
	}
	sizes := scalingSizes(env)
	inter := model.TREC9InterParams()
	var base float64
	for _, n := range sizes {
		r := runHighLoad(env, n, core.DQA)
		if base == 0 && r.Throughput > 0 {
			base = r.Throughput / float64(sizes[0])
		}
		speedup := 0.0
		if base > 0 {
			speedup = r.Throughput / base
		}
		t.AddRow(fmt.Sprintf("%d", n),
			f2(r.Throughput),
			f2(speedup),
			f2(speedup/float64(n)),
			f2(inter.SystemEfficiency(n, 100*model.Mbps)))
	}
	t.Note("measured efficiency is relative to the smallest cluster's per-node throughput")
	t.Note("the model's 100 Mbps curve is the comparable analytical prediction (Figure 8)")
	return t
}

// scalingSizes doubles from the smallest configured size up to 4x the
// largest (capped for simulation cost).
func scalingSizes(env *Env) []int {
	lo := env.Nodes[0]
	hi := env.MaxNodes() * 4
	if hi > 48 {
		hi = 48
	}
	var out []int
	for n := lo; n <= hi; n *= 2 {
		out = append(out, n)
	}
	return out
}
