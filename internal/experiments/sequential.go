package experiments

import (
	"distqa/internal/cluster"
	"distqa/internal/nlp"
	"distqa/internal/qa"
	"distqa/internal/workload"
)

// testbedDiskBW converts disk bytes to nominal seconds on the testbed.
var testbedDiskBW = cluster.TestbedHardware().DiskBandwidth

// Table1 reproduces the paper's Table 1: example answers returned by the
// Q/A system, one per representative answer type, with the answer shown in
// its text context.
func Table1(env *Env) Table {
	t := Table{
		ID:     "table1",
		Title:  "Examples of answers returned by the Q/A system",
		Header: []string{"Question", "Expected", "Format", "Answer (in context)"},
	}
	eng := env.Engine()
	want := []nlp.EntityType{nlp.Disease, nlp.Location, nlp.Nationality, nlp.Person}
	seen := map[nlp.EntityType]bool{}
	qs := workload.FromCollection(eng.Coll)
	for _, q := range qs.Questions {
		if seen[q.Type] || !containsType(want, q.Type) {
			continue
		}
		res := eng.AnswerSequential(q.Text)
		if len(res.Answers) == 0 {
			t.AddRow(q.Text, q.Expected, "", "(no answer)")
		} else if len(seen) < 2 {
			// The paper shows the first two examples in the 50-byte short
			// format and the rest in the 250-byte long format.
			t.AddRow(q.Text, q.Expected, "(short)", eng.ShortAnswer(res.Answers[0]))
		} else {
			t.AddRow(q.Text, q.Expected, "(long)", eng.LongAnswer(res.Answers[0]))
		}
		seen[q.Type] = true
		if len(seen) == len(want) {
			break
		}
	}
	t.Note("paper shows TREC-9 questions (Tourette's Syndrome, Hollywood Cemetery, Taj Mahal, Polish-born Pope); the synthetic corpus plants equivalent typed facts")
	return t
}

func containsType(ts []nlp.EntityType, t nlp.EntityType) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}

// moduleProfile accumulates module costs over a question set.
type moduleProfile struct {
	costs qa.ModuleCosts
	n     int
	retr  int
	acc   int
}

func profileSet(eng *qa.Engine, qs workload.Set) moduleProfile {
	var p moduleProfile
	for _, q := range qs.Questions {
		r := eng.AnswerSequential(q.Text)
		p.costs.QP = p.costs.QP.Add(r.Costs.QP)
		p.costs.PR = p.costs.PR.Add(r.Costs.PR)
		p.costs.PS = p.costs.PS.Add(r.Costs.PS)
		p.costs.PO = p.costs.PO.Add(r.Costs.PO)
		p.costs.AP = p.costs.AP.Add(r.Costs.AP)
		p.costs.Sort = p.costs.Sort.Add(r.Costs.Sort)
		p.retr += r.Retrieved
		p.acc += r.Accepted
		p.n++
	}
	return p
}

// Table2 reproduces the paper's Table 2: the percentage of the sequential
// Q/A task time spent in each module, for the TREC-8-like and TREC-9-like
// collections, with the iterative-granularity annotations.
func Table2(env *Env) Table {
	t := Table{
		ID:     "table2",
		Title:  "Analysis of Q/A modules (% of task time)",
		Header: []string{"Module", "TREC-8-like", "TREC-9-like", "Iterative?", "Granularity", "Paper (T8/T9)"},
	}
	p8 := profileSet(env.Engine8(), workload.FromCollection(env.Engine8().Coll))
	p9 := profileSet(env.Engine(), workload.FromCollection(env.Engine().Coll))
	n8 := p8.costs.Nominal(1.0, testbedDiskBW)
	n9 := p9.costs.Nominal(1.0, testbedDiskBW)
	rows := []struct {
		name   string
		v8, v9 float64
		iter   string
		gran   string
		paper  string
	}{
		{"QP", n8.QP, n9.QP, "No", "", "1.1 %/1.2 %"},
		{"PR", n8.PR, n9.PR, "Yes", "Collection", "44.4 %/26.5 %"},
		{"PS", n8.PS, n9.PS, "Yes", "Paragraph", "5.4 %/2.2 %"},
		{"PO", n8.PO, n9.PO, "No", "", "0.1 %/0.1 %"},
		{"AP", n8.AP, n9.AP, "Yes", "Paragraph", "48.7 %/69.7 %"},
	}
	for _, r := range rows {
		t.AddRow(r.name, pct(r.v8/n8.Total), pct(r.v9/n9.Total), r.iter, r.gran, r.paper)
	}
	t.Note("avg sequential question: %.1f s (TREC-8-like, paper 48 s), %.1f s (TREC-9-like, paper 94 s)",
		n8.Total/float64(p8.n), n9.Total/float64(p9.n))
	t.Note("avg paragraphs retrieved/accepted: %d/%d (TREC-9-like)", p9.retr/p9.n, p9.acc/p9.n)
	return t
}

// Table3 reproduces the paper's Table 3: the resource weights (fraction of
// module execution time spent on CPU vs disk) measured for the question
// set, which parameterise the load functions of Equations 4-6.
func Table3(env *Env) Table {
	t := Table{
		ID:     "table3",
		Title:  "Average resource weights measured for the question set",
		Header: []string{"Load function", "CPU", "DISK", "Paper (CPU/DISK)"},
	}
	p := profileSet(env.Engine(), workload.FromCollection(env.Engine().Coll))
	split := func(c qa.Cost) (cpu, disk float64) {
		cpuT := c.CPUSeconds
		diskT := c.DiskBytes / testbedDiskBW
		total := cpuT + diskT
		if total == 0 {
			return 0, 0
		}
		return cpuT / total, diskT / total
	}
	qaCPU, qaDisk := split(p.costs.Total())
	prCPU, prDisk := split(p.costs.PR)
	apCPU, apDisk := split(p.costs.AP.Add(p.costs.Sort))
	t.AddRow("QA", f2(qaCPU), f2(qaDisk), "0.79/0.21")
	t.AddRow("PR", f2(prCPU), f2(prDisk), "0.20/0.80")
	t.AddRow("AP", f2(apCPU), f2(apDisk), "1.00/0.00")
	t.Note("weights feed the dispatcher load functions (Equations 4-6); package sched ships the paper's values as defaults")
	return t
}

// MeasuredWeights returns the Table 3 weights in sched-usable form, for
// callers that want to configure dispatchers from measurement rather than
// the paper's constants.
func MeasuredWeights(env *Env) (qaW, prW, apW [2]float64) {
	p := profileSet(env.Engine(), workload.FromCollection(env.Engine().Coll))
	split := func(c qa.Cost) [2]float64 {
		cpuT := c.CPUSeconds
		diskT := c.DiskBytes / testbedDiskBW
		total := cpuT + diskT
		if total == 0 {
			return [2]float64{}
		}
		return [2]float64{cpuT / total, diskT / total}
	}
	return split(p.costs.Total()), split(p.costs.PR), split(p.costs.AP)
}
