package experiments

import (
	"fmt"

	"distqa/internal/core"
)

// Predictive evaluates the paper's footnote-1 future work: dynamic task
// workload detection. The extension sizes each question from index
// statistics (qa.Engine.EstimateCost — the Cahoon/McKinley document-
// frequency heuristic the paper's Section 1.4 discusses and dismisses for
// Q/A) and accounts admission backlogs in predicted-workload units, so the
// question dispatcher sees a queue of heavy questions as heavier than a
// queue of light ones.
func Predictive(env *Env) Table {
	t := Table{
		ID:     "predictive",
		Title:  "Extension: workload prediction at the question dispatcher (DQA, high load)",
		Header: []string{"Processors", "Throughput base/pred (q/min)", "Avg latency base/pred (s)", "P90 latency base/pred (s)"},
	}
	for _, nodes := range env.Nodes {
		base := ablationRun(env, nodes, func(c *core.Config) {})
		pred := ablationRun(env, nodes, func(c *core.Config) { c.Predictive = true })
		t.AddRow(fmt.Sprintf("%d", nodes),
			fmt.Sprintf("%s / %s", f2(base.Throughput), f2(pred.Throughput)),
			fmt.Sprintf("%s / %s", f1(base.Latency.Mean), f1(pred.Latency.Mean)),
			fmt.Sprintf("%s / %s", f1(base.Latency.P90), f1(pred.Latency.P90)))
	}
	t.Note("the paper (Section 1.4) judged query-statistics cost prediction inapplicable to Q/A; the prediction's rank correlation with true cost is ≈0.7 here (see qa.EstimateCost tests)")
	return t
}
