package experiments

import (
	"fmt"

	"distqa/internal/core"
	"distqa/internal/metrics"
	"distqa/internal/sched"
	"distqa/internal/workload"
)

// HighLoadRun is the outcome of one (strategy, cluster-size) high-load run
// — the raw material of Tables 5, 6 and 7.
type HighLoadRun struct {
	Strategy   core.Strategy
	Nodes      int
	Questions  int
	Makespan   float64
	Throughput float64 // questions/minute
	Latency    metrics.Summary
	Stats      core.Stats
}

// runHighLoadOnce executes one replication of the paper's Section 6.1
// protocol: start QPerNode·N questions (twice the per-node full-load
// threshold of 4) at inter-arrival gaps uniform in [0, 2) seconds,
// identical question sequence and arrival times for every strategy.
func runHighLoadOnce(env *Env, nodes int, strategy core.Strategy, seed int64) HighLoadRun {
	eng := env.Engine()
	n := env.QPerNode * nodes
	qs := env.Questions().Pick(seed, n)
	arrivals := workload.PaperArrivals(seed, n, Warm)

	cfg := core.DefaultConfig(nodes, strategy)
	cfg.APPartitioner = sched.NewRECV(env.APChunk)
	sys := core.NewSystem(cfg, eng)
	defer sys.Shutdown()
	for i, q := range qs {
		sys.Submit(arrivals[i], q.ID, q.Text)
	}
	sys.RunToCompletion()

	run := HighLoadRun{Strategy: strategy, Nodes: nodes, Questions: n, Stats: sys.Stats()}
	var lats []float64
	first, last := arrivals[0], 0.0
	for _, r := range sys.Results() {
		if r.Err != nil {
			continue
		}
		lats = append(lats, r.Latency())
		if r.DoneTime > last {
			last = r.DoneTime
		}
	}
	run.Makespan = last - first
	run.Throughput = metrics.ThroughputPerMinute(len(lats), run.Makespan)
	run.Latency = metrics.Summarize(lats)
	return run
}

// runHighLoad averages Replications independent question/arrival draws.
// The paper reports single runs; replication tames the tail noise a 32-96
// question makespan inevitably carries (documented in EXPERIMENTS.md).
func runHighLoad(env *Env, nodes int, strategy core.Strategy) HighLoadRun {
	reps := env.Replications
	if reps < 1 {
		reps = 1
	}
	agg := HighLoadRun{Strategy: strategy, Nodes: nodes}
	for rep := 0; rep < reps; rep++ {
		r := runHighLoadOnce(env, nodes, strategy, env.Seed+int64(rep)*1009)
		agg.Questions = r.Questions
		agg.Makespan += r.Makespan / float64(reps)
		agg.Throughput += r.Throughput / float64(reps)
		agg.Latency.Mean += r.Latency.Mean / float64(reps)
		agg.Stats.QAMigrations += r.Stats.QAMigrations
		agg.Stats.PRMigrations += r.Stats.PRMigrations
		agg.Stats.APMigrations += r.Stats.APMigrations
		agg.Stats.PRPartitioned += r.Stats.PRPartitioned
		agg.Stats.APPartitioned += r.Stats.APPartitioned
		agg.Stats.Failed += r.Stats.Failed
	}
	agg.Stats.QAMigrations /= reps
	agg.Stats.PRMigrations /= reps
	agg.Stats.APMigrations /= reps
	agg.Stats.PRPartitioned /= reps
	agg.Stats.APPartitioned /= reps
	return agg
}

// HighLoadMatrix runs every (strategy, size) combination once, caching
// within the call.
func HighLoadMatrix(env *Env) []HighLoadRun {
	var out []HighLoadRun
	for _, nodes := range env.Nodes {
		for _, strat := range []core.Strategy{core.DNS, core.INTER, core.DQA} {
			out = append(out, runHighLoad(env, nodes, strat))
		}
	}
	return out
}

// Table5 reproduces the paper's Table 5: system throughput in
// questions/minute for the three load-balancing strategies.
func Table5(env *Env) Table {
	return table5And6(env, HighLoadMatrix(env))[0]
}

// Table6 reproduces the paper's Table 6: average question response times.
func Table6(env *Env) Table {
	return table5And6(env, HighLoadMatrix(env))[1]
}

// Tables567 runs the high-load matrix once and derives Tables 5, 6 and 7
// from it (they share the same runs, as in the paper).
func Tables567(env *Env) []Table {
	runs := HighLoadMatrix(env)
	out := table5And6(env, runs)
	return append(out, table7(env, runs))
}

func table5And6(env *Env, runs []HighLoadRun) []Table {
	t5 := Table{
		ID:     "table5",
		Title:  "System throughput (questions/minute)",
		Header: []string{"Processors", "DNS", "INTER", "DQA"},
	}
	t6 := Table{
		ID:     "table6",
		Title:  "Average question response times (seconds)",
		Header: []string{"Processors", "DNS", "INTER", "DQA"},
	}
	byKey := indexRuns(runs)
	for _, nodes := range env.Nodes {
		var thr, lat []string
		for _, strat := range []core.Strategy{core.DNS, core.INTER, core.DQA} {
			r := byKey[key{nodes, strat}]
			thr = append(thr, f2(r.Throughput))
			lat = append(lat, f2(r.Latency.Mean))
		}
		t5.AddRow(append([]string{fmt.Sprintf("%d processors", nodes)}, thr...)...)
		t6.AddRow(append([]string{fmt.Sprintf("%d processors", nodes)}, lat...)...)
	}
	t5.Note("paper: 4p 2.64/3.45/4.18, 8p 5.04/5.52/7.77, 12p 7.89/9.71/12.09; expect DQA > INTER > DNS")
	t6.Note("paper: 4p 143.9/122.5/111.9, 8p 135.3/118.8/113.5, 12p 132.5/115.3/106.0; expect DQA < INTER < DNS")
	t5.Note("workload: %d questions per processor, arrival gaps U[0,2)s", env.QPerNode)
	return []Table{t5, t6}
}

func table7(env *Env, runs []HighLoadRun) Table {
	t := Table{
		ID:     "table7",
		Title:  "Number of migrated questions at the three scheduling points",
		Header: []string{"Workload", "INTER", "DQA"},
	}
	byKey := indexRuns(runs)
	for _, nodes := range env.Nodes {
		inter := byKey[key{nodes, core.INTER}].Stats
		dqa := byKey[key{nodes, core.DQA}].Stats
		label := fmt.Sprintf("%d questions (%d processors)", env.QPerNode*nodes, nodes)
		t.AddRow(label, fmt.Sprintf("QA: %d", inter.QAMigrations), fmt.Sprintf("QA: %d", dqa.QAMigrations))
		t.AddRow("", "", fmt.Sprintf("PR: %d", dqa.PRMigrations))
		t.AddRow("", "", fmt.Sprintf("AP: %d", dqa.APMigrations))
	}
	t.Note("paper (32q/4p): INTER QA:8; DQA QA:17 PR:10 AP:10 — PR/AP dispatchers stay active")
	t.Note("paper (96q/12p): INTER QA:23; DQA QA:37 PR:43 AP:41")
	return t
}

type key struct {
	nodes    int
	strategy core.Strategy
}

func indexRuns(runs []HighLoadRun) map[key]HighLoadRun {
	m := make(map[key]HighLoadRun, len(runs))
	for _, r := range runs {
		m[key{r.Nodes, r.Strategy}] = r
	}
	return m
}

// HighLoadOne exposes a single high-load run for calibration and tooling.
func HighLoadOne(env *Env, nodes int, strategy core.Strategy) HighLoadRun {
	return runHighLoadOnce(env, nodes, strategy, env.Seed)
}
